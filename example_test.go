package resilience_test

import (
	"fmt"
	"math"

	"resilience"
)

// incident is a small deterministic V-shaped performance series used by
// the runnable documentation examples.
func incident() *resilience.Series {
	vals := make([]float64, 24)
	for i := range vals {
		x := float64(i)
		vals[i] = 1 - 0.05*math.Sin(math.Pi*math.Min(x/18, 1))
	}
	s, err := resilience.SeriesFromValues(vals)
	if err != nil {
		panic(err) // static data cannot fail
	}
	return s
}

// ExampleFit fits the competing-risks bathtub model to a disruption
// curve and reports when performance is predicted to bottom out.
func ExampleFit() {
	fit, err := resilience.Fit(resilience.CompetingRisks(), incident(), resilience.FitConfig{})
	if err != nil {
		fmt.Println("fit:", err)
		return
	}
	td, err := resilience.ModelMinimum(fit, 24)
	if err != nil {
		fmt.Println("minimum:", err)
		return
	}
	fmt.Printf("minimum performance %.2f at month %.0f\n", fit.Eval(td), td)
	// Output:
	// minimum performance 0.96 at month 9
}

// ExampleClassifyShape labels a resilience curve with the letter shape
// economists use for recessions.
func ExampleClassifyShape() {
	sharpDrop := []float64{1, 0.93, 0.86, 0.87, 0.88, 0.89, 0.90, 0.91, 0.92, 0.93, 0.94, 0.95}
	fmt.Println(resilience.ClassifyShape(sharpDrop))
	// Output:
	// L
}

// ExampleRecoveryTime predicts when a disrupted system regains a target
// performance level.
func ExampleRecoveryTime() {
	fit, err := resilience.Fit(resilience.Quadratic(), incident(), resilience.FitConfig{})
	if err != nil {
		fmt.Println("fit:", err)
		return
	}
	tr, err := resilience.RecoveryTime(fit, 0.99, 48)
	if err != nil {
		fmt.Println("recovery:", err)
		return
	}
	fmt.Printf("recovers to 0.99 near month %.0f\n", tr)
	// Output:
	// recovers to 0.99 near month 19
}

// ExampleActualMetrics computes the paper's interval-based resilience
// metrics directly from observed data.
func ExampleActualMetrics() {
	data := incident()
	w := resilience.Window{TH: 0, TR: 23, TD: 9, T0: 0, Nominal: 1, PMin: 0.95}
	set, err := resilience.ActualMetrics(data, w, resilience.MetricsConfig{Mode: resilience.Continuous})
	if err != nil {
		fmt.Println("metrics:", err)
		return
	}
	fmt.Printf("average performance preserved: %.3f\n", set[resilience.AvgPreserved])
	fmt.Printf("robust to %.0f%% of nominal\n", 100*w.PMin/w.Nominal)
	// Output:
	// average performance preserved: 0.975
	// robust to 95% of nominal
}
