package resilience_test

import (
	"errors"
	"math"
	"testing"

	"resilience"
)

// recessionLike builds a clean V-shaped performance series.
func recessionLike(t *testing.T) *resilience.Series {
	t.Helper()
	vals := make([]float64, 48)
	for i := range vals {
		x := float64(i)
		vals[i] = 1 - 0.03*math.Sin(math.Pi*math.Min(x/36, 1)) + 0.0006*math.Max(0, x-36)
	}
	s, err := resilience.SeriesFromValues(vals)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestFacadeEndToEnd(t *testing.T) {
	data := recessionLike(t)
	for _, m := range []resilience.Model{resilience.Quadratic(), resilience.CompetingRisks()} {
		fit, err := resilience.Fit(m, data, resilience.FitConfig{})
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		tr, err := resilience.RecoveryTime(fit, 1.0, 48)
		if err != nil {
			t.Fatalf("%s recovery: %v", m.Name(), err)
		}
		if tr < 10 || tr > 60 {
			t.Errorf("%s: recovery time %g implausible", m.Name(), tr)
		}
		td, err := resilience.ModelMinimum(fit, 48)
		if err != nil {
			t.Fatalf("%s minimum: %v", m.Name(), err)
		}
		if td <= 0 || td >= tr {
			t.Errorf("%s: minimum %g should precede recovery %g", m.Name(), td, tr)
		}
	}
}

func TestFacadeValidateAndMetrics(t *testing.T) {
	data := recessionLike(t)
	v, err := resilience.Validate(resilience.CompetingRisks(), data, resilience.ValidateConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if v.GoF.R2Adj < 0.9 {
		t.Errorf("R2Adj = %g", v.GoF.R2Adj)
	}
	rows, err := resilience.CompareMetrics(v, data, resilience.MetricsConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(resilience.MetricKinds()) {
		t.Errorf("%d rows", len(rows))
	}
}

func TestFacadeMixtures(t *testing.T) {
	if got := len(resilience.StandardMixtures()); got != 4 {
		t.Fatalf("%d standard mixtures", got)
	}
	mix, err := resilience.NewMixture(resilience.Weibull(), resilience.Exp(), resilience.LogTrend())
	if err != nil {
		t.Fatal(err)
	}
	if mix.Name() != "weibull-exp" {
		t.Errorf("name = %q", mix.Name())
	}
	custom, err := resilience.NewMixture(resilience.GammaCDF(), resilience.LogNormalCDF(), resilience.LinearTrend())
	if err != nil {
		t.Fatal(err)
	}
	data := recessionLike(t)
	if _, err := resilience.Fit(custom, data, resilience.FitConfig{Starts: 4}); err != nil {
		t.Errorf("custom mixture fit: %v", err)
	}
}

func TestFacadeErrorsAndShapes(t *testing.T) {
	if _, err := resilience.Fit(nil, nil, resilience.FitConfig{}); !errors.Is(err, resilience.ErrBadData) {
		t.Errorf("nil fit: %v", err)
	}
	flat := make([]float64, 20)
	for i := range flat {
		flat[i] = 1
	}
	if got := resilience.ClassifyShape(flat); got != resilience.ShapeFlat {
		t.Errorf("flat shape = %v", got)
	}
	if _, err := resilience.NewSeries([]float64{1, 0}, []float64{1, 1}); err == nil {
		t.Error("decreasing times should error")
	}
}

func TestFacadePiecewiseAndBand(t *testing.T) {
	data := recessionLike(t)
	fit, err := resilience.Fit(resilience.CompetingRisks(), data, resilience.FitConfig{})
	if err != nil {
		t.Fatal(err)
	}
	band, err := resilience.ConfidenceBand(fit, data, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	ec, err := resilience.EmpiricalCoverage(band, data)
	if err != nil {
		t.Fatal(err)
	}
	if ec < 0.8 {
		t.Errorf("EC = %g", ec)
	}
	pc, err := resilience.NewPiecewise(5, 40, 1, fit.Eval)
	if err != nil {
		t.Fatal(err)
	}
	if pc.Eval(0) != 1 {
		t.Errorf("piecewise pre-hazard = %g", pc.Eval(0))
	}
	auc, err := resilience.AreaUnderCurve(fit, 0, 47)
	if err != nil || auc <= 0 {
		t.Errorf("AUC = %g, %v", auc, err)
	}
	w, err := resilience.PredictiveWindow(data, 43, fit)
	if err != nil {
		t.Fatal(err)
	}
	actual, err := resilience.ActualMetrics(data, w, resilience.MetricsConfig{})
	if err != nil {
		t.Fatal(err)
	}
	predicted, err := resilience.PredictedMetrics(fit, w, resilience.MetricsConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(actual) != 8 || len(predicted) != 8 {
		t.Errorf("metric sets: %d actual, %d predicted", len(actual), len(predicted))
	}
}
