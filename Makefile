# Standard developer entry points. Everything is stdlib Go; no tools
# beyond the Go toolchain are required.

GO ?= go

.PHONY: all build vet lint-dispatch test test-short check chaos stream-chaos crash-smoke loadgen-smoke obs-smoke cluster-smoke sim-smoke bench bench-compare bench-all fuzz cover report clean

all: build vet lint-dispatch test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# The model registry (internal/registry) is the single definition site
# for model construction and name dispatch. This gate fails if a core
# model literal or a name switch reappears in any transport, example, or
# internal layer — internal/core (the definitions and their own tests)
# and internal/registry (the registration site) are the only exceptions.
lint-dispatch:
	@bad=$$(grep -rn --include='*.go' \
		--exclude-dir=core --exclude-dir=registry \
		-E 'QuadraticModel\{\}|CompetingRisksModel\{\}|ExpBathtubModel\{\}|StandardMixtures\(\)|DefaultFallbacks\(\)|case "quadratic"' \
		cmd examples internal || true); \
	if [ -n "$$bad" ]; then \
		echo "lint-dispatch: model literals outside internal/registry (use registry.Lookup):"; \
		echo "$$bad"; exit 1; \
	fi
	@echo "lint-dispatch: ok (model dispatch confined to internal/registry)"

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# Full correctness gate: static analysis plus the whole suite under the
# race detector.
check:
	$(GO) vet ./...
	$(MAKE) lint-dispatch
	$(GO) test -race ./...
	$(MAKE) stream-chaos

# Chaos suite only: concurrent hostile requests (malformed, oversized,
# cancelled, panic- and NaN-injected) against a live server, under -race.
chaos:
	$(GO) test -race -run TestChaos -count=1 -v ./internal/server/

# Streaming-session chaos: faults injected into session refits (panics,
# NaN-poisoned objectives, stalled SSE consumers) must surface as
# degradation annotations in snapshots — never as dead sessions — with
# the -race detector watching the session table and event fan-out.
stream-chaos:
	$(GO) test -race -run 'TestStreamChaos|TestStreamHammerRace|TestSessionSSE' -count=1 -v ./internal/stream/ ./internal/server/

# Crash-recovery gate, two layers: the in-process kill -9 chaos test
# (child process SIGKILLed mid-stream, recovered state compared
# bit-for-bit against an uninterrupted reference), then a black-box
# smoke of the real binary — kill -9, torn WAL tail, restart, session
# resumes over HTTP.
crash-smoke:
	$(GO) test -race -run TestCrashRecoveryKill9 -count=1 -v ./internal/durable/
	bash scripts/crash_recovery_smoke.sh

# Smoke-scale SLO gate: mixed fit/batch/stream load against a durable
# server; fails on blown p99 or error-rate budgets. Thresholds via
# LOADGEN_SLO_P99 / LOADGEN_SLO_ERROR_RATE.
loadgen-smoke:
	bash scripts/loadgen_smoke.sh

# Observability gate: live server + loadgen, then assert the tracing
# and metrics surface end to end — /debug/traces non-empty with
# resolvable span trees, /metrics passes scripts/metrics_lint.sh
# (naming conventions + exemplar syntax) with at least one exemplar,
# /v1/stats reports the SLO window, and resil top renders.
obs-smoke:
	bash scripts/obs_smoke.sh

# Scenario-engine gate: `resil simulate` renders byte-identical sets
# across reruns and GOMAXPROCS 1 vs 4, an N>=1k Monte Carlo study
# through Batch() emits non-empty coverage and win-rate-by-shape-class
# tables (and reproduces from its seed), and a live server answers
# POST /v1/simulate with the resil_scenario_* metric families passing
# lint. Scale with SIM_SCENARIOS.
sim-smoke:
	bash scripts/sim_smoke.sh

# Cluster chaos gate: 3 race-built nodes over a static peer table —
# cross-node session forwarding, binary-transport SLO gate, kill -9 one
# node, typed redirects for its sessions, replay recovery onto a
# survivor, metrics lint of the resil_cluster_*/resil_transport_*
# families, graceful survivor drain.
cluster-smoke:
	bash scripts/cluster_smoke.sh

# Reproducible fit-pipeline benchmark: runs BenchmarkFit across every
# model family plus BenchmarkStreamRefit (the warm-polish streaming hot
# path) and writes ns/op, evals/op, and iters/op per benchmark to
# BENCH_fit.json, the machine-readable perf baseline future PRs diff
# against. -benchtime=50x pins the iteration count so runs are
# comparable; raw output still streams to the terminal.
BENCH_RE = ^BenchmarkFit$$|^BenchmarkStreamRefit$$
BENCH_PKGS = ./internal/core/ ./internal/monitor/

bench:
	$(GO) test -run '^$$' -bench '$(BENCH_RE)' -benchtime=50x -benchmem $(BENCH_PKGS) \
		| $(GO) run ./cmd/benchfmt -out BENCH_fit.json

# Runs the same benchmarks and prints per-benchmark ns/op, evals/op, and
# allocs/op deltas against the committed BENCH_fit.json instead of
# overwriting it, writing the table to BENCH_compare.txt as well. Fails
# if any benchmark's evals/op — the machine-independent optimizer-cost
# metric — regressed more than 10% against the baseline; this is the CI
# perf gate. Use it before refreshing the baseline to see what a change
# did.
bench-compare:
	$(GO) test -run '^$$' -bench '$(BENCH_RE)' -benchtime=50x -benchmem $(BENCH_PKGS) \
		| $(GO) run ./cmd/benchfmt -baseline BENCH_fit.json -gate-evals 10 -compare-out BENCH_compare.txt

# Regenerates every paper table and figure with cost measurement.
bench-all:
	$(GO) test -bench . -benchmem ./...

# Ten-second fuzzing passes over the parsing surfaces.
fuzz:
	$(GO) test -fuzz FuzzReadCSV -fuzztime 10s ./internal/dataset/
	$(GO) test -fuzz FuzzReadJSON -fuzztime 10s ./internal/dataset/
	$(GO) test -fuzz FuzzClassifyShape -fuzztime 10s ./internal/core/

cover:
	$(GO) test -cover ./...

# Full reproduction report as standalone HTML.
report:
	$(GO) run ./cmd/resil report -o resilience-report.html

clean:
	rm -f resilience-report.html test_output.txt bench_output.txt
