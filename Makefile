# Standard developer entry points. Everything is stdlib Go; no tools
# beyond the Go toolchain are required.

GO ?= go

.PHONY: all build vet test test-short bench fuzz cover report clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# Regenerates every paper table and figure with cost measurement.
bench:
	$(GO) test -bench . -benchmem ./...

# Ten-second fuzzing passes over the parsing surfaces.
fuzz:
	$(GO) test -fuzz FuzzReadCSV -fuzztime 10s ./internal/dataset/
	$(GO) test -fuzz FuzzReadJSON -fuzztime 10s ./internal/dataset/
	$(GO) test -fuzz FuzzClassifyShape -fuzztime 10s ./internal/core/

cover:
	$(GO) test -cover ./...

# Full reproduction report as standalone HTML.
report:
	$(GO) run ./cmd/resil report -o resilience-report.html

clean:
	rm -f resilience-report.html test_output.txt bench_output.txt
