package resilience_test

// The benchmark harness regenerates every table and figure of the
// paper's evaluation (run with `go test -bench . -benchmem`). Each
// BenchmarkTableN / BenchmarkFigureN executes the full pipeline for that
// artifact — dataset reconstruction, least-squares fits, goodness-of-fit,
// confidence bands, metrics — and logs the rendered rows once, so
// `go test -bench Table1 -v` prints the Table I reproduction alongside
// its cost. BenchmarkAblation* measure the design choices called out in
// DESIGN.md.

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"resilience"
	"resilience/internal/core"
	"resilience/internal/dataset"
	"resilience/internal/experiment"
	"resilience/internal/optimize"
	"resilience/internal/quadrature"
	"resilience/internal/registry"
)

// _logOnce ensures each artifact's rendered text is logged a single time
// across benchmark iterations.
var _logOnce sync.Map

func benchArtifact(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		res, err := experiment.Run(id)
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		if _, loaded := _logOnce.LoadOrStore(id, true); !loaded {
			b.Logf("%s\n%s", res.Title, res.Text)
		}
	}
}

// BenchmarkTable1 regenerates Table I: quadratic vs competing-risks
// validation (SSE, PMSE, r2adj, EC) on all seven recessions.
func BenchmarkTable1(b *testing.B) { benchArtifact(b, "table1") }

// BenchmarkTable2 regenerates Table II: the eight interval-based metrics
// predicted by both bathtub models on 1990-93.
func BenchmarkTable2(b *testing.B) { benchArtifact(b, "table2") }

// BenchmarkTable3 regenerates Table III: the four mixture combinations
// on all seven recessions.
func BenchmarkTable3(b *testing.B) { benchArtifact(b, "table3") }

// BenchmarkTable4 regenerates Table IV: the eight metrics predicted by
// all four mixtures on 1990-93.
func BenchmarkTable4(b *testing.B) { benchArtifact(b, "table4") }

// BenchmarkFigure1 renders the conceptual resilience curve of Fig. 1.
func BenchmarkFigure1(b *testing.B) { benchArtifact(b, "fig1") }

// BenchmarkFigure2 renders the seven recession curves of Fig. 2.
func BenchmarkFigure2(b *testing.B) { benchArtifact(b, "fig2") }

// BenchmarkFigure3 regenerates Fig. 3: quadratic fit + 95% CI, 2001-05.
func BenchmarkFigure3(b *testing.B) { benchArtifact(b, "fig3") }

// BenchmarkFigure4 regenerates Fig. 4: competing-risks fit + CI, 1990-93.
func BenchmarkFigure4(b *testing.B) { benchArtifact(b, "fig4") }

// BenchmarkFigure5 regenerates Fig. 5: Wei-Exp mixture fit, 1990-93.
func BenchmarkFigure5(b *testing.B) { benchArtifact(b, "fig5") }

// BenchmarkFigure6 regenerates Fig. 6: Exp-Wei and Wei-Wei fits, 1981-83.
func BenchmarkFigure6(b *testing.B) { benchArtifact(b, "fig6") }

// benchSeries returns the 1990-93 series used by the micro and ablation
// benches.
func benchSeries(b *testing.B) *resilience.Series {
	b.Helper()
	rec, err := dataset.ByName("1990-93")
	if err != nil {
		b.Fatal(err)
	}
	return rec.Series
}

// BenchmarkFitQuadratic measures one full least-squares fit of the
// 3-parameter quadratic model to 48 months of data.
func BenchmarkFitQuadratic(b *testing.B) {
	data := benchSeries(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := resilience.Fit(resilience.Quadratic(), data, resilience.FitConfig{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFitCompetingRisks measures one fit of the competing-risks
// model.
func BenchmarkFitCompetingRisks(b *testing.B) {
	data := benchSeries(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := resilience.Fit(resilience.CompetingRisks(), data, resilience.FitConfig{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFitMixtureWeiWei measures one fit of the 5-parameter
// Weibull-Weibull mixture, the most expensive model in the paper.
func BenchmarkFitMixtureWeiWei(b *testing.B) {
	data := benchSeries(b)
	mix := resilience.StandardMixtures()[3]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := resilience.Fit(mix, data, resilience.FitConfig{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMetricsDiscrete measures computing all eight interval metrics
// in the paper's discrete-sum mode.
func BenchmarkMetricsDiscrete(b *testing.B) {
	benchMetrics(b, resilience.MetricsConfig{Mode: resilience.DiscreteSum})
}

// BenchmarkMetricsContinuous measures the same metrics under adaptive
// quadrature.
func BenchmarkMetricsContinuous(b *testing.B) {
	benchMetrics(b, resilience.MetricsConfig{Mode: resilience.Continuous})
}

func benchMetrics(b *testing.B, cfg resilience.MetricsConfig) {
	b.Helper()
	data := benchSeries(b)
	fit, err := resilience.Fit(resilience.CompetingRisks(), data, resilience.FitConfig{})
	if err != nil {
		b.Fatal(err)
	}
	w, err := resilience.PredictiveWindow(data, 43, fit)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := resilience.PredictedMetrics(fit, w, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationMultistart sweeps the number of Nelder–Mead starts
// and reports the SSE each budget achieves on the hardest dataset
// (2020-21), quantifying the multistart-breadth design choice.
func BenchmarkAblationMultistart(b *testing.B) {
	rec, err := dataset.ByName("2020-21")
	if err != nil {
		b.Fatal(err)
	}
	mix := resilience.StandardMixtures()[3] // weibull-weibull
	for _, starts := range []int{1, 4, 12, 32} {
		b.Run(fmt.Sprintf("starts=%d", starts), func(b *testing.B) {
			var sse float64
			for i := 0; i < b.N; i++ {
				fit, err := resilience.Fit(mix, rec.Series, resilience.FitConfig{Starts: starts})
				if err != nil {
					b.Fatal(err)
				}
				sse = fit.SSE
			}
			b.ReportMetric(sse, "SSE")
		})
	}
}

// BenchmarkAblationPolish compares Nelder–Mead-only fitting against
// NM + Levenberg–Marquardt polish.
func BenchmarkAblationPolish(b *testing.B) {
	data := benchSeries(b)
	for _, skip := range []bool{false, true} {
		name := "nm+lm"
		if skip {
			name = "nm-only"
		}
		b.Run(name, func(b *testing.B) {
			var sse float64
			for i := 0; i < b.N; i++ {
				fit, err := resilience.Fit(resilience.CompetingRisks(), data,
					resilience.FitConfig{SkipPolish: skip})
				if err != nil {
					b.Fatal(err)
				}
				sse = fit.SSE
			}
			b.ReportMetric(sse, "SSE")
		})
	}
}

// BenchmarkAblationAUC compares the closed-form areas of Eqs. (3)/(6)
// against adaptive quadrature on the same fitted curves, verifying
// agreement and measuring the cost gap.
func BenchmarkAblationAUC(b *testing.B) {
	params := []float64{1, 0.4, 0.002}
	m := registry.MustLookup("competing-risks").Model.(core.AreaModel)
	b.Run("closed-form", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := m.Area(params, 0, 47); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("quadrature", func(b *testing.B) {
		var diff float64
		analytic, err := m.Area(params, 0, 47)
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			numeric, err := quadrature.Adaptive(func(t float64) float64 {
				return m.Eval(params, t)
			}, 0, 47, 1e-10)
			if err != nil {
				b.Fatal(err)
			}
			diff = math.Abs(numeric - analytic)
		}
		if diff > 1e-6 {
			b.Fatalf("quadrature disagrees with closed form by %g", diff)
		}
	})
}

// BenchmarkAblationRecovery compares the closed-form recovery times of
// Eqs. (2)/(5) against Brent root finding on the same curve.
func BenchmarkAblationRecovery(b *testing.B) {
	m := registry.MustLookup("competing-risks").Model.(core.RecoveryModel)
	params := []float64{1, 0.4, 0.002}
	fit := &core.FitResult{Model: m, Params: params}
	b.Run("closed-form", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.RecoveryTime(fit, 1.0, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("brent", func(b *testing.B) {
		// A mixture has no closed form, forcing the numeric path over an
		// equivalent-shaped curve.
		mix, err := core.NewMixture(core.ExpFamily{}, core.ExpFamily{}, core.LogTrend{})
		if err != nil {
			b.Fatal(err)
		}
		mixFit := &core.FitResult{Model: mix, Params: []float64{0.3, 0.05, 0.4}}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := core.RecoveryTime(mixFit, 0.95, 48); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationTrend reruns the Table III pipeline with each
// alternative a2 transition {β, βt, e^{βt}, β·ln t} on 1990-93 and
// reports the best adjusted R² each trend achieves.
func BenchmarkAblationTrend(b *testing.B) {
	rec, err := dataset.ByName("1990-93")
	if err != nil {
		b.Fatal(err)
	}
	trends := []core.Trend{core.ConstTrend{}, core.LinearTrend{}, core.ExpTrend{}, core.LogTrend{}}
	for _, trend := range trends {
		b.Run(trend.Name(), func(b *testing.B) {
			var best float64
			for i := 0; i < b.N; i++ {
				mixtures, err := core.MixtureWithTrend(trend)
				if err != nil {
					b.Fatal(err)
				}
				best = math.Inf(-1)
				for _, mix := range mixtures {
					v, err := core.Validate(mix, rec.Series, core.ValidateConfig{})
					if err != nil {
						b.Fatal(err)
					}
					if v.GoF.R2Adj > best {
						best = v.GoF.R2Adj
					}
				}
			}
			b.ReportMetric(best, "bestR2adj")
		})
	}
}

// BenchmarkExtensionComposite runs the future-work experiment: single-dip
// models vs changepoint composites on the W-shaped 1980 recession.
func BenchmarkExtensionComposite(b *testing.B) { benchArtifact(b, "ext-composite") }

// BenchmarkExtensionSelection runs the automated model-selection
// experiment (all models ranked by PMSE with rolling-origin CV).
func BenchmarkExtensionSelection(b *testing.B) { benchArtifact(b, "ext-selection") }

// BenchmarkExtensionMonteCarlo runs the coupled-scenario Monte Carlo
// study: CI coverage and model-selection win rate by shape class.
func BenchmarkExtensionMonteCarlo(b *testing.B) { benchArtifact(b, "ext-montecarlo") }

// BenchmarkBootstrap measures a full 100-replicate residual bootstrap of
// the competing-risks model on 1990-93.
func BenchmarkBootstrap(b *testing.B) {
	data := benchSeries(b)
	fit, err := resilience.Fit(resilience.CompetingRisks(), data, resilience.FitConfig{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := resilience.Bootstrap(fit, resilience.BootstrapConfig{Replicates: 100}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRollingOriginCV measures the expanding-window cross-validation
// used by ByCV model selection.
func BenchmarkRollingOriginCV(b *testing.B) {
	data := benchSeries(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := resilience.RollingOriginCV(resilience.CompetingRisks(), data, 36, resilience.FitConfig{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPointMetrics measures the point-based metric bundle on a
// fitted curve.
func BenchmarkPointMetrics(b *testing.B) {
	data := benchSeries(b)
	fit, err := resilience.Fit(resilience.CompetingRisks(), data, resilience.FitConfig{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := resilience.FitPointMetrics(fit, 0, 47, 1.0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationOptimizer compares the two derivative-free local
// solvers (Nelder–Mead vs Powell) on the Eq. (8) objective for the
// competing-risks model on 1990-93 data, reporting the SSE each reaches
// from the same start.
func BenchmarkAblationOptimizer(b *testing.B) {
	rec, err := dataset.ByName("1990-93")
	if err != nil {
		b.Fatal(err)
	}
	m := registry.MustLookup("competing-risks").Model
	times := rec.Series.Times()
	values := rec.Series.Values()
	obj := func(params []float64) float64 {
		if m.Validate(params) != nil {
			return math.Inf(1)
		}
		var sse float64
		for i, t := range times {
			d := values[i] - m.Eval(params, t)
			sse += d * d
		}
		return sse
	}
	start := m.Guess(rec.Series)
	solvers := []struct {
		name string
		run  func() (optimize.Result, error)
	}{
		{"nelder-mead", func() (optimize.Result, error) {
			return optimize.NelderMead(obj, start, optimize.Options{})
		}},
		{"powell", func() (optimize.Result, error) {
			return optimize.Powell(obj, start, optimize.Options{})
		}},
	}
	for _, s := range solvers {
		b.Run(s.name, func(b *testing.B) {
			var sse float64
			for i := 0; i < b.N; i++ {
				r, err := s.run()
				if err != nil {
					b.Fatal(err)
				}
				sse = r.F
			}
			b.ReportMetric(sse, "SSE")
		})
	}
}
