// Command resil-server runs the resilience-modeling HTTP API: fit
// models, predict recovery times, and compute interval metrics over
// JSON. See internal/server for the endpoint reference.
//
// Usage:
//
//	resil-server -addr :8080
//
// The server shuts down gracefully on SIGINT/SIGTERM, draining in-flight
// requests for up to 10 seconds.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"resilience/internal/server"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		log.Fatal(err)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("resil-server", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	if err := fs.Parse(args); err != nil {
		return err
	}

	srv := server.New(*addr)

	// Serve until a termination signal arrives, then drain.
	errc := make(chan error, 1)
	go func() {
		log.Printf("resil-server listening on %s", *addr)
		errc <- srv.ListenAndServe()
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)

	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			return fmt.Errorf("serve: %w", err)
		}
		return nil
	case sig := <-stop:
		log.Printf("received %v, draining", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			return fmt.Errorf("shutdown: %w", err)
		}
		// Collect the listener goroutine's exit so it never outlives main.
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			return fmt.Errorf("serve: %w", err)
		}
		return nil
	}
}
