// Command resil-server runs the resilience-modeling HTTP API: fit
// models, predict recovery times, and compute interval metrics over
// JSON. See internal/server for the endpoint reference.
//
// Usage:
//
//	resil-server -addr :8080 -fit-timeout 30s [-pprof]
//	resil-server -data-dir /var/lib/resil -wal-sync always
//
// The server shuts down gracefully on SIGINT/SIGTERM, draining in-flight
// requests for up to 10 seconds. Fitting requests degrade rather than
// fail: deadlines propagate into the optimizers, panics are contained,
// and non-converging fits fall back to simpler model families unless
// -no-fallback is set.
//
// With -data-dir set, streaming sessions are durable: every lifecycle
// transition is written to a write-ahead log (fsync policy per
// -wal-sync) with periodic per-session snapshots (-snapshot-every), and
// a restart — graceful or kill -9 — replays them so sessions resume with
// identical history and a warm-started fit. While replay runs, /readyz
// answers 503 with phase "replaying". On graceful shutdown the stream
// subsystem drains first, then the WAL is flushed and closed, then the
// listener closes.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"resilience/internal/durable"
	"resilience/internal/server"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(args []string, stdout *os.File) error {
	fs := flag.NewFlagSet("resil-server", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	fitTimeout := fs.Duration("fit-timeout", 30*time.Second, "deadline for one fitting request, including retries and fallbacks")
	noFallback := fs.Bool("no-fallback", false, "disable the model degradation chain; failed fits return errors")
	fitCacheSize := fs.Int("fit-cache-size", 256, "max entries in the server fit cache (LRU over series+model+config digests); 0 disables caching")
	maxSessions := fs.Int("max-sessions", 64, "max open streaming sessions; at the cap the least recently active is evicted")
	sessionTTL := fs.Duration("session-ttl", 15*time.Minute, "idle streaming sessions older than this are evicted")
	dataDir := fs.String("data-dir", "", "directory for the session WAL and snapshots; empty keeps sessions in memory only")
	walSync := fs.String("wal-sync", "always", "WAL fsync policy: always (per record), interval (batched), or none (OS writeback)")
	snapshotEvery := fs.Int("snapshot-every", 64, "write a per-session snapshot after this many observations, bounding restart replay; negative disables")
	sloP99 := fs.Float64("slo-p99", 0, "p99 latency target in seconds; enables burn-rate/error-budget gauges over a rolling window (0 disables)")
	sloErrRate := fs.Float64("slo-error-rate", 0, "tolerated fraction of 5xx responses, e.g. 0.001; enables the error-budget gauges (0 disables)")
	logJSON := fs.Bool("log-json", false, "emit structured logs as JSON instead of text")
	enablePprof := fs.Bool("pprof", false, "mount net/http/pprof profiling endpoints at /debug/pprof/")
	showVersion := fs.Bool("version", false, "print version and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *showVersion {
		fmt.Fprintf(stdout, "resil-server %s\n", server.Version)
		return nil
	}

	var handler slog.Handler = slog.NewTextHandler(os.Stderr, nil)
	if *logJSON {
		handler = slog.NewJSONHandler(os.Stderr, nil)
	}
	logger := slog.New(handler)

	// Durability is opt-in: with -data-dir the session store opens before
	// the app so every lifecycle transition lands in the WAL from the
	// first request on.
	var wlog *durable.Log
	if *dataDir != "" {
		pol, err := durable.ParseSyncPolicy(*walSync)
		if err != nil {
			return err
		}
		wlog, err = durable.Open(*dataDir, durable.Options{Sync: pol, Logger: logger})
		if err != nil {
			return err
		}
	}

	cfg := server.Config{
		FitTimeout:      *fitTimeout,
		DisableFallback: *noFallback,
		Logger:          logger,
		EnablePprof:     *enablePprof,
		FitCacheSize:    *fitCacheSize,
		MaxSessions:     *maxSessions,
		SessionTTL:      *sessionTTL,
		SnapshotEvery:   *snapshotEvery,
		SLOP99:          *sloP99,
		SLOErrorRate:    *sloErrRate,
	}
	if wlog != nil {
		cfg.SessionStore = wlog
	}
	app := server.NewApp(cfg)
	srv := &http.Server{
		Addr:              *addr,
		Handler:           app.Handler,
		ReadTimeout:       10 * time.Second,
		ReadHeaderTimeout: 5 * time.Second,
		WriteTimeout:      60 * time.Second, // fits can take a few seconds; SSE clears its own deadline
		IdleTimeout:       120 * time.Second,
	}

	// Serve until a termination signal arrives, then drain.
	errc := make(chan error, 1)
	go func() {
		logger.Info("listening", "addr", *addr, "fit_timeout", fitTimeout.String(),
			"fallback", !*noFallback, "pprof", *enablePprof, "fit_cache_size", *fitCacheSize,
			"data_dir", *dataDir)
		errc <- srv.ListenAndServe()
	}()

	// Recovery runs beside the listener: the port opens immediately, but
	// /readyz reports phase "replaying" until the WAL has been replayed
	// and every surviving session restored. A torn WAL tail is dropped
	// and counted inside Recover — only environmental failures (an
	// unreadable disk) surface here and abort the boot.
	recovc := make(chan error, 1)
	if wlog != nil {
		go func() {
			states, st, err := wlog.Recover()
			if err != nil {
				recovc <- fmt.Errorf("recover sessions: %w", err)
				return
			}
			restored, dropped, err := app.Streams.Restore(states)
			if err != nil {
				recovc <- fmt.Errorf("restore sessions: %w", err)
				return
			}
			logger.Info("sessions recovered",
				"restored", restored, "dropped", dropped,
				"wal_records", st.RecordsReplayed, "torn_dropped", st.TornDropped,
				"duration", st.Duration)
			app.MarkReady()
		}()
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)

	shutdown := func(cause string) error {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		// Streaming sessions first: stop accepting observations, abort
		// in-flight refits, end every SSE feed with a terminal event, and
		// write each session's final snapshot — otherwise open feeds would
		// hold their connections and stall the listener drain below.
		if err := app.StreamShutdown(ctx); err != nil {
			logger.Warn("stream shutdown", "err", err)
		}
		// WAL flush/close second: after the stream drain (so the final
		// snapshots are in), before the listener closes.
		if wlog != nil {
			if err := wlog.Close(); err != nil {
				logger.Warn("wal close", "err", err)
			}
		}
		if err := srv.Shutdown(ctx); err != nil {
			return fmt.Errorf("shutdown (%s): %w", cause, err)
		}
		// Collect the listener goroutine's exit so it never outlives main.
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			return fmt.Errorf("serve: %w", err)
		}
		return nil
	}

	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			return fmt.Errorf("serve: %w", err)
		}
		return nil
	case err := <-recovc:
		logger.Error("session recovery failed; shutting down", "err", err)
		if serr := shutdown("recovery failure"); serr != nil {
			logger.Warn("shutdown after recovery failure", "err", serr)
		}
		return err
	case sig := <-stop:
		logger.Info("draining", "signal", sig.String())
		return shutdown("signal " + sig.String())
	}
}
