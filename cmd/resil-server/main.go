// Command resil-server runs the resilience-modeling HTTP API: fit
// models, predict recovery times, and compute interval metrics over
// JSON. See internal/server for the endpoint reference.
//
// Usage:
//
//	resil-server -addr :8080 -fit-timeout 30s [-pprof]
//
// The server shuts down gracefully on SIGINT/SIGTERM, draining in-flight
// requests for up to 10 seconds. Fitting requests degrade rather than
// fail: deadlines propagate into the optimizers, panics are contained,
// and non-converging fits fall back to simpler model families unless
// -no-fallback is set.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"resilience/internal/server"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(args []string, stdout *os.File) error {
	fs := flag.NewFlagSet("resil-server", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	fitTimeout := fs.Duration("fit-timeout", 30*time.Second, "deadline for one fitting request, including retries and fallbacks")
	noFallback := fs.Bool("no-fallback", false, "disable the model degradation chain; failed fits return errors")
	fitCacheSize := fs.Int("fit-cache-size", 256, "max entries in the server fit cache (LRU over series+model+config digests); 0 disables caching")
	maxSessions := fs.Int("max-sessions", 64, "max open streaming sessions; at the cap the least recently active is evicted")
	sessionTTL := fs.Duration("session-ttl", 15*time.Minute, "idle streaming sessions older than this are evicted")
	logJSON := fs.Bool("log-json", false, "emit structured logs as JSON instead of text")
	enablePprof := fs.Bool("pprof", false, "mount net/http/pprof profiling endpoints at /debug/pprof/")
	showVersion := fs.Bool("version", false, "print version and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *showVersion {
		fmt.Fprintf(stdout, "resil-server %s\n", server.Version)
		return nil
	}

	var handler slog.Handler = slog.NewTextHandler(os.Stderr, nil)
	if *logJSON {
		handler = slog.NewJSONHandler(os.Stderr, nil)
	}
	logger := slog.New(handler)

	app := server.NewApp(server.Config{
		FitTimeout:      *fitTimeout,
		DisableFallback: *noFallback,
		Logger:          logger,
		EnablePprof:     *enablePprof,
		FitCacheSize:    *fitCacheSize,
		MaxSessions:     *maxSessions,
		SessionTTL:      *sessionTTL,
	})
	srv := &http.Server{
		Addr:              *addr,
		Handler:           app.Handler,
		ReadTimeout:       10 * time.Second,
		ReadHeaderTimeout: 5 * time.Second,
		WriteTimeout:      60 * time.Second, // fits can take a few seconds; SSE clears its own deadline
		IdleTimeout:       120 * time.Second,
	}

	// Serve until a termination signal arrives, then drain.
	errc := make(chan error, 1)
	go func() {
		logger.Info("listening", "addr", *addr, "fit_timeout", fitTimeout.String(),
			"fallback", !*noFallback, "pprof", *enablePprof, "fit_cache_size", *fitCacheSize)
		errc <- srv.ListenAndServe()
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)

	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			return fmt.Errorf("serve: %w", err)
		}
		return nil
	case sig := <-stop:
		logger.Info("draining", "signal", sig.String())
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		// Streaming sessions first: stop accepting observations, abort
		// in-flight refits, and end every SSE feed with a terminal event —
		// otherwise open feeds would hold their connections and stall the
		// listener drain below.
		if err := app.StreamShutdown(ctx); err != nil {
			logger.Warn("stream shutdown", "err", err)
		}
		if err := srv.Shutdown(ctx); err != nil {
			return fmt.Errorf("shutdown: %w", err)
		}
		// Collect the listener goroutine's exit so it never outlives main.
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			return fmt.Errorf("serve: %w", err)
		}
		return nil
	}
}
