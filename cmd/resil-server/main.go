// Command resil-server runs the resilience-modeling HTTP API: fit
// models, predict recovery times, and compute interval metrics over
// JSON. See internal/server for the endpoint reference.
//
// Usage:
//
//	resil-server -addr :8080 -fit-timeout 30s [-pprof]
//	resil-server -data-dir /var/lib/resil -wal-sync always
//	resil-server -binary-addr :9090
//	resil-server -binary-addr :9090 -node 127.0.0.1:9090 \
//	    -peers 127.0.0.1:9090,127.0.0.1:9091,127.0.0.1:9092
//
// With -binary-addr a second listener serves the compact binary
// protocol (internal/transport) answering the same operations as HTTP.
// With -peers (a static table of every node's binary address, self
// included via -node) the server joins a shared-nothing cluster:
// session IDs map to owners on a consistent-hash ring, and requests for
// sessions owned elsewhere are forwarded to the owner over the binary
// transport.
//
// The server shuts down gracefully on SIGINT/SIGTERM, draining in-flight
// requests for up to 10 seconds. Fitting requests degrade rather than
// fail: deadlines propagate into the optimizers, panics are contained,
// and non-converging fits fall back to simpler model families unless
// -no-fallback is set.
//
// With -data-dir set, streaming sessions are durable: every lifecycle
// transition is written to a write-ahead log (fsync policy per
// -wal-sync) with periodic per-session snapshots (-snapshot-every), and
// a restart — graceful or kill -9 — replays them so sessions resume with
// identical history and a warm-started fit. While replay runs, /readyz
// answers 503 with phase "replaying". On graceful shutdown the stream
// subsystem drains first, then the WAL is flushed and closed, then the
// listener closes.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"resilience/internal/cluster"
	"resilience/internal/durable"
	"resilience/internal/server"
	"resilience/internal/transport/binary"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(args []string, stdout *os.File) error {
	fs := flag.NewFlagSet("resil-server", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	fitTimeout := fs.Duration("fit-timeout", 30*time.Second, "deadline for one fitting request, including retries and fallbacks")
	noFallback := fs.Bool("no-fallback", false, "disable the model degradation chain; failed fits return errors")
	fitCacheSize := fs.Int("fit-cache-size", 256, "max entries in the server fit cache (LRU over series+model+config digests); 0 disables caching")
	maxSessions := fs.Int("max-sessions", 64, "max open streaming sessions; at the cap the least recently active is evicted")
	sessionTTL := fs.Duration("session-ttl", 15*time.Minute, "idle streaming sessions older than this are evicted")
	dataDir := fs.String("data-dir", "", "directory for the session WAL and snapshots; empty keeps sessions in memory only")
	walSync := fs.String("wal-sync", "always", "WAL fsync policy: always (per record), interval (batched), or none (OS writeback)")
	snapshotEvery := fs.Int("snapshot-every", 64, "write a per-session snapshot after this many observations, bounding restart replay; negative disables")
	sloP99 := fs.Float64("slo-p99", 0, "p99 latency target in seconds; enables burn-rate/error-budget gauges over a rolling window (0 disables)")
	sloErrRate := fs.Float64("slo-error-rate", 0, "tolerated fraction of 5xx responses, e.g. 0.001; enables the error-budget gauges (0 disables)")
	binaryAddr := fs.String("binary-addr", "", "listen address for the binary transport; empty disables it")
	peers := fs.String("peers", "", "comma-separated binary addresses of every cluster node (self included); empty runs single-node")
	nodeAddr := fs.String("node", "", "this node's binary address as written in -peers; required with -peers")
	logJSON := fs.Bool("log-json", false, "emit structured logs as JSON instead of text")
	enablePprof := fs.Bool("pprof", false, "mount net/http/pprof profiling endpoints at /debug/pprof/")
	showVersion := fs.Bool("version", false, "print version and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *showVersion {
		fmt.Fprintf(stdout, "resil-server %s\n", server.Version)
		return nil
	}

	var handler slog.Handler = slog.NewTextHandler(os.Stderr, nil)
	if *logJSON {
		handler = slog.NewJSONHandler(os.Stderr, nil)
	}
	logger := slog.New(handler)

	// Durability is opt-in: with -data-dir the session store opens before
	// the app so every lifecycle transition lands in the WAL from the
	// first request on.
	var wlog *durable.Log
	if *dataDir != "" {
		pol, err := durable.ParseSyncPolicy(*walSync)
		if err != nil {
			return err
		}
		wlog, err = durable.Open(*dataDir, durable.Options{Sync: pol, Logger: logger})
		if err != nil {
			return err
		}
	}

	// Clustering is opt-in: -peers names every node's binary address and
	// -node says which entry is us. Ownership is a pure function of the
	// table, so there is nothing to join or gossip — but forwarding needs
	// the binary listener, so -binary-addr is required alongside.
	var clus *cluster.Cluster
	if *peers != "" {
		if *nodeAddr == "" {
			return fmt.Errorf("-peers requires -node (this node's entry in the peer table)")
		}
		if *binaryAddr == "" {
			return fmt.Errorf("-peers requires -binary-addr (forwarding runs over the binary transport)")
		}
		table := strings.Split(*peers, ",")
		for i := range table {
			table[i] = strings.TrimSpace(table[i])
		}
		var err error
		clus, err = cluster.New(cluster.Config{Self: *nodeAddr, Peers: table})
		if err != nil {
			if wlog != nil {
				wlog.Close()
			}
			return err
		}
	}

	cfg := server.Config{
		FitTimeout:      *fitTimeout,
		DisableFallback: *noFallback,
		Logger:          logger,
		EnablePprof:     *enablePprof,
		FitCacheSize:    *fitCacheSize,
		MaxSessions:     *maxSessions,
		SessionTTL:      *sessionTTL,
		SnapshotEvery:   *snapshotEvery,
		SLOP99:          *sloP99,
		SLOErrorRate:    *sloErrRate,
	}
	if wlog != nil {
		cfg.SessionStore = wlog
	}
	if clus != nil {
		cfg.Cluster = clus
	}
	app := server.NewApp(cfg)
	srv := &http.Server{
		Addr:              *addr,
		Handler:           app.Handler,
		ReadTimeout:       10 * time.Second,
		ReadHeaderTimeout: 5 * time.Second,
		WriteTimeout:      60 * time.Second, // fits can take a few seconds; SSE clears its own deadline
		IdleTimeout:       120 * time.Second,
	}

	// The binary listener, when enabled, serves the same operation set on
	// a second port. It binds before the HTTP goroutine starts so a bad
	// address fails the boot instead of logging from a goroutine.
	var binSrv *binary.Server
	var binErrc chan error
	if *binaryAddr != "" {
		ln, err := net.Listen("tcp", *binaryAddr)
		if err != nil {
			if wlog != nil {
				wlog.Close()
			}
			return fmt.Errorf("binary listen: %w", err)
		}
		binSrv = binary.NewServer(app.BinaryHandler(), logger)
		binErrc = make(chan error, 1)
		go func() {
			logger.Info("binary listening", "addr", ln.Addr().String(),
				"cluster", clus != nil)
			binErrc <- binSrv.Serve(ln)
		}()
	}

	// Serve until a termination signal arrives, then drain.
	errc := make(chan error, 1)
	go func() {
		logger.Info("listening", "addr", *addr, "fit_timeout", fitTimeout.String(),
			"fallback", !*noFallback, "pprof", *enablePprof, "fit_cache_size", *fitCacheSize,
			"data_dir", *dataDir, "binary_addr", *binaryAddr)
		errc <- srv.ListenAndServe()
	}()

	// Recovery runs beside the listener: the port opens immediately, but
	// /readyz reports phase "replaying" until the WAL has been replayed
	// and every surviving session restored. A torn WAL tail is dropped
	// and counted inside Recover — only environmental failures (an
	// unreadable disk) surface here and abort the boot.
	recovc := make(chan error, 1)
	if wlog != nil {
		go func() {
			states, st, err := wlog.Recover()
			if err != nil {
				recovc <- fmt.Errorf("recover sessions: %w", err)
				return
			}
			restored, dropped, err := app.Streams.Restore(states)
			if err != nil {
				recovc <- fmt.Errorf("restore sessions: %w", err)
				return
			}
			logger.Info("sessions recovered",
				"restored", restored, "dropped", dropped,
				"wal_records", st.RecordsReplayed, "torn_dropped", st.TornDropped,
				"duration", st.Duration)
			app.MarkReady()
		}()
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)

	shutdown := func(cause string) error {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		// Streaming sessions first: stop accepting observations, abort
		// in-flight refits, end every SSE feed with a terminal event, and
		// write each session's final snapshot — otherwise open feeds would
		// hold their connections and stall the listener drain below.
		if err := app.StreamShutdown(ctx); err != nil {
			logger.Warn("stream shutdown", "err", err)
		}
		// Forwarding paths second: drain in-flight peer forwards and
		// inbound binary requests — both can still write to sessions and
		// hence the WAL, so they must settle before the log closes.
		if clus != nil {
			clus.Shutdown(ctx)
		}
		if binSrv != nil {
			if err := binSrv.Shutdown(ctx); err != nil {
				logger.Warn("binary shutdown", "err", err)
			}
		}
		// WAL flush/close third: after the stream and forward drains (so
		// the final snapshots are in), before the listeners close.
		if wlog != nil {
			if err := wlog.Close(); err != nil {
				logger.Warn("wal close", "err", err)
			}
		}
		if err := srv.Shutdown(ctx); err != nil {
			return fmt.Errorf("shutdown (%s): %w", cause, err)
		}
		// Collect the listener goroutines' exits so they never outlive main.
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			return fmt.Errorf("serve: %w", err)
		}
		if binErrc != nil {
			if err := <-binErrc; err != nil && !errors.Is(err, net.ErrClosed) {
				return fmt.Errorf("binary serve: %w", err)
			}
		}
		return nil
	}

	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			return fmt.Errorf("serve: %w", err)
		}
		return nil
	case err := <-binErrc: // nil channel (binary disabled) never fires
		if err != nil && !errors.Is(err, net.ErrClosed) {
			logger.Error("binary listener failed; shutting down", "err", err)
			binErrc = nil // already exited; don't collect it again
			binSrv = nil
			if serr := shutdown("binary listener failure"); serr != nil {
				logger.Warn("shutdown after binary failure", "err", serr)
			}
			return fmt.Errorf("binary serve: %w", err)
		}
		return nil
	case err := <-recovc:
		logger.Error("session recovery failed; shutting down", "err", err)
		if serr := shutdown("recovery failure"); serr != nil {
			logger.Warn("shutdown after recovery failure", "err", serr)
		}
		return err
	case sig := <-stop:
		logger.Info("draining", "signal", sig.String())
		return shutdown("signal " + sig.String())
	}
}
