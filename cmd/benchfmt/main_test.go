package main

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: resilience/internal/core
BenchmarkFit/quadratic-8         	     100	  12345678 ns/op	        2100 evals/op	         840.5 iters/op	    4096 B/op	      12 allocs/op
BenchmarkFit/competing-risks-8   	      50	  23456789 ns/op	        3200 evals/op	        1200 iters/op
PASS
ok  	resilience/internal/core	3.210s
`

func TestRunParsesBenchOutput(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_fit.json")
	if err := run([]string{"-out", out}, strings.NewReader(sample), io.Discard, io.Discard); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("output not JSON: %v\n%s", err, raw)
	}
	if rep.Go == "" || rep.GOOS == "" || rep.GOARCH == "" {
		t.Errorf("missing toolchain fields: %+v", rep)
	}
	if rep.CPUs <= 0 {
		t.Errorf("cpus = %d, want > 0", rep.CPUs)
	}
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("benchmarks = %+v", rep.Benchmarks)
	}
	b0 := rep.Benchmarks[0]
	if b0.Name != "Fit/quadratic" || b0.Runs != 100 || b0.NsPerOp != 12345678 {
		t.Errorf("first benchmark = %+v", b0)
	}
	for unit, want := range map[string]float64{
		"evals/op": 2100, "iters/op": 840.5, "B/op": 4096, "allocs/op": 12,
	} {
		if got := b0.Metrics[unit]; got != want {
			t.Errorf("metric %s = %g, want %g", unit, got, want)
		}
	}
	if rep.Benchmarks[1].Name != "Fit/competing-risks" {
		t.Errorf("second benchmark = %+v", rep.Benchmarks[1])
	}
}

func TestRunRejectsEmptyInput(t *testing.T) {
	if err := run(nil, strings.NewReader("no benchmarks here\n"), io.Discard, io.Discard); err == nil {
		t.Error("expected error for input without benchmark lines")
	}
}

// TestRunCompareMode feeds a fresh run through -baseline and checks the
// delta table: improvements, regressions, and benchmarks present on only
// one side.
func TestRunCompareMode(t *testing.T) {
	base := report{
		Go: "go1.24.0", GOOS: "linux", GOARCH: "amd64", CPUs: 1,
		Benchmarks: []result{
			{Name: "Fit/quadratic", Runs: 50, NsPerOp: 20000000,
				Metrics: map[string]float64{"allocs/op": 11212}},
			{Name: "Fit/removed", Runs: 50, NsPerOp: 1000,
				Metrics: map[string]float64{"allocs/op": 7}},
		},
	}
	raw, err := json.Marshal(base)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "BENCH_fit.json")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	fresh := `BenchmarkFit/quadratic-1   50   10000000 ns/op   228 allocs/op
BenchmarkFit/added-1       50       5000 ns/op     3 allocs/op
`
	var out strings.Builder
	if err := run([]string{"-baseline", path}, strings.NewReader(fresh), &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"Fit/quadratic", "-50.0%", "2.0x fewer", "49.2x fewer",
		"Fit/added", "new", "Fit/removed", "gone",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("compare output missing %q:\n%s", want, got)
		}
	}
}

// TestRunCompareFlagsMachineClassMismatch checks the warning when the
// baseline was captured on different hardware.
func TestRunCompareFlagsMachineClassMismatch(t *testing.T) {
	base := report{
		Go: "go1.24.0", GOOS: "linux", GOARCH: "amd64", CPUs: 512,
		Benchmarks: []result{{Name: "Fit/quadratic", Runs: 50, NsPerOp: 100}},
	}
	raw, err := json.Marshal(base)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "BENCH_fit.json")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	fresh := "BenchmarkFit/quadratic-1   50   100 ns/op\n"
	if err := run([]string{"-baseline", path}, strings.NewReader(fresh), &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "machine class differs") {
		t.Errorf("expected machine-class warning, got:\n%s", out.String())
	}
}

func TestRunCompareMissingBaseline(t *testing.T) {
	fresh := "BenchmarkFit/quadratic-1   50   100 ns/op\n"
	err := run([]string{"-baseline", filepath.Join(t.TempDir(), "nope.json")},
		strings.NewReader(fresh), io.Discard, io.Discard)
	if err == nil {
		t.Error("expected error for missing baseline file")
	}
}
