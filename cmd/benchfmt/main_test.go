package main

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: resilience/internal/core
BenchmarkFit/quadratic-8         	     100	  12345678 ns/op	        2100 evals/op	         840.5 iters/op	    4096 B/op	      12 allocs/op
BenchmarkFit/competing-risks-8   	      50	  23456789 ns/op	        3200 evals/op	        1200 iters/op
PASS
ok  	resilience/internal/core	3.210s
`

func TestRunParsesBenchOutput(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_fit.json")
	if err := run([]string{"-out", out}, strings.NewReader(sample), io.Discard); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("output not JSON: %v\n%s", err, raw)
	}
	if rep.Go == "" || rep.GOOS == "" || rep.GOARCH == "" {
		t.Errorf("missing toolchain fields: %+v", rep)
	}
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("benchmarks = %+v", rep.Benchmarks)
	}
	b0 := rep.Benchmarks[0]
	if b0.Name != "Fit/quadratic" || b0.Runs != 100 || b0.NsPerOp != 12345678 {
		t.Errorf("first benchmark = %+v", b0)
	}
	for unit, want := range map[string]float64{
		"evals/op": 2100, "iters/op": 840.5, "B/op": 4096, "allocs/op": 12,
	} {
		if got := b0.Metrics[unit]; got != want {
			t.Errorf("metric %s = %g, want %g", unit, got, want)
		}
	}
	if rep.Benchmarks[1].Name != "Fit/competing-risks" {
		t.Errorf("second benchmark = %+v", rep.Benchmarks[1])
	}
}

func TestRunRejectsEmptyInput(t *testing.T) {
	if err := run(nil, strings.NewReader("no benchmarks here\n"), io.Discard); err == nil {
		t.Error("expected error for input without benchmark lines")
	}
}
