// Command benchfmt turns `go test -bench` text output into a structured
// JSON benchmark record, so perf numbers live in a machine-readable file
// (BENCH_fit.json) that future PRs can diff instead of eyeballing logs.
//
// Usage:
//
//	go test -run '^$' -bench BenchmarkFit -benchmem ./internal/core/ | benchfmt -out BENCH_fit.json
//	go test -run '^$' -bench BenchmarkFit -benchmem ./internal/core/ | benchfmt -baseline BENCH_fit.json
//
// It parses the standard benchmark result lines, including any custom
// metrics reported with testing.B.ReportMetric (evals/op, iters/op), and
// records the toolchain and host alongside, since ns/op is meaningless
// without them.
//
// With -baseline, instead of (or in addition to) writing JSON it loads a
// previously written report and prints a per-benchmark comparison of
// ns/op, evals/op, and allocs/op against the fresh run, flagging results
// that exist on only one side. Wall-clock deltas are only meaningful on
// the same machine class as the baseline (the report records CPU count
// for that reason); evals/op and allocs/op deltas are
// machine-independent. -compare-out writes the same comparison to a
// file (BENCH_compare.txt in the Makefile), and -gate-evals N makes the
// exit status fail when any matched benchmark's evals/op regressed more
// than N percent — the CI perf gate.
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"text/tabwriter"
)

// result is one benchmark line.
type result struct {
	// Name is the benchmark path with the GOMAXPROCS suffix stripped,
	// e.g. "Fit/quadratic".
	Name string `json:"name"`
	// Runs is the iteration count the harness settled on.
	Runs int64 `json:"runs"`
	// NsPerOp is wall time per iteration.
	NsPerOp float64 `json:"ns_per_op"`
	// Metrics holds every other per-op measurement on the line, keyed by
	// unit: B/op, allocs/op, and custom units like evals/op.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// report is the output document.
type report struct {
	Go   string `json:"go"`
	GOOS string `json:"goos"`
	// GOARCH plus CPUs identify the machine class; ns/op comparisons
	// across different classes are noise.
	GOARCH     string   `json:"goarch"`
	CPUs       int      `json:"cpus,omitempty"`
	Benchmarks []result `json:"benchmarks"`
}

// benchLine matches "BenchmarkFit/quadratic-8  100  123456 ns/op  12 evals/op".
var benchLine = regexp.MustCompile(`^Benchmark(\S+?)(?:-\d+)?\s+(\d+)\s+(.*)$`)

// metricPair matches one "value unit" cell of a benchmark line.
var metricPair = regexp.MustCompile(`([0-9.eE+-]+)\s+(\S+)`)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("benchfmt", flag.ContinueOnError)
	out := fs.String("out", "", "output file (default stdout)")
	baseline := fs.String("baseline", "", "baseline JSON report to compare the fresh run against")
	compareOut := fs.String("compare-out", "", "also write the -baseline comparison to this file")
	gateEvals := fs.Float64("gate-evals", 0, "fail if any benchmark's evals/op regresses more than this percentage against the baseline (0 disables)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	rep := report{Go: runtime.Version(), GOOS: runtime.GOOS, GOARCH: runtime.GOARCH, CPUs: runtime.NumCPU()}
	sc := bufio.NewScanner(stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		// Echo the raw output so piping through benchfmt hides nothing.
		fmt.Fprintln(stderr, line)
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		runs, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			continue
		}
		r := result{Name: m[1], Runs: runs, Metrics: map[string]float64{}}
		for _, cell := range metricPair.FindAllStringSubmatch(m[3], -1) {
			v, err := strconv.ParseFloat(cell[1], 64)
			if err != nil {
				continue
			}
			if cell[2] == "ns/op" {
				r.NsPerOp = v
			} else {
				r.Metrics[cell[2]] = v
			}
		}
		if len(r.Metrics) == 0 {
			r.Metrics = nil
		}
		rep.Benchmarks = append(rep.Benchmarks, r)
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("read input: %w", err)
	}
	if len(rep.Benchmarks) == 0 {
		return fmt.Errorf("benchfmt: no benchmark lines found in input")
	}

	if *baseline != "" {
		var buf strings.Builder
		gateErr := compare(&buf, *baseline, rep, *gateEvals)
		if gateErr != nil && !errors.Is(gateErr, errGate) {
			return gateErr
		}
		if _, err := io.WriteString(stdout, buf.String()); err != nil {
			return err
		}
		if *compareOut != "" {
			if err := os.WriteFile(*compareOut, []byte(buf.String()), 0o644); err != nil {
				return err
			}
			fmt.Fprintf(stderr, "benchfmt: wrote comparison to %s\n", *compareOut)
		}
		if gateErr != nil {
			return gateErr
		}
	}

	var b strings.Builder
	enc := json.NewEncoder(&b)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return err
	}
	if *out == "" {
		if *baseline != "" {
			// Compare mode already used stdout for the table; don't
			// interleave the JSON document with it.
			return nil
		}
		_, err := io.WriteString(stdout, b.String())
		return err
	}
	if err := os.WriteFile(*out, []byte(b.String()), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(stderr, "benchfmt: wrote %d results to %s\n", len(rep.Benchmarks), *out)
	return nil
}

// errGate marks a comparison that completed but tripped the -gate-evals
// regression threshold; the table is still written before it propagates.
var errGate = errors.New("benchfmt: evals/op regression gate tripped")

// compare prints a per-benchmark delta table of the fresh run against the
// baseline report stored at path. With gatePct > 0 it returns errGate
// (after writing the full table) if any matched benchmark's evals/op —
// the machine-independent optimizer-cost metric — regressed by more than
// gatePct percent.
func compare(w io.Writer, path string, fresh report, gatePct float64) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("read baseline: %w", err)
	}
	var base report
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("parse baseline %s: %w", path, err)
	}
	byName := make(map[string]result, len(base.Benchmarks))
	for _, r := range base.Benchmarks {
		byName[r.Name] = r
	}

	fmt.Fprintf(w, "benchfmt: comparing against %s (baseline: %s %s/%s", path, base.Go, base.GOOS, base.GOARCH)
	if base.CPUs > 0 {
		fmt.Fprintf(w, ", %d CPUs", base.CPUs)
	}
	fmt.Fprintf(w, "; this run: %s %s/%s, %d CPUs)\n", fresh.Go, fresh.GOOS, fresh.GOARCH, fresh.CPUs)
	if base.GOARCH != fresh.GOARCH || (base.CPUs > 0 && base.CPUs != fresh.CPUs) {
		fmt.Fprintln(w, "benchfmt: WARNING: machine class differs from baseline; ns/op deltas are not comparable (evals/op and allocs/op still are)")
	}

	var regressions []string
	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "benchmark\tns/op old\tns/op new\tdelta\tevals/op old\tevals/op new\tdelta\tallocs/op old\tallocs/op new\tdelta")
	seen := make(map[string]bool, len(fresh.Benchmarks))
	for _, f := range fresh.Benchmarks {
		seen[f.Name] = true
		b, ok := byName[f.Name]
		if !ok {
			fmt.Fprintf(tw, "%s\t-\t%.0f\tnew\t-\t%s\tnew\t-\t%s\tnew\n",
				f.Name, f.NsPerOp, fmtMetric(f.Metrics, "evals/op"), fmtMetric(f.Metrics, "allocs/op"))
			continue
		}
		fmt.Fprintf(tw, "%s\t%.0f\t%.0f\t%s\t%s\t%s\t%s\t%s\t%s\t%s\n",
			f.Name,
			b.NsPerOp, f.NsPerOp, delta(b.NsPerOp, f.NsPerOp),
			fmtMetric(b.Metrics, "evals/op"), fmtMetric(f.Metrics, "evals/op"),
			metricDelta(b.Metrics, f.Metrics, "evals/op"),
			fmtMetric(b.Metrics, "allocs/op"), fmtMetric(f.Metrics, "allocs/op"),
			metricDelta(b.Metrics, f.Metrics, "allocs/op"))
		if gatePct > 0 {
			ov, ook := b.Metrics["evals/op"]
			nv, nok := f.Metrics["evals/op"]
			if ook && nok && ov > 0 && (nv-ov)/ov*100 > gatePct {
				regressions = append(regressions,
					fmt.Sprintf("%s: evals/op %s -> %s (%+.1f%%, gate %.0f%%)",
						f.Name, fmtFloat(ov), fmtFloat(nv), (nv-ov)/ov*100, gatePct))
			}
		}
	}
	for _, b := range base.Benchmarks {
		if !seen[b.Name] {
			fmt.Fprintf(tw, "%s\t%.0f\t-\tgone\t%s\t-\tgone\t%s\t-\tgone\n",
				b.Name, b.NsPerOp, fmtMetric(b.Metrics, "evals/op"), fmtMetric(b.Metrics, "allocs/op"))
		}
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	streamSummary(w, base, fresh)

	if len(regressions) > 0 {
		fmt.Fprintln(w)
		for _, r := range regressions {
			fmt.Fprintf(w, "REGRESSION %s\n", r)
		}
		return fmt.Errorf("%w: %d benchmark(s) regressed", errGate, len(regressions))
	}
	return nil
}

// streamSummary documents the streaming hot path. Before warm-started
// polishes existed, every per-point refit of a streaming session cost a
// full multistart fit — exactly what the baseline's Fit/<model> entry
// records — so the honest per-point reduction is warm polish now vs
// baseline full fit, with the same-run full-chain cost alongside for
// scale. Printed only when the fresh run contains StreamRefit results.
func streamSummary(w io.Writer, base, fresh report) {
	freshByName := make(map[string]result, len(fresh.Benchmarks))
	for _, r := range fresh.Benchmarks {
		freshByName[r.Name] = r
	}
	baseByName := make(map[string]result, len(base.Benchmarks))
	for _, r := range base.Benchmarks {
		baseByName[r.Name] = r
	}
	var lines []string
	for _, f := range fresh.Benchmarks {
		model, ok := strings.CutPrefix(f.Name, "StreamRefit/")
		if !ok {
			continue
		}
		model, ok = strings.CutSuffix(model, "/warm")
		if !ok {
			continue
		}
		warm, wok := f.Metrics["evals/op"]
		if !wok || warm <= 0 {
			continue
		}
		line := fmt.Sprintf("  %s: %s evals/op warm", model, fmtFloat(warm))
		if full, ok := freshByName["StreamRefit/"+model+"/full"].Metrics["evals/op"]; ok && full > 0 {
			line += fmt.Sprintf(" vs %s full chain (%.1fx fewer)", fmtFloat(full), full/warm)
		}
		// Prefer the baseline's own streaming numbers once it has them; a
		// pre-streaming baseline still records what each per-point refit
		// used to cost as its full-fit entry.
		if old, ok := baseByName["StreamRefit/"+model+"/warm"].Metrics["evals/op"]; ok && old > 0 {
			line += fmt.Sprintf(" vs %s baseline warm (%.1fx fewer)", fmtFloat(old), old/warm)
		} else if old, ok := baseByName["Fit/"+model].Metrics["evals/op"]; ok && old > 0 {
			line += fmt.Sprintf(" vs %s baseline per-point full fit (%.1fx fewer)", fmtFloat(old), old/warm)
		}
		lines = append(lines, line)
	}
	if len(lines) == 0 {
		return
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "streaming per-point refit (evals/op):")
	for _, l := range lines {
		fmt.Fprintln(w, l)
	}
}

// fmtFloat renders a metric value compactly.
func fmtFloat(v float64) string {
	if v == math.Trunc(v) {
		return strconv.FormatFloat(v, 'f', 0, 64)
	}
	return strconv.FormatFloat(v, 'g', 4, 64)
}

// delta formats the relative change from old to new, with the improvement
// factor when it is at least 2x either way.
func delta(old, new float64) string {
	if old == 0 {
		return "?"
	}
	pct := (new - old) / old * 100
	s := fmt.Sprintf("%+.1f%%", pct)
	switch {
	case new > 0 && old/new >= 2:
		s += fmt.Sprintf(" (%.1fx fewer)", old/new)
	case old > 0 && new/old >= 2:
		s += fmt.Sprintf(" (%.1fx more)", new/old)
	}
	return s
}

// fmtMetric renders one metric value, or "-" when the report lacks it
// (e.g. a baseline captured without -benchmem).
func fmtMetric(m map[string]float64, unit string) string {
	v, ok := m[unit]
	if !ok {
		return "-"
	}
	if v == math.Trunc(v) {
		return strconv.FormatFloat(v, 'f', 0, 64)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// metricDelta formats the change in one metric between two reports.
func metricDelta(old, new map[string]float64, unit string) string {
	ov, ook := old[unit]
	nv, nok := new[unit]
	if !ook || !nok {
		return "-"
	}
	return delta(ov, nv)
}
