// Command benchfmt turns `go test -bench` text output into a structured
// JSON benchmark record, so perf numbers live in a machine-readable file
// (BENCH_fit.json) that future PRs can diff instead of eyeballing logs.
//
// Usage:
//
//	go test -run '^$' -bench BenchmarkFit -benchmem ./internal/core/ | benchfmt -out BENCH_fit.json
//
// It parses the standard benchmark result lines, including any custom
// metrics reported with testing.B.ReportMetric (evals/op, iters/op), and
// records the toolchain and host alongside, since ns/op is meaningless
// without them.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"runtime"
	"strconv"
	"strings"
)

// result is one benchmark line.
type result struct {
	// Name is the benchmark path with the GOMAXPROCS suffix stripped,
	// e.g. "Fit/quadratic".
	Name string `json:"name"`
	// Runs is the iteration count the harness settled on.
	Runs int64 `json:"runs"`
	// NsPerOp is wall time per iteration.
	NsPerOp float64 `json:"ns_per_op"`
	// Metrics holds every other per-op measurement on the line, keyed by
	// unit: B/op, allocs/op, and custom units like evals/op.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// report is the output document.
type report struct {
	Go         string   `json:"go"`
	GOOS       string   `json:"goos"`
	GOARCH     string   `json:"goarch"`
	Benchmarks []result `json:"benchmarks"`
}

// benchLine matches "BenchmarkFit/quadratic-8  100  123456 ns/op  12 evals/op".
var benchLine = regexp.MustCompile(`^Benchmark(\S+?)(?:-\d+)?\s+(\d+)\s+(.*)$`)

// metricPair matches one "value unit" cell of a benchmark line.
var metricPair = regexp.MustCompile(`([0-9.eE+-]+)\s+(\S+)`)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stderr io.Writer) error {
	fs := flag.NewFlagSet("benchfmt", flag.ContinueOnError)
	out := fs.String("out", "", "output file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	rep := report{Go: runtime.Version(), GOOS: runtime.GOOS, GOARCH: runtime.GOARCH}
	sc := bufio.NewScanner(stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		// Echo the raw output so piping through benchfmt hides nothing.
		fmt.Fprintln(stderr, line)
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		runs, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			continue
		}
		r := result{Name: m[1], Runs: runs, Metrics: map[string]float64{}}
		for _, cell := range metricPair.FindAllStringSubmatch(m[3], -1) {
			v, err := strconv.ParseFloat(cell[1], 64)
			if err != nil {
				continue
			}
			if cell[2] == "ns/op" {
				r.NsPerOp = v
			} else {
				r.Metrics[cell[2]] = v
			}
		}
		if len(r.Metrics) == 0 {
			r.Metrics = nil
		}
		rep.Benchmarks = append(rep.Benchmarks, r)
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("read input: %w", err)
	}
	if len(rep.Benchmarks) == 0 {
		return fmt.Errorf("benchfmt: no benchmark lines found in input")
	}

	var b strings.Builder
	enc := json.NewEncoder(&b)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return err
	}
	if *out == "" {
		_, err := os.Stdout.WriteString(b.String())
		return err
	}
	if err := os.WriteFile(*out, []byte(b.String()), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(stderr, "benchfmt: wrote %d results to %s\n", len(rep.Benchmarks), *out)
	return nil
}
