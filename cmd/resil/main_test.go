package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"resilience/internal/dataset"
	"resilience/internal/registry"
)

func TestResolveModel(t *testing.T) {
	tests := []struct {
		give string
		want string
	}{
		{"quadratic", "quadratic"},
		{"quad", "quadratic"},
		{"competing-risks", "competing-risks"},
		{"CR", "competing-risks"},
		{"hjorth", "competing-risks"},
		{"exp-bathtub", "exp-bathtub"},
		{"exp-exp", "exp-exp"},
		{"wei-exp", "weibull-exp"},
		{"WEIBULL-EXP", "weibull-exp"},
		{"exp-wei", "exp-weibull"},
		{"wei-wei", "weibull-weibull"},
	}
	for _, tt := range tests {
		m, err := resolveModel(tt.give)
		if err != nil {
			t.Errorf("resolveModel(%q): %v", tt.give, err)
			continue
		}
		if m.Name() != tt.want {
			t.Errorf("resolveModel(%q) = %s, want %s", tt.give, m.Name(), tt.want)
		}
	}
	if _, err := resolveModel("nope"); err == nil {
		t.Error("unknown model: want error")
	}
}

// Every registry name and alias must resolve through the CLI, in any
// casing — the CLI and the HTTP API accept the same vocabulary.
func TestResolveModelCoversRegistry(t *testing.T) {
	for _, e := range registry.All() {
		for _, name := range append([]string{e.Name}, e.Aliases...) {
			for _, variant := range []string{name, strings.ToUpper(name)} {
				m, err := resolveModel(variant)
				if err != nil {
					t.Errorf("resolveModel(%q): %v", variant, err)
					continue
				}
				if m.Name() != e.Name {
					t.Errorf("resolveModel(%q) = %s, want %s", variant, m.Name(), e.Name)
				}
			}
		}
	}
}

func TestResolveSeriesBuiltinAndFile(t *testing.T) {
	s, label, err := resolveSeries("1990-93")
	if err != nil || s.Len() != 48 || label != "1990-93" {
		t.Errorf("builtin: len %d, label %q, err %v", s.Len(), label, err)
	}

	dir := t.TempDir()
	path := filepath.Join(dir, "series.csv")
	if err := os.WriteFile(path, []byte("time,value\n0,1\n1,0.98\n2,0.99\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, _, err = resolveSeries(path)
	if err != nil || s.Len() != 3 {
		t.Errorf("file: len %d, err %v", s.Len(), err)
	}

	if _, _, err := resolveSeries("not-a-dataset-or-file"); err == nil {
		t.Error("missing source: want error")
	}
}

func TestSpecForShape(t *testing.T) {
	for _, shape := range []string{"V", "U", "W", "L", "v", "u"} {
		spec, err := dataset.ShapeSpec(shape, 48, 0.03, 0.001, 7)
		if err != nil {
			t.Errorf("shape %q: %v", shape, err)
			continue
		}
		if err := spec.Validate(); err != nil {
			t.Errorf("shape %q spec invalid: %v", shape, err)
		}
		if strings.ToUpper(shape) == "W" && len(spec.Dips) != 2 {
			t.Errorf("W spec has %d dips", len(spec.Dips))
		}
	}
	if _, err := dataset.ShapeSpec("Z", 48, 0.03, 0.001, 7); err == nil {
		t.Error("unknown shape: want error")
	}
}

func TestRunSubcommands(t *testing.T) {
	if testing.Short() {
		t.Skip("runs model fits")
	}
	figPath := filepath.Join(t.TempDir(), "fig.svg")
	cases := [][]string{
		{"datasets"},
		{"show", "-dataset", "2020-21"},
		{"fit", "-model", "quadratic", "-dataset", "1990-93"},
		{"predict", "-model", "competing-risks", "-dataset", "1990-93"},
		{"metrics", "-model", "wei-exp", "-dataset", "1990-93"},
		{"batch", "-datasets", "1990-93,2020-21", "-models", "quad,hjorth", "-workers", "2"},
		{"generate", "-shape", "W", "-months", "36"},
		{"figure", "1", "-svg", figPath},
		{"report", "-o", filepath.Join(filepath.Dir(figPath), "report.html")},
		{"select", "-dataset", "2020-21", "-criterion", "aic"},
		{"watch", "-dataset", "2020-21", "-slack", "0.015"},
		{"bootstrap", "-model", "quadratic", "-dataset", "2020-21", "-replicates", "30"},
		{"gallery"},
		{"help"},
	}
	for _, args := range cases {
		t.Run(strings.Join(args, " "), func(t *testing.T) {
			if err := run(args); err != nil {
				t.Errorf("run(%v): %v", args, err)
			}
		})
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		nil,
		{"bogus"},
		{"fit"},                     // missing -dataset
		{"predict"},                 // missing -dataset
		{"metrics"},                 // missing -dataset
		{"show"},                    // missing -dataset
		{"table"},                   // missing number
		{"table", "9"},              // unknown table
		{"generate", "-shape", "Q"}, // unknown shape
		{"select"},                  // missing -dataset
		{"select", "-dataset", "1990-93", "-criterion", "bogus"},
		{"bootstrap"}, // missing -dataset
		{"ext"},       // missing name
		{"fit", "-model", "bogus", "-dataset", "1990-93"},
		{"batch"}, // missing -datasets
		{"batch", "-datasets", "1990-93", "-models", "bogus"},
		{"batch", "-datasets", "1990-93", "-workers", "-2"},
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("run(%v): want error", args)
		}
	}
}
