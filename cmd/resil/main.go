// Command resil is the command-line front end for the predictive
// resilience modeling library: it fits models to performance series,
// predicts recovery times, computes interval-based resilience metrics,
// and regenerates every table and figure of the paper's evaluation.
//
// Usage:
//
//	resil datasets                               list the built-in recession datasets
//	resil show -dataset 1990-93                  dump a dataset as CSV
//	resil fit -model competing-risks -dataset 1990-93
//	resil predict -model quadratic -dataset 2001-05 -level 1.0
//	resil metrics -model weibull-exp -dataset 1990-93
//	resil batch -datasets 1990-93,2020-21 -models quad,hjorth
//	resil table 1|2|3|4                          reproduce a paper table
//	resil figure 1|2|3|4|5|6                     reproduce a paper figure
//	resil generate -shape V -months 48           emit a synthetic recession as CSV
//	resil watch -dataset 2020-21                 replay a series through the online tracker
//	resil stream -dataset 2020-21 -interval 1s   replay against a running server's /v1/sessions
//	resil top -server http://localhost:8080      live view: rates, latencies, SLO budget, slow traces
//
// Model names resolve through the central registry (internal/registry),
// so every canonical name and alias the HTTP API accepts works here too,
// and the fit-family subcommands run the same transport-agnostic service
// pipeline (internal/service) the server uses — including the
// degradation chain, which annotates output instead of failing when a
// requested model will not converge.
//
// Data for -dataset may also be a CSV file path with time,value rows.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"resilience/internal/core"
	"resilience/internal/dataset"
	"resilience/internal/experiment"
	"resilience/internal/registry"
	"resilience/internal/report"
	"resilience/internal/service"
	"resilience/internal/stream"
	"resilience/internal/timeseries"
	"resilience/internal/transport"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "resil:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		usage()
		return fmt.Errorf("missing subcommand")
	}
	switch args[0] {
	case "datasets":
		return cmdDatasets()
	case "show":
		return cmdShow(args[1:])
	case "fit":
		return cmdFit(args[1:])
	case "predict":
		return cmdPredict(args[1:])
	case "metrics":
		return cmdMetrics(args[1:])
	case "batch":
		return cmdBatch(args[1:])
	case "table":
		return cmdExperiment("table", args[1:])
	case "figure":
		return cmdExperiment("fig", args[1:])
	case "ext":
		return cmdExperiment("ext-", args[1:])
	case "select":
		return cmdSelect(args[1:])
	case "bootstrap":
		return cmdBootstrap(args[1:])
	case "watch":
		return cmdWatch(args[1:])
	case "stream":
		return cmdStream(args[1:])
	case "loadgen":
		return cmdLoadgen(args[1:])
	case "top":
		return cmdTop(args[1:])
	case "report":
		return cmdReport(args[1:])
	case "gallery":
		return cmdGallery()
	case "generate":
		return cmdGenerate(args[1:])
	case "simulate":
		return cmdSimulate(args[1:])
	case "help", "-h", "--help":
		usage()
		return nil
	default:
		usage()
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `resil - predictive resilience modeling

subcommands:
  datasets            list built-in recession datasets
  show                dump a dataset as CSV (-dataset)
  fit                 fit a model (-model, -dataset; -server [-transport http|binary] runs it remotely)
  predict             predict recovery time (-model, -dataset, -level)
  metrics             interval-based resilience metrics (-model, -dataset)
  batch               fit many dataset×model jobs concurrently (-datasets, -models; -server runs them remotely)
  table N             reproduce paper table N (1-4)
  figure N            reproduce paper figure N (1-6)
  ext NAME            run an extension experiment (composite, selection)
  select              rank all models on a dataset (-dataset, -criterion)
  bootstrap           residual-bootstrap intervals (-model, -dataset)
  watch               replay a series through the online tracker (-dataset)
  stream              replay a series against a running server's sessions (-server, -dataset, -interval, -transport http|binary)
  loadgen             mixed fit/batch/stream load against a server, with SLO gates (-server, -duration, -slo-p99, -transport http|binary|both)
  top                 live terminal view of a running server: rates, latencies, SLO budget, slowest traces (-server, -interval)
  report              render all tables+figures into one HTML file (-o)
  gallery             show the canonical letter-shape curves (V/U/W/L/J/K)
  generate            emit a synthetic recession curve (-shape, -months)
  simulate            render coupled multi-system scenario sets (-preset|-spec, -n, -seed, -format csv|json; -study runs a Monte Carlo coverage/win-rate study; -server renders remotely)

models: %s
        (aliases and any casing accepted; see internal/registry)
`, strings.Join(registry.Names(), ", "))
}

// resolveModel maps a CLI name — canonical or alias, any casing — to a
// Model through the central registry.
func resolveModel(name string) (core.Model, error) {
	e, err := registry.Lookup(name)
	if err != nil {
		return nil, err
	}
	return e.Model, nil
}

// resolveSeries loads a named built-in dataset or a CSV file path.
func resolveSeries(name string) (*timeseries.Series, string, error) {
	if rec, err := dataset.ByName(name); err == nil {
		return rec.Series, rec.Name, nil
	}
	f, err := os.Open(name)
	if err != nil {
		return nil, "", fmt.Errorf("dataset %q is not built in and not a readable file: %w", name, err)
	}
	defer f.Close()
	s, err := dataset.ReadCSV(f)
	if err != nil {
		return nil, "", fmt.Errorf("parse %s: %w", name, err)
	}
	return s, name, nil
}

func cmdDatasets() error {
	recs, err := dataset.Recessions()
	if err != nil {
		return err
	}
	tbl := report.NewTable("name", "shape", "months", "trough", "terminal", "description")
	for _, r := range recs {
		_, _, minV := r.Series.Min()
		desc := r.Description
		if len(desc) > 60 {
			desc = desc[:57] + "..."
		}
		tbl.MustAddRow(r.Name, r.Shape, fmt.Sprintf("%d", r.Months),
			fmt.Sprintf("%.4f", minV),
			fmt.Sprintf("%.4f", r.Series.Value(r.Series.Len()-1)), desc)
	}
	fmt.Print(tbl.String())
	return nil
}

func cmdShow(args []string) error {
	fs := flag.NewFlagSet("show", flag.ContinueOnError)
	name := fs.String("dataset", "", "built-in dataset name or CSV path")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *name == "" {
		return fmt.Errorf("show: -dataset required")
	}
	s, _, err := resolveSeries(*name)
	if err != nil {
		return err
	}
	return dataset.WriteCSV(os.Stdout, s)
}

func cmdFit(args []string) error {
	fs := flag.NewFlagSet("fit", flag.ContinueOnError)
	modelName := fs.String("model", "competing-risks", "model name")
	dataName := fs.String("dataset", "", "built-in dataset name or CSV path")
	trainFrac := fs.Float64("train", 0.9, "training fraction for validation")
	alpha := fs.Float64("alpha", 0.05, "CI significance level")
	serverURL := fs.String("server", "", "run against a resil-server at this address instead of in-process (prints the server's JSON reply)")
	transportName := fs.String("transport", "http", "wire transport when -server is set: http or binary")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dataName == "" {
		return fmt.Errorf("fit: -dataset required")
	}
	data, label, err := resolveSeries(*dataName)
	if err != nil {
		return err
	}
	if *serverURL != "" {
		return remoteOp(*transportName, *serverURL, transport.OpFit, map[string]any{
			"model": *modelName, "times": data.Times(), "values": data.Values(),
			"train_fraction": *trainFrac,
		})
	}
	out, err := service.New(service.Config{}).Fit(context.Background(), service.Request{
		Model: *modelName, Series: data, TrainFraction: *trainFrac, CIAlpha: *alpha,
	})
	if err != nil {
		return err
	}
	v := out.Validation
	fmt.Printf("model %s fit to %s (train %d / test %d)\n",
		v.Fit.Model.Name(), label, v.Train.Len(), v.Test.Len())
	printDegrade(out.Degrade)
	fmt.Println()
	ptbl := report.NewTable("parameter", "estimate")
	for i, pname := range v.Fit.Model.ParamNames() {
		ptbl.MustAddRow(pname, fmt.Sprintf("%.8g", v.Fit.Params[i]))
	}
	fmt.Print(ptbl.String())
	gtbl := report.NewTable("measure", "value")
	gtbl.MustAddRow("SSE", report.F(v.GoF.SSE))
	gtbl.MustAddRow("PMSE", report.F(v.GoF.PMSE))
	gtbl.MustAddRow("R2", report.F(v.GoF.R2))
	gtbl.MustAddRow("R2adj", report.F(v.GoF.R2Adj))
	gtbl.MustAddRow("AIC", fmt.Sprintf("%.4f", v.GoF.AIC))
	gtbl.MustAddRow("BIC", fmt.Sprintf("%.4f", v.GoF.BIC))
	gtbl.MustAddRow("EC", report.Pct(v.EC))
	fmt.Println()
	fmt.Print(gtbl.String())
	if diag, err := core.DiagnoseResiduals(v.Fit); err == nil {
		fmt.Println()
		fmt.Println("residual diagnostics:", diag)
	}
	return nil
}

func cmdPredict(args []string) error {
	fs := flag.NewFlagSet("predict", flag.ContinueOnError)
	modelName := fs.String("model", "competing-risks", "model name")
	dataName := fs.String("dataset", "", "built-in dataset name or CSV path")
	level := fs.Float64("level", 1.0, "performance level to recover to")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dataName == "" {
		return fmt.Errorf("predict: -dataset required")
	}
	data, label, err := resolveSeries(*dataName)
	if err != nil {
		return err
	}
	out, err := service.New(service.Config{}).Predict(context.Background(), service.Request{
		Model: *modelName, Series: data, Level: *level,
	})
	if err != nil {
		return err
	}
	fmt.Printf("dataset %s, model %s\n", label, out.Fit.Model.Name())
	printDegrade(out.Degrade)
	fmt.Printf("predicted time of minimum performance: t = %.2f (level %.5f)\n",
		out.MinimumTime, out.MinimumValue)
	if !out.RecoveryReached {
		return fmt.Errorf("recovery to %.4f: %s", out.RecoveryLevel, out.RecoveryErr)
	}
	fmt.Printf("predicted recovery to %.4f: t = %.2f\n", out.RecoveryLevel, out.RecoveryTime)
	return nil
}

func cmdMetrics(args []string) error {
	fs := flag.NewFlagSet("metrics", flag.ContinueOnError)
	modelName := fs.String("model", "competing-risks", "model name")
	dataName := fs.String("dataset", "", "built-in dataset name or CSV path")
	alphaW := fs.Float64("weight", 0.5, "Eq. 21 weight in (0,1)")
	continuous := fs.Bool("continuous", false, "use continuous integration instead of the paper's discrete sums")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dataName == "" {
		return fmt.Errorf("metrics: -dataset required")
	}
	data, label, err := resolveSeries(*dataName)
	if err != nil {
		return err
	}
	out, err := service.New(service.Config{}).Metrics(context.Background(), service.Request{
		Model: *modelName, Series: data,
		MetricsWeight: *alphaW, MetricsContinuous: *continuous,
	})
	if err != nil {
		return err
	}
	fmt.Printf("interval-based resilience metrics: %s on %s\n", out.Validation.Fit.Model.Name(), label)
	printDegrade(out.Degrade)
	fmt.Println()
	tbl := report.NewTable("metric", "actual", "predicted", "rel. error")
	for _, r := range out.Rows {
		tbl.MustAddRow(r.Kind.String(), report.F(r.Actual), report.F(r.Predicted), report.F(r.RelErr))
	}
	fmt.Print(tbl.String())
	return nil
}

// printDegrade notes a degradation-chain outcome on CLI output, mirroring
// the server's degraded/fallback_model response fields.
func printDegrade(info *core.DegradeInfo) {
	if info == nil || !info.Degraded {
		return
	}
	if info.FallbackUsed {
		fmt.Printf("note: requested model %s did not converge; fell back to %s (%s)\n",
			info.RequestedModel, info.UsedModel, info.Reason)
		return
	}
	fmt.Printf("note: fit degraded: %s\n", info.Reason)
}

// cmdBatch fits every dataset×model combination concurrently through the
// shared service worker pool — the CLI twin of POST /v1/batch.
func cmdBatch(args []string) error {
	fs := flag.NewFlagSet("batch", flag.ContinueOnError)
	dataNames := fs.String("datasets", "", "comma-separated dataset names or CSV paths")
	modelNames := fs.String("models", strings.Join(registry.Names(), ","), "comma-separated model names (default: all)")
	workers := fs.Int("workers", 0, "worker pool size (0 = min(jobs, GOMAXPROCS))")
	trainFrac := fs.Float64("train", 0.9, "training fraction for validation")
	serverURL := fs.String("server", "", "run against a resil-server at this address instead of in-process (prints the server's JSON reply)")
	transportName := fs.String("transport", "http", "wire transport when -server is set: http or binary")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dataNames == "" {
		return fmt.Errorf("batch: -datasets required")
	}
	if *workers < 0 {
		return fmt.Errorf("batch: -workers must be non-negative")
	}

	type jobMeta struct{ dataset, model string }
	var jobs []service.Request
	var metas []jobMeta
	var wireJobs []map[string]any
	for _, dn := range strings.Split(*dataNames, ",") {
		dn = strings.TrimSpace(dn)
		if dn == "" {
			continue
		}
		data, label, err := resolveSeries(dn)
		if err != nil {
			return err
		}
		for _, mn := range strings.Split(*modelNames, ",") {
			mn = strings.TrimSpace(mn)
			if mn == "" {
				continue
			}
			jobs = append(jobs, service.Request{Model: mn, Series: data, TrainFraction: *trainFrac})
			metas = append(metas, jobMeta{dataset: label, model: mn})
			wireJobs = append(wireJobs, map[string]any{
				"model": mn, "times": data.Times(), "values": data.Values(),
				"train_fraction": *trainFrac,
			})
		}
	}
	if *serverURL != "" {
		return remoteOp(*transportName, *serverURL, transport.OpBatch, map[string]any{
			"jobs": wireJobs, "workers": *workers,
		})
	}

	svc := service.New(service.Config{FitCacheSize: len(jobs)})
	items, err := svc.Batch(context.Background(), jobs, *workers)
	if err != nil {
		return err
	}

	fmt.Printf("batch: %d jobs on %d workers\n\n",
		len(jobs), service.EffectiveWorkers(*workers, len(jobs)))
	tbl := report.NewTable("dataset", "model", "fit", "PMSE", "r2adj", "status")
	failed := 0
	for i, item := range items {
		meta := metas[i]
		if item.Err != nil {
			failed++
			tbl.MustAddRow(meta.dataset, meta.model, "-", "-", "-", "error: "+item.Err.Error())
			continue
		}
		v := item.Outcome.Validation
		status := "ok"
		if info := item.Outcome.Degrade; info != nil && info.Degraded {
			if info.FallbackUsed {
				status = "fallback"
			} else {
				status = "retried"
			}
		}
		tbl.MustAddRow(meta.dataset, meta.model, v.Fit.Model.Name(),
			report.F(v.GoF.PMSE), report.F(v.GoF.R2Adj), status)
	}
	fmt.Print(tbl.String())
	if failed > 0 {
		return fmt.Errorf("batch: %d/%d jobs failed", failed, len(jobs))
	}
	return nil
}

func cmdExperiment(prefix string, args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("%s: experiment name or number required (e.g. `resil %s 1`)", prefix, prefix)
	}
	fs := flag.NewFlagSet("experiment", flag.ContinueOnError)
	svgPath := fs.String("svg", "", "also write the figure as SVG to this path")
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	res, err := experiment.Run(prefix + args[0])
	if err != nil {
		return err
	}
	fmt.Println(res.Title)
	fmt.Println()
	fmt.Println(res.Text)
	if *svgPath != "" {
		if res.Plot == nil {
			return fmt.Errorf("experiment %s has no figure to export", res.ID)
		}
		if err := os.WriteFile(*svgPath, []byte(res.Plot.SVG(0, 0)), 0o644); err != nil {
			return fmt.Errorf("write svg: %w", err)
		}
		fmt.Printf("wrote %s\n", *svgPath)
	}
	return nil
}

func cmdGenerate(args []string) error {
	fs := flag.NewFlagSet("generate", flag.ContinueOnError)
	shape := fs.String("shape", "V", "curve shape: V, U, W, or L")
	months := fs.Int("months", 48, "number of monthly observations")
	depth := fs.Float64("depth", 0.03, "trough depth as a fraction")
	noise := fs.Float64("noise", 0.001, "observation noise standard deviation")
	seed := fs.Uint64("seed", 7, "noise seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	spec, err := dataset.ShapeSpec(*shape, *months, *depth, *noise, *seed)
	if err != nil {
		return err
	}
	tagged, err := dataset.GenerateTagged(spec)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "shape class: %s\n", tagged.Class)
	return dataset.WriteCSV(os.Stdout, tagged.Series)
}

func cmdSelect(args []string) error {
	fs := flag.NewFlagSet("select", flag.ContinueOnError)
	dataName := fs.String("dataset", "", "built-in dataset name or CSV path")
	criterion := fs.String("criterion", "pmse", "ranking criterion: pmse, aic, bic, or cv")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dataName == "" {
		return fmt.Errorf("select: -dataset required")
	}
	data, label, err := resolveSeries(*dataName)
	if err != nil {
		return err
	}
	crit, err := resolveCriterion(*criterion)
	if err != nil {
		return err
	}
	sel, err := core.SelectModel(registry.Models(), data, core.SelectConfig{Criterion: crit})
	if err != nil {
		return err
	}
	fmt.Printf("model selection on %s, ranked by %s\n\n", label, crit)
	tbl := report.NewTable("rank", "model", "PMSE", "r2adj", "AIC", "BIC")
	for i, s := range sel.Scores {
		tbl.MustAddRow(fmt.Sprintf("%d", i+1), s.Model.Name(),
			report.F(s.Validation.GoF.PMSE), report.F(s.Validation.GoF.R2Adj),
			fmt.Sprintf("%.2f", s.Validation.GoF.AIC),
			fmt.Sprintf("%.2f", s.Validation.GoF.BIC))
	}
	fmt.Print(tbl.String())
	return nil
}

func resolveCriterion(name string) (core.SelectionCriterion, error) {
	switch strings.ToLower(name) {
	case "pmse":
		return core.ByPMSE, nil
	case "aic":
		return core.ByAIC, nil
	case "bic":
		return core.ByBIC, nil
	case "cv":
		return core.ByCV, nil
	default:
		return 0, fmt.Errorf("unknown criterion %q (want pmse, aic, bic, or cv)", name)
	}
}

func cmdBootstrap(args []string) error {
	fs := flag.NewFlagSet("bootstrap", flag.ContinueOnError)
	modelName := fs.String("model", "competing-risks", "model name")
	dataName := fs.String("dataset", "", "built-in dataset name or CSV path")
	replicates := fs.Int("replicates", 200, "bootstrap replicates")
	alpha := fs.Float64("alpha", 0.05, "significance level")
	seed := fs.Uint64("seed", 1, "resampler seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dataName == "" {
		return fmt.Errorf("bootstrap: -dataset required")
	}
	m, err := resolveModel(*modelName)
	if err != nil {
		return err
	}
	data, label, err := resolveSeries(*dataName)
	if err != nil {
		return err
	}
	fit, err := core.Fit(m, data, core.FitConfig{})
	if err != nil {
		return err
	}
	bs, err := core.Bootstrap(fit, core.BootstrapConfig{
		Replicates: *replicates, Alpha: *alpha, Seed: *seed,
	})
	if err != nil {
		return err
	}
	fmt.Printf("residual bootstrap: %s on %s (%d/%d replicates converged)\n\n",
		m.Name(), label, bs.Succeeded, bs.Requested)
	tbl := report.NewTable("parameter", "estimate", "lower", "median", "upper")
	for i, name := range m.ParamNames() {
		tbl.MustAddRow(name,
			fmt.Sprintf("%.8g", fit.Params[i]),
			fmt.Sprintf("%.8g", bs.ParamLower[i]),
			fmt.Sprintf("%.8g", bs.ParamMedian[i]),
			fmt.Sprintf("%.8g", bs.ParamUpper[i]))
	}
	fmt.Print(tbl.String())
	return nil
}

// cmdReport renders the full paper reproduction — every table and
// figure — into one standalone HTML file with embedded SVG figures.
func cmdReport(args []string) error {
	fs := flag.NewFlagSet("report", flag.ContinueOnError)
	out := fs.String("o", "resilience-report.html", "output HTML path")
	if err := fs.Parse(args); err != nil {
		return err
	}
	doc := report.NewHTMLReport("Predictive Resilience Modeling — reproduction report")
	doc.AddParagraph("Generated by resil report: every table and figure of the " +
		"paper's evaluation, recomputed from the reconstructed datasets. " +
		"See EXPERIMENTS.md for paper-vs-measured commentary.")
	for _, id := range experiment.IDs() {
		res, err := experiment.Run(id)
		if err != nil {
			return fmt.Errorf("report %s: %w", id, err)
		}
		doc.AddHeading(res.Title)
		if res.Plot != nil {
			doc.AddPlot(res.Plot, 760, 480)
		} else {
			doc.AddPre(res.Text)
		}
	}
	if err := os.WriteFile(*out, []byte(doc.String()), 0o644); err != nil {
		return fmt.Errorf("write report: %w", err)
	}
	fmt.Printf("wrote %s\n", *out)
	return nil
}

// cmdWatch replays a series through the online streaming subsystem —
// the same session manager the HTTP server exposes at /v1/sessions —
// printing the evolving phase and recovery prediction after each
// observation, the emergency-management workflow the paper motivates.
// Refits run the degradation chain, so a model that will not converge
// on the partial window is annotated, not fatal.
func cmdWatch(args []string) error {
	fs := flag.NewFlagSet("watch", flag.ContinueOnError)
	dataName := fs.String("dataset", "", "built-in dataset name or CSV path")
	modelName := fs.String("model", "competing-risks", "model refit on each update")
	slack := fs.Float64("slack", 0.001, "recovery slack fraction")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dataName == "" {
		return fmt.Errorf("watch: -dataset required")
	}
	data, label, err := resolveSeries(*dataName)
	if err != nil {
		return err
	}
	svc := service.New(service.Config{})
	mgr := stream.NewManager(stream.Config{Fallback: svc.Policy()})
	snap, err := mgr.Create(*modelName, stream.MonitorConfig{RecoverySlack: *slack})
	if err != nil {
		return fmt.Errorf("watch: %w", err)
	}
	defer mgr.Close(snap.ID)
	fmt.Printf("watching %s with %s refits (session %s)\n\n", label, snap.Model, snap.ID)
	tbl := report.NewTable("t", "value", "phase", "fit", "pred. minimum", "pred. recovery")
	for i := 0; i < data.Len(); i++ {
		ups, _, err := mgr.Observe(context.Background(), snap.ID,
			[]float64{data.Time(i)}, []float64{data.Value(i)})
		if err != nil {
			return err
		}
		for _, up := range ups {
			tbl.MustAddRow(fmt.Sprintf("%.0f", up.Time), fmt.Sprintf("%.4f", up.Value),
				up.Phase, watchFitCol(up), watchMinCol(up), watchRecCol(up))
		}
	}
	final, err := mgr.Snapshot(snap.ID)
	if err != nil {
		return err
	}
	fmt.Print(tbl.String())
	fmt.Printf("\nfinal phase: %s\n", final.Phase)
	return nil
}

func watchFitCol(up stream.Update) string {
	switch {
	case up.FitErr != "":
		return "error"
	case up.FitModel == "":
		return "-"
	case up.FallbackModel != "":
		return up.FitModel + " (fallback)"
	default:
		return up.FitModel
	}
}

func watchMinCol(up stream.Update) string {
	if up.PredictedMinimumTime == nil || up.PredictedMinimumValue == nil {
		return "-"
	}
	return fmt.Sprintf("%.3f @ %.1f", *up.PredictedMinimumValue, *up.PredictedMinimumTime)
}

func watchRecCol(up stream.Update) string {
	if up.PredictedRecoveryTime == nil {
		return "-"
	}
	return fmt.Sprintf("%.1f", *up.PredictedRecoveryTime)
}

// cmdGallery prints the canonical letter-shape gallery with each curve's
// automatic classification — a quick reference for the V/U/W/L/J/K
// vocabulary the paper uses.
func cmdGallery() error {
	entries, err := dataset.Gallery()
	if err != nil {
		return err
	}
	tbl := report.NewTable("shape", "classified", "trough", "terminal", "description")
	for _, e := range entries {
		_, _, minV := e.Series.Min()
		tbl.MustAddRow(e.Shape,
			string(core.ClassifyShape(e.Series.Values())),
			fmt.Sprintf("%.4f", minV),
			fmt.Sprintf("%.4f", e.Series.Value(e.Series.Len()-1)),
			e.Description)
	}
	// K needs a pair of sector curves.
	recovering, depressed, err := dataset.KShapedPair()
	if err != nil {
		return err
	}
	tbl.MustAddRow("K",
		string(core.ClassifyShapePair(recovering.Values(), depressed.Values())),
		"-", "-",
		"Divergent sector recoveries; see dataset.KShapedPair.")
	fmt.Print(tbl.String())
	return nil
}
