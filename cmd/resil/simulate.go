package main

// resil simulate: render deterministic coupled scenario sets from the
// scenario engine, either locally (CSV/JSON to stdout or a file), on a
// running server over either transport, or — with -study — as a Monte
// Carlo coverage/win-rate study through the service batch pool.

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"resilience/internal/experiment"
	"resilience/internal/scenario"
	"resilience/internal/transport"
)

func cmdSimulate(args []string) error {
	fs := flag.NewFlagSet("simulate", flag.ContinueOnError)
	specPath := fs.String("spec", "", "JSON scenario spec file (overrides -preset)")
	preset := fs.String("preset", "pair", "built-in coupled spec: "+strings.Join(scenario.PresetNames(), " or "))
	n := fs.Int("n", 1, "number of scenarios in the set")
	seed := fs.Uint64("seed", 7, "top-level set seed; reproduces the entire set bit-identically")
	workers := fs.Int("workers", 0, "generation workers (0 = min(n, GOMAXPROCS)); output is identical at any setting")
	format := fs.String("format", "csv", "output format: csv or json")
	outPath := fs.String("o", "", "output file (default stdout)")
	study := fs.Bool("study", false, "run a Monte Carlo study through the batch pool instead of emitting the set")
	modelNames := fs.String("models", "quadratic,competing-risks", "study: comma-separated model names to race")
	trainFrac := fs.Float64("train", 0, "study: training fraction (0 = service default 0.9)")
	alpha := fs.Float64("alpha", 0, "study: CI significance level (0 = default 0.05)")
	serverURL := fs.String("server", "", "render the set on a resil-server at this address instead of in-process (prints the server's JSON reply)")
	transportName := fs.String("transport", "http", "wire transport when -server is set: http or binary")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var spec scenario.Spec
	if *specPath != "" {
		raw, err := os.ReadFile(*specPath)
		if err != nil {
			return fmt.Errorf("simulate: %w", err)
		}
		if err := json.Unmarshal(raw, &spec); err != nil {
			return fmt.Errorf("simulate: parse spec %s: %w", *specPath, err)
		}
	} else {
		var err error
		if spec, err = scenario.Preset(*preset); err != nil {
			return fmt.Errorf("simulate: %w", err)
		}
	}
	if err := spec.Validate(); err != nil {
		return fmt.Errorf("simulate: %w", err)
	}

	if *serverURL != "" {
		if *study {
			return fmt.Errorf("simulate: -study runs in-process; drop -server")
		}
		return remoteOp(*transportName, *serverURL, transport.OpSimulate, map[string]any{
			"spec": spec, "count": *n, "seed": *seed, "workers": *workers,
		})
	}

	if *study {
		var models []string
		for _, m := range strings.Split(*modelNames, ",") {
			if m = strings.TrimSpace(m); m != "" {
				models = append(models, m)
			}
		}
		res, err := experiment.MonteCarlo(scenario.StudyConfig{
			Spec:          spec,
			Scenarios:     *n,
			Seed:          *seed,
			Models:        models,
			Workers:       *workers,
			TrainFraction: *trainFrac,
			CIAlpha:       *alpha,
		})
		if err != nil {
			return fmt.Errorf("simulate: %w", err)
		}
		fmt.Println(res.Text)
		return nil
	}

	set, err := scenario.GenerateSet(context.Background(), spec, *n, *seed, *workers)
	if err != nil {
		return fmt.Errorf("simulate: %w", err)
	}
	var w io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return fmt.Errorf("simulate: %w", err)
		}
		defer f.Close()
		w = f
	}
	switch *format {
	case "csv":
		err = set.WriteCSV(w)
	case "json":
		err = set.WriteJSON(w)
	default:
		return fmt.Errorf("simulate: unknown format %q (want csv or json)", *format)
	}
	if err != nil {
		return fmt.Errorf("simulate: %w", err)
	}
	fmt.Fprintf(os.Stderr, "# %d scenarios, seed %d, classes %v\n",
		len(set.Scenarios), set.Seed, set.Classes())
	return nil
}
