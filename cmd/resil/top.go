package main

// resil top: a live terminal view of a running resil-server, in the
// spirit of top(1). It polls GET /v1/stats and GET /debug/traces on an
// interval and renders request rates, per-route latency quantiles, the
// SLO error budget, streaming-session and WAL health, and the slowest
// retained traces — the operator's one-screen answer to "how is the
// server doing right now", with trace IDs to paste into
// GET /debug/traces/{id} when the answer is "badly".

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"
)

// topStats mirrors the subset of the /v1/stats reply the view renders.
type topStats struct {
	Requests      uint64 `json:"requests"`
	RequestErrors uint64 `json:"request_errors"`
	Fits          uint64 `json:"fits"`
	Fallbacks     uint64 `json:"fallbacks"`
	Routes        []struct {
		Route    string  `json:"route"`
		Requests uint64  `json:"requests"`
		P50Ms    float64 `json:"p50_ms"`
		P99Ms    float64 `json:"p99_ms"`
	} `json:"routes"`
	Stream struct {
		Sessions           float64 `json:"sessions"`
		Observations       uint64  `json:"observations"`
		Subscribers        float64 `json:"subscribers"`
		DroppedSubscribers uint64  `json:"dropped_subscribers"`
		RefitP99Ms         float64 `json:"refit_p99_ms"`
		RefitsWarm         uint64  `json:"refits_warm"`
		RefitsFull         uint64  `json:"refits_full"`
		RefitEvalsP50      float64 `json:"refit_evals_p50"`
		RefitEvalsP99      float64 `json:"refit_evals_p99"`
	} `json:"stream"`
	Durable struct {
		RecordsWritten uint64  `json:"records_written"`
		WALRecords     float64 `json:"wal_records"`
		WALDirBytes    float64 `json:"wal_dir_bytes"`
		FsyncP99Ms     float64 `json:"fsync_p99_ms"`
	} `json:"durable"`
	SLO struct {
		Enabled         bool    `json:"enabled"`
		Requests        uint64  `json:"requests"`
		ErrorRate       float64 `json:"error_rate"`
		P99Seconds      float64 `json:"p99_seconds"`
		BurnRate        float64 `json:"burn_rate"`
		BudgetRemaining float64 `json:"budget_remaining"`
	} `json:"slo"`
	Runtime struct {
		Goroutines     int     `json:"goroutines"`
		HeapAllocBytes uint64  `json:"heap_alloc_bytes"`
		GCRuns         uint32  `json:"gc_runs"`
		UptimeSeconds  float64 `json:"uptime_seconds"`
	} `json:"runtime"`
	Traces struct {
		Retained int `json:"retained"`
	} `json:"traces"`
}

// topTrace is one row of the /debug/traces listing.
type topTrace struct {
	TraceID    string  `json:"trace_id"`
	Route      string  `json:"route"`
	Status     int     `json:"status"`
	Error      bool    `json:"error"`
	DurationMS float64 `json:"duration_ms"`
	SpanCount  int     `json:"span_count"`
}

func cmdTop(args []string) error {
	fs := flag.NewFlagSet("top", flag.ContinueOnError)
	serverURL := fs.String("server", "http://localhost:8080", "base URL of a running resil-server")
	interval := fs.Duration("interval", 2*time.Second, "refresh interval")
	iterations := fs.Int("iterations", 0, "stop after this many refreshes (0 runs until interrupted)")
	once := fs.Bool("once", false, "render one frame and exit (same as -iterations 1)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *interval <= 0 {
		return fmt.Errorf("top: -interval must be positive")
	}
	limit := *iterations
	if *once {
		limit = 1
	}

	base := strings.TrimRight(*serverURL, "/")
	client := &http.Client{Timeout: 10 * time.Second}

	var prev *topStats
	var prevAt time.Time
	for i := 0; limit <= 0 || i < limit; i++ {
		if i > 0 {
			time.Sleep(*interval)
		}
		now := time.Now()
		st, err := fetchTopStats(client, base)
		if err != nil {
			return fmt.Errorf("top: %w", err)
		}
		traces, terr := fetchTopTraces(client, base)

		var frame strings.Builder
		renderTop(&frame, base, st, prev, now.Sub(prevAt), traces, terr)
		if limit != 1 {
			// Full-screen refresh: clear and home, like top(1). A single
			// frame (-once) prints plainly so it composes with pipes.
			fmt.Print("\033[2J\033[H")
		}
		os.Stdout.WriteString(frame.String())
		prev, prevAt = st, now
	}
	return nil
}

func fetchTopStats(client *http.Client, base string) (*topStats, error) {
	resp, err := client.Get(base + "/v1/stats")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, fmt.Errorf("stats: status %d", resp.StatusCode)
	}
	var st topStats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, fmt.Errorf("decode stats: %w", err)
	}
	return &st, nil
}

func fetchTopTraces(client *http.Client, base string) ([]topTrace, error) {
	resp, err := client.Get(base + "/debug/traces?limit=50")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, fmt.Errorf("traces: status %d", resp.StatusCode)
	}
	var body struct {
		Traces []topTrace `json:"traces"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return nil, fmt.Errorf("decode traces: %w", err)
	}
	return body.Traces, nil
}

// renderTop writes one frame. prev and elapsed (the stats from the
// previous frame and the time since) turn monotonic counters into
// rates; both are zero on the first frame.
func renderTop(b *strings.Builder, base string, st, prev *topStats, elapsed time.Duration, traces []topTrace, terr error) {
	rate := func(cur, old uint64) string {
		if prev == nil || elapsed <= 0 || cur < old {
			return "-"
		}
		return fmt.Sprintf("%.1f/s", float64(cur-old)/elapsed.Seconds())
	}

	fmt.Fprintf(b, "resil top — %s — up %s — %s\n\n",
		base, formatUptime(st.Runtime.UptimeSeconds), time.Now().Format("15:04:05"))

	var reqRate, fitRate string
	if prev != nil {
		reqRate, fitRate = rate(st.Requests, prev.Requests), rate(st.Fits, prev.Fits)
	} else {
		reqRate, fitRate = "-", "-"
	}
	fmt.Fprintf(b, "requests %d (%s)  errors %d  fits %d (%s)  fallbacks %d\n",
		st.Requests, reqRate, st.RequestErrors, st.Fits, fitRate, st.Fallbacks)
	fmt.Fprintf(b, "runtime  goroutines %d  heap %s  gc %d  traces retained %d\n",
		st.Runtime.Goroutines, formatBytes(float64(st.Runtime.HeapAllocBytes)),
		st.Runtime.GCRuns, st.Traces.Retained)

	if st.SLO.Enabled {
		fmt.Fprintf(b, "slo      burn %.2fx  budget %.0f%%  window p99 %.1fms  err rate %.4f  (%d reqs in window)\n",
			st.SLO.BurnRate, st.SLO.BudgetRemaining*100,
			st.SLO.P99Seconds*1000, st.SLO.ErrorRate, st.SLO.Requests)
	}
	fmt.Fprintf(b, "stream   sessions %.0f  observations %d  subscribers %.0f (dropped %d)  refit p99 %.1fms\n",
		st.Stream.Sessions, st.Stream.Observations,
		st.Stream.Subscribers, st.Stream.DroppedSubscribers, st.Stream.RefitP99Ms)
	if warm, full := st.Stream.RefitsWarm, st.Stream.RefitsFull; warm+full > 0 {
		// The warm share is the streaming hot path's health: near 100%
		// means almost every per-point refit rode the cheap warm-started
		// polish; a falling share means curves are shifting faster than
		// the previous optimum can describe and refits are escalating to
		// the full multistart chain.
		fmt.Fprintf(b, "refits   warm %d (%.0f%%)  full %d  evals p50 %.0f  p99 %.0f\n",
			warm, float64(warm)/float64(warm+full)*100, full,
			st.Stream.RefitEvalsP50, st.Stream.RefitEvalsP99)
	}
	if st.Durable.RecordsWritten > 0 || st.Durable.WALRecords > 0 {
		fmt.Fprintf(b, "durable  wal records %.0f  dir %s  written %d  fsync p99 %.2fms\n",
			st.Durable.WALRecords, formatBytes(st.Durable.WALDirBytes),
			st.Durable.RecordsWritten, st.Durable.FsyncP99Ms)
	}

	if len(st.Routes) > 0 {
		fmt.Fprintf(b, "\n%-28s %10s %10s %10s\n", "route", "requests", "p50(ms)", "p99(ms)")
		routes := append([]struct {
			Route    string  `json:"route"`
			Requests uint64  `json:"requests"`
			P50Ms    float64 `json:"p50_ms"`
			P99Ms    float64 `json:"p99_ms"`
		}(nil), st.Routes...)
		sort.Slice(routes, func(i, j int) bool { return routes[i].Requests > routes[j].Requests })
		for i, r := range routes {
			if i == 10 {
				break
			}
			fmt.Fprintf(b, "%-28s %10d %10.1f %10.1f\n", r.Route, r.Requests, r.P50Ms, r.P99Ms)
		}
	}

	switch {
	case terr != nil:
		fmt.Fprintf(b, "\ntraces unavailable: %v\n", terr)
	case len(traces) > 0:
		sort.Slice(traces, func(i, j int) bool { return traces[i].DurationMS > traces[j].DurationMS })
		fmt.Fprintf(b, "\nslowest traces (GET /debug/traces/{id} for the span tree)\n")
		fmt.Fprintf(b, "%-34s %-24s %6s %6s %10s\n", "trace_id", "route", "status", "spans", "ms")
		for i, tr := range traces {
			if i == 8 {
				break
			}
			status := fmt.Sprintf("%d", tr.Status)
			if tr.Error {
				status += "!"
			}
			fmt.Fprintf(b, "%-34s %-24s %6s %6d %10.1f\n",
				tr.TraceID, tr.Route, status, tr.SpanCount, tr.DurationMS)
		}
	}
}

func formatUptime(sec float64) string {
	d := time.Duration(sec * float64(time.Second)).Round(time.Second)
	if d >= time.Hour {
		return fmt.Sprintf("%dh%02dm", int(d.Hours()), int(d.Minutes())%60)
	}
	if d >= time.Minute {
		return fmt.Sprintf("%dm%02ds", int(d.Minutes()), int(d.Seconds())%60)
	}
	return fmt.Sprintf("%ds", int(d.Seconds()))
}

func formatBytes(v float64) string {
	switch {
	case v >= 1<<30:
		return fmt.Sprintf("%.1fGiB", v/(1<<30))
	case v >= 1<<20:
		return fmt.Sprintf("%.1fMiB", v/(1<<20))
	case v >= 1<<10:
		return fmt.Sprintf("%.1fKiB", v/(1<<10))
	}
	return fmt.Sprintf("%.0fB", v)
}
