package main

// caller abstracts "one operation against a running resil-server" over
// the two wire transports. The HTTP caller maps operations onto the
// REST routes; the binary caller speaks the compact framed protocol
// from internal/transport to the server's -binary-addr listener. Both
// return the response with HTTP status semantics and raw JSON bytes,
// so the subcommands decode one shape regardless of transport — the
// server guarantees payload-identical responses on both listeners.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"resilience/internal/telemetry"
	"resilience/internal/transport"
	"resilience/internal/transport/binary"
)

type caller interface {
	// call performs one unary operation. id targets a session for the
	// session.* ops and is ignored otherwise. The returned status uses
	// HTTP semantics on both transports; raw is the response body as
	// JSON bytes (nil when the server sent none); traceID is the trace
	// under which the server recorded the request — the handle for
	// GET /debug/traces/{id}.
	call(ctx context.Context, op, id string, body any) (status int, raw []byte, traceID string, err error)
	// subscribe attaches to a session's event feed and invokes onEvent
	// per event ("snapshot", "update"s, terminal "closed") with the
	// event payload as JSON bytes. It blocks until the feed ends.
	subscribe(ctx context.Context, id string, onEvent func(event string, data []byte) error) error
	// transportName reports "http" or "binary" for labels and output.
	transportName() string
	close()
}

// newCaller builds the caller for -transport against -server. For HTTP
// the server is a base URL (a bare host:port gets http://); for binary
// it is the host:port of the server's -binary-addr listener.
func newCaller(transportName, server string) (caller, error) {
	switch transportName {
	case "", "http":
		return newHTTPCaller(server), nil
	case "binary":
		return newBinaryCaller(server), nil
	default:
		return nil, fmt.Errorf("unknown transport %q (want http or binary)", transportName)
	}
}

// remoteOp runs one unary operation against a server and pretty-prints
// the JSON reply — the remote mode of `resil fit` and `resil batch`,
// over either transport.
func remoteOp(transportName, server, op string, body any) error {
	cl, err := newCaller(transportName, server)
	if err != nil {
		return err
	}
	defer cl.close()
	status, raw, traceID, err := cl.call(context.Background(), op, "", body)
	if err != nil {
		return err
	}
	if status < 200 || status >= 300 {
		return opError(op, status, raw)
	}
	var pretty bytes.Buffer
	if json.Indent(&pretty, raw, "", "  ") != nil {
		pretty.Write(raw)
	}
	fmt.Println(pretty.String())
	fmt.Fprintf(os.Stderr, "# %s via %s, trace %s\n", op, cl.transportName(), traceID)
	return nil
}

// opError folds a non-2xx response body's JSON error envelope into an
// error, keeping the server's message (and redirect owner, if any).
func opError(what string, status int, raw []byte) error {
	var envelope struct {
		Error    string `json:"error"`
		Field    string `json:"field"`
		Redirect bool   `json:"redirect"`
		Owner    string `json:"owner"`
	}
	msg := strings.TrimSpace(string(raw))
	if json.Unmarshal(raw, &envelope) == nil && envelope.Error != "" {
		msg = envelope.Error
		if envelope.Field != "" {
			msg += " (field " + envelope.Field + ")"
		}
		if envelope.Redirect && envelope.Owner != "" {
			msg += " (owner " + envelope.Owner + ")"
		}
	}
	return fmt.Errorf("%s: status %d: %s", what, status, msg)
}

// httpCaller drives the REST routes with one pooled http.Client.
type httpCaller struct {
	base   string
	client *http.Client
}

func newHTTPCaller(server string) *httpCaller {
	base := strings.TrimRight(server, "/")
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	return &httpCaller{base: base, client: &http.Client{Timeout: 30 * time.Second}}
}

func (c *httpCaller) transportName() string { return "http" }
func (c *httpCaller) close()                { c.client.CloseIdleConnections() }

// route maps a protocol op onto its REST method and path.
func (c *httpCaller) route(op, id string) (method, path string, err error) {
	switch op {
	case transport.OpFit:
		return http.MethodPost, "/v1/fit", nil
	case transport.OpPredict:
		return http.MethodPost, "/v1/predict", nil
	case transport.OpMetrics:
		return http.MethodPost, "/v1/metrics", nil
	case transport.OpForecast:
		return http.MethodPost, "/v1/forecast", nil
	case transport.OpIntervention:
		return http.MethodPost, "/v1/intervention", nil
	case transport.OpBatch:
		return http.MethodPost, "/v1/batch", nil
	case transport.OpSimulate:
		return http.MethodPost, "/v1/simulate", nil
	case transport.OpModels:
		return http.MethodGet, "/v1/models", nil
	case transport.OpVersion:
		return http.MethodGet, "/v1/version", nil
	case transport.OpStats:
		return http.MethodGet, "/v1/stats", nil
	case transport.OpSessionCreate:
		return http.MethodPost, "/v1/sessions", nil
	case transport.OpSessionList:
		return http.MethodGet, "/v1/sessions", nil
	case transport.OpSessionGet:
		return http.MethodGet, "/v1/sessions/" + id, nil
	case transport.OpSessionDelete:
		return http.MethodDelete, "/v1/sessions/" + id, nil
	case transport.OpSessionObserve:
		return http.MethodPost, "/v1/sessions/" + id + "/observe", nil
	default:
		return "", "", fmt.Errorf("no HTTP route for operation %q", op)
	}
}

func (c *httpCaller) call(ctx context.Context, op, id string, body any) (int, []byte, string, error) {
	method, path, err := c.route(op, id)
	if err != nil {
		return 0, nil, "", err
	}
	var rd io.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			return 0, nil, "", err
		}
		rd = bytes.NewReader(raw)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return 0, nil, "", err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	// Mint a trace context so the server-side span tree is queryable
	// afterwards under an ID the client knows.
	tid := telemetry.NewTraceID()
	req.Header.Set("Traceparent", telemetry.FormatTraceparent(tid, telemetry.NewSpanID()))
	resp, err := c.client.Do(req)
	if err != nil {
		return 0, nil, "", err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, "", err
	}
	// The server adopts the minted trace, but trust its header if present.
	if rtid, _, ok := telemetry.ParseTraceparent(resp.Header.Get("Traceparent")); ok {
		tid = rtid
	}
	return resp.StatusCode, raw, tid, nil
}

// subscribe consumes the session's SSE feed.
func (c *httpCaller) subscribe(ctx context.Context, id string, onEvent func(event string, data []byte) error) error {
	// No client timeout: the feed is open-ended by design.
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/sessions/"+id+"/events", nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return fmt.Errorf("subscribe: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return opError("subscribe", resp.StatusCode, raw)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	var event, payload string
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			payload = strings.TrimPrefix(line, "data: ")
		case line == "":
			if event == "" {
				continue
			}
			if err := onEvent(event, []byte(payload)); err != nil {
				return err
			}
			if event == "closed" {
				return nil
			}
			event, payload = "", ""
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("event feed: %w", err)
	}
	return fmt.Errorf("event feed ended without a terminal event")
}

// binaryCaller drives the framed binary protocol through the pooled
// client in internal/transport/binary.
type binaryCaller struct {
	cli *binary.Client
}

func newBinaryCaller(server string) *binaryCaller {
	addr := server
	if i := strings.Index(addr, "://"); i >= 0 {
		addr = addr[i+3:]
	}
	addr = strings.TrimRight(addr, "/")
	return &binaryCaller{cli: binary.NewClient(addr)}
}

func (c *binaryCaller) transportName() string { return "binary" }
func (c *binaryCaller) close()                { c.cli.Close() }

// envelope folds the target session ID (the URL's job over HTTP) into
// the request body, the way the binary protocol addresses sessions.
func envelope(id string, body any) (any, error) {
	if id == "" {
		return body, nil
	}
	m := map[string]any{}
	if body != nil {
		tree, err := transport.ToTree(body)
		if err != nil {
			return nil, err
		}
		tm, ok := tree.(map[string]any)
		if !ok {
			return nil, fmt.Errorf("session operation body must be a JSON object")
		}
		m = tm
	}
	m["id"] = id
	return m, nil
}

func (c *binaryCaller) call(ctx context.Context, op, id string, body any) (int, []byte, string, error) {
	b, err := envelope(id, body)
	if err != nil {
		return 0, nil, "", err
	}
	tid := telemetry.NewTraceID()
	tp := telemetry.FormatTraceparent(tid, telemetry.NewSpanID())
	status, respBody, err := c.cli.Do(ctx, op, "", tp, b)
	if err != nil {
		return 0, nil, "", err
	}
	var raw []byte
	if respBody != nil {
		if raw, err = json.Marshal(respBody); err != nil {
			return 0, nil, "", err
		}
	}
	return status, raw, tid, nil
}

func (c *binaryCaller) subscribe(ctx context.Context, id string, onEvent func(event string, data []byte) error) error {
	b, err := envelope(id, nil)
	if err != nil {
		return err
	}
	tp := telemetry.FormatTraceparent(telemetry.NewTraceID(), telemetry.NewSpanID())
	status, respBody, err := c.cli.Subscribe(ctx, transport.OpSessionSubscribe, "", tp, b,
		func(event string, data any) error {
			raw, err := json.Marshal(data)
			if err != nil {
				return err
			}
			return onEvent(event, raw)
		})
	if err != nil {
		return fmt.Errorf("subscribe: %w", err)
	}
	if status >= 400 {
		raw, _ := json.Marshal(respBody)
		return opError("subscribe", status, raw)
	}
	return nil
}
