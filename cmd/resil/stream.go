package main

// resil stream: a client for the server's streaming-session API. It
// opens a session on a running resil-server, subscribes to the event
// feed, and replays a dataset (or CSV) point by point — with optional
// -interval pacing to mimic live arrival — printing each pushed update
// as the disruption unfolds. With -transport it runs over either the
// HTTP/SSE routes or the compact binary protocol; the event stream is
// identical on both. This is both the scripted end-to-end exercise of
// the streaming subsystem and a reference consumer for each transport.

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"time"

	"resilience/internal/stream"
	"resilience/internal/transport"
)

func cmdStream(args []string) error {
	fs := flag.NewFlagSet("stream", flag.ContinueOnError)
	serverURL := fs.String("server", "http://localhost:8080", "server address: base URL for -transport http, host:port of -binary-addr for -transport binary")
	transportName := fs.String("transport", "http", "wire transport: http or binary")
	dataName := fs.String("dataset", "", "built-in dataset name or CSV path")
	modelName := fs.String("model", "competing-risks", "model the session refits on each update")
	interval := fs.Duration("interval", 0, "pause between observations (0 replays as fast as the server accepts)")
	keep := fs.Bool("keep", false, "leave the session open instead of deleting it when the replay ends")
	sessionID := fs.String("session", "", "replay into this existing session instead of creating one (e.g. re-creating a killed node's session on its new owner)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dataName == "" {
		return fmt.Errorf("stream: -dataset required")
	}
	data, label, err := resolveSeries(*dataName)
	if err != nil {
		return err
	}
	cl, err := newCaller(*transportName, *serverURL)
	if err != nil {
		return fmt.Errorf("stream: %w", err)
	}
	defer cl.close()
	ctx := context.Background()

	snap, err := createSession(ctx, cl, *modelName, *sessionID)
	if err != nil {
		return err
	}
	fmt.Printf("session %s on %s via %s (model %s), replaying %s, %d points\n\n",
		snap.ID, *serverURL, cl.transportName(), snap.Model, label, data.Len())

	// Subscribe before the first observation so no event is missed; the
	// feed goroutine prints every pushed event and exits on the terminal
	// "closed" event or connection loss. The initial snapshot event
	// signals the subscription is live, gating the replay.
	events := make(chan error, 1)
	ready := make(chan struct{})
	go func() { events <- followEvents(ctx, cl, snap.ID, ready) }()
	select {
	case <-ready:
	case err := <-events:
		if err == nil {
			err = fmt.Errorf("stream: event feed ended before the initial snapshot")
		}
		return err
	case <-time.After(10 * time.Second):
		return fmt.Errorf("stream: event feed never delivered the initial snapshot")
	}

	for i := 0; i < data.Len(); i++ {
		if err := observePoint(ctx, cl, snap.ID, data.Time(i), data.Value(i)); err != nil {
			return err
		}
		if *interval > 0 && i < data.Len()-1 {
			time.Sleep(*interval)
		}
	}

	if *keep {
		fmt.Printf("\nsession %s left open\n", snap.ID)
		return nil
	}
	status, raw, _, err := cl.call(ctx, transport.OpSessionDelete, snap.ID, nil)
	if err != nil {
		return fmt.Errorf("stream: close session: %w", err)
	}
	if status != 200 {
		return fmt.Errorf("stream: %w", opError("close session", status, raw))
	}
	// The delete pushes the terminal event; wait for the feed to drain so
	// every update has been printed before we return.
	select {
	case err := <-events:
		return err
	case <-time.After(10 * time.Second):
		return fmt.Errorf("stream: event feed did not terminate after close")
	}
}

// createSession opens a session (or adopts an existing one when id is
// set, the replay-recovery path after a node loss).
func createSession(ctx context.Context, cl caller, model, id string) (*stream.Snapshot, error) {
	var snap stream.Snapshot
	if id != "" {
		status, raw, _, err := cl.call(ctx, transport.OpSessionGet, id, nil)
		if err != nil {
			return nil, fmt.Errorf("stream: find session: %w", err)
		}
		if status != 200 {
			return nil, fmt.Errorf("stream: %w", opError("find session", status, raw))
		}
		if err := json.Unmarshal(raw, &snap); err != nil {
			return nil, fmt.Errorf("stream: decode session: %w", err)
		}
		return &snap, nil
	}
	status, raw, _, err := cl.call(ctx, transport.OpSessionCreate, "", map[string]any{"model": model})
	if err != nil {
		return nil, fmt.Errorf("stream: create session: %w", err)
	}
	if status != 201 {
		return nil, fmt.Errorf("stream: %w", opError("create session", status, raw))
	}
	if err := json.Unmarshal(raw, &snap); err != nil {
		return nil, fmt.Errorf("stream: decode session: %w", err)
	}
	return &snap, nil
}

func observePoint(ctx context.Context, cl caller, id string, t, v float64) error {
	status, raw, _, err := cl.call(ctx, transport.OpSessionObserve, id,
		map[string]any{"time": t, "value": v})
	if err != nil {
		return fmt.Errorf("stream: observe t=%g: %w", t, err)
	}
	if status != 200 {
		return fmt.Errorf("stream: %w", opError(fmt.Sprintf("observe t=%g", t), status, raw))
	}
	return nil
}

// followEvents consumes the session's event feed, printing one line per
// update until the terminal "closed" event arrives. ready is closed
// once the initial snapshot event arrives, i.e. the subscription is
// attached and no later update can be missed.
func followEvents(ctx context.Context, cl caller, id string, ready chan<- struct{}) error {
	err := cl.subscribe(ctx, id, func(event string, data []byte) error {
		if event == "snapshot" && ready != nil {
			close(ready)
			ready = nil
		}
		return printEvent(event, data)
	})
	if err != nil {
		return fmt.Errorf("stream: %w", err)
	}
	return nil
}

// printEvent renders one feed event.
func printEvent(event string, payload []byte) error {
	switch event {
	case "snapshot":
		return nil // attach-time state; the replay prints updates only
	case "update":
		var ev stream.Event
		if err := json.Unmarshal(payload, &ev); err != nil || ev.Update == nil {
			return fmt.Errorf("bad update event %q: %v", payload, err)
		}
		up := ev.Update
		line := fmt.Sprintf("#%-3d t=%-5.1f v=%.4f  %-10s", up.Seq, up.Time, up.Value, up.Phase)
		if up.FitModel != "" {
			line += "  fit=" + up.FitModel
			if up.FallbackModel != "" {
				line += " (fallback)"
			}
			if up.PredictedRecoveryTime != nil {
				line += fmt.Sprintf("  recovery@%.1f", *up.PredictedRecoveryTime)
			}
		}
		if up.FitErr != "" {
			line += "  fit_error=" + up.FitErr
		}
		fmt.Println(line)
		return nil
	case "closed":
		var ev stream.Event
		_ = json.Unmarshal(payload, &ev)
		fmt.Printf("\nsession closed (%s)\n", ev.Reason)
		return nil
	default:
		return nil
	}
}
