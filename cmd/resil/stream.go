package main

// resil stream: a client for the server's streaming-session API. It
// opens a session on a running resil-server, subscribes to the
// Server-Sent Events feed, and replays a dataset (or CSV) point by
// point — with optional -interval pacing to mimic live arrival —
// printing each pushed update as the disruption unfolds. This is both
// the scripted end-to-end exercise of the streaming subsystem and a
// reference SSE consumer.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"resilience/internal/stream"
	"resilience/internal/telemetry"
)

func cmdStream(args []string) error {
	fs := flag.NewFlagSet("stream", flag.ContinueOnError)
	serverURL := fs.String("server", "http://localhost:8080", "base URL of a running resil-server")
	dataName := fs.String("dataset", "", "built-in dataset name or CSV path")
	modelName := fs.String("model", "competing-risks", "model the session refits on each update")
	interval := fs.Duration("interval", 0, "pause between observations (0 replays as fast as the server accepts)")
	keep := fs.Bool("keep", false, "leave the session open instead of deleting it when the replay ends")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dataName == "" {
		return fmt.Errorf("stream: -dataset required")
	}
	data, label, err := resolveSeries(*dataName)
	if err != nil {
		return err
	}
	base := strings.TrimRight(*serverURL, "/")
	client := &http.Client{Timeout: 30 * time.Second}

	snap, err := createSession(client, base, *modelName)
	if err != nil {
		return err
	}
	fmt.Printf("session %s on %s (model %s), replaying %s, %d points\n\n",
		snap.ID, base, snap.Model, label, data.Len())

	// Subscribe before the first observation so no event is missed; the
	// feed goroutine prints every pushed event and exits on the terminal
	// "closed" event or connection loss. The initial snapshot event
	// signals the subscription is live, gating the replay.
	events := make(chan error, 1)
	ready := make(chan struct{})
	go func() { events <- followEvents(base, snap.ID, ready) }()
	select {
	case <-ready:
	case err := <-events:
		return err
	case <-time.After(10 * time.Second):
		return fmt.Errorf("stream: event feed never delivered the initial snapshot")
	}

	for i := 0; i < data.Len(); i++ {
		if err := observePoint(client, base, snap.ID, data.Time(i), data.Value(i)); err != nil {
			return err
		}
		if *interval > 0 && i < data.Len()-1 {
			time.Sleep(*interval)
		}
	}

	if *keep {
		fmt.Printf("\nsession %s left open\n", snap.ID)
		return nil
	}
	req, err := http.NewRequest(http.MethodDelete, base+"/v1/sessions/"+snap.ID, nil)
	if err != nil {
		return err
	}
	resp, err := client.Do(req)
	if err != nil {
		return fmt.Errorf("stream: close session: %w", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	// The delete pushes the terminal event; wait for the feed to drain so
	// every update has been printed before we return.
	select {
	case err := <-events:
		return err
	case <-time.After(10 * time.Second):
		return fmt.Errorf("stream: event feed did not terminate after close")
	}
}

func createSession(client *http.Client, base, model string) (*stream.Snapshot, error) {
	body, _ := json.Marshal(map[string]any{"model": model})
	resp, err := client.Post(base+"/v1/sessions", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("stream: create session: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		return nil, apiErrorf(resp, "create session")
	}
	var snap stream.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return nil, fmt.Errorf("stream: decode session: %w", err)
	}
	return &snap, nil
}

func observePoint(client *http.Client, base, id string, t, v float64) error {
	body, _ := json.Marshal(map[string]any{"time": t, "value": v})
	req, err := http.NewRequest(http.MethodPost, base+"/v1/sessions/"+id+"/observe", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("stream: observe t=%g: %w", t, err)
	}
	req.Header.Set("Content-Type", "application/json")
	// Propagate a client-minted trace context: the server adopts the
	// trace ID, so each observation's server-side span tree (observe →
	// refit → WAL append → SSE publish) is queryable afterwards at
	// GET /debug/traces/{id} under an ID the client chose.
	req.Header.Set("Traceparent", telemetry.FormatTraceparent(telemetry.NewTraceID(), telemetry.NewSpanID()))
	resp, err := client.Do(req)
	if err != nil {
		return fmt.Errorf("stream: observe t=%g: %w", t, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return apiErrorf(resp, fmt.Sprintf("observe t=%g", t))
	}
	io.Copy(io.Discard, resp.Body)
	return nil
}

// apiErrorf folds a non-2xx response's JSON error envelope into an error.
func apiErrorf(resp *http.Response, what string) error {
	var envelope struct {
		Error string `json:"error"`
		Field string `json:"field"`
	}
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	msg := strings.TrimSpace(string(raw))
	if json.Unmarshal(raw, &envelope) == nil && envelope.Error != "" {
		msg = envelope.Error
		if envelope.Field != "" {
			msg += " (field " + envelope.Field + ")"
		}
	}
	return fmt.Errorf("stream: %s: %s: %s", what, resp.Status, msg)
}

// followEvents consumes the session's SSE feed, printing one line per
// update until the terminal "closed" event arrives. ready is closed
// once the initial snapshot event arrives, i.e. the subscription is
// attached and no later update can be missed.
func followEvents(base, id string, ready chan<- struct{}) error {
	// No client timeout: the feed is open-ended by design.
	resp, err := http.Get(base + "/v1/sessions/" + id + "/events")
	if err != nil {
		return fmt.Errorf("stream: subscribe: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return apiErrorf(resp, "subscribe")
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	var event, payload string
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			payload = strings.TrimPrefix(line, "data: ")
		case line == "":
			if event == "snapshot" && ready != nil {
				close(ready)
				ready = nil
			}
			done, err := printEvent(event, payload)
			if err != nil {
				return err
			}
			if done {
				return nil
			}
			event, payload = "", ""
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("stream: event feed: %w", err)
	}
	return fmt.Errorf("stream: event feed ended without a terminal event")
}

// printEvent renders one SSE event; done reports the terminal event.
func printEvent(event, payload string) (done bool, err error) {
	switch event {
	case "snapshot":
		return false, nil // attach-time state; the replay prints updates only
	case "update":
		var ev stream.Event
		if err := json.Unmarshal([]byte(payload), &ev); err != nil || ev.Update == nil {
			return false, fmt.Errorf("stream: bad update event %q: %v", payload, err)
		}
		up := ev.Update
		line := fmt.Sprintf("#%-3d t=%-5.1f v=%.4f  %-10s", up.Seq, up.Time, up.Value, up.Phase)
		if up.FitModel != "" {
			line += "  fit=" + up.FitModel
			if up.FallbackModel != "" {
				line += " (fallback)"
			}
			if up.PredictedRecoveryTime != nil {
				line += fmt.Sprintf("  recovery@%.1f", *up.PredictedRecoveryTime)
			}
		}
		if up.FitErr != "" {
			line += "  fit_error=" + up.FitErr
		}
		fmt.Println(line)
		return false, nil
	case "closed":
		var ev stream.Event
		_ = json.Unmarshal([]byte(payload), &ev)
		fmt.Printf("\nsession closed (%s)\n", ev.Reason)
		return true, nil
	default:
		return false, nil
	}
}
