package main

// resil loadgen: a mixed-traffic load harness for a running resil-server
// with an SLO gate, so CI (and operators before a rollout) can prove the
// service meets its latency and error budgets under concurrent fit,
// batch, and streaming-session traffic — not just that it answers one
// curl. Latencies are recorded into a private telemetry registry (the
// same histogram implementation the server exports) and summarized as
// p50/p99 per operation class; -slo-p99 and -slo-error-rate turn the
// summary into a pass/fail exit code.
//
// The request mix is weighted round-robin over three operation classes:
//
//	fit     fit requests on one of a small deterministic series pool
//	        (repeats hit the server's fit cache; variants miss)
//	batch   batch requests with a few jobs each
//	stream  create a session, observe a few chunks, delete it
//
// -transport selects the wire: http (the REST routes), binary (the
// compact framed protocol on the server's -binary-addr listener), or
// both — which alternates transports per operation and reports each
// transport's op latencies separately, so the two wires' SLO behavior
// is directly comparable from one run.
//
// The series pool is deterministic, so runs are comparable across
// machines and commits.

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"resilience/internal/telemetry"
	"resilience/internal/transport"
)

func cmdLoadgen(args []string) error {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	serverURL := fs.String("server", "http://localhost:8080", "base URL of a running resil-server")
	transportName := fs.String("transport", "http", "wire transport for the generated load: http, binary, or both")
	binaryServer := fs.String("binary-server", "127.0.0.1:9090", "host:port of the server's -binary-addr listener (used by -transport binary/both)")
	duration := fs.Duration("duration", 10*time.Second, "how long to generate load")
	concurrency := fs.Int("concurrency", 4, "concurrent workers")
	mix := fs.String("mix", "fit=2,stream=1,batch=1", "weighted operation mix, e.g. fit=2,stream=1,batch=1")
	sloP99 := fs.Duration("slo-p99", 0, "fail when overall p99 request latency exceeds this (0 disables the gate)")
	sloErrRate := fs.Float64("slo-error-rate", -1, "fail when the request error rate exceeds this fraction (negative disables the gate)")
	jsonOut := fs.Bool("json", false, "emit the report as JSON instead of a table")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *concurrency < 1 {
		return fmt.Errorf("loadgen: -concurrency must be at least 1")
	}
	schedule, err := parseMix(*mix)
	if err != nil {
		return err
	}
	var transports []string
	switch *transportName {
	case "http":
		transports = []string{"http"}
	case "binary":
		transports = []string{"binary"}
	case "both":
		transports = []string{"http", "binary"}
	default:
		return fmt.Errorf("loadgen: unknown transport %q (want http, binary, or both)", *transportName)
	}

	// Readiness is always gated over HTTP: /readyz reports WAL replay
	// state and the HTTP listener is unconditionally on.
	base := strings.TrimRight(*serverURL, "/")
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	if err := waitReady(&http.Client{Timeout: 30 * time.Second}, base, 10*time.Second); err != nil {
		return err
	}

	callers := make([]caller, 0, len(transports))
	for _, tn := range transports {
		target := base
		if tn == "binary" {
			target = *binaryServer
		}
		cl, err := newCaller(tn, target)
		if err != nil {
			return fmt.Errorf("loadgen: %w", err)
		}
		defer cl.close()
		callers = append(callers, cl)
	}

	g := newLoadgen(callers)
	start := time.Now()
	deadline := start.Add(*duration)
	var next atomic.Uint64
	var wg sync.WaitGroup
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(deadline) {
				n := next.Add(1)
				op := schedule[n%uint64(len(schedule))]
				g.runOp(g.callers[n%uint64(len(g.callers))], op)
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := g.report(elapsed)
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			return err
		}
	} else {
		printLoadReport(rep)
	}

	// The SLO gate: breaches are process failures so `make loadgen-smoke`
	// and CI fail loudly.
	var breaches []string
	if *sloP99 > 0 && rep.Overall.P99Ms > float64(sloP99.Milliseconds()) {
		breaches = append(breaches, fmt.Sprintf("p99 %.1fms > SLO %dms",
			rep.Overall.P99Ms, sloP99.Milliseconds()))
	}
	if *sloErrRate >= 0 && rep.ErrorRate > *sloErrRate {
		breaches = append(breaches, fmt.Sprintf("error rate %.4f > SLO %.4f",
			rep.ErrorRate, *sloErrRate))
	}
	if len(breaches) > 0 {
		return fmt.Errorf("loadgen: SLO breach: %s", strings.Join(breaches, "; "))
	}
	return nil
}

// parseMix expands "fit=2,stream=1" into a round-robin schedule.
func parseMix(mix string) ([]string, error) {
	known := map[string]bool{"fit": true, "batch": true, "stream": true}
	var schedule []string
	for _, entry := range strings.Split(mix, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		name, weightStr, ok := strings.Cut(entry, "=")
		weight := 1
		if ok {
			w, err := strconv.Atoi(weightStr)
			if err != nil || w < 0 {
				return nil, fmt.Errorf("loadgen: bad weight in mix entry %q", entry)
			}
			weight = w
		}
		if !known[name] {
			return nil, fmt.Errorf("loadgen: unknown operation %q in mix (want fit, batch, stream)", name)
		}
		for i := 0; i < weight; i++ {
			schedule = append(schedule, name)
		}
	}
	if len(schedule) == 0 {
		return nil, fmt.Errorf("loadgen: mix %q selects no operations", mix)
	}
	return schedule, nil
}

// waitReady polls /readyz until the server reports ready (it may still
// be replaying its WAL) or the timeout expires.
func waitReady(client *http.Client, base string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	var lastErr error
	for time.Now().Before(deadline) {
		resp, err := client.Get(base + "/readyz")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
			lastErr = fmt.Errorf("readyz: status %d", resp.StatusCode)
		} else {
			lastErr = err
		}
		time.Sleep(200 * time.Millisecond)
	}
	return fmt.Errorf("loadgen: server at %s never became ready: %w", base, lastErr)
}

// loadgen drives one run: the transport callers, series pool, and a
// private metrics registry (latency histograms + op/error counters per
// transport and operation class).
type loadgen struct {
	callers []caller
	pool    [][]float64
	poolIx  atomic.Uint64

	reg     *telemetry.Registry
	overall *telemetry.Histogram

	// slowest holds the slowest requests seen so far (smallest first),
	// each tagged with the server-side trace ID — the handle for
	// `GET /debug/traces/{id}`.
	slowMu  sync.Mutex
	slowest []slowRequest
}

// slowRequest is one slow-request record in the -json report.
type slowRequest struct {
	Op        string  `json:"op"`
	LatencyMs float64 `json:"latency_ms"`
	TraceID   string  `json:"trace_id,omitempty"`
}

// maxSlowest bounds the slow-request list kept (and reported).
const maxSlowest = 5

func newLoadgen(callers []caller) *loadgen {
	reg := telemetry.NewRegistry()
	return &loadgen{
		callers: callers,
		pool:    loadSeriesPool(),
		reg:     reg,
		overall: reg.GetOrCreateHistogram("loadgen_latency_seconds", telemetry.DurationBuckets()),
	}
}

// opKey names one (transport, op-class) cell in the report. With a
// single transport the keys stay the bare op names, so existing report
// consumers (obs_smoke.sh) read the same shape as before.
func (g *loadgen) opKey(transportName, op string) string {
	if len(g.callers) == 1 {
		return op
	}
	return transportName + ":" + op
}

// noteSlow records a completed request into the bounded slowest list.
func (g *loadgen) noteSlow(op string, sec float64, traceID string) {
	g.slowMu.Lock()
	defer g.slowMu.Unlock()
	ms := sec * 1000
	if len(g.slowest) == maxSlowest && ms <= g.slowest[0].LatencyMs {
		return
	}
	g.slowest = append(g.slowest, slowRequest{Op: op, LatencyMs: ms, TraceID: traceID})
	sort.Slice(g.slowest, func(i, j int) bool { return g.slowest[i].LatencyMs < g.slowest[j].LatencyMs })
	if len(g.slowest) > maxSlowest {
		g.slowest = g.slowest[len(g.slowest)-maxSlowest:]
	}
}

// loadSeriesPool builds 16 deterministic V-shaped series of varying
// length, depth, and jitter. Repeating a pool entry verbatim exercises
// the server's fit cache; distinct entries exercise real optimizer work.
func loadSeriesPool() [][]float64 {
	pool := make([][]float64, 16)
	for k := range pool {
		lead := 3
		n := 18 + (k%4)*6
		depth := 0.04 + 0.012*float64(k%5)
		vals := make([]float64, n)
		half := float64(n-lead) / 2
		for i := range vals {
			if i < lead {
				vals[i] = 1.0
				continue
			}
			x := float64(i-lead) - half
			v := 1.0 - depth*(1.0-(x/half)*(x/half))
			// Small deterministic jitter so variants don't canonicalize to
			// the same cache digest.
			vals[i] = v + 0.002*math.Sin(1.7*float64(k)+0.9*float64(i))
		}
		pool[k] = vals
	}
	return pool
}

func (g *loadgen) nextSeries() []float64 {
	return g.pool[g.poolIx.Add(1)%uint64(len(g.pool))]
}

// histFor returns the latency histogram for one report key.
func (g *loadgen) histFor(key string) *telemetry.Histogram {
	return g.reg.GetOrCreateHistogram(
		`loadgen_latency_seconds{op="`+key+`"}`, telemetry.DurationBuckets())
}

// observeCall times one operation on cl for operation class op,
// recording latency and outcome. Any transport error or non-2xx status
// counts as an error. The response body (when any) is returned for ops
// that need it.
func (g *loadgen) observeCall(cl caller, op, protoOp, id string, body any) []byte {
	key := g.opKey(cl.transportName(), op)
	start := time.Now()
	status, raw, traceID, err := cl.call(context.Background(), protoOp, id, body)
	ok := err == nil && status >= 200 && status < 300
	sec := time.Since(start).Seconds()
	g.noteSlow(key, sec, traceID)
	g.overall.Observe(sec)
	g.histFor(key).Observe(sec)
	g.reg.GetOrCreateCounter(`loadgen_requests_total{op="` + key + `"}`).Inc()
	if !ok {
		g.reg.GetOrCreateCounter(`loadgen_errors_total{op="` + key + `"}`).Inc()
		return nil
	}
	return raw
}

// runOp performs one logical operation of the given class on cl.
func (g *loadgen) runOp(cl caller, op string) {
	switch op {
	case "fit":
		g.observeCall(cl, "fit", transport.OpFit, "", map[string]any{
			"model": "quadratic", "values": g.nextSeries(),
		})
	case "batch":
		jobs := make([]map[string]any, 3)
		for i := range jobs {
			jobs[i] = map[string]any{"model": "quadratic", "values": g.nextSeries()}
		}
		g.observeCall(cl, "batch", transport.OpBatch, "", map[string]any{"jobs": jobs})
	case "stream":
		body := g.observeCall(cl, "stream", transport.OpSessionCreate, "", map[string]any{"model": "quadratic"})
		if body == nil {
			return
		}
		var snap struct {
			ID string `json:"id"`
		}
		if err := json.Unmarshal(body, &snap); err != nil || snap.ID == "" {
			return
		}
		series := g.nextSeries()
		for off := 0; off < len(series); off += 8 {
			end := min(off+8, len(series))
			g.observeCall(cl, "stream", transport.OpSessionObserve, snap.ID,
				map[string]any{"values": series[off:end]})
		}
		g.observeCall(cl, "stream", transport.OpSessionDelete, snap.ID, nil)
	}
}

// opStats is one operation class's summary.
type opStats struct {
	Requests uint64  `json:"requests"`
	Errors   uint64  `json:"errors"`
	P50Ms    float64 `json:"p50_ms"`
	P99Ms    float64 `json:"p99_ms"`
	// Buckets is the class's full latency distribution (cumulative counts
	// per upper bound, +Inf last), so a -json consumer can recompute any
	// quantile or diff distributions across runs.
	Buckets []bucketCount `json:"buckets,omitempty"`
}

// bucketCount is one cumulative histogram bucket in the -json report.
type bucketCount struct {
	LEMs       float64 `json:"le_ms"` // upper bound; -1 encodes +Inf
	Cumulative uint64  `json:"cumulative"`
}

// bucketCounts renders a histogram's cumulative buckets for the report.
func bucketCounts(h *telemetry.Histogram) []bucketCount {
	bounds, cumulative := h.Buckets()
	out := make([]bucketCount, 0, len(cumulative))
	for i, c := range cumulative {
		le := -1.0
		if i < len(bounds) {
			le = bounds[i] * 1000
		}
		out = append(out, bucketCount{LEMs: le, Cumulative: c})
	}
	return out
}

// loadReport is the run summary (also the -json output shape). With
// -transport both, PerOp keys are "<transport>:<op>" so the wires'
// latencies land side by side; with a single transport they stay the
// bare op names.
type loadReport struct {
	DurationSeconds float64            `json:"duration_seconds"`
	Transports      []string           `json:"transports"`
	Requests        uint64             `json:"requests"`
	Errors          uint64             `json:"errors"`
	ErrorRate       float64            `json:"error_rate"`
	Throughput      float64            `json:"requests_per_second"`
	Overall         opStats            `json:"overall"`
	PerOp           map[string]opStats `json:"per_op"`
	// Slowest lists the slowest individual requests with the server's
	// trace IDs, slowest first — paste one into GET /debug/traces/{id}
	// to see where the time went.
	Slowest []slowRequest `json:"slowest_requests,omitempty"`
}

func quantileMs(h *telemetry.Histogram, q float64) float64 {
	v := h.Quantile(q)
	if math.IsNaN(v) {
		return 0
	}
	return v * 1000
}

func (g *loadgen) report(elapsed time.Duration) loadReport {
	rep := loadReport{
		DurationSeconds: elapsed.Seconds(),
		PerOp:           map[string]opStats{},
	}
	for _, cl := range g.callers {
		rep.Transports = append(rep.Transports, cl.transportName())
		for _, op := range []string{"fit", "batch", "stream"} {
			key := g.opKey(cl.transportName(), op)
			h := g.histFor(key)
			if h.Count() == 0 {
				continue
			}
			st := opStats{
				Requests: g.reg.GetOrCreateCounter(`loadgen_requests_total{op="` + key + `"}`).Value(),
				Errors:   g.reg.GetOrCreateCounter(`loadgen_errors_total{op="` + key + `"}`).Value(),
				P50Ms:    quantileMs(h, 0.5),
				P99Ms:    quantileMs(h, 0.99),
				Buckets:  bucketCounts(h),
			}
			rep.PerOp[key] = st
			rep.Requests += st.Requests
			rep.Errors += st.Errors
		}
	}
	rep.Overall = opStats{
		Requests: rep.Requests,
		Errors:   rep.Errors,
		P50Ms:    quantileMs(g.overall, 0.5),
		P99Ms:    quantileMs(g.overall, 0.99),
	}
	if rep.Requests > 0 {
		rep.ErrorRate = float64(rep.Errors) / float64(rep.Requests)
	}
	if elapsed > 0 {
		rep.Throughput = float64(rep.Requests) / elapsed.Seconds()
	}
	g.slowMu.Lock()
	for i := len(g.slowest) - 1; i >= 0; i-- { // slowest first
		rep.Slowest = append(rep.Slowest, g.slowest[i])
	}
	g.slowMu.Unlock()
	return rep
}

func printLoadReport(rep loadReport) {
	fmt.Printf("loadgen: %.1fs over %s, %d requests (%.1f req/s), %d errors (rate %.4f)\n",
		rep.DurationSeconds, strings.Join(rep.Transports, "+"),
		rep.Requests, rep.Throughput, rep.Errors, rep.ErrorRate)
	fmt.Printf("%-14s %10s %8s %10s %10s\n", "op", "requests", "errors", "p50(ms)", "p99(ms)")
	ops := make([]string, 0, len(rep.PerOp))
	for op := range rep.PerOp {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	for _, op := range ops {
		st := rep.PerOp[op]
		fmt.Printf("%-14s %10d %8d %10.1f %10.1f\n", op, st.Requests, st.Errors, st.P50Ms, st.P99Ms)
	}
	fmt.Printf("%-14s %10d %8d %10.1f %10.1f\n", "overall",
		rep.Overall.Requests, rep.Overall.Errors, rep.Overall.P50Ms, rep.Overall.P99Ms)
}
