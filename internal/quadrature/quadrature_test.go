package quadrature

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

// integrators lists every rule under a common adapter so shared behaviours
// can be tested uniformly.
var integrators = []struct {
	name string
	call func(f Func, a, b float64) (float64, error)
	tol  float64
}{
	{name: "trapezoid", call: func(f Func, a, b float64) (float64, error) { return Trapezoid(f, a, b, 20000) }, tol: 1e-6},
	{name: "simpson", call: func(f Func, a, b float64) (float64, error) { return Simpson(f, a, b, 2000) }, tol: 1e-9},
	{name: "romberg", call: func(f Func, a, b float64) (float64, error) { return Romberg(f, a, b, 1e-12, 25) }, tol: 1e-9},
	{name: "gauss", call: func(f Func, a, b float64) (float64, error) { return GaussLegendre(f, a, b, 64) }, tol: 1e-10},
	{name: "adaptive", call: func(f Func, a, b float64) (float64, error) { return Adaptive(f, a, b, 1e-12) }, tol: 1e-9},
}

func TestIntegratorsOnKnownIntegrals(t *testing.T) {
	cases := []struct {
		name string
		f    Func
		a, b float64
		want float64
	}{
		{name: "constant", f: func(float64) float64 { return 3 }, a: -1, b: 4, want: 15},
		{name: "linear", f: func(x float64) float64 { return 2 * x }, a: 0, b: 5, want: 25},
		{name: "quadratic", f: func(x float64) float64 { return x * x }, a: 0, b: 3, want: 9},
		{name: "sine", f: math.Sin, a: 0, b: math.Pi, want: 2},
		{name: "exp", f: math.Exp, a: 0, b: 1, want: math.E - 1},
		{name: "reversed interval", f: func(x float64) float64 { return x }, a: 2, b: 0, want: -2},
	}
	for _, integ := range integrators {
		for _, tc := range cases {
			t.Run(integ.name+"/"+tc.name, func(t *testing.T) {
				got, err := integ.call(tc.f, tc.a, tc.b)
				if err != nil {
					t.Fatalf("%v", err)
				}
				if math.Abs(got-tc.want) > integ.tol*math.Max(1, math.Abs(tc.want)) {
					t.Errorf("= %.12g, want %.12g", got, tc.want)
				}
			})
		}
	}
}

func TestIntegratorsEmptyInterval(t *testing.T) {
	for _, integ := range integrators {
		got, err := integ.call(math.Exp, 2, 2)
		if err != nil || got != 0 {
			t.Errorf("%s over [2,2] = %g, %v; want 0, nil", integ.name, got, err)
		}
	}
}

func TestIntegratorsRejectBadIntervals(t *testing.T) {
	for _, integ := range integrators {
		for _, bad := range [][2]float64{{math.NaN(), 1}, {0, math.Inf(1)}} {
			if _, err := integ.call(math.Exp, bad[0], bad[1]); !errors.Is(err, ErrBadInterval) {
				t.Errorf("%s(%v): want ErrBadInterval, got %v", integ.name, bad, err)
			}
		}
	}
}

func TestFixedRulesRejectTooFewNodes(t *testing.T) {
	if _, err := Trapezoid(math.Exp, 0, 1, 0); !errors.Is(err, ErrTooFewNodes) {
		t.Errorf("Trapezoid n=0: %v", err)
	}
	if _, err := Simpson(math.Exp, 0, 1, 1); !errors.Is(err, ErrTooFewNodes) {
		t.Errorf("Simpson n=1: %v", err)
	}
	if _, err := GaussLegendre(math.Exp, 0, 1, 0); !errors.Is(err, ErrTooFewNodes) {
		t.Errorf("GaussLegendre n=0: %v", err)
	}
}

func TestSimpsonOddNRoundsUp(t *testing.T) {
	got, err := Simpson(func(x float64) float64 { return x * x }, 0, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-9) > 1e-9 {
		t.Errorf("Simpson with odd n = %g, want 9", got)
	}
}

func TestAdaptiveHandlesSharpPeak(t *testing.T) {
	// A narrow Gaussian bump: naive fixed rules need many nodes; adaptive
	// should nail it. ∫ exp(-(x-0.5)²/2σ²) over wide interval ≈ σ√(2π).
	sigma := 0.001
	f := func(x float64) float64 {
		d := (x - 0.5) / sigma
		return math.Exp(-d * d / 2)
	}
	want := sigma * math.Sqrt(2*math.Pi)
	got, err := Adaptive(f, 0, 1, 1e-13)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want)/want > 1e-6 {
		t.Errorf("Adaptive sharp peak = %.12g, want %.12g", got, want)
	}
}

func TestGaussExactForHighDegree(t *testing.T) {
	// 5-point Gauss-Legendre is exact through degree 9 on one panel.
	f := func(x float64) float64 { return math.Pow(x, 9) }
	got, err := GaussLegendre(f, 0, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.1) > 1e-14 {
		t.Errorf("GaussLegendre x⁹ = %.16g, want 0.1", got)
	}
}

func TestAdditivityProperty(t *testing.T) {
	// Property: ∫[a,c] = ∫[a,b] + ∫[b,c] for the adaptive integrator.
	f := func(seedA, seedB, seedC uint32) bool {
		a := float64(seedA%100) / 10
		b := a + float64(seedB%100)/10
		c := b + float64(seedC%100)/10
		g := func(x float64) float64 { return math.Sin(x) + x*x/10 }
		whole, err1 := Adaptive(g, a, c, 1e-12)
		left, err2 := Adaptive(g, a, b, 1e-12)
		right, err3 := Adaptive(g, b, c, 1e-12)
		if err1 != nil || err2 != nil || err3 != nil {
			return false
		}
		return math.Abs(whole-(left+right)) < 1e-8
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRombergDefaultArguments(t *testing.T) {
	got, err := Romberg(math.Sin, 0, math.Pi, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-2) > 1e-9 {
		t.Errorf("Romberg with defaults = %g, want 2", got)
	}
}
