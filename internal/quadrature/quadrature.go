// Package quadrature provides one-dimensional numerical integration
// routines used to compute areas under resilience curves: fixed-rule
// trapezoid, composite Simpson, Romberg extrapolation, Gauss–Legendre,
// and adaptive Simpson with error control.
//
// The paper's bathtub models have closed-form areas (Eqs. 3 and 6); this
// package both cross-checks those formulas and integrates the mixture
// models, which have no closed form.
package quadrature

import (
	"errors"
	"math"
)

// Func is the integrand signature shared by every rule in this package.
type Func func(x float64) float64

// ErrBadInterval is returned when an integration interval is not finite.
var ErrBadInterval = errors.New("quadrature: interval endpoints must be finite")

// ErrTooFewNodes is returned when a fixed rule is asked for fewer nodes
// than it can operate with.
var ErrTooFewNodes = errors.New("quadrature: too few nodes")

// Trapezoid integrates f over [a, b] with n equal subintervals using the
// composite trapezoid rule. n must be at least 1. The rule is exact for
// linear integrands and O(h²) accurate otherwise.
func Trapezoid(f Func, a, b float64, n int) (float64, error) {
	if err := checkInterval(a, b); err != nil {
		return math.NaN(), err
	}
	if n < 1 {
		return math.NaN(), ErrTooFewNodes
	}
	if a == b {
		return 0, nil
	}
	h := (b - a) / float64(n)
	sum := (f(a) + f(b)) / 2
	for i := 1; i < n; i++ {
		sum += f(a + float64(i)*h)
	}
	return sum * h, nil
}

// Simpson integrates f over [a, b] with the composite Simpson rule on n
// subintervals (n is rounded up to the next even number). It is exact for
// cubics and O(h⁴) accurate otherwise.
func Simpson(f Func, a, b float64, n int) (float64, error) {
	if err := checkInterval(a, b); err != nil {
		return math.NaN(), err
	}
	if n < 2 {
		return math.NaN(), ErrTooFewNodes
	}
	if a == b {
		return 0, nil
	}
	if n%2 == 1 {
		n++
	}
	h := (b - a) / float64(n)
	sum := f(a) + f(b)
	for i := 1; i < n; i++ {
		x := a + float64(i)*h
		if i%2 == 1 {
			sum += 4 * f(x)
		} else {
			sum += 2 * f(x)
		}
	}
	return sum * h / 3, nil
}

// Romberg integrates f over [a, b] with Romberg extrapolation of the
// trapezoid rule to the requested absolute tolerance. maxLevels bounds the
// extrapolation table depth (a level doubles the number of panels).
func Romberg(f Func, a, b, tol float64, maxLevels int) (float64, error) {
	if err := checkInterval(a, b); err != nil {
		return math.NaN(), err
	}
	if a == b {
		return 0, nil
	}
	if tol <= 0 {
		tol = 1e-10
	}
	if maxLevels <= 0 {
		maxLevels = 20
	}
	r := make([][]float64, maxLevels)
	h := b - a
	r[0] = []float64{h * (f(a) + f(b)) / 2}
	for k := 1; k < maxLevels; k++ {
		h /= 2
		// Refined trapezoid: reuse previous level, add midpoints.
		var sum float64
		steps := 1 << (k - 1)
		for i := 0; i < steps; i++ {
			sum += f(a + (2*float64(i)+1)*h)
		}
		r[k] = make([]float64, k+1)
		r[k][0] = r[k-1][0]/2 + h*sum
		pow4 := 1.0
		for j := 1; j <= k; j++ {
			pow4 *= 4
			r[k][j] = r[k][j-1] + (r[k][j-1]-r[k-1][j-1])/(pow4-1)
		}
		if k > 1 && math.Abs(r[k][k]-r[k-1][k-1]) < tol {
			return r[k][k], nil
		}
	}
	return r[maxLevels-1][maxLevels-1], nil
}

// _gauss5Nodes and _gauss5Weights are the 5-point Gauss–Legendre nodes and
// weights on [-1, 1].
var (
	_gauss5Nodes = [5]float64{
		-0.9061798459386640,
		-0.5384693101056831,
		0,
		0.5384693101056831,
		0.9061798459386640,
	}
	_gauss5Weights = [5]float64{
		0.2369268850561891,
		0.4786286704993665,
		0.5688888888888889,
		0.4786286704993665,
		0.2369268850561891,
	}
)

// GaussLegendre integrates f over [a, b] with a composite 5-point
// Gauss–Legendre rule on n panels. It is exact for polynomials up to
// degree 9 per panel.
func GaussLegendre(f Func, a, b float64, n int) (float64, error) {
	if err := checkInterval(a, b); err != nil {
		return math.NaN(), err
	}
	if n < 1 {
		return math.NaN(), ErrTooFewNodes
	}
	if a == b {
		return 0, nil
	}
	h := (b - a) / float64(n)
	var total float64
	for i := 0; i < n; i++ {
		lo := a + float64(i)*h
		mid := lo + h/2
		half := h / 2
		var panel float64
		for k := range _gauss5Nodes {
			panel += _gauss5Weights[k] * f(mid+half*_gauss5Nodes[k])
		}
		total += panel * half
	}
	return total, nil
}

// Adaptive integrates f over [a, b] with adaptive Simpson quadrature to
// the requested absolute tolerance, recursing where the integrand is
// hardest. It is the default integrator for resilience metrics on models
// without closed-form areas.
func Adaptive(f Func, a, b, tol float64) (float64, error) {
	if err := checkInterval(a, b); err != nil {
		return math.NaN(), err
	}
	if a == b {
		return 0, nil
	}
	if tol <= 0 {
		tol = 1e-10
	}
	fa, fb := f(a), f(b)
	m := (a + b) / 2
	fm := f(m)
	whole := simpsonPanel(a, b, fa, fm, fb)
	const maxDepth = 50
	return adaptiveStep(f, a, b, fa, fm, fb, whole, tol, maxDepth), nil
}

func adaptiveStep(f Func, a, b, fa, fm, fb, whole, tol float64, depth int) float64 {
	m := (a + b) / 2
	lm := (a + m) / 2
	rm := (m + b) / 2
	flm, frm := f(lm), f(rm)
	left := simpsonPanel(a, m, fa, flm, fm)
	right := simpsonPanel(m, b, fm, frm, fb)
	if depth <= 0 || math.Abs(left+right-whole) <= 15*tol {
		return left + right + (left+right-whole)/15
	}
	return adaptiveStep(f, a, m, fa, flm, fm, left, tol/2, depth-1) +
		adaptiveStep(f, m, b, fm, frm, fb, right, tol/2, depth-1)
}

// simpsonPanel applies Simpson's rule to a single panel given endpoint and
// midpoint evaluations.
func simpsonPanel(a, b, fa, fm, fb float64) float64 {
	return (b - a) / 6 * (fa + 4*fm + fb)
}

func checkInterval(a, b float64) error {
	if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
		return ErrBadInterval
	}
	return nil
}
