package dataset

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func validSpec() Spec {
	return Spec{
		Months:   48,
		Dips:     []Dip{{Start: 0, TTrough: 10, TRecover: 30, Depth: 0.03, DeclineA: 1.5, DeclineB: 1.2, RecoverA: 1.4, RecoverB: 1.1}},
		EndLevel: 1.02,
		Noise:    0,
	}
}

func TestSpecValidate(t *testing.T) {
	if err := validSpec().Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Spec)
	}{
		{"too few months", func(s *Spec) { s.Months = 2 }},
		{"no dips", func(s *Spec) { s.Dips = nil }},
		{"trough before start", func(s *Spec) { s.Dips[0].TTrough = -1 }},
		{"recover before trough", func(s *Spec) { s.Dips[0].TRecover = 5 }},
		{"zero depth", func(s *Spec) { s.Dips[0].Depth = 0 }},
		{"depth >= 1", func(s *Spec) { s.Dips[0].Depth = 1 }},
		{"bad shape param", func(s *Spec) { s.Dips[0].DeclineA = 0 }},
		{"negative noise", func(s *Spec) { s.Noise = -0.1 }},
		{"overlapping dips", func(s *Spec) {
			s.Dips = append(s.Dips, Dip{Start: 20, TTrough: 25, TRecover: 35, Depth: 0.02,
				DeclineA: 1, DeclineB: 1, RecoverA: 1, RecoverB: 1})
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := validSpec()
			tc.mutate(&s)
			if err := s.Validate(); err == nil {
				t.Error("want error")
			}
		})
	}
}

func TestGenerateBasicShape(t *testing.T) {
	s, err := Generate(validSpec())
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 48 {
		t.Fatalf("length %d", s.Len())
	}
	if s.Value(0) != 1 {
		t.Errorf("start = %g, want 1 (normalized)", s.Value(0))
	}
	minIdx, _, minV := s.Min()
	if minIdx < 8 || minIdx > 12 {
		t.Errorf("minimum at %d, want near 10", minIdx)
	}
	if math.Abs(minV-0.97) > 0.003 {
		t.Errorf("trough %g, want ~0.97", minV)
	}
	if math.Abs(s.Value(47)-1.02) > 0.005 {
		t.Errorf("terminal %g, want ~1.02", s.Value(47))
	}
}

func TestGenerateDeterminism(t *testing.T) {
	spec := validSpec()
	spec.Noise = 0.002
	spec.Seed = 42
	a, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < a.Len(); i++ {
		if a.Value(i) != b.Value(i) {
			t.Fatalf("non-deterministic at %d: %g vs %g", i, a.Value(i), b.Value(i))
		}
	}
	spec.Seed = 43
	c, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := 0; i < a.Len(); i++ {
		if a.Value(i) != c.Value(i) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical noise")
	}
}

func TestGenerateRejectsInvalidSpec(t *testing.T) {
	s := validSpec()
	s.Months = 1
	if _, err := Generate(s); err == nil {
		t.Error("invalid spec: want error")
	}
}

func TestGenerateWShape(t *testing.T) {
	spec := Spec{
		Months: 48,
		Dips: []Dip{
			{Start: 0, TTrough: 4, TRecover: 13, Depth: 0.02, DeclineA: 1.2, DeclineB: 1.1, RecoverA: 1.3, RecoverB: 1.1, RecoverTo: 1.005},
			{Start: 16, TTrough: 32, TRecover: 46, Depth: 0.03, DeclineA: 1.5, DeclineB: 1.3, RecoverA: 1.4, RecoverB: 1.2},
		},
		EndLevel: 1.01,
	}
	s, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	// The inter-dip plateau must rise back above 1 before falling again.
	peakBetween := 0.0
	for i := 12; i <= 16; i++ {
		if v := s.Value(i); v > peakBetween {
			peakBetween = v
		}
	}
	if peakBetween < 1.0 {
		t.Errorf("inter-dip plateau %g, want >= 1 (RecoverTo)", peakBetween)
	}
	if v := s.Value(4); v > 0.99 {
		t.Errorf("first trough %g, want < 0.99", v)
	}
	if v := s.Value(32); v > 0.985 {
		t.Errorf("second trough %g, want < 0.985", v)
	}
}

func TestRecessionsCatalog(t *testing.T) {
	recs, err := Recessions()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 7 {
		t.Fatalf("got %d recessions, want 7", len(recs))
	}
	wantMonths := map[string]int{
		"1974-76": 48, "1980": 48, "1981-83": 48, "1990-93": 48,
		"2001-05": 48, "2007-09": 48, "2020-21": 24,
	}
	for _, r := range recs {
		if r.Series.Len() != wantMonths[r.Name] {
			t.Errorf("%s: %d months, want %d", r.Name, r.Series.Len(), wantMonths[r.Name])
		}
		if r.Series.Value(0) != 1 {
			t.Errorf("%s: unnormalized start %g", r.Name, r.Series.Value(0))
		}
		_, _, minV := r.Series.Min()
		if minV >= 1 || minV < 0.8 {
			t.Errorf("%s: trough %g outside plausible range", r.Name, minV)
		}
		if r.Description == "" || r.Shape == "" {
			t.Errorf("%s: missing metadata", r.Name)
		}
	}
}

func TestRecessionTroughDepths(t *testing.T) {
	// The documented characteristics each reconstruction must reproduce.
	wantDepth := map[string]float64{
		"1974-76": 0.028,
		"1981-83": 0.031,
		"1990-93": 0.015,
		"2001-05": 0.020,
		"2007-09": 0.063,
		"2020-21": 0.144,
	}
	for name, want := range wantDepth {
		r, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		_, _, minV := r.Series.Min()
		depth := 1 - minV
		if math.Abs(depth-want) > 0.004 {
			t.Errorf("%s: depth %.4f, want ~%.3f", name, depth, want)
		}
	}
}

func TestByName(t *testing.T) {
	r, err := ByName("1990-93")
	if err != nil {
		t.Fatal(err)
	}
	if r.Name != "1990-93" {
		t.Errorf("got %q", r.Name)
	}
	if _, err := ByName("2030-35"); err == nil {
		t.Error("unknown name: want error")
	}
	if got := Names(); len(got) != 7 || got[0] != "1974-76" {
		t.Errorf("Names() = %v", got)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	r, err := ByName("1990-93")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, r.Series); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "time,value\n") {
		t.Error("missing header")
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != r.Series.Len() {
		t.Fatalf("length %d, want %d", back.Len(), r.Series.Len())
	}
	for i := 0; i < back.Len(); i++ {
		if back.Value(i) != r.Series.Value(i) {
			t.Fatalf("value %d: %g vs %g", i, back.Value(i), r.Series.Value(i))
		}
	}
}

func TestReadCSVWithoutHeader(t *testing.T) {
	s, err := ReadCSV(strings.NewReader("0,1\n1,0.98\n2,0.97\n"))
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 3 || s.Value(1) != 0.98 {
		t.Errorf("parsed %v", s.Values())
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"",                         // empty
		"time,value\n",             // header only
		"time,value\n0,1\nbad,row", // bad body row after data
		"0,1,2\n",                  // wrong field count
	}
	for _, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c)); !errors.Is(err, ErrBadFormat) {
			t.Errorf("ReadCSV(%q): want ErrBadFormat, got %v", c, err)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	r, err := ByName("2020-21")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, r.Series); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < back.Len(); i++ {
		if back.Value(i) != r.Series.Value(i) {
			t.Fatalf("value %d differs", i)
		}
	}
	if _, err := ReadJSON(strings.NewReader("{not json")); !errors.Is(err, ErrBadFormat) {
		t.Errorf("bad JSON: %v", err)
	}
	if _, err := ReadJSON(strings.NewReader(`{"times":[0],"values":[1,2]}`)); !errors.Is(err, ErrBadFormat) {
		t.Errorf("mismatched JSON: %v", err)
	}
	if err := WriteJSON(&buf, nil); !errors.Is(err, ErrBadFormat) {
		t.Errorf("nil series: %v", err)
	}
	if err := WriteCSV(&buf, nil); !errors.Is(err, ErrBadFormat) {
		t.Errorf("nil series CSV: %v", err)
	}
}

func TestKumaraswamyProperties(t *testing.T) {
	// Property: monotone from 0 to 1 on [0, 1] for positive shapes.
	f := func(aSeed, bSeed uint16) bool {
		a := 0.1 + float64(aSeed%50)/10
		b := 0.1 + float64(bSeed%50)/10
		if kumaraswamy(0, a, b) != 0 || kumaraswamy(1, a, b) != 1 {
			return false
		}
		if kumaraswamy(-0.5, a, b) != 0 || kumaraswamy(1.5, a, b) != 1 {
			return false
		}
		prev := 0.0
		for u := 0.0; u <= 1.0001; u += 0.01 {
			v := kumaraswamy(u, a, b)
			if v < prev-1e-12 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestShapeSpecClasses(t *testing.T) {
	for _, class := range []string{"V", "U", "W", "L", "v", "u"} {
		spec, err := ShapeSpec(class, 48, 0.03, 0.001, 7)
		if err != nil {
			t.Errorf("class %q: %v", class, err)
			continue
		}
		if err := spec.Validate(); err != nil {
			t.Errorf("class %q spec invalid: %v", class, err)
		}
		want := strings.ToUpper(class)
		if spec.Class != want || spec.ShapeClass() != want {
			t.Errorf("class %q: tagged %q, derived %q", class, spec.Class, spec.ShapeClass())
		}
		tagged, err := GenerateTagged(spec)
		if err != nil {
			t.Errorf("class %q: generate: %v", class, err)
			continue
		}
		if tagged.Class != want || tagged.Series.Len() != 48 {
			t.Errorf("class %q: tagged series class %q len %d", class, tagged.Class, tagged.Series.Len())
		}
	}
	if _, err := ShapeSpec("Z", 48, 0.03, 0.001, 7); err == nil {
		t.Error("unknown class: want error")
	}
}

func TestShapeClassDerivation(t *testing.T) {
	// Explicit tag wins over structure.
	tagged := Spec{Class: "V+shock", Dips: []Dip{{}, {}}}
	if got := tagged.ShapeClass(); got != "V+shock" {
		t.Errorf("explicit class: got %q", got)
	}
	cases := []struct {
		spec Spec
		want string
	}{
		{Spec{Months: 48, Dips: []Dip{{}, {}}, EndLevel: 1.0}, "W"},
		{Spec{Months: 48, Dips: []Dip{{TTrough: 5, TRecover: 20}}, EndLevel: 0.97}, "L"},
		{Spec{Months: 48, Dips: []Dip{{TTrough: 5, TRecover: 20}}, EndLevel: 1.05}, "J"},
		{Spec{Months: 48, Dips: []Dip{{TTrough: 20, TRecover: 40}}, EndLevel: 1.0}, "U"},
		{Spec{Months: 48, Dips: []Dip{{TTrough: 6, TRecover: 20}}, EndLevel: 1.01}, "V"},
	}
	for i, c := range cases {
		if got := c.spec.ShapeClass(); got != c.want {
			t.Errorf("case %d: got %q, want %q", i, got, c.want)
		}
	}
}

func TestGallery(t *testing.T) {
	entries, err := Gallery()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 5 {
		t.Fatalf("%d gallery entries", len(entries))
	}
	shapes := map[string]bool{}
	for _, e := range entries {
		shapes[e.Shape] = true
		if e.Series.Len() != 48 {
			t.Errorf("%s: %d months", e.Shape, e.Series.Len())
		}
		if e.Series.Value(0) != 1 {
			t.Errorf("%s: unnormalized start", e.Shape)
		}
		if e.Description == "" {
			t.Errorf("%s: empty description", e.Shape)
		}
	}
	for _, want := range []string{"V", "U", "W", "L", "J"} {
		if !shapes[want] {
			t.Errorf("missing shape %s", want)
		}
	}
}

func TestKShapedPair(t *testing.T) {
	recovering, depressed, err := KShapedPair()
	if err != nil {
		t.Fatal(err)
	}
	if recovering.Len() != 24 || depressed.Len() != 24 {
		t.Fatalf("lengths %d, %d", recovering.Len(), depressed.Len())
	}
	// Both drop together early.
	if recovering.Value(2) > 0.95 || depressed.Value(2) > 0.85 {
		t.Errorf("troughs: %g, %g", recovering.Value(2), depressed.Value(2))
	}
	// Divergent ends: one above its peak, one well below.
	endR := recovering.Value(23)
	endD := depressed.Value(23)
	if endR < 1.0 {
		t.Errorf("recovering sector ends at %g, want >= 1", endR)
	}
	if endD > 0.95 {
		t.Errorf("depressed sector ends at %g, want depressed", endD)
	}
}
