package dataset

import (
	"fmt"
	"sort"

	"resilience/internal/timeseries"
)

// Recession is one of the seven U.S. recession payroll curves of Fig. 2.
type Recession struct {
	// Name is the label used in the paper's tables, e.g. "1990-93".
	Name string
	// Shape is the letter shape economists assign the episode.
	Shape string
	// Months is the number of monthly observations (Table I's n).
	Months int
	// Description summarizes the documented characteristics the series is
	// reconstructed from.
	Description string
	// Series is the normalized payroll index, 1.0 at the employment peak.
	Series *timeseries.Series
}

// _recessionSpecs encodes the documented characteristics of each episode:
// trough depth and timing from BLS payroll statistics, recovery duration,
// and terminal level relative to the pre-recession peak. The curve-shape
// parameters were chosen so each series reproduces its letter shape.
var _recessionSpecs = []struct {
	name, shape, desc string
	spec              Spec
}{
	{
		name:  "1974-76",
		shape: "V",
		desc: "Sharp but brief 1973-75 oil-shock recession: payrolls fell " +
			"about 2.8% in roughly 8 months and regained the peak about 17 " +
			"months after it, then kept growing.",
		spec: Spec{
			Months:   48,
			Dips:     []Dip{{Start: 0, TTrough: 8, TRecover: 17, Depth: 0.028, DeclineA: 1.6, DeclineB: 1.3, RecoverA: 1.5, RecoverB: 1.2}},
			EndLevel: 1.012,
			Drift:    0.0022,
			Noise:    0.0012,
			Seed:     1974,
		},
	},
	{
		name:  "1980",
		shape: "W",
		desc: "The 1980 recession's brief 1.4% dip recovered within about a " +
			"year, but the 1981-82 recession began inside the 48-month " +
			"window, producing the W shape neither model family can fit.",
		spec: Spec{
			Months: 48,
			Dips: []Dip{
				{Start: 0, TTrough: 4, TRecover: 13, Depth: 0.016, DeclineA: 1.2, DeclineB: 1.1, RecoverA: 1.4, RecoverB: 1.2, RecoverTo: 1.005},
				{Start: 16, TTrough: 33, TRecover: 46, Depth: 0.035, DeclineA: 1.8, DeclineB: 1.5, RecoverA: 1.4, RecoverB: 1.2},
			},
			EndLevel: 1.008,
			Drift:    0.003,
			Noise:    0.0012,
			Seed:     1980,
		},
	},
	{
		name:  "1981-83",
		shape: "U",
		desc: "The deep 1981-82 recession: payrolls fell about 3.1% over 17 " +
			"months and took until month 28 to regain the peak, ending the " +
			"window about 7% above it.",
		spec: Spec{
			Months:   48,
			Dips:     []Dip{{Start: 0, TTrough: 17, TRecover: 28, Depth: 0.031, DeclineA: 1.7, DeclineB: 1.4, RecoverA: 1.5, RecoverB: 1.1}},
			EndLevel: 1.018,
			Drift:    0.0028,
			Noise:    0.0012,
			Seed:     1981,
		},
	},
	{
		name:  "1990-93",
		shape: "V",
		desc: "Shallow 1990-91 recession: a 1.5% decline over about 11 " +
			"months, a flat trough, recovery of the peak near month 32, and " +
			"about 3% growth by month 47.",
		spec: Spec{
			Months:   48,
			Dips:     []Dip{{Start: 0, TTrough: 11, TRecover: 32, Depth: 0.015, DeclineA: 1.5, DeclineB: 1.2, RecoverA: 1.3, RecoverB: 0.9}},
			EndLevel: 1.0,
			Drift:    0.0021,
			Noise:    0.0008,
			Seed:     1990,
		},
	},
	{
		name:  "2001-05",
		shape: "U",
		desc: "The 2001 recession's jobless recovery: payrolls drifted about " +
			"2% down over 28 months and only regained the peak at the very " +
			"end of the 48-month window.",
		spec: Spec{
			Months:   48,
			Dips:     []Dip{{Start: 0, TTrough: 28, TRecover: 47, Depth: 0.02, DeclineA: 1.4, DeclineB: 1.6, RecoverA: 1.6, RecoverB: 1.2}},
			EndLevel: 1.0,
			Drift:    0.001,
			Noise:    0.0007,
			Seed:     2001,
		},
	},
	{
		name:  "2007-09",
		shape: "U",
		desc: "The Great Recession: payrolls fell about 6.3% over 25 months; " +
			"by month 47 they had recovered only part of the loss, still " +
			"about 3% below the peak.",
		spec: Spec{
			Months:   48,
			Dips:     []Dip{{Start: 0, TTrough: 25, TRecover: 47, Depth: 0.063, DeclineA: 1.8, DeclineB: 1.6, RecoverA: 1.2, RecoverB: 1.0}},
			EndLevel: 0.97,
			Drift:    0.0014,
			Noise:    0.0009,
			Seed:     2007,
		},
	},
	{
		name:  "2020-21",
		shape: "L",
		desc: "The COVID-19 shock: a 14.4% collapse in two months, a rapid " +
			"partial rebound, then a slow grind back to about 1.6% below " +
			"the peak at month 23. The sudden drop defeats single-dip " +
			"bathtub and mixture models, as the paper reports.",
		spec: Spec{
			Months:   24,
			Dips:     []Dip{{Start: 0, TTrough: 2, TRecover: 23, Depth: 0.144, DeclineA: 0.9, DeclineB: 1.0, RecoverA: 0.55, RecoverB: 2.8}},
			EndLevel: 0.984,
			Drift:    0,
			Noise:    0.0012,
			Seed:     2020,
		},
	},
}

// Recessions returns the seven reconstructed recession datasets in the
// order of Fig. 2 and Table I. The series are regenerated on each call;
// generation is deterministic, so repeated calls agree exactly.
func Recessions() ([]Recession, error) {
	out := make([]Recession, 0, len(_recessionSpecs))
	for _, rs := range _recessionSpecs {
		// The documented letter shape is the authoritative class tag.
		rs.spec.Class = rs.shape
		series, err := Generate(rs.spec)
		if err != nil {
			return nil, fmt.Errorf("dataset: building %s: %w", rs.name, err)
		}
		out = append(out, Recession{
			Name:        rs.name,
			Shape:       rs.shape,
			Months:      rs.spec.Months,
			Description: rs.desc,
			Series:      series,
		})
	}
	return out, nil
}

// ByName returns the named recession dataset.
func ByName(name string) (Recession, error) {
	all, err := Recessions()
	if err != nil {
		return Recession{}, err
	}
	for _, r := range all {
		if r.Name == name {
			return r, nil
		}
	}
	names := make([]string, 0, len(all))
	for _, r := range all {
		names = append(names, r.Name)
	}
	sort.Strings(names)
	return Recession{}, fmt.Errorf("dataset: unknown recession %q (have %v)", name, names)
}

// Names lists the dataset names in table order.
func Names() []string {
	out := make([]string, 0, len(_recessionSpecs))
	for _, rs := range _recessionSpecs {
		out = append(out, rs.name)
	}
	return out
}

// GalleryEntry is one canonical letter-shaped resilience curve.
type GalleryEntry struct {
	// Shape is the letter label (V, U, W, L, J).
	Shape string
	// Description summarizes the economic reading of the shape.
	Description string
	// Series is the canonical noiseless curve, 48 months, normalized.
	Series *timeseries.Series
}

// Gallery returns one canonical synthetic curve per letter shape the
// economics literature uses for recessions (Sec. V). The curves are
// noiseless, so they double as ground truth for shape-classifier tests
// and as clean fixtures for model experiments.
func Gallery() ([]GalleryEntry, error) {
	specs := []struct {
		shape, desc string
		spec        Spec
	}{
		{
			shape: "V",
			desc:  "Sharp drop, similarly fast recovery.",
			spec: Spec{
				Months:   48,
				Dips:     []Dip{{Start: 0, TTrough: 6, TRecover: 14, Depth: 0.04, DeclineA: 1.2, DeclineB: 1.1, RecoverA: 1.2, RecoverB: 1.1}},
				EndLevel: 1.02,
				Drift:    0.001,
			},
		},
		{
			shape: "U",
			desc:  "Slow decline, extended trough, slow recovery.",
			spec: Spec{
				Months:   48,
				Dips:     []Dip{{Start: 0, TTrough: 20, TRecover: 42, Depth: 0.04, DeclineA: 2.2, DeclineB: 1.8, RecoverA: 2.0, RecoverB: 1.6}},
				EndLevel: 1.0,
			},
		},
		{
			shape: "W",
			desc:  "Two successive degradation/recovery cycles.",
			spec: Spec{
				Months: 48,
				Dips: []Dip{
					{Start: 0, TTrough: 6, TRecover: 16, Depth: 0.035, DeclineA: 1.3, DeclineB: 1.1, RecoverA: 1.3, RecoverB: 1.1, RecoverTo: 1.002},
					{Start: 20, TTrough: 30, TRecover: 44, Depth: 0.04, DeclineA: 1.4, DeclineB: 1.2, RecoverA: 1.3, RecoverB: 1.1},
				},
				EndLevel: 1.01,
			},
		},
		{
			shape: "L",
			desc:  "Sharp collapse, sustained underperformance.",
			spec: Spec{
				Months:   48,
				Dips:     []Dip{{Start: 0, TTrough: 3, TRecover: 46, Depth: 0.12, DeclineA: 0.9, DeclineB: 1.0, RecoverA: 0.6, RecoverB: 3.2}},
				EndLevel: 0.95,
			},
		},
		{
			shape: "J",
			desc:  "Quick dip, long climb that ends above the prior trend.",
			spec: Spec{
				Months:   48,
				Dips:     []Dip{{Start: 0, TTrough: 5, TRecover: 40, Depth: 0.035, DeclineA: 1.2, DeclineB: 1.1, RecoverA: 1.6, RecoverB: 1.0}},
				EndLevel: 1.05,
				Drift:    0.004,
			},
		},
	}
	out := make([]GalleryEntry, 0, len(specs))
	for _, gs := range specs {
		series, err := Generate(gs.spec)
		if err != nil {
			return nil, fmt.Errorf("dataset: gallery %s: %w", gs.shape, err)
		}
		out = append(out, GalleryEntry{Shape: gs.shape, Description: gs.desc, Series: series})
	}
	return out, nil
}

// KShapedPair returns the two-sector decomposition of a K-shaped
// recession like 2020-21: both sectors collapse together, then one
// (remote-friendly work) recovers past its peak while the other
// (in-person services) stays depressed — the divergence that makes
// K-shaped events impossible to describe with one curve.
func KShapedPair() (recovering, depressed *timeseries.Series, err error) {
	recovering, err = Generate(Spec{
		Months:   24,
		Dips:     []Dip{{Start: 0, TTrough: 2, TRecover: 14, Depth: 0.09, DeclineA: 0.9, DeclineB: 1.0, RecoverA: 0.8, RecoverB: 1.6}},
		EndLevel: 1.04,
		Drift:    0.002,
		Noise:    0.001,
		Seed:     20201,
	})
	if err != nil {
		return nil, nil, fmt.Errorf("dataset: k-shaped recovering sector: %w", err)
	}
	depressed, err = Generate(Spec{
		Months:   24,
		Dips:     []Dip{{Start: 0, TTrough: 2, TRecover: 23, Depth: 0.25, DeclineA: 0.9, DeclineB: 1.0, RecoverA: 0.6, RecoverB: 2.5}},
		EndLevel: 0.90,
		Noise:    0.0015,
		Seed:     20202,
	})
	if err != nil {
		return nil, nil, fmt.Errorf("dataset: k-shaped depressed sector: %w", err)
	}
	return recovering, depressed, nil
}
