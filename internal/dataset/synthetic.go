// Package dataset supplies the empirical workloads of the paper's
// Sec. V: seven U.S. recession payroll-employment curves (Fig. 2),
// reconstructed from their published characteristics, plus a parametric
// synthetic-recession generator for the letter shapes (V, U, W, L, J)
// economists use to describe downturns, and CSV/JSON persistence.
//
// Substitution note (see DESIGN.md): the paper uses Bureau of Labor
// Statistics Current Employment Statistics data. This module is offline,
// so each recession series is regenerated from documented shape
// parameters — trough depth, months to trough, months to recovery,
// terminal level — rather than copied from BLS tables. The models consume
// only the normalized shape, so every qualitative conclusion
// (which family fits which letter shape) is preserved.
package dataset

import (
	"errors"
	"fmt"
	"math"
	"strings"

	"resilience/internal/rng"
	"resilience/internal/timeseries"
)

// Dip describes one degradation/recovery cycle within a synthetic
// resilience curve.
type Dip struct {
	// Start is the month the dip begins.
	Start float64
	// TTrough is the month of minimum performance.
	TTrough float64
	// TRecover is the month the dip's recovery completes.
	TRecover float64
	// Depth is the fractional performance drop at the trough (0.03 means
	// −3%).
	Depth float64
	// DeclineA and DeclineB are Kumaraswamy shape parameters for the
	// decline path: the drop fraction at normalized time u in [0, 1] is
	// 1 − (1 − u^a)^b. a < 1 front-loads the drop (sharp, L-like);
	// a, b ≈ 2 gives a smooth S (U-like).
	DeclineA, DeclineB float64
	// RecoverA and RecoverB shape the recovery path the same way.
	RecoverA, RecoverB float64
	// RecoverTo, when nonzero, overrides the level this dip recovers to.
	// Zero means "the level before the dip" for interior dips and the
	// spec's EndLevel for the final dip. A value above the pre-dip level
	// produces the overshoot plateau seen between the 1980 and 1981-82
	// recessions.
	RecoverTo float64
}

// Spec parameterizes a synthetic resilience curve.
type Spec struct {
	// Months is the number of monthly observations (t = 0 … Months−1).
	Months int
	// Dips lists the degradation/recovery cycles; one for V/U/L/J curves,
	// two for W curves. Dips must be time-ordered and non-overlapping.
	Dips []Dip
	// EndLevel is the performance level approached at the end of the
	// final recovery (1.05 means +5% above the pre-hazard peak).
	EndLevel float64
	// Drift is a linear growth applied after the final recovery
	// completes, per month.
	Drift float64
	// Noise is the standard deviation of the multiplicative observation
	// noise; 0 disables it.
	Noise float64
	// Seed drives the deterministic noise generator.
	Seed uint64
	// Class is the spec's letter-shape tag (V, U, W, L, J, optionally with
	// a "+shock" suffix for scenario-engine shocked variants). Empty means
	// "derive from the dips" — see ShapeClass. The tag travels with the
	// generated series (GenerateTagged) so Monte Carlo studies can group
	// results by shape class without re-classifying curves.
	Class string
}

// ShapeClass returns the spec's shape-class tag: the explicit Class when
// set, otherwise a structural derivation — two or more dips are W, a
// terminal level below the pre-hazard peak is L, a strong overshoot is J,
// a trough later than 30% of the window is U, and everything else is V.
func (s Spec) ShapeClass() string {
	if s.Class != "" {
		return s.Class
	}
	if len(s.Dips) >= 2 {
		return "W"
	}
	if s.EndLevel < 0.995 {
		return "L"
	}
	if s.EndLevel >= 1.04 {
		return "J"
	}
	if len(s.Dips) == 1 {
		d := s.Dips[0]
		if d.TTrough-d.Start > 0.3*float64(s.Months) {
			return "U"
		}
	}
	return "V"
}

// Validate checks a Spec for structural errors.
func (s Spec) Validate() error {
	if s.Months < 3 {
		return fmt.Errorf("dataset: spec needs at least 3 months, got %d", s.Months)
	}
	if len(s.Dips) == 0 {
		return errors.New("dataset: spec needs at least one dip")
	}
	prevEnd := math.Inf(-1)
	for i, d := range s.Dips {
		if !(d.Start < d.TTrough && d.TTrough < d.TRecover) {
			return fmt.Errorf("dataset: dip %d needs start < trough < recover", i)
		}
		if d.Start < prevEnd {
			return fmt.Errorf("dataset: dip %d overlaps previous dip", i)
		}
		if !(d.Depth > 0 && d.Depth < 1) {
			return fmt.Errorf("dataset: dip %d depth %g outside (0, 1)", i, d.Depth)
		}
		if d.DeclineA <= 0 || d.DeclineB <= 0 || d.RecoverA <= 0 || d.RecoverB <= 0 {
			return fmt.Errorf("dataset: dip %d shape parameters must be positive", i)
		}
		prevEnd = d.TRecover
	}
	if s.Noise < 0 {
		return errors.New("dataset: negative noise")
	}
	return nil
}

// kumaraswamy is the Kumaraswamy CDF 1 − (1 − u^a)^b on [0, 1], the
// closed-form S-curve family used for decline and recovery paths.
func kumaraswamy(u, a, b float64) float64 {
	switch {
	case u <= 0:
		return 0
	case u >= 1:
		return 1
	default:
		return 1 - math.Pow(1-math.Pow(u, a), b)
	}
}

// Generate renders the spec into a monthly Series normalized to 1.0 at
// t = 0.
func Generate(spec Spec) (*timeseries.Series, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	gen := rng.New(spec.Seed)
	values := make([]float64, spec.Months)
	lastRecover := spec.Dips[len(spec.Dips)-1].TRecover
	for i := range values {
		t := float64(i)
		v := baseLevel(spec, t)
		if t > lastRecover {
			v += spec.Drift * (t - lastRecover)
		}
		if spec.Noise > 0 && i > 0 {
			v *= 1 + spec.Noise*gen.Normal()
		}
		values[i] = v
	}
	// Re-normalize so the series starts exactly at 1.0 even with noise.
	base := values[0]
	for i := range values {
		values[i] /= base
	}
	return timeseries.FromValues(values)
}

// baseLevel evaluates the noiseless curve: each dip subtracts its depth
// along the decline path and adds it back along the recovery path; the
// final dip recovers toward EndLevel instead of the pre-dip level.
func baseLevel(spec Spec, t float64) float64 {
	level := 1.0
	for i, d := range spec.Dips {
		last := i == len(spec.Dips)-1
		target := level
		if last {
			target = spec.EndLevel
		}
		if d.RecoverTo != 0 {
			target = d.RecoverTo
		}
		switch {
		case t <= d.Start:
			return level
		case t <= d.TTrough:
			u := (t - d.Start) / (d.TTrough - d.Start)
			return level - d.Depth*kumaraswamy(u, d.DeclineA, d.DeclineB)
		case t <= d.TRecover:
			u := (t - d.TTrough) / (d.TRecover - d.TTrough)
			trough := level - d.Depth
			return trough + (target-trough)*kumaraswamy(u, d.RecoverA, d.RecoverB)
		default:
			level = target
		}
	}
	return level
}

// Tagged pairs a generated series with its shape-class tag so downstream
// consumers (Monte Carlo studies, scenario sets) can group results by
// class without re-classifying the curve.
type Tagged struct {
	Series *timeseries.Series
	// Class is the letter-shape tag (V, U, W, L, J) with an optional
	// "+shock" suffix.
	Class string
}

// GenerateTagged renders the spec and attaches its shape class.
func GenerateTagged(spec Spec) (Tagged, error) {
	s, err := Generate(spec)
	if err != nil {
		return Tagged{}, err
	}
	return Tagged{Series: s, Class: spec.ShapeClass()}, nil
}

// ShapeSpec builds the canonical parametric spec for a letter shape class
// (case-insensitive V, U, W, or L) over the given window, trough depth,
// and noise level. These are the templates behind `resil generate` and
// the scenario engine's disruption library; the returned spec carries the
// normalized class tag.
func ShapeSpec(class string, months int, depth, noise float64, seed uint64) (Spec, error) {
	m := float64(months)
	spec := Spec{Months: months, Noise: noise, Seed: seed, EndLevel: 1.01}
	switch strings.ToUpper(class) {
	case "V":
		spec.Dips = []Dip{{Start: 0, TTrough: m * 0.15, TRecover: m * 0.45, Depth: depth,
			DeclineA: 1.3, DeclineB: 1.1, RecoverA: 1.3, RecoverB: 1.1}}
		spec.Class = "V"
	case "U":
		spec.Dips = []Dip{{Start: 0, TTrough: m * 0.45, TRecover: m * 0.95, Depth: depth,
			DeclineA: 1.8, DeclineB: 1.6, RecoverA: 1.6, RecoverB: 1.4}}
		spec.Class = "U"
	case "W":
		spec.Dips = []Dip{
			{Start: 0, TTrough: m * 0.1, TRecover: m * 0.3, Depth: depth,
				DeclineA: 1.3, DeclineB: 1.1, RecoverA: 1.3, RecoverB: 1.1, RecoverTo: 1.003},
			{Start: m * 0.35, TTrough: m * 0.65, TRecover: m * 0.95, Depth: depth * 1.5,
				DeclineA: 1.5, DeclineB: 1.3, RecoverA: 1.4, RecoverB: 1.2},
		}
		spec.Class = "W"
	case "L":
		spec.EndLevel = 1 - depth*0.3
		spec.Dips = []Dip{{Start: 0, TTrough: math.Max(2, m*0.08), TRecover: m * 0.95, Depth: depth,
			DeclineA: 0.9, DeclineB: 1.0, RecoverA: 0.55, RecoverB: 2.8}}
		spec.Class = "L"
	default:
		return Spec{}, fmt.Errorf("dataset: unknown shape class %q (want V, U, W, or L)", class)
	}
	return spec, nil
}
