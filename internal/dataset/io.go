package dataset

import (
	"encoding/csv"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strconv"

	"resilience/internal/timeseries"
)

// ErrBadFormat indicates unparsable input data.
var ErrBadFormat = errors.New("dataset: malformed input")

// WriteCSV writes a series as "time,value" rows with a header.
func WriteCSV(w io.Writer, s *timeseries.Series) error {
	if s == nil || s.Len() == 0 {
		return fmt.Errorf("%w: empty series", ErrBadFormat)
	}
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"time", "value"}); err != nil {
		return fmt.Errorf("dataset: write csv header: %w", err)
	}
	for i := 0; i < s.Len(); i++ {
		rec := []string{
			strconv.FormatFloat(s.Time(i), 'g', -1, 64),
			strconv.FormatFloat(s.Value(i), 'g', -1, 64),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("dataset: write csv row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses "time,value" rows, skipping a header row if present.
func ReadCSV(r io.Reader) (*timeseries.Series, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 2
	var times, values []float64
	for rowIdx := 0; ; rowIdx++ {
		rec, err := cr.Read()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
		}
		t, errT := strconv.ParseFloat(rec[0], 64)
		v, errV := strconv.ParseFloat(rec[1], 64)
		if errT != nil || errV != nil {
			if rowIdx == 0 {
				continue // header
			}
			return nil, fmt.Errorf("%w: row %d: %q", ErrBadFormat, rowIdx, rec)
		}
		times = append(times, t)
		values = append(values, v)
	}
	s, err := timeseries.NewSeries(times, values)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	return s, nil
}

// jsonSeries is the JSON wire form of a series.
type jsonSeries struct {
	Times  []float64 `json:"times"`
	Values []float64 `json:"values"`
}

// WriteJSON writes a series as {"times": [...], "values": [...]}.
func WriteJSON(w io.Writer, s *timeseries.Series) error {
	if s == nil || s.Len() == 0 {
		return fmt.Errorf("%w: empty series", ErrBadFormat)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(jsonSeries{Times: s.Times(), Values: s.Values()})
}

// ReadJSON parses the WriteJSON format.
func ReadJSON(r io.Reader) (*timeseries.Series, error) {
	var js jsonSeries
	if err := json.NewDecoder(r).Decode(&js); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	s, err := timeseries.NewSeries(js.Times, js.Values)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	return s, nil
}
