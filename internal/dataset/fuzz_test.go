package dataset

import (
	"strings"
	"testing"
)

// FuzzReadCSV asserts the CSV parser never panics and that anything it
// accepts round-trips through WriteCSV.
func FuzzReadCSV(f *testing.F) {
	f.Add("time,value\n0,1\n1,0.98\n")
	f.Add("0,1\n1,2\n2,3\n")
	f.Add("")
	f.Add("garbage")
	f.Add("0,1\nnot,numeric\n")
	f.Add("0,1\n0,2\n") // duplicate time
	f.Add("time,value\n-5,1e300\n-4,-1e300\n")
	f.Fuzz(func(t *testing.T, input string) {
		s, err := ReadCSV(strings.NewReader(input))
		if err != nil {
			return
		}
		// Accepted series must satisfy the Series invariants and survive a
		// write/read round trip.
		if s.Len() == 0 {
			t.Fatal("accepted empty series")
		}
		var buf strings.Builder
		if err := WriteCSV(&buf, s); err != nil {
			t.Fatalf("WriteCSV on accepted series: %v", err)
		}
		back, err := ReadCSV(strings.NewReader(buf.String()))
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if back.Len() != s.Len() {
			t.Fatalf("round trip length %d != %d", back.Len(), s.Len())
		}
	})
}

// FuzzReadJSON asserts the JSON loader never panics and validates its
// inputs.
func FuzzReadJSON(f *testing.F) {
	f.Add(`{"times":[0,1],"values":[1,0.9]}`)
	f.Add(`{}`)
	f.Add(`{"times":[1,0],"values":[1,2]}`)
	f.Add(`[1,2,3]`)
	f.Fuzz(func(t *testing.T, input string) {
		s, err := ReadJSON(strings.NewReader(input))
		if err != nil {
			return
		}
		if s.Len() == 0 {
			t.Fatal("accepted empty series")
		}
		// Times strictly increasing is a Series invariant.
		for i := 1; i < s.Len(); i++ {
			if s.Time(i) <= s.Time(i-1) {
				t.Fatal("accepted non-increasing times")
			}
		}
	})
}
