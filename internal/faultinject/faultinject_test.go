package faultinject

import (
	"context"
	"math"
	"strings"
	"testing"
	"time"
)

func TestArmSpecParsesEntries(t *testing.T) {
	t.Cleanup(Clear)
	Clear()
	err := ArmSpec("a=panic; b=nan ;c=delay:50ms;;")
	if err != nil {
		t.Fatal(err)
	}
	if !Enabled() {
		t.Error("Enabled() = false after arming")
	}
	sites := Sites()
	if len(sites) != 3 {
		t.Errorf("Sites() = %v, want 3 entries", sites)
	}
}

func TestArmSpecRejectsMalformed(t *testing.T) {
	t.Cleanup(Clear)
	cases := []string{
		"noequals",
		"site=explode",
		"site=delay:notaduration",
		"site=delay:-5s",
		"=panic",
	}
	for _, spec := range cases {
		Clear()
		if err := ArmSpec(spec); err == nil {
			t.Errorf("ArmSpec(%q) accepted a malformed spec", spec)
		}
	}
}

func TestFirePanicsOnlyWhenArmed(t *testing.T) {
	t.Cleanup(Clear)
	Clear()
	Fire("quiet.site") // must be a no-op

	if err := Arm("loud.site", "panic"); err != nil {
		t.Fatal(err)
	}
	Fire("quiet.site") // still not armed

	var got any
	func() {
		defer func() { got = recover() }()
		Fire("loud.site")
	}()
	if got == nil {
		t.Fatal("armed Fire did not panic")
	}
	if msg, ok := got.(string); !ok || !strings.Contains(msg, "loud.site") {
		t.Errorf("panic value %v does not name the site", got)
	}
}

func TestFloatPoisons(t *testing.T) {
	t.Cleanup(Clear)
	Clear()
	if v := Float("obj", 3.5); v != 3.5 {
		t.Errorf("disarmed Float = %g", v)
	}
	if err := Arm("obj", "nan"); err != nil {
		t.Fatal(err)
	}
	if v := Float("obj", 3.5); !math.IsNaN(v) {
		t.Errorf("armed Float = %g, want NaN", v)
	}
	if v := Float("other", 3.5); v != 3.5 {
		t.Errorf("unrelated site poisoned: %g", v)
	}
}

func TestSleepRespectsContext(t *testing.T) {
	t.Cleanup(Clear)
	Clear()
	if err := Arm("slow", "delay:5s"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	Sleep(ctx, "slow")
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("Sleep ignored context cancellation; blocked %v", elapsed)
	}
}

func TestDisarmAndClear(t *testing.T) {
	t.Cleanup(Clear)
	Clear()
	if err := ArmSpec("x=panic;y=nan"); err != nil {
		t.Fatal(err)
	}
	Disarm("x")
	Fire("x") // no longer armed; must not panic
	if !Enabled() {
		t.Error("Enabled() = false with one site still armed")
	}
	Clear()
	if Enabled() {
		t.Error("Enabled() = true after Clear")
	}
	if v := Float("y", 1); v != 1 {
		t.Errorf("cleared site still poisons: %g", v)
	}
}
