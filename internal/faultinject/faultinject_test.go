package faultinject

import (
	"context"
	"math"
	"strings"
	"testing"
	"time"
)

func TestArmSpecParsesEntries(t *testing.T) {
	t.Cleanup(Clear)
	Clear()
	err := ArmSpec("a=panic; b=nan ;c=delay:50ms;;")
	if err != nil {
		t.Fatal(err)
	}
	if !Enabled() {
		t.Error("Enabled() = false after arming")
	}
	sites := Sites()
	if len(sites) != 3 {
		t.Errorf("Sites() = %v, want 3 entries", sites)
	}
}

func TestArmSpecRejectsMalformed(t *testing.T) {
	t.Cleanup(Clear)
	cases := []string{
		"noequals",
		"site=explode",
		"site=delay:notaduration",
		"site=delay:-5s",
		"=panic",
	}
	for _, spec := range cases {
		Clear()
		if err := ArmSpec(spec); err == nil {
			t.Errorf("ArmSpec(%q) accepted a malformed spec", spec)
		}
	}
}

func TestArmSpecNamedFaultPoints(t *testing.T) {
	t.Cleanup(Clear)
	Clear()
	// The issue-documented spelling: bare names, comma-separated.
	if err := ArmSpec("wal-write-err,wal-torn-tail,wal-fsync-slow"); err != nil {
		t.Fatal(err)
	}
	if err := Error("wal-write-err"); err == nil {
		t.Error("wal-write-err armed but Error returned nil")
	}
	if !Torn("wal-torn-tail") {
		t.Error("wal-torn-tail armed but Torn reported false")
	}
	start := time.Now()
	Sleep(context.Background(), "wal-fsync-slow")
	if elapsed := time.Since(start); elapsed < 25*time.Millisecond {
		t.Errorf("wal-fsync-slow slept only %v, want the 50ms default", elapsed)
	}
}

func TestErrorAndTornOnlyWhenArmed(t *testing.T) {
	t.Cleanup(Clear)
	Clear()
	if err := Error("wal-write-err"); err != nil {
		t.Errorf("disarmed Error = %v", err)
	}
	if Torn("wal-torn-tail") {
		t.Error("disarmed Torn = true")
	}
	if err := ArmSpec("wal-write-err=err;wal-torn-tail=tear"); err != nil {
		t.Fatal(err)
	}
	err := Error("wal-write-err")
	if err == nil || !strings.Contains(err.Error(), "wal-write-err") {
		t.Errorf("armed Error = %v, want error naming the site", err)
	}
	if !Torn("wal-torn-tail") {
		t.Error("armed Torn = false")
	}
	if err := Error("other"); err != nil {
		t.Errorf("unrelated site errors: %v", err)
	}
}

func TestFirePanicsOnlyWhenArmed(t *testing.T) {
	t.Cleanup(Clear)
	Clear()
	Fire("quiet.site") // must be a no-op

	if err := Arm("loud.site", "panic"); err != nil {
		t.Fatal(err)
	}
	Fire("quiet.site") // still not armed

	var got any
	func() {
		defer func() { got = recover() }()
		Fire("loud.site")
	}()
	if got == nil {
		t.Fatal("armed Fire did not panic")
	}
	if msg, ok := got.(string); !ok || !strings.Contains(msg, "loud.site") {
		t.Errorf("panic value %v does not name the site", got)
	}
}

func TestFloatPoisons(t *testing.T) {
	t.Cleanup(Clear)
	Clear()
	if v := Float("obj", 3.5); v != 3.5 {
		t.Errorf("disarmed Float = %g", v)
	}
	if err := Arm("obj", "nan"); err != nil {
		t.Fatal(err)
	}
	if v := Float("obj", 3.5); !math.IsNaN(v) {
		t.Errorf("armed Float = %g, want NaN", v)
	}
	if v := Float("other", 3.5); v != 3.5 {
		t.Errorf("unrelated site poisoned: %g", v)
	}
}

func TestSleepRespectsContext(t *testing.T) {
	t.Cleanup(Clear)
	Clear()
	if err := Arm("slow", "delay:5s"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	Sleep(ctx, "slow")
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("Sleep ignored context cancellation; blocked %v", elapsed)
	}
}

func TestDisarmAndClear(t *testing.T) {
	t.Cleanup(Clear)
	Clear()
	if err := ArmSpec("x=panic;y=nan"); err != nil {
		t.Fatal(err)
	}
	Disarm("x")
	Fire("x") // no longer armed; must not panic
	if !Enabled() {
		t.Error("Enabled() = false with one site still armed")
	}
	Clear()
	if Enabled() {
		t.Error("Enabled() = true after Clear")
	}
	if v := Float("y", 1); v != 1 {
		t.Errorf("cleared site still poisons: %g", v)
	}
}
