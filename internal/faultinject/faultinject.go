// Package faultinject provides environment-gated fault-injection probes
// for chaos testing the fitting pipeline. Production code places cheap
// named probes at interesting sites (optimizer iterations, fit entry
// points, request decoding); when a site is armed — via the RESIL_FAULTS
// environment variable or programmatically from tests — the probe fires
// its configured fault: a panic, a delay, or NaN poisoning of a numeric
// value.
//
// When nothing is armed every probe reduces to a single atomic load, so
// the hooks are safe to leave in hot loops.
//
// The environment format is a semicolon-separated list of site=mode
// entries, e.g.
//
//	RESIL_FAULTS="core.fit.weibull-exp=panic;server.decode=delay:50ms;core.fit.objective.quadratic=nan"
//
// Modes:
//
//	panic            panic at the site (exercises recover isolation)
//	delay:<duration> sleep for the duration (or until the ctx is done)
//	nan              replace the probed float with NaN (poisons objectives)
package faultinject

import (
	"context"
	"fmt"
	"math"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// EnvVar names the environment variable parsed at process start.
const EnvVar = "RESIL_FAULTS"

// Mode is the kind of fault a site injects.
type Mode int

// Fault modes.
const (
	// ModePanic makes Fire panic at the site.
	ModePanic Mode = iota + 1
	// ModeDelay makes Sleep block at the site.
	ModeDelay
	// ModeNaN makes Float return NaN at the site.
	ModeNaN
)

type probe struct {
	mode  Mode
	delay time.Duration
}

var (
	mu     sync.Mutex
	probes = map[string]probe{}
	// armedCount mirrors len(probes) so Enabled is one atomic load.
	armedCount atomic.Int32
)

func init() {
	if spec := os.Getenv(EnvVar); spec != "" {
		if err := ArmSpec(spec); err != nil {
			// A malformed spec must not take the process down; report and
			// run with whatever parsed.
			fmt.Fprintln(os.Stderr, err)
		}
	}
}

// Enabled reports whether any site is armed. Probes in hot loops should
// gate on it before building site names.
func Enabled() bool { return armedCount.Load() > 0 }

// Arm arms one site with a mode spec: "panic", "nan", or
// "delay:<duration>".
func Arm(site, mode string) error {
	if site == "" {
		return fmt.Errorf("faultinject: empty site")
	}
	var p probe
	switch {
	case mode == "panic":
		p = probe{mode: ModePanic}
	case mode == "nan":
		p = probe{mode: ModeNaN}
	case strings.HasPrefix(mode, "delay:"):
		d, err := time.ParseDuration(strings.TrimPrefix(mode, "delay:"))
		if err != nil || d < 0 {
			return fmt.Errorf("faultinject: bad delay %q for site %s", mode, site)
		}
		p = probe{mode: ModeDelay, delay: d}
	default:
		return fmt.Errorf("faultinject: unknown mode %q for site %s", mode, site)
	}
	mu.Lock()
	probes[site] = p
	armedCount.Store(int32(len(probes)))
	mu.Unlock()
	return nil
}

// ArmSpec arms every site in a semicolon-separated "site=mode" list (the
// RESIL_FAULTS format). Entries are applied in order; the first malformed
// entry stops parsing and is returned as an error.
func ArmSpec(spec string) error {
	for _, entry := range strings.Split(spec, ";") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		site, mode, ok := strings.Cut(entry, "=")
		if !ok {
			return fmt.Errorf("faultinject: malformed entry %q (want site=mode)", entry)
		}
		if err := Arm(strings.TrimSpace(site), strings.TrimSpace(mode)); err != nil {
			return err
		}
	}
	return nil
}

// Disarm removes one site.
func Disarm(site string) {
	mu.Lock()
	delete(probes, site)
	armedCount.Store(int32(len(probes)))
	mu.Unlock()
}

// Clear disarms every site.
func Clear() {
	mu.Lock()
	probes = map[string]probe{}
	armedCount.Store(0)
	mu.Unlock()
}

// Sites returns the armed site names (unordered), for diagnostics.
func Sites() []string {
	mu.Lock()
	defer mu.Unlock()
	out := make([]string, 0, len(probes))
	for s := range probes {
		out = append(out, s)
	}
	return out
}

func lookup(site string) (probe, bool) {
	mu.Lock()
	p, ok := probes[site]
	mu.Unlock()
	return p, ok
}

// Fire panics when site is armed in panic mode; otherwise it is a no-op.
func Fire(site string) {
	if !Enabled() {
		return
	}
	if p, ok := lookup(site); ok && p.mode == ModePanic {
		panic(fmt.Sprintf("faultinject: injected panic at %s", site))
	}
}

// Sleep blocks for the armed delay (respecting ctx cancellation) when
// site is armed in delay mode; otherwise it is a no-op.
func Sleep(ctx context.Context, site string) {
	if !Enabled() {
		return
	}
	p, ok := lookup(site)
	if !ok || p.mode != ModeDelay {
		return
	}
	t := time.NewTimer(p.delay)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}

// Float returns NaN when site is armed in nan mode, v otherwise.
func Float(site string, v float64) float64 {
	if !Enabled() {
		return v
	}
	if p, ok := lookup(site); ok && p.mode == ModeNaN {
		return math.NaN()
	}
	return v
}
