// Package faultinject provides environment-gated fault-injection probes
// for chaos testing the fitting pipeline. Production code places cheap
// named probes at interesting sites (optimizer iterations, fit entry
// points, request decoding); when a site is armed — via the RESIL_FAULTS
// environment variable or programmatically from tests — the probe fires
// its configured fault: a panic, a delay, or NaN poisoning of a numeric
// value.
//
// When nothing is armed every probe reduces to a single atomic load, so
// the hooks are safe to leave in hot loops.
//
// The environment format is a semicolon- (or comma-) separated list of
// site=mode entries, e.g.
//
//	RESIL_FAULTS="core.fit.weibull-exp=panic;server.decode=delay:50ms;core.fit.objective.quadratic=nan"
//
// Modes:
//
//	panic            panic at the site (exercises recover isolation)
//	delay:<duration> sleep for the duration (or until the ctx is done)
//	nan              replace the probed float with NaN (poisons objectives)
//	err              make Error return an injected error at the site
//	tear             make Torn report true at the site (torn WAL writes)
//
// A handful of well-known fault points carry a default mode so they can
// be armed by bare name, without the =mode suffix:
//
//	RESIL_FAULTS="wal-write-err,wal-torn-tail,wal-fsync-slow"
//
// arms the durable-WAL sites: append errors, a torn (half-written) tail
// record, and slow fsyncs respectively.
package faultinject

import (
	"context"
	"fmt"
	"math"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// EnvVar names the environment variable parsed at process start.
const EnvVar = "RESIL_FAULTS"

// Mode is the kind of fault a site injects.
type Mode int

// Fault modes.
const (
	// ModePanic makes Fire panic at the site.
	ModePanic Mode = iota + 1
	// ModeDelay makes Sleep block at the site.
	ModeDelay
	// ModeNaN makes Float return NaN at the site.
	ModeNaN
	// ModeErr makes Error return an injected error at the site.
	ModeErr
	// ModeTear makes Torn report true at the site, so durable-log writers
	// can simulate a crash mid-record (a torn tail).
	ModeTear
)

// namedDefaults maps well-known fault points to a default mode, so a
// RESIL_FAULTS entry can be a bare site name. These cover the durable
// WAL's error paths, which otherwise need real disk failures to reach.
var namedDefaults = map[string]string{
	"wal-write-err":  "err",
	"wal-torn-tail":  "tear",
	"wal-fsync-slow": "delay:50ms",
}

type probe struct {
	mode  Mode
	delay time.Duration
}

var (
	mu     sync.Mutex
	probes = map[string]probe{}
	// armedCount mirrors len(probes) so Enabled is one atomic load.
	armedCount atomic.Int32
)

func init() {
	if spec := os.Getenv(EnvVar); spec != "" {
		if err := ArmSpec(spec); err != nil {
			// A malformed spec must not take the process down; report and
			// run with whatever parsed.
			fmt.Fprintln(os.Stderr, err)
		}
	}
}

// Enabled reports whether any site is armed. Probes in hot loops should
// gate on it before building site names.
func Enabled() bool { return armedCount.Load() > 0 }

// Arm arms one site with a mode spec: "panic", "nan", or
// "delay:<duration>".
func Arm(site, mode string) error {
	if site == "" {
		return fmt.Errorf("faultinject: empty site")
	}
	var p probe
	switch {
	case mode == "panic":
		p = probe{mode: ModePanic}
	case mode == "nan":
		p = probe{mode: ModeNaN}
	case mode == "err":
		p = probe{mode: ModeErr}
	case mode == "tear":
		p = probe{mode: ModeTear}
	case strings.HasPrefix(mode, "delay:"):
		d, err := time.ParseDuration(strings.TrimPrefix(mode, "delay:"))
		if err != nil || d < 0 {
			return fmt.Errorf("faultinject: bad delay %q for site %s", mode, site)
		}
		p = probe{mode: ModeDelay, delay: d}
	default:
		return fmt.Errorf("faultinject: unknown mode %q for site %s", mode, site)
	}
	mu.Lock()
	probes[site] = p
	armedCount.Store(int32(len(probes)))
	mu.Unlock()
	return nil
}

// ArmSpec arms every site in a semicolon- or comma-separated "site=mode"
// list (the RESIL_FAULTS format). An entry without "=mode" must be one
// of the well-known named fault points, which arm with their default
// mode. Entries are applied in order; the first malformed entry stops
// parsing and is returned as an error.
func ArmSpec(spec string) error {
	split := func(r rune) bool { return r == ';' || r == ',' }
	for _, entry := range strings.FieldsFunc(spec, split) {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		site, mode, ok := strings.Cut(entry, "=")
		if !ok {
			def, known := namedDefaults[entry]
			if !known {
				return fmt.Errorf("faultinject: malformed entry %q (want site=mode, or a named fault point)", entry)
			}
			site, mode = entry, def
		}
		if err := Arm(strings.TrimSpace(site), strings.TrimSpace(mode)); err != nil {
			return err
		}
	}
	return nil
}

// Disarm removes one site.
func Disarm(site string) {
	mu.Lock()
	delete(probes, site)
	armedCount.Store(int32(len(probes)))
	mu.Unlock()
}

// Clear disarms every site.
func Clear() {
	mu.Lock()
	probes = map[string]probe{}
	armedCount.Store(0)
	mu.Unlock()
}

// Sites returns the armed site names (unordered), for diagnostics.
func Sites() []string {
	mu.Lock()
	defer mu.Unlock()
	out := make([]string, 0, len(probes))
	for s := range probes {
		out = append(out, s)
	}
	return out
}

func lookup(site string) (probe, bool) {
	mu.Lock()
	p, ok := probes[site]
	mu.Unlock()
	return p, ok
}

// Fire panics when site is armed in panic mode; otherwise it is a no-op.
func Fire(site string) {
	if !Enabled() {
		return
	}
	if p, ok := lookup(site); ok && p.mode == ModePanic {
		panic(fmt.Sprintf("faultinject: injected panic at %s", site))
	}
}

// Sleep blocks for the armed delay (respecting ctx cancellation) when
// site is armed in delay mode; otherwise it is a no-op.
func Sleep(ctx context.Context, site string) {
	if !Enabled() {
		return
	}
	p, ok := lookup(site)
	if !ok || p.mode != ModeDelay {
		return
	}
	t := time.NewTimer(p.delay)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}

// Error returns an injected error when site is armed in err mode, nil
// otherwise. Write paths that can fail for real (disk errors) gate on it
// so their error handling is testable without a failing disk.
func Error(site string) error {
	if !Enabled() {
		return nil
	}
	if p, ok := lookup(site); ok && p.mode == ModeErr {
		return fmt.Errorf("faultinject: injected error at %s", site)
	}
	return nil
}

// Torn reports whether site is armed in tear mode. Durable-log writers
// consult it to truncate a record mid-write, simulating a crash that
// leaves a torn tail for recovery to drop.
func Torn(site string) bool {
	if !Enabled() {
		return false
	}
	p, ok := lookup(site)
	return ok && p.mode == ModeTear
}

// Float returns NaN when site is armed in nan mode, v otherwise.
func Float(site string, v float64) float64 {
	if !Enabled() {
		return v
	}
	if p, ok := lookup(site); ok && p.mode == ModeNaN {
		return math.NaN()
	}
	return v
}
