package server

// The binary-transport adapter: implements transport/binary.Handler on
// top of the operation layer in ops.go, so the binary listener serves
// the identical operations — and payload-identical responses — as the
// HTTP routes. The adapter's job is pure plumbing: bridge JSON-model
// trees to the raw-bytes seam, apply the same fit timeout HTTP applies,
// and pull the session ID out of the envelope body where HTTP reads it
// from the URL path.

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"

	"resilience/internal/stream"
	"resilience/internal/telemetry"
	"resilience/internal/transport"
)

// binaryHandler adapts the api's operation layer to the binary server.
type binaryHandler struct {
	a *api
}

// BinaryHandler returns the handler to mount on a binary listener
// (transport/binary.NewServer). The returned handler serves
// fit/predict/metrics/forecast/intervention/batch, the catalog and
// stats reads, and the full session lifecycle including the subscribe
// stream.
func (app *App) BinaryHandler() interface {
	Exec(ctx context.Context, op string, body any) (int, any)
	Stream(ctx context.Context, op string, body any, send func(event string, data any) error) (int, any)
} {
	return binaryHandler{a: app.a}
}

// rawBody re-renders a decoded body tree to JSON bytes for the shared
// strict-decode path, enforcing the same byte cap as HTTP.
func rawBody(ctx context.Context, body any, limit int64) ([]byte, *apiError) {
	if body == nil {
		return nil, nil
	}
	raw, err := json.Marshal(body)
	if err != nil {
		return nil, &apiError{status: http.StatusBadRequest, err: fmt.Errorf("decode request: %w", err)}
	}
	if int64(len(raw)) > limit {
		return nil, &apiError{
			status: http.StatusRequestEntityTooLarge,
			err:    fmt.Errorf("request body exceeds %d bytes", limit),
		}
	}
	return raw, nil
}

// sessionTarget splits a session op's body into the target ID and the
// remaining fields (re-encoded for the strict decoders, which reject
// unknown keys like "id").
func sessionTarget(body any) (id string, rest []byte, err error) {
	m, ok := body.(map[string]any)
	if !ok || m == nil {
		return "", nil, fmt.Errorf("session operation requires a body with an id")
	}
	id, _ = m["id"].(string)
	if id == "" {
		return "", nil, fmt.Errorf("session operation requires a non-empty id")
	}
	fields := make(map[string]any, len(m))
	for k, v := range m {
		if k != "id" {
			fields[k] = v
		}
	}
	rest, err = json.Marshal(fields)
	return id, rest, err
}

// fitTimeout mirrors withFitTimeout for the ops HTTP bounds the same
// way: fitting work (including session observes, whose refits run the
// degradation chain) gets the configured deadline.
func (h binaryHandler) fitTimeout(ctx context.Context) (context.Context, context.CancelFunc) {
	return context.WithTimeout(ctx, h.a.cfg.FitTimeout)
}

func (h binaryHandler) Exec(ctx context.Context, op string, body any) (int, any) {
	a := h.a
	switch op {
	case transport.OpFit, transport.OpPredict, transport.OpMetrics,
		transport.OpForecast, transport.OpIntervention:
		raw, aerr := rawBody(ctx, body, maxBodyBytes)
		if aerr != nil {
			return aerr.status, aerr.body(ctx)
		}
		tctx, cancel := h.fitTimeout(ctx)
		defer cancel()
		switch op {
		case transport.OpFit:
			return a.execFit(tctx, raw)
		case transport.OpPredict:
			return a.execPredict(tctx, raw)
		case transport.OpMetrics:
			return a.execMetrics(tctx, raw)
		case transport.OpForecast:
			return a.execForecast(tctx, raw)
		default:
			return a.execIntervention(tctx, raw)
		}
	case transport.OpBatch:
		raw, aerr := rawBody(ctx, body, maxBatchBodyBytes)
		if aerr != nil {
			return aerr.status, aerr.body(ctx)
		}
		tctx, cancel := h.fitTimeout(ctx)
		defer cancel()
		return a.execBatch(tctx, raw)
	case transport.OpSimulate:
		raw, aerr := rawBody(ctx, body, maxBodyBytes)
		if aerr != nil {
			return aerr.status, aerr.body(ctx)
		}
		return a.execSimulate(ctx, raw)
	case transport.OpModels:
		return http.StatusOK, modelsPayload()
	case transport.OpVersion:
		return http.StatusOK, versionPayload()
	case transport.OpStats:
		return http.StatusOK, a.statsPayload()
	case transport.OpSessionCreate:
		raw, aerr := rawBody(ctx, body, maxBodyBytes)
		if aerr != nil {
			return aerr.status, aerr.body(ctx)
		}
		return a.execSessionCreate(ctx, raw)
	case transport.OpSessionList:
		return a.execSessionList(ctx)
	case transport.OpSessionGet, transport.OpSessionDelete, transport.OpSessionObserve:
		id, rest, err := sessionTarget(body)
		if err != nil {
			aerr := badField("id", "%s", err.Error())
			return aerr.status, aerr.body(ctx)
		}
		switch op {
		case transport.OpSessionGet:
			return a.execSessionGet(ctx, id)
		case transport.OpSessionDelete:
			return a.execSessionDelete(ctx, id)
		default:
			if int64(len(rest)) > maxBodyBytes {
				aerr := &apiError{
					status: http.StatusRequestEntityTooLarge,
					err:    fmt.Errorf("request body exceeds %d bytes", int64(maxBodyBytes)),
				}
				return aerr.status, aerr.body(ctx)
			}
			tctx, cancel := h.fitTimeout(ctx)
			defer cancel()
			return a.execSessionObserve(tctx, id, rest)
		}
	default:
		return errPayload(ctx, http.StatusNotFound, fmt.Errorf("unknown operation %q", op))
	}
}

// Stream serves session.subscribe: the binary twin of the SSE feed. The
// first event is a "snapshot" carrying the state at attach time plus
// the request ID, then one "update" per observation, then a terminal
// "closed". Subscriptions to sessions owned by another peer answer with
// a typed redirect (421) instead of events — feeds are not forwarded.
func (h binaryHandler) Stream(ctx context.Context, op string, body any, send func(event string, data any) error) (int, any) {
	a := h.a
	if op != transport.OpSessionSubscribe {
		return errPayload(ctx, http.StatusNotFound, fmt.Errorf("unknown streaming operation %q", op))
	}
	id, _, err := sessionTarget(body)
	if err != nil {
		aerr := badField("id", "%s", err.Error())
		return aerr.status, aerr.body(ctx)
	}
	if a.cluster != nil && !a.cluster.IsLocal(id) {
		owner := a.cluster.Owner(id)
		return http.StatusMisdirectedRequest, a.redirectPayload(ctx, id, owner,
			fmt.Sprintf("session %s is owned by %s; reconnect there", id, owner))
	}
	reqID := telemetry.RequestID(ctx)
	sub, snap, err := a.streams.Subscribe(id, reqID)
	if err != nil {
		return streamErrPayload(ctx, err)
	}
	defer sub.Close()

	opening := struct {
		stream.Snapshot
		RequestID string `json:"request_id"`
	}{snap, reqID}
	if err := send("snapshot", opening); err != nil {
		return http.StatusOK, nil
	}
	for {
		select {
		case ev, open := <-sub.Events():
			if !open {
				// Dropped as a slow consumer without a terminal event; tell
				// the client the feed is over so it does not wait forever.
				send("closed", map[string]any{"reason": "dropped"})
				return http.StatusOK, nil
			}
			if err := send(string(ev.Type), ev); err != nil {
				return http.StatusOK, nil
			}
			if ev.Type == stream.EventClosed {
				return http.StatusOK, nil
			}
		case <-ctx.Done():
			send("closed", map[string]any{"reason": "shutdown"})
			return http.StatusOK, nil
		}
	}
}
