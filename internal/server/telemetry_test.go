package server

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"resilience/internal/monitor"
	"resilience/internal/telemetry"
)

// TestRequestIDHeaderAndEnvelope checks the request-identity contract:
// every response carries X-Request-ID, error envelopes embed the same ID
// as request_id, and a sane inbound ID is round-tripped.
func TestRequestIDHeaderAndEnvelope(t *testing.T) {
	h := quietHandler(Config{})

	// Error response: header and envelope must agree.
	rec, body := doJSON(t, h, http.MethodPost, "/v1/fit", map[string]any{"model": "nope", "values": testSeries()})
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status %d", rec.Code)
	}
	id := rec.Header().Get("X-Request-ID")
	if id == "" {
		t.Fatal("missing X-Request-ID header")
	}
	if got, _ := body["request_id"].(string); got != id {
		t.Errorf("envelope request_id %q != header %q", got, id)
	}

	// Success response: header present, body clean of request_id noise.
	rec, _ = doJSON(t, h, http.MethodGet, "/healthz", nil)
	if rec.Header().Get("X-Request-ID") == "" {
		t.Error("healthz missing X-Request-ID header")
	}

	// Sane inbound IDs are honored; hostile ones replaced.
	req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	req.Header.Set("X-Request-ID", "gateway-abc.123")
	rec2 := httptest.NewRecorder()
	h.ServeHTTP(rec2, req)
	if got := rec2.Header().Get("X-Request-ID"); got != "gateway-abc.123" {
		t.Errorf("sane inbound ID not honored: %q", got)
	}

	req = httptest.NewRequest(http.MethodGet, "/healthz", nil)
	req.Header.Set("X-Request-ID", "evil\nid{with}junk")
	rec3 := httptest.NewRecorder()
	h.ServeHTTP(rec3, req)
	if got := rec3.Header().Get("X-Request-ID"); got == "" || strings.ContainsAny(got, "\n{}") {
		t.Errorf("hostile inbound ID not replaced: %q", got)
	}
}

// TestMetricsEndpoint scrapes /metrics after real traffic and checks the
// exposition contains the HTTP, fit, and stats-backed series in valid
// text format.
func TestMetricsExposition(t *testing.T) {
	h := quietHandler(Config{})
	if rec, _ := doJSON(t, h, http.MethodPost, "/v1/fit",
		map[string]any{"model": "quadratic", "values": testSeries()}); rec.Code != http.StatusOK {
		t.Fatalf("fit failed: %d", rec.Code)
	}

	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}
	out := rec.Body.String()
	for _, want := range []string{
		`resil_http_requests_total{route="/v1/fit",status="200"}`,
		`resil_http_request_duration_seconds_bucket{route="/v1/fit",le="+Inf"}`,
		`resil_fit_duration_seconds_bucket{model="quadratic",le="+Inf"}`,
		`resil_fit_iterations_count{model="quadratic"}`,
		`resil_fit_evals_count{model="quadratic"}`,
		`resil_fallback_depth_bucket{le="1"}`,
		"resil_requests_total",
		"resil_fits_total",
		"# TYPE resil_fit_duration_seconds histogram",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	// Every non-comment line must be "name value" with a parseable value.
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Errorf("malformed exposition line %q", line)
			continue
		}
		var f float64
		if err := json.Unmarshal([]byte(line[i+1:]), &f); err != nil && line[i+1:] != "+Inf" && line[i+1:] != "NaN" {
			t.Errorf("unparseable value in line %q", line)
		}
	}
}

// TestStatsSnapshotConsistency hammers the handler with concurrent
// traffic while reading /v1/stats, asserting the documented snapshot
// invariants hold in every read — the regression test for the old
// N-independent-loads race. Run under -race.
func TestStatsSnapshotConsistency(t *testing.T) {
	monitor.ResetCounters()
	t.Cleanup(monitor.ResetCounters)
	h := quietHandler(Config{})

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			body := map[string]any{"model": "quadratic", "values": testSeries()}
			bad := map[string]any{"model": "nope", "values": testSeries()}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if i%2 == 0 {
					doJSON(t, h, http.MethodPost, "/v1/fit", body)
				} else {
					doJSON(t, h, http.MethodPost, "/v1/fit", bad)
				}
			}
		}(w)
	}

	for i := 0; i < 50; i++ {
		rec, body := doJSON(t, h, http.MethodGet, "/v1/stats", nil)
		if rec.Code != http.StatusOK {
			t.Fatalf("stats status %d", rec.Code)
		}
		requests := body["requests"].(float64)
		errors := body["request_errors"].(float64)
		fits := body["fits"].(float64)
		fallbacks := body["fallbacks"].(float64)
		cancellations := body["cancellations"].(float64)
		if errors > requests {
			t.Errorf("snapshot %d: request_errors %v > requests %v", i, errors, requests)
		}
		if fallbacks > fits {
			t.Errorf("snapshot %d: fallbacks %v > fits %v", i, fallbacks, fits)
		}
		if cancellations > fits {
			t.Errorf("snapshot %d: cancellations %v > fits %v", i, cancellations, fits)
		}
	}
	close(stop)
	wg.Wait()
}

// TestPprofGating checks the profiling endpoints exist only when opted
// in.
func TestPprofGating(t *testing.T) {
	off := quietHandler(Config{})
	req := httptest.NewRequest(http.MethodGet, "/debug/pprof/", nil)
	rec := httptest.NewRecorder()
	off.ServeHTTP(rec, req)
	if rec.Code != http.StatusNotFound {
		t.Errorf("pprof reachable without -pprof: %d", rec.Code)
	}

	on := quietHandler(Config{EnablePprof: true})
	rec = httptest.NewRecorder()
	on.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/pprof/", nil))
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "goroutine") {
		t.Errorf("pprof index with -pprof: %d %.80s", rec.Code, rec.Body.String())
	}
	rec = httptest.NewRecorder()
	on.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/pprof/symbol", nil))
	if rec.Code != http.StatusOK {
		t.Errorf("pprof symbol with -pprof: %d", rec.Code)
	}
}

// TestLogLineCarriesSpans checks that the structured access log for a
// fit request includes the request ID and the fit pipeline's spans.
func TestLogLineCarriesSpans(t *testing.T) {
	var buf strings.Builder
	var mu sync.Mutex
	h := NewHandler(Config{Logger: slog.New(slog.NewTextHandler(lockedWriter{&mu, &buf}, nil))})
	rec, _ := doJSON(t, h, http.MethodPost, "/v1/fit",
		map[string]any{"model": "quadratic", "values": testSeries()})
	if rec.Code != http.StatusOK {
		t.Fatalf("fit failed: %d", rec.Code)
	}
	mu.Lock()
	out := buf.String()
	mu.Unlock()
	id := rec.Header().Get("X-Request-ID")
	if !strings.Contains(out, "request_id="+id) {
		t.Errorf("log line missing request_id %q:\n%s", id, out)
	}
	for _, want := range []string{"spans=", "chain.quadratic", "fit.quadratic", "optimize.multistart"} {
		if !strings.Contains(out, want) {
			t.Errorf("log line missing %q:\n%s", want, out)
		}
	}
}

type lockedWriter struct {
	mu *sync.Mutex
	w  io.Writer
}

func (lw lockedWriter) Write(p []byte) (int, error) {
	lw.mu.Lock()
	defer lw.mu.Unlock()
	return lw.w.Write(p)
}

// TestTraceparentRoundTrip pins the W3C trace-context contract end to
// end over HTTP: an inbound traceparent is adopted (the request joins
// the caller's trace), the response carries a traceparent naming the
// same trace with this server's root span, and the completed trace is
// queryable by that ID — first from the process trace store, then over
// GET /debug/traces/{id} with the span tree intact. Requests without a
// traceparent mint a fresh, well-formed one.
func TestTraceparentRoundTrip(t *testing.T) {
	// The process-wide store reservoir-samples ordinary traces; by this
	// point in the package run it has seen enough of them that retention
	// of one more is probabilistic. Pin the contract against a fresh
	// store so the assertion is deterministic.
	oldStore := telemetry.DefaultTraceStore
	telemetry.DefaultTraceStore = telemetry.NewTraceStore(telemetry.DefaultTraceStoreConfig())
	t.Cleanup(func() { telemetry.DefaultTraceStore = oldStore })

	h := quietHandler(Config{})

	const callerTrace = "4bf92f3577b34da6a3ce929d0e0e4736"
	const callerSpan = "00f067aa0ba902b7"
	payload, err := json.Marshal(map[string]any{"model": "quadratic", "values": testSeries()})
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, "/v1/fit", bytes.NewReader(payload))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Traceparent", "00-"+callerTrace+"-"+callerSpan+"-01")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("fit status %d: %s", rec.Code, rec.Body.String())
	}

	// Response header: same trace, this server's span, not the caller's.
	gotTrace, gotSpan, ok := telemetry.ParseTraceparent(rec.Header().Get("Traceparent"))
	if !ok {
		t.Fatalf("unparseable response traceparent %q", rec.Header().Get("Traceparent"))
	}
	if gotTrace != callerTrace {
		t.Errorf("response trace ID %s, want caller's %s", gotTrace, callerTrace)
	}
	if gotSpan == callerSpan || gotSpan == "" {
		t.Errorf("response span ID %q should be a fresh server span", gotSpan)
	}

	// The trace is retained under the caller's ID with real spans.
	stored, found := telemetry.DefaultTraceStore.Get(callerTrace)
	if !found {
		t.Fatal("trace not retained in the store under the caller's trace ID")
	}
	if len(stored.Spans) == 0 {
		t.Fatal("retained trace has no spans")
	}

	// And resolvable over the debug API with the span tree attached.
	rec2 := httptest.NewRecorder()
	h.ServeHTTP(rec2, httptest.NewRequest(http.MethodGet, "/debug/traces/"+callerTrace, nil))
	if rec2.Code != http.StatusOK {
		t.Fatalf("GET /debug/traces/{id}: status %d: %s", rec2.Code, rec2.Body.String())
	}
	var detail struct {
		TraceID string `json:"trace_id"`
		Spans   []struct {
			Name     string `json:"name"`
			Children []struct {
				Name string `json:"name"`
			} `json:"children"`
		} `json:"spans"`
	}
	if err := json.Unmarshal(rec2.Body.Bytes(), &detail); err != nil {
		t.Fatalf("decode trace detail: %v", err)
	}
	if detail.TraceID != callerTrace || len(detail.Spans) == 0 {
		t.Fatalf("trace detail = %+v, want trace %s with spans", detail, callerTrace)
	}
	if root := detail.Spans[0]; root.Name != "http./v1/fit" || len(root.Children) == 0 {
		t.Errorf("root span %q with %d children, want http./v1/fit with fit spans under it",
			root.Name, len(root.Children))
	}

	// No inbound traceparent: a fresh well-formed one is minted.
	rec3, _ := doJSON(t, h, http.MethodGet, "/healthz", nil)
	freshTrace, _, ok := telemetry.ParseTraceparent(rec3.Header().Get("Traceparent"))
	if !ok || freshTrace == callerTrace {
		t.Errorf("minted traceparent %q invalid or reused", rec3.Header().Get("Traceparent"))
	}
}
