// Package server exposes the resilience-modeling pipeline over HTTP with
// a JSON API, so non-Go systems (dashboards, notebooks, incident
// tooling) can fit models and query recovery predictions. The server is
// a thin transport: it decodes JSON, hands the request to the shared
// fitting service (internal/service) — which owns model resolution
// through the central registry, input validation, the fit cache, and the
// degradation chain — and maps the service's typed errors onto HTTP
// statuses. The server is stateless apart from the bounded fit cache:
// every request carries its own data, so the handler is safe under
// arbitrary concurrency.
//
// The pipeline degrades rather than fails: request deadlines are
// threaded from the handler down into every optimizer iteration, panics
// anywhere in the fitting pipeline are contained and answered with a
// JSON error envelope, and fits that will not converge fall back through
// progressively simpler model families (see core.FallbackPolicy),
// annotating the response instead of erroring.
//
// Fitting requests can be served from a bounded LRU fit cache
// (Config.FitCacheSize / the -fit-cache-size flag) keyed by a SHA-256
// digest of the canonicalized series, canonical model name, and fit
// configuration; cached responses carry "cached": true and hit/miss
// counts are exposed on GET /metrics.
//
// Endpoints:
//
//	GET  /healthz                 liveness probe
//	GET  /readyz                  readiness probe (runs a sanity fit; SLO detail when targets set)
//	GET  /metrics                 Prometheus text-format exposition (with trace-ID exemplars)
//	GET  /debug/traces            recent traces, filterable (route, min_ms, errors, limit)
//	GET  /debug/traces/{id}       one trace's full span tree
//	GET  /debug/pprof/*           profiling endpoints (only with Config.EnablePprof)
//	GET  /v1/version              build/version info
//	GET  /v1/stats                counters, per-route latency, stream/durable/runtime/SLO detail
//	GET  /v1/models               model catalog with registry metadata
//	GET  /v1/datasets             built-in dataset catalog
//	GET  /v1/datasets/{name}      one dataset's series
//	POST /v1/fit                  fit a model: {model, times?, values, train_fraction?}
//	POST /v1/predict              recovery prediction: {model, times?, values, level?}
//	POST /v1/metrics              interval metrics: {model, times?, values}
//	POST /v1/forecast             future-horizon forecast with bands
//	POST /v1/intervention         restoration-scenario what-if analysis
//	POST /v1/batch                fit many series×model jobs: {jobs: [...], workers?}
//	POST /v1/sessions             open a streaming session: {model?, config?}
//	GET  /v1/sessions             list open sessions
//	GET  /v1/sessions/{id}        one session's snapshot
//	DELETE /v1/sessions/{id}      close a session
//	POST /v1/sessions/{id}/observe  ingest points: {values, times?} or {value, time?}
//	GET  /v1/sessions/{id}/events   live Server-Sent Events feed, one event per update
//
// Every request carries an ID: inbound X-Request-ID is honored when
// sane, one is generated otherwise, and the ID is echoed in the
// X-Request-ID response header, the structured access log, and every
// JSON error envelope, so a 500/499/504 joins to its log line and spans.
//
// Every error response is the JSON envelope
// {"error": "...", "field": "...", "request_id": "..."} where field
// names the offending request field when one is known.
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"math"
	"net/http"
	"net/http/pprof"
	"sync/atomic"
	"time"

	"resilience/internal/cluster"
	"resilience/internal/core"
	"resilience/internal/dataset"
	"resilience/internal/durable"
	"resilience/internal/monitor"
	"resilience/internal/optimize"
	"resilience/internal/registry"
	"resilience/internal/scenario"
	"resilience/internal/service"
	"resilience/internal/stream"
	"resilience/internal/telemetry"
	"resilience/internal/timeseries"
)

// maxBodyBytes bounds single-job request bodies; resilience series are
// tiny, so a small cap shuts down abuse cheaply.
const maxBodyBytes = 1 << 20

// maxBatchBodyBytes bounds /v1/batch bodies, which legitimately carry up
// to service.MaxBatchJobs series per request.
const maxBatchBodyBytes = 8 << 20

// statusClientClosedRequest is the de-facto standard (nginx) status for
// requests abandoned by the client; it only ever reaches logs and
// counters, never the (gone) client.
const statusClientClosedRequest = 499

// Version is the server's version string, settable at link time with
// -ldflags "-X resilience/internal/server.Version=v1.2.3".
var Version = "dev"

// Config tunes the HTTP handler. The zero value selects production
// defaults.
type Config struct {
	// FitTimeout bounds each fitting request's total work, including
	// every retry and fallback of the degradation chain (default 30s).
	// The deadline propagates into individual optimizer iterations.
	FitTimeout time.Duration
	// DisableFallback turns the degradation chain off: a failed fit is
	// answered with an error envelope instead of a simpler model.
	DisableFallback bool
	// Fallback overrides the degradation chain policy (nil-able fields
	// fall back to the registry-derived defaults).
	Fallback core.FallbackPolicy
	// Logger receives one structured line per request (default
	// slog.Default()).
	Logger *slog.Logger
	// EnablePprof mounts the net/http/pprof profiling endpoints under
	// /debug/pprof/. Off by default: the profiles leak implementation
	// detail and cost CPU, so they are opt-in (the -pprof server flag).
	EnablePprof bool
	// FitCacheSize bounds the service fit cache (entries); see
	// service.Config.FitCacheSize. 0 disables caching (the
	// -fit-cache-size server flag sets it).
	FitCacheSize int
	// MaxSessions caps the streaming-session table; at the cap the least
	// recently active session is evicted (default 64, the -max-sessions
	// server flag sets it).
	MaxSessions int
	// SessionTTL retires streaming sessions idle longer than this
	// (default 15m, the -session-ttl server flag sets it).
	SessionTTL time.Duration
	// SessionStore persists streaming sessions across restarts (see
	// internal/durable; the -data-dir server flag builds one). When set,
	// the app boots in the "replaying" readiness phase — /readyz answers
	// 503 — until the entry point finishes recovery and calls MarkReady.
	// Nil keeps sessions in memory only.
	SessionStore stream.Store
	// SnapshotEvery is the per-session snapshot cadence in observations
	// (see stream.Config.SnapshotEvery; the -snapshot-every flag sets it).
	SnapshotEvery int
	// SLOP99 is the p99 latency target in seconds (the -slo-p99 server
	// flag). When set, the server tracks its own tail latency over a
	// rolling window and exposes burn-rate/error-budget gauges on
	// /metrics, /v1/stats, and /readyz. 0 disables the latency SLO.
	SLOP99 float64
	// SLOErrorRate is the tolerated 5xx fraction (the -slo-error-rate
	// server flag). 0 disables the error-rate SLO.
	SLOErrorRate float64
	// Cluster, when non-nil, shards streaming sessions across a peer set
	// (the -peers/-node server flags build one): sessions this node does
	// not own are forwarded to the owner over the binary transport, new
	// session IDs are minted until they hash to this node, and session
	// responses carry owner/node fields. Nil keeps the server
	// single-node, with all cluster machinery inert.
	Cluster *cluster.Cluster
}

func (c Config) withDefaults() Config {
	if c.FitTimeout <= 0 {
		c.FitTimeout = 30 * time.Second
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	c.Fallback.Disable = c.Fallback.Disable || c.DisableFallback
	return c
}

// api carries per-handler configuration, the shared fitting service,
// and the streaming-session manager.
type api struct {
	cfg     Config
	svc     *service.Service
	streams *stream.Manager
	slo     *sloTracker
	// cluster is the peer-set view (nil when single-node).
	cluster *cluster.Cluster
	// replaying is true while boot-time session recovery runs; /readyz
	// answers 503 with phase "replaying" until MarkReady clears it.
	replaying atomic.Bool
}

// App bundles the HTTP handler with the stateful subsystems that need
// their own shutdown sequencing. Transports that only route requests can
// keep using NewHandler; process entry points should build an App so
// they can drain the streaming subsystem (Streams.Shutdown) before the
// HTTP listener.
type App struct {
	Handler http.Handler
	// Streams is the streaming-session manager behind /v1/sessions.
	Streams *stream.Manager
	a       *api
}

// MarkReady ends the boot "replaying" readiness phase: /readyz starts
// answering 200. Entry points call it after the durable store has been
// recovered and its sessions restored into Streams; apps built without a
// SessionStore are ready from the start and need not call it.
func (app *App) MarkReady() { app.a.replaying.Store(false) }

// Handler returns the server's http.Handler with default configuration.
func Handler() http.Handler { return NewHandler(Config{}) }

// NewHandler returns the server's http.Handler with all routes
// registered and the hardening middleware (panic recovery, structured
// request logging, request counters) installed.
func NewHandler(cfg Config) http.Handler { return NewApp(cfg).Handler }

// NewApp builds the handler plus the stateful subsystems it serves.
func NewApp(cfg Config) *App {
	a := &api{cfg: cfg.withDefaults()}
	a.cluster = a.cfg.Cluster
	a.svc = service.New(service.Config{
		Fallback:     a.cfg.Fallback,
		FitCacheSize: a.cfg.FitCacheSize,
	})
	// When clustered, every session this node creates must hash to this
	// node, so the manager keeps minting IDs until the ring agrees; a
	// session recovered from the WAL was minted under the same table and
	// stays self-owned.
	var ownsID func(string) bool
	if a.cluster != nil {
		ownsID = a.cluster.IsLocal
	}
	// Session refits run the same degradation chain as one-shot fits: the
	// manager takes the service's resolved policy, so a -no-fallback
	// server degrades (or doesn't) identically on both paths.
	a.streams = stream.NewManager(stream.Config{
		MaxSessions:   a.cfg.MaxSessions,
		SessionTTL:    a.cfg.SessionTTL,
		Fallback:      a.svc.Policy(),
		Store:         a.cfg.SessionStore,
		SnapshotEvery: a.cfg.SnapshotEvery,
		Logger:        a.cfg.Logger,
		OwnsID:        ownsID,
	})
	// A durable app starts unready: the listener may open while recovery
	// replays the WAL, and /readyz keeps traffic away until MarkReady.
	a.replaying.Store(a.cfg.SessionStore != nil)
	// The SLO tracker always runs (the stats view shows window counts);
	// targets only arm the burn-rate math. The process-wide gauges follow
	// the most recently built App — in the one-App production process the
	// two are the same thing.
	a.slo = newSLOTracker(a.cfg.SLOP99, a.cfg.SLOErrorRate)
	currentSLO.Store(a.slo)
	registerSLOGauges()
	telemetry.RegisterRuntimeMetrics()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", handleHealth)
	mux.HandleFunc("GET /readyz", a.handleReady)
	mux.Handle("GET /metrics", telemetry.Handler())
	mux.HandleFunc("GET /debug/traces", handleTraceList)
	mux.HandleFunc("GET /debug/traces/{id}", handleTraceGet)
	mux.HandleFunc("GET /v1/version", handleVersion)
	mux.HandleFunc("GET /v1/stats", a.handleStats)
	mux.HandleFunc("GET /v1/models", handleModels)
	mux.HandleFunc("GET /v1/datasets", handleDatasets)
	mux.HandleFunc("GET /v1/datasets/{name}", handleDataset)
	mux.HandleFunc("POST /v1/fit", a.withFitTimeout(a.handleFit))
	mux.HandleFunc("POST /v1/predict", a.withFitTimeout(a.handlePredict))
	mux.HandleFunc("POST /v1/metrics", a.withFitTimeout(a.handleMetrics))
	mux.HandleFunc("POST /v1/forecast", a.withFitTimeout(a.handleForecast))
	mux.HandleFunc("POST /v1/intervention", a.withFitTimeout(a.handleIntervention))
	mux.HandleFunc("POST /v1/batch", a.withFitTimeout(a.handleBatch))
	mux.HandleFunc("POST /v1/simulate", a.handleSimulate)
	mux.HandleFunc("POST /v1/sessions", a.handleSessionCreate)
	mux.HandleFunc("GET /v1/sessions", a.handleSessionList)
	mux.HandleFunc("GET /v1/sessions/{id}", a.handleSessionGet)
	mux.HandleFunc("DELETE /v1/sessions/{id}", a.handleSessionDelete)
	mux.HandleFunc("POST /v1/sessions/{id}/observe", a.withFitTimeout(a.handleSessionObserve))
	mux.HandleFunc("GET /v1/sessions/{id}/events", a.handleSessionEvents)
	if a.cfg.EnablePprof {
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return &App{Handler: instrument(a.cfg.Logger, a.slo, mux), Streams: a.streams, a: a}
}

// withFitTimeout imposes the configured fitting deadline on a handler's
// request context; the deadline is honored down to single optimizer
// iterations.
func (a *api) withFitTimeout(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), a.cfg.FitTimeout)
		defer cancel()
		h(w, r.WithContext(ctx))
	}
}

// New returns an http.Server configured with production timeouts,
// listening on addr.
func New(addr string) *http.Server { return NewServer(addr, Config{}) }

// NewServer is New with an explicit handler configuration.
func NewServer(addr string, cfg Config) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           NewHandler(cfg),
		ReadTimeout:       10 * time.Second,
		ReadHeaderTimeout: 5 * time.Second,
		WriteTimeout:      60 * time.Second, // fits can take a few seconds
		IdleTimeout:       120 * time.Second,
	}
}

// errorBody is the JSON error envelope. Field names the offending
// request field when one is known; RequestID joins the envelope to the
// request's log line, spans, and X-Request-ID header.
type errorBody struct {
	Error     string `json:"error"`
	Field     string `json:"field,omitempty"`
	RequestID string `json:"request_id,omitempty"`
}

// writeJSON marshals v to a buffer before touching the ResponseWriter,
// so a marshal failure still yields a complete 500 JSON envelope rather
// than a truncated body after a committed 200 header.
func writeJSON(w http.ResponseWriter, status int, v any) {
	body, err := json.Marshal(v)
	if err != nil {
		status = http.StatusInternalServerError
		body, _ = json.Marshal(errorBody{Error: "encode response: " + err.Error()})
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(append(body, '\n'))
}

func writeErr(w http.ResponseWriter, r *http.Request, status int, err error) {
	writeJSON(w, status, errorBody{Error: err.Error(), RequestID: telemetry.RequestID(r.Context())})
}

// apiError is a request-validation failure bound to an HTTP status and,
// when known, the offending field.
type apiError struct {
	status int
	field  string
	err    error
}

func (e *apiError) Error() string { return e.err.Error() }

func badField(field, format string, args ...any) *apiError {
	return &apiError{status: http.StatusBadRequest, field: field, err: fmt.Errorf(format, args...)}
}

func writeAPIErr(w http.ResponseWriter, r *http.Request, e *apiError) {
	writeJSON(w, e.status, errorBody{
		Error: e.err.Error(), Field: e.field,
		RequestID: telemetry.RequestID(r.Context()),
	})
}

func handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// readySeries is the canned V-shaped series the readiness probe fits.
var readySeries = []float64{1, 0.97, 0.94, 0.92, 0.91, 0.915, 0.93, 0.95, 0.97, 0.99, 1.0, 1.005}

// handleReady answers readiness: it runs a cheap sanity fit of the
// quadratic bathtub on a canned series under a short deadline, proving
// the whole pipeline — series construction, optimizer, parameter
// validation — can still produce results.
func (a *api) handleReady(w http.ResponseWriter, r *http.Request) {
	// During boot recovery the process is alive but must not take
	// traffic: sessions are still being replayed into the manager and a
	// client could observe (or create) a session that recovery is about
	// to restore. Phase tells orchestration why readiness is withheld.
	if a.replaying.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{
			"status": "unready", "phase": "replaying",
		})
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), 2*time.Second)
	defer cancel()
	series, err := timeseries.FromValues(readySeries)
	if err != nil {
		writeErr(w, r, http.StatusServiceUnavailable, err)
		return
	}
	start := time.Now()
	_, err = core.FitCtx(ctx, registry.MustLookup("quadratic").Model, series, core.FitConfig{
		Starts: 2,
		Local:  optimize.Options{MaxIterations: 400},
	})
	if err != nil {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{
			"status": "unready", "error": err.Error(),
		})
		return
	}
	out := map[string]any{
		"status":        "ready",
		"phase":         "ready",
		"sanity_fit_ms": float64(time.Since(start).Microseconds()) / 1000,
	}
	// With SLO targets armed, readiness detail carries the budget view so
	// orchestration (and humans hitting /readyz) see burn without a
	// second request.
	if slo := a.slo.snapshot(); slo.Enabled {
		out["slo"] = slo
	}
	writeJSON(w, http.StatusOK, out)
}

// handleVersion reports build information.
func handleVersion(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, versionPayload())
}

// routeStats is one per-route latency row in the stats reply, computed
// from the resil_http_request_duration_seconds histograms.
type routeStats struct {
	Route    string  `json:"route"`
	Requests uint64  `json:"requests"`
	P50Ms    float64 `json:"p50_ms"`
	P99Ms    float64 `json:"p99_ms"`
}

// statsResponse is the GET /v1/stats reply. The monitor counters stay
// embedded at the top level (requests, fits, fallbacks, ...) for
// compatibility with existing consumers; the subsystem detail hangs off
// named sections.
type statsResponse struct {
	monitor.CounterSnapshot
	Routes    []routeStats                           `json:"routes"`
	Stream    stream.StatsSnapshot                   `json:"stream"`
	Durable   durable.StatsSnapshot                  `json:"durable"`
	Cluster   *cluster.StatsSnapshot                 `json:"cluster,omitempty"`
	SLO       sloSnapshot                            `json:"slo"`
	Runtime   telemetry.RuntimeSnapshot              `json:"runtime"`
	Traces    traceStoreStats                        `json:"traces"`
	Exemplars map[string][]telemetry.LabeledExemplar `json:"exemplars,omitempty"`
}

// traceStoreStats summarizes the process trace store for the stats view.
type traceStoreStats struct {
	Retained int `json:"retained"`
}

// exemplarFamilies are the histogram families whose exemplars the stats
// view reports in JSON (the same exemplars /metrics renders as
// OpenMetrics suffixes).
var exemplarFamilies = []string{
	"resil_http_request_duration_seconds",
	"resil_fit_duration_seconds",
	"resil_stream_refit_duration_seconds",
}

// handleStats exposes the process-wide counters plus per-route latency,
// stream/durable/cluster/runtime health, the SLO budget, and current
// exemplars.
func (a *api) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, a.statsPayload())
}

// modelDetail is one /v1/models catalog row, mirroring the registry
// entry's metadata.
type modelDetail struct {
	Name         string                `json:"name"`
	Aliases      []string              `json:"aliases,omitempty"`
	Family       string                `json:"family"`
	Description  string                `json:"description,omitempty"`
	ParamNames   []string              `json:"param_names"`
	Capabilities registry.Capabilities `json:"capabilities"`
	FallbackRank int                   `json:"fallback_rank,omitempty"`
}

// handleModels serves the model catalog.
func handleModels(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, modelsPayload())
}

// datasetSummary is one catalog row.
type datasetSummary struct {
	Name        string `json:"name"`
	Shape       string `json:"shape"`
	Months      int    `json:"months"`
	Description string `json:"description"`
}

func handleDatasets(w http.ResponseWriter, r *http.Request) {
	recs, err := dataset.Recessions()
	if err != nil {
		writeErr(w, r, http.StatusInternalServerError, err)
		return
	}
	out := make([]datasetSummary, 0, len(recs))
	for _, r := range recs {
		out = append(out, datasetSummary{
			Name: r.Name, Shape: r.Shape, Months: r.Months, Description: r.Description,
		})
	}
	writeJSON(w, http.StatusOK, map[string]any{"datasets": out})
}

// seriesBody is the JSON form of a series.
type seriesBody struct {
	Times  []float64 `json:"times,omitempty"`
	Values []float64 `json:"values"`
}

func handleDataset(w http.ResponseWriter, r *http.Request) {
	rec, err := dataset.ByName(r.PathValue("name"))
	if err != nil {
		writeErr(w, r, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"name":   rec.Name,
		"shape":  rec.Shape,
		"series": seriesBody{Times: rec.Series.Times(), Values: rec.Series.Values()},
	})
}

// modelRequest is the shared request body for fit/predict/metrics.
type modelRequest struct {
	Model string `json:"model"`
	seriesBody
	// TrainFraction controls the validation split (default 0.9).
	TrainFraction float64 `json:"train_fraction,omitempty"`
	// Level is the recovery target for /v1/predict (default 1.0).
	Level float64 `json:"level,omitempty"`
	// Steps is the forecast horizon length for /v1/forecast (default 6).
	Steps int `json:"steps,omitempty"`
	// Alpha is the forecast significance level (default 0.05).
	Alpha float64 `json:"alpha,omitempty"`
	// InterventionStart and InterventionAccel configure /v1/intervention.
	InterventionStart float64 `json:"intervention_start,omitempty"`
	InterventionAccel float64 `json:"intervention_accel,omitempty"`
}

// toService maps the wire body onto the transport-agnostic request.
func (req *modelRequest) toService() service.Request {
	return service.Request{
		Model:             req.Model,
		Times:             req.Times,
		Values:            req.Values,
		TrainFraction:     req.TrainFraction,
		Level:             req.Level,
		Steps:             req.Steps,
		Alpha:             req.Alpha,
		InterventionStart: req.InterventionStart,
		InterventionAccel: req.InterventionAccel,
	}
}

// validate rejects out-of-range and non-finite request fields at the
// JSON boundary with field-specific messages, before anything reaches
// the fitters. The rules live in the service layer (service.Request
// .Validate) so every transport rejects identically.
func (req *modelRequest) validate() *apiError {
	sreq := req.toService()
	if ierr := sreq.Validate(); ierr != nil {
		return &apiError{status: http.StatusBadRequest, field: ierr.Field, err: ierr}
	}
	return nil
}

// execHTTP adapts one operation-layer exec function into an HTTP
// handler: read the body under limit, run the op on the request
// context, write the (status, payload) result. Everything between —
// decoding, validation, dispatch, error mapping — lives in ops.go,
// shared verbatim with the binary transport.
func execHTTP(limit int64, exec func(context.Context, []byte) (int, any)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		raw, aerr := readBody(r.Context(), r.Body, limit)
		if aerr != nil {
			writeAPIErr(w, r, aerr)
			return
		}
		status, payload := exec(r.Context(), raw)
		writeJSON(w, status, payload)
	}
}

// degradeBody annotates fit-family responses with the degradation-chain
// outcome; Degraded and Cached are always present so clients can branch
// on them. Cached is true when the response was served from the service
// fit cache instead of running the optimizer.
type degradeBody struct {
	Degraded          bool   `json:"degraded"`
	Cached            bool   `json:"cached"`
	RequestedModel    string `json:"requested_model,omitempty"`
	FallbackModel     string `json:"fallback_model,omitempty"`
	DegradationReason string `json:"degradation_reason,omitempty"`
}

func degradeFields(info *core.DegradeInfo) degradeBody {
	if info == nil {
		return degradeBody{}
	}
	db := degradeBody{Degraded: info.Degraded, RequestedModel: info.RequestedModel}
	if info.FallbackUsed {
		db.FallbackModel = info.UsedModel
	}
	if info.Degraded {
		db.DegradationReason = info.Reason
	}
	return db
}

// fitResponse is the /v1/fit reply (and each successful /v1/batch item).
type fitResponse struct {
	Model      string             `json:"model"`
	ParamNames []string           `json:"param_names"`
	Params     []float64          `json:"params"`
	GoF        map[string]float64 `json:"gof"`
	EC         float64            `json:"empirical_coverage"`
	degradeBody
}

// buildFitResponse renders a service fit outcome into the wire reply.
func buildFitResponse(out *service.FitOutcome) fitResponse {
	v := out.Validation
	db := degradeFields(out.Degrade)
	db.Cached = out.Cached
	return fitResponse{
		Model:      v.Fit.Model.Name(),
		ParamNames: v.Fit.Model.ParamNames(),
		Params:     v.Fit.Params,
		GoF: map[string]float64{
			"sse":   v.GoF.SSE,
			"pmse":  v.GoF.PMSE,
			"r2":    v.GoF.R2,
			"r2adj": v.GoF.R2Adj,
			"aic":   v.GoF.AIC,
			"bic":   v.GoF.BIC,
		},
		EC:          v.EC,
		degradeBody: db,
	}
}

func (a *api) handleFit(w http.ResponseWriter, r *http.Request) {
	execHTTP(maxBodyBytes, a.execFit)(w, r)
}

// predictResponse is the /v1/predict reply.
type predictResponse struct {
	Model            string  `json:"model"`
	MinimumTime      float64 `json:"minimum_time"`
	MinimumValue     float64 `json:"minimum_value"`
	RecoveryLevel    float64 `json:"recovery_level"`
	RecoveryTime     float64 `json:"recovery_time"`
	RecoveryReached  bool    `json:"recovery_reached"`
	RecoveryErrorMsg string  `json:"recovery_error,omitempty"`
	degradeBody
}

func (a *api) handlePredict(w http.ResponseWriter, r *http.Request) {
	execHTTP(maxBodyBytes, a.execPredict)(w, r)
}

// metricsResponse is the /v1/metrics reply.
type metricsResponse struct {
	Model   string                 `json:"model"`
	Metrics []metricComparisonBody `json:"metrics"`
	degradeBody
}

type metricComparisonBody struct {
	Name          string  `json:"name"`
	Actual        float64 `json:"actual"`
	Predicted     float64 `json:"predicted"`
	RelativeError float64 `json:"relative_error"`
}

func (a *api) handleMetrics(w http.ResponseWriter, r *http.Request) {
	execHTTP(maxBodyBytes, a.execMetrics)(w, r)
}

// jsonSafe maps NaN/Inf (unrepresentable in JSON) to signed sentinel
// values the client can detect.
func jsonSafe(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return -999999
	}
	return v
}

// forecastResponse is the /v1/forecast reply.
type forecastResponse struct {
	Model string    `json:"model"`
	Times []float64 `json:"times"`
	Mean  []float64 `json:"mean"`
	Lower []float64 `json:"lower"`
	Upper []float64 `json:"upper"`
	Sigma float64   `json:"sigma"`
	degradeBody
}

func (a *api) handleForecast(w http.ResponseWriter, r *http.Request) {
	execHTTP(maxBodyBytes, a.execForecast)(w, r)
}

// interventionResponse is the /v1/intervention reply.
type interventionResponse struct {
	Model              string  `json:"model"`
	BaselineRecovery   float64 `json:"baseline_recovery"`
	IntervenedRecovery float64 `json:"intervened_recovery"`
	RecoverySaved      float64 `json:"recovery_saved"`
	PreservedGain      float64 `json:"performance_preserved_gain"`
	degradeBody
}

func (a *api) handleIntervention(w http.ResponseWriter, r *http.Request) {
	execHTTP(maxBodyBytes, a.execIntervention)(w, r)
}

// batchJobBody is one /v1/batch job: a model plus its series.
type batchJobBody struct {
	Model string `json:"model"`
	seriesBody
	TrainFraction float64 `json:"train_fraction,omitempty"`
}

// batchRequestBody is the /v1/batch request envelope.
type batchRequestBody struct {
	Jobs []batchJobBody `json:"jobs"`
	// Workers bounds batch concurrency; 0 selects
	// min(len(jobs), GOMAXPROCS).
	Workers int `json:"workers,omitempty"`
}

// batchItemBody is one per-job result: the fit reply fields on success,
// an error (and the offending field when known) on failure. Index is the
// job's position in the request.
type batchItemBody struct {
	Index int `json:"index"`
	*fitResponse
	Error string `json:"error,omitempty"`
	Field string `json:"field,omitempty"`
}

// batchResponse is the /v1/batch reply envelope.
type batchResponse struct {
	Jobs    int             `json:"jobs"`
	Failed  int             `json:"failed"`
	Workers int             `json:"workers"`
	Results []batchItemBody `json:"results"`
}

// handleBatch fits many series×model jobs in one request through the
// service's bounded worker pool (see execBatch in ops.go).
func (a *api) handleBatch(w http.ResponseWriter, r *http.Request) {
	execHTTP(maxBatchBodyBytes, a.execBatch)(w, r)
}

// simulateRequestBody is the /v1/simulate request envelope: an inline
// scenario spec or a named preset, plus the set size and seed.
type simulateRequestBody struct {
	Spec *scenario.Spec `json:"spec,omitempty"`
	// Preset names a built-in coupled spec; mutually exclusive with
	// Spec. Empty with no Spec selects "pair".
	Preset string `json:"preset,omitempty"`
	// Count is the number of scenarios (0 selects 1).
	Count int `json:"count,omitempty"`
	// Seed is the top-level set seed; scenario k derives its own stream
	// from it.
	Seed uint64 `json:"seed,omitempty"`
	// Workers bounds generation concurrency; 0 selects
	// min(count, GOMAXPROCS). Output is identical at any setting.
	Workers int `json:"workers,omitempty"`
}

// simulateResponse is the /v1/simulate reply envelope.
type simulateResponse struct {
	Count   int      `json:"count"`
	Classes []string `json:"classes"`
	*scenario.Set
}

// handleSimulate renders a deterministic scenario set (see execSimulate
// in ops.go).
func (a *api) handleSimulate(w http.ResponseWriter, r *http.Request) {
	execHTTP(maxBodyBytes, a.execSimulate)(w, r)
}
