// Package server exposes the resilience-modeling pipeline over HTTP with
// a JSON API, so non-Go systems (dashboards, notebooks, incident
// tooling) can fit models and query recovery predictions. The server is
// stateless: every request carries its own data, and all state lives in
// the request scope, so the handler is safe under arbitrary concurrency.
//
// Endpoints:
//
//	GET  /healthz                 liveness probe
//	GET  /v1/models               available model names
//	GET  /v1/datasets             built-in dataset catalog
//	GET  /v1/datasets/{name}      one dataset's series
//	POST /v1/fit                  fit a model: {model, times?, values, train_fraction?}
//	POST /v1/predict              recovery prediction: {model, times?, values, level?}
//	POST /v1/metrics              interval metrics: {model, times?, values}
//	POST /v1/forecast             future-horizon forecast with bands
//	POST /v1/intervention         restoration-scenario what-if analysis
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strings"
	"time"

	"resilience/internal/core"
	"resilience/internal/dataset"
	"resilience/internal/timeseries"
)

// maxBodyBytes bounds request bodies; resilience series are tiny, so a
// small cap shuts down abuse cheaply.
const maxBodyBytes = 1 << 20

// Handler returns the server's http.Handler with all routes registered.
func Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", handleHealth)
	mux.HandleFunc("GET /v1/models", handleModels)
	mux.HandleFunc("GET /v1/datasets", handleDatasets)
	mux.HandleFunc("GET /v1/datasets/{name}", handleDataset)
	mux.HandleFunc("POST /v1/fit", handleFit)
	mux.HandleFunc("POST /v1/predict", handlePredict)
	mux.HandleFunc("POST /v1/metrics", handleMetrics)
	mux.HandleFunc("POST /v1/forecast", handleForecast)
	mux.HandleFunc("POST /v1/intervention", handleIntervention)
	return mux
}

// New returns an http.Server configured with production timeouts,
// listening on addr.
func New(addr string) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           Handler(),
		ReadTimeout:       10 * time.Second,
		ReadHeaderTimeout: 5 * time.Second,
		WriteTimeout:      60 * time.Second, // fits can take a few seconds
		IdleTimeout:       120 * time.Second,
	}
}

// errorBody is the JSON error envelope.
type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// Encoding errors past the header write can only be logged; the
	// payloads here are small structs that always marshal.
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorBody{Error: err.Error()})
}

func handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// modelNames lists every model the API accepts.
func modelNames() []string {
	names := []string{"quadratic", "competing-risks", "exp-bathtub"}
	for _, m := range core.StandardMixtures() {
		names = append(names, m.Name())
	}
	return names
}

func handleModels(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string][]string{"models": modelNames()})
}

// datasetSummary is one catalog row.
type datasetSummary struct {
	Name        string `json:"name"`
	Shape       string `json:"shape"`
	Months      int    `json:"months"`
	Description string `json:"description"`
}

func handleDatasets(w http.ResponseWriter, _ *http.Request) {
	recs, err := dataset.Recessions()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	out := make([]datasetSummary, 0, len(recs))
	for _, r := range recs {
		out = append(out, datasetSummary{
			Name: r.Name, Shape: r.Shape, Months: r.Months, Description: r.Description,
		})
	}
	writeJSON(w, http.StatusOK, map[string]any{"datasets": out})
}

// seriesBody is the JSON form of a series.
type seriesBody struct {
	Times  []float64 `json:"times,omitempty"`
	Values []float64 `json:"values"`
}

func handleDataset(w http.ResponseWriter, r *http.Request) {
	rec, err := dataset.ByName(r.PathValue("name"))
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"name":   rec.Name,
		"shape":  rec.Shape,
		"series": seriesBody{Times: rec.Series.Times(), Values: rec.Series.Values()},
	})
}

// modelRequest is the shared request body for fit/predict/metrics.
type modelRequest struct {
	Model string `json:"model"`
	seriesBody
	// TrainFraction controls the validation split (default 0.9).
	TrainFraction float64 `json:"train_fraction,omitempty"`
	// Level is the recovery target for /v1/predict (default 1.0).
	Level float64 `json:"level,omitempty"`
	// Steps is the forecast horizon length for /v1/forecast (default 6).
	Steps int `json:"steps,omitempty"`
	// Alpha is the forecast significance level (default 0.05).
	Alpha float64 `json:"alpha,omitempty"`
	// InterventionStart and InterventionAccel configure /v1/intervention.
	InterventionStart float64 `json:"intervention_start,omitempty"`
	InterventionAccel float64 `json:"intervention_accel,omitempty"`
}

// decode parses and validates the shared request body.
func decode(r *http.Request) (*modelRequest, core.Model, *timeseries.Series, error) {
	var req modelRequest
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return nil, nil, nil, fmt.Errorf("decode request: %w", err)
	}
	m, err := lookupModel(req.Model)
	if err != nil {
		return nil, nil, nil, err
	}
	var series *timeseries.Series
	if len(req.Times) > 0 {
		series, err = timeseries.NewSeries(req.Times, req.Values)
	} else {
		series, err = timeseries.FromValues(req.Values)
	}
	if err != nil {
		return nil, nil, nil, fmt.Errorf("series: %w", err)
	}
	return &req, m, series, nil
}

// lookupModel resolves an API model name.
func lookupModel(name string) (core.Model, error) {
	switch strings.ToLower(name) {
	case "quadratic":
		return core.QuadraticModel{}, nil
	case "competing-risks":
		return core.CompetingRisksModel{}, nil
	case "exp-bathtub":
		return core.ExpBathtubModel{}, nil
	case "":
		return nil, errors.New("model name required")
	}
	for _, m := range core.StandardMixtures() {
		if m.Name() == strings.ToLower(name) {
			return m, nil
		}
	}
	return nil, fmt.Errorf("unknown model %q (have %v)", name, modelNames())
}

// fitResponse is the /v1/fit reply.
type fitResponse struct {
	Model      string             `json:"model"`
	ParamNames []string           `json:"param_names"`
	Params     []float64          `json:"params"`
	GoF        map[string]float64 `json:"gof"`
	EC         float64            `json:"empirical_coverage"`
}

func handleFit(w http.ResponseWriter, r *http.Request) {
	req, m, series, err := decode(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	v, err := core.Validate(m, series, core.ValidateConfig{TrainFraction: req.TrainFraction})
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, http.StatusOK, fitResponse{
		Model:      m.Name(),
		ParamNames: m.ParamNames(),
		Params:     v.Fit.Params,
		GoF: map[string]float64{
			"sse":   v.GoF.SSE,
			"pmse":  v.GoF.PMSE,
			"r2":    v.GoF.R2,
			"r2adj": v.GoF.R2Adj,
			"aic":   v.GoF.AIC,
			"bic":   v.GoF.BIC,
		},
		EC: v.EC,
	})
}

// predictResponse is the /v1/predict reply.
type predictResponse struct {
	Model            string  `json:"model"`
	MinimumTime      float64 `json:"minimum_time"`
	MinimumValue     float64 `json:"minimum_value"`
	RecoveryLevel    float64 `json:"recovery_level"`
	RecoveryTime     float64 `json:"recovery_time"`
	RecoveryReached  bool    `json:"recovery_reached"`
	RecoveryErrorMsg string  `json:"recovery_error,omitempty"`
}

func handlePredict(w http.ResponseWriter, r *http.Request) {
	req, m, series, err := decode(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	fit, err := core.Fit(m, series, core.FitConfig{})
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, err)
		return
	}
	_, horizon := series.Span()
	td, err := core.ModelMinimum(fit, horizon)
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, err)
		return
	}
	level := req.Level
	if level == 0 {
		level = 1
	}
	resp := predictResponse{
		Model:         m.Name(),
		MinimumTime:   td,
		MinimumValue:  fit.Eval(td),
		RecoveryLevel: level,
		RecoveryTime:  math.NaN(),
	}
	if tr, err := core.RecoveryTime(fit, level, horizon); err == nil {
		resp.RecoveryTime = tr
		resp.RecoveryReached = true
	} else {
		resp.RecoveryErrorMsg = err.Error()
	}
	// NaN does not survive JSON; encode unreached recovery as null via a
	// pointer-free convention: omit by setting to -1.
	if math.IsNaN(resp.RecoveryTime) {
		resp.RecoveryTime = -1
	}
	writeJSON(w, http.StatusOK, resp)
}

// metricsResponse is the /v1/metrics reply.
type metricsResponse struct {
	Model   string                 `json:"model"`
	Metrics []metricComparisonBody `json:"metrics"`
}

type metricComparisonBody struct {
	Name          string  `json:"name"`
	Actual        float64 `json:"actual"`
	Predicted     float64 `json:"predicted"`
	RelativeError float64 `json:"relative_error"`
}

func handleMetrics(w http.ResponseWriter, r *http.Request) {
	req, m, series, err := decode(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	v, err := core.Validate(m, series, core.ValidateConfig{TrainFraction: req.TrainFraction})
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, err)
		return
	}
	rows, err := core.CompareMetrics(v, series, core.MetricsConfig{})
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, err)
		return
	}
	out := metricsResponse{Model: m.Name()}
	for _, row := range rows {
		out.Metrics = append(out.Metrics, metricComparisonBody{
			Name:          row.Kind.String(),
			Actual:        jsonSafe(row.Actual),
			Predicted:     jsonSafe(row.Predicted),
			RelativeError: jsonSafe(row.RelErr),
		})
	}
	writeJSON(w, http.StatusOK, out)
}

// jsonSafe maps NaN/Inf (unrepresentable in JSON) to signed sentinel
// values the client can detect.
func jsonSafe(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return -999999
	}
	return v
}

// forecastResponse is the /v1/forecast reply.
type forecastResponse struct {
	Model string    `json:"model"`
	Times []float64 `json:"times"`
	Mean  []float64 `json:"mean"`
	Lower []float64 `json:"lower"`
	Upper []float64 `json:"upper"`
	Sigma float64   `json:"sigma"`
}

func handleForecast(w http.ResponseWriter, r *http.Request) {
	req, m, series, err := decode(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	fit, err := core.Fit(m, series, core.FitConfig{})
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, err)
		return
	}
	steps := req.Steps
	if steps <= 0 {
		steps = 6
	}
	alpha := req.Alpha
	if alpha == 0 {
		alpha = 0.05
	}
	fc, err := core.ForecastHorizon(fit, steps, alpha)
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, http.StatusOK, forecastResponse{
		Model: m.Name(),
		Times: fc.Times, Mean: fc.Mean, Lower: fc.Lower, Upper: fc.Upper,
		Sigma: fc.Sigma,
	})
}

// interventionResponse is the /v1/intervention reply.
type interventionResponse struct {
	Model              string  `json:"model"`
	BaselineRecovery   float64 `json:"baseline_recovery"`
	IntervenedRecovery float64 `json:"intervened_recovery"`
	RecoverySaved      float64 `json:"recovery_saved"`
	PreservedGain      float64 `json:"performance_preserved_gain"`
}

func handleIntervention(w http.ResponseWriter, r *http.Request) {
	req, m, series, err := decode(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	iv := core.Intervention{Start: req.InterventionStart, Accel: req.InterventionAccel}
	if iv.Accel == 0 {
		iv.Accel = 2 // default scenario: double the recovery speed
	}
	fit, err := core.Fit(m, series, core.FitConfig{})
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, err)
		return
	}
	level := req.Level
	if level == 0 {
		level = 1
	}
	_, horizon := series.Span()
	impact, err := core.EvaluateIntervention(fit, iv, level, horizon)
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, http.StatusOK, interventionResponse{
		Model:              m.Name(),
		BaselineRecovery:   jsonSafe(impact.BaselineRecovery),
		IntervenedRecovery: jsonSafe(impact.IntervenedRecovery),
		RecoverySaved:      jsonSafe(impact.RecoverySaved),
		PreservedGain: jsonSafe(impact.Intervened[core.PerformancePreserved] -
			impact.Baseline[core.PerformancePreserved]),
	})
}
