// Package server exposes the resilience-modeling pipeline over HTTP with
// a JSON API, so non-Go systems (dashboards, notebooks, incident
// tooling) can fit models and query recovery predictions. The server is
// stateless: every request carries its own data, and all state lives in
// the request scope, so the handler is safe under arbitrary concurrency.
//
// The server is built to degrade rather than fail: request deadlines are
// threaded from the handler down into every optimizer iteration, panics
// anywhere in the fitting pipeline are contained and answered with a
// JSON error envelope, and fits that will not converge fall back through
// progressively simpler model families (see core.FallbackPolicy),
// annotating the response instead of erroring.
//
// Fitting requests can be served from a bounded LRU fit cache
// (Config.FitCacheSize / the -fit-cache-size flag) keyed by a SHA-256
// digest of the canonicalized series, model, and fit configuration;
// cached responses carry "cached": true and hit/miss counts are exposed
// on GET /metrics.
//
// Endpoints:
//
//	GET  /healthz                 liveness probe
//	GET  /readyz                  readiness probe (runs a sanity fit)
//	GET  /metrics                 Prometheus text-format exposition
//	GET  /debug/pprof/*           profiling endpoints (only with Config.EnablePprof)
//	GET  /v1/version              build/version info
//	GET  /v1/stats                fallback/cancellation/panic counters
//	GET  /v1/models               available model names
//	GET  /v1/datasets             built-in dataset catalog
//	GET  /v1/datasets/{name}      one dataset's series
//	POST /v1/fit                  fit a model: {model, times?, values, train_fraction?}
//	POST /v1/predict              recovery prediction: {model, times?, values, level?}
//	POST /v1/metrics              interval metrics: {model, times?, values}
//	POST /v1/forecast             future-horizon forecast with bands
//	POST /v1/intervention         restoration-scenario what-if analysis
//
// Every request carries an ID: inbound X-Request-ID is honored when
// sane, one is generated otherwise, and the ID is echoed in the
// X-Request-ID response header, the structured access log, and every
// JSON error envelope, so a 500/499/504 joins to its log line and spans.
//
// Every error response is the JSON envelope
// {"error": "...", "field": "...", "request_id": "..."} where field
// names the offending request field when one is known.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"net/http"
	"net/http/pprof"
	"runtime/debug"
	"strings"
	"time"

	"resilience/internal/core"
	"resilience/internal/dataset"
	"resilience/internal/faultinject"
	"resilience/internal/monitor"
	"resilience/internal/optimize"
	"resilience/internal/telemetry"
	"resilience/internal/timeseries"
)

// maxBodyBytes bounds request bodies; resilience series are tiny, so a
// small cap shuts down abuse cheaply.
const maxBodyBytes = 1 << 20

// statusClientClosedRequest is the de-facto standard (nginx) status for
// requests abandoned by the client; it only ever reaches logs and
// counters, never the (gone) client.
const statusClientClosedRequest = 499

// Version is the server's version string, settable at link time with
// -ldflags "-X resilience/internal/server.Version=v1.2.3".
var Version = "dev"

// Config tunes the HTTP handler. The zero value selects production
// defaults.
type Config struct {
	// FitTimeout bounds each fitting request's total work, including
	// every retry and fallback of the degradation chain (default 30s).
	// The deadline propagates into individual optimizer iterations.
	FitTimeout time.Duration
	// DisableFallback turns the degradation chain off: a failed fit is
	// answered with an error envelope instead of a simpler model.
	DisableFallback bool
	// Fallback overrides the degradation chain policy (nil-able fields
	// fall back to core defaults).
	Fallback core.FallbackPolicy
	// Logger receives one structured line per request (default
	// slog.Default()).
	Logger *slog.Logger
	// EnablePprof mounts the net/http/pprof profiling endpoints under
	// /debug/pprof/. Off by default: the profiles leak implementation
	// detail and cost CPU, so they are opt-in (the -pprof server flag).
	EnablePprof bool
	// FitCacheSize bounds the server fit cache (entries), an LRU keyed by
	// a SHA-256 digest of the canonicalized series, model name, and fit
	// configuration that fronts the optimizer on /v1/fit, /v1/predict,
	// /v1/metrics, and /v1/forecast. 0 disables caching (the -fit-cache-size
	// server flag sets it). Only successful outcomes are cached; errors
	// and cancellations always re-run.
	FitCacheSize int
}

func (c Config) withDefaults() Config {
	if c.FitTimeout <= 0 {
		c.FitTimeout = 30 * time.Second
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	c.Fallback.Disable = c.Fallback.Disable || c.DisableFallback
	return c
}

// api carries per-handler configuration.
type api struct {
	cfg   Config
	cache *fitCache // nil when caching is disabled
}

func (a *api) policy() core.FallbackPolicy { return a.cfg.Fallback }

// Handler returns the server's http.Handler with default configuration.
func Handler() http.Handler { return NewHandler(Config{}) }

// NewHandler returns the server's http.Handler with all routes
// registered and the hardening middleware (panic recovery, structured
// request logging, request counters) installed.
func NewHandler(cfg Config) http.Handler {
	a := &api{cfg: cfg.withDefaults()}
	a.cache = newFitCache(a.cfg.FitCacheSize)
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", handleHealth)
	mux.HandleFunc("GET /readyz", a.handleReady)
	mux.Handle("GET /metrics", telemetry.Handler())
	mux.HandleFunc("GET /v1/version", handleVersion)
	mux.HandleFunc("GET /v1/stats", handleStats)
	mux.HandleFunc("GET /v1/models", handleModels)
	mux.HandleFunc("GET /v1/datasets", handleDatasets)
	mux.HandleFunc("GET /v1/datasets/{name}", handleDataset)
	mux.HandleFunc("POST /v1/fit", a.withFitTimeout(a.handleFit))
	mux.HandleFunc("POST /v1/predict", a.withFitTimeout(a.handlePredict))
	mux.HandleFunc("POST /v1/metrics", a.withFitTimeout(a.handleMetrics))
	mux.HandleFunc("POST /v1/forecast", a.withFitTimeout(a.handleForecast))
	mux.HandleFunc("POST /v1/intervention", a.withFitTimeout(a.handleIntervention))
	if a.cfg.EnablePprof {
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return instrument(a.cfg.Logger, mux)
}

// withFitTimeout imposes the configured fitting deadline on a handler's
// request context; the deadline is honored down to single optimizer
// iterations.
func (a *api) withFitTimeout(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), a.cfg.FitTimeout)
		defer cancel()
		h(w, r.WithContext(ctx))
	}
}

// New returns an http.Server configured with production timeouts,
// listening on addr.
func New(addr string) *http.Server { return NewServer(addr, Config{}) }

// NewServer is New with an explicit handler configuration.
func NewServer(addr string, cfg Config) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           NewHandler(cfg),
		ReadTimeout:       10 * time.Second,
		ReadHeaderTimeout: 5 * time.Second,
		WriteTimeout:      60 * time.Second, // fits can take a few seconds
		IdleTimeout:       120 * time.Second,
	}
}

// errorBody is the JSON error envelope. Field names the offending
// request field when one is known; RequestID joins the envelope to the
// request's log line, spans, and X-Request-ID header.
type errorBody struct {
	Error     string `json:"error"`
	Field     string `json:"field,omitempty"`
	RequestID string `json:"request_id,omitempty"`
}

// writeJSON marshals v to a buffer before touching the ResponseWriter,
// so a marshal failure still yields a complete 500 JSON envelope rather
// than a truncated body after a committed 200 header.
func writeJSON(w http.ResponseWriter, status int, v any) {
	body, err := json.Marshal(v)
	if err != nil {
		status = http.StatusInternalServerError
		body, _ = json.Marshal(errorBody{Error: "encode response: " + err.Error()})
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(append(body, '\n'))
}

func writeErr(w http.ResponseWriter, r *http.Request, status int, err error) {
	writeJSON(w, status, errorBody{Error: err.Error(), RequestID: telemetry.RequestID(r.Context())})
}

// apiError is a request-validation failure bound to an HTTP status and,
// when known, the offending field.
type apiError struct {
	status int
	field  string
	err    error
}

func (e *apiError) Error() string { return e.err.Error() }

func badField(field, format string, args ...any) *apiError {
	return &apiError{status: http.StatusBadRequest, field: field, err: fmt.Errorf(format, args...)}
}

func writeAPIErr(w http.ResponseWriter, r *http.Request, e *apiError) {
	writeJSON(w, e.status, errorBody{
		Error: e.err.Error(), Field: e.field,
		RequestID: telemetry.RequestID(r.Context()),
	})
}

func handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// readySeries is the canned V-shaped series the readiness probe fits.
var readySeries = []float64{1, 0.97, 0.94, 0.92, 0.91, 0.915, 0.93, 0.95, 0.97, 0.99, 1.0, 1.005}

// handleReady answers readiness: it runs a cheap sanity fit of the
// quadratic bathtub on a canned series under a short deadline, proving
// the whole pipeline — series construction, optimizer, parameter
// validation — can still produce results.
func (a *api) handleReady(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := context.WithTimeout(r.Context(), 2*time.Second)
	defer cancel()
	series, err := timeseries.FromValues(readySeries)
	if err != nil {
		writeErr(w, r, http.StatusServiceUnavailable, err)
		return
	}
	start := time.Now()
	_, err = core.FitCtx(ctx, core.QuadraticModel{}, series, core.FitConfig{
		Starts: 2,
		Local:  optimize.Options{MaxIterations: 400},
	})
	if err != nil {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{
			"status": "unready", "error": err.Error(),
		})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":        "ready",
		"sanity_fit_ms": float64(time.Since(start).Microseconds()) / 1000,
	})
}

// handleVersion reports build information.
func handleVersion(w http.ResponseWriter, _ *http.Request) {
	out := map[string]string{"version": Version}
	if bi, ok := debug.ReadBuildInfo(); ok {
		out["go"] = bi.GoVersion
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				out["revision"] = s.Value
			case "vcs.time":
				out["build_time"] = s.Value
			}
		}
	}
	writeJSON(w, http.StatusOK, out)
}

// handleStats exposes the process-wide degradation counters.
func handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, monitor.Counters())
}

// modelNames lists every model the API accepts.
func modelNames() []string {
	names := []string{"quadratic", "competing-risks", "exp-bathtub"}
	for _, m := range core.StandardMixtures() {
		names = append(names, m.Name())
	}
	return names
}

func handleModels(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string][]string{"models": modelNames()})
}

// datasetSummary is one catalog row.
type datasetSummary struct {
	Name        string `json:"name"`
	Shape       string `json:"shape"`
	Months      int    `json:"months"`
	Description string `json:"description"`
}

func handleDatasets(w http.ResponseWriter, r *http.Request) {
	recs, err := dataset.Recessions()
	if err != nil {
		writeErr(w, r, http.StatusInternalServerError, err)
		return
	}
	out := make([]datasetSummary, 0, len(recs))
	for _, r := range recs {
		out = append(out, datasetSummary{
			Name: r.Name, Shape: r.Shape, Months: r.Months, Description: r.Description,
		})
	}
	writeJSON(w, http.StatusOK, map[string]any{"datasets": out})
}

// seriesBody is the JSON form of a series.
type seriesBody struct {
	Times  []float64 `json:"times,omitempty"`
	Values []float64 `json:"values"`
}

func handleDataset(w http.ResponseWriter, r *http.Request) {
	rec, err := dataset.ByName(r.PathValue("name"))
	if err != nil {
		writeErr(w, r, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"name":   rec.Name,
		"shape":  rec.Shape,
		"series": seriesBody{Times: rec.Series.Times(), Values: rec.Series.Values()},
	})
}

// modelRequest is the shared request body for fit/predict/metrics.
type modelRequest struct {
	Model string `json:"model"`
	seriesBody
	// TrainFraction controls the validation split (default 0.9).
	TrainFraction float64 `json:"train_fraction,omitempty"`
	// Level is the recovery target for /v1/predict (default 1.0).
	Level float64 `json:"level,omitempty"`
	// Steps is the forecast horizon length for /v1/forecast (default 6).
	Steps int `json:"steps,omitempty"`
	// Alpha is the forecast significance level (default 0.05).
	Alpha float64 `json:"alpha,omitempty"`
	// InterventionStart and InterventionAccel configure /v1/intervention.
	InterventionStart float64 `json:"intervention_start,omitempty"`
	InterventionAccel float64 `json:"intervention_accel,omitempty"`
}

// validate rejects out-of-range and non-finite request fields at the
// JSON boundary with field-specific messages, before anything reaches
// the fitters.
func (req *modelRequest) validate() *apiError {
	if len(req.Values) == 0 {
		return badField("values", "values required")
	}
	for i, v := range req.Values {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return badField("values", "values[%d] is %g; every value must be finite", i, v)
		}
	}
	if len(req.Times) > 0 {
		if len(req.Times) != len(req.Values) {
			return badField("times", "%d times for %d values; lengths must match", len(req.Times), len(req.Values))
		}
		for i, t := range req.Times {
			if math.IsNaN(t) || math.IsInf(t, 0) {
				return badField("times", "times[%d] is %g; every time must be finite", i, t)
			}
		}
	}
	if tf := req.TrainFraction; math.IsNaN(tf) || tf < 0 || tf >= 1 {
		return badField("train_fraction", "train_fraction %g outside [0, 1); 0 selects the default 0.9", tf)
	}
	if lv := req.Level; math.IsNaN(lv) || math.IsInf(lv, 0) || lv < 0 {
		return badField("level", "level %g must be finite and non-negative; 0 selects the default 1.0", lv)
	}
	if req.Steps < 0 || req.Steps > 10000 {
		return badField("steps", "steps %d outside [0, 10000]; 0 selects the default 6", req.Steps)
	}
	if al := req.Alpha; math.IsNaN(al) || al < 0 || al >= 1 {
		return badField("alpha", "alpha %g outside [0, 1); 0 selects the default 0.05", al)
	}
	if s := req.InterventionStart; math.IsNaN(s) || math.IsInf(s, 0) {
		return badField("intervention_start", "intervention_start must be finite")
	}
	if ac := req.InterventionAccel; math.IsNaN(ac) || math.IsInf(ac, 0) || ac < 0 {
		return badField("intervention_accel", "intervention_accel %g must be finite and non-negative", ac)
	}
	return nil
}

// decode parses and validates the shared request body.
func decode(r *http.Request) (*modelRequest, core.Model, *timeseries.Series, *apiError) {
	if faultinject.Enabled() {
		faultinject.Fire("server.decode")
		faultinject.Sleep(r.Context(), "server.decode.delay")
	}
	var req modelRequest
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			return nil, nil, nil, &apiError{
				status: http.StatusRequestEntityTooLarge,
				err:    fmt.Errorf("request body exceeds %d bytes", tooBig.Limit),
			}
		}
		return nil, nil, nil, &apiError{
			status: http.StatusBadRequest,
			err:    fmt.Errorf("decode request: %w", err),
		}
	}
	m, err := lookupModel(req.Model)
	if err != nil {
		return nil, nil, nil, &apiError{status: http.StatusBadRequest, field: "model", err: err}
	}
	if aerr := req.validate(); aerr != nil {
		return nil, nil, nil, aerr
	}
	var series *timeseries.Series
	if len(req.Times) > 0 {
		series, err = timeseries.NewSeries(req.Times, req.Values)
	} else {
		series, err = timeseries.FromValues(req.Values)
	}
	if err != nil {
		return nil, nil, nil, &apiError{
			status: http.StatusBadRequest, field: "values",
			err: fmt.Errorf("series: %w", err),
		}
	}
	return &req, m, series, nil
}

// lookupModel resolves an API model name.
func lookupModel(name string) (core.Model, error) {
	switch strings.ToLower(name) {
	case "quadratic":
		return core.QuadraticModel{}, nil
	case "competing-risks":
		return core.CompetingRisksModel{}, nil
	case "exp-bathtub":
		return core.ExpBathtubModel{}, nil
	case "":
		return nil, errors.New("model name required")
	}
	for _, m := range core.StandardMixtures() {
		if m.Name() == strings.ToLower(name) {
			return m, nil
		}
	}
	return nil, fmt.Errorf("unknown model %q (have %v)", name, modelNames())
}

// degradeBody annotates fit-family responses with the degradation-chain
// outcome; Degraded and Cached are always present so clients can branch
// on them. Cached is true when the response was served from the server
// fit cache instead of running the optimizer.
type degradeBody struct {
	Degraded          bool   `json:"degraded"`
	Cached            bool   `json:"cached"`
	RequestedModel    string `json:"requested_model,omitempty"`
	FallbackModel     string `json:"fallback_model,omitempty"`
	DegradationReason string `json:"degradation_reason,omitempty"`
}

func degradeFields(info *core.DegradeInfo) degradeBody {
	if info == nil {
		return degradeBody{}
	}
	db := degradeBody{Degraded: info.Degraded, RequestedModel: info.RequestedModel}
	if info.FallbackUsed {
		db.FallbackModel = info.UsedModel
	}
	if info.Degraded {
		db.DegradationReason = info.Reason
	}
	return db
}

// validateOutcome and fitOutcome are the units stored in the fit cache.
// They carry the degradation annotation alongside the result so a cached
// response reports the same degraded/fallback fields as the original.
type validateOutcome struct {
	v    *core.Validation
	info *core.DegradeInfo
}

type fitOutcome struct {
	fit  *core.FitResult
	info *core.DegradeInfo
}

// markCached annotates the request's structured log line with the
// cache-hit outcome; the monitor fit counters are deliberately left
// untouched, so /v1/stats keeps counting actual optimizer work.
func markCached(r *http.Request) {
	if meta := metaFrom(r.Context()); meta != nil {
		meta.outcome = "cached"
	}
}

// cachedValidate runs the validation pipeline (ValidateWithFallback)
// through the fit cache. The reported bool is true on a cache hit. Only
// successful outcomes are stored: errors, cancellations, and timeouts
// must re-run, not replay.
func (a *api) cachedValidate(r *http.Request, m core.Model, series *timeseries.Series, trainFraction float64) (*core.Validation, *core.DegradeInfo, bool, error) {
	key := fitCacheKey("validate", m.Name(), series, trainFraction)
	if hit, ok := a.cache.get(key); ok {
		o := hit.(*validateOutcome)
		markCached(r)
		return o.v, o.info, true, nil
	}
	v, info, err := core.ValidateWithFallback(r.Context(), m, series,
		core.ValidateConfig{TrainFraction: trainFraction}, a.policy())
	recordFitOutcome(r, info, err)
	if err == nil {
		a.cache.put(key, &validateOutcome{v: v, info: info})
	}
	return v, info, false, err
}

// cachedFit is cachedValidate for the plain-fit pipeline
// (FitWithFallback), shared by /v1/predict and /v1/forecast — the two
// endpoints fit identically, so a predict can warm the cache for a
// forecast of the same series and vice versa.
func (a *api) cachedFit(r *http.Request, m core.Model, series *timeseries.Series) (*core.FitResult, *core.DegradeInfo, bool, error) {
	key := fitCacheKey("fit", m.Name(), series)
	if hit, ok := a.cache.get(key); ok {
		o := hit.(*fitOutcome)
		markCached(r)
		return o.fit, o.info, true, nil
	}
	fit, info, err := core.FitWithFallback(r.Context(), m, series, core.FitConfig{}, a.policy())
	recordFitOutcome(r, info, err)
	if err == nil {
		a.cache.put(key, &fitOutcome{fit: fit, info: info})
	}
	return fit, info, false, err
}

// recordFitOutcome updates the monitor counters and the per-request log
// metadata from a degradation-chain outcome.
func recordFitOutcome(r *http.Request, info *core.DegradeInfo, err error) {
	monitor.CountFit()
	if info != nil {
		if info.Degraded && err == nil {
			monitor.CountFallback()
		}
		if info.PanicRecovered {
			monitor.CountPanicRecovery()
		}
	}
	if err != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
		monitor.CountCancellation()
	}
	if meta := metaFrom(r.Context()); meta != nil {
		switch {
		case err != nil:
			meta.outcome = "error"
		case info != nil && info.FallbackUsed:
			meta.outcome = "fallback"
			meta.fallback = info.UsedModel
		case info != nil && info.Degraded:
			meta.outcome = "retried"
		default:
			meta.outcome = "ok"
		}
	}
}

// writeFitErr maps a fitting-pipeline error to its HTTP status: client
// disconnects to 499, server-imposed deadlines to 504, contained panics
// to 500, and everything else (bad data, non-convergence with fallback
// disabled or exhausted) to 422.
func writeFitErr(w http.ResponseWriter, r *http.Request, err error) {
	switch {
	case errors.Is(err, context.Canceled):
		writeErr(w, r, statusClientClosedRequest, err)
	case errors.Is(err, context.DeadlineExceeded):
		writeErr(w, r, http.StatusGatewayTimeout, err)
	case errors.Is(err, optimize.ErrOptimizerPanic):
		writeErr(w, r, http.StatusInternalServerError, err)
	default:
		writeErr(w, r, http.StatusUnprocessableEntity, err)
	}
}

// fitResponse is the /v1/fit reply.
type fitResponse struct {
	Model      string             `json:"model"`
	ParamNames []string           `json:"param_names"`
	Params     []float64          `json:"params"`
	GoF        map[string]float64 `json:"gof"`
	EC         float64            `json:"empirical_coverage"`
	degradeBody
}

func (a *api) handleFit(w http.ResponseWriter, r *http.Request) {
	req, m, series, aerr := decode(r)
	if aerr != nil {
		writeAPIErr(w, r, aerr)
		return
	}
	v, info, cached, err := a.cachedValidate(r, m, series, req.TrainFraction)
	if err != nil {
		writeFitErr(w, r, err)
		return
	}
	db := degradeFields(info)
	db.Cached = cached
	writeJSON(w, http.StatusOK, fitResponse{
		Model:      v.Fit.Model.Name(),
		ParamNames: v.Fit.Model.ParamNames(),
		Params:     v.Fit.Params,
		GoF: map[string]float64{
			"sse":   v.GoF.SSE,
			"pmse":  v.GoF.PMSE,
			"r2":    v.GoF.R2,
			"r2adj": v.GoF.R2Adj,
			"aic":   v.GoF.AIC,
			"bic":   v.GoF.BIC,
		},
		EC:          v.EC,
		degradeBody: db,
	})
}

// predictResponse is the /v1/predict reply.
type predictResponse struct {
	Model            string  `json:"model"`
	MinimumTime      float64 `json:"minimum_time"`
	MinimumValue     float64 `json:"minimum_value"`
	RecoveryLevel    float64 `json:"recovery_level"`
	RecoveryTime     float64 `json:"recovery_time"`
	RecoveryReached  bool    `json:"recovery_reached"`
	RecoveryErrorMsg string  `json:"recovery_error,omitempty"`
	degradeBody
}

func (a *api) handlePredict(w http.ResponseWriter, r *http.Request) {
	req, m, series, aerr := decode(r)
	if aerr != nil {
		writeAPIErr(w, r, aerr)
		return
	}
	fit, info, cached, err := a.cachedFit(r, m, series)
	if err != nil {
		writeFitErr(w, r, err)
		return
	}
	_, horizon := series.Span()
	td, err := core.ModelMinimum(fit, horizon)
	if err != nil {
		writeErr(w, r, http.StatusUnprocessableEntity, err)
		return
	}
	level := req.Level
	if level == 0 {
		level = 1
	}
	db := degradeFields(info)
	db.Cached = cached
	resp := predictResponse{
		Model:         fit.Model.Name(),
		MinimumTime:   td,
		MinimumValue:  fit.Eval(td),
		RecoveryLevel: level,
		RecoveryTime:  math.NaN(),
		degradeBody:   db,
	}
	if tr, err := core.RecoveryTime(fit, level, horizon); err == nil {
		resp.RecoveryTime = tr
		resp.RecoveryReached = true
	} else {
		resp.RecoveryErrorMsg = err.Error()
	}
	// NaN does not survive JSON; encode unreached recovery as null via a
	// pointer-free convention: omit by setting to -1.
	if math.IsNaN(resp.RecoveryTime) {
		resp.RecoveryTime = -1
	}
	writeJSON(w, http.StatusOK, resp)
}

// metricsResponse is the /v1/metrics reply.
type metricsResponse struct {
	Model   string                 `json:"model"`
	Metrics []metricComparisonBody `json:"metrics"`
	degradeBody
}

type metricComparisonBody struct {
	Name          string  `json:"name"`
	Actual        float64 `json:"actual"`
	Predicted     float64 `json:"predicted"`
	RelativeError float64 `json:"relative_error"`
}

func (a *api) handleMetrics(w http.ResponseWriter, r *http.Request) {
	req, m, series, aerr := decode(r)
	if aerr != nil {
		writeAPIErr(w, r, aerr)
		return
	}
	v, info, cached, err := a.cachedValidate(r, m, series, req.TrainFraction)
	if err != nil {
		writeFitErr(w, r, err)
		return
	}
	rows, err := core.CompareMetrics(v, series, core.MetricsConfig{})
	if err != nil {
		writeErr(w, r, http.StatusUnprocessableEntity, err)
		return
	}
	db := degradeFields(info)
	db.Cached = cached
	out := metricsResponse{Model: v.Fit.Model.Name(), degradeBody: db}
	for _, row := range rows {
		out.Metrics = append(out.Metrics, metricComparisonBody{
			Name:          row.Kind.String(),
			Actual:        jsonSafe(row.Actual),
			Predicted:     jsonSafe(row.Predicted),
			RelativeError: jsonSafe(row.RelErr),
		})
	}
	writeJSON(w, http.StatusOK, out)
}

// jsonSafe maps NaN/Inf (unrepresentable in JSON) to signed sentinel
// values the client can detect.
func jsonSafe(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return -999999
	}
	return v
}

// forecastResponse is the /v1/forecast reply.
type forecastResponse struct {
	Model string    `json:"model"`
	Times []float64 `json:"times"`
	Mean  []float64 `json:"mean"`
	Lower []float64 `json:"lower"`
	Upper []float64 `json:"upper"`
	Sigma float64   `json:"sigma"`
	degradeBody
}

func (a *api) handleForecast(w http.ResponseWriter, r *http.Request) {
	req, m, series, aerr := decode(r)
	if aerr != nil {
		writeAPIErr(w, r, aerr)
		return
	}
	fit, info, cached, err := a.cachedFit(r, m, series)
	if err != nil {
		writeFitErr(w, r, err)
		return
	}
	steps := req.Steps
	if steps <= 0 {
		steps = 6
	}
	alpha := req.Alpha
	if alpha == 0 {
		alpha = 0.05
	}
	fc, err := core.ForecastHorizon(fit, steps, alpha)
	if err != nil {
		writeErr(w, r, http.StatusUnprocessableEntity, err)
		return
	}
	db := degradeFields(info)
	db.Cached = cached
	writeJSON(w, http.StatusOK, forecastResponse{
		Model: fit.Model.Name(),
		Times: fc.Times, Mean: fc.Mean, Lower: fc.Lower, Upper: fc.Upper,
		Sigma:       fc.Sigma,
		degradeBody: db,
	})
}

// interventionResponse is the /v1/intervention reply.
type interventionResponse struct {
	Model              string  `json:"model"`
	BaselineRecovery   float64 `json:"baseline_recovery"`
	IntervenedRecovery float64 `json:"intervened_recovery"`
	RecoverySaved      float64 `json:"recovery_saved"`
	PreservedGain      float64 `json:"performance_preserved_gain"`
	degradeBody
}

func (a *api) handleIntervention(w http.ResponseWriter, r *http.Request) {
	req, m, series, aerr := decode(r)
	if aerr != nil {
		writeAPIErr(w, r, aerr)
		return
	}
	iv := core.Intervention{Start: req.InterventionStart, Accel: req.InterventionAccel}
	if iv.Accel == 0 {
		iv.Accel = 2 // default scenario: double the recovery speed
	}
	fit, info, err := core.FitWithFallback(r.Context(), m, series, core.FitConfig{}, a.policy())
	recordFitOutcome(r, info, err)
	if err != nil {
		writeFitErr(w, r, err)
		return
	}
	level := req.Level
	if level == 0 {
		level = 1
	}
	_, horizon := series.Span()
	impact, err := core.EvaluateIntervention(fit, iv, level, horizon)
	if err != nil {
		writeErr(w, r, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, http.StatusOK, interventionResponse{
		Model:              fit.Model.Name(),
		BaselineRecovery:   jsonSafe(impact.BaselineRecovery),
		IntervenedRecovery: jsonSafe(impact.IntervenedRecovery),
		RecoverySaved:      jsonSafe(impact.RecoverySaved),
		PreservedGain: jsonSafe(impact.Intervened[core.PerformancePreserved] -
			impact.Baseline[core.PerformancePreserved]),
		degradeBody: degradeFields(info),
	})
}
