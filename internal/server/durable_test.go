package server

// Durability integration at the HTTP layer: the replaying readiness
// phase, and a full create → observe → graceful restart → resume round
// trip through a real durable.Log.

import (
	"bufio"
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"resilience/internal/durable"
	"resilience/internal/stream"
)

func TestReadyzGatesOnReplay(t *testing.T) {
	wlog, err := durable.Open(t.TempDir(), durable.Options{Sync: durable.SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	defer wlog.Close()
	app := NewApp(Config{SessionStore: wlog})
	ts := httptest.NewServer(app.Handler)
	defer ts.Close()

	// Durable app, recovery not finished: alive but unready, with the
	// phase naming why.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	decodeInto(t, resp, http.StatusOK, nil)
	var body map[string]string
	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	decodeInto(t, resp, http.StatusServiceUnavailable, &body)
	if body["status"] != "unready" || body["phase"] != "replaying" {
		t.Fatalf("replaying readyz body = %v", body)
	}

	if _, _, err := wlog.Recover(); err != nil {
		t.Fatal(err)
	}
	app.MarkReady()
	var ready map[string]any
	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	decodeInto(t, resp, http.StatusOK, &ready)
	if ready["status"] != "ready" || ready["phase"] != "ready" {
		t.Fatalf("post-recovery readyz body = %v", ready)
	}
}

func TestMemoryOnlyAppIsReadyImmediately(t *testing.T) {
	ts := httptest.NewServer(NewHandler(Config{}))
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	decodeInto(t, resp, http.StatusOK, nil)
}

// startDurableApp boots an app against dir the way resil-server does:
// open, recover, restore, mark ready.
func startDurableApp(t *testing.T, dir string) (*durable.Log, *App, *httptest.Server) {
	t.Helper()
	wlog, err := durable.Open(dir, durable.Options{Sync: durable.SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	app := NewApp(Config{SessionStore: wlog, SnapshotEvery: 4})
	states, _, err := wlog.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := app.Streams.Restore(states); err != nil {
		t.Fatal(err)
	}
	app.MarkReady()
	return wlog, app, httptest.NewServer(app.Handler)
}

func TestDurableSessionSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	wlog, app, ts := startDurableApp(t, dir)

	snap := createTestSession(t, ts.URL, "quadratic", stream.MonitorConfig{})
	values := []float64{1, 1, 1, 0.97, 0.95, 0.93, 0.92, 0.93, 0.95, 0.97, 0.99, 1.0}
	var obsBody struct {
		Session stream.Snapshot `json:"session"`
		Updates []stream.Update `json:"updates"`
	}
	resp := postJSON(t, ts.URL+"/v1/sessions/"+snap.ID+"/observe", map[string]any{"values": values})
	decodeInto(t, resp, http.StatusOK, &obsBody)
	want := obsBody.Session

	// Graceful restart in the entry point's order: drain streams (writes
	// final snapshots), close the WAL, close the listener.
	if err := app.StreamShutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := wlog.Close(); err != nil {
		t.Fatal(err)
	}
	ts.Close()

	wlog2, _, ts2 := startDurableApp(t, dir)
	defer func() { ts2.Close(); wlog2.Close() }()

	var got stream.Snapshot
	resp, err := http.Get(ts2.URL + "/v1/sessions/" + snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	decodeInto(t, resp, http.StatusOK, &got)
	if got.Phase != want.Phase || got.Observations != want.Observations || got.HistoryLen != want.HistoryLen {
		t.Errorf("recovered %s/%d/%d, want %s/%d/%d",
			got.Phase, got.Observations, got.HistoryLen,
			want.Phase, want.Observations, want.HistoryLen)
	}
	if want.LastFit != nil {
		if got.LastFit == nil || got.LastFit.Seq != want.LastFit.Seq {
			t.Fatalf("fit lost across restart: %+v vs %+v", got.LastFit, want.LastFit)
		}
		for i, p := range want.LastFit.Params {
			if got.LastFit.Params[i] != p {
				t.Errorf("warm param %d = %g, want %g", i, got.LastFit.Params[i], p)
			}
		}
	}

	// The recovered session keeps observing over HTTP.
	resp = postJSON(t, ts2.URL+"/v1/sessions/"+snap.ID+"/observe", map[string]any{"values": []float64{1.0}})
	decodeInto(t, resp, http.StatusOK, &obsBody)
	if n := obsBody.Updates[0].Seq; n != want.Observations+1 {
		t.Errorf("post-restart seq = %d, want %d", n, want.Observations+1)
	}

	// The SSE feed's opening snapshot event carries the recovery-relevant
	// state: history length and the last fit, so a reconnecting client
	// can resync without replaying its own data.
	sseResp, err := http.Get(ts2.URL + "/v1/sessions/" + snap.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer sseResp.Body.Close()
	sc := bufio.NewScanner(sseResp.Body)
	var event, data string
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "event: ") {
			event = strings.TrimPrefix(line, "event: ")
		}
		if strings.HasPrefix(line, "data: ") {
			data = strings.TrimPrefix(line, "data: ")
			break
		}
	}
	if event != "snapshot" {
		t.Fatalf("first SSE event = %q, want snapshot", event)
	}
	if !strings.Contains(data, `"history_len":13`) {
		t.Errorf("snapshot event missing history_len: %s", data)
	}
	if want.LastFit != nil && !strings.Contains(data, `"last_fit"`) {
		t.Errorf("snapshot event missing last_fit: %s", data)
	}
}
