package server

import (
	"sync"
	"sync/atomic"
	"time"

	"resilience/internal/telemetry"
)

// sloWindow is the rolling window burn rates are computed over, split
// into sloCells cells so old traffic ages out smoothly instead of the
// whole window resetting at once.
const (
	sloWindow = 5 * time.Minute
	sloCells  = 30
)

// sloCell accumulates one window cell's worth of traffic.
type sloCell struct {
	start    time.Time
	requests uint64
	errors   uint64   // status >= 500
	slow     uint64   // latency above the p99 target
	latency  []uint64 // per-bucket counts over sloBounds, +Inf last
}

// sloTracker measures the server's own SLO compliance over a rolling
// window: error rate against -slo-error-rate and tail latency against
// -slo-p99. Both targets are optional; with neither set the tracker
// still maintains window counts (the stats view shows them) but burn
// rate and budget are reported as disabled.
type sloTracker struct {
	p99Target float64 // seconds; 0 disables the latency SLO
	errTarget float64 // fraction of requests; 0 disables the error SLO

	bounds []float64
	mu     sync.Mutex
	cells  [sloCells]sloCell
}

func newSLOTracker(p99Target, errTarget float64) *sloTracker {
	t := &sloTracker{
		p99Target: p99Target,
		errTarget: errTarget,
		bounds:    telemetry.DurationBuckets(),
	}
	return t
}

// observe records one finished request. Called from the instrumentation
// middleware for every request, so it is one short critical section.
func (t *sloTracker) observe(status int, seconds float64) {
	if t == nil {
		return
	}
	now := time.Now()
	t.mu.Lock()
	c := t.cellFor(now)
	c.requests++
	if status >= 500 {
		c.errors++
	}
	if t.p99Target > 0 && seconds > t.p99Target {
		c.slow++
	}
	c.latency[bucketFor(t.bounds, seconds)]++
	t.mu.Unlock()
}

// cellFor rotates to (resetting if stale) and returns the cell owning
// now. Callers hold t.mu.
func (t *sloTracker) cellFor(now time.Time) *sloCell {
	cellDur := sloWindow / sloCells
	idx := int(now.UnixNano()/int64(cellDur)) % sloCells
	c := &t.cells[idx]
	cellStart := now.Truncate(cellDur)
	if !c.start.Equal(cellStart) {
		*c = sloCell{start: cellStart, latency: make([]uint64, len(t.bounds)+1)}
	}
	return c
}

// bucketFor mirrors Histogram.bucketIndex for the tracker's local
// latency counts.
func bucketFor(bounds []float64, v float64) int {
	lo, hi := 0, len(bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if v <= bounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// sloSnapshot is the JSON view of the tracker, served on /v1/stats and
// (when targets are set) in /readyz detail.
type sloSnapshot struct {
	Enabled          bool    `json:"enabled"`
	P99TargetSeconds float64 `json:"p99_target_seconds,omitempty"`
	ErrorRateTarget  float64 `json:"error_rate_target,omitempty"`
	WindowSeconds    float64 `json:"window_seconds"`
	Requests         uint64  `json:"requests"`
	Errors           uint64  `json:"errors"`
	ErrorRate        float64 `json:"error_rate"`
	P99Seconds       float64 `json:"p99_seconds"`
	SlowFraction     float64 `json:"slow_fraction"`
	// BurnRate is how fast the error budget is being consumed: 1.0
	// means exactly on target, >1 means the budget will be exhausted
	// before the window ends. It is the max of the error-rate burn
	// (error_rate / target) and the latency burn (slow_fraction / 0.01,
	// since a p99 target budgets 1% of requests above the bar).
	BurnRate float64 `json:"burn_rate"`
	// BudgetRemaining is the unburned fraction of the window's error
	// budget, clamped to [0, 1].
	BudgetRemaining float64 `json:"budget_remaining"`
}

// snapshot computes the rolling-window view at now.
func (t *sloTracker) snapshot() sloSnapshot {
	if t == nil {
		return sloSnapshot{WindowSeconds: sloWindow.Seconds()}
	}
	now := time.Now()
	lat := make([]uint64, len(t.bounds)+1)
	var requests, errors, slow uint64

	t.mu.Lock()
	for i := range t.cells {
		c := &t.cells[i]
		if c.start.IsZero() || now.Sub(c.start) > sloWindow {
			continue
		}
		requests += c.requests
		errors += c.errors
		slow += c.slow
		for j, n := range c.latency {
			lat[j] += n
		}
	}
	t.mu.Unlock()

	s := sloSnapshot{
		Enabled:          t.p99Target > 0 || t.errTarget > 0,
		P99TargetSeconds: t.p99Target,
		ErrorRateTarget:  t.errTarget,
		WindowSeconds:    sloWindow.Seconds(),
		Requests:         requests,
		Errors:           errors,
	}
	if requests == 0 {
		s.BudgetRemaining = 1
		return s
	}
	s.ErrorRate = float64(errors) / float64(requests)
	s.SlowFraction = float64(slow) / float64(requests)
	s.P99Seconds = quantileFromCounts(t.bounds, lat, 0.99)

	burn := 0.0
	if t.errTarget > 0 {
		burn = s.ErrorRate / t.errTarget
	}
	if t.p99Target > 0 {
		// A p99 target grants a 1% slow-request budget.
		if b := s.SlowFraction / 0.01; b > burn {
			burn = b
		}
	}
	s.BurnRate = burn
	s.BudgetRemaining = 1 - burn
	if s.BudgetRemaining < 0 {
		s.BudgetRemaining = 0
	}
	return s
}

// quantileFromCounts is Histogram.Quantile over a plain bucket-count
// slice (non-cumulative, +Inf last).
func quantileFromCounts(bounds []float64, counts []uint64, q float64) float64 {
	var total uint64
	for _, n := range counts {
		total += n
	}
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum uint64
	lower := 0.0
	for i, bound := range bounds {
		cum += counts[i]
		if float64(cum) >= rank {
			inBucket := float64(counts[i])
			if inBucket == 0 {
				return bound
			}
			return lower + (bound-lower)*(rank-float64(cum)+inBucket)/inBucket
		}
		lower = bound
	}
	return bounds[len(bounds)-1]
}

// currentSLO points the process-wide SLO gauges at the most recently
// built App's tracker. Gauge callbacks registered on the Default
// registry outlive any one App (tests build many), so they read through
// this pointer instead of closing over a tracker.
var currentSLO atomic.Pointer[sloTracker]

var sloGaugesOnce sync.Once

func registerSLOGauges() {
	sloGaugesOnce.Do(func() {
		telemetry.RegisterFamily("resil_slo_burn_rate", "gauge",
			"Error-budget burn rate over the rolling window (1.0 = on target).")
		telemetry.RegisterFamily("resil_slo_error_budget_remaining", "gauge",
			"Unburned fraction of the rolling-window error budget.")
		telemetry.RegisterFamily("resil_slo_window_p99_seconds", "gauge",
			"p99 request latency over the rolling SLO window.")
		telemetry.RegisterFamily("resil_slo_window_error_rate", "gauge",
			"5xx rate over the rolling SLO window.")
		telemetry.GetOrCreateGaugeFunc("resil_slo_burn_rate", func() float64 {
			return currentSLO.Load().snapshot().BurnRate
		})
		telemetry.GetOrCreateGaugeFunc("resil_slo_error_budget_remaining", func() float64 {
			return currentSLO.Load().snapshot().BudgetRemaining
		})
		telemetry.GetOrCreateGaugeFunc("resil_slo_window_p99_seconds", func() float64 {
			return currentSLO.Load().snapshot().P99Seconds
		})
		telemetry.GetOrCreateGaugeFunc("resil_slo_window_error_rate", func() float64 {
			return currentSLO.Load().snapshot().ErrorRate
		})
	})
}
