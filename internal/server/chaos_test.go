package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"resilience/internal/faultinject"
	"resilience/internal/monitor"
	"resilience/internal/rng"
)

// TestChaos hammers a live server with a hostile request mix — valid
// fits, malformed JSON, oversized bodies, cancelled-mid-flight clients,
// injected panics, and NaN-poisoned objectives — all concurrently. The
// process must never crash, every completed response must be a
// well-formed JSON envelope, and the goroutine count must return to
// baseline afterwards.
func TestChaos(t *testing.T) {
	t.Cleanup(faultinject.Clear)
	faultinject.Clear()
	// Faults are keyed by model so each request category picks its poison:
	//   exp-bathtub      → panic inside the fit (recover + fallback)
	//   exp-weibull      → NaN-poisoned objective (non-convergence + fallback)
	//   competing-risks  → injected delay (lets clients cancel mid-fit)
	for site, mode := range map[string]string{
		"core.fit.exp-bathtub":           "panic",
		"core.fit.objective.exp-weibull": "nan",
		"core.fit.delay.competing-risks": "delay:2s",
	} {
		if err := faultinject.Arm(site, mode); err != nil {
			t.Fatal(err)
		}
	}
	monitor.ResetCounters()
	t.Cleanup(monitor.ResetCounters)

	srv := httptest.NewServer(NewHandler(Config{
		FitTimeout: 10 * time.Second,
		Logger:     slog.New(slog.NewTextHandler(io.Discard, nil)),
	}))
	defer srv.Close()
	client := &http.Client{Transport: &http.Transport{}}
	defer client.CloseIdleConnections()
	baseline := runtime.NumGoroutine()

	validBody := func(model string) []byte {
		b, _ := json.Marshal(map[string]any{"model": model, "values": testSeries()})
		return b
	}
	oversize := []byte(fmt.Sprintf(`{"model":"quadratic","values":[%s1]}`,
		strings.Repeat("1,", maxBodyBytes/2)))

	type probe struct {
		name      string
		path      string
		body      []byte
		cancelIn  time.Duration // >0: client abandons the request
		wantOneOf []int         // acceptable statuses for completed responses
	}
	probes := []probe{
		{name: "valid", path: "/v1/fit", body: validBody("quadratic"), wantOneOf: []int{200}},
		{name: "valid-predict", path: "/v1/predict", body: validBody("quadratic"), wantOneOf: []int{200}},
		{name: "malformed", path: "/v1/fit", body: []byte("{definitely not json"), wantOneOf: []int{400}},
		{name: "oversize", path: "/v1/fit", body: oversize, wantOneOf: []int{413}},
		{name: "unknown-model", path: "/v1/fit", body: validBody("perceptron"), wantOneOf: []int{400}},
		{name: "panic-injected", path: "/v1/fit", body: validBody("exp-bathtub"), wantOneOf: []int{200}},
		{name: "nan-poisoned", path: "/v1/fit", body: validBody("exp-weibull"), wantOneOf: []int{200}},
		{name: "cancelled", path: "/v1/fit", body: validBody("competing-risks"), cancelIn: 30 * time.Millisecond},
	}

	rounds := 16 // 16 rounds × 8 categories = 128 hostile requests
	if testing.Short() {
		rounds = 4
	}

	var (
		mu       sync.Mutex
		failures []string
	)
	report := func(format string, args ...any) {
		mu.Lock()
		failures = append(failures, fmt.Sprintf(format, args...))
		mu.Unlock()
	}

	var wg sync.WaitGroup
	sem := make(chan struct{}, 16)
	for round := 0; round < rounds; round++ {
		for _, p := range probes {
			wg.Add(1)
			go func(p probe, seed int64) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()

				ctx := context.Background()
				if p.cancelIn > 0 {
					// Jitter the cancellation point so requests die at
					// different pipeline stages.
					jitter := time.Duration(rng.New(uint64(seed)).Intn(int(p.cancelIn)))
					var cancel context.CancelFunc
					ctx, cancel = context.WithTimeout(ctx, p.cancelIn+jitter)
					defer cancel()
				}
				req, err := http.NewRequestWithContext(ctx, http.MethodPost, srv.URL+p.path, bytes.NewReader(p.body))
				if err != nil {
					report("%s: build request: %v", p.name, err)
					return
				}
				resp, err := client.Do(req)
				if err != nil {
					if p.cancelIn > 0 {
						return // abandoning the request is this probe's point
					}
					report("%s: transport error: %v", p.name, err)
					return
				}
				defer resp.Body.Close()
				raw, err := io.ReadAll(resp.Body)
				if err != nil {
					report("%s: read body: %v", p.name, err)
					return
				}
				var envelope map[string]any
				if err := json.Unmarshal(raw, &envelope); err != nil {
					report("%s: status %d body not JSON: %v (%.80s)", p.name, resp.StatusCode, err, raw)
					return
				}
				ok := false
				for _, want := range p.wantOneOf {
					ok = ok || resp.StatusCode == want
				}
				if !ok {
					report("%s: status %d, want one of %v (%v)", p.name, resp.StatusCode, p.wantOneOf, envelope)
					return
				}
				if resp.StatusCode >= 400 {
					if _, has := envelope["error"]; !has {
						report("%s: %d envelope missing error field", p.name, resp.StatusCode)
					}
				}
			}(p, int64(round)*31+1)
		}
	}
	wg.Wait()

	for _, f := range failures {
		t.Error(f)
	}

	// Every worker must wind down: the injected delays honor request
	// contexts, so nothing should still be running. Idle keep-alive
	// connections are torn down first so only real leaks remain.
	deadline := time.Now().Add(10 * time.Second)
	for {
		client.CloseIdleConnections()
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline+3 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked: %d > baseline %d\n%s",
				runtime.NumGoroutine(), baseline, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(50 * time.Millisecond)
	}

	// The faults must have been observed: panics contained, fallbacks
	// taken, cancellations recorded — and the server is still alive.
	c := monitor.Counters()
	if c.PanicRecoveries == 0 || c.Fallbacks == 0 || c.Cancellations == 0 {
		t.Errorf("chaos left no trace in the counters: %+v", c)
	}

	// The same evidence must be visible to Prometheus: scrape the live
	// server and check the chaos-path series are non-zero.
	scrape := func() map[string]float64 {
		resp, err := client.Get(srv.URL + "/metrics")
		if err != nil {
			t.Fatalf("scrape /metrics: %v", err)
		}
		defer resp.Body.Close()
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("read /metrics: %v", err)
		}
		out := map[string]float64{}
		for _, line := range strings.Split(string(raw), "\n") {
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			i := strings.LastIndexByte(line, ' ')
			if i < 0 {
				t.Errorf("malformed /metrics line %q", line)
				continue
			}
			var v float64
			if _, err := fmt.Sscanf(line[i+1:], "%g", &v); err == nil {
				out[line[:i]] = v
			}
		}
		return out
	}
	series := scrape()
	for _, name := range []string{
		"resil_panic_recoveries_total",
		"resil_cancellations_total",
		"resil_fallbacks_total",
		"resil_chain_panics_total",
		"resil_chain_cancellations_total",
		"resil_fallback_depth_count",
		`resil_fit_duration_seconds_count{model="quadratic"}`,
		`resil_http_requests_total{route="/v1/fit",status="200"}`,
	} {
		if v, ok := series[name]; !ok || v == 0 {
			t.Errorf("chaos left no trace at /metrics: %s = %g (present %v)", name, v, ok)
		}
	}
	rec, body := doJSON(t, NewHandler(Config{Logger: slog.New(slog.NewTextHandler(io.Discard, nil))}),
		http.MethodGet, "/healthz", nil)
	if rec.Code != http.StatusOK || body["status"] != "ok" {
		t.Errorf("server unhealthy after chaos: %d %v", rec.Code, body)
	}
}
