package server

import (
	"encoding/json"
	"net/http"
	"testing"
)

// The fit cache itself lives in internal/service (see its tests); these
// tests drive the cache through the full HTTP path.

// jsonStr renders a decoded JSON fragment back to canonical text so two
// response fields can be compared structurally.
func jsonStr(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestFitEndpointCaching drives the full HTTP path: the first request
// runs the optimizer, the second identical request must be answered from
// the cache with "cached": true, and a different body must miss.
func TestFitEndpointCaching(t *testing.T) {
	h := NewHandler(Config{FitCacheSize: 8})
	body := map[string]any{"model": "quadratic", "values": testSeries()}

	rec, resp := doJSON(t, h, http.MethodPost, "/v1/fit", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("first fit: %d %v", rec.Code, resp)
	}
	if resp["cached"] != false {
		t.Errorf("first fit cached = %v, want false", resp["cached"])
	}

	rec, cachedResp := doJSON(t, h, http.MethodPost, "/v1/fit", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("second fit: %d %v", rec.Code, cachedResp)
	}
	if cachedResp["cached"] != true {
		t.Errorf("second fit cached = %v, want true", cachedResp["cached"])
	}
	// The cached response must be byte-for-byte the same fit apart from
	// the cached marker.
	for _, key := range []string{"model", "params", "gof"} {
		if got, want := jsonStr(t, cachedResp[key]), jsonStr(t, resp[key]); got != want {
			t.Errorf("cached %s = %s, want %s", key, got, want)
		}
	}

	other := map[string]any{"model": "exp-exp", "values": testSeries()}
	rec, resp = doJSON(t, h, http.MethodPost, "/v1/fit", other)
	if rec.Code != http.StatusOK {
		t.Fatalf("other model: %d %v", rec.Code, resp)
	}
	if resp["cached"] != false {
		t.Errorf("different model served from cache: %v", resp)
	}
}

// TestFitCacheSharedAcrossAliases verifies the satellite fix: the cache
// key is built from the canonical registry name, so "Quadratic",
// "quadratic", and the "quad" alias share one cache entry over HTTP.
func TestFitCacheSharedAcrossAliases(t *testing.T) {
	h := NewHandler(Config{FitCacheSize: 8})

	rec, resp := doJSON(t, h, http.MethodPost, "/v1/fit",
		map[string]any{"model": "Quadratic", "values": testSeries()})
	if rec.Code != http.StatusOK {
		t.Fatalf("first fit: %d %v", rec.Code, resp)
	}
	if resp["cached"] != false {
		t.Errorf("first fit cached = %v, want false", resp["cached"])
	}
	for _, spelling := range []string{"quadratic", "QUAD", " quad "} {
		rec, resp := doJSON(t, h, http.MethodPost, "/v1/fit",
			map[string]any{"model": spelling, "values": testSeries()})
		if rec.Code != http.StatusOK {
			t.Fatalf("%q fit: %d %v", spelling, rec.Code, resp)
		}
		if resp["cached"] != true {
			t.Errorf("%q missed the cache warmed by \"Quadratic\"", spelling)
		}
		if resp["model"] != "quadratic" {
			t.Errorf("%q reported model %v, want canonical \"quadratic\"", spelling, resp["model"])
		}
	}
}

// TestPredictForecastShareFitCache verifies the shared plain-fit entry:
// a predict warms the cache for a forecast of the same series.
func TestPredictForecastShareFitCache(t *testing.T) {
	h := NewHandler(Config{FitCacheSize: 8})
	body := map[string]any{"model": "quadratic", "values": testSeries()}

	rec, resp := doJSON(t, h, http.MethodPost, "/v1/predict", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("predict: %d %v", rec.Code, resp)
	}
	if resp["cached"] != false {
		t.Errorf("first predict cached = %v, want false", resp["cached"])
	}
	rec, resp = doJSON(t, h, http.MethodPost, "/v1/forecast", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("forecast: %d %v", rec.Code, resp)
	}
	if resp["cached"] != true {
		t.Errorf("forecast after predict cached = %v, want true", resp["cached"])
	}
}

func TestFitCachingDisabledByDefault(t *testing.T) {
	h := Handler() // zero Config: no cache
	body := map[string]any{"model": "quadratic", "values": testSeries()}
	for i := 0; i < 2; i++ {
		rec, resp := doJSON(t, h, http.MethodPost, "/v1/fit", body)
		if rec.Code != http.StatusOK {
			t.Fatalf("fit %d: %d %v", i, rec.Code, resp)
		}
		if resp["cached"] != false {
			t.Errorf("fit %d cached = %v with caching disabled", i, resp["cached"])
		}
	}
}
