package server

import (
	"net/http"
	"testing"

	"resilience/internal/registry"
)

// TestBatchMatchesSequentialFits is the /v1/batch acceptance criterion:
// N jobs fit concurrently must be bit-identical to N sequential /v1/fit
// calls (meaningful under -race). Caching is disabled on both handlers
// so every job genuinely runs the optimizer.
func TestBatchMatchesSequentialFits(t *testing.T) {
	models := []string{"quadratic", "competing-risks", "weibull-exp", "exp-exp"}
	jobs := make([]map[string]any, 0, 8)
	for i := 0; i < 8; i++ {
		vals := testSeries()
		for j := range vals {
			vals[j] += 0.001 * float64(i)
		}
		jobs = append(jobs, map[string]any{"model": models[i%len(models)], "values": vals})
	}

	seq := Handler()
	want := make([]map[string]any, len(jobs))
	for i, job := range jobs {
		rec, body := doJSON(t, seq, http.MethodPost, "/v1/fit", job)
		if rec.Code != http.StatusOK {
			t.Fatalf("sequential fit %d: %d %v", i, rec.Code, body)
		}
		want[i] = body
	}

	rec, body := doJSON(t, Handler(), http.MethodPost, "/v1/batch", map[string]any{
		"jobs":    jobs,
		"workers": 4,
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("batch: %d %v", rec.Code, body)
	}
	if failed, _ := body["failed"].(float64); failed != 0 {
		t.Fatalf("batch failed jobs: %v", body)
	}
	results, ok := body["results"].([]any)
	if !ok || len(results) != len(jobs) {
		t.Fatalf("results = %v", body["results"])
	}
	for i, raw := range results {
		item, ok := raw.(map[string]any)
		if !ok {
			t.Fatalf("result %d not an object: %v", i, raw)
		}
		if idx, _ := item["index"].(float64); int(idx) != i {
			t.Errorf("result %d carries index %v", i, item["index"])
		}
		// Bit-identical: the JSON-decoded params, gof, and model fields
		// must match the sequential fit exactly.
		for _, key := range []string{"model", "params", "gof", "empirical_coverage", "degraded"} {
			if got, wantV := jsonStr(t, item[key]), jsonStr(t, want[i][key]); got != wantV {
				t.Errorf("job %d %s = %s, sequential fit %s", i, key, got, wantV)
			}
		}
	}
}

// Per-job failures surface inline with the offending field; good jobs in
// the same request still succeed.
func TestBatchPerJobErrors(t *testing.T) {
	rec, body := doJSON(t, Handler(), http.MethodPost, "/v1/batch", map[string]any{
		"jobs": []map[string]any{
			{"model": "quadratic", "values": testSeries()},
			{"model": "no-such-model", "values": testSeries()},
			{"model": "quadratic", "values": []float64{}},
		},
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("batch: %d %v", rec.Code, body)
	}
	if failed, _ := body["failed"].(float64); failed != 2 {
		t.Errorf("failed = %v, want 2", body["failed"])
	}
	results := body["results"].([]any)
	good := results[0].(map[string]any)
	if good["model"] != "quadratic" || good["error"] != nil {
		t.Errorf("good job = %v", good)
	}
	badModel := results[1].(map[string]any)
	if badModel["field"] != "model" || badModel["error"] == nil {
		t.Errorf("unknown-model job = %v", badModel)
	}
	badValues := results[2].(map[string]any)
	if badValues["field"] != "values" {
		t.Errorf("empty-values job = %v", badValues)
	}
}

func TestBatchRejectsBadEnvelope(t *testing.T) {
	h := Handler()
	rec, body := doJSON(t, h, http.MethodPost, "/v1/batch", map[string]any{"jobs": []any{}})
	if rec.Code != http.StatusBadRequest || body["field"] != "jobs" {
		t.Errorf("empty jobs: %d %v", rec.Code, body)
	}
	rec, body = doJSON(t, h, http.MethodPost, "/v1/batch", map[string]any{
		"jobs":    []map[string]any{{"model": "quadratic", "values": testSeries()}},
		"workers": -1,
	})
	if rec.Code != http.StatusBadRequest || body["field"] != "workers" {
		t.Errorf("negative workers: %d %v", rec.Code, body)
	}
}

// Aliases and arbitrary casing must be accepted by every fit-family
// endpoint, resolving to canonical names in responses.
func TestAliasesAcceptedOverHTTP(t *testing.T) {
	h := Handler()
	cases := map[string]string{
		"hjorth":  "competing-risks",
		"CR":      "competing-risks",
		"wei-wei": "weibull-weibull",
		"Wei-Exp": "weibull-exp",
		"QUAD":    "quadratic",
	}
	for alias, canonical := range cases {
		rec, body := doJSON(t, h, http.MethodPost, "/v1/fit", map[string]any{
			"model":  alias,
			"values": testSeries(),
		})
		if rec.Code != http.StatusOK {
			t.Fatalf("fit %q: %d %v", alias, rec.Code, body)
		}
		// The fitted model is the canonical family unless degradation chose
		// a fallback; either way the alias spelling never leaks out.
		if got, _ := body["model"].(string); got != canonical {
			if degraded, _ := body["degraded"].(bool); !degraded {
				t.Errorf("fit %q reported model %q, want %q", alias, got, canonical)
			}
		}
	}
}

// GET /v1/models keeps the legacy bare name list and adds registry
// metadata under "details".
func TestModelsCatalogEnriched(t *testing.T) {
	rec, body := doJSON(t, Handler(), http.MethodGet, "/v1/models", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	details, ok := body["details"].([]any)
	if !ok || len(details) != len(registry.All()) {
		t.Fatalf("details = %v", body["details"])
	}
	byName := map[string]map[string]any{}
	for _, raw := range details {
		d := raw.(map[string]any)
		byName[d["name"].(string)] = d
	}
	cr, ok := byName["competing-risks"]
	if !ok {
		t.Fatal("competing-risks missing from details")
	}
	if cr["family"] != "bathtub" {
		t.Errorf("competing-risks family = %v", cr["family"])
	}
	aliases, _ := cr["aliases"].([]any)
	foundHjorth := false
	for _, a := range aliases {
		if a == "hjorth" {
			foundHjorth = true
		}
	}
	if !foundHjorth {
		t.Errorf("competing-risks aliases = %v, want to include hjorth", cr["aliases"])
	}
	caps, ok := cr["capabilities"].(map[string]any)
	if !ok || caps["closed_form_area"] != true {
		t.Errorf("competing-risks capabilities = %v", cr["capabilities"])
	}
	params, _ := cr["param_names"].([]any)
	if len(params) != 3 {
		t.Errorf("competing-risks param_names = %v", cr["param_names"])
	}
	we, ok := byName["weibull-exp"]
	if !ok {
		t.Fatal("weibull-exp missing from details")
	}
	if we["family"] != "mixture" || we["fallback_rank"] != float64(1) {
		t.Errorf("weibull-exp detail = %v", we)
	}
}
