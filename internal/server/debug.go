package server

import (
	"net/http"
	"sort"
	"strconv"
	"time"

	"resilience/internal/telemetry"
)

// traceListItem is one GET /debug/traces row: the record summary plus
// the span count, without the tree (the detail endpoint serves that).
type traceListItem struct {
	*telemetry.TraceRecord
	SpanCount int `json:"span_count"`
}

// handleTraceList serves GET /debug/traces: recent retained traces,
// newest first, filterable with ?route=, ?min_ms=, ?errors=true, and
// ?limit=.
func handleTraceList(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	f := telemetry.TraceFilter{Route: q.Get("route")}
	if v := q.Get("min_ms"); v != "" {
		ms, err := strconv.ParseFloat(v, 64)
		if err != nil || ms < 0 {
			writeAPIErr(w, r, badField("min_ms", "min_ms %q must be a non-negative number", v))
			return
		}
		f.MinDuration = time.Duration(ms * float64(time.Millisecond))
	}
	if v := q.Get("errors"); v == "true" || v == "1" {
		f.ErrorsOnly = true
	}
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			writeAPIErr(w, r, badField("limit", "limit %q must be a positive integer", v))
			return
		}
		f.Limit = n
	}
	recs := telemetry.DefaultTraceStore.List(f)
	items := make([]traceListItem, len(recs))
	for i, rec := range recs {
		items[i] = traceListItem{TraceRecord: rec, SpanCount: len(rec.Spans)}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"count":  len(items),
		"traces": items,
	})
}

// spanNode is one node of the span tree served by /debug/traces/{id}.
type spanNode struct {
	Name       string         `json:"name"`
	SpanID     string         `json:"span_id"`
	ParentID   string         `json:"parent_id,omitempty"`
	Start      time.Time      `json:"start"`
	DurationMS float64        `json:"duration_ms"`
	Status     string         `json:"status,omitempty"`
	Attrs      map[string]any `json:"attrs,omitempty"`
	Children   []*spanNode    `json:"children,omitempty"`
}

// buildSpanTree links a flat completion-ordered span list into a tree
// via SpanID/ParentID. Spans whose parent was dropped (or came from a
// remote caller) surface as extra roots rather than disappearing.
func buildSpanTree(spans []telemetry.Span) []*spanNode {
	nodes := make([]*spanNode, len(spans))
	byID := make(map[string]*spanNode, len(spans))
	for i, s := range spans {
		n := &spanNode{
			Name:       s.Name,
			SpanID:     s.SpanID,
			ParentID:   s.ParentID,
			Start:      s.Start,
			DurationMS: float64(s.Duration.Microseconds()) / 1000,
			Status:     s.Status,
		}
		for _, a := range s.Attrs {
			if n.Attrs == nil {
				n.Attrs = make(map[string]any, len(s.Attrs))
			}
			if a.SVal != "" {
				n.Attrs[a.Key] = a.SVal
			} else {
				n.Attrs[a.Key] = a.Value
			}
		}
		nodes[i] = n
		if s.SpanID != "" {
			byID[s.SpanID] = n
		}
	}
	var roots []*spanNode
	for _, n := range nodes {
		if parent, ok := byID[n.ParentID]; ok && parent != n {
			parent.Children = append(parent.Children, n)
		} else {
			roots = append(roots, n)
		}
	}
	sortSpanNodes(roots)
	return roots
}

func sortSpanNodes(nodes []*spanNode) {
	sort.SliceStable(nodes, func(i, j int) bool { return nodes[i].Start.Before(nodes[j].Start) })
	for _, n := range nodes {
		sortSpanNodes(n.Children)
	}
}

// handleTraceGet serves GET /debug/traces/{id}: the full record for one
// trace ID with its spans linked into a tree.
func handleTraceGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	rec, ok := telemetry.DefaultTraceStore.Get(id)
	if !ok {
		writeAPIErr(w, r, &apiError{
			status: http.StatusNotFound, field: "id",
			err: errTraceNotFound(id),
		})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"trace_id":    rec.TraceID,
		"request_id":  rec.RequestID,
		"route":       rec.Route,
		"method":      rec.Method,
		"status":      rec.Status,
		"error":       rec.Error,
		"start":       rec.Start,
		"duration_ms": rec.DurationMS,
		"span_count":  len(rec.Spans),
		"spans":       buildSpanTree(rec.Spans),
	})
}

type errTraceNotFound string

func (e errTraceNotFound) Error() string {
	return "trace " + string(e) + " not retained (evicted, sampled out, or never seen)"
}
