package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"resilience/internal/faultinject"
	"resilience/internal/stream"
	"resilience/internal/telemetry"
)

// postJSON posts a JSON body and returns the response.
func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeInto(t *testing.T, resp *http.Response, want int, dst any) {
	t.Helper()
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != want {
		t.Fatalf("status %d, want %d: %s", resp.StatusCode, want, raw)
	}
	if dst != nil {
		if err := json.Unmarshal(raw, dst); err != nil {
			t.Fatalf("decode %s: %v", raw, err)
		}
	}
}

func createTestSession(t *testing.T, baseURL, model string, mc stream.MonitorConfig) stream.Snapshot {
	t.Helper()
	var snap stream.Snapshot
	resp := postJSON(t, baseURL+"/v1/sessions", map[string]any{"model": model, "config": mc})
	decodeInto(t, resp, http.StatusCreated, &snap)
	return snap
}

func TestSessionEndpoints(t *testing.T) {
	ts := httptest.NewServer(NewHandler(Config{}))
	defer ts.Close()

	// Aliases resolve through the registry, like every other endpoint.
	snap := createTestSession(t, ts.URL, "cr", stream.MonitorConfig{MinFitPoints: 5})
	if snap.Model != "competing-risks" || snap.ID == "" {
		t.Fatalf("create: %+v", snap)
	}

	// Chunked observe with explicit times.
	vals := []float64{1, 0.95, 0.9, 0.92, 0.94, 0.96, 0.97, 0.98, 0.99, 1.0}
	times := make([]float64, len(vals))
	for i := range times {
		times[i] = float64(i)
	}
	var obs struct {
		Updates []stream.Update `json:"updates"`
		Session stream.Snapshot `json:"session"`
	}
	resp := postJSON(t, ts.URL+"/v1/sessions/"+snap.ID+"/observe",
		map[string]any{"times": times, "values": vals})
	decodeInto(t, resp, http.StatusOK, &obs)
	if len(obs.Updates) != len(vals) {
		t.Fatalf("%d updates for %d points", len(obs.Updates), len(vals))
	}
	if obs.Session.Observations != uint64(len(vals)) {
		t.Fatalf("session observations = %d", obs.Session.Observations)
	}
	var sawFit bool
	for _, up := range obs.Updates {
		if up.FitModel != "" {
			sawFit = true
		}
	}
	if !sawFit {
		t.Error("no update carried a fit")
	}

	// Single-point spelling; time omitted auto-numbers from the count.
	resp = postJSON(t, ts.URL+"/v1/sessions/"+snap.ID+"/observe", map[string]any{"value": 1.0})
	decodeInto(t, resp, http.StatusOK, &obs)
	if len(obs.Updates) != 1 || obs.Updates[0].Time != 10 {
		t.Fatalf("auto-numbered point: %+v", obs.Updates)
	}

	// Snapshot and list see the session.
	var got stream.Snapshot
	gresp, err := http.Get(ts.URL + "/v1/sessions/" + snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	decodeInto(t, gresp, http.StatusOK, &got)
	if got.Observations != 11 || got.Last == nil {
		t.Fatalf("snapshot: %+v", got)
	}
	var list struct {
		Sessions []stream.Snapshot `json:"sessions"`
	}
	lresp, err := http.Get(ts.URL + "/v1/sessions")
	if err != nil {
		t.Fatal(err)
	}
	decodeInto(t, lresp, http.StatusOK, &list)
	if len(list.Sessions) != 1 || list.Sessions[0].ID != snap.ID {
		t.Fatalf("list: %+v", list.Sessions)
	}

	// Validation errors map to 400 with the field named.
	resp = postJSON(t, ts.URL+"/v1/sessions/"+snap.ID+"/observe",
		map[string]any{"values": []float64{1}, "times": []float64{1, 2}})
	var envelope errorBody
	decodeInto(t, resp, http.StatusBadRequest, &envelope)
	if envelope.Field != "times" {
		t.Fatalf("validation envelope: %+v", envelope)
	}
	resp = postJSON(t, ts.URL+"/v1/sessions", map[string]any{"model": "no-such-model"})
	decodeInto(t, resp, http.StatusBadRequest, &envelope)
	if envelope.Field != "model" {
		t.Fatalf("unknown model envelope: %+v", envelope)
	}

	// Delete closes; a second delete and further observes are 404.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/sessions/"+snap.ID, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	decodeInto(t, dresp, http.StatusOK, nil)
	dresp2, err := http.DefaultClient.Do(req.Clone(req.Context()))
	if err != nil {
		t.Fatal(err)
	}
	decodeInto(t, dresp2, http.StatusNotFound, nil)
	resp = postJSON(t, ts.URL+"/v1/sessions/"+snap.ID+"/observe", map[string]any{"value": 1.0})
	decodeInto(t, resp, http.StatusNotFound, nil)
}

// sseClient consumes a session's SSE feed, delivering parsed events on
// a channel until the feed ends.
type sseClient struct {
	events <-chan sseEvent
	errc   <-chan error
	cancel func()
}

type sseEvent struct {
	name string
	data string
}

func dialSSE(t *testing.T, url string) *sseClient {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("subscribe: %d %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	events := make(chan sseEvent, 64)
	errc := make(chan error, 1)
	go func() {
		defer close(events)
		sc := bufio.NewScanner(resp.Body)
		var ev sseEvent
		for sc.Scan() {
			line := sc.Text()
			switch {
			case strings.HasPrefix(line, "event: "):
				ev.name = strings.TrimPrefix(line, "event: ")
			case strings.HasPrefix(line, "data: "):
				ev.data = strings.TrimPrefix(line, "data: ")
			case line == "":
				events <- ev
				ev = sseEvent{}
			}
		}
		errc <- sc.Err()
	}()
	return &sseClient{events: events, errc: errc, cancel: func() { resp.Body.Close() }}
}

// next returns the next event or fails the test after a timeout.
func (c *sseClient) next(t *testing.T) (sseEvent, bool) {
	t.Helper()
	select {
	case ev, ok := <-c.events:
		return ev, ok
	case <-time.After(10 * time.Second):
		t.Fatal("SSE event timed out")
		return sseEvent{}, false
	}
}

func TestSessionSSETwoSubscribers(t *testing.T) {
	ts := httptest.NewServer(NewHandler(Config{}))
	defer ts.Close()
	snap := createTestSession(t, ts.URL, "competing-risks", stream.MonitorConfig{MinFitPoints: 1000})

	subA := dialSSE(t, ts.URL+"/v1/sessions/"+snap.ID+"/events")
	defer subA.cancel()
	subB := dialSSE(t, ts.URL+"/v1/sessions/"+snap.ID+"/events")
	defer subB.cancel()
	for _, c := range []*sseClient{subA, subB} {
		if ev, _ := c.next(t); ev.name != "snapshot" {
			t.Fatalf("first event = %q, want snapshot", ev.name)
		}
	}

	const n = 5
	for i := 0; i < n; i++ {
		resp := postJSON(t, ts.URL+"/v1/sessions/"+snap.ID+"/observe",
			map[string]any{"time": float64(i), "value": 1.0})
		decodeInto(t, resp, http.StatusOK, nil)
	}
	// Every subscriber sees every update, in order.
	for name, c := range map[string]*sseClient{"A": subA, "B": subB} {
		for i := 1; i <= n; i++ {
			ev, ok := c.next(t)
			if !ok {
				t.Fatalf("subscriber %s: feed ended at event %d", name, i)
			}
			var parsed stream.Event
			if err := json.Unmarshal([]byte(ev.data), &parsed); err != nil {
				t.Fatalf("subscriber %s: bad event %q: %v", name, ev.data, err)
			}
			if ev.name != "update" || parsed.Seq != uint64(i) || parsed.Update == nil {
				t.Fatalf("subscriber %s event %d: %s %+v", name, i, ev.name, parsed)
			}
		}
	}

	// Deleting the session pushes a terminal event and ends both feeds.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/sessions/"+snap.ID, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	decodeInto(t, dresp, http.StatusOK, nil)
	for name, c := range map[string]*sseClient{"A": subA, "B": subB} {
		ev, ok := c.next(t)
		if !ok {
			t.Fatalf("subscriber %s: feed ended without terminal event", name)
		}
		var parsed stream.Event
		if err := json.Unmarshal([]byte(ev.data), &parsed); err != nil {
			t.Fatal(err)
		}
		if ev.name != "closed" || parsed.Reason != "closed" {
			t.Fatalf("subscriber %s terminal: %s %+v", name, ev.name, parsed)
		}
		if _, open := c.next(t); open {
			t.Fatalf("subscriber %s: feed still open after terminal event", name)
		}
	}
}

// stallWriter is a ResponseWriter whose Write blocks until the test
// hands it a token, simulating a consumer that stops reading its feed.
type stallWriter struct {
	header http.Header
	allow  chan struct{}
}

func (w *stallWriter) Header() http.Header { return w.header }
func (w *stallWriter) WriteHeader(int)     {}
func (w *stallWriter) Flush()              {}
func (w *stallWriter) Write(b []byte) (int, error) {
	<-w.allow
	return len(b), nil
}

// TestSessionSSESlowConsumerDropped stalls an SSE subscriber's
// connection and pours observations in: once the subscriber's event
// buffer fills, the manager must disconnect it — counting the drop —
// rather than block ingestion, and the handler must return.
func TestSessionSSESlowConsumerDropped(t *testing.T) {
	app := NewApp(Config{})
	ts := httptest.NewServer(app.Handler)
	defer ts.Close()
	snap := createTestSession(t, ts.URL, "competing-risks", stream.MonitorConfig{MinFitPoints: 1000})

	dropped := telemetry.GetOrCreateCounter("resil_stream_dropped_subscribers_total")
	before := dropped.Value()

	// Drive the SSE handler directly with a writer we can stall; the
	// instrument middleware and route dispatch stay in the path.
	w := &stallWriter{header: make(http.Header), allow: make(chan struct{}, 1)}
	w.allow <- struct{}{} // let the initial snapshot event through
	handlerDone := make(chan struct{})
	go func() {
		defer close(handlerDone)
		req := httptest.NewRequest(http.MethodGet, "/v1/sessions/"+snap.ID+"/events", nil)
		app.Handler.ServeHTTP(w, req)
	}()

	// Wait for the subscriber to attach (snapshot token consumed), then
	// pour in more observations than the event buffer holds while the
	// connection stays stalled.
	deadline := time.Now().Add(10 * time.Second)
	for len(w.allow) != 0 {
		if time.Now().After(deadline) {
			t.Fatal("SSE handler never wrote the snapshot event")
		}
		time.Sleep(time.Millisecond)
	}
	for i := 0; i < 40; i++ {
		resp := postJSON(t, ts.URL+"/v1/sessions/"+snap.ID+"/observe",
			map[string]any{"time": float64(i), "value": 1.0})
		decodeInto(t, resp, http.StatusOK, nil)
	}
	for dropped.Value() == before {
		if time.Now().After(deadline) {
			t.Fatal("stalled subscriber never dropped")
		}
		time.Sleep(time.Millisecond)
	}

	// Unstall the connection: the handler drains its closed channel and
	// returns instead of serving a dead subscriber forever.
	close(w.allow)
	select {
	case <-handlerDone:
	case <-time.After(10 * time.Second):
		t.Fatal("SSE handler did not return after its subscriber was dropped")
	}

	// Ingestion was never blocked: the session is intact and answering.
	var got stream.Snapshot
	gresp, err := http.Get(ts.URL + "/v1/sessions/" + snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	decodeInto(t, gresp, http.StatusOK, &got)
	if got.Observations != 40 {
		t.Fatalf("observations = %d, want 40", got.Observations)
	}
}

// TestStreamChaosHTTPFallback injects optimizer panics into the
// requested model's refits and replays a disruption over the HTTP API:
// every fit-bearing update must be a fallback-family fit annotated with
// the degradation, the session must survive to a snapshot, and the
// stream metrics must show the refits.
func TestStreamChaosHTTPFallback(t *testing.T) {
	t.Cleanup(faultinject.Clear)
	if err := faultinject.Arm("core.fit.competing-risks", "panic"); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewHandler(Config{}))
	defer ts.Close()
	snap := createTestSession(t, ts.URL, "competing-risks", stream.MonitorConfig{MinFitPoints: 8})

	vals := make([]float64, 0, 18)
	for i := 0; i < 18; i++ {
		x := float64(i)
		v := 1.0
		if i >= 2 {
			v = 1 - 0.05*sinSafe((x-2)/15)
		}
		vals = append(vals, v)
	}
	var sawFallback bool
	for i, v := range vals {
		var obs struct {
			Updates []stream.Update `json:"updates"`
		}
		resp := postJSON(t, ts.URL+"/v1/sessions/"+snap.ID+"/observe",
			map[string]any{"time": float64(i), "value": v})
		decodeInto(t, resp, http.StatusOK, &obs)
		for _, up := range obs.Updates {
			if up.FitModel == "" {
				continue
			}
			if up.FitModel == "competing-risks" {
				t.Fatalf("step %d: panicking model reported as fit", i)
			}
			if !up.Degraded || !up.PanicRecovered || up.FallbackModel == "" {
				t.Fatalf("step %d: fallback fit missing annotation: %+v", i, up)
			}
			sawFallback = true
		}
	}
	if !sawFallback {
		t.Fatal("panic injection never produced an annotated fallback over HTTP")
	}
	var got stream.Snapshot
	gresp, err := http.Get(ts.URL + "/v1/sessions/" + snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	decodeInto(t, gresp, http.StatusOK, &got)
	if got.Last == nil || !got.Last.PanicRecovered {
		t.Fatalf("snapshot lost the degradation annotation: %+v", got.Last)
	}
}

// sinSafe is a tiny half-sine bump on [0, 1] clamped outside it.
func sinSafe(u float64) float64 {
	if u < 0 {
		return 0
	}
	if u > 1 {
		u = 1
	}
	// 2u(1-u)*2 peaks at 1 around u=0.5 — a smooth dip-and-recover curve
	// without pulling in math for a test helper.
	return 4 * u * (1 - u)
}

// TestStreamChaosHTTPDecodeFault arms the server.decode fault while the
// session endpoints parse bodies, asserting the injected decode panic is
// contained by the middleware and answered as a 500 envelope, with the
// session table unharmed.
func TestStreamChaosHTTPDecodeFault(t *testing.T) {
	t.Cleanup(faultinject.Clear)
	ts := httptest.NewServer(NewHandler(Config{}))
	defer ts.Close()
	snap := createTestSession(t, ts.URL, "competing-risks", stream.MonitorConfig{MinFitPoints: 1000})

	if err := faultinject.Arm("server.decode", "panic"); err != nil {
		t.Fatal(err)
	}
	resp := postJSON(t, ts.URL+"/v1/sessions/"+snap.ID+"/observe", map[string]any{"value": 1.0})
	var envelope errorBody
	decodeInto(t, resp, http.StatusInternalServerError, &envelope)
	if envelope.Error == "" || envelope.RequestID == "" {
		t.Fatalf("panic envelope incomplete: %+v", envelope)
	}
	faultinject.Clear()

	// The table survived the contained panic.
	resp = postJSON(t, ts.URL+"/v1/sessions/"+snap.ID+"/observe", map[string]any{"value": 1.0})
	decodeInto(t, resp, http.StatusOK, nil)
}
