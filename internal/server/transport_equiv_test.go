package server

// Golden transport-equivalence suite: the binary listener must serve
// payload-identical responses to the HTTP routes for every operation it
// exposes. Two separate Apps (so fit caches can't couple the runs) get
// the same deterministic requests — one over real HTTP, one over the
// framed binary protocol — and every response must match as a JSON
// tree, after normalizing the values that are volatile by construction
// (session IDs, timestamps, request IDs).

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"

	"resilience/internal/transport"
	"resilience/internal/transport/binary"
)

// volatileKeys are response fields whose values legitimately differ
// across processes: identities and wall-clock times. Their presence
// must still match — normalize replaces values, never removes keys.
var volatileKeys = map[string]bool{
	"id":          true,
	"session":     true,
	"created_at":  true,
	"last_active": true,
	"request_id":  true,
	"trace_id":    true,
}

// normalize replaces volatile leaf values in a decoded JSON tree so
// trees from two independent servers compare equal.
func normalize(v any) any {
	switch x := v.(type) {
	case map[string]any:
		out := make(map[string]any, len(x))
		for k, vv := range x {
			if volatileKeys[k] {
				out[k] = "NORMALIZED"
				continue
			}
			out[k] = normalize(vv)
		}
		return out
	case []any:
		out := make([]any, len(x))
		for i, vv := range x {
			out[i] = normalize(vv)
		}
		return out
	default:
		return v
	}
}

// equivHarness holds one HTTP-served App and one binary-served App.
type equivHarness struct {
	hs *httptest.Server
	bc *binary.Client
}

func newEquivHarness(t *testing.T) *equivHarness {
	t.Helper()
	quiet := slog.New(slog.NewTextHandler(io.Discard, nil))

	httpApp := NewApp(Config{Logger: quiet})
	hs := httptest.NewServer(httpApp.Handler)
	t.Cleanup(hs.Close)

	binApp := NewApp(Config{Logger: quiet})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	bs := binary.NewServer(binApp.BinaryHandler(), nil)
	go bs.Serve(ln)
	t.Cleanup(func() { bs.Shutdown(context.Background()) })
	bc := binary.NewClient(ln.Addr().String())
	t.Cleanup(bc.Close)
	return &equivHarness{hs: hs, bc: bc}
}

// overHTTP runs one op against the HTTP app, returning status and the
// decoded body tree.
func (h *equivHarness) overHTTP(t *testing.T, method, path string, body any) (int, any) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(raw)
	}
	req, err := http.NewRequest(method, h.hs.URL+path, rd)
	if err != nil {
		t.Fatal(err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var tree any
	if len(raw) > 0 {
		if err := json.Unmarshal(raw, &tree); err != nil {
			t.Fatalf("HTTP %s %s: non-JSON body %q", method, path, raw)
		}
	}
	return resp.StatusCode, tree
}

// overBinary runs one op against the binary app.
func (h *equivHarness) overBinary(t *testing.T, op string, body any) (int, any) {
	t.Helper()
	status, tree, err := h.bc.Do(context.Background(), op, "", "", body)
	if err != nil {
		t.Fatalf("binary %s: %v", op, err)
	}
	return status, tree
}

// assertEquivalent compares one operation's two responses.
func assertEquivalent(t *testing.T, label string, hs int, hb any, bs int, bb any) {
	t.Helper()
	if hs != bs {
		t.Errorf("%s: status HTTP %d vs binary %d", label, hs, bs)
		return
	}
	hn, bn := normalize(hb), normalize(bb)
	if !reflect.DeepEqual(hn, bn) {
		hj, _ := json.MarshalIndent(hn, "", " ")
		bj, _ := json.MarshalIndent(bn, "", " ")
		t.Errorf("%s: payloads differ\nHTTP:   %s\nbinary: %s", label, hj, bj)
	}
}

func TestBinaryHTTPPayloadEquivalence(t *testing.T) {
	h := newEquivHarness(t)
	series := testSeries()

	unary := []struct {
		label  string
		method string
		path   string
		op     string
		body   any
	}{
		{"fit", http.MethodPost, "/v1/fit", transport.OpFit,
			map[string]any{"model": "quadratic", "values": series}},
		// Same body again: both sides answer from their fit cache, so the
		// cached:true annotation must round-trip identically too.
		{"fit-cached", http.MethodPost, "/v1/fit", transport.OpFit,
			map[string]any{"model": "quadratic", "values": series}},
		{"predict", http.MethodPost, "/v1/predict", transport.OpPredict,
			map[string]any{"model": "quadratic", "values": series, "level": 0.99}},
		{"metrics", http.MethodPost, "/v1/metrics", transport.OpMetrics,
			map[string]any{"model": "quadratic", "values": series}},
		{"forecast", http.MethodPost, "/v1/forecast", transport.OpForecast,
			map[string]any{"model": "quadratic", "values": series, "steps": 6}},
		{"batch", http.MethodPost, "/v1/batch", transport.OpBatch,
			map[string]any{"jobs": []any{
				map[string]any{"model": "quadratic", "values": series},
				map[string]any{"model": "not-a-model", "values": series},
			}, "workers": 2}},
		// Simulate is seeded, so both transports must return the exact
		// same scenario set — decode(binary) == unmarshal(HTTP) bit for
		// bit after JSON normalization.
		{"simulate", http.MethodPost, "/v1/simulate", transport.OpSimulate,
			map[string]any{"preset": "pair", "count": 2, "seed": 42}},
		{"simulate-bad-preset", http.MethodPost, "/v1/simulate", transport.OpSimulate,
			map[string]any{"preset": "nope"}},
		{"models", http.MethodGet, "/v1/models", transport.OpModels, nil},
		{"version", http.MethodGet, "/v1/version", transport.OpVersion, nil},
		{"fit-invalid", http.MethodPost, "/v1/fit", transport.OpFit,
			map[string]any{"model": "quadratic", "values": []any{1.0}}},
		{"fit-unknown-model", http.MethodPost, "/v1/fit", transport.OpFit,
			map[string]any{"model": "nope", "values": series}},
	}
	for _, tc := range unary {
		hs, hb := h.overHTTP(t, tc.method, tc.path, tc.body)
		bs, bb := h.overBinary(t, tc.op, tc.body)
		assertEquivalent(t, tc.label, hs, hb, bs, bb)
	}
}

func TestBinaryHTTPSessionEquivalence(t *testing.T) {
	h := newEquivHarness(t)
	series := testSeries()

	// Create one session on each side; IDs differ (normalized), shape
	// must not.
	createBody := map[string]any{"model": "quadratic"}
	hs, hb := h.overHTTP(t, http.MethodPost, "/v1/sessions", createBody)
	bs, bb := h.overBinary(t, transport.OpSessionCreate, createBody)
	assertEquivalent(t, "session-create", hs, hb, bs, bb)
	if hs != http.StatusCreated {
		t.Fatalf("session create: status %d", hs)
	}
	httpID := hb.(map[string]any)["id"].(string)
	binID := bb.(map[string]any)["id"].(string)

	// Observe the same chunks through both.
	for off := 0; off < len(series); off += 12 {
		end := min(off+12, len(series))
		times := make([]float64, 0, end-off)
		for i := off; i < end; i++ {
			times = append(times, float64(i))
		}
		ob := map[string]any{"times": times, "values": series[off:end]}
		hs, hb = h.overHTTP(t, http.MethodPost, "/v1/sessions/"+httpID+"/observe", ob)
		withID := map[string]any{"id": binID, "times": times, "values": series[off:end]}
		bs, bb = h.overBinary(t, transport.OpSessionObserve, withID)
		assertEquivalent(t, fmt.Sprintf("session-observe[%d]", off), hs, hb, bs, bb)
	}

	// Snapshot, list, delete, and the post-delete 404.
	hs, hb = h.overHTTP(t, http.MethodGet, "/v1/sessions/"+httpID, nil)
	bs, bb = h.overBinary(t, transport.OpSessionGet, map[string]any{"id": binID})
	assertEquivalent(t, "session-get", hs, hb, bs, bb)

	hs, hb = h.overHTTP(t, http.MethodGet, "/v1/sessions", nil)
	bs, bb = h.overBinary(t, transport.OpSessionList, nil)
	assertEquivalent(t, "session-list", hs, hb, bs, bb)

	hs, hb = h.overHTTP(t, http.MethodDelete, "/v1/sessions/"+httpID, nil)
	bs, bb = h.overBinary(t, transport.OpSessionDelete, map[string]any{"id": binID})
	assertEquivalent(t, "session-delete", hs, hb, bs, bb)

	hs, hb = h.overHTTP(t, http.MethodGet, "/v1/sessions/"+httpID, nil)
	bs, bb = h.overBinary(t, transport.OpSessionGet, map[string]any{"id": binID})
	assertEquivalent(t, "session-get-after-delete", hs, hb, bs, bb)
}
