package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"math"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"resilience/internal/faultinject"
	"resilience/internal/monitor"
)

// quietHandler builds a handler that logs to nowhere, for tests that do
// not inspect the access log.
func quietHandler(cfg Config) http.Handler {
	cfg.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	return NewHandler(cfg)
}

func TestReadyz(t *testing.T) {
	rec, body := doJSON(t, quietHandler(Config{}), http.MethodGet, "/readyz", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %v", rec.Code, body)
	}
	if body["status"] != "ready" {
		t.Errorf("status = %v", body["status"])
	}
	if ms, ok := body["sanity_fit_ms"].(float64); !ok || ms < 0 {
		t.Errorf("sanity_fit_ms = %v", body["sanity_fit_ms"])
	}
}

func TestReadyzUnreadyWhenPipelineBroken(t *testing.T) {
	t.Cleanup(faultinject.Clear)
	if err := faultinject.Arm("core.fit.objective.quadratic", "nan"); err != nil {
		t.Fatal(err)
	}
	rec, body := doJSON(t, quietHandler(Config{}), http.MethodGet, "/readyz", nil)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503: %v", rec.Code, body)
	}
	if body["status"] != "unready" {
		t.Errorf("status = %v", body["status"])
	}
}

func TestVersionEndpoint(t *testing.T) {
	rec, body := doJSON(t, quietHandler(Config{}), http.MethodGet, "/v1/version", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	if v, ok := body["version"].(string); !ok || v == "" {
		t.Errorf("version = %v", body["version"])
	}
}

func TestStatsEndpoint(t *testing.T) {
	monitor.ResetCounters()
	t.Cleanup(monitor.ResetCounters)
	h := quietHandler(Config{})
	doJSON(t, h, http.MethodGet, "/healthz", nil)
	rec, body := doJSON(t, h, http.MethodGet, "/v1/stats", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	// The healthz request above must already be counted.
	if n, ok := body["requests"].(float64); !ok || n < 1 {
		t.Errorf("requests = %v", body["requests"])
	}
	for _, key := range []string{"fallbacks", "cancellations", "panic_recoveries", "fits", "request_errors"} {
		if _, ok := body[key]; !ok {
			t.Errorf("stats missing %q: %v", key, body)
		}
	}
}

// Forced non-convergence of the requested model must still answer 200,
// name the fallback family, and bump the fallback counter.
func TestFitFallsBackWhenPrimaryCannotConverge(t *testing.T) {
	t.Cleanup(faultinject.Clear)
	if err := faultinject.Arm("core.fit.objective.competing-risks", "nan"); err != nil {
		t.Fatal(err)
	}
	monitor.ResetCounters()
	t.Cleanup(monitor.ResetCounters)

	rec, body := doJSON(t, quietHandler(Config{}), http.MethodPost, "/v1/fit", map[string]any{
		"model":  "competing-risks",
		"values": testSeries(),
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %v", rec.Code, body)
	}
	if degraded, _ := body["degraded"].(bool); !degraded {
		t.Errorf("degraded = %v", body["degraded"])
	}
	fb, _ := body["fallback_model"].(string)
	if fb == "" || fb == "competing-risks" {
		t.Errorf("fallback_model = %q", fb)
	}
	if body["model"] != fb {
		t.Errorf("model = %v, want the fallback %q", body["model"], fb)
	}
	if reason, _ := body["degradation_reason"].(string); reason == "" {
		t.Error("degradation_reason missing")
	}
	if c := monitor.Counters(); c.Fallbacks != 1 || c.Fits != 1 {
		t.Errorf("counters = %+v", c)
	}
}

// With the chain disabled, the same forced failure must surface as a 422.
func TestFitErrorWhenFallbackDisabled(t *testing.T) {
	t.Cleanup(faultinject.Clear)
	if err := faultinject.Arm("core.fit.objective.competing-risks", "nan"); err != nil {
		t.Fatal(err)
	}
	rec, body := doJSON(t, quietHandler(Config{DisableFallback: true}), http.MethodPost, "/v1/fit", map[string]any{
		"model":  "competing-risks",
		"values": testSeries(),
	})
	if rec.Code != http.StatusUnprocessableEntity {
		t.Fatalf("status %d: %v", rec.Code, body)
	}
	if _, ok := body["error"]; !ok {
		t.Error("error envelope missing")
	}
}

// A client that disconnects mid-fit must not leak the worker goroutine,
// and the cancellation must be counted.
func TestClientCancelledRequest(t *testing.T) {
	t.Cleanup(faultinject.Clear)
	if err := faultinject.Arm("core.fit.delay.competing-risks", "delay:5s"); err != nil {
		t.Fatal(err)
	}
	monitor.ResetCounters()
	t.Cleanup(monitor.ResetCounters)

	srv := httptest.NewServer(quietHandler(Config{}))
	defer srv.Close()
	client := &http.Client{Transport: &http.Transport{}}
	defer client.CloseIdleConnections()
	baseline := runtime.NumGoroutine()

	payload, _ := json.Marshal(map[string]any{
		"model":  "competing-risks",
		"values": testSeries(),
	})
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, srv.URL+"/v1/fit", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	resp, err := client.Do(req)
	if err == nil {
		resp.Body.Close()
		t.Fatal("request succeeded despite cancellation")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("client blocked %v after cancelling", elapsed)
	}

	// The server goroutine must wind down promptly (it was sleeping in the
	// injected delay, which honors the request context).
	deadline := time.Now().Add(5 * time.Second)
	for {
		client.CloseIdleConnections()
		if n := runtime.NumGoroutine(); n <= baseline+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d > baseline %d", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(20 * time.Millisecond)
	}
	// Cancellation accounting is asynchronous with the client error; poll.
	for time.Now().Before(deadline) {
		if monitor.Counters().Cancellations >= 1 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("cancellation not counted: %+v", monitor.Counters())
}

// A panic anywhere in request handling must be contained by the
// middleware and answered with a 500 envelope.
func TestHandlerPanicContained(t *testing.T) {
	t.Cleanup(faultinject.Clear)
	if err := faultinject.Arm("server.decode", "panic"); err != nil {
		t.Fatal(err)
	}
	monitor.ResetCounters()
	t.Cleanup(monitor.ResetCounters)

	rec, body := doJSON(t, quietHandler(Config{}), http.MethodPost, "/v1/fit", map[string]any{
		"model":  "quadratic",
		"values": testSeries(),
	})
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status %d: %v", rec.Code, body)
	}
	if _, ok := body["error"]; !ok {
		t.Error("500 envelope missing error field")
	}
	if c := monitor.Counters(); c.PanicRecoveries < 1 {
		t.Errorf("panic not counted: %+v", c)
	}
}

func TestWriteJSONMarshalFailure(t *testing.T) {
	rec := httptest.NewRecorder()
	writeJSON(rec, http.StatusOK, map[string]any{"bad": make(chan int)})
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", rec.Code)
	}
	var body map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("fallback envelope not JSON: %v\n%s", err, rec.Body.String())
	}
	if _, ok := body["error"]; !ok {
		t.Error("fallback envelope missing error field")
	}
}

// validate() guards fields JSON cannot even express as NaN/Inf when they
// arrive through other construction paths.
func TestModelRequestValidate(t *testing.T) {
	good := func() modelRequest {
		return modelRequest{Model: "quadratic", seriesBody: seriesBody{Values: []float64{1, 2, 3}}}
	}
	cases := []struct {
		name  string
		mut   func(*modelRequest)
		field string
	}{
		{"nan value", func(r *modelRequest) { r.Values[1] = math.NaN() }, "values"},
		{"inf value", func(r *modelRequest) { r.Values[0] = math.Inf(1) }, "values"},
		{"empty values", func(r *modelRequest) { r.Values = nil }, "values"},
		{"nan time", func(r *modelRequest) { r.Times = []float64{0, math.NaN(), 2} }, "times"},
		{"times length", func(r *modelRequest) { r.Times = []float64{0, 1} }, "times"},
		{"train fraction high", func(r *modelRequest) { r.TrainFraction = 1.0 }, "train_fraction"},
		{"train fraction negative", func(r *modelRequest) { r.TrainFraction = -0.1 }, "train_fraction"},
		{"nan level", func(r *modelRequest) { r.Level = math.NaN() }, "level"},
		{"negative level", func(r *modelRequest) { r.Level = -1 }, "level"},
		{"steps negative", func(r *modelRequest) { r.Steps = -1 }, "steps"},
		{"steps huge", func(r *modelRequest) { r.Steps = 1000000 }, "steps"},
		{"alpha out of range", func(r *modelRequest) { r.Alpha = 1.5 }, "alpha"},
		{"inf intervention start", func(r *modelRequest) { r.InterventionStart = math.Inf(-1) }, "intervention_start"},
		{"negative accel", func(r *modelRequest) { r.InterventionAccel = -2 }, "intervention_accel"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req := good()
			tc.mut(&req)
			aerr := req.validate()
			if aerr == nil {
				t.Fatal("validate accepted a bad request")
			}
			if aerr.field != tc.field {
				t.Errorf("field = %q, want %q (%v)", aerr.field, tc.field, aerr)
			}
			if aerr.status != http.StatusBadRequest {
				t.Errorf("status = %d", aerr.status)
			}
		})
	}
	req := good()
	if aerr := req.validate(); aerr != nil {
		t.Errorf("validate rejected a good request: %v", aerr)
	}
}

// Every request must produce exactly one structured log line carrying
// method, path, status, duration, and the degradation outcome.
func TestStructuredRequestLog(t *testing.T) {
	t.Cleanup(faultinject.Clear)
	if err := faultinject.Arm("core.fit.objective.competing-risks", "nan"); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	h := NewHandler(Config{Logger: slog.New(slog.NewJSONHandler(&buf, nil))})

	doJSON(t, h, http.MethodPost, "/v1/fit", map[string]any{
		"model":  "competing-risks",
		"values": testSeries(),
	})

	line := strings.TrimSpace(buf.String())
	if strings.Count(line, "\n") != 0 {
		t.Fatalf("expected one log line, got:\n%s", line)
	}
	var entry map[string]any
	if err := json.Unmarshal([]byte(line), &entry); err != nil {
		t.Fatalf("log line not JSON: %v\n%s", err, line)
	}
	if entry["method"] != "POST" || entry["path"] != "/v1/fit" {
		t.Errorf("method/path = %v/%v", entry["method"], entry["path"])
	}
	if s, ok := entry["status"].(float64); !ok || s != 200 {
		t.Errorf("status = %v", entry["status"])
	}
	if _, ok := entry["duration_ms"].(float64); !ok {
		t.Errorf("duration_ms = %v", entry["duration_ms"])
	}
	if entry["outcome"] != "fallback" {
		t.Errorf("outcome = %v", entry["outcome"])
	}
	if fb, _ := entry["fallback_model"].(string); fb == "" {
		t.Errorf("fallback_model = %v", entry["fallback_model"])
	}
}

// A fit deadline shorter than the injected delay must answer 504.
func TestFitTimeoutAnswersGatewayTimeout(t *testing.T) {
	t.Cleanup(faultinject.Clear)
	if err := faultinject.Arm("core.fit.delay.quadratic", "delay:5s"); err != nil {
		t.Fatal(err)
	}
	monitor.ResetCounters()
	t.Cleanup(monitor.ResetCounters)

	h := quietHandler(Config{FitTimeout: 60 * time.Millisecond})
	start := time.Now()
	rec, body := doJSON(t, h, http.MethodPost, "/v1/fit", map[string]any{
		"model":  "quadratic",
		"values": testSeries(),
	})
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("status %d: %v", rec.Code, body)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("handler held the request %v past its deadline", elapsed)
	}
	if c := monitor.Counters(); c.Cancellations != 1 {
		t.Errorf("deadline not counted: %+v", c)
	}
}
