package server

// Streaming-session endpoints: the HTTP face of internal/stream. A
// session wraps a monitor.Tracker server-side so observations can arrive
// one at a time and every update answers with the tracker's phase,
// warm-started fit, and recovery predictions. GET .../events upgrades to
// a Server-Sent Events feed pushing one event per update, so dashboards
// watch a disruption unfold without polling.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"resilience/internal/service"
	"resilience/internal/stream"
	"resilience/internal/telemetry"
)

// createSessionBody is the POST /v1/sessions request.
type createSessionBody struct {
	// Model is a registry name or alias ("" selects competing-risks).
	Model string `json:"model"`
	// Config tunes the session's monitor; zero values select defaults.
	Config stream.MonitorConfig `json:"config"`
}

// observeBody is the POST /v1/sessions/{id}/observe request. Times may
// be omitted to auto-number observations 0, 1, 2, ...
type observeBody struct {
	Times  []float64 `json:"times,omitempty"`
	Values []float64 `json:"values"`
	// Time and Value are the single-point convenience spelling; mutually
	// exclusive with Values.
	Time  *float64 `json:"time,omitempty"`
	Value *float64 `json:"value,omitempty"`
}

// observeResponse is the observe reply: one update per accepted point
// plus the session state after the chunk.
type observeResponse struct {
	Updates []stream.Update `json:"updates"`
	Session stream.Snapshot `json:"session"`
}

// writeStreamErr maps stream-subsystem errors onto HTTP statuses:
// unknown sessions to 404, a draining manager to 503, input validation
// to 400 with the offending field, and everything else through the
// fitting-pipeline mapping.
func writeStreamErr(w http.ResponseWriter, r *http.Request, err error) {
	switch {
	case errors.Is(err, stream.ErrNotFound):
		writeErr(w, r, http.StatusNotFound, err)
	case errors.Is(err, stream.ErrShutdown):
		writeErr(w, r, http.StatusServiceUnavailable, err)
	default:
		writeFitErr(w, r, err)
	}
}

func (a *api) handleSessionCreate(w http.ResponseWriter, r *http.Request) {
	var body createSessionBody
	if aerr := decodeBody(r, maxBodyBytes, &body); aerr != nil {
		writeAPIErr(w, r, aerr)
		return
	}
	if body.Model == "" {
		body.Model = "competing-risks"
	}
	snap, err := a.streams.Create(body.Model, body.Config)
	if err != nil {
		writeStreamErr(w, r, err)
		return
	}
	writeJSON(w, http.StatusCreated, snap)
}

func (a *api) handleSessionList(w http.ResponseWriter, _ *http.Request) {
	snaps := a.streams.List()
	if snaps == nil {
		snaps = []stream.Snapshot{}
	}
	writeJSON(w, http.StatusOK, map[string]any{"sessions": snaps})
}

func (a *api) handleSessionGet(w http.ResponseWriter, r *http.Request) {
	snap, err := a.streams.Snapshot(r.PathValue("id"))
	if err != nil {
		writeStreamErr(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, snap)
}

func (a *api) handleSessionDelete(w http.ResponseWriter, r *http.Request) {
	if err := a.streams.Close(r.PathValue("id")); err != nil {
		writeStreamErr(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"closed": true})
}

func (a *api) handleSessionObserve(w http.ResponseWriter, r *http.Request) {
	var body observeBody
	if aerr := decodeBody(r, maxBodyBytes, &body); aerr != nil {
		writeAPIErr(w, r, aerr)
		return
	}
	times, values := body.Times, body.Values
	if body.Value != nil {
		if len(values) > 0 {
			writeAPIErr(w, r, badField("value", "value and values are mutually exclusive"))
			return
		}
		values = []float64{*body.Value}
		if body.Time != nil {
			times = []float64{*body.Time}
		}
	}
	updates, snap, err := a.streams.Observe(r.Context(), r.PathValue("id"), times, values)
	if err != nil {
		var ierr *service.InputError
		if errors.As(err, &ierr) && len(updates) > 0 {
			// Points before the offending one were ingested; report both the
			// partial progress and the rejection in one envelope.
			writeJSON(w, http.StatusBadRequest, struct {
				observeResponse
				errorBody
			}{
				observeResponse{Updates: updates, Session: snap},
				errorBody{Error: ierr.Error(), Field: ierr.Field, RequestID: telemetry.RequestID(r.Context())},
			})
			return
		}
		writeStreamErr(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, observeResponse{Updates: updates, Session: snap})
}

// handleSessionEvents serves the session's live feed as Server-Sent
// Events: a "snapshot" event with the state at attach time, then one
// "update" event per observation and a terminal "closed" event when the
// session ends. The feed lasts until the client disconnects, the
// session closes, or the subscriber falls too far behind and is dropped.
func (a *api) handleSessionEvents(w http.ResponseWriter, r *http.Request) {
	reqID := telemetry.RequestID(r.Context())
	sub, snap, err := a.streams.Subscribe(r.PathValue("id"), reqID)
	if err != nil {
		writeStreamErr(w, r, err)
		return
	}
	defer sub.Close()

	// The server's WriteTimeout is sized for request/response bodies; a
	// feed outlives it by design, so clear the connection deadline.
	rc := http.NewResponseController(w)
	_ = rc.SetWriteDeadline(time.Time{})

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no") // tell buffering proxies to pass events through
	w.WriteHeader(http.StatusOK)
	// The snapshot event carries the feed's request ID so a client (or a
	// log reader) can correlate this connection with server-side drop
	// logs and traces.
	opening := struct {
		stream.Snapshot
		RequestID string `json:"request_id"`
	}{snap, reqID}
	if !writeSSE(w, rc, "snapshot", opening) {
		return
	}
	for {
		select {
		case ev, open := <-sub.Events():
			if !open {
				return // session ended (terminal event already sent) or we were dropped
			}
			if !writeSSE(w, rc, string(ev.Type), ev) {
				return
			}
		case <-r.Context().Done():
			return
		}
	}
}

// writeSSE emits one Server-Sent Event and flushes it to the client,
// reporting whether the connection is still usable.
func writeSSE(w http.ResponseWriter, rc *http.ResponseController, event string, v any) bool {
	data, err := json.Marshal(v)
	if err != nil {
		data, _ = json.Marshal(errorBody{Error: "encode event: " + err.Error()})
		event = "error"
	}
	if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data); err != nil {
		return false
	}
	return rc.Flush() == nil
}

// StreamShutdown drains the streaming subsystem: no new sessions or
// observations, every SSE feed receives a terminal event and closes,
// and in-flight refits are aborted. Call it before http.Server.Shutdown
// so event feeds (which otherwise hold their connections open) end and
// the listener can drain.
func (a *App) StreamShutdown(ctx context.Context) error {
	return a.Streams.Shutdown(ctx)
}
