package server

// Streaming-session endpoints: the HTTP face of internal/stream. A
// session wraps a monitor.Tracker server-side so observations can arrive
// one at a time and every update answers with the tracker's phase,
// warm-started fit, and recovery predictions. GET .../events upgrades to
// a Server-Sent Events feed pushing one event per update, so dashboards
// watch a disruption unfold without polling.
//
// When the server is clustered (Config.Cluster), sessions are sharded
// across the peer set by consistent hashing of the session ID. The
// exec* functions below route every session operation: owned sessions
// are served locally, everything else is forwarded to the owner over
// the binary transport with the request ID and trace context attached.
// Operations that cannot be forwarded mid-protocol (the SSE feed, the
// binary subscribe stream) answer with a typed redirect envelope naming
// the owner, as does any forward whose owner is unreachable — the
// client retries against the owner (or, after a node death, recreates
// the session by replaying its points onto the new owner).

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"resilience/internal/cluster"
	"resilience/internal/service"
	"resilience/internal/stream"
	"resilience/internal/telemetry"
	"resilience/internal/transport"
)

// createSessionBody is the POST /v1/sessions request.
type createSessionBody struct {
	// Model is a registry name or alias ("" selects competing-risks).
	Model string `json:"model"`
	// Config tunes the session's monitor; zero values select defaults.
	Config stream.MonitorConfig `json:"config"`
}

// observeBody is the POST /v1/sessions/{id}/observe request. Times may
// be omitted to auto-number observations 0, 1, 2, ...
type observeBody struct {
	Times  []float64 `json:"times,omitempty"`
	Values []float64 `json:"values"`
	// Time and Value are the single-point convenience spelling; mutually
	// exclusive with Values.
	Time  *float64 `json:"time,omitempty"`
	Value *float64 `json:"value,omitempty"`
}

// observeResponse is the observe reply: one update per accepted point
// plus the session state after the chunk.
type observeResponse struct {
	Updates []stream.Update `json:"updates"`
	Session stream.Snapshot `json:"session"`
}

// sessionBody is a session snapshot plus cluster ownership: Owner is
// the ring owner's peer (binary) address, Node is the peer that
// answered. Single-node servers return the bare snapshot, so the fields
// only appear when a cluster is configured.
type sessionBody struct {
	stream.Snapshot
	Owner string `json:"owner"`
	Node  string `json:"node"`
}

// sessionPayload wraps snap with ownership when clustered.
func (a *api) sessionPayload(snap stream.Snapshot) any {
	if a.cluster == nil {
		return snap
	}
	return sessionBody{Snapshot: snap, Owner: a.cluster.Owner(snap.ID), Node: a.cluster.Self()}
}

// redirectBody is the typed redirect envelope for session operations
// that reached the wrong node and could not (or must not) be forwarded:
// Owner names the peer to retry against. Redirect is always true — it
// is the discriminator clients branch on.
type redirectBody struct {
	Error     string `json:"error"`
	Redirect  bool   `json:"redirect"`
	Owner     string `json:"owner"`
	Session   string `json:"session"`
	RequestID string `json:"request_id,omitempty"`
}

func (a *api) redirectPayload(ctx context.Context, id, owner, msg string) redirectBody {
	cluster.CountRedirect()
	return redirectBody{
		Error:     msg,
		Redirect:  true,
		Owner:     owner,
		Session:   id,
		RequestID: telemetry.RequestID(ctx),
	}
}

// routeSession forwards op to the session's owner when this node is not
// it. handled=false means the session is local — serve it. A forward
// that fails (owner dead, cluster draining) degrades to a 502 redirect
// envelope so the client knows both that the request went unserved and
// who should own the session now.
func (a *api) routeSession(ctx context.Context, op, id string, body map[string]any) (handled bool, status int, payload any) {
	if a.cluster == nil || a.cluster.IsLocal(id) {
		return false, 0, nil
	}
	owner := a.cluster.Owner(id)
	if body == nil {
		body = map[string]any{}
	}
	body["id"] = id
	st, tree, err := a.cluster.Forward(ctx, owner, op, body)
	if err != nil {
		return true, http.StatusBadGateway, a.redirectPayload(ctx, id, owner,
			fmt.Sprintf("session %s is owned by %s, which is unreachable: %v", id, owner, err))
	}
	return true, st, tree
}

// execSessionCreate opens a session. Creation is always local — the
// manager mints IDs until one hashes to this node — so any node in the
// peer set can take creates and the resulting session lives where it
// was created.
func (a *api) execSessionCreate(ctx context.Context, raw []byte) (int, any) {
	var body createSessionBody
	if aerr := decodeStrict(raw, &body); aerr != nil {
		return aerr.status, aerr.body(ctx)
	}
	if body.Model == "" {
		body.Model = "competing-risks"
	}
	snap, err := a.streams.Create(body.Model, body.Config)
	if err != nil {
		return streamErrPayload(ctx, err)
	}
	return http.StatusCreated, a.sessionPayload(snap)
}

// execSessionList lists this node's sessions. Listing is shard-local by
// design — a cluster-wide list would need a scatter-gather over every
// peer; the ownership fields tell the caller which node they asked.
func (a *api) execSessionList(ctx context.Context) (int, any) {
	snaps := a.streams.List()
	out := make([]any, 0, len(snaps))
	for _, snap := range snaps {
		out = append(out, a.sessionPayload(snap))
	}
	return http.StatusOK, map[string]any{"sessions": out}
}

func (a *api) execSessionGet(ctx context.Context, id string) (int, any) {
	if handled, st, payload := a.routeSession(ctx, transport.OpSessionGet, id, nil); handled {
		return st, payload
	}
	snap, err := a.streams.Snapshot(id)
	if err != nil {
		return streamErrPayload(ctx, err)
	}
	return http.StatusOK, a.sessionPayload(snap)
}

func (a *api) execSessionDelete(ctx context.Context, id string) (int, any) {
	if handled, st, payload := a.routeSession(ctx, transport.OpSessionDelete, id, nil); handled {
		return st, payload
	}
	if err := a.streams.Close(id); err != nil {
		return streamErrPayload(ctx, err)
	}
	return http.StatusOK, map[string]bool{"closed": true}
}

func (a *api) execSessionObserve(ctx context.Context, id string, raw []byte) (int, any) {
	if a.cluster != nil && !a.cluster.IsLocal(id) {
		// Forward the original fields verbatim; they are validated by the
		// owner, exactly as a direct request there would be.
		var fields map[string]any
		if len(raw) > 0 {
			if err := json.Unmarshal(raw, &fields); err != nil {
				aerr := &apiError{status: http.StatusBadRequest, err: fmt.Errorf("decode request: %w", err)}
				return aerr.status, aerr.body(ctx)
			}
		}
		_, st, payload := a.routeSession(ctx, transport.OpSessionObserve, id, fields)
		return st, payload
	}

	var body observeBody
	if aerr := decodeStrict(raw, &body); aerr != nil {
		return aerr.status, aerr.body(ctx)
	}
	times, values := body.Times, body.Values
	if body.Value != nil {
		if len(values) > 0 {
			aerr := badField("value", "value and values are mutually exclusive")
			return aerr.status, aerr.body(ctx)
		}
		values = []float64{*body.Value}
		if body.Time != nil {
			times = []float64{*body.Time}
		}
	}
	updates, snap, err := a.streams.Observe(ctx, id, times, values)
	if err != nil {
		var ierr *service.InputError
		if errors.As(err, &ierr) && len(updates) > 0 {
			// Points before the offending one were ingested; report both the
			// partial progress and the rejection in one envelope.
			return http.StatusBadRequest, struct {
				observeResponse
				errorBody
			}{
				observeResponse{Updates: updates, Session: snap},
				errorBody{Error: ierr.Error(), Field: ierr.Field, RequestID: telemetry.RequestID(ctx)},
			}
		}
		return streamErrPayload(ctx, err)
	}
	return http.StatusOK, observeResponse{Updates: updates, Session: snap}
}

func (a *api) handleSessionCreate(w http.ResponseWriter, r *http.Request) {
	execHTTP(maxBodyBytes, a.execSessionCreate)(w, r)
}

func (a *api) handleSessionList(w http.ResponseWriter, r *http.Request) {
	status, payload := a.execSessionList(r.Context())
	writeJSON(w, status, payload)
}

func (a *api) handleSessionGet(w http.ResponseWriter, r *http.Request) {
	status, payload := a.execSessionGet(r.Context(), r.PathValue("id"))
	writeJSON(w, status, payload)
}

func (a *api) handleSessionDelete(w http.ResponseWriter, r *http.Request) {
	status, payload := a.execSessionDelete(r.Context(), r.PathValue("id"))
	writeJSON(w, status, payload)
}

func (a *api) handleSessionObserve(w http.ResponseWriter, r *http.Request) {
	raw, aerr := readBody(r.Context(), r.Body, maxBodyBytes)
	if aerr != nil {
		writeAPIErr(w, r, aerr)
		return
	}
	status, payload := a.execSessionObserve(r.Context(), r.PathValue("id"), raw)
	writeJSON(w, status, payload)
}

// handleSessionEvents serves the session's live feed as Server-Sent
// Events: a "snapshot" event with the state at attach time, then one
// "update" event per observation and a terminal "closed" event when the
// session ends. The feed lasts until the client disconnects, the
// session closes, or the subscriber falls too far behind and is dropped.
//
// A feed cannot be forwarded mid-protocol, so a clustered node answers
// requests for non-owned sessions with a typed redirect (421) naming
// the owner, and the client reconnects there.
func (a *api) handleSessionEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if a.cluster != nil && !a.cluster.IsLocal(id) {
		owner := a.cluster.Owner(id)
		writeJSON(w, http.StatusMisdirectedRequest, a.redirectPayload(r.Context(), id, owner,
			fmt.Sprintf("session %s is owned by %s; reconnect there", id, owner)))
		return
	}
	reqID := telemetry.RequestID(r.Context())
	sub, snap, err := a.streams.Subscribe(id, reqID)
	if err != nil {
		status, payload := streamErrPayload(r.Context(), err)
		writeJSON(w, status, payload)
		return
	}
	defer sub.Close()

	// The server's WriteTimeout is sized for request/response bodies; a
	// feed outlives it by design, so clear the connection deadline.
	rc := http.NewResponseController(w)
	_ = rc.SetWriteDeadline(time.Time{})

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no") // tell buffering proxies to pass events through
	w.WriteHeader(http.StatusOK)
	// The snapshot event carries the feed's request ID so a client (or a
	// log reader) can correlate this connection with server-side drop
	// logs and traces.
	opening := struct {
		stream.Snapshot
		RequestID string `json:"request_id"`
	}{snap, reqID}
	if !writeSSE(w, rc, "snapshot", opening) {
		return
	}
	for {
		select {
		case ev, open := <-sub.Events():
			if !open {
				return // session ended (terminal event already sent) or we were dropped
			}
			if !writeSSE(w, rc, string(ev.Type), ev) {
				return
			}
		case <-r.Context().Done():
			return
		}
	}
}

// writeSSE emits one Server-Sent Event and flushes it to the client,
// reporting whether the connection is still usable.
func writeSSE(w http.ResponseWriter, rc *http.ResponseController, event string, v any) bool {
	data, err := json.Marshal(v)
	if err != nil {
		data, _ = json.Marshal(errorBody{Error: "encode event: " + err.Error()})
		event = "error"
	}
	if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data); err != nil {
		return false
	}
	return rc.Flush() == nil
}

// StreamShutdown drains the streaming subsystem: no new sessions or
// observations, every SSE feed receives a terminal event and closes,
// and in-flight refits are aborted. Call it before http.Server.Shutdown
// so event feeds (which otherwise hold their connections open) end and
// the listener can drain.
func (a *App) StreamShutdown(ctx context.Context) error {
	return a.Streams.Shutdown(ctx)
}
