package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func testSeries() []float64 {
	vals := make([]float64, 36)
	for i := range vals {
		x := float64(i)
		vals[i] = 1 - 0.03*math.Sin(math.Pi*math.Min(x/28, 1)) + 0.0008*math.Max(0, x-28)
	}
	return vals
}

func doJSON(t *testing.T, h http.Handler, method, path string, body any) (*httptest.ResponseRecorder, map[string]any) {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req := httptest.NewRequest(method, path, &buf)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	var parsed map[string]any
	if rec.Body.Len() > 0 {
		if err := json.Unmarshal(rec.Body.Bytes(), &parsed); err != nil {
			t.Fatalf("%s %s: response not JSON: %v\n%s", method, path, err, rec.Body.String())
		}
	}
	return rec, parsed
}

func TestHealthz(t *testing.T) {
	rec, body := doJSON(t, Handler(), http.MethodGet, "/healthz", nil)
	if rec.Code != http.StatusOK || body["status"] != "ok" {
		t.Errorf("healthz: %d %v", rec.Code, body)
	}
}

func TestModels(t *testing.T) {
	rec, body := doJSON(t, Handler(), http.MethodGet, "/v1/models", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	models, ok := body["models"].([]any)
	if !ok || len(models) != 7 {
		t.Errorf("models = %v", body["models"])
	}
}

func TestDatasetsCatalog(t *testing.T) {
	rec, body := doJSON(t, Handler(), http.MethodGet, "/v1/datasets", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	ds, ok := body["datasets"].([]any)
	if !ok || len(ds) != 7 {
		t.Fatalf("datasets = %v", body["datasets"])
	}
	first, ok := ds[0].(map[string]any)
	if !ok || first["name"] != "1974-76" {
		t.Errorf("first dataset = %v", ds[0])
	}
}

func TestDatasetByName(t *testing.T) {
	rec, body := doJSON(t, Handler(), http.MethodGet, "/v1/datasets/1990-93", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %v", rec.Code, body)
	}
	series, ok := body["series"].(map[string]any)
	if !ok {
		t.Fatalf("series missing: %v", body)
	}
	values, ok := series["values"].([]any)
	if !ok || len(values) != 48 {
		t.Errorf("values: %d entries", len(values))
	}
	rec, _ = doJSON(t, Handler(), http.MethodGet, "/v1/datasets/nope", nil)
	if rec.Code != http.StatusNotFound {
		t.Errorf("unknown dataset: status %d", rec.Code)
	}
}

func TestFitEndpoint(t *testing.T) {
	rec, body := doJSON(t, Handler(), http.MethodPost, "/v1/fit", map[string]any{
		"model":  "competing-risks",
		"values": testSeries(),
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %v", rec.Code, body)
	}
	if body["model"] != "competing-risks" {
		t.Errorf("model = %v", body["model"])
	}
	params, ok := body["params"].([]any)
	if !ok || len(params) != 3 {
		t.Errorf("params = %v", body["params"])
	}
	gof, ok := body["gof"].(map[string]any)
	if !ok {
		t.Fatalf("gof missing")
	}
	if r2, ok := gof["r2adj"].(float64); !ok || r2 < 0.8 {
		t.Errorf("r2adj = %v", gof["r2adj"])
	}
}

func TestPredictEndpoint(t *testing.T) {
	rec, body := doJSON(t, Handler(), http.MethodPost, "/v1/predict", map[string]any{
		"model":  "quadratic",
		"values": testSeries(),
		"level":  1.0,
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %v", rec.Code, body)
	}
	if reached, ok := body["recovery_reached"].(bool); !ok || !reached {
		t.Errorf("recovery_reached = %v (%v)", body["recovery_reached"], body)
	}
	tr, ok := body["recovery_time"].(float64)
	if !ok || tr < 5 || tr > 60 {
		t.Errorf("recovery_time = %v", body["recovery_time"])
	}
	td, ok := body["minimum_time"].(float64)
	if !ok || td <= 0 || td >= tr {
		t.Errorf("minimum_time = %v", body["minimum_time"])
	}
}

func TestMetricsEndpoint(t *testing.T) {
	rec, body := doJSON(t, Handler(), http.MethodPost, "/v1/metrics", map[string]any{
		"model":  "weibull-exp",
		"values": testSeries(),
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %v", rec.Code, body)
	}
	metrics, ok := body["metrics"].([]any)
	if !ok || len(metrics) != 8 {
		t.Fatalf("metrics = %v", body["metrics"])
	}
	row, ok := metrics[0].(map[string]any)
	if !ok || row["name"] != "performance preserved" {
		t.Errorf("first metric = %v", metrics[0])
	}
}

func TestBadRequests(t *testing.T) {
	h := Handler()
	cases := []struct {
		name string
		body any
		want int
	}{
		{"unknown model", map[string]any{"model": "nope", "values": testSeries()}, http.StatusBadRequest},
		{"missing model", map[string]any{"values": testSeries()}, http.StatusBadRequest},
		{"empty values", map[string]any{"model": "quadratic", "values": []float64{}}, http.StatusBadRequest},
		{"NaN-free but too short", map[string]any{"model": "quadratic", "values": []float64{1, 0.9, 1}}, http.StatusUnprocessableEntity},
		{"mismatched times", map[string]any{"model": "quadratic", "times": []float64{0, 1}, "values": testSeries()}, http.StatusBadRequest},
		{"unknown field", map[string]any{"model": "quadratic", "values": testSeries(), "bogus": 1}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec, body := doJSON(t, h, http.MethodPost, "/v1/fit", tc.body)
			if rec.Code != tc.want {
				t.Errorf("status %d, want %d (%v)", rec.Code, tc.want, body)
			}
			if _, ok := body["error"]; !ok {
				t.Error("error body missing")
			}
		})
	}
}

func TestMalformedJSON(t *testing.T) {
	req := httptest.NewRequest(http.MethodPost, "/v1/fit", strings.NewReader("{not json"))
	rec := httptest.NewRecorder()
	Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("status %d", rec.Code)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	req := httptest.NewRequest(http.MethodGet, "/v1/fit", nil)
	rec := httptest.NewRecorder()
	Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/fit: status %d", rec.Code)
	}
}

func TestOversizeBodyRejected(t *testing.T) {
	big := fmt.Sprintf(`{"model":"quadratic","values":[%s1]}`,
		strings.Repeat("1,", maxBodyBytes/2))
	req := httptest.NewRequest(http.MethodPost, "/v1/fit", strings.NewReader(big))
	rec := httptest.NewRecorder()
	Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Errorf("oversize body: status %d, want 413", rec.Code)
	}
	var body map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("413 body not JSON: %v", err)
	}
	if _, ok := body["error"]; !ok {
		t.Error("413 envelope missing error field")
	}
}

func TestServerConfig(t *testing.T) {
	srv := New(":0")
	if srv.ReadTimeout <= 0 || srv.WriteTimeout <= 0 || srv.IdleTimeout <= 0 {
		t.Error("server missing timeouts")
	}
	if srv.Handler == nil {
		t.Error("server missing handler")
	}
}

func TestExplicitTimesAccepted(t *testing.T) {
	vals := testSeries()
	times := make([]float64, len(vals))
	for i := range times {
		times[i] = float64(i) * 0.5 // half-month sampling
	}
	rec, body := doJSON(t, Handler(), http.MethodPost, "/v1/fit", map[string]any{
		"model":  "competing-risks",
		"times":  times,
		"values": vals,
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %v", rec.Code, body)
	}
}

func TestForecastEndpoint(t *testing.T) {
	rec, body := doJSON(t, Handler(), http.MethodPost, "/v1/forecast", map[string]any{
		"model":  "competing-risks",
		"values": testSeries(),
		"steps":  4,
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %v", rec.Code, body)
	}
	times, ok := body["times"].([]any)
	if !ok || len(times) != 4 {
		t.Fatalf("times = %v", body["times"])
	}
	// Forecast continues the sampling grid: first future time is 36.
	if t0, ok := times[0].(float64); !ok || t0 != 36 {
		t.Errorf("first forecast time = %v", times[0])
	}
	mean, _ := body["mean"].([]any)
	lower, _ := body["lower"].([]any)
	upper, _ := body["upper"].([]any)
	if len(mean) != 4 || len(lower) != 4 || len(upper) != 4 {
		t.Error("band lengths")
	}
	if lower[0].(float64) >= upper[0].(float64) {
		t.Error("band inverted")
	}
}

func TestInterventionEndpoint(t *testing.T) {
	rec, body := doJSON(t, Handler(), http.MethodPost, "/v1/intervention", map[string]any{
		"model":              "competing-risks",
		"values":             testSeries(),
		"intervention_start": 5,
		"intervention_accel": 2,
		"level":              0.995,
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %v", rec.Code, body)
	}
	gain, ok := body["performance_preserved_gain"].(float64)
	if !ok || gain < 0 {
		t.Errorf("preserved gain = %v", body["performance_preserved_gain"])
	}
	rec, body = doJSON(t, Handler(), http.MethodPost, "/v1/intervention", map[string]any{
		"model":              "quadratic",
		"values":             testSeries(),
		"intervention_start": -5,
		"intervention_accel": 2,
	})
	if rec.Code != http.StatusUnprocessableEntity {
		t.Errorf("bad intervention: status %d (%v)", rec.Code, body)
	}
}
