package server

// The transport-agnostic operation layer. Each exec* function runs one
// API operation from raw JSON body bytes to a (status, payload) pair,
// with payload a JSON-marshalable value — never touching an
// http.ResponseWriter. The HTTP handlers in server.go and the binary
// adapter in binary.go are both thin shells over these functions, which
// is what keeps the two transports payload-equivalent by construction.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"runtime/debug"

	"resilience/internal/core"
	"resilience/internal/durable"
	"resilience/internal/faultinject"
	"resilience/internal/monitor"
	"resilience/internal/optimize"
	"resilience/internal/registry"
	"resilience/internal/scenario"
	"resilience/internal/service"
	"resilience/internal/stream"
	"resilience/internal/telemetry"
)

// readBody slurps a request body under limit with the shared hardening:
// fault injection and a byte cap answered with 413. It accepts a plain
// io.Reader so the HTTP body and the binary adapter's re-marshaled
// bytes go through the identical path.
func readBody(ctx context.Context, body io.Reader, limit int64) ([]byte, *apiError) {
	if faultinject.Enabled() {
		faultinject.Fire("server.decode")
		faultinject.Sleep(ctx, "server.decode.delay")
	}
	raw, err := io.ReadAll(io.LimitReader(body, limit+1))
	if err != nil {
		return nil, &apiError{
			status: http.StatusBadRequest,
			err:    fmt.Errorf("read request: %w", err),
		}
	}
	if int64(len(raw)) > limit {
		return nil, &apiError{
			status: http.StatusRequestEntityTooLarge,
			err:    fmt.Errorf("request body exceeds %d bytes", limit),
		}
	}
	return raw, nil
}

// decodeStrict parses JSON bytes into dst, rejecting unknown fields.
func decodeStrict(raw []byte, dst any) *apiError {
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return &apiError{
			status: http.StatusBadRequest,
			err:    fmt.Errorf("decode request: %w", err),
		}
	}
	return nil
}

// body renders the error as the standard JSON envelope.
func (e *apiError) body(ctx context.Context) errorBody {
	return errorBody{Error: e.err.Error(), Field: e.field, RequestID: telemetry.RequestID(ctx)}
}

// errPayload builds a plain error envelope bound to a status.
func errPayload(ctx context.Context, status int, err error) (int, any) {
	return status, errorBody{Error: err.Error(), RequestID: telemetry.RequestID(ctx)}
}

// fitErrPayload maps a fitting-pipeline error to its status and
// envelope: input validation to 400 with the offending field, client
// disconnects to 499, server-imposed deadlines to 504, contained panics
// to 500, and everything else (bad data, non-convergence with fallback
// disabled or exhausted) to 422.
func fitErrPayload(ctx context.Context, err error) (int, any) {
	var ierr *service.InputError
	switch {
	case errors.As(err, &ierr):
		e := &apiError{status: http.StatusBadRequest, field: ierr.Field, err: ierr}
		return e.status, e.body(ctx)
	case errors.Is(err, context.Canceled):
		return errPayload(ctx, statusClientClosedRequest, err)
	case errors.Is(err, context.DeadlineExceeded):
		return errPayload(ctx, http.StatusGatewayTimeout, err)
	case errors.Is(err, optimize.ErrOptimizerPanic):
		return errPayload(ctx, http.StatusInternalServerError, err)
	default:
		return errPayload(ctx, http.StatusUnprocessableEntity, err)
	}
}

// streamErrPayload maps stream-subsystem errors: unknown sessions to
// 404, a draining manager to 503, everything else through the
// fitting-pipeline mapping.
func streamErrPayload(ctx context.Context, err error) (int, any) {
	switch {
	case errors.Is(err, stream.ErrNotFound):
		return errPayload(ctx, http.StatusNotFound, err)
	case errors.Is(err, stream.ErrShutdown):
		return errPayload(ctx, http.StatusServiceUnavailable, err)
	default:
		return fitErrPayload(ctx, err)
	}
}

// annotateOutcome stamps the request's structured log line with the fit
// outcome: cache hits as "cached", degradation-chain results as
// "fallback"/"retried", and failures as "error". The monitor counters
// are maintained by the service layer, which only counts actual
// optimizer work.
func annotateOutcome(ctx context.Context, info *core.DegradeInfo, cached bool, err error) {
	meta := metaFrom(ctx)
	if meta == nil {
		return
	}
	switch {
	case err != nil:
		meta.outcome = "error"
	case cached:
		meta.outcome = "cached"
	case info != nil && info.FallbackUsed:
		meta.outcome = "fallback"
		meta.fallback = info.UsedModel
	case info != nil && info.Degraded:
		meta.outcome = "retried"
	default:
		meta.outcome = "ok"
	}
}

// decodeModel parses and validates the shared fit-family request body.
func decodeModel(raw []byte) (*modelRequest, *apiError) {
	var req modelRequest
	if aerr := decodeStrict(raw, &req); aerr != nil {
		return nil, aerr
	}
	if aerr := req.validate(); aerr != nil {
		return nil, aerr
	}
	return &req, nil
}

// modelOp runs one fit-family operation: decode, dispatch to the
// service, annotate, and render via build.
func modelOp[T any](a *api, ctx context.Context, raw []byte,
	call func(context.Context, service.Request) (*T, error),
	build func(*T) any,
) (int, any) {
	req, aerr := decodeModel(raw)
	if aerr != nil {
		return aerr.status, aerr.body(ctx)
	}
	out, err := call(ctx, req.toService())
	if err != nil {
		annotateOutcome(ctx, nil, false, err)
		return fitErrPayload(ctx, err)
	}
	return http.StatusOK, build(out)
}

func (a *api) execFit(ctx context.Context, raw []byte) (int, any) {
	return modelOp(a, ctx, raw, a.svc.Fit, func(out *service.FitOutcome) any {
		annotateOutcome(ctx, out.Degrade, out.Cached, nil)
		return buildFitResponse(out)
	})
}

func (a *api) execPredict(ctx context.Context, raw []byte) (int, any) {
	return modelOp(a, ctx, raw, a.svc.Predict, func(out *service.PredictOutcome) any {
		annotateOutcome(ctx, out.Degrade, out.Cached, nil)
		return buildPredictResponse(out)
	})
}

func (a *api) execMetrics(ctx context.Context, raw []byte) (int, any) {
	return modelOp(a, ctx, raw, a.svc.Metrics, func(out *service.MetricsOutcome) any {
		annotateOutcome(ctx, out.Degrade, out.Cached, nil)
		return buildMetricsResponse(out)
	})
}

func (a *api) execForecast(ctx context.Context, raw []byte) (int, any) {
	return modelOp(a, ctx, raw, a.svc.Forecast, func(out *service.ForecastOutcome) any {
		annotateOutcome(ctx, out.Degrade, out.Cached, nil)
		return buildForecastResponse(out)
	})
}

func (a *api) execIntervention(ctx context.Context, raw []byte) (int, any) {
	return modelOp(a, ctx, raw, a.svc.Intervention, func(out *service.InterventionOutcome) any {
		annotateOutcome(ctx, out.Degrade, out.Cached, nil)
		return buildInterventionResponse(out)
	})
}

// execBatch fits many series×model jobs through the service's bounded
// worker pool. Job failures are reported per-item; the request as a
// whole only fails on a malformed envelope, an over-limit job count, or
// cancellation. Results are deterministic: a parallel batch is
// bit-identical to the same jobs run sequentially through fit.
func (a *api) execBatch(ctx context.Context, raw []byte) (int, any) {
	var breq batchRequestBody
	if aerr := decodeStrict(raw, &breq); aerr != nil {
		return aerr.status, aerr.body(ctx)
	}
	if breq.Workers < 0 {
		aerr := badField("workers", "workers %d must be non-negative; 0 selects min(jobs, GOMAXPROCS)", breq.Workers)
		return aerr.status, aerr.body(ctx)
	}
	jobs := make([]service.Request, len(breq.Jobs))
	for i, j := range breq.Jobs {
		jobs[i] = service.Request{
			Model: j.Model, Times: j.Times, Values: j.Values,
			TrainFraction: j.TrainFraction,
		}
	}
	items, err := a.svc.Batch(ctx, jobs, breq.Workers)
	if err != nil {
		annotateOutcome(ctx, nil, false, err)
		return fitErrPayload(ctx, err)
	}
	resp := batchResponse{
		Jobs:    len(items),
		Workers: service.EffectiveWorkers(breq.Workers, len(jobs)),
		Results: make([]batchItemBody, len(items)),
	}
	for i, item := range items {
		body := batchItemBody{Index: item.Index}
		if item.Err != nil {
			resp.Failed++
			body.Error = item.Err.Error()
			var ierr *service.InputError
			if errors.As(item.Err, &ierr) {
				body.Field = ierr.Field
			}
		} else {
			fr := buildFitResponse(item.Outcome)
			body.fitResponse = &fr
		}
		resp.Results[i] = body
	}
	if meta := metaFrom(ctx); meta != nil {
		if resp.Failed > 0 {
			meta.outcome = "error"
		} else {
			meta.outcome = "ok"
		}
	}
	return http.StatusOK, resp
}

// maxSimulateObservations bounds one simulate response:
// count × systems × horizon observations, which keeps the JSON reply in
// the same size class as a maximal batch reply. Larger studies belong
// client-side (the CLI study runner streams chunks through batch).
const maxSimulateObservations = 262_144

// execSimulate renders a deterministic scenario set from an inline spec
// or a named preset. Generation is seeded and indexed, so the same
// request body always yields the same reply, on either transport.
func (a *api) execSimulate(ctx context.Context, raw []byte) (int, any) {
	var sreq simulateRequestBody
	if aerr := decodeStrict(raw, &sreq); aerr != nil {
		return aerr.status, aerr.body(ctx)
	}
	if sreq.Spec != nil && sreq.Preset != "" {
		aerr := badField("preset", "spec and preset are mutually exclusive")
		return aerr.status, aerr.body(ctx)
	}
	spec := scenario.Spec{}
	if sreq.Spec != nil {
		spec = *sreq.Spec
	} else {
		name := sreq.Preset
		if name == "" {
			name = "pair"
		}
		var err error
		if spec, err = scenario.Preset(name); err != nil {
			aerr := badField("preset", "%s", err.Error())
			return aerr.status, aerr.body(ctx)
		}
	}
	count := sreq.Count
	if count == 0 {
		count = 1
	}
	if count < 0 || count > scenario.MaxSetCount {
		aerr := badField("count", "count %d outside [1, %d]", count, scenario.MaxSetCount)
		return aerr.status, aerr.body(ctx)
	}
	if err := spec.Validate(); err != nil {
		aerr := badField("spec", "%s", err.Error())
		return aerr.status, aerr.body(ctx)
	}
	if obs := count * len(spec.Systems) * spec.Horizon; obs > maxSimulateObservations {
		aerr := badField("count", "%d observations (count × systems × horizon) exceeds the per-request limit %d; run larger sets client-side", obs, maxSimulateObservations)
		return aerr.status, aerr.body(ctx)
	}
	set, err := scenario.GenerateSet(ctx, spec, count, sreq.Seed, sreq.Workers)
	if err != nil {
		annotateOutcome(ctx, nil, false, err)
		return errPayload(ctx, http.StatusBadRequest, err)
	}
	if meta := metaFrom(ctx); meta != nil {
		meta.outcome = "ok"
	}
	return http.StatusOK, simulateResponse{
		Count:   len(set.Scenarios),
		Classes: set.Classes(),
		Set:     set,
	}
}

// buildPredictResponse renders a service predict outcome.
func buildPredictResponse(out *service.PredictOutcome) predictResponse {
	db := degradeFields(out.Degrade)
	db.Cached = out.Cached
	resp := predictResponse{
		Model:            out.Fit.Model.Name(),
		MinimumTime:      out.MinimumTime,
		MinimumValue:     out.MinimumValue,
		RecoveryLevel:    out.RecoveryLevel,
		RecoveryTime:     out.RecoveryTime,
		RecoveryReached:  out.RecoveryReached,
		RecoveryErrorMsg: out.RecoveryErr,
		degradeBody:      db,
	}
	// NaN does not survive JSON; encode unreached recovery as the -1
	// sentinel.
	if math.IsNaN(resp.RecoveryTime) {
		resp.RecoveryTime = -1
	}
	return resp
}

// buildMetricsResponse renders a service metrics outcome.
func buildMetricsResponse(out *service.MetricsOutcome) metricsResponse {
	db := degradeFields(out.Degrade)
	db.Cached = out.Cached
	resp := metricsResponse{Model: out.Validation.Fit.Model.Name(), degradeBody: db}
	for _, row := range out.Rows {
		resp.Metrics = append(resp.Metrics, metricComparisonBody{
			Name:          row.Kind.String(),
			Actual:        jsonSafe(row.Actual),
			Predicted:     jsonSafe(row.Predicted),
			RelativeError: jsonSafe(row.RelErr),
		})
	}
	return resp
}

// buildForecastResponse renders a service forecast outcome.
func buildForecastResponse(out *service.ForecastOutcome) forecastResponse {
	db := degradeFields(out.Degrade)
	db.Cached = out.Cached
	fc := out.Forecast
	return forecastResponse{
		Model: out.Fit.Model.Name(),
		Times: fc.Times, Mean: fc.Mean, Lower: fc.Lower, Upper: fc.Upper,
		Sigma:       fc.Sigma,
		degradeBody: db,
	}
}

// buildInterventionResponse renders a service intervention outcome.
func buildInterventionResponse(out *service.InterventionOutcome) interventionResponse {
	db := degradeFields(out.Degrade)
	db.Cached = out.Cached
	impact := out.Impact
	return interventionResponse{
		Model:              out.Fit.Model.Name(),
		BaselineRecovery:   jsonSafe(impact.BaselineRecovery),
		IntervenedRecovery: jsonSafe(impact.IntervenedRecovery),
		RecoverySaved:      jsonSafe(impact.RecoverySaved),
		PreservedGain: jsonSafe(impact.Intervened[core.PerformancePreserved] -
			impact.Baseline[core.PerformancePreserved]),
		degradeBody: db,
	}
}

// versionPayload reports build information.
func versionPayload() any {
	out := map[string]string{"version": Version}
	if bi, ok := debug.ReadBuildInfo(); ok {
		out["go"] = bi.GoVersion
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				out["revision"] = s.Value
			case "vcs.time":
				out["build_time"] = s.Value
			}
		}
	}
	return out
}

// modelsPayload serves the model catalog: the legacy bare "models" name
// list (kept for compatibility) plus per-model registry metadata under
// "details".
func modelsPayload() any {
	all := registry.All()
	details := make([]modelDetail, 0, len(all))
	for _, e := range all {
		details = append(details, modelDetail{
			Name: e.Name, Aliases: e.Aliases, Family: e.Family,
			Description: e.Description, ParamNames: e.ParamNames,
			Capabilities: e.Caps, FallbackRank: e.FallbackRank,
		})
	}
	return map[string]any{
		"models":  registry.Names(),
		"details": details,
	}
}

// statsPayload exposes the process-wide counters plus per-route
// latency, stream/durable/cluster/runtime health, the SLO budget, and
// current exemplars.
func (a *api) statsPayload() any {
	resp := statsResponse{
		CounterSnapshot: monitor.Counters(),
		Stream:          stream.Stats(),
		Durable:         durable.SnapshotStats(),
		SLO:             a.slo.snapshot(),
		Runtime:         telemetry.SnapshotRuntime(),
		Traces:          traceStoreStats{Retained: telemetry.DefaultTraceStore.Len()},
	}
	if a.cluster != nil {
		cs := a.cluster.Stats()
		resp.Cluster = &cs
	}
	telemetry.EachHistogram("resil_http_request_duration_seconds", func(name string, h *telemetry.Histogram) {
		n := h.Count()
		if n == 0 {
			return
		}
		resp.Routes = append(resp.Routes, routeStats{
			Route:    telemetry.LabelValue(name, "route"),
			Requests: n,
			P50Ms:    h.Quantile(0.5) * 1000,
			P99Ms:    h.Quantile(0.99) * 1000,
		})
	})
	for _, fam := range exemplarFamilies {
		if ex := telemetry.ExemplarsInFamily(fam); len(ex) > 0 {
			if resp.Exemplars == nil {
				resp.Exemplars = map[string][]telemetry.LabeledExemplar{}
			}
			resp.Exemplars[fam] = ex
		}
	}
	return resp
}
