package server

import (
	"context"
	"log/slog"
	"net/http"
	"time"

	"resilience/internal/monitor"
)

// reqMeta travels in the request context so handlers can annotate the
// structured access log with the degradation outcome.
type reqMeta struct {
	outcome  string // "", "ok", "retried", "fallback", "error"
	fallback string // fallback model name when outcome == "fallback"
}

type metaKey struct{}

// metaFrom returns the request's log metadata holder, or nil when the
// instrumentation middleware is not installed (e.g. a handler invoked
// directly in a unit test).
func metaFrom(ctx context.Context) *reqMeta {
	m, _ := ctx.Value(metaKey{}).(*reqMeta)
	return m
}

// statusWriter captures the response status for logging and lets the
// panic-recovery middleware know whether the header was already
// committed.
type statusWriter struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (w *statusWriter) WriteHeader(status int) {
	if !w.wrote {
		w.status = status
		w.wrote = true
	}
	w.ResponseWriter.WriteHeader(status)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if !w.wrote {
		w.status = http.StatusOK
		w.wrote = true
	}
	return w.ResponseWriter.Write(b)
}

// instrument wraps the route mux with the hardening middleware:
//
//   - panic isolation: a panic that escapes a handler (model code,
//     encoder, anything) is contained, counted, and answered with a 500
//     JSON envelope if the header is still open — the process never
//     crashes and the connection is never torn down mid-body silently;
//   - one structured log line per request: method, path, status,
//     duration, and the degradation outcome set by the handler;
//   - request counters feeding GET /v1/stats.
func instrument(logger *slog.Logger, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		meta := &reqMeta{}
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		r = r.WithContext(context.WithValue(r.Context(), metaKey{}, meta))

		defer func() {
			if rec := recover(); rec != nil {
				monitor.CountPanicRecovery()
				meta.outcome = "panic"
				if !sw.wrote {
					writeJSON(sw, http.StatusInternalServerError, errorBody{
						Error: "internal error: request handler panicked",
					})
				} else {
					sw.status = http.StatusInternalServerError
				}
			}
			monitor.CountRequest(sw.status >= 400)
			attrs := []any{
				"method", r.Method,
				"path", r.URL.Path,
				"status", sw.status,
				"duration_ms", float64(time.Since(start).Microseconds()) / 1000,
			}
			if meta.outcome != "" {
				attrs = append(attrs, "outcome", meta.outcome)
			}
			if meta.fallback != "" {
				attrs = append(attrs, "fallback_model", meta.fallback)
			}
			logger.Info("request", attrs...)
		}()

		next.ServeHTTP(sw, r)
	})
}
