package server

import (
	"context"
	"log/slog"
	"net/http"
	"strings"
	"time"

	"resilience/internal/monitor"
	"resilience/internal/telemetry"
)

// reqMeta travels in the request context so handlers can annotate the
// structured access log with the degradation outcome.
type reqMeta struct {
	outcome  string // "", "ok", "retried", "fallback", "error"
	fallback string // fallback model name when outcome == "fallback"
}

type metaKey struct{}

// metaFrom returns the request's log metadata holder, or nil when the
// instrumentation middleware is not installed (e.g. a handler invoked
// directly in a unit test).
func metaFrom(ctx context.Context) *reqMeta {
	m, _ := ctx.Value(metaKey{}).(*reqMeta)
	return m
}

// statusWriter captures the response status for logging and lets the
// panic-recovery middleware know whether the header was already
// committed.
type statusWriter struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (w *statusWriter) WriteHeader(status int) {
	if !w.wrote {
		w.status = status
		w.wrote = true
	}
	w.ResponseWriter.WriteHeader(status)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if !w.wrote {
		w.status = http.StatusOK
		w.wrote = true
	}
	return w.ResponseWriter.Write(b)
}

// Unwrap exposes the underlying writer so http.ResponseController can
// reach Flush and per-connection deadline control through this wrapper —
// the SSE feed depends on both.
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

func init() {
	telemetry.RegisterFamily("resil_http_requests_total", "counter",
		"HTTP requests by route and status.")
	telemetry.RegisterFamily("resil_http_request_duration_seconds", "histogram",
		"HTTP request latency by route.")
}

// routeLabel maps a request path onto a bounded route label so metric
// cardinality cannot be driven by hostile paths. Parameterized routes
// collapse to their pattern; anything unknown collapses to "other".
func routeLabel(path string) string {
	switch path {
	case "/healthz", "/readyz", "/metrics",
		"/v1/version", "/v1/stats", "/v1/models", "/v1/datasets",
		"/v1/fit", "/v1/predict", "/v1/metrics", "/v1/forecast", "/v1/intervention", "/v1/batch",
		"/v1/sessions":
		return path
	}
	if strings.HasPrefix(path, "/v1/datasets/") {
		return "/v1/datasets/{name}"
	}
	if strings.HasPrefix(path, "/v1/sessions/") {
		switch {
		case strings.HasSuffix(path, "/observe"):
			return "/v1/sessions/{id}/observe"
		case strings.HasSuffix(path, "/events"):
			return "/v1/sessions/{id}/events"
		default:
			return "/v1/sessions/{id}"
		}
	}
	if path == "/debug/traces" {
		return "/debug/traces"
	}
	if strings.HasPrefix(path, "/debug/traces/") {
		return "/debug/traces/{id}"
	}
	if strings.HasPrefix(path, "/debug/pprof") {
		return "/debug/pprof"
	}
	return "other"
}

// requestID returns the inbound X-Request-ID when it is short and
// shell/log-safe, otherwise a freshly generated ID. Honoring the
// caller's ID lets a gateway in front of the server join its own logs to
// ours; sanitizing it keeps hostile values out of logs and headers.
func requestID(r *http.Request) string {
	id := r.Header.Get("X-Request-ID")
	if id == "" || len(id) > 64 {
		return telemetry.NewRequestID()
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		ok := c == '-' || c == '_' || c == '.' ||
			(c >= '0' && c <= '9') || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
		if !ok {
			return telemetry.NewRequestID()
		}
	}
	return id
}

// instrument wraps the route mux with the hardening and observability
// middleware:
//
//   - request identity: every request gets an ID (inbound X-Request-ID
//     honored when sane), returned in the X-Request-ID response header,
//     stamped into every JSON error envelope, and attached to the
//     context as a telemetry.Trace so the fit pipeline's spans land in
//     the access log;
//   - panic isolation: a panic that escapes a handler (model code,
//     encoder, anything) is contained, counted, and answered with a 500
//     JSON envelope if the header is still open — the process never
//     crashes and the connection is never torn down mid-body silently;
//   - one structured log line per request: method, path, status,
//     duration, request ID, trace ID, degradation outcome, and recorded
//     spans;
//   - distributed tracing: an inbound W3C traceparent header is adopted
//     (the request joins the caller's trace), otherwise a fresh trace ID
//     is minted; the response carries a traceparent naming this server's
//     root span, and the completed trace is retained in the process
//     trace store for GET /debug/traces;
//   - metrics: request counters feeding GET /v1/stats, the
//     resil_http_requests_total and resil_http_request_duration_seconds
//     series on GET /metrics (latency buckets carry trace-ID exemplars),
//     and the rolling-window SLO tracker behind the burn-rate gauges.
func instrument(logger *slog.Logger, slo *sloTracker, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		meta := &reqMeta{}
		trace := &telemetry.Trace{ID: requestID(r)}
		parentSpanID := ""
		if tid, psid, ok := telemetry.ParseTraceparent(r.Header.Get("traceparent")); ok {
			trace.TraceID = tid
			parentSpanID = psid
		} else {
			trace.TraceID = telemetry.NewTraceID()
		}
		route := routeLabel(r.URL.Path)
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		ctx := context.WithValue(r.Context(), metaKey{}, meta)
		ctx = telemetry.WithTrace(ctx, trace)
		if parentSpanID != "" {
			ctx = telemetry.WithParentSpanID(ctx, parentSpanID)
		}
		ctx, root := telemetry.StartSpanCtx(ctx, "http."+route)
		r = r.WithContext(ctx)
		sw.Header().Set("X-Request-ID", trace.ID)
		sw.Header().Set("Traceparent", telemetry.FormatTraceparent(trace.TraceID, root.SpanID()))

		defer func() {
			if rec := recover(); rec != nil {
				monitor.CountPanicRecovery()
				meta.outcome = "panic"
				if !sw.wrote {
					writeJSON(sw, http.StatusInternalServerError, errorBody{
						Error:     "internal error: request handler panicked",
						RequestID: trace.ID,
					})
				} else {
					sw.status = http.StatusInternalServerError
				}
			}
			status := ""
			if sw.status >= 500 {
				status = "HTTP " + itoa3(sw.status)
			}
			elapsed := root.EndStatus(status, telemetry.Int("status", sw.status))
			monitor.CountRequest(sw.status >= 400)
			httpMetricsFor(route, sw.status).observe(elapsed.Seconds(), trace.TraceID)
			slo.observe(sw.status, elapsed.Seconds())
			telemetry.DefaultTraceStore.Record(&telemetry.TraceRecord{
				TraceID:   trace.TraceID,
				RequestID: trace.ID,
				Route:     route,
				Method:    r.Method,
				Status:    sw.status,
				Error:     sw.status >= 500,
				Start:     start,
				Duration:  elapsed,
				Spans:     trace.Spans(),
			})
			attrs := []any{
				"method", r.Method,
				"path", r.URL.Path,
				"status", sw.status,
				"duration_ms", float64(elapsed.Microseconds()) / 1000,
				"request_id", trace.ID,
				"trace_id", trace.TraceID,
			}
			if meta.outcome != "" {
				attrs = append(attrs, "outcome", meta.outcome)
			}
			if meta.fallback != "" {
				attrs = append(attrs, "fallback_model", meta.fallback)
			}
			if spans := trace.String(); spans != "" {
				attrs = append(attrs, "spans", spans)
			}
			logger.Info("request", attrs...)
		}()

		next.ServeHTTP(sw, r)
	})
}

// httpMetrics pairs the counter and latency histogram for one
// (route, status) cell.
type httpMetrics struct {
	requests *telemetry.Counter
	latency  *telemetry.Histogram
}

func (m httpMetrics) observe(seconds float64, traceID string) {
	m.requests.Inc()
	m.latency.ObserveWithExemplar(seconds, traceID)
}

// httpMetricsFor resolves the metric handles for a route/status pair.
// Both label dimensions are bounded (routeLabel caps routes; statuses
// come from the handler's finite set), so cardinality stays small. The
// latency histogram is labeled by route only — per-status latency
// buckets would multiply series for little diagnostic value.
func httpMetricsFor(route string, status int) httpMetrics {
	return httpMetrics{
		requests: telemetry.GetOrCreateCounter("resil_http_requests_total{" +
			telemetry.Labels("route", route, "status", itoa3(status)) + "}"),
		latency: telemetry.GetOrCreateHistogram("resil_http_request_duration_seconds{"+
			telemetry.Labels("route", route)+"}", telemetry.DurationBuckets()),
	}
}

// itoa3 formats the small positive ints HTTP statuses are without fmt.
func itoa3(v int) string {
	if v <= 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
