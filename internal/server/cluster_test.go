package server

// In-process 3-node cluster suite: three Apps share a static peer
// table, each serving HTTP (httptest) and the binary protocol on a
// loopback listener. Exercises self-owned session minting, cross-node
// forwarding with ownership annotations, the typed redirect for
// non-forwardable subscriptions, and the 502 redirect shape when the
// owner is gone — the in-process twin of scripts/cluster_smoke.sh.

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"resilience/internal/cluster"
	"resilience/internal/transport"
	"resilience/internal/transport/binary"
)

type clusterNode struct {
	addr string // binary address == identity in the peer table
	app  *App
	hs   *httptest.Server
	bs   *binary.Server
	clus *cluster.Cluster
}

// startTestCluster brings up n nodes over one shared peer table. The
// binary listeners bind first (ephemeral ports) so the table is known
// before any node starts.
func startTestCluster(t *testing.T, n int) []*clusterNode {
	t.Helper()
	quiet := slog.New(slog.NewTextHandler(io.Discard, nil))

	lns := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}

	nodes := make([]*clusterNode, n)
	for i := range nodes {
		clus, err := cluster.New(cluster.Config{
			Self: addrs[i], Peers: addrs, ForwardTimeout: 5 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		app := NewApp(Config{Logger: quiet, Cluster: clus})
		bs := binary.NewServer(app.BinaryHandler(), nil)
		go bs.Serve(lns[i])
		hs := httptest.NewServer(app.Handler)
		nodes[i] = &clusterNode{addr: addrs[i], app: app, hs: hs, bs: bs, clus: clus}
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		for _, nd := range nodes {
			nd.hs.Close()
			nd.bs.Shutdown(ctx)
			nd.clus.Shutdown(ctx)
		}
	})
	return nodes
}

// httpJSON issues one request against a node's HTTP listener.
func httpJSON(t *testing.T, base, method, path string, body any) (int, map[string]any) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(raw)
	}
	req, err := http.NewRequest(method, base+path, rd)
	if err != nil {
		t.Fatal(err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var tree map[string]any
	if len(raw) > 0 {
		if err := json.Unmarshal(raw, &tree); err != nil {
			t.Fatalf("%s %s: non-JSON body %q", method, path, raw)
		}
	}
	return resp.StatusCode, tree
}

func TestClusterSelfOwnedMinting(t *testing.T) {
	nodes := startTestCluster(t, 3)
	// Every node must mint session IDs it owns, so creates never hop.
	for i, nd := range nodes {
		status, body := httpJSON(t, nd.hs.URL, http.MethodPost, "/v1/sessions",
			map[string]any{"model": "quadratic"})
		if status != http.StatusCreated {
			t.Fatalf("node %d create: status %d: %v", i, status, body)
		}
		if owner := body["owner"]; owner != nd.addr {
			t.Errorf("node %d minted a session owned by %v, want self %s", i, owner, nd.addr)
		}
		if node := body["node"]; node != nd.addr {
			t.Errorf("node %d reports answering node %v, want %s", i, node, nd.addr)
		}
		id, _ := body["id"].(string)
		if !nd.clus.IsLocal(id) {
			t.Errorf("node %d: minted ID %q not local on the ring", i, id)
		}
	}
}

func TestClusterForwardedSessionOps(t *testing.T) {
	nodes := startTestCluster(t, 3)
	owner, other := nodes[0], nodes[1]

	status, body := httpJSON(t, owner.hs.URL, http.MethodPost, "/v1/sessions",
		map[string]any{"model": "quadratic"})
	if status != http.StatusCreated {
		t.Fatalf("create: status %d: %v", status, body)
	}
	id := body["id"].(string)

	// Get through a non-owner: forwarded, same ownership annotations.
	status, body = httpJSON(t, other.hs.URL, http.MethodGet, "/v1/sessions/"+id, nil)
	if status != http.StatusOK {
		t.Fatalf("forwarded get: status %d: %v", status, body)
	}
	if body["owner"] != owner.addr {
		t.Errorf("forwarded get owner = %v, want %s", body["owner"], owner.addr)
	}

	// Observe through a non-owner: applied on the owner.
	status, body = httpJSON(t, other.hs.URL, http.MethodPost, "/v1/sessions/"+id+"/observe",
		map[string]any{"values": []float64{1.0, 0.99, 0.98, 0.97}})
	if status != http.StatusOK {
		t.Fatalf("forwarded observe: status %d: %v", status, body)
	}
	status, body = httpJSON(t, owner.hs.URL, http.MethodGet, "/v1/sessions/"+id, nil)
	if status != http.StatusOK {
		t.Fatalf("get after forwarded observe: status %d", status)
	}
	if obs, _ := body["observations"].(float64); obs != 4 {
		t.Errorf("observations = %v after forwarded observe, want 4", body["observations"])
	}

	// Partial-progress validation errors survive the forward hop.
	status, body = httpJSON(t, other.hs.URL, http.MethodPost, "/v1/sessions/"+id+"/observe",
		map[string]any{"values": []float64{0.96}, "value": 0.95})
	if status != http.StatusBadRequest {
		t.Fatalf("invalid forwarded observe: status %d: %v", status, body)
	}

	// Delete through a non-owner removes it everywhere.
	status, _ = httpJSON(t, other.hs.URL, http.MethodDelete, "/v1/sessions/"+id, nil)
	if status != http.StatusOK {
		t.Fatalf("forwarded delete: status %d", status)
	}
	status, _ = httpJSON(t, owner.hs.URL, http.MethodGet, "/v1/sessions/"+id, nil)
	if status != http.StatusNotFound {
		t.Fatalf("get after forwarded delete: status %d, want 404", status)
	}
}

func TestClusterSubscribeRedirects(t *testing.T) {
	nodes := startTestCluster(t, 3)
	owner, other := nodes[0], nodes[1]

	status, body := httpJSON(t, owner.hs.URL, http.MethodPost, "/v1/sessions",
		map[string]any{"model": "quadratic"})
	if status != http.StatusCreated {
		t.Fatalf("create: status %d", status)
	}
	id := body["id"].(string)

	// SSE on a non-owner answers 421 with the typed redirect, never a feed.
	status, body = httpJSON(t, other.hs.URL, http.MethodGet, "/v1/sessions/"+id+"/events", nil)
	if status != http.StatusMisdirectedRequest {
		t.Fatalf("remote SSE: status %d, want 421", status)
	}
	if body["redirect"] != true || body["owner"] != owner.addr || body["session"] != id {
		t.Errorf("remote SSE redirect envelope = %v", body)
	}

	// Same contract on the binary transport.
	bc := binary.NewClient(other.addr)
	defer bc.Close()
	bstatus, bbody, err := bc.Subscribe(context.Background(), transport.OpSessionSubscribe,
		"", "", map[string]any{"id": id},
		func(event string, data any) error {
			t.Errorf("unexpected event %q on redirected subscribe", event)
			return nil
		})
	if err != nil {
		t.Fatalf("binary subscribe: %v", err)
	}
	if bstatus != http.StatusMisdirectedRequest {
		t.Fatalf("binary remote subscribe: status %d, want 421", bstatus)
	}
	env, _ := bbody.(map[string]any)
	if env["redirect"] != true || env["owner"] != owner.addr {
		t.Errorf("binary redirect envelope = %v", bbody)
	}
}

func TestClusterOwnerDownRedirect(t *testing.T) {
	nodes := startTestCluster(t, 3)
	owner, other := nodes[0], nodes[1]

	status, body := httpJSON(t, owner.hs.URL, http.MethodPost, "/v1/sessions",
		map[string]any{"model": "quadratic"})
	if status != http.StatusCreated {
		t.Fatalf("create: status %d", status)
	}
	id := body["id"].(string)

	// Kill the owner's binary listener — the survivors' forwards now fail
	// and must surface the typed redirect with 502, not hang or 500.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	owner.bs.Shutdown(ctx)
	cancel()

	status, body = httpJSON(t, other.hs.URL, http.MethodGet, "/v1/sessions/"+id, nil)
	if status != http.StatusBadGateway {
		t.Fatalf("get with dead owner: status %d: %v", status, body)
	}
	if body["redirect"] != true || body["owner"] != owner.addr || body["session"] != id {
		t.Errorf("dead-owner redirect envelope = %v", body)
	}

	// Survivors keep serving their own shards untouched.
	status, body = httpJSON(t, other.hs.URL, http.MethodPost, "/v1/sessions",
		map[string]any{"model": "quadratic"})
	if status != http.StatusCreated {
		t.Fatalf("survivor create with dead peer: status %d: %v", status, body)
	}
	if body["owner"] != other.addr {
		t.Errorf("survivor minted owner %v, want %s", body["owner"], other.addr)
	}
	sid := body["id"].(string)
	status, _ = httpJSON(t, other.hs.URL, http.MethodPost, "/v1/sessions/"+sid+"/observe",
		map[string]any{"values": []float64{1.0, 0.99}})
	if status != http.StatusOK {
		t.Fatalf("survivor observe with dead peer: status %d", status)
	}
}

func TestClusterStatsSection(t *testing.T) {
	nodes := startTestCluster(t, 3)
	owner, other := nodes[0], nodes[1]

	status, body := httpJSON(t, owner.hs.URL, http.MethodPost, "/v1/sessions",
		map[string]any{"model": "quadratic"})
	if status != http.StatusCreated {
		t.Fatalf("create: status %d", status)
	}
	id := body["id"].(string)
	if status, _ = httpJSON(t, other.hs.URL, http.MethodGet, "/v1/sessions/"+id, nil); status != 200 {
		t.Fatalf("forwarded get: status %d", status)
	}

	status, body = httpJSON(t, other.hs.URL, http.MethodGet, "/v1/stats", nil)
	if status != http.StatusOK {
		t.Fatalf("stats: status %d", status)
	}
	cs, ok := body["cluster"].(map[string]any)
	if !ok {
		t.Fatalf("stats has no cluster section: %v", body)
	}
	if cs["self"] != other.addr {
		t.Errorf("cluster.self = %v, want %s", cs["self"], other.addr)
	}
	if peers, _ := cs["peers"].([]any); len(peers) != 3 {
		t.Errorf("cluster.peers = %v, want 3 entries", cs["peers"])
	}
	if fwd, _ := cs["forwards"].(float64); fwd < 1 {
		t.Errorf("cluster.forwards = %v, want >= 1", cs["forwards"])
	}
}
