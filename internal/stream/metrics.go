package stream

import "resilience/internal/telemetry"

// metrics are the stream subsystem's telemetry handles, resolved once so
// every hot-path touch is a single atomic op. All series live in the
// process-wide registry and are scraped at GET /metrics alongside the
// fit-pipeline series.
var metrics = struct {
	sessions      *telemetry.Gauge
	created       *telemetry.Counter
	observations  *telemetry.Counter
	refitDuration *telemetry.Histogram
	refitEvals    *telemetry.Histogram
	refitsWarm    *telemetry.Counter
	refitsFull    *telemetry.Counter
	refitErrors   *telemetry.Counter
	evictedLRU    *telemetry.Counter
	evictedTTL    *telemetry.Counter
	closed        *telemetry.Counter
	subscribers   *telemetry.Gauge
	droppedSubs   *telemetry.Counter
	events        *telemetry.Counter
	restored      *telemetry.Counter
	persistErrors *telemetry.Counter
}{
	sessions:      telemetry.GetOrCreateGauge("resil_stream_sessions"),
	created:       telemetry.GetOrCreateCounter("resil_stream_sessions_created_total"),
	observations:  telemetry.GetOrCreateCounter("resil_stream_observations_total"),
	refitDuration: telemetry.GetOrCreateHistogram("resil_stream_refit_duration_seconds", telemetry.DurationBuckets()),
	refitEvals:    telemetry.GetOrCreateHistogram("resil_stream_refit_evals", telemetry.ExponentialBuckets(8, 2, 12)),
	refitsWarm:    telemetry.GetOrCreateCounter(`resil_stream_refits_total{path="warm"}`),
	refitsFull:    telemetry.GetOrCreateCounter(`resil_stream_refits_total{path="full"}`),
	refitErrors:   telemetry.GetOrCreateCounter("resil_stream_refit_errors_total"),
	evictedLRU:    telemetry.GetOrCreateCounter(`resil_stream_evictions_total{reason="lru"}`),
	evictedTTL:    telemetry.GetOrCreateCounter(`resil_stream_evictions_total{reason="ttl"}`),
	closed:        telemetry.GetOrCreateCounter(`resil_stream_evictions_total{reason="closed"}`),
	subscribers:   telemetry.GetOrCreateGauge("resil_stream_subscribers"),
	droppedSubs:   telemetry.GetOrCreateCounter("resil_stream_dropped_subscribers_total"),
	events:        telemetry.GetOrCreateCounter("resil_stream_events_total"),
	restored:      telemetry.GetOrCreateCounter("resil_stream_sessions_restored_total"),
	persistErrors: telemetry.GetOrCreateCounter("resil_stream_persist_errors_total"),
}

// StatsSnapshot is the JSON view of the stream counters, embedded in
// the server's GET /v1/stats reply.
type StatsSnapshot struct {
	Sessions           float64 `json:"sessions"`
	SessionsCreated    uint64  `json:"sessions_created"`
	Observations       uint64  `json:"observations"`
	RefitsWarm         uint64  `json:"refits_warm"`
	RefitsFull         uint64  `json:"refits_full"`
	RefitErrors        uint64  `json:"refit_errors"`
	EvictionsLRU       uint64  `json:"evictions_lru"`
	EvictionsTTL       uint64  `json:"evictions_ttl"`
	Closed             uint64  `json:"closed"`
	Subscribers        float64 `json:"subscribers"`
	DroppedSubscribers uint64  `json:"dropped_subscribers"`
	Events             uint64  `json:"events"`
	Restored           uint64  `json:"restored"`
	PersistErrors      uint64  `json:"persist_errors"`
	RefitP50Ms         float64 `json:"refit_p50_ms"`
	RefitP99Ms         float64 `json:"refit_p99_ms"`
	RefitEvalsP50      float64 `json:"refit_evals_p50"`
	RefitEvalsP99      float64 `json:"refit_evals_p99"`
}

// Stats snapshots the process-wide stream counters.
func Stats() StatsSnapshot {
	s := StatsSnapshot{
		Sessions:           metrics.sessions.Value(),
		SessionsCreated:    metrics.created.Value(),
		Observations:       metrics.observations.Value(),
		RefitsWarm:         metrics.refitsWarm.Value(),
		RefitsFull:         metrics.refitsFull.Value(),
		RefitErrors:        metrics.refitErrors.Value(),
		EvictionsLRU:       metrics.evictedLRU.Value(),
		EvictionsTTL:       metrics.evictedTTL.Value(),
		Closed:             metrics.closed.Value(),
		Subscribers:        metrics.subscribers.Value(),
		DroppedSubscribers: metrics.droppedSubs.Value(),
		Events:             metrics.events.Value(),
		Restored:           metrics.restored.Value(),
		PersistErrors:      metrics.persistErrors.Value(),
	}
	if metrics.refitDuration.Count() > 0 {
		s.RefitP50Ms = metrics.refitDuration.Quantile(0.5) * 1000
		s.RefitP99Ms = metrics.refitDuration.Quantile(0.99) * 1000
	}
	if metrics.refitEvals.Count() > 0 {
		s.RefitEvalsP50 = metrics.refitEvals.Quantile(0.5)
		s.RefitEvalsP99 = metrics.refitEvals.Quantile(0.99)
	}
	return s
}

func init() {
	telemetry.RegisterFamily("resil_stream_sessions", "gauge",
		"Open streaming sessions.")
	telemetry.RegisterFamily("resil_stream_sessions_created_total", "counter",
		"Streaming sessions created.")
	telemetry.RegisterFamily("resil_stream_observations_total", "counter",
		"Observations ingested across all streaming sessions.")
	telemetry.RegisterFamily("resil_stream_refit_duration_seconds", "histogram",
		"Wall time of per-observation warm-started refits.")
	telemetry.RegisterFamily("resil_stream_refit_evals", "histogram",
		"Objective evaluations spent per streaming refit; the warm-polish path should keep the bulk of this distribution an order of magnitude below full multistart fits.")
	telemetry.RegisterFamily("resil_stream_refits_total", "counter",
		"Session refits that produced a fit, by path (warm = single warm-started LM polish, full = multistart chain).")
	telemetry.RegisterFamily("resil_stream_refit_errors_total", "counter",
		"Session refits that produced no fit (chain exhausted or cancelled).")
	telemetry.RegisterFamily("resil_stream_evictions_total", "counter",
		"Sessions removed from the table, by reason (lru, ttl, closed).")
	telemetry.RegisterFamily("resil_stream_subscribers", "gauge",
		"Live event subscribers across all sessions.")
	telemetry.RegisterFamily("resil_stream_dropped_subscribers_total", "counter",
		"Subscribers disconnected for not keeping up with the event feed.")
	telemetry.RegisterFamily("resil_stream_events_total", "counter",
		"Events delivered to subscribers.")
	telemetry.RegisterFamily("resil_stream_sessions_restored_total", "counter",
		"Sessions resurrected from the durable store at boot.")
	telemetry.RegisterFamily("resil_stream_persist_errors_total", "counter",
		"Session store writes that failed (ingestion continued; durability degraded).")
}
