package stream

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// fakeStore records every persistence call; failAll makes each call
// return an error so availability-first handling is testable.
type fakeStore struct {
	mu        sync.Mutex
	created   []string
	observed  map[string]int
	fits      map[string]int
	closed    map[string]string // id -> last terminal reason
	snapshots []*PersistedSession
	failAll   bool
}

func newFakeStore() *fakeStore {
	return &fakeStore{
		observed: map[string]int{},
		fits:     map[string]int{},
		closed:   map[string]string{},
	}
}

func (f *fakeStore) err() error {
	if f.failAll {
		return errors.New("fakeStore: injected failure")
	}
	return nil
}

func (f *fakeStore) SessionCreated(id, model string, cfg MonitorConfig, at time.Time) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.created = append(f.created, id)
	return f.err()
}

func (f *fakeStore) PointObserved(id string, seq uint64, t, v float64) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.observed[id]++
	return f.err()
}

func (f *fakeStore) FitUpdated(id string, fit *FitSummary) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.fits[id]++
	return f.err()
}

func (f *fakeStore) SessionClosed(id, reason string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.closed[id] = reason
	return f.err()
}

func (f *fakeStore) SessionSnapshot(ps *PersistedSession) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.snapshots = append(f.snapshots, ps)
	return f.err()
}

func (f *fakeStore) closedReason(id string) string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.closed[id]
}

func TestPersistenceRecordsLifecycle(t *testing.T) {
	st := newFakeStore()
	m := NewManager(Config{Store: st, SnapshotEvery: 10})
	snap, err := m.Create("quadratic", MonitorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	vals := vCurve(4, 28, 0.05)
	observeAll(t, m, snap.ID, vals)
	if err := m.Close(snap.ID); err != nil {
		t.Fatal(err)
	}

	st.mu.Lock()
	defer st.mu.Unlock()
	if len(st.created) != 1 || st.created[0] != snap.ID {
		t.Errorf("created records = %v, want [%s]", st.created, snap.ID)
	}
	if st.observed[snap.ID] != len(vals) {
		t.Errorf("observed records = %d, want %d", st.observed[snap.ID], len(vals))
	}
	if st.fits[snap.ID] == 0 {
		t.Error("no fit records despite refits running")
	}
	if st.closed[snap.ID] != "closed" {
		t.Errorf("closed reason = %q, want closed", st.closed[snap.ID])
	}
	// 32 points with SnapshotEvery=10 → at least 3 snapshots.
	if len(st.snapshots) < 3 {
		t.Errorf("snapshots = %d, want >= 3", len(st.snapshots))
	}
	last := st.snapshots[len(st.snapshots)-1]
	if last.Seq != uint64(len(last.Times)) {
		t.Errorf("snapshot seq %d != len(times) %d", last.Seq, len(last.Times))
	}
}

func TestStoreFailuresDoNotBlockIngestion(t *testing.T) {
	st := newFakeStore()
	st.failAll = true
	before := metrics.persistErrors.Value()
	m := NewManager(Config{Store: st, SnapshotEvery: 4})
	snap, err := m.Create("quadratic", MonitorConfig{})
	if err != nil {
		t.Fatalf("Create with failing store: %v", err)
	}
	updates := observeAll(t, m, snap.ID, vCurve(4, 20, 0.05))
	if len(updates) != 24 {
		t.Fatalf("ingested %d updates, want 24", len(updates))
	}
	got, err := m.Snapshot(snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Observations != 24 {
		t.Errorf("observations = %d, want 24", got.Observations)
	}
	if metrics.persistErrors.Value() <= before {
		t.Error("persist errors not counted")
	}
}

func TestSnapshotCarriesHistoryAndLastFit(t *testing.T) {
	m := NewManager(Config{})
	snap, err := m.Create("quadratic", MonitorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	vals := vCurve(4, 28, 0.05)
	observeAll(t, m, snap.ID, vals)
	got, err := m.Snapshot(snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.HistoryLen != len(vals) {
		t.Errorf("HistoryLen = %d, want %d", got.HistoryLen, len(vals))
	}
	if got.LastFit == nil {
		t.Fatal("LastFit missing after refits ran")
	}
	if got.LastFit.Model == "" || len(got.LastFit.Params) == 0 {
		t.Errorf("LastFit incomplete: %+v", got.LastFit)
	}
	if got.LastFit.Seq == 0 || got.LastFit.Seq > got.Observations {
		t.Errorf("LastFit.Seq = %d outside (0, %d]", got.LastFit.Seq, got.Observations)
	}
}

// restoreRoundTrip drives a manager, captures its last snapshot via the
// store, and restores it into a fresh manager.
func restoreRoundTrip(t *testing.T, vals []float64) (orig Snapshot, recovered Snapshot, m2 *Manager) {
	t.Helper()
	st := newFakeStore()
	m1 := NewManager(Config{Store: st, SnapshotEvery: 1}) // snapshot after every point
	snap, err := m1.Create("quadratic", MonitorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	observeAll(t, m1, snap.ID, vals)
	orig, err = m1.Snapshot(snap.ID)
	if err != nil {
		t.Fatal(err)
	}

	st.mu.Lock()
	ps := *st.snapshots[len(st.snapshots)-1]
	st.mu.Unlock()

	m2 = NewManager(Config{})
	restored, dropped, err := m2.Restore([]PersistedSession{ps})
	if err != nil {
		t.Fatal(err)
	}
	if restored != 1 || dropped != 0 {
		t.Fatalf("Restore = (%d restored, %d dropped), want (1, 0)", restored, dropped)
	}
	recovered, err = m2.Snapshot(snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	return orig, recovered, m2
}

func TestRestoreRoundTripMatchesOriginal(t *testing.T) {
	vals := vCurve(4, 28, 0.05)
	orig, rec, m2 := restoreRoundTrip(t, vals)

	if rec.ID != orig.ID || rec.Model != orig.Model {
		t.Errorf("identity mismatch: %s/%s vs %s/%s", rec.ID, rec.Model, orig.ID, orig.Model)
	}
	if rec.Phase != orig.Phase {
		t.Errorf("phase = %s, want %s", rec.Phase, orig.Phase)
	}
	if rec.Observations != orig.Observations || rec.HistoryLen != orig.HistoryLen {
		t.Errorf("history: %d obs/%d hist, want %d/%d",
			rec.Observations, rec.HistoryLen, orig.Observations, orig.HistoryLen)
	}
	if !rec.CreatedAt.Equal(orig.CreatedAt) {
		t.Errorf("created_at = %v, want %v", rec.CreatedAt, orig.CreatedAt)
	}
	if orig.LastFit == nil || rec.LastFit == nil {
		t.Fatalf("missing LastFit: orig %v, recovered %v", orig.LastFit, rec.LastFit)
	}
	if rec.LastFit.Model != orig.LastFit.Model || rec.LastFit.Seq != orig.LastFit.Seq {
		t.Errorf("LastFit = %+v, want %+v", rec.LastFit, orig.LastFit)
	}
	for i := range orig.LastFit.Params {
		if rec.LastFit.Params[i] != orig.LastFit.Params[i] {
			t.Errorf("warm param %d = %g, want %g", i, rec.LastFit.Params[i], orig.LastFit.Params[i])
		}
	}
	if orig.Last != nil {
		if rec.Last == nil || rec.Last.Seq != orig.Last.Seq || rec.Last.Phase != orig.Last.Phase {
			t.Errorf("last update = %+v, want %+v", rec.Last, orig.Last)
		}
	}

	// The recovered session keeps observing: monotonic time enforcement
	// must pick up where the history ended, and refits must resume warm.
	lastT := vals[0] // times are 0..n-1 in observeAll
	_ = lastT
	if _, _, err := m2.Observe(t.Context(), rec.ID, []float64{5}, []float64{1.0}); err == nil {
		t.Error("non-monotonic post-restore observation accepted")
	}
	ups, _, err := m2.Observe(t.Context(), rec.ID, []float64{float64(len(vals))}, []float64{1.01})
	if err != nil {
		t.Fatalf("post-restore observe: %v", err)
	}
	if ups[0].Seq != orig.Observations+1 {
		t.Errorf("post-restore seq = %d, want %d", ups[0].Seq, orig.Observations+1)
	}
}

func TestRestoreSkipsExpiredSessions(t *testing.T) {
	st := newFakeStore()
	m := NewManager(Config{Store: st, SessionTTL: time.Minute})
	stale := PersistedSession{
		ID: "s-stale", Model: "quadratic",
		CreatedAt:  time.Now().Add(-2 * time.Hour),
		LastActive: time.Now().Add(-time.Hour),
		Times:      []float64{0, 1}, Values: []float64{1, 1}, Seq: 2,
	}
	fresh := PersistedSession{
		ID: "s-fresh", Model: "quadratic",
		CreatedAt:  time.Now().Add(-time.Minute),
		LastActive: time.Now(),
		Times:      []float64{0, 1}, Values: []float64{1, 1}, Seq: 2,
	}
	restored, dropped, err := m.Restore([]PersistedSession{stale, fresh})
	if err != nil {
		t.Fatal(err)
	}
	if restored != 1 || dropped != 1 {
		t.Fatalf("Restore = (%d, %d), want (1, 1)", restored, dropped)
	}
	if _, err := m.Snapshot("s-stale"); !errors.Is(err, ErrNotFound) {
		t.Errorf("expired session resurrected: %v", err)
	}
	if _, err := m.Snapshot("s-fresh"); err != nil {
		t.Errorf("fresh session not restored: %v", err)
	}
	// The drop is terminal in the store too, so the NEXT recovery won't
	// see the stale state either.
	if got := st.closedReason("s-stale"); got != "evicted:ttl" {
		t.Errorf("stale session closed reason = %q, want evicted:ttl", got)
	}
}

func TestRestoreRespectsSessionCap(t *testing.T) {
	st := newFakeStore()
	m := NewManager(Config{Store: st, MaxSessions: 2})
	now := time.Now()
	states := make([]PersistedSession, 3)
	for i := range states {
		states[i] = PersistedSession{
			ID: "s-cap-" + string(rune('a'+i)), Model: "quadratic",
			CreatedAt:  now.Add(-time.Duration(10-i) * time.Minute),
			LastActive: now.Add(-time.Duration(3-i) * time.Minute),
			Times:      []float64{0}, Values: []float64{1}, Seq: 1,
		}
	}
	restored, _, err := m.Restore(states)
	if err != nil {
		t.Fatal(err)
	}
	if m.Len() != 2 {
		t.Fatalf("restored table size %d, want cap 2", m.Len())
	}
	_ = restored
	// Least recently active state (index 0) must be the one evicted.
	if _, err := m.Snapshot("s-cap-a"); !errors.Is(err, ErrNotFound) {
		t.Error("least-recently-active state survived past the cap")
	}
	if got := st.closedReason("s-cap-a"); got != "evicted:lru" {
		t.Errorf("over-cap closed reason = %q, want evicted:lru", got)
	}
}

func TestRestoreDropsUnresolvableStates(t *testing.T) {
	m := NewManager(Config{})
	bad := PersistedSession{
		ID: "s-bad", Model: "no-such-model",
		CreatedAt: time.Now(), LastActive: time.Now(),
		Times: []float64{0}, Values: []float64{1}, Seq: 1,
	}
	disordered := PersistedSession{
		ID: "s-disorder", Model: "quadratic",
		CreatedAt: time.Now(), LastActive: time.Now(),
		Times: []float64{1, 1}, Values: []float64{1, 1}, Seq: 2,
	}
	restored, dropped, err := m.Restore([]PersistedSession{bad, disordered})
	if err != nil {
		t.Fatal(err)
	}
	if restored != 0 || dropped != 2 {
		t.Errorf("Restore = (%d, %d), want (0, 2)", restored, dropped)
	}
}

// TestEvictionWritesTerminalRecords covers the LRU/TTL ↔ persistence
// interplay: every eviction path must leave a terminal store record so
// recovery cannot resurrect the session.
func TestEvictionWritesTerminalRecords(t *testing.T) {
	st := newFakeStore()
	m := NewManager(Config{Store: st, MaxSessions: 2})
	a, err := m.Create("quadratic", MonitorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err = m.Create("quadratic", MonitorConfig{}); err != nil {
		t.Fatal(err)
	}
	// Third create evicts a (least recently active).
	if _, err = m.Create("quadratic", MonitorConfig{}); err != nil {
		t.Fatal(err)
	}
	if got := st.closedReason(a.ID); got != "evicted:lru" {
		t.Errorf("LRU eviction closed reason = %q, want evicted:lru", got)
	}

	// TTL path.
	st2 := newFakeStore()
	m2 := NewManager(Config{Store: st2, SessionTTL: 10 * time.Millisecond})
	b, err := m2.Create("quadratic", MonitorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(30 * time.Millisecond)
	m2.List() // sweep
	if got := st2.closedReason(b.ID); got != "evicted:ttl" {
		t.Errorf("TTL eviction closed reason = %q, want evicted:ttl", got)
	}
}

// TestShutdownSnapshotsWithoutClosedRecords pins the restart contract:
// graceful shutdown persists final snapshots but no terminal records, so
// sessions survive the restart.
func TestShutdownSnapshotsWithoutClosedRecords(t *testing.T) {
	st := newFakeStore()
	m := NewManager(Config{Store: st, SnapshotEvery: -1}) // no cadence snapshots
	snap, err := m.Create("quadratic", MonitorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	observeAll(t, m, snap.ID, vCurve(2, 6, 0.05))
	if err := m.Shutdown(t.Context()); err != nil {
		t.Fatal(err)
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if got := st.closed[snap.ID]; got != "" {
		t.Errorf("shutdown wrote terminal record %q; sessions must survive restart", got)
	}
	if len(st.snapshots) != 1 {
		t.Fatalf("shutdown snapshots = %d, want 1", len(st.snapshots))
	}
	if got := st.snapshots[0]; got.ID != snap.ID || got.Seq != 8 {
		t.Errorf("final snapshot = %s seq %d, want %s seq 8", got.ID, got.Seq, snap.ID)
	}
}
