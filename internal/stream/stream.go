// Package stream is the online resilience-monitoring subsystem: a
// concurrency-safe session manager that wraps monitor.Tracker so
// observations can arrive one at a time — over HTTP, from the CLI, or
// from any future transport — with a warm-started refit, phase
// detection, and recovery predictions after every update.
//
// A session is created with a model (resolved through the central
// registry, aliases included) and a monitor configuration. Clients then
// Observe points individually or in small chunks and read back the
// tracker's state as a Snapshot; Subscribe attaches a live event feed
// that receives one Event per observation plus a terminal event when the
// session ends, which the HTTP layer forwards as Server-Sent Events.
//
// The manager enforces a bounded session table: a configurable cap with
// least-recently-active eviction when full, a TTL sweep that retires
// idle sessions (amortized onto table accesses — no background
// goroutine), and explicit Close. Every refit runs under the session's
// context through the degradation chain, so optimizer panics are
// contained to the session, non-converging fits fall back to simpler
// families with the outcome annotated on the update, and closing or
// evicting a session aborts its in-flight refit mid-iteration.
//
// Slow event subscribers are dropped, not waited for: a subscriber whose
// buffer is full when an event arrives is disconnected (its channel
// closed, a drop counter incremented) so one stalled dashboard cannot
// stall ingestion or other subscribers.
package stream

import (
	"container/list"
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"resilience/internal/core"
	"resilience/internal/monitor"
	"resilience/internal/registry"
	"resilience/internal/service"
	"resilience/internal/telemetry"
)

// Sentinel errors, mapped by transports onto their status vocabulary
// (HTTP 404 and 503 respectively).
var (
	// ErrNotFound reports an unknown — or already closed/evicted —
	// session ID.
	ErrNotFound = errors.New("stream: session not found")
	// ErrShutdown reports that the manager is draining and accepts no new
	// work.
	ErrShutdown = errors.New("stream: manager shut down")
)

// Config tunes a Manager. The zero value selects production defaults.
type Config struct {
	// MaxSessions caps the session table; creating a session beyond the
	// cap evicts the least recently active one (default 64).
	MaxSessions int
	// SessionTTL retires sessions idle longer than this; expiry is
	// enforced amortized, on table accesses (default 15m).
	SessionTTL time.Duration
	// MaxChunk bounds how many points one Observe call may carry
	// (default 256).
	MaxChunk int
	// SubscriberBuffer is each event subscriber's channel capacity; a
	// subscriber that falls this far behind is dropped (default 32).
	SubscriberBuffer int
	// Fallback is the degradation-chain policy applied to session refits;
	// empty Fallbacks are filled from the registry, exactly as in
	// service.Config.
	Fallback core.FallbackPolicy
	// DisableFallback turns the chain's retries and model fallbacks off.
	// Panic containment and cancellation still apply.
	DisableFallback bool
	// Store, when non-nil, persists every session lifecycle transition so
	// sessions survive a process crash (see internal/durable). Store
	// failures are counted and served around — durability degrades,
	// ingestion does not stop. Nil keeps the manager memory-only.
	Store Store
	// SnapshotEvery writes a whole-session snapshot through the Store
	// after this many observations since the last one, bounding replay
	// time (default 64; negative disables snapshots).
	SnapshotEvery int
	// Logger, when non-nil, receives operational events the metrics alone
	// cannot attribute — today, subscriber drops tagged with the request
	// ID that opened the feed.
	Logger *slog.Logger
	// OwnsID, when non-nil, constrains freshly minted session IDs: Create
	// keeps drawing random IDs until the hook accepts one. The cluster
	// layer uses it so every session this node creates hashes to this
	// node on the consistent-hash ring — sessions restored from a store
	// keep their recorded IDs and are not re-checked (they were minted
	// under the same ring). Nil accepts every ID.
	OwnsID func(id string) bool
}

func (c Config) withDefaults() Config {
	if c.MaxSessions <= 0 {
		c.MaxSessions = 64
	}
	if c.SessionTTL <= 0 {
		c.SessionTTL = 15 * time.Minute
	}
	if c.MaxChunk <= 0 {
		c.MaxChunk = 256
	}
	if c.SubscriberBuffer <= 0 {
		c.SubscriberBuffer = 32
	}
	if c.SnapshotEvery == 0 {
		c.SnapshotEvery = 64
	}
	c.Fallback.Disable = c.Fallback.Disable || c.DisableFallback
	if len(c.Fallback.Fallbacks) == 0 {
		c.Fallback.Fallbacks = registry.FallbackChain()
	}
	return c
}

// MonitorConfig is the wire-friendly subset of monitor.Config a client
// may set when creating a session. Zero values select the tracker's
// defaults.
type MonitorConfig struct {
	// Baseline is the nominal performance level (default: the first
	// observation).
	Baseline float64 `json:"baseline,omitempty"`
	// OnsetDrop is the fractional drop below baseline that declares a
	// disruption (default 0.005).
	OnsetDrop float64 `json:"onset_drop,omitempty"`
	// RecoverySlack is how close to baseline performance must return to
	// declare recovery (default 0.001).
	RecoverySlack float64 `json:"recovery_slack,omitempty"`
	// MinFitPoints is the minimum number of post-onset observations
	// before refitting starts (default 6).
	MinFitPoints int `json:"min_fit_points,omitempty"`
	// HorizonFactor bounds the recovery search as a multiple of the
	// observed span (default 6).
	HorizonFactor float64 `json:"horizon_factor,omitempty"`
}

// validate rejects non-finite and out-of-range monitor settings with
// field-level errors, in the service layer's InputError shape so every
// transport rejects identically.
func (c MonitorConfig) validate() *service.InputError {
	bad := func(field, format string, args ...any) *service.InputError {
		return &service.InputError{Field: field, Err: fmt.Errorf(format, args...)}
	}
	if b := c.Baseline; math.IsNaN(b) || math.IsInf(b, 0) || b < 0 {
		return bad("baseline", "baseline %g must be finite and non-negative", b)
	}
	if d := c.OnsetDrop; math.IsNaN(d) || d < 0 || d >= 1 {
		return bad("onset_drop", "onset_drop %g outside [0, 1); 0 selects the default 0.005", d)
	}
	if s := c.RecoverySlack; math.IsNaN(s) || s < 0 || s >= 1 {
		return bad("recovery_slack", "recovery_slack %g outside [0, 1); 0 selects the default 0.001", s)
	}
	if p := c.MinFitPoints; p < 0 || p > 100000 {
		return bad("min_fit_points", "min_fit_points %d outside [0, 100000]; 0 selects the default 6", p)
	}
	if h := c.HorizonFactor; math.IsNaN(h) || math.IsInf(h, 0) || h < 0 || h > 1000 {
		return bad("horizon_factor", "horizon_factor %g outside [0, 1000]; 0 selects the default 6", h)
	}
	return nil
}

// Update is one observation's outcome in wire form: the echoed point,
// the phase machine's verdict, the warm-started fit (when one ran), and
// the degradation-chain annotation. Optional numerics are pointers so
// "not predictable yet" serializes as an absent field rather than a NaN
// that would break JSON encoding.
type Update struct {
	// Seq numbers observations within a session, from 1.
	Seq uint64 `json:"seq"`
	// Time and Value echo the observation.
	Time  float64 `json:"time"`
	Value float64 `json:"value"`
	// Phase is the lifecycle phase after this observation.
	Phase string `json:"phase"`
	// OnsetTime is when the disruption was detected; absent while nominal.
	OnsetTime *float64 `json:"onset_time,omitempty"`
	// FitModel is the family that produced this update's fit — after any
	// fallback — with its parameters; absent until enough post-onset
	// points have arrived or when the refit failed.
	FitModel   string    `json:"fit_model,omitempty"`
	ParamNames []string  `json:"param_names,omitempty"`
	Params     []float64 `json:"params,omitempty"`
	SSE        float64   `json:"sse,omitempty"`
	// FitWindow is how many post-onset points the fit covered; 0 without
	// a fit.
	FitWindow int `json:"fit_window,omitempty"`
	// WarmPolished marks a fit produced by the cheap warm-started
	// single-LM path rather than the full multistart chain.
	WarmPolished bool `json:"warm_polished,omitempty"`
	// Predicted* locate the fitted curve's minimum and recovery; absent
	// without a fit or when the curve never recovers inside the horizon.
	PredictedMinimumTime  *float64 `json:"predicted_minimum_time,omitempty"`
	PredictedMinimumValue *float64 `json:"predicted_minimum_value,omitempty"`
	PredictedRecoveryTime *float64 `json:"predicted_recovery_time,omitempty"`
	// Degraded and friends mirror the fit-family endpoints' degradation
	// annotation for this update's refit.
	Degraded          bool   `json:"degraded,omitempty"`
	FallbackModel     string `json:"fallback_model,omitempty"`
	DegradationReason string `json:"degradation_reason,omitempty"`
	PanicRecovered    bool   `json:"panic_recovered,omitempty"`
	// FitErr records why a due refit produced no fit (chain exhausted,
	// cancelled mid-iteration).
	FitErr string `json:"fit_error,omitempty"`
}

// Snapshot is a session's externally visible state. It opens every SSE
// feed, so it carries enough for a client reconnecting after a server
// restart to resync without replaying its own data: the history length
// says how many observations the server retained, and LastFit summarizes
// the current fit even when the latest update didn't refit.
type Snapshot struct {
	ID           string        `json:"id"`
	Model        string        `json:"model"`
	Phase        string        `json:"phase"`
	Observations uint64        `json:"observations"`
	CreatedAt    time.Time     `json:"created_at"`
	LastActive   time.Time     `json:"last_active"`
	Subscribers  int           `json:"subscribers"`
	Config       MonitorConfig `json:"config"`
	// HistoryLen is how many updates the server-side tracker holds —
	// after crash recovery it equals Observations, proving nothing was
	// lost.
	HistoryLen int `json:"history_len"`
	// LastFit is the most recent refit outcome, nil before the first fit.
	LastFit *FitSummary `json:"last_fit,omitempty"`
	// Last is the most recent update, nil before the first observation.
	Last *Update `json:"last,omitempty"`
}

// EventType discriminates feed events.
type EventType string

// Feed event types.
const (
	// EventUpdate carries one observation's Update.
	EventUpdate EventType = "update"
	// EventClosed is the terminal event: the session was closed, evicted,
	// or the manager shut down. Reason says which.
	EventClosed EventType = "closed"
)

// Event is one element of a session's live feed.
type Event struct {
	Type    EventType `json:"type"`
	Session string    `json:"session"`
	// Seq is the update's sequence number (0 for terminal events).
	Seq uint64 `json:"seq,omitempty"`
	// Update is present on EventUpdate.
	Update *Update `json:"update,omitempty"`
	// Reason is present on EventClosed: "closed", "evicted:lru",
	// "evicted:ttl", or "shutdown".
	Reason string `json:"reason,omitempty"`
}

// Subscriber is one attached event-feed consumer. Events arrive on
// Events(); the channel closes when the session ends (after a terminal
// EventClosed) or when the subscriber is dropped for falling behind.
type Subscriber struct {
	ch   chan Event
	sess *session
	// reqID is the request ID of the HTTP request (or other transport
	// call) that opened this feed, so a drop can be attributed to the
	// specific client in logs.
	reqID   string
	dropped atomic.Bool
	once    sync.Once
}

// Events returns the feed channel.
func (sub *Subscriber) Events() <-chan Event { return sub.ch }

// Dropped reports whether the subscriber was disconnected for not
// keeping up (as opposed to the session ending).
func (sub *Subscriber) Dropped() bool { return sub.dropped.Load() }

// RequestID returns the request ID recorded when the feed was opened
// (empty when the transport supplied none).
func (sub *Subscriber) RequestID() string { return sub.reqID }

// Close detaches the subscriber. Safe to call more than once and after
// the session ended.
func (sub *Subscriber) Close() {
	sub.sess.unsubscribe(sub)
}

// session is one tracked disruption. The manager's mutex guards table
// membership, LRU position, and lastActive; the session's own mutex
// serializes tracker access; subMu guards the subscriber set and the
// closed flag so no event is ever sent on a closed channel.
type session struct {
	id    string
	entry registry.Entry
	mcfg  MonitorConfig

	// ctx is the session's lifetime; cancel aborts any in-flight refit
	// when the session is closed or evicted.
	ctx    context.Context
	cancel context.CancelFunc

	mu      sync.Mutex
	tracker *monitor.Tracker
	seq     uint64
	last    *Update
	// lastFit is the most recent refit outcome, kept beyond the last
	// update so snapshots (and reconnecting SSE clients) can show the
	// current fit even when later observations didn't refit. sinceSnap
	// counts observations since the last persisted snapshot.
	lastFit   *FitSummary
	sinceSnap int

	subMu  sync.Mutex
	subs   map[*Subscriber]struct{}
	closed bool
	// logger is the manager's Config.Logger (may be nil); kept on the
	// session so broadcast can attribute drops without a manager pointer.
	logger *slog.Logger

	createdAt  time.Time
	lastActive atomic.Int64 // unix nanos

	elem *list.Element // LRU position; guarded by Manager.mu
}

// Manager owns the bounded session table. It is safe for concurrent use
// by any number of transports.
type Manager struct {
	cfg Config

	mu       sync.Mutex
	sessions map[string]*session
	lru      *list.List // front = most recently active
	closed   bool

	// inflight tracks running Observe calls so Shutdown can drain them.
	inflight sync.WaitGroup
}

// NewManager builds a Manager from cfg.
func NewManager(cfg Config) *Manager {
	return &Manager{
		cfg:      cfg.withDefaults(),
		sessions: make(map[string]*session),
		lru:      list.New(),
	}
}

// Len reports the number of open sessions.
func (m *Manager) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.sessions)
}

// newID returns a fresh session identifier.
func newID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is a broken platform; ids only need process
		// uniqueness, which the collision loop in Create still enforces.
		return fmt.Sprintf("s-%x", time.Now().UnixNano())
	}
	return "s-" + hex.EncodeToString(b[:])
}

// maxMintAttempts bounds the OwnsID minting loop. Each draw succeeds
// with probability 1/peers; for any plausible peer count the chance of
// exhausting 256 draws is negligible (p < 1e-7 even at 16 peers), so
// hitting the cap means the hook is broken, not unlucky.
const maxMintAttempts = 256

// mintID draws session IDs until one satisfies the OwnsID hook.
func (m *Manager) mintID() (string, error) {
	if m.cfg.OwnsID == nil {
		return newID(), nil
	}
	for i := 0; i < maxMintAttempts; i++ {
		if id := newID(); m.cfg.OwnsID(id) {
			return id, nil
		}
	}
	return "", fmt.Errorf("stream: could not mint a self-owned session id in %d attempts", maxMintAttempts)
}

// Create opens a session for the named model (canonical name or alias)
// with the given monitor settings and returns its initial snapshot. At
// the cap, the least recently active session is evicted first.
func (m *Manager) Create(modelName string, mc MonitorConfig) (Snapshot, error) {
	entry, err := registry.Lookup(modelName)
	if err != nil {
		return Snapshot{}, &service.InputError{Field: "model", Err: err}
	}
	if ierr := mc.validate(); ierr != nil {
		return Snapshot{}, ierr
	}

	id, err := m.mintID()
	if err != nil {
		return Snapshot{}, err
	}
	pol := m.cfg.Fallback
	s := newSession(id, entry, mc, &pol)
	s.logger = m.cfg.Logger
	s.lastActive.Store(s.createdAt.UnixNano())

	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		s.cancel()
		return Snapshot{}, ErrShutdown
	}
	victims := m.sweepLocked(time.Now())
	for len(m.sessions) >= m.cfg.MaxSessions {
		oldest := m.lru.Back()
		if oldest == nil {
			break
		}
		v := oldest.Value.(*session)
		m.detachLocked(v)
		metrics.evictedLRU.Inc()
		victims = append(victims, victim{s: v, reason: "evicted:lru"})
	}
	for {
		if _, dup := m.sessions[s.id]; !dup {
			break
		}
		// A collision re-mints under the same ownership constraint; the
		// error path is unreachable in practice (128-bit draw colliding
		// maxMintAttempts times) but kept honest.
		id, err := m.mintID()
		if err != nil {
			m.mu.Unlock()
			m.finishAll(victims)
			s.cancel()
			return Snapshot{}, err
		}
		s.id = id
	}
	m.sessions[s.id] = s
	s.elem = m.lru.PushFront(s)
	metrics.sessions.Set(float64(len(m.sessions)))
	m.mu.Unlock()

	m.finishAll(victims)
	metrics.created.Inc()
	if m.cfg.Store != nil {
		if err := m.cfg.Store.SessionCreated(s.id, s.entry.Name, mc, s.createdAt); err != nil {
			metrics.persistErrors.Inc()
		}
	}
	return s.snapshot(), nil
}

// victim pairs a detached session with its eviction reason so the
// terminal event can be delivered outside the table lock.
type victim struct {
	s      *session
	reason string
}

// finishAll ends detached sessions and records the terminal transition
// in the store. Graceful shutdown is the exception: those sessions are
// meant to survive the restart, so no closed record is written (their
// state is snapshotted by Shutdown instead).
func (m *Manager) finishAll(victims []victim) {
	for _, v := range victims {
		if v.reason != "shutdown" {
			m.persistClosed(v.s.id, v.reason)
		}
		v.s.finish(v.reason)
	}
}

// sweepLocked detaches every session idle past the TTL. Caller holds
// m.mu and must finish() the returned victims after unlocking.
func (m *Manager) sweepLocked(now time.Time) []victim {
	var victims []victim
	cutoff := now.Add(-m.cfg.SessionTTL).UnixNano()
	for e := m.lru.Back(); e != nil; {
		s := e.Value.(*session)
		if s.lastActive.Load() > cutoff {
			break // LRU order: everything further forward is younger
		}
		prev := e.Prev()
		m.detachLocked(s)
		metrics.evictedTTL.Inc()
		victims = append(victims, victim{s: s, reason: "evicted:ttl"})
		e = prev
	}
	if victims != nil {
		metrics.sessions.Set(float64(len(m.sessions)))
	}
	return victims
}

// detachLocked removes s from the table and LRU list. Caller holds m.mu.
func (m *Manager) detachLocked(s *session) {
	delete(m.sessions, s.id)
	if s.elem != nil {
		m.lru.Remove(s.elem)
		s.elem = nil
	}
}

// finish ends a detached session: the context is cancelled (aborting any
// in-flight refit mid-iteration), a terminal event is delivered, and
// every subscriber channel is closed.
func (s *session) finish(reason string) {
	s.cancel()
	s.subMu.Lock()
	defer s.subMu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	term := Event{Type: EventClosed, Session: s.id, Reason: reason}
	for sub := range s.subs {
		select {
		case sub.ch <- term:
			metrics.events.Inc()
		default: // too slow even for the terminal event; just close
		}
		close(sub.ch)
		metrics.subscribers.Add(-1)
	}
	s.subs = nil
}

// lookup returns the session for id, TTL-sweeping first so an expired
// session cannot be resurrected by the very request that should have
// found it gone. touch marks the session active and refreshes its LRU
// position.
func (m *Manager) lookup(id string, touch bool) (*session, []victim, error) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, nil, ErrShutdown
	}
	victims := m.sweepLocked(time.Now())
	s, ok := m.sessions[id]
	if ok && touch {
		s.lastActive.Store(time.Now().UnixNano())
		m.lru.MoveToFront(s.elem)
	}
	m.mu.Unlock()
	if !ok {
		return nil, victims, ErrNotFound
	}
	return s, victims, nil
}

// Observe ingests one or more (time, value) points into a session and
// returns the per-point updates plus the resulting snapshot. A nil
// times slice auto-numbers the points from the session's observation
// count (0, 1, 2, ...), so clients streaming evenly spaced samples need
// not track indices. Refits run under both the caller's context and the
// session's lifetime: a client disconnect or a session close/eviction
// aborts the optimizer mid-iteration. A validation failure on point k
// returns the k updates that preceded it alongside the error.
func (m *Manager) Observe(ctx context.Context, id string, times, values []float64) ([]Update, Snapshot, error) {
	if len(values) == 0 {
		return nil, Snapshot{}, &service.InputError{Field: "values", Err: errors.New("values required")}
	}
	if times != nil && len(times) != len(values) {
		return nil, Snapshot{}, &service.InputError{
			Field: "times",
			Err:   fmt.Errorf("%d times for %d values; lengths must match", len(times), len(values)),
		}
	}
	if len(values) > m.cfg.MaxChunk {
		return nil, Snapshot{}, &service.InputError{
			Field: "values",
			Err:   fmt.Errorf("%d points exceeds the per-call chunk limit %d", len(values), m.cfg.MaxChunk),
		}
	}

	s, victims, err := m.lookup(id, true)
	m.finishAll(victims)
	if err != nil {
		return nil, Snapshot{}, err
	}
	m.inflight.Add(1)
	defer m.inflight.Done()

	// Refits must stop when either the caller goes away or the session is
	// closed/evicted; merge the two cancellation sources.
	octx, ocancel := context.WithCancel(ctx)
	defer ocancel()
	stop := context.AfterFunc(s.ctx, ocancel)
	defer stop()

	s.mu.Lock()
	defer s.mu.Unlock()
	if times == nil {
		times = make([]float64, len(values))
		for i := range times {
			times[i] = float64(s.seq) + float64(i)
		}
	}
	updates := make([]Update, 0, len(values))
	for i := range values {
		// One span per accepted point, parenting the refit, WAL, and
		// publish spans below — so a trace of one observation shows the
		// whole observe → refit → persist → publish path.
		pctx, obsSpan := telemetry.StartSpanCtx(octx, "stream.observe")
		start := time.Now()
		mup, err := s.tracker.ObserveCtx(pctx, times[i], values[i])
		if err != nil {
			obsSpan.EndErr(err, telemetry.Int("seq", int(s.seq)+1))
			return updates, s.snapshotLocked(), &service.InputError{Field: "times", Err: err}
		}
		metrics.observations.Inc()
		s.seq++
		up := toUpdate(s.seq, mup)
		refit := up.FitModel != "" || up.FitErr != "" // a refit actually ran
		if refit {
			metrics.refitDuration.ObserveWithExemplar(time.Since(start).Seconds(), telemetry.TraceID(pctx))
			countRefit(pctx, mup)
		}
		if up.FitModel != "" {
			s.lastFit = fitSummaryOf(&up)
		}
		s.last = &up
		s.sinceSnap++
		if st := m.cfg.Store; st != nil {
			wal := telemetry.StartSpan(pctx, "wal.append")
			err := st.PointObserved(s.id, s.seq, times[i], values[i])
			wal.EndErr(err, telemetry.Int("seq", int(s.seq)))
			if err != nil {
				metrics.persistErrors.Inc()
			}
			if up.FitModel != "" {
				fitSpan := telemetry.StartSpan(pctx, "wal.fit")
				err := st.FitUpdated(s.id, s.lastFit.clone())
				fitSpan.EndErr(err, telemetry.Str("model", up.FitModel))
				if err != nil {
					metrics.persistErrors.Inc()
				}
			}
		}
		updates = append(updates, up)
		pub := telemetry.StartSpan(pctx, "sse.publish")
		delivered, droppedSubs := s.broadcast(Event{Type: EventUpdate, Session: s.id, Seq: up.Seq, Update: &up})
		pub.End(telemetry.Int("delivered", delivered), telemetry.Int("dropped", droppedSubs))
		obsSpan.EndStatus(up.FitErr, telemetry.Int("seq", int(s.seq)),
			telemetry.Str("phase", up.Phase), telemetry.Str("refit", boolWord(refit)))
	}
	if m.cfg.Store != nil && m.cfg.SnapshotEvery > 0 && s.sinceSnap >= m.cfg.SnapshotEvery {
		snap := telemetry.StartSpan(octx, "stream.snapshot")
		m.persistSnapshotLocked(s)
		snap.End(telemetry.Int("seq", int(s.seq)))
	}
	return updates, s.snapshotLocked(), nil
}

// boolWord renders a bool as a span-attribute string.
func boolWord(b bool) string {
	if b {
		return "true"
	}
	return "false"
}

// countRefit feeds the process-wide fit counters (GET /v1/stats) from a
// session refit outcome, mirroring what the service layer counts for
// one-shot fits.
func countRefit(ctx context.Context, mup monitor.Update) {
	monitor.CountFit()
	if f := mup.Fit; f != nil {
		// The histogram records the refit's whole optimizer bill: a warm
		// polish that failed and escalated still spent PolishEvals before
		// the full chain ran.
		evals := f.Evals
		if !mup.WarmPolished {
			evals += mup.PolishEvals
		}
		metrics.refitEvals.Observe(float64(evals))
		if mup.WarmPolished {
			metrics.refitsWarm.Inc()
		} else {
			metrics.refitsFull.Inc()
		}
	}
	if d := mup.Degrade; d != nil {
		if d.Degraded && mup.Fit != nil {
			monitor.CountFallback()
		}
		if d.PanicRecovered {
			monitor.CountPanicRecovery()
		}
	}
	if mup.FitErr != "" {
		metrics.refitErrors.Inc()
		if ctx.Err() != nil {
			monitor.CountCancellation()
		}
	}
}

// Snapshot returns a session's current state without refreshing its TTL
// (reads do not keep a session alive).
func (m *Manager) Snapshot(id string) (Snapshot, error) {
	s, victims, err := m.lookup(id, false)
	m.finishAll(victims)
	if err != nil {
		return Snapshot{}, err
	}
	return s.snapshot(), nil
}

// List returns a snapshot of every open session, most recently active
// first.
func (m *Manager) List() []Snapshot {
	m.mu.Lock()
	victims := m.sweepLocked(time.Now())
	ordered := make([]*session, 0, len(m.sessions))
	for e := m.lru.Front(); e != nil; e = e.Next() {
		ordered = append(ordered, e.Value.(*session))
	}
	m.mu.Unlock()
	m.finishAll(victims)
	out := make([]Snapshot, len(ordered))
	for i, s := range ordered {
		out[i] = s.snapshot()
	}
	return out
}

// Subscribe attaches a live event feed to a session and returns the
// subscriber together with the snapshot at attach time, so a consumer
// can render current state and then apply updates without a gap.
// requestID tags the subscriber with the transport request that opened
// it, so a later drop log names the client that fell behind; empty is
// fine.
func (m *Manager) Subscribe(id, requestID string) (*Subscriber, Snapshot, error) {
	s, victims, err := m.lookup(id, false)
	m.finishAll(victims)
	if err != nil {
		return nil, Snapshot{}, err
	}
	sub := &Subscriber{ch: make(chan Event, m.cfg.SubscriberBuffer), sess: s, reqID: requestID}
	s.subMu.Lock()
	if s.closed {
		s.subMu.Unlock()
		return nil, Snapshot{}, ErrNotFound
	}
	s.subs[sub] = struct{}{}
	s.subMu.Unlock()
	metrics.subscribers.Add(1)
	return sub, s.snapshot(), nil
}

// Close ends a session explicitly: subscribers receive a terminal event
// and any in-flight refit is aborted.
func (m *Manager) Close(id string) error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return ErrShutdown
	}
	s, ok := m.sessions[id]
	if ok {
		m.detachLocked(s)
		metrics.closed.Inc()
		metrics.sessions.Set(float64(len(m.sessions)))
	}
	m.mu.Unlock()
	if !ok {
		return ErrNotFound
	}
	m.persistClosed(s.id, "closed")
	s.finish("closed")
	return nil
}

// Shutdown drains the subsystem for process exit: no new sessions,
// observations, or subscriptions are accepted; every session's context
// is cancelled so in-flight refits abort mid-iteration; every feed
// receives a terminal "shutdown" event and closes; and Shutdown blocks
// until running Observe calls return or ctx expires.
func (m *Manager) Shutdown(ctx context.Context) error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	victims := make([]victim, 0, len(m.sessions))
	for _, s := range m.sessions {
		victims = append(victims, victim{s: s, reason: "shutdown"})
	}
	m.sessions = make(map[string]*session)
	m.lru.Init()
	metrics.sessions.Set(0)
	m.mu.Unlock()

	m.finishAll(victims)
	done := make(chan struct{})
	go func() {
		m.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		return fmt.Errorf("stream: shutdown drain: %w", ctx.Err())
	}
	// Sessions survive a graceful restart: once in-flight observes have
	// drained (no one holds s.mu anymore), write one final snapshot per
	// session so the next boot replays from here. The process entry point
	// then flushes and closes the store — after this drain, before the
	// listener closes.
	if m.cfg.Store != nil {
		for _, v := range victims {
			v.s.mu.Lock()
			ps := v.s.persistedLocked()
			v.s.mu.Unlock()
			if err := m.cfg.Store.SessionSnapshot(ps); err != nil {
				metrics.persistErrors.Inc()
			}
		}
	}
	return nil
}

// broadcast delivers an event to every live subscriber, dropping the
// ones that cannot keep up, and reports how many of each. Caller holds
// s.mu; subMu orders broadcasts against subscriber close so no send
// hits a closed channel.
func (s *session) broadcast(ev Event) (delivered, droppedSubs int) {
	s.subMu.Lock()
	defer s.subMu.Unlock()
	if s.closed {
		return 0, 0
	}
	for sub := range s.subs {
		select {
		case sub.ch <- ev:
			metrics.events.Inc()
			delivered++
		default:
			// Full buffer: disconnect the laggard instead of blocking
			// ingestion for everyone.
			delete(s.subs, sub)
			sub.dropped.Store(true)
			close(sub.ch)
			metrics.droppedSubs.Inc()
			metrics.subscribers.Add(-1)
			droppedSubs++
			if s.logger != nil {
				s.logger.Warn("subscriber dropped: buffer full",
					"session", s.id, "request_id", sub.reqID, "seq", ev.Seq)
			}
		}
	}
	return delivered, droppedSubs
}

// unsubscribe detaches sub if still attached.
func (s *session) unsubscribe(sub *Subscriber) {
	sub.once.Do(func() {
		s.subMu.Lock()
		defer s.subMu.Unlock()
		if s.closed {
			return // finish() already closed the channel
		}
		if _, ok := s.subs[sub]; ok {
			delete(s.subs, sub)
			close(sub.ch)
			metrics.subscribers.Add(-1)
		}
	})
}

func (s *session) snapshot() Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.snapshotLocked()
}

// snapshotLocked assembles the snapshot; caller holds s.mu.
func (s *session) snapshotLocked() Snapshot {
	s.subMu.Lock()
	nsubs := len(s.subs)
	s.subMu.Unlock()
	snap := Snapshot{
		ID:           s.id,
		Model:        s.entry.Name,
		Phase:        s.tracker.Phase().String(),
		Observations: s.seq,
		CreatedAt:    s.createdAt,
		LastActive:   time.Unix(0, s.lastActive.Load()),
		Subscribers:  nsubs,
		Config:       s.mcfg,
		HistoryLen:   s.tracker.HistoryLen(),
		LastFit:      s.lastFit.clone(),
	}
	if s.last != nil {
		up := *s.last
		snap.Last = &up
	}
	return snap
}

// toUpdate converts a tracker update into wire form, copying every
// retained slice so consumers on other goroutines can hold the result
// indefinitely.
func toUpdate(seq uint64, mup monitor.Update) Update {
	up := Update{
		Seq:                   seq,
		Time:                  mup.Time,
		Value:                 mup.Value,
		Phase:                 mup.Phase.String(),
		OnsetTime:             optFloat(mup.OnsetTime),
		PredictedMinimumTime:  optFloat(mup.PredictedMinimumTime),
		PredictedMinimumValue: optFloat(mup.PredictedMinimumValue),
		PredictedRecoveryTime: optFloat(mup.PredictedRecoveryTime),
		FitErr:                mup.FitErr,
	}
	if mup.Fit != nil {
		up.FitModel = mup.Fit.Model.Name()
		up.ParamNames = mup.Fit.Model.ParamNames()
		up.Params = append([]float64(nil), mup.Fit.Params...)
		up.SSE = mup.Fit.SSE
		if mup.Fit.Train != nil {
			up.FitWindow = mup.Fit.Train.Len()
		}
		up.WarmPolished = mup.WarmPolished
	}
	if d := mup.Degrade; d != nil {
		up.Degraded = d.Degraded
		up.PanicRecovered = d.PanicRecovered
		if d.FallbackUsed {
			up.FallbackModel = d.UsedModel
		}
		if d.Degraded {
			up.DegradationReason = d.Reason
		}
	}
	return up
}

// optFloat maps NaN (JSON-unrepresentable) to an absent field.
func optFloat(v float64) *float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return nil
	}
	out := v
	return &out
}
