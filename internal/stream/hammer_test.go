package stream

import (
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"resilience/internal/telemetry"
)

// TestStreamHammerRace drives the manager the way production would
// under load, with the race detector watching: many goroutines create,
// observe, snapshot, subscribe to, and close sessions concurrently
// while the table churns through LRU and TTL evictions and other
// goroutines scrape the telemetry exposition. The invariants checked
// are modest — no error but the expected eviction races, table within
// its cap, clean shutdown — because the real assertion is -race
// finding nothing.
func TestStreamHammerRace(t *testing.T) {
	if testing.Short() {
		t.Skip("hammer test skipped in -short mode")
	}
	m := NewManager(Config{
		MaxSessions:      8,
		SessionTTL:       60 * time.Millisecond,
		SubscriberBuffer: 4,
	})
	models := []string{"competing-risks", "quadratic", "weibull-exp"}
	vals := vCurve(1, 6, 0.05)

	const workers = 6
	const iters = 12
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				// Most sessions only exercise the table/broadcast machinery
				// (fitting disabled); every fourth runs real refits of the
				// cheapest family so the optimizer path is in the mix without
				// dominating the clock.
				mc := MonitorConfig{MinFitPoints: 1000}
				model := models[(w+i)%len(models)]
				if i%4 == 0 {
					mc.MinFitPoints = 4
					model = "quadratic"
				}
				snap, err := m.Create(model, mc)
				if err != nil {
					errs <- fmt.Errorf("worker %d create: %w", w, err)
					return
				}
				sub, _, err := m.Subscribe(snap.ID, "")
				if err != nil && !errors.Is(err, ErrNotFound) {
					errs <- fmt.Errorf("worker %d subscribe: %w", w, err)
					return
				}
				for j := range vals {
					_, _, err := m.Observe(context.Background(), snap.ID,
						[]float64{float64(j)}, []float64{vals[j]})
					if err != nil && !errors.Is(err, ErrNotFound) {
						// ErrNotFound is a legitimate race: another worker's
						// create evicted this session mid-replay.
						errs <- fmt.Errorf("worker %d observe: %w", w, err)
						return
					}
				}
				if sub != nil {
					// Drain whatever arrived before detaching; the slow-consumer
					// policy may already have dropped us, which close tolerates.
					for done := false; !done; {
						select {
						case _, open := <-sub.Events():
							done = !open
						default:
							done = true
						}
					}
					sub.Close()
				}
				if _, err := m.Snapshot(snap.ID); err != nil && !errors.Is(err, ErrNotFound) {
					errs <- fmt.Errorf("worker %d snapshot: %w", w, err)
					return
				}
				if i%3 == 0 {
					if err := m.Close(snap.ID); err != nil && !errors.Is(err, ErrNotFound) {
						errs <- fmt.Errorf("worker %d close: %w", w, err)
						return
					}
				}
				if got := m.Len(); got > 8 {
					errs <- fmt.Errorf("worker %d: table grew past cap: %d", w, got)
					return
				}
			}
		}(w)
	}

	// Concurrent scrapers: the metrics path reads every handle the
	// observers are writing.
	scrapeCtx, stopScrape := context.WithCancel(context.Background())
	var scrapeWG sync.WaitGroup
	for s := 0; s < 2; s++ {
		scrapeWG.Add(1)
		go func() {
			defer scrapeWG.Done()
			h := telemetry.Handler()
			for scrapeCtx.Err() == nil {
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
				m.List()
				time.Sleep(time.Millisecond) // scrape hard, but not a spin loop
			}
		}()
	}

	wg.Wait()
	stopScrape()
	scrapeWG.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := m.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown after hammer: %v", err)
	}
	if m.Len() != 0 {
		t.Errorf("sessions survived shutdown: %d", m.Len())
	}
}
