package stream

import (
	"context"
	"testing"

	"resilience/internal/faultinject"
)

// TestStreamChaosPanicFallback injects an optimizer panic into every
// refit of the requested model and asserts the session survives it: the
// degradation chain contains the panic, falls back to a simpler family,
// and the resulting updates — and the session snapshot — carry the
// annotation instead of an error.
func TestStreamChaosPanicFallback(t *testing.T) {
	t.Cleanup(faultinject.Clear)
	if err := faultinject.Arm("core.fit.competing-risks", "panic"); err != nil {
		t.Fatal(err)
	}
	m := NewManager(Config{})
	snap, err := m.Create("competing-risks", MonitorConfig{MinFitPoints: 8})
	if err != nil {
		t.Fatal(err)
	}
	vals := vCurve(2, 16, 0.05)
	var sawFallback bool
	for i, v := range vals {
		ups, _, err := m.Observe(context.Background(), snap.ID,
			[]float64{float64(i)}, []float64{v})
		if err != nil {
			t.Fatalf("observe %d under panic injection: %v", i, err)
		}
		for _, up := range ups {
			if up.FitModel == "" {
				continue
			}
			if up.FitModel == "competing-risks" {
				t.Fatalf("step %d: panicking model reported as fit", i)
			}
			if !up.Degraded || !up.PanicRecovered || up.FallbackModel == "" {
				t.Fatalf("step %d: fallback fit missing annotation: %+v", i, up)
			}
			sawFallback = true
		}
	}
	if !sawFallback {
		t.Fatal("panic injection never produced an annotated fallback fit")
	}
	final, err := m.Snapshot(snap.ID)
	if err != nil {
		t.Fatalf("session did not survive panic injection: %v", err)
	}
	if final.Phase != "recovered" {
		t.Errorf("phase machine stalled at %s under panic injection", final.Phase)
	}
	if final.Last == nil || !final.Last.PanicRecovered {
		t.Errorf("snapshot lost the degradation annotation: %+v", final.Last)
	}
}

// TestStreamChaosExhaustedChain poisons every fit's objective with NaN
// and disables fallback: refits fail, the failures are recorded on the
// updates and counted, and the session keeps ingesting and tracking
// phases regardless.
func TestStreamChaosExhaustedChain(t *testing.T) {
	t.Cleanup(faultinject.Clear)
	if err := faultinject.Arm("core.fit.objective.competing-risks", "nan"); err != nil {
		t.Fatal(err)
	}
	m := NewManager(Config{DisableFallback: true})
	snap, err := m.Create("competing-risks", MonitorConfig{MinFitPoints: 8})
	if err != nil {
		t.Fatal(err)
	}
	before := metrics.refitErrors.Value()
	vals := vCurve(2, 16, 0.05)
	var sawErr bool
	for i, v := range vals {
		ups, _, err := m.Observe(context.Background(), snap.ID,
			[]float64{float64(i)}, []float64{v})
		if err != nil {
			t.Fatalf("observe %d under NaN injection: %v", i, err)
		}
		for _, up := range ups {
			if up.FitModel != "" {
				t.Fatalf("step %d: fit produced from a NaN-poisoned objective", i)
			}
			if up.FitErr != "" {
				sawErr = true
			}
		}
	}
	if !sawErr {
		t.Fatal("poisoned refits never surfaced a FitErr")
	}
	if metrics.refitErrors.Value() == before {
		t.Error("refit errors not counted")
	}
	final, err := m.Snapshot(snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.Phase != "recovered" {
		t.Errorf("phase machine stalled at %s with refits failing", final.Phase)
	}
}
