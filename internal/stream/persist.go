package stream

// Session persistence: the Manager can write every lifecycle transition
// through a Store so sessions survive a process crash. The interface is
// deliberately narrow — one call per WAL record type plus a periodic
// whole-session snapshot — and the Manager treats it availability-first:
// a failing store is counted and served around, never allowed to take
// ingestion down (the data is still in memory; durability degrades, the
// service does not).
//
// Recovery is the inverse path: a boot-time Restore call takes the
// states a store reconstructed (snapshot + WAL replay, see
// internal/durable) and resurrects each session — observations re-fed
// through the tracker's phase machine without refitting, warm-start
// parameters and the last fit restored verbatim — so a recovered session
// resumes observing exactly where the crashed one stopped.

import (
	"context"
	"sort"
	"time"

	"resilience/internal/core"
	"resilience/internal/monitor"
	"resilience/internal/registry"
)

// Store persists session lifecycle transitions. Implementations must be
// safe for concurrent use; calls arrive from request goroutines holding
// per-session locks, so they should return quickly (buffer writes,
// batch fsyncs). A nil Store on Config keeps the manager memory-only.
type Store interface {
	// SessionCreated records a new session and its configuration.
	SessionCreated(id, model string, cfg MonitorConfig, at time.Time) error
	// PointObserved records one accepted observation (seq numbers from 1).
	PointObserved(id string, seq uint64, t, v float64) error
	// FitUpdated records a refit outcome: the fit that will warm-start
	// the next one, with its predictions.
	FitUpdated(id string, fit *FitSummary) error
	// SessionClosed records a terminal transition ("closed",
	// "evicted:lru", "evicted:ttl"); the session must not be resurrected
	// by recovery. Graceful shutdown intentionally does NOT emit this —
	// sessions survive a restart.
	SessionClosed(id, reason string) error
	// SessionSnapshot records the session's whole state, superseding its
	// earlier WAL records so replay time stays bounded.
	SessionSnapshot(ps *PersistedSession) error
}

// FitSummary is the compact, wire- and disk-friendly record of one
// refit: enough to warm-start the next fit after recovery and to let an
// SSE client that reconnects after a restart resync without replaying
// its own data.
type FitSummary struct {
	// Seq is the observation that produced this fit.
	Seq        uint64    `json:"seq"`
	Model      string    `json:"model"`
	ParamNames []string  `json:"param_names,omitempty"`
	Params     []float64 `json:"params,omitempty"`
	SSE        float64   `json:"sse,omitempty"`
	// Window is how many post-onset points the fit covered. Recovery
	// hands it (with Model, Params and SSE) to Tracker.SetWarmFit, which
	// is what lets the first post-recovery refit take the same cheap
	// warm-polish path the pre-crash session would have taken.
	Window int `json:"window,omitempty"`
	// WarmPolished mirrors the update's warm-path marker.
	WarmPolished bool `json:"warm_polished,omitempty"`
	// Degraded and FallbackModel mirror the update's degradation
	// annotation.
	Degraded      bool   `json:"degraded,omitempty"`
	FallbackModel string `json:"fallback_model,omitempty"`
	// Predicted* echo the update's predictions at fit time.
	PredictedMinimumTime  *float64 `json:"predicted_minimum_time,omitempty"`
	PredictedMinimumValue *float64 `json:"predicted_minimum_value,omitempty"`
	PredictedRecoveryTime *float64 `json:"predicted_recovery_time,omitempty"`
}

// clone returns an independent copy (slices included) safe to hand to
// other goroutines.
func (f *FitSummary) clone() *FitSummary {
	if f == nil {
		return nil
	}
	out := *f
	out.ParamNames = append([]string(nil), f.ParamNames...)
	out.Params = append([]float64(nil), f.Params...)
	out.PredictedMinimumTime = copyFloatPtr(f.PredictedMinimumTime)
	out.PredictedMinimumValue = copyFloatPtr(f.PredictedMinimumValue)
	out.PredictedRecoveryTime = copyFloatPtr(f.PredictedRecoveryTime)
	return &out
}

func copyFloatPtr(p *float64) *float64 {
	if p == nil {
		return nil
	}
	v := *p
	return &v
}

// fitSummaryOf extracts the persistent fit state from one update.
func fitSummaryOf(up *Update) *FitSummary {
	return &FitSummary{
		Seq:                   up.Seq,
		Model:                 up.FitModel,
		ParamNames:            append([]string(nil), up.ParamNames...),
		Params:                append([]float64(nil), up.Params...),
		SSE:                   up.SSE,
		Window:                up.FitWindow,
		WarmPolished:          up.WarmPolished,
		Degraded:              up.Degraded,
		FallbackModel:         up.FallbackModel,
		PredictedMinimumTime:  copyFloatPtr(up.PredictedMinimumTime),
		PredictedMinimumValue: copyFloatPtr(up.PredictedMinimumValue),
		PredictedRecoveryTime: copyFloatPtr(up.PredictedRecoveryTime),
	}
}

// PersistedSession is everything needed to resurrect one session: the
// identity and configuration from its creation record, every accepted
// observation, and the last fit state. Stores assemble it during
// recovery (snapshot base + WAL tail) and the Manager both emits it
// (SessionSnapshot) and consumes it (Restore).
type PersistedSession struct {
	ID         string        `json:"id"`
	Model      string        `json:"model"`
	Config     MonitorConfig `json:"config"`
	CreatedAt  time.Time     `json:"created_at"`
	LastActive time.Time     `json:"last_active"`
	// Seq is the session's observation count; always equal to len(Times).
	Seq    uint64    `json:"seq"`
	Times  []float64 `json:"times"`
	Values []float64 `json:"values"`
	// LastFit is the most recent refit outcome (nil before the first fit);
	// its params warm-start the first post-recovery refit.
	LastFit *FitSummary `json:"last_fit,omitempty"`
}

// persistedLocked assembles the session's durable state; caller holds
// s.mu.
func (s *session) persistedLocked() *PersistedSession {
	times, values := s.tracker.Observations()
	return &PersistedSession{
		ID:         s.id,
		Model:      s.entry.Name,
		Config:     s.mcfg,
		CreatedAt:  s.createdAt,
		LastActive: time.Unix(0, s.lastActive.Load()),
		Seq:        s.seq,
		Times:      times,
		Values:     values,
		LastFit:    s.lastFit.clone(),
	}
}

// persistSnapshotLocked writes a session snapshot through the store and
// resets the cadence counter; caller holds s.mu.
func (m *Manager) persistSnapshotLocked(s *session) {
	s.sinceSnap = 0
	if err := m.cfg.Store.SessionSnapshot(s.persistedLocked()); err != nil {
		metrics.persistErrors.Inc()
	}
}

// persistClosed records a terminal transition, counting (not
// propagating) store failures.
func (m *Manager) persistClosed(id, reason string) {
	if m.cfg.Store == nil {
		return
	}
	if err := m.cfg.Store.SessionClosed(id, reason); err != nil {
		metrics.persistErrors.Inc()
	}
}

// Restore resurrects recovered sessions into the table, called once at
// boot between NewManager and serving traffic. Per state it rebuilds the
// tracker by replaying every observation through the phase machine (no
// refits — microseconds, not optimizer calls), restores the warm-start
// fit, and re-inserts the session with its original ID, creation time,
// and LRU position (states are ordered by last activity).
//
// The TTL is respected: a state idle past SessionTTL is not resurrected
// — it gets a terminal "evicted:ttl" store record so the next recovery
// drops it too. States above the MaxSessions cap evict least recently
// active first, exactly like live traffic. A state that no longer
// resolves (unknown model after a version change, corrupt observation
// order) is dropped and counted, never fatal.
//
// It returns how many sessions were restored and how many states were
// dropped (expired, over cap, or unresolvable).
func (m *Manager) Restore(states []PersistedSession) (restored, dropped int, err error) {
	ordered := make([]*PersistedSession, 0, len(states))
	for i := range states {
		ordered = append(ordered, &states[i])
	}
	// Oldest first, so inserting at the LRU front leaves the most
	// recently active session in front, as live traffic would have.
	sort.Slice(ordered, func(i, j int) bool {
		return ordered[i].LastActive.Before(ordered[j].LastActive)
	})

	now := time.Now()
	cutoff := now.Add(-m.cfg.SessionTTL)
	var victims []victim
	for _, ps := range ordered {
		if !ps.LastActive.After(cutoff) {
			metrics.evictedTTL.Inc()
			m.persistClosed(ps.ID, "evicted:ttl")
			dropped++
			continue
		}
		s, rerr := m.rebuild(ps)
		if rerr != nil {
			m.persistClosed(ps.ID, "closed")
			dropped++
			continue
		}

		m.mu.Lock()
		if m.closed {
			m.mu.Unlock()
			s.cancel()
			return restored, dropped, ErrShutdown
		}
		if _, dup := m.sessions[s.id]; dup {
			// A live session (created while recovery ran) owns the ID; the
			// stale state loses.
			m.mu.Unlock()
			s.cancel()
			dropped++
			continue
		}
		for len(m.sessions) >= m.cfg.MaxSessions {
			oldest := m.lru.Back()
			if oldest == nil {
				break
			}
			v := oldest.Value.(*session)
			m.detachLocked(v)
			metrics.evictedLRU.Inc()
			victims = append(victims, victim{s: v, reason: "evicted:lru"})
		}
		m.sessions[s.id] = s
		s.elem = m.lru.PushFront(s)
		metrics.sessions.Set(float64(len(m.sessions)))
		m.mu.Unlock()
		metrics.restored.Inc()
		restored++
	}
	m.finishAll(victims)
	return restored, dropped, nil
}

// rebuild reconstructs one session from its persisted state.
func (m *Manager) rebuild(ps *PersistedSession) (*session, error) {
	entry, err := registry.Lookup(ps.Model)
	if err != nil {
		return nil, err
	}
	if ierr := ps.Config.validate(); ierr != nil {
		return nil, ierr
	}
	pol := m.cfg.Fallback
	s := newSession(ps.ID, entry, ps.Config, &pol)
	s.logger = m.cfg.Logger
	s.createdAt = ps.CreatedAt
	s.lastActive.Store(ps.LastActive.UnixNano())

	var last Update
	for i := range ps.Times {
		mup, err := s.tracker.Replay(ps.Times[i], ps.Values[i])
		if err != nil {
			s.cancel()
			return nil, err
		}
		last = toUpdate(uint64(i+1), mup)
	}
	s.seq = uint64(len(ps.Times))
	if fs := ps.LastFit.clone(); fs != nil {
		s.lastFit = fs
		// Restore the full warm-fit state, not just the parameters: with
		// the family, SSE and window back, the first post-recovery refit
		// takes the same warm-polish path (and produces bit-identical
		// params) as the session would have without the crash.
		s.tracker.SetWarmFit(fs.Model, fs.Params, fs.SSE, fs.Window)
		// The replayed updates carry no fit (replay skips refits); merge
		// the persisted fit back onto the final update when it was the one
		// that produced it, so the recovered snapshot matches pre-crash.
		if fs.Seq == s.seq {
			last.FitModel = fs.Model
			last.ParamNames = fs.ParamNames
			last.Params = fs.Params
			last.SSE = fs.SSE
			last.FitWindow = fs.Window
			last.WarmPolished = fs.WarmPolished
			last.Degraded = fs.Degraded
			last.FallbackModel = fs.FallbackModel
			last.PredictedMinimumTime = fs.PredictedMinimumTime
			last.PredictedMinimumValue = fs.PredictedMinimumValue
			last.PredictedRecoveryTime = fs.PredictedRecoveryTime
		}
	}
	if s.seq > 0 {
		s.last = &last
	}
	return s, nil
}

// newSession builds a session and its tracker; shared by Create and
// rebuild so live and recovered sessions are configured identically.
func newSession(id string, entry registry.Entry, mc MonitorConfig, pol *core.FallbackPolicy) *session {
	ctx, cancel := context.WithCancel(context.Background())
	return &session{
		id:     id,
		entry:  entry,
		mcfg:   mc,
		ctx:    ctx,
		cancel: cancel,
		tracker: monitor.NewTracker(monitor.Config{
			Baseline:      mc.Baseline,
			OnsetDrop:     mc.OnsetDrop,
			RecoverySlack: mc.RecoverySlack,
			MinFitPoints:  mc.MinFitPoints,
			HorizonFactor: mc.HorizonFactor,
			Model:         entry.Model,
			Fallback:      pol,
		}),
		subs:      make(map[*Subscriber]struct{}),
		createdAt: time.Now(),
	}
}
