package stream

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"
	"time"

	"resilience/internal/faultinject"
	"resilience/internal/service"
)

// vCurve produces a clean V-shaped incident: flat at 1.0 for lead steps,
// then a dip to 1-depth with recovery past baseline by the end.
func vCurve(lead, n int, depth float64) []float64 {
	out := make([]float64, lead+n)
	for i := 0; i < lead; i++ {
		out[i] = 1
	}
	for i := 0; i < n; i++ {
		u := float64(i) / float64(n-1)
		out[lead+i] = 1 - depth*math.Sin(math.Pi*math.Min(u/0.75, 1)) + 0.02*math.Max(0, (u-0.75)/0.25)
	}
	return out
}

func observeAll(t *testing.T, m *Manager, id string, vals []float64) []Update {
	t.Helper()
	var all []Update
	for i, v := range vals {
		ups, _, err := m.Observe(context.Background(), id, []float64{float64(i)}, []float64{v})
		if err != nil {
			t.Fatalf("observe %d: %v", i, err)
		}
		all = append(all, ups...)
	}
	return all
}

func TestSessionLifecycle(t *testing.T) {
	m := NewManager(Config{})
	snap, err := m.Create("cr", MonitorConfig{}) // registry alias for competing-risks
	if err != nil {
		t.Fatal(err)
	}
	if snap.Model != "competing-risks" {
		t.Fatalf("alias not resolved: model = %q", snap.Model)
	}
	if snap.Phase != "nominal" || snap.Observations != 0 || snap.Last != nil {
		t.Fatalf("fresh snapshot wrong: %+v", snap)
	}

	ups := observeAll(t, m, snap.ID, vCurve(3, 30, 0.05))
	for i, up := range ups {
		if up.Seq != uint64(i+1) {
			t.Fatalf("seq %d at index %d", up.Seq, i)
		}
	}
	phases := map[string]bool{}
	var sawFit bool
	for _, up := range ups {
		phases[up.Phase] = true
		if up.FitModel != "" {
			sawFit = true
			if len(up.Params) == 0 || len(up.ParamNames) != len(up.Params) {
				t.Fatalf("fit without params: %+v", up)
			}
		}
	}
	for _, want := range []string{"nominal", "degrading", "recovering", "recovered"} {
		if !phases[want] {
			t.Errorf("never saw phase %q", want)
		}
	}
	if !sawFit {
		t.Error("no update carried a fit")
	}

	final, err := m.Snapshot(snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.Phase != "recovered" || final.Observations != uint64(len(ups)) {
		t.Fatalf("final snapshot: %+v", final)
	}
	if final.Last == nil || final.Last.Seq != uint64(len(ups)) {
		t.Fatalf("snapshot.Last stale: %+v", final.Last)
	}

	if err := m.Close(snap.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Snapshot(snap.ID); !errors.Is(err, ErrNotFound) {
		t.Fatalf("snapshot after close: %v", err)
	}
	if err := m.Close(snap.ID); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double close: %v", err)
	}
}

func TestCreateValidation(t *testing.T) {
	m := NewManager(Config{})
	var ie *service.InputError
	if _, err := m.Create("no-such-model", MonitorConfig{}); !errors.As(err, &ie) || ie.Field != "model" {
		t.Fatalf("unknown model: %v", err)
	}
	bad := []MonitorConfig{
		{Baseline: math.NaN()},
		{Baseline: -1},
		{OnsetDrop: 1.5},
		{RecoverySlack: -0.1},
		{MinFitPoints: -1},
		{HorizonFactor: math.Inf(1)},
	}
	for i, mc := range bad {
		if _, err := m.Create("competing-risks", mc); !errors.As(err, &ie) {
			t.Errorf("bad config %d accepted: %v", i, err)
		}
	}
}

func TestObserveValidation(t *testing.T) {
	m := NewManager(Config{MaxChunk: 4})
	snap, err := m.Create("competing-risks", MonitorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	var ie *service.InputError
	if _, _, err := m.Observe(ctx, snap.ID, nil, nil); !errors.As(err, &ie) {
		t.Fatalf("empty chunk: %v", err)
	}
	if _, _, err := m.Observe(ctx, snap.ID, []float64{1}, []float64{1, 2}); !errors.As(err, &ie) || ie.Field != "times" {
		t.Fatalf("length mismatch: %v", err)
	}
	if _, _, err := m.Observe(ctx, snap.ID, []float64{0, 1, 2, 3, 4}, []float64{1, 1, 1, 1, 1}); !errors.As(err, &ie) {
		t.Fatalf("oversized chunk: %v", err)
	}
	if _, _, err := m.Observe(ctx, "s-nope", []float64{0}, []float64{1}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unknown session: %v", err)
	}
	// A bad point mid-chunk keeps the points before it and reports the rest.
	ups, _, err := m.Observe(ctx, snap.ID, []float64{0, 1, 0.5}, []float64{1, 1, 1})
	if !errors.As(err, &ie) {
		t.Fatalf("backwards time accepted: %v", err)
	}
	if len(ups) != 2 {
		t.Fatalf("partial chunk kept %d updates, want 2", len(ups))
	}
	snap2, err := m.Snapshot(snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	if snap2.Observations != 2 {
		t.Fatalf("observations after partial chunk = %d, want 2", snap2.Observations)
	}
}

func TestLRUEvictionAtCap(t *testing.T) {
	m := NewManager(Config{MaxSessions: 2})
	before := metrics.evictedLRU.Value()
	a, _ := m.Create("competing-risks", MonitorConfig{})
	sub, _, err := m.Subscribe(a.ID, "")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := m.Create("quadratic", MonitorConfig{})
	// Touch a so b becomes the least recently active.
	if _, _, err := m.Observe(context.Background(), a.ID, []float64{0}, []float64{1}); err != nil {
		t.Fatal(err)
	}
	c, _ := m.Create("weibull-exp", MonitorConfig{})
	if m.Len() != 2 {
		t.Fatalf("table len %d, want 2", m.Len())
	}
	if _, err := m.Snapshot(b.ID); !errors.Is(err, ErrNotFound) {
		t.Fatalf("LRU victim still present: %v", err)
	}
	if _, err := m.Snapshot(a.ID); err != nil {
		t.Fatalf("recently active session evicted: %v", err)
	}
	if _, err := m.Snapshot(c.ID); err != nil {
		t.Fatalf("new session missing: %v", err)
	}
	if got := metrics.evictedLRU.Value() - before; got != 1 {
		t.Errorf("lru eviction counter moved by %d, want 1", got)
	}
	// a outlived the eviction; its subscriber feed is still open.
	m.Close(a.ID)
	ev, ok := lastEvent(t, sub)
	if !ok || ev.Type != EventClosed || ev.Reason != "closed" {
		t.Fatalf("terminal event = %+v (ok=%v)", ev, ok)
	}
}

// lastEvent drains sub until the channel closes and returns the final
// event received.
func lastEvent(t *testing.T, sub *Subscriber) (Event, bool) {
	t.Helper()
	var last Event
	var any bool
	for {
		select {
		case ev, open := <-sub.Events():
			if !open {
				return last, any
			}
			last, any = ev, true
		case <-time.After(5 * time.Second):
			t.Fatal("subscriber channel never closed")
		}
	}
}

func TestTTLEviction(t *testing.T) {
	m := NewManager(Config{SessionTTL: 20 * time.Millisecond})
	before := metrics.evictedTTL.Value()
	a, _ := m.Create("competing-risks", MonitorConfig{})
	sub, _, err := m.Subscribe(a.ID, "")
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(40 * time.Millisecond)
	// The sweep rides the next table access; the very request that finds
	// the session must see it expired.
	if _, err := m.Snapshot(a.ID); !errors.Is(err, ErrNotFound) {
		t.Fatalf("expired session served: %v", err)
	}
	if got := metrics.evictedTTL.Value() - before; got != 1 {
		t.Errorf("ttl eviction counter moved by %d, want 1", got)
	}
	ev, ok := lastEvent(t, sub)
	if !ok || ev.Type != EventClosed || ev.Reason != "evicted:ttl" {
		t.Fatalf("terminal event = %+v (ok=%v)", ev, ok)
	}
}

func TestSubscribeStreamsEveryUpdate(t *testing.T) {
	m := NewManager(Config{})
	snap, _ := m.Create("competing-risks", MonitorConfig{})
	sub, at, err := m.Subscribe(snap.ID, "")
	if err != nil {
		t.Fatal(err)
	}
	if at.ID != snap.ID {
		t.Fatalf("subscribe snapshot for %q", at.ID)
	}
	vals := vCurve(2, 12, 0.05)
	times := make([]float64, len(vals))
	for i := range times {
		times[i] = float64(i)
	}
	if _, _, err := m.Observe(context.Background(), snap.ID, times, vals); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= len(vals); i++ {
		select {
		case ev := <-sub.Events():
			if ev.Type != EventUpdate || ev.Seq != uint64(i) || ev.Update == nil {
				t.Fatalf("event %d = %+v", i, ev)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("missing event %d", i)
		}
	}
	sub.Close()
	if _, open := <-sub.Events(); open {
		t.Fatal("channel still open after Close")
	}
	if sub.Dropped() {
		t.Fatal("explicit close marked as drop")
	}
}

func TestSlowSubscriberDropped(t *testing.T) {
	m := NewManager(Config{SubscriberBuffer: 2})
	snap, _ := m.Create("competing-risks", MonitorConfig{MinFitPoints: 1000})
	slow, _, err := m.Subscribe(snap.ID, "")
	if err != nil {
		t.Fatal(err)
	}
	fast, _, err := m.Subscribe(snap.ID, "")
	if err != nil {
		t.Fatal(err)
	}
	before := metrics.droppedSubs.Value()
	// The fast subscriber drains after every observation; the slow one
	// never reads, so its buffer (2) fills and the third event drops it.
	for i := 0; i < 6; i++ {
		if _, _, err := m.Observe(context.Background(), snap.ID, []float64{float64(i)}, []float64{1}); err != nil {
			t.Fatal(err)
		}
		select {
		case ev := <-fast.Events():
			if ev.Type != EventUpdate || ev.Seq != uint64(i+1) {
				t.Fatalf("fast event %d = %+v", i, ev)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("fast subscriber missing event %d", i)
		}
	}
	if !slow.Dropped() {
		t.Fatal("stalled subscriber not dropped")
	}
	// Buffered events may remain on the slow channel; drain to the close.
	for range slow.Events() {
	}
	if got := metrics.droppedSubs.Value() - before; got != 1 {
		t.Errorf("dropped counter moved by %d, want 1", got)
	}
	m.Close(snap.ID)
	if ev, ok := lastEvent(t, fast); !ok || ev.Type != EventClosed {
		t.Errorf("fast subscriber terminal event = %+v (ok=%v)", ev, ok)
	}
}

func TestCloseAbortsInflightRefit(t *testing.T) {
	t.Cleanup(faultinject.Clear)
	if err := faultinject.Arm("core.fit.delay.competing-risks", "delay:30s"); err != nil {
		t.Fatal(err)
	}
	m := NewManager(Config{DisableFallback: true})
	snap, _ := m.Create("competing-risks", MonitorConfig{MinFitPoints: 3})
	vals := vCurve(2, 10, 0.05)

	type result struct {
		ups []Update
		err error
	}
	res := make(chan result, 1)
	go func() {
		var all []Update
		for i, v := range vals {
			ups, _, err := m.Observe(context.Background(), snap.ID, []float64{float64(i)}, []float64{v})
			all = append(all, ups...)
			if err != nil {
				res <- result{all, err}
				return
			}
		}
		res <- result{all, nil}
	}()

	time.Sleep(100 * time.Millisecond) // let an observe reach the armed delay
	start := time.Now()
	if err := m.Close(snap.ID); err != nil {
		t.Fatal(err)
	}
	select {
	case r := <-res:
		// The in-flight observe finishes (aborted refit annotated), and the
		// next one hits ErrNotFound; either way it must not ride out the 30s
		// delay.
		if took := time.Since(start); took > 5*time.Second {
			t.Fatalf("observe loop outlived close by %v", took)
		}
		if r.err != nil && !errors.Is(r.err, ErrNotFound) {
			t.Fatalf("observe loop error: %v", r.err)
		}
		var aborted bool
		for _, up := range r.ups {
			if strings.Contains(up.FitErr, "cancel") {
				aborted = true
			}
		}
		if !aborted {
			t.Error("no update recorded the aborted refit")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("observe loop hung past session close")
	}
}

func TestObserveHonorsCallerContext(t *testing.T) {
	m := NewManager(Config{})
	snap, _ := m.Create("competing-risks", MonitorConfig{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	vals := vCurve(2, 20, 0.05)
	var sawAbort bool
	for i, v := range vals {
		ups, _, err := m.Observe(ctx, snap.ID, []float64{float64(i)}, []float64{v})
		if err != nil {
			t.Fatal(err) // cancellation aborts refits, not ingestion
		}
		for _, up := range ups {
			if up.FitModel != "" {
				t.Fatalf("step %d: fit produced under cancelled context", i)
			}
			if up.FitErr != "" {
				sawAbort = true
			}
		}
	}
	if !sawAbort {
		t.Error("cancelled context never surfaced a FitErr")
	}
}

func TestShutdown(t *testing.T) {
	m := NewManager(Config{})
	a, _ := m.Create("competing-risks", MonitorConfig{})
	sub, _, err := m.Subscribe(a.ID, "")
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	ev, ok := lastEvent(t, sub)
	if !ok || ev.Type != EventClosed || ev.Reason != "shutdown" {
		t.Fatalf("terminal event = %+v (ok=%v)", ev, ok)
	}
	if m.Len() != 0 {
		t.Fatalf("sessions survived shutdown: %d", m.Len())
	}
	if _, err := m.Create("competing-risks", MonitorConfig{}); !errors.Is(err, ErrShutdown) {
		t.Fatalf("create after shutdown: %v", err)
	}
	if _, _, err := m.Observe(context.Background(), a.ID, []float64{0}, []float64{1}); !errors.Is(err, ErrShutdown) {
		t.Fatalf("observe after shutdown: %v", err)
	}
	if err := m.Shutdown(context.Background()); err != nil {
		t.Fatalf("second shutdown: %v", err)
	}
}

func TestListOrdersByRecency(t *testing.T) {
	m := NewManager(Config{})
	a, _ := m.Create("competing-risks", MonitorConfig{})
	b, _ := m.Create("quadratic", MonitorConfig{})
	if _, _, err := m.Observe(context.Background(), a.ID, []float64{0}, []float64{1}); err != nil {
		t.Fatal(err)
	}
	got := m.List()
	if len(got) != 2 || got[0].ID != a.ID || got[1].ID != b.ID {
		ids := make([]string, len(got))
		for i, s := range got {
			ids[i] = s.ID
		}
		t.Fatalf("list order %v, want [%s %s]", ids, a.ID, b.ID)
	}
}
