package stat

import (
	"errors"
	"math"
	"testing"
)

// whiteNoise produces deterministic pseudo-Gaussian residuals via a
// fixed 12-uniform sum (Irwin–Hall) generator.
func whiteNoise(n int, seed uint64) []float64 {
	state := seed
	next := func() float64 {
		state = state*6364136223846793005 + 1442695040888963407
		return float64(state>>11) / (1 << 53)
	}
	out := make([]float64, n)
	for i := range out {
		var s float64
		for j := 0; j < 12; j++ {
			s += next()
		}
		out[i] = s - 6 // ~N(0,1)
	}
	return out
}

func TestChiSquareSF(t *testing.T) {
	// Known values: P(X > k) for chi-square at its median-ish points.
	cases := []struct {
		x    float64
		k    int
		want float64
	}{
		{0, 1, 1},
		{3.841, 1, 0.05}, // 95th percentile of chi2(1)
		{5.991, 2, 0.05}, // 95th percentile of chi2(2)
		{18.307, 10, 0.05},
	}
	for _, tc := range cases {
		got, err := ChiSquareSF(tc.x, tc.k)
		if err != nil {
			t.Fatalf("ChiSquareSF(%g, %d): %v", tc.x, tc.k, err)
		}
		if math.Abs(got-tc.want) > 5e-4 {
			t.Errorf("ChiSquareSF(%g, %d) = %g, want %g", tc.x, tc.k, got, tc.want)
		}
	}
	if _, err := ChiSquareSF(1, 0); err == nil {
		t.Error("k=0: want error")
	}
}

func TestLjungBoxWhiteNoisePasses(t *testing.T) {
	res, err := LjungBox(whiteNoise(200, 7), 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.PValue < 0.01 {
		t.Errorf("white noise rejected: p = %g (Q = %g)", res.PValue, res.Statistic)
	}
	if res.Lags != 10 {
		t.Errorf("lags = %d", res.Lags)
	}
}

func TestLjungBoxDetectsAutocorrelation(t *testing.T) {
	// Strong AR(1) residuals must be flagged.
	noise := whiteNoise(200, 11)
	ar := make([]float64, len(noise))
	ar[0] = noise[0]
	for i := 1; i < len(ar); i++ {
		ar[i] = 0.8*ar[i-1] + noise[i]
	}
	res, err := LjungBox(ar, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.PValue > 1e-6 {
		t.Errorf("AR(1) not detected: p = %g", res.PValue)
	}
}

func TestLjungBoxDefaultsAndErrors(t *testing.T) {
	// Default lag selection works on short series.
	if _, err := LjungBox(whiteNoise(30, 3), 0); err != nil {
		t.Errorf("default lags: %v", err)
	}
	if _, err := LjungBox([]float64{1, 2}, 5); !errors.Is(err, ErrTooFewResiduals) {
		t.Errorf("too few: %v", err)
	}
	flat := make([]float64, 50)
	if _, err := LjungBox(flat, 5); !errors.Is(err, ErrTooFewResiduals) {
		t.Errorf("zero variance: %v", err)
	}
}

func TestJarqueBeraNormalPasses(t *testing.T) {
	res, err := JarqueBera(whiteNoise(500, 13))
	if err != nil {
		t.Fatal(err)
	}
	if res.PValue < 0.01 {
		t.Errorf("normal sample rejected: p = %g (skew %g, kurt %g)",
			res.PValue, res.Skewness, res.Kurtosis)
	}
}

func TestJarqueBeraDetectsSkew(t *testing.T) {
	// Exponential residuals are strongly skewed.
	noise := whiteNoise(300, 17)
	skewed := make([]float64, len(noise))
	for i, v := range noise {
		skewed[i] = math.Exp(v / 2)
	}
	res, err := JarqueBera(skewed)
	if err != nil {
		t.Fatal(err)
	}
	if res.PValue > 1e-4 {
		t.Errorf("skewed sample not detected: p = %g", res.PValue)
	}
	if res.Skewness <= 0 {
		t.Errorf("skewness = %g, want positive", res.Skewness)
	}
}

func TestJarqueBeraErrors(t *testing.T) {
	if _, err := JarqueBera([]float64{1, 2, 3}); !errors.Is(err, ErrTooFewResiduals) {
		t.Errorf("too few: %v", err)
	}
	flat := make([]float64, 20)
	if _, err := JarqueBera(flat); !errors.Is(err, ErrTooFewResiduals) {
		t.Errorf("zero variance: %v", err)
	}
}

func TestDurbinWatson(t *testing.T) {
	// White noise → near 2.
	dw, err := DurbinWatson(whiteNoise(300, 19))
	if err != nil {
		t.Fatal(err)
	}
	if dw < 1.7 || dw > 2.3 {
		t.Errorf("white-noise DW = %g, want near 2", dw)
	}
	// Strong positive autocorrelation → near 0.
	noise := whiteNoise(300, 23)
	ar := make([]float64, len(noise))
	ar[0] = noise[0]
	for i := 1; i < len(ar); i++ {
		ar[i] = 0.95*ar[i-1] + 0.1*noise[i]
	}
	dw, err = DurbinWatson(ar)
	if err != nil {
		t.Fatal(err)
	}
	if dw > 0.7 {
		t.Errorf("AR DW = %g, want near 0", dw)
	}
	// Alternating residuals → near 4.
	alt := make([]float64, 100)
	for i := range alt {
		alt[i] = 1 - 2*float64(i%2)
	}
	dw, err = DurbinWatson(alt)
	if err != nil {
		t.Fatal(err)
	}
	if dw < 3.5 {
		t.Errorf("alternating DW = %g, want near 4", dw)
	}
	if _, err := DurbinWatson([]float64{1, 2}); !errors.Is(err, ErrTooFewResiduals) {
		t.Errorf("too few: %v", err)
	}
	if _, err := DurbinWatson(make([]float64, 10)); !errors.Is(err, ErrTooFewResiduals) {
		t.Errorf("zero variance: %v", err)
	}
}
