package stat

import "math"

// Uniform is the continuous uniform distribution on [a, b], a < b. It is
// mainly used by tests and by the synthetic data generator.
type Uniform struct {
	a, b float64
}

var _ Distribution = Uniform{}

// NewUniform returns a uniform distribution on [a, b].
func NewUniform(a, b float64) (Uniform, error) {
	if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
		return Uniform{}, badParam("uniform", "bounds", math.NaN())
	}
	if a >= b {
		return Uniform{}, badParam("uniform", "a >= b; a", a)
	}
	return Uniform{a: a, b: b}, nil
}

// Bounds returns the interval endpoints (a, b).
func (u Uniform) Bounds() (float64, float64) { return u.a, u.b }

// CDF returns the uniform CDF at x.
func (u Uniform) CDF(x float64) float64 {
	switch {
	case x <= u.a:
		return 0
	case x >= u.b:
		return 1
	default:
		return (x - u.a) / (u.b - u.a)
	}
}

// PDF returns 1/(b-a) inside [a, b] and 0 outside.
func (u Uniform) PDF(x float64) float64 {
	if x < u.a || x > u.b {
		return 0
	}
	return 1 / (u.b - u.a)
}

// Quantile returns a + p(b-a). Out-of-range p yields NaN.
func (u Uniform) Quantile(p float64) float64 {
	if p < 0 || p > 1 || math.IsNaN(p) {
		return math.NaN()
	}
	return u.a + p*(u.b-u.a)
}

// Mean returns (a+b)/2.
func (u Uniform) Mean() float64 { return (u.a + u.b) / 2 }

// Variance returns (b-a)²/12.
func (u Uniform) Variance() float64 {
	d := u.b - u.a
	return d * d / 12
}

// NumParams returns 2.
func (u Uniform) NumParams() int { return 2 }

// Name returns "uniform".
func (u Uniform) Name() string { return "uniform" }
