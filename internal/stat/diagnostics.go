package stat

import (
	"errors"
	"fmt"
	"math"

	"resilience/internal/numeric"
)

// ErrTooFewResiduals is returned when a diagnostic needs more residuals
// than were supplied.
var ErrTooFewResiduals = errors.New("stat: too few residuals for diagnostic")

// ChiSquareSF returns the survival function P(X > x) of a chi-square
// distribution with k degrees of freedom, via the regularized upper
// incomplete gamma Q(k/2, x/2).
func ChiSquareSF(x float64, k int) (float64, error) {
	if k <= 0 {
		return math.NaN(), fmt.Errorf("stat: chi-square needs k > 0, got %d", k)
	}
	if x <= 0 {
		return 1, nil
	}
	q, err := numeric.GammaRegQ(float64(k)/2, x/2)
	if err != nil {
		return math.NaN(), fmt.Errorf("stat: chi-square SF: %w", err)
	}
	return q, nil
}

// LjungBoxResult is the outcome of a Ljung–Box portmanteau test for
// residual autocorrelation.
type LjungBoxResult struct {
	// Statistic is the Q statistic, asymptotically chi-square with Lags
	// degrees of freedom under the null of no autocorrelation.
	Statistic float64
	// PValue is the right-tail p-value.
	PValue float64
	// Lags is the number of autocorrelation lags pooled.
	Lags int
}

// LjungBox tests residuals for autocorrelation up to the given lag
// count. The paper's confidence intervals (Eqs. 12–13) assume
// uncorrelated residuals; a small p-value here warns that the bands are
// optimistic.
func LjungBox(residuals []float64, lags int) (LjungBoxResult, error) {
	n := len(residuals)
	if lags <= 0 {
		lags = 10
		if n/5 < lags {
			lags = n / 5
		}
		if lags < 1 {
			lags = 1
		}
	}
	if n < lags+2 {
		return LjungBoxResult{}, fmt.Errorf("%w: %d residuals for %d lags", ErrTooFewResiduals, n, lags)
	}
	mean, err := Mean(residuals)
	if err != nil {
		return LjungBoxResult{}, err
	}
	denom := SumSquares(residuals, mean)
	if denom == 0 {
		return LjungBoxResult{}, fmt.Errorf("%w: zero-variance residuals", ErrTooFewResiduals)
	}
	q := 0.0
	for k := 1; k <= lags; k++ {
		var num float64
		for i := k; i < n; i++ {
			num += (residuals[i] - mean) * (residuals[i-k] - mean)
		}
		rho := num / denom
		q += rho * rho / float64(n-k)
	}
	q *= float64(n) * (float64(n) + 2)
	p, err := ChiSquareSF(q, lags)
	if err != nil {
		return LjungBoxResult{}, err
	}
	return LjungBoxResult{Statistic: q, PValue: p, Lags: lags}, nil
}

// JarqueBeraResult is the outcome of a Jarque–Bera normality test.
type JarqueBeraResult struct {
	// Statistic is asymptotically chi-square with 2 degrees of freedom
	// under normality.
	Statistic float64
	// PValue is the right-tail p-value.
	PValue float64
	// Skewness and Kurtosis are the sample moments behind the statistic.
	Skewness float64
	Kurtosis float64
}

// JarqueBera tests residuals for normality via their skewness and excess
// kurtosis. The z critical values in Eq. (13) presume Gaussian
// residuals; a small p-value here says the nominal 95% coverage may not
// hold.
func JarqueBera(residuals []float64) (JarqueBeraResult, error) {
	n := len(residuals)
	if n < 8 {
		return JarqueBeraResult{}, fmt.Errorf("%w: %d residuals", ErrTooFewResiduals, n)
	}
	mean, err := Mean(residuals)
	if err != nil {
		return JarqueBeraResult{}, err
	}
	var m2, m3, m4 float64
	for _, r := range residuals {
		d := r - mean
		m2 += d * d
		m3 += d * d * d
		m4 += d * d * d * d
	}
	fn := float64(n)
	m2 /= fn
	m3 /= fn
	m4 /= fn
	if m2 == 0 {
		return JarqueBeraResult{}, fmt.Errorf("%w: zero-variance residuals", ErrTooFewResiduals)
	}
	skew := m3 / math.Pow(m2, 1.5)
	kurt := m4 / (m2 * m2)
	jb := fn / 6 * (skew*skew + (kurt-3)*(kurt-3)/4)
	p, err := ChiSquareSF(jb, 2)
	if err != nil {
		return JarqueBeraResult{}, err
	}
	return JarqueBeraResult{Statistic: jb, PValue: p, Skewness: skew, Kurtosis: kurt}, nil
}

// DurbinWatson returns the Durbin–Watson statistic for lag-1 serial
// correlation: values near 2 indicate none, toward 0 positive
// correlation, toward 4 negative correlation.
func DurbinWatson(residuals []float64) (float64, error) {
	n := len(residuals)
	if n < 3 {
		return math.NaN(), fmt.Errorf("%w: %d residuals", ErrTooFewResiduals, n)
	}
	var num, den float64
	for i := 0; i < n; i++ {
		den += residuals[i] * residuals[i]
		if i > 0 {
			d := residuals[i] - residuals[i-1]
			num += d * d
		}
	}
	if den == 0 {
		return math.NaN(), fmt.Errorf("%w: zero-variance residuals", ErrTooFewResiduals)
	}
	return num / den, nil
}
