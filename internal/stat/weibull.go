package stat

import "math"

// Weibull is the two-parameter Weibull distribution with shape k > 0 and
// scale λ > 0, whose CDF F(t) = 1 - e^{-(t/λ)^k} is Eq. (23) in the paper.
// Setting k = 1 recovers the exponential distribution.
type Weibull struct {
	shape float64
	scale float64
}

var _ Distribution = Weibull{}

// NewWeibull returns a Weibull distribution with the given shape k and
// scale λ.
func NewWeibull(shape, scale float64) (Weibull, error) {
	if !(shape > 0) || math.IsInf(shape, 0) {
		return Weibull{}, badParam("weibull", "shape", shape)
	}
	if !(scale > 0) || math.IsInf(scale, 0) {
		return Weibull{}, badParam("weibull", "scale", scale)
	}
	return Weibull{shape: shape, scale: scale}, nil
}

// Shape returns the shape parameter k.
func (w Weibull) Shape() float64 { return w.shape }

// Scale returns the scale parameter λ.
func (w Weibull) Scale() float64 { return w.scale }

// CDF returns 1 - e^{-(x/λ)^k} for x >= 0 and 0 otherwise.
func (w Weibull) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return -math.Expm1(-math.Pow(x/w.scale, w.shape))
}

// PDF returns the Weibull density at x.
func (w Weibull) PDF(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x == 0 {
		switch {
		case w.shape < 1:
			return math.Inf(1)
		case w.shape == 1:
			return 1 / w.scale
		default:
			return 0
		}
	}
	z := x / w.scale
	return w.shape / w.scale * math.Pow(z, w.shape-1) * math.Exp(-math.Pow(z, w.shape))
}

// Quantile returns λ(-ln(1-p))^{1/k}. Out-of-range p yields NaN.
func (w Weibull) Quantile(p float64) float64 {
	if p < 0 || p > 1 || math.IsNaN(p) {
		return math.NaN()
	}
	if p == 1 {
		return math.Inf(1)
	}
	return w.scale * math.Pow(-math.Log1p(-p), 1/w.shape)
}

// Mean returns λΓ(1 + 1/k).
func (w Weibull) Mean() float64 {
	return w.scale * math.Gamma(1+1/w.shape)
}

// Variance returns λ²[Γ(1+2/k) - Γ(1+1/k)²].
func (w Weibull) Variance() float64 {
	g1 := math.Gamma(1 + 1/w.shape)
	g2 := math.Gamma(1 + 2/w.shape)
	return w.scale * w.scale * (g2 - g1*g1)
}

// NumParams returns 2.
func (w Weibull) NumParams() int { return 2 }

// Name returns "weibull".
func (w Weibull) Name() string { return "weibull" }
