package stat

import (
	"errors"
	"fmt"
	"math"
)

// DMResult is the outcome of a Diebold–Mariano test of equal predictive
// accuracy between two forecast-error series.
type DMResult struct {
	// Statistic is the DM test statistic, asymptotically standard normal
	// under the null of equal accuracy. Negative values favor the first
	// forecaster (smaller losses).
	Statistic float64
	// PValue is the two-sided p-value.
	PValue float64
	// MeanLossDiff is the average loss differential d̄ = mean(L₁ − L₂).
	MeanLossDiff float64
}

// ErrDegenerate is returned when the loss differential has no variance
// (identical forecasts), making the test undefined.
var ErrDegenerate = errors.New("stat: degenerate loss differential")

// DieboldMariano tests whether two forecasters differ in predictive
// accuracy given their pointwise errors on the same targets, using
// squared-error loss and a Newey–West (Bartlett kernel) long-run
// variance with the given lag truncation h−1 (pass horizon = 1 for
// one-step forecasts).
//
// It quantifies claims like "the competing-risks model predicts better
// than the quadratic" (Table I): a small p-value means the PMSE gap is
// larger than the forecast-error autocorrelation can explain.
func DieboldMariano(errs1, errs2 []float64, horizon int) (DMResult, error) {
	n := len(errs1)
	if n != len(errs2) {
		return DMResult{}, fmt.Errorf("stat: error series lengths differ: %d vs %d", n, len(errs2))
	}
	if n < 3 {
		return DMResult{}, fmt.Errorf("stat: need at least 3 forecast errors, got %d", n)
	}
	if horizon < 1 {
		horizon = 1
	}

	// Loss differential under squared-error loss.
	d := make([]float64, n)
	var dBar float64
	for i := range d {
		d[i] = errs1[i]*errs1[i] - errs2[i]*errs2[i]
		dBar += d[i]
	}
	dBar /= float64(n)

	// Newey–West long-run variance of d̄ with Bartlett weights.
	maxLag := horizon - 1
	if maxLag > n-2 {
		maxLag = n - 2
	}
	gamma := func(lag int) float64 {
		var s float64
		for i := lag; i < n; i++ {
			s += (d[i] - dBar) * (d[i-lag] - dBar)
		}
		return s / float64(n)
	}
	lrv := gamma(0)
	for lag := 1; lag <= maxLag; lag++ {
		w := 1 - float64(lag)/float64(maxLag+1)
		lrv += 2 * w * gamma(lag)
	}
	if lrv <= 0 || math.IsNaN(lrv) {
		return DMResult{}, ErrDegenerate
	}

	stat := dBar / math.Sqrt(lrv/float64(n))
	p := 2 * StdNormal().CDF(-math.Abs(stat))
	return DMResult{Statistic: stat, PValue: p, MeanLossDiff: dBar}, nil
}
