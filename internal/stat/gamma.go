package stat

import (
	"math"

	"resilience/internal/numeric"
)

// Gamma is the gamma distribution with shape k > 0 and rate β > 0, offered
// as an additional mixture component beyond the paper's Exponential and
// Weibull choices (Sec. VI calls for exploring alternative distributions).
type Gamma struct {
	shape float64
	rate  float64
}

var _ Distribution = Gamma{}

// NewGamma returns a gamma distribution with the given shape and rate.
func NewGamma(shape, rate float64) (Gamma, error) {
	if !(shape > 0) || math.IsInf(shape, 0) {
		return Gamma{}, badParam("gamma", "shape", shape)
	}
	if !(rate > 0) || math.IsInf(rate, 0) {
		return Gamma{}, badParam("gamma", "rate", rate)
	}
	return Gamma{shape: shape, rate: rate}, nil
}

// Shape returns the shape parameter k.
func (g Gamma) Shape() float64 { return g.shape }

// Rate returns the rate parameter β.
func (g Gamma) Rate() float64 { return g.rate }

// CDF returns the regularized lower incomplete gamma P(k, βx).
func (g Gamma) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	p, err := numeric.GammaRegP(g.shape, g.rate*x)
	if err != nil {
		return math.NaN()
	}
	return p
}

// PDF returns the gamma density at x.
func (g Gamma) PDF(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x == 0 {
		switch {
		case g.shape < 1:
			return math.Inf(1)
		case g.shape == 1:
			return g.rate
		default:
			return 0
		}
	}
	lg, _ := math.Lgamma(g.shape)
	return math.Exp(g.shape*math.Log(g.rate) + (g.shape-1)*math.Log(x) - g.rate*x - lg)
}

// Quantile inverts the CDF numerically with Brent's method. Out-of-range p
// yields NaN.
func (g Gamma) Quantile(p float64) float64 {
	if p < 0 || p > 1 || math.IsNaN(p) {
		return math.NaN()
	}
	switch p {
	case 0:
		return 0
	case 1:
		return math.Inf(1)
	}
	f := func(x float64) float64 { return g.CDF(x) - p }
	// Bracket around the mean; expand until the CDF straddles p.
	hi := g.Mean() + 1
	for f(hi) < 0 {
		hi *= 2
		if math.IsInf(hi, 1) {
			return math.NaN()
		}
	}
	root, err := numeric.BrentRoot(f, 0, hi, 1e-12)
	if err != nil {
		return math.NaN()
	}
	return root
}

// Mean returns k/β.
func (g Gamma) Mean() float64 { return g.shape / g.rate }

// Variance returns k/β².
func (g Gamma) Variance() float64 { return g.shape / (g.rate * g.rate) }

// NumParams returns 2.
func (g Gamma) NumParams() int { return 2 }

// Name returns "gamma".
func (g Gamma) Name() string { return "gamma" }
