package stat

import (
	"errors"
	"math"
	"testing"
)

func TestDieboldMarianoDetectsClearWinner(t *testing.T) {
	// Forecaster 1 has tiny errors, forecaster 2 large alternating ones.
	n := 40
	e1 := make([]float64, n)
	e2 := make([]float64, n)
	for i := range e1 {
		e1[i] = 0.01 * math.Sin(float64(i))
		e2[i] = 0.5 + 0.1*math.Cos(float64(i))
	}
	res, err := DieboldMariano(e1, e2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Statistic >= 0 {
		t.Errorf("statistic = %g, want negative (first forecaster wins)", res.Statistic)
	}
	if res.PValue > 0.01 {
		t.Errorf("p-value = %g, want significant", res.PValue)
	}
	if res.MeanLossDiff >= 0 {
		t.Errorf("mean loss diff = %g", res.MeanLossDiff)
	}
	// Swapping the forecasters flips the sign.
	swapped, err := DieboldMariano(e2, e1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(swapped.Statistic+res.Statistic) > 1e-12 {
		t.Errorf("swap asymmetry: %g vs %g", swapped.Statistic, res.Statistic)
	}
}

func TestDieboldMarianoEquivalentForecasters(t *testing.T) {
	// Same loss magnitudes in different order: no significant difference.
	n := 60
	e1 := make([]float64, n)
	e2 := make([]float64, n)
	for i := range e1 {
		e1[i] = 0.1 * math.Sin(float64(i)*1.7)
		e2[i] = 0.1 * math.Sin(float64(i)*1.7+math.Pi/3)
	}
	res, err := DieboldMariano(e1, e2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.PValue < 0.05 {
		t.Errorf("p-value = %g for equivalent forecasters, want insignificant", res.PValue)
	}
}

func TestDieboldMarianoMultiHorizon(t *testing.T) {
	// With autocorrelated loss differentials, the h>1 variant widens the
	// variance; the statistic should shrink in magnitude.
	n := 50
	e1 := make([]float64, n)
	e2 := make([]float64, n)
	for i := range e1 {
		base := math.Sin(float64(i) / 6) // slow-moving differential
		e1[i] = 0.1 * base
		e2[i] = 0.3 * base
	}
	h1, err := DieboldMariano(e1, e2, 1)
	if err != nil {
		t.Fatal(err)
	}
	h4, err := DieboldMariano(e1, e2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(h4.Statistic) >= math.Abs(h1.Statistic) {
		t.Errorf("h=4 statistic %g should shrink vs h=1 %g under positive autocorrelation",
			h4.Statistic, h1.Statistic)
	}
}

func TestDieboldMarianoValidation(t *testing.T) {
	if _, err := DieboldMariano([]float64{1, 2}, []float64{1}, 1); err == nil {
		t.Error("length mismatch: want error")
	}
	if _, err := DieboldMariano([]float64{1, 2}, []float64{1, 2}, 1); err == nil {
		t.Error("too short: want error")
	}
	same := []float64{0.1, 0.2, 0.3, 0.1}
	if _, err := DieboldMariano(same, same, 1); !errors.Is(err, ErrDegenerate) {
		t.Errorf("identical forecasts: %v", err)
	}
}
