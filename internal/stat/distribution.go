// Package stat provides the probability distributions and descriptive
// statistics the resilience models are built from: Exponential and Weibull
// (the paper's mixture components, Eq. 23), plus Gamma, LogNormal, Normal,
// and Uniform for extensions, along with empirical CDFs and the normal
// critical values used for confidence intervals (Eq. 13).
package stat

import (
	"errors"
	"fmt"
)

// Distribution is a continuous univariate probability distribution. All of
// the paper's mixture components satisfy this interface, so mixture models
// accept any Distribution for their degradation and recovery processes.
type Distribution interface {
	// CDF returns P(X <= x).
	CDF(x float64) float64
	// PDF returns the probability density at x.
	PDF(x float64) float64
	// Quantile returns the smallest x with CDF(x) >= p for p in [0, 1].
	Quantile(p float64) float64
	// Mean returns the distribution mean.
	Mean() float64
	// Variance returns the distribution variance.
	Variance() float64
	// NumParams returns the number of free parameters, used by model
	// complexity penalties (adjusted R², AIC, BIC).
	NumParams() int
	// Name returns a short identifier such as "exp" or "weibull".
	Name() string
}

// ErrBadParam is the sentinel wrapped by all distribution constructors
// when a parameter is out of range.
var ErrBadParam = errors.New("stat: invalid distribution parameter")

// ErrBadProbability is returned by Quantile implementations when p lies
// outside [0, 1].
var ErrBadProbability = errors.New("stat: probability outside [0, 1]")

func badParam(dist, param string, value float64) error {
	return fmt.Errorf("%w: %s %s = %g", ErrBadParam, dist, param, value)
}
