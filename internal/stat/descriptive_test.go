package stat

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestMeanVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	m, err := Mean(xs)
	if err != nil || m != 5 {
		t.Fatalf("Mean = %g, %v; want 5", m, err)
	}
	v, err := Variance(xs)
	if err != nil || math.Abs(v-32.0/7) > 1e-12 {
		t.Fatalf("Variance = %g, %v; want %g", v, err, 32.0/7)
	}
	s, err := StdDev(xs)
	if err != nil || math.Abs(s-math.Sqrt(32.0/7)) > 1e-12 {
		t.Fatalf("StdDev = %g, %v", s, err)
	}
}

func TestDescriptiveErrors(t *testing.T) {
	if _, err := Mean(nil); !errors.Is(err, ErrEmpty) {
		t.Errorf("Mean(nil): %v", err)
	}
	if _, err := Variance([]float64{1}); !errors.Is(err, ErrTooFew) {
		t.Errorf("Variance(1 elem): %v", err)
	}
	if _, err := Quantile(nil, 0.5); !errors.Is(err, ErrEmpty) {
		t.Errorf("Quantile(nil): %v", err)
	}
	if _, err := Quantile([]float64{1, 2}, 1.5); !errors.Is(err, ErrBadProbability) {
		t.Errorf("Quantile(p>1): %v", err)
	}
	if _, _, err := MinMax(nil); !errors.Is(err, ErrEmpty) {
		t.Errorf("MinMax(nil): %v", err)
	}
	if _, err := NewECDF(nil); !errors.Is(err, ErrEmpty) {
		t.Errorf("NewECDF(nil): %v", err)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	tests := []struct {
		p, want float64
	}{
		{0, 15},
		{1, 50},
		{0.5, 35},
		{0.25, 20},
		{0.75, 40},
		{0.1, 17}, // interpolated: 15 + 0.4*(20-15)
	}
	for _, tt := range tests {
		got, err := Quantile(xs, tt.p)
		if err != nil {
			t.Fatalf("Quantile(%g): %v", tt.p, err)
		}
		if math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("Quantile(%g) = %g, want %g", tt.p, got, tt.want)
		}
	}
	if got, _ := Quantile([]float64{7}, 0.3); got != 7 {
		t.Errorf("single-element quantile = %g", got)
	}
	if got, _ := Median([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("Median = %g, want 2.5", got)
	}
}

func TestQuantileDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	if _, err := Quantile(xs, 0.5); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("input mutated: %v", xs)
	}
}

func TestMinMax(t *testing.T) {
	min, max, err := MinMax([]float64{3, -1, 4, 1, 5, -9})
	if err != nil || min != -9 || max != 5 {
		t.Errorf("MinMax = %g, %g, %v", min, max, err)
	}
}

func TestSumSquares(t *testing.T) {
	xs := []float64{1, 2, 3}
	if got := SumSquares(xs, 2); got != 2 {
		t.Errorf("SumSquares = %g, want 2", got)
	}
	if got := SumSquares(nil, 0); got != 0 {
		t.Errorf("SumSquares(nil) = %g", got)
	}
}

func TestECDF(t *testing.T) {
	e, err := NewECDF([]float64{1, 2, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		x, want float64
	}{
		{0.5, 0},
		{1, 0.25},
		{2, 0.75},
		{2.5, 0.75},
		{3, 1},
		{10, 1},
	}
	for _, tt := range tests {
		if got := e.At(tt.x); got != tt.want {
			t.Errorf("ECDF(%g) = %g, want %g", tt.x, got, tt.want)
		}
	}
	if e.Len() != 4 {
		t.Errorf("Len = %d", e.Len())
	}
}

func TestECDFProperty(t *testing.T) {
	// Property: ECDF is a nondecreasing step function in [0,1].
	f := func(vals []float64) bool {
		if len(vals) == 0 {
			return true
		}
		for _, v := range vals {
			if math.IsNaN(v) {
				return true // skip NaN inputs
			}
		}
		e, err := NewECDF(vals)
		if err != nil {
			return false
		}
		prev := 0.0
		for x := -100.0; x <= 100; x += 7 {
			c := e.At(x)
			if c < prev || c < 0 || c > 1 {
				return false
			}
			prev = c
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestKolmogorovSmirnov(t *testing.T) {
	// Sample drawn exactly at uniform quantiles has a small KS distance to
	// Uniform(0,1); a shifted distribution has a big one.
	var sample []float64
	for i := 1; i <= 100; i++ {
		sample = append(sample, float64(i)/101)
	}
	e, err := NewECDF(sample)
	if err != nil {
		t.Fatal(err)
	}
	uni, _ := NewUniform(0, 1)
	if d := KolmogorovSmirnov(e, uni); d > 0.02 {
		t.Errorf("KS to matching uniform = %g, want small", d)
	}
	far, _ := NewUniform(10, 11)
	if d := KolmogorovSmirnov(e, far); d < 0.99 {
		t.Errorf("KS to distant uniform = %g, want ~1", d)
	}
}
