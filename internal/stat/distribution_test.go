package stat

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func mustExp(t *testing.T, rate float64) Exponential {
	t.Helper()
	d, err := NewExponential(rate)
	if err != nil {
		t.Fatalf("NewExponential(%g): %v", rate, err)
	}
	return d
}

func mustWeibull(t *testing.T, shape, scale float64) Weibull {
	t.Helper()
	d, err := NewWeibull(shape, scale)
	if err != nil {
		t.Fatalf("NewWeibull(%g, %g): %v", shape, scale, err)
	}
	return d
}

// allDistributions returns a representative of each distribution for
// shared-invariant tests.
func allDistributions(t *testing.T) []Distribution {
	t.Helper()
	exp := mustExp(t, 1.5)
	wei := mustWeibull(t, 2.5, 3)
	gam, err := NewGamma(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	lgn, err := NewLogNormal(0.5, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	nrm, err := NewNormal(2, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	uni, err := NewUniform(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	return []Distribution{exp, wei, gam, lgn, nrm, uni}
}

func TestConstructorsRejectBadParams(t *testing.T) {
	cases := []struct {
		name string
		err  func() error
	}{
		{"exp zero rate", func() error { _, err := NewExponential(0); return err }},
		{"exp negative rate", func() error { _, err := NewExponential(-1); return err }},
		{"exp NaN rate", func() error { _, err := NewExponential(math.NaN()); return err }},
		{"weibull zero shape", func() error { _, err := NewWeibull(0, 1); return err }},
		{"weibull negative scale", func() error { _, err := NewWeibull(1, -1); return err }},
		{"gamma zero shape", func() error { _, err := NewGamma(0, 1); return err }},
		{"gamma inf rate", func() error { _, err := NewGamma(1, math.Inf(1)); return err }},
		{"lognormal NaN mu", func() error { _, err := NewLogNormal(math.NaN(), 1); return err }},
		{"lognormal zero sigma", func() error { _, err := NewLogNormal(0, 0); return err }},
		{"normal zero sigma", func() error { _, err := NewNormal(0, 0); return err }},
		{"normal inf mu", func() error { _, err := NewNormal(math.Inf(1), 1); return err }},
		{"uniform a==b", func() error { _, err := NewUniform(2, 2); return err }},
		{"uniform a>b", func() error { _, err := NewUniform(3, 2); return err }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.err(); !errors.Is(err, ErrBadParam) {
				t.Errorf("want ErrBadParam, got %v", err)
			}
		})
	}
}

func TestCDFBoundsAndMonotonicity(t *testing.T) {
	for _, d := range allDistributions(t) {
		prev := -1.0
		for x := -5.0; x <= 50; x += 0.25 {
			c := d.CDF(x)
			if c < 0 || c > 1 || math.IsNaN(c) {
				t.Fatalf("%s: CDF(%g) = %g outside [0,1]", d.Name(), x, c)
			}
			if c < prev-1e-12 {
				t.Fatalf("%s: CDF decreasing at %g: %g < %g", d.Name(), x, c, prev)
			}
			prev = c
		}
	}
}

func TestPDFNonNegative(t *testing.T) {
	for _, d := range allDistributions(t) {
		for x := -3.0; x <= 30; x += 0.17 {
			if p := d.PDF(x); p < 0 || math.IsNaN(p) {
				t.Fatalf("%s: PDF(%g) = %g negative or NaN", d.Name(), x, p)
			}
		}
	}
}

func TestQuantileInvertsCDF(t *testing.T) {
	for _, d := range allDistributions(t) {
		for _, p := range []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99} {
			x := d.Quantile(p)
			if got := d.CDF(x); math.Abs(got-p) > 1e-8 {
				t.Errorf("%s: CDF(Quantile(%g)) = %g", d.Name(), p, got)
			}
		}
		if !math.IsNaN(d.Quantile(-0.1)) || !math.IsNaN(d.Quantile(1.1)) {
			t.Errorf("%s: out-of-range quantile should be NaN", d.Name())
		}
	}
}

func TestPDFIsDerivativeOfCDF(t *testing.T) {
	// Property check via central differences at interior points.
	for _, d := range allDistributions(t) {
		for _, p := range []float64{0.2, 0.5, 0.8} {
			x := d.Quantile(p)
			const h = 1e-5
			numeric := (d.CDF(x+h) - d.CDF(x-h)) / (2 * h)
			if math.Abs(numeric-d.PDF(x)) > 1e-4*(1+d.PDF(x)) {
				t.Errorf("%s at x=%g: dCDF=%g, PDF=%g", d.Name(), x, numeric, d.PDF(x))
			}
		}
	}
}

func TestMomentsAgainstKnownValues(t *testing.T) {
	exp := mustExp(t, 2)
	if exp.Mean() != 0.5 || exp.Variance() != 0.25 {
		t.Errorf("Exponential(2) moments: mean=%g var=%g", exp.Mean(), exp.Variance())
	}
	wei := mustWeibull(t, 1, 3) // shape 1 == Exponential(rate 1/3)
	if math.Abs(wei.Mean()-3) > 1e-12 || math.Abs(wei.Variance()-9) > 1e-9 {
		t.Errorf("Weibull(1,3) moments: mean=%g var=%g", wei.Mean(), wei.Variance())
	}
	gam, _ := NewGamma(3, 2)
	if gam.Mean() != 1.5 || gam.Variance() != 0.75 {
		t.Errorf("Gamma(3,2) moments: mean=%g var=%g", gam.Mean(), gam.Variance())
	}
	uni, _ := NewUniform(0, 12)
	if uni.Mean() != 6 || uni.Variance() != 12 {
		t.Errorf("Uniform(0,12) moments: mean=%g var=%g", uni.Mean(), uni.Variance())
	}
	nrm, _ := NewNormal(-1, 3)
	if nrm.Mean() != -1 || nrm.Variance() != 9 {
		t.Errorf("Normal(-1,3) moments: mean=%g var=%g", nrm.Mean(), nrm.Variance())
	}
	lgn, _ := NewLogNormal(0, 1)
	if math.Abs(lgn.Mean()-math.Exp(0.5)) > 1e-12 {
		t.Errorf("LogNormal(0,1) mean = %g", lgn.Mean())
	}
}

func TestWeibullShapeOneMatchesExponential(t *testing.T) {
	// Weibull(k=1, λ) must coincide with Exponential(rate=1/λ) everywhere.
	f := func(scaleSeed, xSeed uint32) bool {
		scale := 0.1 + float64(scaleSeed%1000)/100
		x := float64(xSeed%5000) / 100
		w, err1 := NewWeibull(1, scale)
		e, err2 := NewExponential(1 / scale)
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(w.CDF(x)-e.CDF(x)) < 1e-12 &&
			math.Abs(w.PDF(x)-e.PDF(x)) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGammaShapeOneMatchesExponential(t *testing.T) {
	g, _ := NewGamma(1, 2)
	e := mustExp(t, 2)
	for x := 0.0; x < 10; x += 0.37 {
		if math.Abs(g.CDF(x)-e.CDF(x)) > 1e-10 {
			t.Fatalf("Gamma(1,2) vs Exp(2) CDF at %g: %g vs %g", x, g.CDF(x), e.CDF(x))
		}
	}
}

func TestZCritical(t *testing.T) {
	// Published table values.
	cases := []struct {
		alpha, want float64
	}{
		{0.05, 1.959963984540054},
		{0.01, 2.5758293035489004},
		{0.10, 1.6448536269514722},
	}
	for _, tc := range cases {
		if got := ZCritical(tc.alpha); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("ZCritical(%g) = %.12g, want %.12g", tc.alpha, got, tc.want)
		}
	}
	if !math.IsNaN(ZCritical(0)) || !math.IsNaN(ZCritical(1)) {
		t.Error("ZCritical outside (0,1) should be NaN")
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	exp := mustExp(t, 1)
	if exp.Quantile(0) != 0 {
		t.Errorf("Exp.Quantile(0) = %g", exp.Quantile(0))
	}
	if !math.IsInf(exp.Quantile(1), 1) {
		t.Errorf("Exp.Quantile(1) = %g", exp.Quantile(1))
	}
	n := StdNormal()
	if !math.IsInf(n.Quantile(0), -1) || !math.IsInf(n.Quantile(1), 1) {
		t.Error("Normal quantile at 0/1 should be ∓Inf")
	}
}

func TestAccessors(t *testing.T) {
	if e := mustExp(t, 2.5); e.Rate() != 2.5 || e.NumParams() != 1 || e.Name() != "exp" {
		t.Error("Exponential accessors")
	}
	if w := mustWeibull(t, 2, 3); w.Shape() != 2 || w.Scale() != 3 || w.NumParams() != 2 {
		t.Error("Weibull accessors")
	}
	g, _ := NewGamma(2, 3)
	if g.Shape() != 2 || g.Rate() != 3 {
		t.Error("Gamma accessors")
	}
	l, _ := NewLogNormal(1, 2)
	if l.Mu() != 1 || l.Sigma() != 2 {
		t.Error("LogNormal accessors")
	}
	n, _ := NewNormal(1, 2)
	if n.Mu() != 1 || n.Sigma() != 2 {
		t.Error("Normal accessors")
	}
	u, _ := NewUniform(1, 2)
	if a, b := u.Bounds(); a != 1 || b != 2 {
		t.Error("Uniform accessors")
	}
}
