package stat

import "math"

// Normal is the Gaussian distribution with mean μ and standard deviation
// σ > 0. It supplies the critical values z_{1-α/2} used by the paper's
// confidence intervals (Eq. 13).
type Normal struct {
	mu    float64
	sigma float64
}

var _ Distribution = Normal{}

// NewNormal returns a normal distribution with mean mu and standard
// deviation sigma.
func NewNormal(mu, sigma float64) (Normal, error) {
	if math.IsNaN(mu) || math.IsInf(mu, 0) {
		return Normal{}, badParam("normal", "mu", mu)
	}
	if !(sigma > 0) || math.IsInf(sigma, 0) {
		return Normal{}, badParam("normal", "sigma", sigma)
	}
	return Normal{mu: mu, sigma: sigma}, nil
}

// StdNormal is the standard normal distribution N(0, 1).
func StdNormal() Normal { return Normal{mu: 0, sigma: 1} }

// Mu returns the mean parameter μ.
func (n Normal) Mu() float64 { return n.mu }

// Sigma returns the standard deviation parameter σ.
func (n Normal) Sigma() float64 { return n.sigma }

// CDF returns Φ((x-μ)/σ).
func (n Normal) CDF(x float64) float64 {
	return math.Erfc(-(x-n.mu)/(n.sigma*math.Sqrt2)) / 2
}

// PDF returns the Gaussian density at x.
func (n Normal) PDF(x float64) float64 {
	z := (x - n.mu) / n.sigma
	return math.Exp(-z*z/2) / (n.sigma * math.Sqrt(2*math.Pi))
}

// Quantile returns μ + σ√2·erf⁻¹(2p-1). Out-of-range p yields NaN.
func (n Normal) Quantile(p float64) float64 {
	if p < 0 || p > 1 || math.IsNaN(p) {
		return math.NaN()
	}
	switch p {
	case 0:
		return math.Inf(-1)
	case 1:
		return math.Inf(1)
	}
	return n.mu + n.sigma*math.Sqrt2*math.Erfinv(2*p-1)
}

// Mean returns μ.
func (n Normal) Mean() float64 { return n.mu }

// Variance returns σ².
func (n Normal) Variance() float64 { return n.sigma * n.sigma }

// NumParams returns 2.
func (n Normal) NumParams() int { return 2 }

// Name returns "normal".
func (n Normal) Name() string { return "normal" }

// ZCritical returns the two-sided standard-normal critical value
// z_{1-α/2} for significance level alpha in (0, 1), e.g. alpha = 0.05
// yields ≈ 1.95996.
func ZCritical(alpha float64) float64 {
	if !(alpha > 0 && alpha < 1) {
		return math.NaN()
	}
	return StdNormal().Quantile(1 - alpha/2)
}
