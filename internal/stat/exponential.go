package stat

import "math"

// Exponential is the exponential distribution with rate parameter λ > 0.
// Its CDF is F(t) = 1 - e^{-λt}, the k = 1 special case of the Weibull
// distribution in Eq. (23) of the paper.
type Exponential struct {
	rate float64
}

var _ Distribution = Exponential{}

// NewExponential returns an exponential distribution with the given rate.
func NewExponential(rate float64) (Exponential, error) {
	if !(rate > 0) || math.IsInf(rate, 0) {
		return Exponential{}, badParam("exponential", "rate", rate)
	}
	return Exponential{rate: rate}, nil
}

// Rate returns the rate parameter λ.
func (e Exponential) Rate() float64 { return e.rate }

// CDF returns 1 - e^{-λx} for x >= 0 and 0 otherwise.
func (e Exponential) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return -math.Expm1(-e.rate * x)
}

// PDF returns λe^{-λx} for x >= 0 and 0 otherwise.
func (e Exponential) PDF(x float64) float64 {
	if x < 0 {
		return 0
	}
	return e.rate * math.Exp(-e.rate*x)
}

// Quantile returns -ln(1-p)/λ. Out-of-range p yields NaN.
func (e Exponential) Quantile(p float64) float64 {
	if p < 0 || p > 1 || math.IsNaN(p) {
		return math.NaN()
	}
	if p == 1 {
		return math.Inf(1)
	}
	return -math.Log1p(-p) / e.rate
}

// Mean returns 1/λ.
func (e Exponential) Mean() float64 { return 1 / e.rate }

// Variance returns 1/λ².
func (e Exponential) Variance() float64 { return 1 / (e.rate * e.rate) }

// NumParams returns 1.
func (e Exponential) NumParams() int { return 1 }

// Name returns "exp".
func (e Exponential) Name() string { return "exp" }
