package stat

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by descriptive statistics that require at least one
// observation.
var ErrEmpty = errors.New("stat: empty sample")

// ErrTooFew is returned when a statistic needs more observations than were
// supplied (e.g. a variance needs two).
var ErrTooFew = errors.New("stat: too few observations")

// Mean returns the arithmetic mean of xs.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return math.NaN(), ErrEmpty
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs)), nil
}

// Variance returns the unbiased (n-1 denominator) sample variance of xs.
func Variance(xs []float64) (float64, error) {
	if len(xs) < 2 {
		return math.NaN(), ErrTooFew
	}
	m, err := Mean(xs)
	if err != nil {
		return math.NaN(), err
	}
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(xs)-1), nil
}

// StdDev returns the unbiased sample standard deviation of xs.
func StdDev(xs []float64) (float64, error) {
	v, err := Variance(xs)
	if err != nil {
		return math.NaN(), err
	}
	return math.Sqrt(v), nil
}

// Quantile returns the p-quantile of xs using linear interpolation between
// order statistics (type-7, the spreadsheet/NumPy default).
func Quantile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return math.NaN(), ErrEmpty
	}
	if p < 0 || p > 1 || math.IsNaN(p) {
		return math.NaN(), ErrBadProbability
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	h := p * float64(len(sorted)-1)
	lo := int(math.Floor(h))
	if lo == len(sorted)-1 {
		return sorted[lo], nil
	}
	frac := h - float64(lo)
	return sorted[lo] + frac*(sorted[lo+1]-sorted[lo]), nil
}

// Median returns the 0.5-quantile of xs.
func Median(xs []float64) (float64, error) {
	return Quantile(xs, 0.5)
}

// MinMax returns the smallest and largest elements of xs.
func MinMax(xs []float64) (min, max float64, err error) {
	if len(xs) == 0 {
		return math.NaN(), math.NaN(), ErrEmpty
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max, nil
}

// SumSquares returns Σ(xᵢ - c)² for a fixed center c. With c equal to the
// sample mean this is the SSY term of the adjusted R² (Eq. 11).
func SumSquares(xs []float64, c float64) float64 {
	var ss float64
	for _, x := range xs {
		d := x - c
		ss += d * d
	}
	return ss
}

// ECDF is the empirical cumulative distribution function of a sample.
type ECDF struct {
	sorted []float64
}

// NewECDF builds an empirical CDF from the sample xs.
func NewECDF(xs []float64) (*ECDF, error) {
	if len(xs) == 0 {
		return nil, ErrEmpty
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return &ECDF{sorted: sorted}, nil
}

// At returns the fraction of sample points <= x.
func (e *ECDF) At(x float64) float64 {
	// sort.SearchFloat64s returns the first index with sorted[i] >= x; we
	// want the count of elements <= x, so search for the first > x.
	n := sort.Search(len(e.sorted), func(i int) bool { return e.sorted[i] > x })
	return float64(n) / float64(len(e.sorted))
}

// Len returns the sample size.
func (e *ECDF) Len() int { return len(e.sorted) }

// KolmogorovSmirnov returns the KS statistic sup |ECDF(x) - F(x)| between
// the sample ECDF and a reference distribution — a quick diagnostic for
// whether fitted mixture components resemble their data.
func KolmogorovSmirnov(e *ECDF, dist Distribution) float64 {
	n := float64(len(e.sorted))
	var d float64
	for i, x := range e.sorted {
		fx := dist.CDF(x)
		upper := math.Abs(float64(i+1)/n - fx)
		lower := math.Abs(fx - float64(i)/n)
		d = math.Max(d, math.Max(upper, lower))
	}
	return d
}
