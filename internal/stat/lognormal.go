package stat

import "math"

// LogNormal is the log-normal distribution: ln X ~ N(μ, σ²). Like Gamma,
// it extends the paper's mixture-component menu.
type LogNormal struct {
	mu    float64
	sigma float64
}

var _ Distribution = LogNormal{}

// NewLogNormal returns a log-normal distribution with log-mean mu and
// log-standard-deviation sigma.
func NewLogNormal(mu, sigma float64) (LogNormal, error) {
	if math.IsNaN(mu) || math.IsInf(mu, 0) {
		return LogNormal{}, badParam("lognormal", "mu", mu)
	}
	if !(sigma > 0) || math.IsInf(sigma, 0) {
		return LogNormal{}, badParam("lognormal", "sigma", sigma)
	}
	return LogNormal{mu: mu, sigma: sigma}, nil
}

// Mu returns the log-mean parameter μ.
func (l LogNormal) Mu() float64 { return l.mu }

// Sigma returns the log-standard-deviation parameter σ.
func (l LogNormal) Sigma() float64 { return l.sigma }

// CDF returns Φ((ln x - μ)/σ) for x > 0 and 0 otherwise.
func (l LogNormal) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Erfc(-(math.Log(x)-l.mu)/(l.sigma*math.Sqrt2)) / 2
}

// PDF returns the log-normal density at x.
func (l LogNormal) PDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	z := (math.Log(x) - l.mu) / l.sigma
	return math.Exp(-z*z/2) / (x * l.sigma * math.Sqrt(2*math.Pi))
}

// Quantile returns exp(μ + σ√2·erf⁻¹(2p-1)). Out-of-range p yields NaN.
func (l LogNormal) Quantile(p float64) float64 {
	if p < 0 || p > 1 || math.IsNaN(p) {
		return math.NaN()
	}
	switch p {
	case 0:
		return 0
	case 1:
		return math.Inf(1)
	}
	return math.Exp(l.mu + l.sigma*math.Sqrt2*math.Erfinv(2*p-1))
}

// Mean returns exp(μ + σ²/2).
func (l LogNormal) Mean() float64 {
	return math.Exp(l.mu + l.sigma*l.sigma/2)
}

// Variance returns (e^{σ²} - 1)·e^{2μ+σ²}.
func (l LogNormal) Variance() float64 {
	s2 := l.sigma * l.sigma
	return math.Expm1(s2) * math.Exp(2*l.mu+s2)
}

// NumParams returns 2.
func (l LogNormal) NumParams() int { return 2 }

// Name returns "lognormal".
func (l LogNormal) Name() string { return "lognormal" }
