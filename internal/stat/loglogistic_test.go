package stat

import (
	"errors"
	"math"
	"testing"
)

func TestLogLogisticBasics(t *testing.T) {
	l, err := NewLogLogistic(3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if l.Shape() != 3 || l.Scale() != 5 || l.NumParams() != 2 || l.Name() != "loglogistic" {
		t.Error("accessors")
	}
	// CDF at the scale parameter is exactly 0.5.
	if got := l.CDF(5); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("CDF(scale) = %g, want 0.5", got)
	}
	if l.CDF(0) != 0 || l.CDF(-1) != 0 {
		t.Error("CDF at/below 0")
	}
	// Hand check: F(10) = (10/5)³/(1+(10/5)³) = 8/9.
	if got := l.CDF(10); math.Abs(got-8.0/9) > 1e-12 {
		t.Errorf("CDF(10) = %g, want 8/9", got)
	}
}

func TestLogLogisticInvalidParams(t *testing.T) {
	for _, bad := range [][2]float64{{0, 1}, {-1, 1}, {1, 0}, {1, -1}, {math.Inf(1), 1}} {
		if _, err := NewLogLogistic(bad[0], bad[1]); !errors.Is(err, ErrBadParam) {
			t.Errorf("NewLogLogistic(%v): %v", bad, err)
		}
	}
}

func TestLogLogisticQuantileInvertsCDF(t *testing.T) {
	l, err := NewLogLogistic(2.5, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []float64{0.05, 0.25, 0.5, 0.75, 0.95} {
		x := l.Quantile(p)
		if got := l.CDF(x); math.Abs(got-p) > 1e-10 {
			t.Errorf("CDF(Quantile(%g)) = %g", p, got)
		}
	}
	if !math.IsNaN(l.Quantile(-0.1)) || !math.IsNaN(l.Quantile(1.1)) {
		t.Error("out-of-range quantiles")
	}
	if l.Quantile(0) != 0 || !math.IsInf(l.Quantile(1), 1) {
		t.Error("boundary quantiles")
	}
}

func TestLogLogisticPDFIsDerivative(t *testing.T) {
	l, err := NewLogLogistic(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{0.5, 1, 3, 8} {
		const h = 1e-6
		numeric := (l.CDF(x+h) - l.CDF(x-h)) / (2 * h)
		if math.Abs(numeric-l.PDF(x)) > 1e-5 {
			t.Errorf("PDF(%g) = %g, dCDF = %g", x, l.PDF(x), numeric)
		}
	}
}

func TestLogLogisticMoments(t *testing.T) {
	// β <= 1: infinite mean; β <= 2: infinite variance.
	heavy, err := NewLogLogistic(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(heavy.Mean(), 1) || !math.IsInf(heavy.Variance(), 1) {
		t.Error("heavy tail should have infinite moments")
	}
	l, err := NewLogLogistic(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Sanity: finite mean matches numeric integration of the survival
	// function.
	var sum float64
	const steps = 200000
	cutoff := l.Quantile(1 - 1e-10)
	h := cutoff / steps
	for i := 0; i < steps; i++ {
		x := (float64(i) + 0.5) * h
		sum += 1 - l.CDF(x)
	}
	sum *= h
	if math.Abs(sum-l.Mean()) > 1e-3*l.Mean() {
		t.Errorf("Mean = %g, numeric %g", l.Mean(), sum)
	}
	if v := l.Variance(); v <= 0 || math.IsInf(v, 0) {
		t.Errorf("Variance = %g", v)
	}
}

func TestGompertzBasics(t *testing.T) {
	g, err := NewGompertz(0.5, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if g.Shape() != 0.5 || g.Rate() != 0.2 || g.NumParams() != 2 || g.Name() != "gompertz" {
		t.Error("accessors")
	}
	if g.CDF(0) != 0 || g.CDF(-1) != 0 {
		t.Error("CDF at/below 0")
	}
	// Hand check: F(5) = 1 − exp(−0.5(e^{1} − 1)).
	want := 1 - math.Exp(-0.5*(math.E-1))
	if got := g.CDF(5); math.Abs(got-want) > 1e-12 {
		t.Errorf("CDF(5) = %g, want %g", got, want)
	}
}

func TestGompertzInvalidParams(t *testing.T) {
	for _, bad := range [][2]float64{{0, 1}, {1, 0}, {-1, 1}, {1, math.Inf(1)}} {
		if _, err := NewGompertz(bad[0], bad[1]); !errors.Is(err, ErrBadParam) {
			t.Errorf("NewGompertz(%v): %v", bad, err)
		}
	}
}

func TestGompertzQuantileInvertsCDF(t *testing.T) {
	g, err := NewGompertz(0.3, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []float64{0.1, 0.5, 0.9, 0.99} {
		x := g.Quantile(p)
		if got := g.CDF(x); math.Abs(got-p) > 1e-10 {
			t.Errorf("CDF(Quantile(%g)) = %g", p, got)
		}
	}
}

func TestGompertzPDFIntegratesToOne(t *testing.T) {
	g, err := NewGompertz(0.4, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	cutoff := g.Quantile(1 - 1e-12)
	const steps = 100000
	h := cutoff / steps
	var sum float64
	for i := 0; i < steps; i++ {
		sum += g.PDF((float64(i) + 0.5) * h)
	}
	sum *= h
	if math.Abs(sum-1) > 1e-6 {
		t.Errorf("∫PDF = %g", sum)
	}
}

func TestGompertzMomentsFinite(t *testing.T) {
	g, err := NewGompertz(0.5, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	mean := g.Mean()
	if mean <= 0 || math.IsInf(mean, 0) || math.IsNaN(mean) {
		t.Errorf("Mean = %g", mean)
	}
	// Cross-check against the median: for this parameterization the mean
	// is near the median (mild skew).
	median := g.Quantile(0.5)
	if math.Abs(mean-median) > median {
		t.Errorf("mean %g implausibly far from median %g", mean, median)
	}
	if v := g.Variance(); v <= 0 || math.IsInf(v, 0) {
		t.Errorf("Variance = %g", v)
	}
}
