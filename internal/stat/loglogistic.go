package stat

import "math"

// LogLogistic is the log-logistic distribution with shape β > 0 and
// scale α > 0: F(t) = 1 / (1 + (t/α)^{−β}). Its hazard is unimodal for
// β > 1, a shape neither the exponential nor the Weibull offers, making
// it a useful extra mixture component for recovery processes that start
// slowly, accelerate, and then taper.
type LogLogistic struct {
	shape float64
	scale float64
}

var _ Distribution = LogLogistic{}

// NewLogLogistic returns a log-logistic distribution with the given
// shape β and scale α.
func NewLogLogistic(shape, scale float64) (LogLogistic, error) {
	if !(shape > 0) || math.IsInf(shape, 0) {
		return LogLogistic{}, badParam("loglogistic", "shape", shape)
	}
	if !(scale > 0) || math.IsInf(scale, 0) {
		return LogLogistic{}, badParam("loglogistic", "scale", scale)
	}
	return LogLogistic{shape: shape, scale: scale}, nil
}

// Shape returns the shape parameter β.
func (l LogLogistic) Shape() float64 { return l.shape }

// Scale returns the scale parameter α.
func (l LogLogistic) Scale() float64 { return l.scale }

// CDF returns t^β / (α^β + t^β) for t > 0 and 0 otherwise.
func (l LogLogistic) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	r := math.Pow(x/l.scale, l.shape)
	return r / (1 + r)
}

// PDF returns the log-logistic density at x.
func (l LogLogistic) PDF(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x == 0 {
		switch {
		case l.shape < 1:
			return math.Inf(1)
		case l.shape == 1:
			return 1 / l.scale
		default:
			return 0
		}
	}
	z := x / l.scale
	num := l.shape / l.scale * math.Pow(z, l.shape-1)
	den := 1 + math.Pow(z, l.shape)
	return num / (den * den)
}

// Quantile returns α(p/(1−p))^{1/β}. Out-of-range p yields NaN.
func (l LogLogistic) Quantile(p float64) float64 {
	if p < 0 || p > 1 || math.IsNaN(p) {
		return math.NaN()
	}
	switch p {
	case 0:
		return 0
	case 1:
		return math.Inf(1)
	}
	return l.scale * math.Pow(p/(1-p), 1/l.shape)
}

// Mean returns απ/β / sin(π/β) for β > 1 and +Inf otherwise.
func (l LogLogistic) Mean() float64 {
	if l.shape <= 1 {
		return math.Inf(1)
	}
	b := math.Pi / l.shape
	return l.scale * b / math.Sin(b)
}

// Variance returns α²[2b/sin(2b) − b²/sin²(b)] with b = π/β for β > 2,
// and +Inf otherwise.
func (l LogLogistic) Variance() float64 {
	if l.shape <= 2 {
		return math.Inf(1)
	}
	b := math.Pi / l.shape
	return l.scale * l.scale * (2*b/math.Sin(2*b) - b*b/(math.Sin(b)*math.Sin(b)))
}

// NumParams returns 2.
func (l LogLogistic) NumParams() int { return 2 }

// Name returns "loglogistic".
func (l LogLogistic) Name() string { return "loglogistic" }

// Gompertz is the Gompertz distribution with shape η > 0 and rate b > 0:
// F(t) = 1 − exp(−η(e^{bt} − 1)). Its exponentially increasing hazard
// models recovery processes that accelerate without bound — aging-type
// dynamics the Weibull can only approximate.
type Gompertz struct {
	shape float64
	rate  float64
}

var _ Distribution = Gompertz{}

// NewGompertz returns a Gompertz distribution with the given shape η and
// rate b.
func NewGompertz(shape, rate float64) (Gompertz, error) {
	if !(shape > 0) || math.IsInf(shape, 0) {
		return Gompertz{}, badParam("gompertz", "shape", shape)
	}
	if !(rate > 0) || math.IsInf(rate, 0) {
		return Gompertz{}, badParam("gompertz", "rate", rate)
	}
	return Gompertz{shape: shape, rate: rate}, nil
}

// Shape returns the shape parameter η.
func (g Gompertz) Shape() float64 { return g.shape }

// Rate returns the rate parameter b.
func (g Gompertz) Rate() float64 { return g.rate }

// CDF returns 1 − exp(−η(e^{bt} − 1)) for t > 0 and 0 otherwise.
func (g Gompertz) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return -math.Expm1(-g.shape * math.Expm1(g.rate*x))
}

// PDF returns the Gompertz density at x.
func (g Gompertz) PDF(x float64) float64 {
	if x < 0 {
		return 0
	}
	return g.shape * g.rate * math.Exp(g.rate*x) * math.Exp(-g.shape*math.Expm1(g.rate*x))
}

// Quantile returns ln(1 − ln(1−p)/η)/b. Out-of-range p yields NaN.
func (g Gompertz) Quantile(p float64) float64 {
	if p < 0 || p > 1 || math.IsNaN(p) {
		return math.NaN()
	}
	switch p {
	case 0:
		return 0
	case 1:
		return math.Inf(1)
	}
	return math.Log1p(-math.Log1p(-p)/g.shape) / g.rate
}

// Mean returns the Gompertz mean by adaptive numeric integration of the
// survival function (no elementary closed form exists).
func (g Gompertz) Mean() float64 {
	// ∫₀^∞ S(t) dt with S(t) = exp(−η(e^{bt}−1)); substitute the
	// exponentially decaying tail with a generous finite cutoff.
	cutoff := g.Quantile(1 - 1e-12)
	const steps = 4096
	h := cutoff / steps
	var sum float64
	for i := 0; i < steps; i++ {
		t := (float64(i) + 0.5) * h
		sum += math.Exp(-g.shape * math.Expm1(g.rate*t))
	}
	return sum * h
}

// Variance returns E[X²] − E[X]² by the same numeric integration.
func (g Gompertz) Variance() float64 {
	cutoff := g.Quantile(1 - 1e-12)
	const steps = 4096
	h := cutoff / steps
	var m1, m2 float64
	for i := 0; i < steps; i++ {
		t := (float64(i) + 0.5) * h
		f := g.PDF(t)
		m1 += t * f
		m2 += t * t * f
	}
	m1 *= h
	m2 *= h
	return m2 - m1*m1
}

// NumParams returns 2.
func (g Gompertz) NumParams() int { return 2 }

// Name returns "gompertz".
func (g Gompertz) Name() string { return "gompertz" }
