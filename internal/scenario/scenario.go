// Package scenario is the coupled multi-system scenario engine: it
// composes the single-curve resilience generators into seeded,
// deterministic trajectories over a directed coupling graph. One
// system's degradation raises its neighbors' disruption hazard,
// disruptions arrive repeatedly (and cascade along marked edges),
// recovery exhibits hysteresis — a system that trips into a stressed
// phase recovers at a damped rate until it climbs back above the reset
// threshold — and two shock-damage processes ride on top: catastrophic
// shocks knock the level down instantly, cumulative shocks accrue
// damage that permanently lowers the recovery ceiling. Shock severity
// follows the extended-exponential law s = Scale·(−ln(1−u))^(1/Shape)
// (Mohri & Takeshita), which degenerates to the exponential at
// Shape = 1.
//
// Determinism contract: a scenario set is a pure function of its spec
// and top-level seed. Scenario k draws every variate from one RNG
// seeded rng.Derive(seed, k), consumed in fixed system order within
// each time step, and parallel generation writes indexed slots — so
// output is bit-identical across runs and GOMAXPROCS settings.
package scenario

import (
	"fmt"
	"math"

	"resilience/internal/rng"
	"resilience/internal/timeseries"
)

// ShockSpec parameterizes one shock process attached to a system.
type ShockSpec struct {
	// Rate is the per-month Poisson arrival rate; 0 disables the process.
	Rate float64 `json:"rate"`
	// Scale and Shape parameterize the extended-exponential severity
	// s = Scale·(−ln(1−u))^(1/Shape). Shape 1 is the plain exponential;
	// Shape > 1 thins the tail, Shape < 1 fattens it.
	Scale float64 `json:"scale"`
	Shape float64 `json:"shape"`
}

func (s *ShockSpec) validate(field string) error {
	if s == nil {
		return nil
	}
	if s.Rate < 0 || math.IsNaN(s.Rate) || math.IsInf(s.Rate, 0) {
		return fmt.Errorf("scenario: %s.rate %g must be finite and non-negative", field, s.Rate)
	}
	if s.Rate == 0 {
		return nil
	}
	if !(s.Scale > 0) || math.IsInf(s.Scale, 0) {
		return fmt.Errorf("scenario: %s.scale %g must be positive and finite", field, s.Scale)
	}
	if !(s.Shape > 0) || math.IsInf(s.Shape, 0) {
		return fmt.Errorf("scenario: %s.shape %g must be positive and finite", field, s.Shape)
	}
	return nil
}

// severity draws one extended-exponential severity.
func (s *ShockSpec) severity(gen *rng.RNG) float64 {
	u := gen.Float64Open()
	return s.Scale * math.Pow(-math.Log(1-u), 1/s.Shape)
}

// HysteresisSpec puts a two-threshold phase machine on recovery: when
// the level falls below Trip the system enters a stressed phase in
// which recovery is multiplied by Damping, and it stays stressed until
// the level climbs back above Reset (> Trip). The gap between the
// thresholds is what makes the loop hysteretic rather than a simple
// level-dependent rate.
type HysteresisSpec struct {
	Trip  float64 `json:"trip"`
	Reset float64 `json:"reset"`
	// Damping multiplies the recovery rate while stressed (0 freezes
	// recovery, 1 disables the effect).
	Damping float64 `json:"damping"`
}

func (h *HysteresisSpec) validate(field string) error {
	if h == nil {
		return nil
	}
	if !(h.Trip > 0 && h.Trip < h.Reset && h.Reset <= 1) {
		return fmt.Errorf("scenario: %s needs 0 < trip < reset <= 1, got trip %g reset %g", field, h.Trip, h.Reset)
	}
	if !(h.Damping >= 0 && h.Damping <= 1) {
		return fmt.Errorf("scenario: %s.damping %g outside [0, 1]", field, h.Damping)
	}
	return nil
}

// SystemSpec describes one node of the coupling graph.
type SystemSpec struct {
	// Name identifies the system in couplings and output.
	Name string `json:"name"`
	// Shape is the letter class (V, U, W, or L) of the system's
	// disruption template; it sets decline duration/curvature and the
	// intrinsic recovery modifier. See dataset.ShapeSpec for the
	// single-curve analogues.
	Shape string `json:"shape"`
	// Depth is the typical fractional drop per disruption; individual
	// disruptions jitter around it.
	Depth float64 `json:"depth"`
	// Noise is the multiplicative observation-noise standard deviation.
	Noise float64 `json:"noise,omitempty"`
	// HazardRate is the baseline per-month disruption hazard; coupling
	// terms add to it.
	HazardRate float64 `json:"hazard_rate"`
	// RecoveryRate is the per-month fraction of the gap to the ceiling
	// recovered, before shape and hysteresis modifiers.
	RecoveryRate float64 `json:"recovery_rate"`
	// Hysteresis, when set, dampens recovery in the stressed phase.
	Hysteresis *HysteresisSpec `json:"hysteresis,omitempty"`
	// Catastrophic shocks drop the level instantly; Cumulative shocks
	// accrue damage that lowers the recovery ceiling.
	Catastrophic *ShockSpec `json:"catastrophic,omitempty"`
	Cumulative   *ShockSpec `json:"cumulative,omitempty"`
}

// Coupling is one directed edge: From's degradation feeds To's hazard.
type Coupling struct {
	From string `json:"from"`
	To   string `json:"to"`
	// Gain scales the hazard contribution Gain·(1 − level_from).
	Gain float64 `json:"gain"`
	// Cascade additionally triggers a forced disruption on To in the
	// step after a disruption arrives on From.
	Cascade bool `json:"cascade,omitempty"`
}

// Spec is a complete scenario template: the coupling graph plus the
// horizon. The same Spec with the same seed always renders the same
// trajectories.
type Spec struct {
	// Name labels the spec in output and presets.
	Name string `json:"name,omitempty"`
	// Horizon is the number of monthly observations per system.
	Horizon int `json:"horizon"`
	// Systems lists the graph nodes; order is the deterministic RNG
	// consumption order.
	Systems []SystemSpec `json:"systems"`
	// Couplings lists the directed edges.
	Couplings []Coupling `json:"couplings,omitempty"`
}

// MaxHorizon and MaxSystems bound a single scenario so a hostile spec
// cannot make the engine allocate unboundedly.
const (
	MaxHorizon = 4096
	MaxSystems = 64
)

// Validate checks the spec for structural errors.
func (sp Spec) Validate() error {
	if sp.Horizon < 8 {
		return fmt.Errorf("scenario: horizon %d too short (need >= 8)", sp.Horizon)
	}
	if sp.Horizon > MaxHorizon {
		return fmt.Errorf("scenario: horizon %d exceeds limit %d", sp.Horizon, MaxHorizon)
	}
	if len(sp.Systems) == 0 {
		return fmt.Errorf("scenario: at least one system required")
	}
	if len(sp.Systems) > MaxSystems {
		return fmt.Errorf("scenario: %d systems exceeds limit %d", len(sp.Systems), MaxSystems)
	}
	names := make(map[string]bool, len(sp.Systems))
	for i, sys := range sp.Systems {
		if sys.Name == "" {
			return fmt.Errorf("scenario: system %d has no name", i)
		}
		if names[sys.Name] {
			return fmt.Errorf("scenario: duplicate system name %q", sys.Name)
		}
		names[sys.Name] = true
		if _, ok := shapeTemplates[normalizeShape(sys.Shape)]; !ok {
			return fmt.Errorf("scenario: system %q shape %q unknown (want V, U, W, or L)", sys.Name, sys.Shape)
		}
		if !(sys.Depth > 0 && sys.Depth < 1) {
			return fmt.Errorf("scenario: system %q depth %g outside (0, 1)", sys.Name, sys.Depth)
		}
		if sys.Noise < 0 || math.IsNaN(sys.Noise) {
			return fmt.Errorf("scenario: system %q negative noise", sys.Name)
		}
		if sys.HazardRate < 0 || math.IsNaN(sys.HazardRate) || math.IsInf(sys.HazardRate, 0) {
			return fmt.Errorf("scenario: system %q hazard_rate %g must be finite and non-negative", sys.Name, sys.HazardRate)
		}
		if !(sys.RecoveryRate >= 0 && sys.RecoveryRate <= 1) {
			return fmt.Errorf("scenario: system %q recovery_rate %g outside [0, 1]", sys.Name, sys.RecoveryRate)
		}
		prefix := fmt.Sprintf("system %q", sys.Name)
		if err := sys.Hysteresis.validate(prefix + " hysteresis"); err != nil {
			return err
		}
		if err := sys.Catastrophic.validate(prefix + " catastrophic"); err != nil {
			return err
		}
		if err := sys.Cumulative.validate(prefix + " cumulative"); err != nil {
			return err
		}
	}
	for i, c := range sp.Couplings {
		if !names[c.From] || !names[c.To] {
			return fmt.Errorf("scenario: coupling %d references unknown system (%q -> %q)", i, c.From, c.To)
		}
		if c.From == c.To {
			return fmt.Errorf("scenario: coupling %d is a self-loop on %q", i, c.From)
		}
		if !(c.Gain >= 0) || math.IsInf(c.Gain, 0) {
			return fmt.Errorf("scenario: coupling %d gain %g must be finite and non-negative", i, c.Gain)
		}
	}
	return nil
}

// shapeTemplate sets how a disruption of a given letter class unfolds:
// decline duration as a fraction of a 12-month reference, Kumaraswamy
// curvature of the decline path, and a multiplier on the system's
// recovery rate (L-shaped systems grind back slowly; V-shaped ones
// bounce).
type shapeTemplate struct {
	declineMonths      int
	declineA, declineB float64
	recoveryMod        float64
}

var shapeTemplates = map[string]shapeTemplate{
	"V": {declineMonths: 3, declineA: 1.3, declineB: 1.1, recoveryMod: 1.0},
	"U": {declineMonths: 8, declineA: 2.2, declineB: 2.0, recoveryMod: 0.55},
	"W": {declineMonths: 4, declineA: 1.4, declineB: 1.2, recoveryMod: 0.9},
	"L": {declineMonths: 3, declineA: 0.9, declineB: 1.0, recoveryMod: 0.3},
}

func normalizeShape(s string) string {
	switch s {
	case "v":
		return "V"
	case "u":
		return "U"
	case "w":
		return "W"
	case "l":
		return "L"
	default:
		return s
	}
}

// kumaraswamy is the CDF 1 − (1 − u^a)^b on [0, 1], the same closed-form
// S-curve family dataset uses for single-curve decline paths.
func kumaraswamy(u, a, b float64) float64 {
	switch {
	case u <= 0:
		return 0
	case u >= 1:
		return 1
	default:
		return 1 - math.Pow(1-math.Pow(u, a), b)
	}
}

// System is one rendered trajectory plus its bookkeeping.
type System struct {
	// Name echoes the spec.
	Name string `json:"name"`
	// Class is the shape-class tag: the spec's letter shape, suffixed
	// with "+shock" when any shock process fired on this system during
	// the scenario.
	Class string `json:"class"`
	// Values is the observed monthly trajectory, 1.0 at t = 0.
	Values []float64 `json:"values"`
	// Disruptions counts disruption arrivals (spontaneous + cascaded).
	Disruptions int `json:"disruptions"`
	// Shocks counts catastrophic plus cumulative shock arrivals.
	Shocks int `json:"shocks"`
}

// Series converts the trajectory to a timeseries (times 0 … Horizon−1).
func (s System) Series() (*timeseries.Series, error) {
	return timeseries.FromValues(s.Values)
}

// Scenario is one rendered multi-system trajectory.
type Scenario struct {
	// Index is the scenario's position in its set.
	Index int `json:"index"`
	// Seed is the derived per-scenario seed (rng.Derive(setSeed, Index)).
	Seed uint64 `json:"seed"`
	// Systems are the trajectories in spec order.
	Systems []System `json:"systems"`
}

// disruption is one in-flight decline: it subtracts Kumaraswamy-shaped
// increments from the level over declineMonths steps, then expires,
// leaving recovery to pull the level back toward the ceiling.
type disruption struct {
	start int
	depth float64
	tmpl  shapeTemplate
}

// levelFloor keeps trajectories strictly positive so downstream log
// transforms and normalizations stay finite.
const levelFloor = 0.02

// Generate renders one scenario from the spec and a scenario seed. The
// caller is responsible for deriving per-scenario seeds (GenerateSet
// does); identical (spec, seed) always produces identical output.
func Generate(sp Spec, seed uint64) (Scenario, error) {
	if err := sp.Validate(); err != nil {
		return Scenario{}, err
	}
	gen := rng.New(seed)
	n := len(sp.Systems)

	// Per-system simulation state.
	level := make([]float64, n)   // true performance level
	ceiling := make([]float64, n) // recovery ceiling (cumulative damage lowers it)
	stressed := make([]bool, n)
	shocked := make([]bool, n)
	forced := make([]bool, n) // cascade-triggered arrival pending this step
	active := make([][]disruption, n)
	tmpl := make([]shapeTemplate, n)
	out := make([]System, n)
	// incoming[i] lists coupling edges into system i; cascadeTo[i] lists
	// targets of cascade edges out of i.
	incoming := make([][]Coupling, n)
	cascadeTo := make([][]int, n)
	index := make(map[string]int, n)
	for i, sys := range sp.Systems {
		index[sys.Name] = i
		level[i], ceiling[i] = 1, 1
		tmpl[i] = shapeTemplates[normalizeShape(sys.Shape)]
		out[i] = System{Name: sys.Name, Values: make([]float64, sp.Horizon)}
		out[i].Values[0] = 1
	}
	for _, c := range sp.Couplings {
		incoming[index[c.To]] = append(incoming[index[c.To]], c)
		if c.Cascade {
			cascadeTo[index[c.From]] = append(cascadeTo[index[c.From]], index[c.To])
		}
	}

	for t := 1; t < sp.Horizon; t++ {
		// Hazard terms read the previous step's levels so within-step
		// system order never feeds forward.
		prev := make([]float64, n)
		copy(prev, level)
		nextForced := make([]bool, n)

		for i := range sp.Systems {
			sys := &sp.Systems[i]

			// 1. Disruption arrival: baseline hazard plus coupled
			// degradation pressure, or a forced cascade arrival.
			hazard := sys.HazardRate
			for _, c := range incoming[i] {
				hazard += c.Gain * (1 - prev[index[c.From]])
			}
			arrived := forced[i]
			if !arrived && hazard > 0 {
				arrived = gen.Float64() < 1-math.Exp(-hazard)
			}
			if arrived {
				out[i].Disruptions++
				depth := sys.Depth * (0.6 + 0.8*gen.Float64())
				active[i] = append(active[i], disruption{start: t, depth: depth, tmpl: tmpl[i]})
				for _, j := range cascadeTo[i] {
					nextForced[j] = true
				}
			}

			// 2. Shock processes: catastrophic drops the level now;
			// cumulative lowers the ceiling for every later recovery.
			if cs := sys.Catastrophic; cs != nil && cs.Rate > 0 {
				if gen.Float64() < 1-math.Exp(-cs.Rate) {
					out[i].Shocks++
					shocked[i] = true
					sev := math.Min(cs.severity(gen), 0.9)
					level[i] *= 1 - sev
				}
			}
			if cu := sys.Cumulative; cu != nil && cu.Rate > 0 {
				if gen.Float64() < 1-math.Exp(-cu.Rate) {
					out[i].Shocks++
					shocked[i] = true
					ceiling[i] = math.Max(ceiling[i]-cu.severity(gen), levelFloor)
				}
			}

			// 3. Active declines subtract their Kumaraswamy increment
			// for this step and expire when the decline completes.
			keep := active[i][:0]
			for _, d := range active[i] {
				dm := float64(d.tmpl.declineMonths)
				u0 := (float64(t-1) - float64(d.start) + 1) / dm
				u1 := (float64(t) - float64(d.start) + 1) / dm
				level[i] -= d.depth * (kumaraswamy(u1, d.tmpl.declineA, d.tmpl.declineB) -
					kumaraswamy(math.Max(u0, 0), d.tmpl.declineA, d.tmpl.declineB))
				if u1 < 1 {
					keep = append(keep, d)
				}
			}
			active[i] = keep

			// 4. Recovery pulls toward the ceiling, damped by shape and
			// (while stressed) hysteresis.
			rate := sys.RecoveryRate * tmpl[i].recoveryMod
			if stressed[i] && sys.Hysteresis != nil {
				rate *= sys.Hysteresis.Damping
			}
			if gap := ceiling[i] - level[i]; gap > 0 {
				level[i] += rate * gap
			} else if gap < 0 {
				// Above the ceiling (cumulative damage lowered it):
				// settle down onto it.
				level[i] = math.Max(ceiling[i], level[i]-0.25*(-gap))
			}
			level[i] = math.Max(level[i], levelFloor)

			// 5. Hysteresis phase update.
			if h := sys.Hysteresis; h != nil {
				if level[i] < h.Trip {
					stressed[i] = true
				} else if level[i] > h.Reset {
					stressed[i] = false
				}
			}

			// 6. Observation: multiplicative noise on the true level;
			// noise never feeds back into the dynamics.
			obs := level[i]
			if sys.Noise > 0 {
				obs *= 1 + sys.Noise*gen.Normal()
			}
			out[i].Values[t] = math.Max(obs, levelFloor)
		}
		forced = nextForced
	}

	for i := range out {
		out[i].Class = normalizeShape(sp.Systems[i].Shape)
		if shocked[i] {
			out[i].Class += "+shock"
		}
	}
	return Scenario{Seed: seed, Systems: out}, nil
}
