package scenario

import "resilience/internal/telemetry"

// metrics are the scenario engine's telemetry handles, resolved once.
// They live in the process-wide registry and are scraped at GET /metrics
// alongside the fit-pipeline and stream families.
var metrics = struct {
	generated *telemetry.Counter
	shocks    *telemetry.Counter
	duration  *telemetry.Histogram
}{
	generated: telemetry.GetOrCreateCounter("resil_scenario_generated_total"),
	shocks:    telemetry.GetOrCreateCounter("resil_scenario_shocks_total"),
	duration:  telemetry.GetOrCreateHistogram("resil_scenario_generation_duration_seconds", telemetry.DurationBuckets()),
}

func init() {
	telemetry.RegisterFamily("resil_scenario_generated_total", "counter",
		"Scenarios rendered by the coupled scenario engine.")
	telemetry.RegisterFamily("resil_scenario_shocks_total", "counter",
		"Shock arrivals (catastrophic + cumulative) injected across all rendered scenarios.")
	telemetry.RegisterFamily("resil_scenario_generation_duration_seconds", "histogram",
		"Wall time to render one scenario (all systems, full horizon).")
}
