package scenario

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestSpecValidate(t *testing.T) {
	valid := func() Spec {
		sp, err := Preset("pair")
		if err != nil {
			t.Fatal(err)
		}
		return sp
	}
	if err := valid().Validate(); err != nil {
		t.Fatalf("preset pair rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Spec)
	}{
		{"short horizon", func(s *Spec) { s.Horizon = 4 }},
		{"oversized horizon", func(s *Spec) { s.Horizon = MaxHorizon + 1 }},
		{"no systems", func(s *Spec) { s.Systems = nil }},
		{"unnamed system", func(s *Spec) { s.Systems[0].Name = "" }},
		{"duplicate name", func(s *Spec) { s.Systems[1].Name = s.Systems[0].Name }},
		{"unknown shape", func(s *Spec) { s.Systems[0].Shape = "Z" }},
		{"bad depth", func(s *Spec) { s.Systems[0].Depth = 1.5 }},
		{"negative hazard", func(s *Spec) { s.Systems[0].HazardRate = -1 }},
		{"bad recovery", func(s *Spec) { s.Systems[0].RecoveryRate = 2 }},
		{"bad hysteresis", func(s *Spec) { s.Systems[1].Hysteresis = &HysteresisSpec{Trip: 0.9, Reset: 0.8} }},
		{"bad shock scale", func(s *Spec) { s.Systems[0].Catastrophic = &ShockSpec{Rate: 0.1, Scale: -1, Shape: 1} }},
		{"bad shock shape", func(s *Spec) { s.Systems[0].Catastrophic = &ShockSpec{Rate: 0.1, Scale: 0.1, Shape: 0} }},
		{"unknown coupling target", func(s *Spec) { s.Couplings[0].To = "nobody" }},
		{"self coupling", func(s *Spec) { s.Couplings[0].To = s.Couplings[0].From }},
		{"negative gain", func(s *Spec) { s.Couplings[0].Gain = -1 }},
	}
	for _, c := range cases {
		sp := valid()
		c.mutate(&sp)
		if err := sp.Validate(); err == nil {
			t.Errorf("%s: invalid spec accepted", c.name)
		}
	}
}

// TestSetDeterminismHammer is the seeded-determinism gate: the same
// (spec, count, seed) must render a byte-identical set at every worker
// count. CI runs the suite with -cpu 1,4 -race, which exercises both
// GOMAXPROCS settings the acceptance criteria name.
func TestSetDeterminismHammer(t *testing.T) {
	for _, preset := range PresetNames() {
		sp, err := Preset(preset)
		if err != nil {
			t.Fatal(err)
		}
		const count, seed = 24, 1234
		var golden []byte
		for _, workers := range []int{0, 1, 2, 7, count} {
			set, err := GenerateSet(context.Background(), sp, count, seed, workers)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", preset, workers, err)
			}
			var csv, js bytes.Buffer
			if err := set.WriteCSV(&csv); err != nil {
				t.Fatal(err)
			}
			if err := set.WriteJSON(&js); err != nil {
				t.Fatal(err)
			}
			blob := append(csv.Bytes(), js.Bytes()...)
			if golden == nil {
				golden = blob
				continue
			}
			if !bytes.Equal(golden, blob) {
				t.Fatalf("%s: workers=%d output differs from workers=0", preset, workers)
			}
		}
	}
}

// TestGoldenSpecRoundTrip pins the on-disk spec format: the checked-in
// spec file must parse, validate, survive a marshal/unmarshal cycle
// unchanged, and render exactly the checked-in golden CSV.
func TestGoldenSpecRoundTrip(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join("testdata", "golden_spec.json"))
	if err != nil {
		t.Fatal(err)
	}
	var sp Spec
	if err := json.Unmarshal(raw, &sp); err != nil {
		t.Fatalf("parse golden spec: %v", err)
	}
	if err := sp.Validate(); err != nil {
		t.Fatalf("golden spec invalid: %v", err)
	}

	again, err := json.Marshal(sp)
	if err != nil {
		t.Fatal(err)
	}
	var sp2 Spec
	if err := json.Unmarshal(again, &sp2); err != nil {
		t.Fatal(err)
	}
	b1, _ := json.Marshal(sp)
	b2, _ := json.Marshal(sp2)
	if !bytes.Equal(b1, b2) {
		t.Fatalf("spec round-trip drifted:\n%s\n%s", b1, b2)
	}

	set, err := GenerateSet(context.Background(), sp, 2, 99, 0)
	if err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	if err := set.WriteCSV(&got); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(filepath.Join("testdata", "golden_set.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Errorf("golden set drifted from testdata/golden_set.csv (%d vs %d bytes); the engine's output for a fixed seed changed",
			got.Len(), len(want))
	}
}

// TestRegenGolden rewrites the golden files; guarded so it only runs
// when explicitly requested (REGEN_GOLDEN=1 go test -run TestRegenGolden).
func TestRegenGolden(t *testing.T) {
	if os.Getenv("REGEN_GOLDEN") == "" {
		t.Skip("set REGEN_GOLDEN=1 to regenerate testdata")
	}
	sp, err := Preset("pair")
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(filepath.Join("testdata", "golden_spec.json"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(sp); err != nil {
		t.Fatal(err)
	}
	set, err := GenerateSet(context.Background(), sp, 2, 99, 0)
	if err != nil {
		t.Fatal(err)
	}
	g, err := os.Create(filepath.Join("testdata", "golden_set.csv"))
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	if err := set.WriteCSV(g); err != nil {
		t.Fatal(err)
	}
}

func TestCatastrophicShockDropsLevel(t *testing.T) {
	sp := Spec{
		Horizon: 24,
		Systems: []SystemSpec{{
			Name: "a", Shape: "V", Depth: 0.05,
			HazardRate: 0, RecoveryRate: 0,
			Catastrophic: &ShockSpec{Rate: 5, Scale: 0.3, Shape: 1},
		}},
	}
	sc, err := Generate(sp, 3)
	if err != nil {
		t.Fatal(err)
	}
	sys := sc.Systems[0]
	if sys.Shocks == 0 {
		t.Fatal("rate-5 shock process never fired in 24 months")
	}
	if !strings.HasSuffix(sys.Class, "+shock") {
		t.Errorf("shocked system tagged %q", sys.Class)
	}
	min := 2.0
	for _, v := range sys.Values {
		if v < min {
			min = v
		}
	}
	if min > 0.8 {
		t.Errorf("catastrophic shocks with scale 0.3 left min level %g", min)
	}
}

func TestCumulativeShockLowersCeiling(t *testing.T) {
	sp := Spec{
		Horizon: 48,
		Systems: []SystemSpec{{
			Name: "a", Shape: "V", Depth: 0.05,
			HazardRate: 0, RecoveryRate: 0.9,
			Cumulative: &ShockSpec{Rate: 1, Scale: 0.05, Shape: 1},
		}},
	}
	sc, err := Generate(sp, 5)
	if err != nil {
		t.Fatal(err)
	}
	sys := sc.Systems[0]
	if sys.Shocks < 5 {
		t.Fatalf("rate-1 cumulative process fired only %d times in 48 months", sys.Shocks)
	}
	// With no disruptions and aggressive recovery, the level tracks the
	// ceiling — which only ever decreases.
	last := sys.Values[len(sys.Values)-1]
	if last > 0.9 {
		t.Errorf("accrued cumulative damage should pin the level well below 1, got %g", last)
	}
	for i := 1; i < len(sys.Values); i++ {
		if sys.Values[i] > sys.Values[i-1]+1e-9 {
			t.Fatalf("level rose at t=%d (%g -> %g) despite a monotone ceiling", i, sys.Values[i-1], sys.Values[i])
		}
	}
}

func TestCascadeForcesDownstreamDisruption(t *testing.T) {
	base := Spec{
		Horizon: 60,
		Systems: []SystemSpec{
			{Name: "up", Shape: "V", Depth: 0.05, HazardRate: 0.3, RecoveryRate: 0.4},
			{Name: "down", Shape: "V", Depth: 0.05, HazardRate: 0, RecoveryRate: 0.4},
		},
	}
	// Without a cascade edge the downstream system (hazard 0, no
	// coupling) never sees a disruption.
	sc, err := Generate(base, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got := sc.Systems[1].Disruptions; got != 0 {
		t.Fatalf("uncoupled zero-hazard system saw %d disruptions", got)
	}
	withEdge := base
	withEdge.Couplings = []Coupling{{From: "up", To: "down", Gain: 0, Cascade: true}}
	sc, err = Generate(withEdge, 8)
	if err != nil {
		t.Fatal(err)
	}
	up, down := sc.Systems[0], sc.Systems[1]
	if up.Disruptions == 0 {
		t.Fatal("upstream hazard 0.3 never produced a disruption")
	}
	if down.Disruptions != up.Disruptions {
		t.Errorf("cascade edge: downstream %d disruptions, upstream %d", down.Disruptions, up.Disruptions)
	}
}

func TestCouplingRaisesHazard(t *testing.T) {
	// The downstream system has zero baseline hazard; only the coupling
	// term (gain × upstream degradation) can disrupt it.
	sp := Spec{
		Horizon: 96,
		Systems: []SystemSpec{
			{Name: "up", Shape: "L", Depth: 0.3, HazardRate: 0.4, RecoveryRate: 0.05},
			{Name: "down", Shape: "V", Depth: 0.05, HazardRate: 0, RecoveryRate: 0.4},
		},
		Couplings: []Coupling{{From: "up", To: "down", Gain: 3}},
	}
	sc, err := Generate(sp, 21)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Systems[1].Disruptions == 0 {
		t.Error("coupled degradation never raised downstream hazard enough to disrupt")
	}
}

func TestHysteresisDampsRecovery(t *testing.T) {
	// Deterministic single dip: forced cascade-free comparison of the
	// same trajectory with and without hysteresis damping. Drive the
	// level down with one catastrophic shock at a huge rate for one
	// step? Simpler: high hazard for disruptions is stochastic, so use
	// the same seed and compare recoveries — the damped system must sit
	// at or below the undamped one at every step.
	base := Spec{
		Horizon: 48,
		Systems: []SystemSpec{{
			Name: "a", Shape: "U", Depth: 0.3, HazardRate: 0.15, RecoveryRate: 0.25,
		}},
	}
	damped := base
	damped.Systems = []SystemSpec{base.Systems[0]}
	damped.Systems[0].Hysteresis = &HysteresisSpec{Trip: 0.95, Reset: 0.99, Damping: 0.1}

	free, err := Generate(base, 17)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := Generate(damped, 17)
	if err != nil {
		t.Fatal(err)
	}
	// Identical seed and draw order (hysteresis consumes no variates),
	// so the disruption history matches; damping may only lower levels.
	sumFree, sumSlow := 0.0, 0.0
	for i := range free.Systems[0].Values {
		sumFree += free.Systems[0].Values[i]
		sumSlow += slow.Systems[0].Values[i]
	}
	if !(sumSlow < sumFree) {
		t.Errorf("hysteresis damping did not slow recovery: damped area %g vs free %g", sumSlow, sumFree)
	}
}

func TestGenerateSetBounds(t *testing.T) {
	sp, _ := Preset("pair")
	if _, err := GenerateSet(context.Background(), sp, 0, 1, 0); err == nil {
		t.Error("count 0 accepted")
	}
	if _, err := GenerateSet(context.Background(), sp, MaxSetCount+1, 1, 0); err == nil {
		t.Error("oversized count accepted")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := GenerateSet(ctx, sp, 50, 1, 0); err == nil {
		t.Error("cancelled context accepted")
	}
}

func TestPresets(t *testing.T) {
	for _, name := range PresetNames() {
		sp, err := Preset(name)
		if err != nil {
			t.Errorf("preset %s: %v", name, err)
			continue
		}
		if err := sp.Validate(); err != nil {
			t.Errorf("preset %s invalid: %v", name, err)
		}
		if sp.Name != name {
			t.Errorf("preset %s named %q", name, sp.Name)
		}
	}
	if _, err := Preset("nope"); err == nil {
		t.Error("unknown preset accepted")
	}
}

func TestSystemSeries(t *testing.T) {
	sp, _ := Preset("triad")
	sc, err := Generate(sp, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, sys := range sc.Systems {
		s, err := sys.Series()
		if err != nil {
			t.Fatalf("%s: %v", sys.Name, err)
		}
		if s.Len() != sp.Horizon {
			t.Errorf("%s: series len %d, want %d", sys.Name, s.Len(), sp.Horizon)
		}
		if s.Value(0) != 1 {
			t.Errorf("%s: starts at %g, want 1", sys.Name, s.Value(0))
		}
	}
}
