package scenario

import (
	"context"
	"fmt"
	"sort"

	"resilience/internal/service"
	"resilience/internal/telemetry"
	"resilience/internal/timeseries"
)

// StudyConfig parameterizes a Monte Carlo study: render Scenarios
// scenarios from Spec, fit every (system trajectory × model) pair
// through the service's Batch pool, and aggregate empirical CI coverage
// and model-selection win rates by shape class.
type StudyConfig struct {
	// Spec is the scenario template.
	Spec Spec
	// Scenarios is the number of scenarios to render (N of the study).
	Scenarios int
	// Seed is the top-level seed; it reproduces the entire study.
	Seed uint64
	// Models lists the model families to race (registry names/aliases).
	Models []string
	// Workers bounds both set generation and the batch pool (<= 0 auto).
	Workers int
	// TrainFraction and CIAlpha pass through to the fit pipeline
	// (0 selects the service defaults: 0.9 and 0.05).
	TrainFraction float64
	// CIAlpha is the confidence-interval significance level; coverage is
	// compared against the 1−CIAlpha nominal level.
	CIAlpha float64
}

// ClassStat aggregates one shape class across the study.
type ClassStat struct {
	// Class is the shape-class tag (V, U, …, possibly "+shock").
	Class string
	// SeriesCount is the number of trajectories in this class.
	SeriesCount int
	// MeanEC maps model name to mean empirical coverage over the class's
	// successful fits.
	MeanEC map[string]float64
	// Fits maps model name to the number of successful fits.
	Fits map[string]int
	// Wins maps model name to the number of trajectories it won (lowest
	// PMSE among the models that fit that trajectory).
	Wins map[string]int
	// Errors counts fit attempts in this class that returned an error.
	Errors int
}

// StudyResult is a completed Monte Carlo study.
type StudyResult struct {
	// Models echoes the raced model names in request order.
	Models []string
	// Classes holds per-class aggregates, sorted by class tag.
	Classes []ClassStat
	// Series is the total number of trajectories fitted.
	Series int
	// NominalCoverage is the 1−CIAlpha level MeanEC is judged against.
	NominalCoverage float64
}

// RunStudy renders the scenario set and pushes every trajectory × model
// job through svc.Batch in MaxBatchJobs-sized chunks. Aggregation walks
// results in job-index order, so the study output is deterministic for
// a fixed (spec, seed, models) regardless of worker scheduling.
func RunStudy(ctx context.Context, svc *service.Service, cfg StudyConfig) (*StudyResult, error) {
	if svc == nil {
		return nil, fmt.Errorf("scenario: study needs a service")
	}
	if cfg.Scenarios <= 0 {
		return nil, fmt.Errorf("scenario: study needs a positive scenario count, got %d", cfg.Scenarios)
	}
	if len(cfg.Models) == 0 {
		return nil, fmt.Errorf("scenario: study needs at least one model")
	}
	ctx, span := telemetry.StartSpanCtx(ctx, "scenario.study")
	defer span.End()

	set, err := GenerateSet(ctx, cfg.Spec, cfg.Scenarios, cfg.Seed, cfg.Workers)
	if err != nil {
		return nil, err
	}

	// Flatten trajectories once; each contributes one job per model.
	type traj struct {
		class  string
		series *timeseries.Series
	}
	var trajs []traj
	for _, sc := range set.Scenarios {
		for _, sys := range sc.Systems {
			s, err := sys.Series()
			if err != nil {
				return nil, fmt.Errorf("scenario: %d/%s: %w", sc.Index, sys.Name, err)
			}
			trajs = append(trajs, traj{class: sys.Class, series: s})
		}
	}

	alpha := cfg.CIAlpha
	if alpha == 0 {
		alpha = 0.05
	}
	stats := map[string]*ClassStat{}
	classStat := func(class string) *ClassStat {
		cs, ok := stats[class]
		if !ok {
			cs = &ClassStat{Class: class,
				MeanEC: map[string]float64{}, Fits: map[string]int{}, Wins: map[string]int{}}
			stats[class] = cs
		}
		return cs
	}
	sumEC := map[string]map[string]float64{} // class -> model -> ΣEC

	// One row of jobs per trajectory (all models side by side), chunked
	// so each Batch call stays under the per-request job cap. Chunks are
	// whole trajectories, so a trajectory's fits never straddle a chunk.
	perTraj := len(cfg.Models)
	if perTraj > service.MaxBatchJobs {
		return nil, fmt.Errorf("scenario: %d models exceeds batch capacity %d", perTraj, service.MaxBatchJobs)
	}
	trajPerChunk := service.MaxBatchJobs / perTraj
	for lo := 0; lo < len(trajs); lo += trajPerChunk {
		hi := min(lo+trajPerChunk, len(trajs))
		jobs := make([]service.Request, 0, (hi-lo)*perTraj)
		for _, tr := range trajs[lo:hi] {
			for _, m := range cfg.Models {
				jobs = append(jobs, service.Request{
					Model:         m,
					Series:        tr.series,
					TrainFraction: cfg.TrainFraction,
					CIAlpha:       cfg.CIAlpha,
				})
			}
		}
		items, err := svc.Batch(ctx, jobs, cfg.Workers)
		if err != nil {
			return nil, fmt.Errorf("scenario: study batch: %w", err)
		}
		for ti := lo; ti < hi; ti++ {
			tr := trajs[ti]
			cs := classStat(tr.class)
			cs.SeriesCount++
			bestModel := ""
			bestPMSE := 0.0
			for mi, m := range cfg.Models {
				item := items[(ti-lo)*perTraj+mi]
				if item.Err != nil || item.Outcome == nil || item.Outcome.Validation == nil {
					cs.Errors++
					continue
				}
				v := item.Outcome.Validation
				cs.Fits[m]++
				if sumEC[tr.class] == nil {
					sumEC[tr.class] = map[string]float64{}
				}
				sumEC[tr.class][m] += v.EC
				if bestModel == "" || v.GoF.PMSE < bestPMSE {
					bestModel, bestPMSE = m, v.GoF.PMSE
				}
			}
			if bestModel != "" {
				cs.Wins[bestModel]++
			}
		}
	}

	res := &StudyResult{Models: cfg.Models, Series: len(trajs), NominalCoverage: 1 - alpha}
	for class, cs := range stats {
		for m, sum := range sumEC[class] {
			if n := cs.Fits[m]; n > 0 {
				cs.MeanEC[m] = sum / float64(n)
			}
		}
		res.Classes = append(res.Classes, *cs)
	}
	sort.Slice(res.Classes, func(i, j int) bool { return res.Classes[i].Class < res.Classes[j].Class })
	return res, nil
}
