package scenario

import (
	"context"
	"reflect"
	"testing"

	"resilience/internal/service"
)

func studyConfig(n int) StudyConfig {
	sp, _ := Preset("pair")
	return StudyConfig{
		Spec:      sp,
		Scenarios: n,
		Seed:      7,
		Models:    []string{"quadratic", "competing-risks"},
	}
}

func TestRunStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("runs model fits")
	}
	svc := service.New(service.Config{})
	res, err := RunStudy(context.Background(), svc, studyConfig(12))
	if err != nil {
		t.Fatal(err)
	}
	if res.Series != 24 { // 12 scenarios × 2 systems
		t.Errorf("series = %d, want 24", res.Series)
	}
	if res.NominalCoverage != 0.95 {
		t.Errorf("nominal coverage = %g, want 0.95", res.NominalCoverage)
	}
	if len(res.Classes) == 0 {
		t.Fatal("no class aggregates")
	}
	total, wins := 0, 0
	for _, cs := range res.Classes {
		total += cs.SeriesCount
		for _, m := range res.Models {
			wins += cs.Wins[m]
			if ec := cs.MeanEC[m]; cs.Fits[m] > 0 && !(ec >= 0 && ec <= 1) {
				t.Errorf("class %s model %s: mean EC %g outside [0, 1]", cs.Class, m, ec)
			}
		}
		if wins > total {
			t.Errorf("class %s: more wins than series", cs.Class)
		}
	}
	if total != res.Series {
		t.Errorf("class series sum %d != total %d", total, res.Series)
	}
}

// TestRunStudyDeterministic pins the study contract: same config, same
// aggregates, regardless of batch worker scheduling.
func TestRunStudyDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("runs model fits")
	}
	svc := service.New(service.Config{})
	cfg := studyConfig(6)
	a, err := RunStudy(context.Background(), svc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 1
	b, err := RunStudy(context.Background(), svc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("study results differ across worker counts:\n%#v\n%#v", a, b)
	}
}

func TestRunStudyValidation(t *testing.T) {
	svc := service.New(service.Config{})
	ctx := context.Background()
	if _, err := RunStudy(ctx, nil, studyConfig(2)); err == nil {
		t.Error("nil service accepted")
	}
	cfg := studyConfig(0)
	if _, err := RunStudy(ctx, svc, cfg); err == nil {
		t.Error("zero scenarios accepted")
	}
	cfg = studyConfig(2)
	cfg.Models = nil
	if _, err := RunStudy(ctx, svc, cfg); err == nil {
		t.Error("no models accepted")
	}
}
