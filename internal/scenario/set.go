package scenario

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"resilience/internal/rng"
	"resilience/internal/telemetry"
)

// MaxSetCount bounds one GenerateSet call; Monte Carlo studies loop
// over chunks instead of asking for everything at once.
const MaxSetCount = 100_000

// Set is a rendered scenario set plus the inputs that reproduce it.
type Set struct {
	// Spec is the template every scenario was rendered from.
	Spec Spec `json:"spec"`
	// Seed is the top-level seed; scenario k used rng.Derive(Seed, k).
	Seed uint64 `json:"seed"`
	// Scenarios holds the rendered trajectories in index order.
	Scenarios []Scenario `json:"scenarios"`
}

// GenerateSet renders count scenarios from the spec on a bounded worker
// pool. Scenario k's RNG is seeded rng.Derive(seed, k) and results are
// written to indexed slots, so the output is bit-identical regardless
// of GOMAXPROCS or worker scheduling. workers <= 0 selects
// min(count, GOMAXPROCS).
func GenerateSet(ctx context.Context, sp Spec, count int, seed uint64, workers int) (*Set, error) {
	if count <= 0 {
		return nil, fmt.Errorf("scenario: count %d must be positive", count)
	}
	if count > MaxSetCount {
		return nil, fmt.Errorf("scenario: count %d exceeds limit %d", count, MaxSetCount)
	}
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	if workers <= 0 || workers > count {
		workers = count
	}
	if max := runtime.GOMAXPROCS(0); workers > max {
		workers = max
	}

	setCtx, span := telemetry.StartSpanCtx(ctx, "scenario.set")
	scenarios := make([]Scenario, count)
	var cursor atomic.Int64
	var errMu sync.Mutex
	var firstErr error
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= count || ctx.Err() != nil {
					return
				}
				one := telemetry.StartSpan(setCtx, "scenario.generate")
				sc, err := Generate(sp, rng.Derive(seed, uint64(i)))
				if err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
					one.EndErr(err, telemetry.Int("index", i))
					return
				}
				sc.Index = i
				scenarios[i] = sc
				shocks := 0
				for _, sys := range sc.Systems {
					shocks += sys.Shocks
				}
				metrics.generated.Inc()
				metrics.shocks.Add(uint64(shocks))
				dur := one.End(telemetry.Int("index", i), telemetry.Int("shocks", shocks))
				metrics.duration.Observe(dur.Seconds())
			}
		}()
	}
	wg.Wait()
	span.End(telemetry.Int("count", count))
	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return &Set{Spec: sp, Seed: seed, Scenarios: scenarios}, nil
}

// WriteCSV writes the set as long-form CSV — one row per observation,
// with scenario index, system name, and shape class on every row so the
// file is self-describing and trivially groupable. Output is
// byte-deterministic: fixed row order and shortest-round-trip float
// formatting.
func (s *Set) WriteCSV(w io.Writer) error {
	if _, err := io.WriteString(w, "scenario,system,class,time,value\n"); err != nil {
		return err
	}
	buf := make([]byte, 0, 64)
	for _, sc := range s.Scenarios {
		for _, sys := range sc.Systems {
			for t, v := range sys.Values {
				buf = buf[:0]
				buf = strconv.AppendInt(buf, int64(sc.Index), 10)
				buf = append(buf, ',')
				buf = append(buf, sys.Name...)
				buf = append(buf, ',')
				buf = append(buf, sys.Class...)
				buf = append(buf, ',')
				buf = strconv.AppendInt(buf, int64(t), 10)
				buf = append(buf, ',')
				buf = strconv.AppendFloat(buf, v, 'g', -1, 64)
				buf = append(buf, '\n')
				if _, err := w.Write(buf); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// WriteJSON writes the set as indented JSON (the same shape the HTTP
// and binary transports return).
func (s *Set) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// Classes returns the distinct shape-class tags present in the set,
// sorted.
func (s *Set) Classes() []string {
	seen := map[string]bool{}
	for _, sc := range s.Scenarios {
		for _, sys := range sc.Systems {
			seen[sys.Class] = true
		}
	}
	out := make([]string, 0, len(seen))
	for c := range seen {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// Preset returns a named built-in coupled spec. These are the specs the
// CLI, smoke script, and Monte Carlo experiment use when no spec file
// is given.
func Preset(name string) (Spec, error) {
	switch name {
	case "pair":
		// Two coupled systems: an upstream V-shaped supplier whose
		// degradation drives (and cascades into) a downstream U-shaped
		// consumer with hysteretic recovery and both shock processes.
		return Spec{
			Name:    "pair",
			Horizon: 48,
			Systems: []SystemSpec{
				{
					Name: "upstream", Shape: "V", Depth: 0.05, Noise: 0.002,
					HazardRate: 0.06, RecoveryRate: 0.35,
					Catastrophic: &ShockSpec{Rate: 0.02, Scale: 0.12, Shape: 1.6},
				},
				{
					Name: "downstream", Shape: "U", Depth: 0.04, Noise: 0.002,
					HazardRate: 0.02, RecoveryRate: 0.30,
					Hysteresis: &HysteresisSpec{Trip: 0.93, Reset: 0.97, Damping: 0.35},
					Cumulative: &ShockSpec{Rate: 0.015, Scale: 0.05, Shape: 1.2},
				},
			},
			Couplings: []Coupling{
				{From: "upstream", To: "downstream", Gain: 0.8, Cascade: true},
			},
		}, nil
	case "triad":
		// Three systems in a chain with a feedback edge: infrastructure
		// (L-shaped, cumulative damage) feeds logistics (W-shaped),
		// which feeds demand (V-shaped); depressed demand bleeds back
		// into logistics hazard.
		return Spec{
			Name:    "triad",
			Horizon: 60,
			Systems: []SystemSpec{
				{
					Name: "infrastructure", Shape: "L", Depth: 0.08, Noise: 0.0015,
					HazardRate: 0.03, RecoveryRate: 0.25,
					Cumulative: &ShockSpec{Rate: 0.02, Scale: 0.06, Shape: 1.0},
				},
				{
					Name: "logistics", Shape: "W", Depth: 0.05, Noise: 0.002,
					HazardRate: 0.05, RecoveryRate: 0.40,
					Hysteresis: &HysteresisSpec{Trip: 0.9, Reset: 0.96, Damping: 0.4},
				},
				{
					Name: "demand", Shape: "V", Depth: 0.04, Noise: 0.0025,
					HazardRate: 0.03, RecoveryRate: 0.45,
					Catastrophic: &ShockSpec{Rate: 0.015, Scale: 0.10, Shape: 2.0},
				},
			},
			Couplings: []Coupling{
				{From: "infrastructure", To: "logistics", Gain: 0.9, Cascade: true},
				{From: "logistics", To: "demand", Gain: 0.7},
				{From: "demand", To: "logistics", Gain: 0.3},
			},
		}, nil
	default:
		return Spec{}, fmt.Errorf("scenario: unknown preset %q (have pair, triad)", name)
	}
}

// PresetNames lists the built-in preset names.
func PresetNames() []string { return []string{"pair", "triad"} }
