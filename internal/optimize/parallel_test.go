package optimize

import (
	"context"
	"errors"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// rastrigin2 is a classic multimodal surface: many local minima, global
// minimum 0 at the origin. Pure function — safe for concurrent calls.
func rastrigin2(x []float64) float64 {
	s := 20.0
	for _, xi := range x {
		s += xi*xi - 10*math.Cos(2*math.Pi*xi)
	}
	return s
}

// TestMultiStartWorkersBitIdentical asserts the tentpole determinism
// contract: the same solve at Workers 1, 2, and 8 returns bit-identical
// X, F, and counters.
func TestMultiStartWorkersBitIdentical(t *testing.T) {
	b, err := NewBounds([]float64{-5.12, -5.12}, []float64{5.12, 5.12})
	if err != nil {
		t.Fatal(err)
	}
	base := MultiStartConfig{Starts: 12, Bounds: b, Workers: 1}
	ref, err := MultiStart(rastrigin2, nil, []float64{4, 4}, base)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		cfg := base
		cfg.Workers = workers
		got, err := MultiStart(rastrigin2, nil, []float64{4, 4}, cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got.F != ref.F {
			t.Errorf("workers=%d: F = %v, want %v (bit-identical)", workers, got.F, ref.F)
		}
		for i := range ref.X {
			if got.X[i] != ref.X[i] {
				t.Errorf("workers=%d: X[%d] = %v, want %v (bit-identical)", workers, i, got.X[i], ref.X[i])
			}
		}
		if got.Iterations != ref.Iterations || got.FuncEvals != ref.FuncEvals {
			t.Errorf("workers=%d: counters (%d iters, %d evals), want (%d, %d)",
				workers, got.Iterations, got.FuncEvals, ref.Iterations, ref.FuncEvals)
		}
		if got.Status != ref.Status {
			t.Errorf("workers=%d: status %v, want %v", workers, got.Status, ref.Status)
		}
	}
}

// TestMultiStartParallelPanicFailsOnlyThatStart plants a panic in one
// region of the search box; starts landing there must fail individually
// while the others still produce the winner.
func TestMultiStartParallelPanicFailsOnlyThatStart(t *testing.T) {
	b, err := NewBounds([]float64{-10}, []float64{10})
	if err != nil {
		t.Fatal(err)
	}
	var panics atomic.Int64
	obj := func(x []float64) float64 {
		if x[0] > 5 {
			panics.Add(1)
			panic("poisoned region")
		}
		return (x[0] + 3) * (x[0] + 3)
	}
	r, err := MultiStart(obj, nil, nil, MultiStartConfig{Starts: 12, Bounds: b, Workers: 4})
	if err != nil {
		t.Fatalf("multistart with poisoned region: %v", err)
	}
	if panics.Load() == 0 {
		t.Fatal("test never hit the poisoned region; widen it")
	}
	if math.Abs(r.X[0]+3) > 1e-3 {
		t.Errorf("X = %v, want -3", r.X)
	}
}

// TestMultiStartParallelAllPanic surfaces the first panic when every
// start fails, at any worker count.
func TestMultiStartParallelAllPanic(t *testing.T) {
	b, err := NewBounds([]float64{-1}, []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	obj := func(x []float64) float64 { panic("always") }
	for _, workers := range []int{1, 4} {
		_, err := MultiStart(obj, nil, nil, MultiStartConfig{Starts: 6, Bounds: b, Workers: workers})
		if !errors.Is(err, ErrOptimizerPanic) {
			t.Errorf("workers=%d: err = %v, want ErrOptimizerPanic", workers, err)
		}
	}
}

// TestMultiStartParallelCancellationHammer cancels mid-parallel-solve
// over and over; under -race this doubles as the data-race hammer for
// the worker pool. Every outcome must be either a clean result or a
// wrapped cancellation, never a hang or a torn counter.
func TestMultiStartParallelCancellationHammer(t *testing.T) {
	b, err := NewBounds([]float64{-5.12, -5.12, -5.12}, []float64{5.12, 5.12, 5.12})
	if err != nil {
		t.Fatal(err)
	}
	slow := func(x []float64) float64 {
		time.Sleep(20 * time.Microsecond) // keep workers mid-flight at cancel time
		return rastrigin2(x)
	}
	const rounds = 30
	var wg sync.WaitGroup
	for round := 0; round < rounds; round++ {
		wg.Add(1)
		go func(round int) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(),
				time.Duration(50+round*37)*time.Microsecond)
			defer cancel()
			r, err := MultiStartCtx(ctx, slow, nil, nil, MultiStartConfig{
				Starts: 8, Bounds: b, Workers: 4,
				Local: Options{MaxIterations: 200},
			})
			if err == nil {
				if r.FuncEvals <= 0 {
					t.Errorf("round %d: clean result with no evals", round)
				}
				return
			}
			if !errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, context.Canceled) {
				t.Errorf("round %d: unexpected error: %v", round, err)
			}
		}(round)
	}
	wg.Wait()
}

// TestMultiStartWorkersCapped ensures a worker count beyond the start
// count still solves correctly (pool is clamped to len(starts)).
func TestMultiStartWorkersCapped(t *testing.T) {
	b, err := NewBounds([]float64{-10}, []float64{10})
	if err != nil {
		t.Fatal(err)
	}
	obj := func(x []float64) float64 { return (x[0] - 1) * (x[0] - 1) }
	r, err := MultiStart(obj, nil, nil, MultiStartConfig{Starts: 3, Bounds: b, Workers: 64})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.X[0]-1) > 1e-4 {
		t.Errorf("X = %v, want 1", r.X)
	}
}
