package optimize

import (
	"errors"
	"math"
	"testing"
)

func TestPowellSphere(t *testing.T) {
	r, err := Powell(sphere, []float64{3, -4, 5}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range r.X {
		if math.Abs(v) > 1e-4 {
			t.Errorf("x[%d] = %g, want ~0 (F=%g, status %v)", i, v, r.F, r.Status)
		}
	}
}

func TestPowellQuadraticWithOffset(t *testing.T) {
	obj := func(x []float64) float64 {
		return (x[0]-2)*(x[0]-2) + 3*(x[1]+1)*(x[1]+1) + 7
	}
	r, err := Powell(obj, []float64{0, 0}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.X[0]-2) > 1e-4 || math.Abs(r.X[1]+1) > 1e-4 {
		t.Errorf("X = %v, want (2, -1)", r.X)
	}
	if math.Abs(r.F-7) > 1e-7 {
		t.Errorf("F = %g, want 7", r.F)
	}
}

func TestPowellRosenbrock(t *testing.T) {
	r, err := Powell(rosenbrock, []float64{-1.2, 1}, Options{MaxIterations: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.X[0]-1) > 1e-2 || math.Abs(r.X[1]-1) > 1e-2 {
		t.Errorf("X = %v, want (1, 1); F = %g", r.X, r.F)
	}
}

func TestPowellAgreesWithNelderMead(t *testing.T) {
	// Two independent derivative-free methods must land on the same
	// minimum of a smooth curve-fitting-style objective.
	obj := func(x []float64) float64 {
		var s float64
		for i := 0; i < 20; i++ {
			ti := float64(i)
			want := 2*math.Exp(-0.3*ti) + 0.5
			got := x[0]*math.Exp(-x[1]*ti) + x[2]
			d := got - want
			s += d * d
		}
		return s
	}
	start := []float64{1, 0.1, 0}
	nm, err := NelderMead(obj, start, Options{MaxIterations: 5000})
	if err != nil {
		t.Fatal(err)
	}
	pw, err := Powell(obj, start, Options{MaxIterations: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(nm.F-pw.F) > 1e-6 {
		t.Errorf("NM F=%g vs Powell F=%g", nm.F, pw.F)
	}
	for i := range nm.X {
		if math.Abs(nm.X[i]-pw.X[i]) > 1e-2 {
			t.Errorf("x[%d]: NM %g vs Powell %g", i, nm.X[i], pw.X[i])
		}
	}
}

func TestPowellHandlesNaNRegions(t *testing.T) {
	obj := func(x []float64) float64 {
		if x[0] < 0 {
			return math.NaN()
		}
		return (x[0] - 1) * (x[0] - 1)
	}
	r, err := Powell(obj, []float64{0.3}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.X[0]-1) > 1e-4 {
		t.Errorf("X = %v, want 1", r.X)
	}
}

func TestPowellBadInput(t *testing.T) {
	if _, err := Powell(nil, []float64{1}, Options{}); !errors.Is(err, ErrBadInput) {
		t.Errorf("nil objective: %v", err)
	}
	if _, err := Powell(sphere, nil, Options{}); !errors.Is(err, ErrBadInput) {
		t.Errorf("empty start: %v", err)
	}
}

func TestPowellRespectsBudget(t *testing.T) {
	r, err := Powell(rosenbrock, []float64{-1.2, 1}, Options{MaxIterations: 2})
	if err != nil {
		t.Fatal(err)
	}
	if r.Iterations > 2 {
		t.Errorf("iterations = %d", r.Iterations)
	}
}
