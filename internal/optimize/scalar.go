package optimize

import (
	"fmt"
	"math"
)

// ScalarFunc is a one-dimensional objective.
type ScalarFunc func(x float64) float64

// GoldenSection minimizes f on [a, b] by golden-section search to the
// given absolute x tolerance. f should be unimodal on [a, b]; on
// multimodal functions it converges to some local minimum.
func GoldenSection(f ScalarFunc, a, b, tol float64) (x, fx float64, err error) {
	if f == nil || !(a < b) || math.IsNaN(a) || math.IsNaN(b) {
		return math.NaN(), math.NaN(), fmt.Errorf("%w: need f and a < b", ErrBadInput)
	}
	if tol <= 0 {
		tol = 1e-10
	}
	invPhi := (math.Sqrt(5) - 1) / 2 // 1/φ
	c := b - invPhi*(b-a)
	d := a + invPhi*(b-a)
	fc, fd := sanitize(f(c)), sanitize(f(d))
	for i := 0; i < 500 && b-a > tol; i++ {
		if fc < fd {
			b, d, fd = d, c, fc
			c = b - invPhi*(b-a)
			fc = sanitize(f(c))
		} else {
			a, c, fc = c, d, fd
			d = a + invPhi*(b-a)
			fd = sanitize(f(d))
		}
	}
	if fc < fd {
		return c, fc, nil
	}
	return d, fd, nil
}

// BrentMin minimizes f on [a, b] with Brent's parabolic-interpolation
// method, which converges superlinearly on smooth unimodal functions while
// retaining golden-section robustness.
func BrentMin(f ScalarFunc, a, b, tol float64) (x, fx float64, err error) {
	if f == nil || !(a < b) || math.IsNaN(a) || math.IsNaN(b) {
		return math.NaN(), math.NaN(), fmt.Errorf("%w: need f and a < b", ErrBadInput)
	}
	if tol <= 0 {
		tol = 1e-10
	}
	const (
		cgold = 0.3819660112501051
		eps   = 1e-14
	)
	var d, e float64
	xCur := a + cgold*(b-a)
	w, v := xCur, xCur
	fxv := sanitize(f(xCur))
	fw, fv := fxv, fxv
	for i := 0; i < 500; i++ {
		xm := (a + b) / 2
		tol1 := tol*math.Abs(xCur) + eps
		tol2 := 2 * tol1
		if math.Abs(xCur-xm) <= tol2-(b-a)/2 {
			return xCur, fxv, nil
		}
		useGolden := true
		if math.Abs(e) > tol1 {
			// Fit a parabola through (v, fv), (w, fw), (x, fx).
			r := (xCur - w) * (fxv - fv)
			q := (xCur - v) * (fxv - fw)
			p := (xCur-v)*q - (xCur-w)*r
			q = 2 * (q - r)
			if q > 0 {
				p = -p
			}
			q = math.Abs(q)
			etemp := e
			e = d
			if math.Abs(p) < math.Abs(q*etemp/2) && p > q*(a-xCur) && p < q*(b-xCur) {
				d = p / q
				u := xCur + d
				if u-a < tol2 || b-u < tol2 {
					d = math.Copysign(tol1, xm-xCur)
				}
				useGolden = false
			}
		}
		if useGolden {
			if xCur >= xm {
				e = a - xCur
			} else {
				e = b - xCur
			}
			d = cgold * e
		}
		var u float64
		if math.Abs(d) >= tol1 {
			u = xCur + d
		} else {
			u = xCur + math.Copysign(tol1, d)
		}
		fu := sanitize(f(u))
		if fu <= fxv {
			if u >= xCur {
				a = xCur
			} else {
				b = xCur
			}
			v, w = w, xCur
			fv, fw = fw, fxv
			xCur, fxv = u, fu
		} else {
			if u < xCur {
				a = u
			} else {
				b = u
			}
			if fu <= fw || w == xCur {
				v, fv = w, fw
				w, fw = u, fu
			} else if fu <= fv || v == xCur || v == w {
				v, fv = u, fu
			}
		}
	}
	return xCur, fxv, nil
}
