package optimize

import (
	"errors"
	"math"
	"testing"
)

// expDecayData is y = 2·e^{-0.5 t} sampled on t = 0..9, the canonical
// nonlinear least-squares test problem.
func expDecayResidual(x []float64) ([]float64, error) {
	r := make([]float64, 10)
	for i := range r {
		t := float64(i)
		want := 2 * math.Exp(-0.5*t)
		r[i] = x[0]*math.Exp(-x[1]*t) - want
	}
	return r, nil
}

func TestLeastSquaresLinearFit(t *testing.T) {
	// Fit y = a + b·t to exact data from a=1, b=2.
	res := func(x []float64) ([]float64, error) {
		r := make([]float64, 5)
		for i := range r {
			ti := float64(i)
			r[i] = x[0] + x[1]*ti - (1 + 2*ti)
		}
		return r, nil
	}
	r, err := LeastSquares(res, []float64{0, 0}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.X[0]-1) > 1e-6 || math.Abs(r.X[1]-2) > 1e-6 {
		t.Errorf("X = %v, want (1, 2)", r.X)
	}
	if r.F > 1e-12 {
		t.Errorf("F = %g", r.F)
	}
}

func TestLeastSquaresExpDecay(t *testing.T) {
	r, err := LeastSquares(expDecayResidual, []float64{1, 0.1}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.X[0]-2) > 1e-5 || math.Abs(r.X[1]-0.5) > 1e-5 {
		t.Errorf("X = %v, want (2, 0.5); F = %g, status %v", r.X, r.F, r.Status)
	}
}

func TestLeastSquaresNoisyProblemConverges(t *testing.T) {
	// Deterministic "noise" keeps the minimum near but not at (2, 0.5);
	// LM should still converge to a finite stationary point.
	res := func(x []float64) ([]float64, error) {
		r := make([]float64, 20)
		for i := range r {
			ti := float64(i) / 2
			noise := 0.01 * math.Sin(7*ti)
			r[i] = x[0]*math.Exp(-x[1]*ti) - (2*math.Exp(-0.5*ti) + noise)
		}
		return r, nil
	}
	r, err := LeastSquares(res, []float64{1, 1}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.X[0]-2) > 0.1 || math.Abs(r.X[1]-0.5) > 0.1 {
		t.Errorf("X = %v, want near (2, 0.5)", r.X)
	}
}

func TestLeastSquaresBadInput(t *testing.T) {
	if _, err := LeastSquares(nil, []float64{1}, Options{}); !errors.Is(err, ErrBadInput) {
		t.Errorf("nil residual: %v", err)
	}
	if _, err := LeastSquares(expDecayResidual, nil, Options{}); !errors.Is(err, ErrBadInput) {
		t.Errorf("empty start: %v", err)
	}
	empty := func([]float64) ([]float64, error) { return nil, nil }
	if _, err := LeastSquares(empty, []float64{1}, Options{}); !errors.Is(err, ErrBadInput) {
		t.Errorf("empty residual vector: %v", err)
	}
	failing := func([]float64) ([]float64, error) { return nil, errors.New("boom") }
	if _, err := LeastSquares(failing, []float64{1}, Options{}); err == nil {
		t.Error("failing start residual: want error")
	}
}

func TestLeastSquaresAlreadyAtMinimum(t *testing.T) {
	r, err := LeastSquares(expDecayResidual, []float64{2, 0.5}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.F > 1e-12 {
		t.Errorf("F at exact minimum = %g", r.F)
	}
}

func TestGoldenSection(t *testing.T) {
	x, fx, err := GoldenSection(func(x float64) float64 { return (x - 3) * (x - 3) }, 0, 10, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x-3) > 1e-6 || fx > 1e-10 {
		t.Errorf("GoldenSection = %g (f=%g), want 3", x, fx)
	}
	if _, _, err := GoldenSection(nil, 0, 1, 0); !errors.Is(err, ErrBadInput) {
		t.Errorf("nil func: %v", err)
	}
	if _, _, err := GoldenSection(math.Sin, 2, 1, 0); !errors.Is(err, ErrBadInput) {
		t.Errorf("a >= b: %v", err)
	}
}

func TestBrentMin(t *testing.T) {
	cases := []struct {
		name  string
		f     ScalarFunc
		a, b  float64
		wantX float64
	}{
		{"parabola", func(x float64) float64 { return (x - 2) * (x - 2) }, -5, 5, 2},
		{"quartic", func(x float64) float64 { return math.Pow(x-1, 4) }, -3, 4, 1},
		{"cosine", math.Cos, 0, 2 * math.Pi, math.Pi},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			x, _, err := BrentMin(tc.f, tc.a, tc.b, 1e-10)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(x-tc.wantX) > 1e-4 {
				t.Errorf("x = %g, want %g", x, tc.wantX)
			}
		})
	}
	if _, _, err := BrentMin(nil, 0, 1, 0); !errors.Is(err, ErrBadInput) {
		t.Errorf("nil func: %v", err)
	}
}
