package optimize

import (
	"context"
	"fmt"
	"math"

	"resilience/internal/faultinject"
)

// NelderMead minimizes obj starting from x0 using the Nelder–Mead simplex
// algorithm with the standard reflection/expansion/contraction/shrink
// coefficients (1, 2, 0.5, 0.5). It never evaluates derivatives, which
// makes it the workhorse for the non-smooth least-squares surfaces that
// arise when resilience models are fit to short, noisy series.
func NelderMead(obj Objective, x0 []float64, opts Options) (Result, error) {
	return NelderMeadCtx(context.Background(), obj, x0, opts)
}

// NelderMeadCtx is NelderMead under a context: the context is checked
// before the initial simplex is built and once per major iteration, so a
// cancelled fit stops within one iteration and an already-expired context
// performs no objective evaluations at all. On cancellation the best
// vertex seen so far is returned together with the (wrapped) context
// error. Panics escaping the objective are contained and returned as a
// *PanicError.
func NelderMeadCtx(ctx context.Context, obj Objective, x0 []float64, opts Options) (_ Result, err error) {
	defer recoverToError("nelder-mead", &err)
	if obj == nil || len(x0) == 0 {
		return Result{}, fmt.Errorf("%w: nil objective or empty start", ErrBadInput)
	}
	if cErr := cancelled(ctx); cErr != nil {
		return Result{}, cErr
	}
	opts = opts.withDefaults()
	n := len(x0)

	const (
		alpha = 1.0 // reflection
		gamma = 2.0 // expansion
		rho   = 0.5 // contraction
		sigma = 0.5 // shrink
	)

	evals := 0
	eval := func(x []float64) float64 {
		evals++
		return sanitize(obj(x))
	}

	// Build the initial simplex: x0 plus a perturbation along each axis.
	simplex := make([][]float64, n+1)
	fvals := make([]float64, n+1)
	simplex[0] = append([]float64(nil), x0...)
	fvals[0] = eval(simplex[0])
	for i := 0; i < n; i++ {
		v := append([]float64(nil), x0...)
		step := opts.SimplexScale * math.Max(1, math.Abs(x0[i]))
		v[i] += step
		simplex[i+1] = v
		fvals[i+1] = eval(v)
	}

	order := make([]int, n+1)
	centroid := make([]float64, n)
	xr := make([]float64, n)
	xe := make([]float64, n)
	xc := make([]float64, n)

	// bestVertex picks the lowest vertex, for early-exit paths.
	bestVertex := func() (x []float64, f float64) {
		best := 0
		for i := 1; i <= n; i++ {
			if fvals[i] < fvals[best] {
				best = i
			}
		}
		return append([]float64(nil), simplex[best]...), fvals[best]
	}

	iter := 0
	for ; iter < opts.MaxIterations; iter++ {
		if cErr := cancelled(ctx); cErr != nil {
			x, f := bestVertex()
			return Result{X: x, F: f, Status: Stalled, Iterations: iter, FuncEvals: evals}, cErr
		}
		if faultinject.Enabled() {
			faultinject.Fire("optimize.neldermead.iter")
		}
		// Order vertices by objective value. Insertion sort on the tiny
		// index slice: sort.Slice costs two heap allocations per call
		// (closure + interface header), which at one sort per iteration
		// dominated the optimizer's allocation profile.
		for i := range order {
			order[i] = i
		}
		for i := 1; i <= n; i++ {
			idx := order[i]
			j := i - 1
			for ; j >= 0 && fvals[order[j]] > fvals[idx]; j-- {
				order[j+1] = order[j]
			}
			order[j+1] = idx
		}
		best, worst, secondWorst := order[0], order[n], order[n-1]

		// A fully infeasible simplex (every vertex +Inf) gives the moves no
		// gradient information; iterating the budget out on it just burns
		// CPU. Bail immediately — the multistart driver will try elsewhere.
		if math.IsInf(fvals[best], 1) {
			x, f := bestVertex()
			return Result{X: x, F: f, Status: Stalled, Iterations: iter, FuncEvals: evals}, nil
		}

		// Convergence: spread of function values and simplex size.
		fSpread := math.Abs(fvals[worst] - fvals[best])
		xSpread := 0.0
		for i := 0; i < n; i++ {
			d := math.Abs(simplex[worst][i] - simplex[best][i])
			if d > xSpread {
				xSpread = d
			}
		}
		scale := math.Max(1, math.Abs(fvals[best]))
		if fSpread <= opts.TolF*scale && xSpread <= opts.TolX {
			return Result{
				X: append([]float64(nil), simplex[best]...), F: fvals[best],
				Status: Converged, Iterations: iter, FuncEvals: evals,
			}, nil
		}

		// Centroid of all but the worst vertex.
		for j := 0; j < n; j++ {
			centroid[j] = 0
		}
		for _, idx := range order[:n] {
			for j := 0; j < n; j++ {
				centroid[j] += simplex[idx][j]
			}
		}
		for j := 0; j < n; j++ {
			centroid[j] /= float64(n)
		}

		// Reflection.
		for j := 0; j < n; j++ {
			xr[j] = centroid[j] + alpha*(centroid[j]-simplex[worst][j])
		}
		fr := eval(xr)
		switch {
		case fr < fvals[best]:
			// Expansion.
			for j := 0; j < n; j++ {
				xe[j] = centroid[j] + gamma*(xr[j]-centroid[j])
			}
			fe := eval(xe)
			if fe < fr {
				copy(simplex[worst], xe)
				fvals[worst] = fe
			} else {
				copy(simplex[worst], xr)
				fvals[worst] = fr
			}
		case fr < fvals[secondWorst]:
			copy(simplex[worst], xr)
			fvals[worst] = fr
		default:
			// Contraction: outside if the reflected point improved on the
			// worst vertex, inside otherwise.
			if fr < fvals[worst] {
				for j := 0; j < n; j++ {
					xc[j] = centroid[j] + rho*(xr[j]-centroid[j])
				}
			} else {
				for j := 0; j < n; j++ {
					xc[j] = centroid[j] + rho*(simplex[worst][j]-centroid[j])
				}
			}
			fc := eval(xc)
			if fc < math.Min(fr, fvals[worst]) {
				copy(simplex[worst], xc)
				fvals[worst] = fc
			} else {
				// Shrink every vertex toward the best one.
				for _, idx := range order[1:] {
					for j := 0; j < n; j++ {
						simplex[idx][j] = simplex[best][j] + sigma*(simplex[idx][j]-simplex[best][j])
					}
					fvals[idx] = eval(simplex[idx])
				}
			}
		}
	}

	// Budget exhausted: return the best vertex.
	x, f := bestVertex()
	return Result{
		X: x, F: f,
		Status: MaxIterations, Iterations: iter, FuncEvals: evals,
	}, nil
}
