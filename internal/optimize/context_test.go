package optimize

import (
	"context"
	"errors"
	"math"
	"sync/atomic"
	"testing"
	"time"
)

func ctxSphere(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v * v
	}
	return s
}

func unitBounds(n int) Bounds {
	lo := make([]float64, n)
	hi := make([]float64, n)
	for i := range lo {
		lo[i], hi[i] = -10, 10
	}
	b, _ := NewBounds(lo, hi)
	return b
}

// An already-expired context must return before a single objective
// evaluation, with an error unwrapping to context.DeadlineExceeded.
func TestExpiredContextNoEvaluations(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()

	var evals atomic.Int64
	counting := func(x []float64) float64 {
		evals.Add(1)
		return ctxSphere(x)
	}
	res := func(x []float64) ([]float64, error) {
		evals.Add(1)
		return x, nil
	}
	x0 := []float64{1, 1}

	cases := []struct {
		name string
		run  func() error
	}{
		{"nelder-mead", func() error { _, err := NelderMeadCtx(ctx, counting, x0, Options{}); return err }},
		{"powell", func() error { _, err := PowellCtx(ctx, counting, x0, Options{}); return err }},
		{"least-squares", func() error { _, err := LeastSquaresCtx(ctx, res, x0, Options{}); return err }},
		{"multistart", func() error {
			_, err := MultiStartCtx(ctx, counting, nil, x0, MultiStartConfig{Bounds: unitBounds(2)})
			return err
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			evals.Store(0)
			err := tc.run()
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("err = %v, want DeadlineExceeded", err)
			}
			if n := evals.Load(); n != 0 {
				t.Errorf("%d objective evaluations ran under an expired context", n)
			}
		})
	}
}

// Cancellation mid-run must stop the solver within one iteration: with a
// slow objective that cancels the context itself after a fixed number of
// evaluations, only a bounded number of further evaluations may happen.
func TestCancelMidRunStopsWithinOneIteration(t *testing.T) {
	const cancelAfter = 10
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var evals atomic.Int64
	slow := func(x []float64) float64 {
		if evals.Add(1) == cancelAfter {
			cancel()
		}
		return ctxSphere(x)
	}

	_, err := NelderMeadCtx(ctx, slow, []float64{3, 3, 3, 3}, Options{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want Canceled", err)
	}
	// One Nelder–Mead iteration costs at most n+2 evaluations plus a
	// shrink (n more); anything beyond cancelAfter + 2·(n+2) means the
	// cancellation was not honored within an iteration.
	if n := evals.Load(); n > cancelAfter+12 {
		t.Errorf("%d evaluations after cancellation at %d", n, cancelAfter)
	}
}

// A cancelled multistart must return the context error, not silently
// fall through to "every start failed".
func TestMultiStartCancelPropagates(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var evals atomic.Int64
	obj := func(x []float64) float64 {
		if evals.Add(1) == 5 {
			cancel()
		}
		return ctxSphere(x)
	}
	_, err := MultiStartCtx(ctx, obj, nil, []float64{1, 1}, MultiStartConfig{Bounds: unitBounds(2), Starts: 6})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want Canceled", err)
	}
}

// Panics escaping the objective must surface as typed errors matching
// ErrOptimizerPanic, never as process-level panics.
func TestPanicIsolation(t *testing.T) {
	bomb := func(x []float64) float64 { panic("objective exploded") }
	bombRes := func(x []float64) ([]float64, error) { panic("residual exploded") }
	ctx := context.Background()

	cases := []struct {
		name string
		run  func() error
	}{
		{"nelder-mead", func() error { _, err := NelderMeadCtx(ctx, bomb, []float64{1}, Options{}); return err }},
		{"powell", func() error { _, err := PowellCtx(ctx, bomb, []float64{1}, Options{}); return err }},
		{"least-squares", func() error { _, err := LeastSquaresCtx(ctx, bombRes, []float64{1}, Options{}); return err }},
		{"multistart", func() error {
			_, err := MultiStartCtx(ctx, bomb, nil, []float64{1, 1}, MultiStartConfig{Bounds: unitBounds(2)})
			return err
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.run()
			if !errors.Is(err, ErrOptimizerPanic) {
				t.Fatalf("err = %v, want ErrOptimizerPanic", err)
			}
			var pe *PanicError
			if !errors.As(err, &pe) || pe.Value == nil {
				t.Errorf("error does not carry the panic value: %v", err)
			}
		})
	}
}

// The context variants must agree with the background-context entry
// points on a well-behaved problem.
func TestCtxVariantsMatchPlain(t *testing.T) {
	x0 := []float64{2, -3}
	plain, err1 := NelderMead(ctxSphere, x0, Options{})
	ctxed, err2 := NelderMeadCtx(context.Background(), ctxSphere, x0, Options{})
	if err1 != nil || err2 != nil {
		t.Fatalf("errs: %v, %v", err1, err2)
	}
	if math.Abs(plain.F-ctxed.F) > 1e-12 {
		t.Errorf("F mismatch: %g vs %g", plain.F, ctxed.F)
	}
}

// An all-infeasible region must stall quickly instead of spinning the
// full iteration budget on +Inf values.
func TestInfeasibleSimplexStallsFast(t *testing.T) {
	inf := func(x []float64) float64 { return math.Inf(1) }
	r, err := NelderMeadCtx(context.Background(), inf, []float64{1, 1}, Options{MaxIterations: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != Stalled {
		t.Errorf("status = %v, want Stalled", r.Status)
	}
	if r.FuncEvals > 10 {
		t.Errorf("%d evaluations on a hopeless simplex", r.FuncEvals)
	}
}
