package optimize

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"resilience/internal/telemetry"
)

// Halton returns the n-th element (1-indexed) of the Halton low-discrepancy
// sequence in the given prime base. Halton points fill the unit interval
// far more evenly than pseudorandom draws, which makes small multistart
// budgets effective — and, unlike math/rand, the sequence is reproducible
// by construction with no seed plumbing.
func Halton(n, base int) float64 {
	f := 1.0
	r := 0.0
	for n > 0 {
		f /= float64(base)
		r += f * float64(n%base)
		n /= base
	}
	return r
}

// _haltonBases are the first primes, one per parameter dimension.
var _haltonBases = []int{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37}

// StartPoints generates count quasirandom starting points inside the
// finite box [lo, hi]^n using the Halton sequence. Infinite bounds are
// replaced by a default window around zero, which is adequate for the
// scaled parameters used by the resilience models.
func StartPoints(b Bounds, count int) ([][]float64, error) {
	n := b.Len()
	if n == 0 || count <= 0 {
		return nil, fmt.Errorf("%w: empty bounds or non-positive count", ErrBadInput)
	}
	if n > len(_haltonBases) {
		return nil, fmt.Errorf("%w: at most %d dimensions supported", ErrBadInput, len(_haltonBases))
	}
	const window = 10.0
	pts := make([][]float64, count)
	for k := 0; k < count; k++ {
		x := make([]float64, n)
		for j := 0; j < n; j++ {
			u := Halton(k+1, _haltonBases[j])
			lo, hi := b.Lo[j], b.Hi[j]
			if math.IsInf(lo, -1) {
				lo = -window
			}
			if math.IsInf(hi, 1) {
				hi = math.Max(lo, -window) + 2*window
			}
			x[j] = lo + u*(hi-lo)
		}
		pts[k] = x
	}
	return pts, nil
}

// MultiStartConfig configures MultiStart.
type MultiStartConfig struct {
	// Starts is the number of Nelder–Mead launches (default 8). The first
	// start is always the caller-provided initial guess when one is given.
	Starts int
	// Bounds constrains the search box; required.
	Bounds Bounds
	// Local configures each local solve.
	Local Options
	// Polish enables a Levenberg–Marquardt refinement of the best
	// Nelder–Mead solution when a Residual is available.
	Polish bool
	// Workers bounds how many local solves run concurrently. 0 selects
	// min(Starts, GOMAXPROCS); 1 runs the starts sequentially on the
	// calling goroutine with no pool overhead. Whatever the setting, the
	// winner is chosen deterministically — best objective value, ties
	// broken by lowest start index — so parallel and sequential runs of
	// an uncancelled solve return bit-identical results. With Workers
	// other than 1 the objective must be safe for concurrent calls; the
	// model objectives used by the fitting pipeline are pure functions
	// over read-only data and qualify.
	Workers int
	// Jacobian, when non-nil alongside a Residual, switches each start to
	// a Levenberg–Marquardt-first strategy: the analytic-Jacobian LM solve
	// runs from the start point in the bounds transform's internal
	// coordinates — the Jacobian re-expressed by the chain rule through
	// DecodeDerivInto — so every iterate stays inside the box by
	// construction, and the Nelder–Mead simplex is launched only when LM
	// fails to converge. Gradient steps replace thousands of simplex
	// objective evaluations, which is where the bulk of the
	// analytic-Jacobian speedup comes from. Like the objective, the
	// Jacobian must tolerate concurrent calls when Workers is not 1 —
	// per-call scratch is passed in, so pure closed-form fills qualify.
	Jacobian JacobianFunc
	// ResidualFactory supplies an independent Residual per worker for the
	// LM-first strategy. The Residual contract lets implementations reuse
	// one output buffer across calls, which becomes a data race once
	// residuals are evaluated from concurrent starts; a factory gives
	// each worker a private buffer without giving up the allocation-free
	// inner loop. When nil, the shared Residual is used on every worker —
	// then it must itself be safe for concurrent calls.
	ResidualFactory func() Residual
}

// MultiStart minimizes obj over the bounded box by launching Nelder–Mead
// from quasirandom start points (plus the optional initial guess x0) and
// keeping the best local solution. If cfg.Polish is set and res is
// non-nil, the winner is refined with Levenberg–Marquardt. The objective
// is evaluated in the original (bounded) coordinates; the box is enforced
// through the smooth Bounds transform.
func MultiStart(obj Objective, res Residual, x0 []float64, cfg MultiStartConfig) (Result, error) {
	return MultiStartCtx(context.Background(), obj, res, x0, cfg)
}

// startOutcome records one local solve. Each worker writes only its own
// claimed indices, so the slice needs no locking; the deterministic
// winner scan reads it after all workers have joined.
type startOutcome struct {
	res Result
	err error
	// orig marks a result expressed in original (bounded) coordinates —
	// accepted LM-first solves are decoded by their worker, Nelder–Mead
	// results live in the smooth z-transform until the winner is decoded.
	orig bool
}

// MultiStartCtx is MultiStart under a context. The starts are fanned
// across a bounded worker pool (cfg.Workers); the context is consulted
// before every local launch and threaded into each local solver, so
// cancellation stops every worker within one optimizer iteration no
// matter which starts are running. A start that panics is contained by
// the local solver's recover guard and fails only that start; only if
// every start fails is the first panic (by start index) surfaced, as a
// *PanicError unwrapping to ErrOptimizerPanic. On cancellation the best
// local solution found before the cutoff is returned along with the
// wrapped context error.
//
// The winner is selected after all starts settle: lowest objective
// value, ties broken by lowest start index. Uncancelled runs therefore
// return bit-identical results at any worker count.
func MultiStartCtx(ctx context.Context, obj Objective, res Residual, x0 []float64, cfg MultiStartConfig) (Result, error) {
	if obj == nil {
		return Result{}, fmt.Errorf("%w: nil objective", ErrBadInput)
	}
	if cfg.Bounds.Len() == 0 {
		return Result{}, fmt.Errorf("%w: bounds required", ErrBadInput)
	}
	if cfg.Starts <= 0 {
		cfg.Starts = 8
	}
	if cErr := cancelled(ctx); cErr != nil {
		return Result{}, cErr
	}

	starts, err := StartPoints(cfg.Bounds, cfg.Starts)
	if err != nil {
		return Result{}, err
	}
	if len(x0) == cfg.Bounds.Len() {
		starts = append([][]float64{x0}, starts[:len(starts)-1]...)
	}

	workers := cfg.Workers
	if workers <= 0 {
		workers = min(len(starts), runtime.GOMAXPROCS(0))
	}
	if workers > len(starts) {
		workers = len(starts)
	}

	var (
		totalIter int
		totalEval int
		totalJac  int
	)
	// One span per multistart solve, carrying the aggregate iteration and
	// evaluation counts. The cost without an active trace is a context
	// lookup and two clock reads per solve — never per iteration.
	ctx, span := telemetry.StartSpanCtx(ctx, "optimize.multistart")
	defer func() {
		span.End(telemetry.Int("starts", cfg.Starts), telemetry.Int("workers", workers),
			telemetry.Int("iterations", totalIter), telemetry.Int("evals", totalEval),
			telemetry.Int("jac_evals", totalJac))
	}()

	// Each worker claims start indices from a shared atomic cursor and
	// records outcomes into its claimed slots. The z0/decode scratch
	// buffers are per-worker, so no allocation happens per objective
	// evaluation and no state is shared between concurrent solves.
	outcomes := make([]startOutcome, len(starts))
	var cursor atomic.Int64
	runWorker := func() {
		n := cfg.Bounds.Len()
		buf := make([]float64, n)
		z0 := make([]float64, n)
		wrapped := func(z []float64) float64 {
			cfg.Bounds.DecodeInto(buf, z)
			return obj(buf)
		}
		wres := res
		if cfg.ResidualFactory != nil {
			wres = cfg.ResidualFactory()
		}
		// The LM-first residual and Jacobian work in the internal
		// z-coordinates: decode into per-worker scratch, evaluate in the
		// original space, and scale Jacobian columns by the decode
		// derivative (chain rule). LM iterates therefore never leave the
		// box, which is what lets a converged solve skip Nelder–Mead.
		var (
			zres Residual
			zjac JacobianFunc
		)
		if cfg.Jacobian != nil && wres != nil {
			xbuf := make([]float64, n)
			dbuf := make([]float64, n)
			zres = func(z []float64) ([]float64, error) {
				cfg.Bounds.DecodeInto(xbuf, z)
				return wres(xbuf)
			}
			zjac = func(z []float64, jac [][]float64) error {
				cfg.Bounds.DecodeInto(xbuf, z)
				if err := cfg.Jacobian(xbuf, jac); err != nil {
					return err
				}
				cfg.Bounds.DecodeDerivInto(dbuf, z)
				for i := range jac {
					row := jac[i]
					for j := range row {
						row[j] *= dbuf[j]
					}
				}
				return nil
			}
		}
		for {
			i := int(cursor.Add(1)) - 1
			if i >= len(starts) {
				return
			}
			if cErr := cancelled(ctx); cErr != nil {
				outcomes[i].err = cErr
				continue
			}
			// LM-first: with an analytic Jacobian a gradient solve from the
			// start point replaces the whole simplex search whenever it
			// converges. F is re-expressed through the objective (LM
			// minimizes ½‖r‖², the objective is ‖r‖²) so results from both
			// strategies compare on the same scale.
			cfg.Bounds.EncodeInto(z0, starts[i])
			if zres != nil {
				lmRes, lmErr := LeastSquaresJacCtx(ctx, zres, zjac, z0, cfg.Local)
				if lmErr == nil && lmRes.Status == Converged {
					x := cfg.Bounds.Decode(lmRes.X)
					lmRes.FuncEvals++
					if f := sanitize(obj(x)); !math.IsInf(f, 1) {
						lmRes.X = x
						lmRes.F = f
						outcomes[i] = startOutcome{res: lmRes, orig: true}
						continue
					}
				}
				if lmErr != nil && isCancellation(lmErr) {
					outcomes[i] = startOutcome{res: lmRes, err: lmErr}
					continue
				}
				// LM stalled: fall through to Nelder–Mead, keeping the
				// failed attempt's cost in the totals.
				outcomes[i].res.Iterations += lmRes.Iterations
				outcomes[i].res.FuncEvals += lmRes.FuncEvals
				outcomes[i].res.JacEvals += lmRes.JacEvals
			}
			nmRes, nmErr := NelderMeadCtx(ctx, wrapped, z0, cfg.Local)
			nmRes.Iterations += outcomes[i].res.Iterations
			nmRes.FuncEvals += outcomes[i].res.FuncEvals
			nmRes.JacEvals += outcomes[i].res.JacEvals
			outcomes[i].res, outcomes[i].err = nmRes, nmErr
		}
	}
	if workers == 1 {
		runWorker()
	} else {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				runWorker()
			}()
		}
		wg.Wait()
	}

	// Deterministic aggregation in start-index order.
	var (
		best       Result
		bestOrig   bool
		haveBest   bool
		firstPanic error
		cancelErr  error
	)
	for i := range outcomes {
		o := &outcomes[i]
		totalIter += o.res.Iterations
		totalEval += o.res.FuncEvals
		totalJac += o.res.JacEvals
		switch {
		case o.err == nil:
			if !haveBest || o.res.F < best.F {
				best = o.res
				bestOrig = o.orig
				haveBest = true
			}
		case isCancellation(o.err):
			if cancelErr == nil {
				cancelErr = o.err
			}
		default:
			if firstPanic == nil {
				firstPanic = o.err
			}
		}
	}
	if haveBest && !bestOrig {
		best.X = cfg.Bounds.Decode(best.X)
	}
	if cancelErr != nil {
		if haveBest {
			best.Iterations = totalIter
			best.FuncEvals = totalEval
			best.JacEvals = totalJac
			return best, cancelErr
		}
		return Result{}, cancelErr
	}
	if !haveBest {
		if firstPanic != nil {
			return Result{}, firstPanic
		}
		return Result{}, fmt.Errorf("%w: every start failed", ErrBadInput)
	}

	// A winner that already came from a converged LM solve is at a
	// gradient-norm stationary point; polishing it again would spend an
	// extra solve to move nowhere, so polish only Nelder–Mead winners.
	if cfg.Polish && res != nil && !bestOrig {
		if polished, lmErr := LeastSquaresJacCtx(ctx, res, cfg.Jacobian, best.X, cfg.Local); lmErr == nil {
			f := sanitize(obj(polished.X))
			totalIter += polished.Iterations
			totalEval += polished.FuncEvals + 1
			totalJac += polished.JacEvals
			if f < best.F && cfg.Bounds.Contains(polished.X) {
				best.X = polished.X
				best.F = f
				best.Status = polished.Status
			}
		}
	}
	best.Iterations = totalIter
	best.FuncEvals = totalEval
	best.JacEvals = totalJac
	return best, nil
}
