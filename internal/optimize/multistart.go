package optimize

import (
	"context"
	"fmt"
	"math"

	"resilience/internal/telemetry"
)

// Halton returns the n-th element (1-indexed) of the Halton low-discrepancy
// sequence in the given prime base. Halton points fill the unit interval
// far more evenly than pseudorandom draws, which makes small multistart
// budgets effective — and, unlike math/rand, the sequence is reproducible
// by construction with no seed plumbing.
func Halton(n, base int) float64 {
	f := 1.0
	r := 0.0
	for n > 0 {
		f /= float64(base)
		r += f * float64(n%base)
		n /= base
	}
	return r
}

// _haltonBases are the first primes, one per parameter dimension.
var _haltonBases = []int{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37}

// StartPoints generates count quasirandom starting points inside the
// finite box [lo, hi]^n using the Halton sequence. Infinite bounds are
// replaced by a default window around zero, which is adequate for the
// scaled parameters used by the resilience models.
func StartPoints(b Bounds, count int) ([][]float64, error) {
	n := b.Len()
	if n == 0 || count <= 0 {
		return nil, fmt.Errorf("%w: empty bounds or non-positive count", ErrBadInput)
	}
	if n > len(_haltonBases) {
		return nil, fmt.Errorf("%w: at most %d dimensions supported", ErrBadInput, len(_haltonBases))
	}
	const window = 10.0
	pts := make([][]float64, count)
	for k := 0; k < count; k++ {
		x := make([]float64, n)
		for j := 0; j < n; j++ {
			u := Halton(k+1, _haltonBases[j])
			lo, hi := b.Lo[j], b.Hi[j]
			if math.IsInf(lo, -1) {
				lo = -window
			}
			if math.IsInf(hi, 1) {
				hi = math.Max(lo, -window) + 2*window
			}
			x[j] = lo + u*(hi-lo)
		}
		pts[k] = x
	}
	return pts, nil
}

// MultiStartConfig configures MultiStart.
type MultiStartConfig struct {
	// Starts is the number of Nelder–Mead launches (default 8). The first
	// start is always the caller-provided initial guess when one is given.
	Starts int
	// Bounds constrains the search box; required.
	Bounds Bounds
	// Local configures each local solve.
	Local Options
	// Polish enables a Levenberg–Marquardt refinement of the best
	// Nelder–Mead solution when a Residual is available.
	Polish bool
}

// MultiStart minimizes obj over the bounded box by launching Nelder–Mead
// from quasirandom start points (plus the optional initial guess x0) and
// keeping the best local solution. If cfg.Polish is set and res is
// non-nil, the winner is refined with Levenberg–Marquardt. The objective
// is evaluated in the original (bounded) coordinates; the box is enforced
// through the smooth Bounds transform.
func MultiStart(obj Objective, res Residual, x0 []float64, cfg MultiStartConfig) (Result, error) {
	return MultiStartCtx(context.Background(), obj, res, x0, cfg)
}

// MultiStartCtx is MultiStart under a context. The context is consulted
// before every local launch and threaded into each local solver, so
// cancellation takes effect within one optimizer iteration no matter
// which start is running. A start that panics is contained by the local
// solver's recover guard and counts as a failed start; only if every
// start fails is the first panic surfaced (as a *PanicError unwrapping
// to ErrOptimizerPanic). On cancellation the best local solution found
// before the cutoff is returned along with the wrapped context error.
func MultiStartCtx(ctx context.Context, obj Objective, res Residual, x0 []float64, cfg MultiStartConfig) (Result, error) {
	if obj == nil {
		return Result{}, fmt.Errorf("%w: nil objective", ErrBadInput)
	}
	if cfg.Bounds.Len() == 0 {
		return Result{}, fmt.Errorf("%w: bounds required", ErrBadInput)
	}
	if cfg.Starts <= 0 {
		cfg.Starts = 8
	}
	if cErr := cancelled(ctx); cErr != nil {
		return Result{}, cErr
	}

	wrapped := func(z []float64) float64 {
		return obj(cfg.Bounds.Decode(z))
	}

	starts, err := StartPoints(cfg.Bounds, cfg.Starts)
	if err != nil {
		return Result{}, err
	}
	if len(x0) == cfg.Bounds.Len() {
		starts = append([][]float64{x0}, starts[:len(starts)-1]...)
	}

	var (
		best       Result
		haveBest   bool
		totalIter  int
		totalEval  int
		firstPanic error
	)
	// One span per multistart solve, carrying the aggregate iteration and
	// evaluation counts. The cost without an active trace is a context
	// lookup and two clock reads per solve — never per iteration.
	span := telemetry.StartSpan(ctx, "optimize.multistart")
	defer func() {
		span.End(telemetry.Int("starts", cfg.Starts),
			telemetry.Int("iterations", totalIter), telemetry.Int("evals", totalEval))
	}()
	for _, start := range starts {
		if cErr := cancelled(ctx); cErr != nil {
			if haveBest {
				best.Iterations = totalIter
				best.FuncEvals = totalEval
				return best, cErr
			}
			return Result{}, cErr
		}
		z0 := cfg.Bounds.Encode(start)
		r, nmErr := NelderMeadCtx(ctx, wrapped, z0, cfg.Local)
		totalIter += r.Iterations
		totalEval += r.FuncEvals
		if nmErr != nil {
			if isCancellation(nmErr) {
				if haveBest {
					best.Iterations = totalIter
					best.FuncEvals = totalEval
					return best, nmErr
				}
				return Result{}, nmErr
			}
			if firstPanic == nil {
				firstPanic = nmErr
			}
			continue
		}
		if !haveBest || r.F < best.F {
			r.X = cfg.Bounds.Decode(r.X)
			best = r
			haveBest = true
		}
	}
	if !haveBest {
		if firstPanic != nil {
			return Result{}, firstPanic
		}
		return Result{}, fmt.Errorf("%w: every start failed", ErrBadInput)
	}

	if cfg.Polish && res != nil {
		if polished, lmErr := LeastSquaresCtx(ctx, res, best.X, cfg.Local); lmErr == nil {
			f := sanitize(obj(polished.X))
			totalIter += polished.Iterations
			totalEval += polished.FuncEvals
			if f < best.F && cfg.Bounds.Contains(polished.X) {
				best.X = polished.X
				best.F = f
				best.Status = polished.Status
			}
		}
	}
	best.Iterations = totalIter
	best.FuncEvals = totalEval
	return best, nil
}
