package optimize

import (
	"errors"
	"math"
	"testing"
)

func sphere(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v * v
	}
	return s
}

func rosenbrock(x []float64) float64 {
	var s float64
	for i := 0; i < len(x)-1; i++ {
		a := x[i+1] - x[i]*x[i]
		b := 1 - x[i]
		s += 100*a*a + b*b
	}
	return s
}

func TestNelderMeadSphere(t *testing.T) {
	r, err := NelderMead(sphere, []float64{3, -4, 5}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != Converged {
		t.Errorf("status = %v", r.Status)
	}
	for i, v := range r.X {
		if math.Abs(v) > 1e-5 {
			t.Errorf("x[%d] = %g, want ~0", i, v)
		}
	}
	if r.F > 1e-10 {
		t.Errorf("F = %g", r.F)
	}
}

func TestNelderMeadRosenbrock2D(t *testing.T) {
	r, err := NelderMead(rosenbrock, []float64{-1.2, 1}, Options{MaxIterations: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.X[0]-1) > 1e-4 || math.Abs(r.X[1]-1) > 1e-4 {
		t.Errorf("X = %v, want (1, 1); F = %g", r.X, r.F)
	}
}

func TestNelderMeadQuadraticWithOffset(t *testing.T) {
	obj := func(x []float64) float64 {
		return (x[0]-2)*(x[0]-2) + 3*(x[1]+1)*(x[1]+1) + 7
	}
	r, err := NelderMead(obj, []float64{0, 0}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.X[0]-2) > 1e-5 || math.Abs(r.X[1]+1) > 1e-5 {
		t.Errorf("X = %v, want (2, -1)", r.X)
	}
	if math.Abs(r.F-7) > 1e-9 {
		t.Errorf("F = %g, want 7", r.F)
	}
}

func TestNelderMeadHandlesNaNRegions(t *testing.T) {
	// Objective is NaN for x < 0; minimum at x = 1 from start in the
	// feasible region. The solver must not get stuck on NaN.
	obj := func(x []float64) float64 {
		if x[0] < 0 {
			return math.NaN()
		}
		return (x[0] - 1) * (x[0] - 1)
	}
	r, err := NelderMead(obj, []float64{0.1}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.X[0]-1) > 1e-5 {
		t.Errorf("X = %v, want 1", r.X)
	}
}

func TestNelderMeadBadInput(t *testing.T) {
	if _, err := NelderMead(nil, []float64{1}, Options{}); !errors.Is(err, ErrBadInput) {
		t.Errorf("nil objective: %v", err)
	}
	if _, err := NelderMead(sphere, nil, Options{}); !errors.Is(err, ErrBadInput) {
		t.Errorf("empty start: %v", err)
	}
}

func TestNelderMeadRespectsIterationBudget(t *testing.T) {
	r, err := NelderMead(rosenbrock, []float64{-1.2, 1}, Options{MaxIterations: 5})
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != MaxIterations {
		t.Errorf("status = %v, want MaxIterations", r.Status)
	}
	if r.Iterations > 5 {
		t.Errorf("iterations = %d", r.Iterations)
	}
}

func TestStatusString(t *testing.T) {
	tests := []struct {
		s    Status
		want string
	}{
		{Converged, "converged"},
		{MaxIterations, "max-iterations"},
		{Stalled, "stalled"},
		{Status(99), "unknown"},
	}
	for _, tt := range tests {
		if got := tt.s.String(); got != tt.want {
			t.Errorf("Status(%d).String() = %q, want %q", tt.s, got, tt.want)
		}
	}
}
