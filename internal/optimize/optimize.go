// Package optimize provides the derivative-free and least-squares
// optimizers used to fit resilience models by least squares (Eq. 8 of the
// paper): Nelder–Mead simplex search, Levenberg–Marquardt with a numerical
// Jacobian, golden-section and Brent scalar minimization, box-constraint
// parameter transforms, and a deterministic multistart driver.
//
// Everything is hand-rolled on the standard library; there is no
// dependency on gonum or any other numerical package.
package optimize

import (
	"context"
	"errors"
	"fmt"
	"math"
)

// Objective is a scalar-valued function of a parameter vector. Objectives
// may return +Inf or NaN for infeasible points; the solvers treat such
// points as arbitrarily bad rather than erroring.
type Objective func(x []float64) float64

// Residual is a vector-valued function whose squared norm is minimized by
// least-squares solvers. Implementations may reuse the returned slice
// across calls (the solvers copy anything they retain), which lets hot
// fitting paths evaluate residuals without a per-call allocation.
type Residual func(x []float64) ([]float64, error)

// Status describes how an optimization run terminated.
type Status int

// Termination statuses.
const (
	// Converged means the tolerance criteria were met.
	Converged Status = iota + 1
	// MaxIterations means the iteration budget ran out first; the result
	// is still the best point seen.
	MaxIterations
	// Stalled means the solver could make no further progress (e.g. a
	// degenerate simplex or singular normal equations) before meeting its
	// tolerances; the best point seen is returned.
	Stalled
)

// String returns a human-readable status name.
func (s Status) String() string {
	switch s {
	case Converged:
		return "converged"
	case MaxIterations:
		return "max-iterations"
	case Stalled:
		return "stalled"
	default:
		return "unknown"
	}
}

// Result is the outcome of an optimization run.
type Result struct {
	// X is the best parameter vector found.
	X []float64
	// F is the objective value at X.
	F float64
	// Status reports why the run stopped.
	Status Status
	// Iterations is the number of major iterations performed.
	Iterations int
	// FuncEvals is the number of objective or residual evaluations.
	FuncEvals int
	// JacEvals is the number of analytic Jacobian fills. Numerical
	// Jacobians cost residual evaluations and are counted in FuncEvals
	// instead, so the two never double-count the same work.
	JacEvals int
}

// Options configures the iterative solvers. The zero value selects
// sensible defaults via withDefaults.
type Options struct {
	// MaxIterations bounds the number of major iterations (default 2000).
	MaxIterations int
	// TolF is the function-value convergence tolerance (default 1e-12).
	TolF float64
	// TolX is the parameter convergence tolerance (default 1e-10).
	TolX float64
	// SimplexScale sets the initial Nelder–Mead simplex edge relative to
	// each coordinate's magnitude (default 0.05).
	SimplexScale float64
}

func (o Options) withDefaults() Options {
	if o.MaxIterations <= 0 {
		o.MaxIterations = 2000
	}
	if o.TolF <= 0 {
		o.TolF = 1e-12
	}
	if o.TolX <= 0 {
		o.TolX = 1e-10
	}
	if o.SimplexScale <= 0 {
		o.SimplexScale = 0.05
	}
	return o
}

// ErrBadInput is returned when a solver is invoked with an unusable
// starting point or malformed configuration.
var ErrBadInput = errors.New("optimize: bad input")

// ErrOptimizerPanic is the sentinel matched by errors.Is when a panic
// escaped an objective, residual, or solver internals and was contained
// by the entry-point recover guard. Callers get a typed error instead of
// a torn-down goroutine, so one pathological model cannot crash a server
// worker.
var ErrOptimizerPanic = errors.New("optimize: optimizer panicked")

// PanicError wraps a recovered panic value with the solver it escaped
// from. It unwraps to ErrOptimizerPanic.
type PanicError struct {
	// Site names the solver or entry point that panicked.
	Site string
	// Value is the recovered panic value.
	Value any
}

// Error formats the panic site and value.
func (e *PanicError) Error() string {
	return fmt.Sprintf("optimize: panic in %s: %v", e.Site, e.Value)
}

// Unwrap makes errors.Is(err, ErrOptimizerPanic) true.
func (e *PanicError) Unwrap() error { return ErrOptimizerPanic }

// recoverToError converts an in-flight panic into a *PanicError assigned
// to *err. Install with defer at every exported solver entry point.
func recoverToError(site string, err *error) {
	if r := recover(); r != nil {
		*err = &PanicError{Site: site, Value: r}
	}
}

// cancelled returns a wrapped context error when ctx is done, nil
// otherwise. The wrap preserves errors.Is(err, context.Canceled) and
// errors.Is(err, context.DeadlineExceeded).
func cancelled(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("optimize: cancelled: %w", err)
	}
	return nil
}

// isCancellation reports whether err stems from context cancellation or
// deadline expiry (possibly wrapped).
func isCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// sanitize maps NaN objective values to +Inf so comparisons stay total.
func sanitize(f float64) float64 {
	if math.IsNaN(f) {
		return math.Inf(1)
	}
	return f
}
