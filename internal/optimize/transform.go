package optimize

import (
	"fmt"
	"math"
)

// Bounds describes per-parameter box constraints. An infinite bound on
// either side leaves that side unconstrained. Bounds are enforced by a
// smooth change of variables rather than by clipping, so unconstrained
// solvers (Nelder–Mead, LM) can be used directly: the solver works in an
// unbounded internal space and Decode maps internal points into the box.
type Bounds struct {
	Lo []float64
	Hi []float64
}

// NewBounds constructs Bounds and validates that lo[i] < hi[i] wherever
// both are finite.
func NewBounds(lo, hi []float64) (Bounds, error) {
	if len(lo) != len(hi) {
		return Bounds{}, fmt.Errorf("%w: bounds length mismatch %d vs %d", ErrBadInput, len(lo), len(hi))
	}
	for i := range lo {
		if math.IsNaN(lo[i]) || math.IsNaN(hi[i]) {
			return Bounds{}, fmt.Errorf("%w: NaN bound at index %d", ErrBadInput, i)
		}
		if lo[i] >= hi[i] {
			return Bounds{}, fmt.Errorf("%w: lo >= hi at index %d (%g >= %g)", ErrBadInput, i, lo[i], hi[i])
		}
	}
	return Bounds{Lo: lo, Hi: hi}, nil
}

// Unbounded returns Bounds that constrain nothing, for n parameters.
func Unbounded(n int) Bounds {
	lo := make([]float64, n)
	hi := make([]float64, n)
	for i := 0; i < n; i++ {
		lo[i] = math.Inf(-1)
		hi[i] = math.Inf(1)
	}
	return Bounds{Lo: lo, Hi: hi}
}

// Positive returns Bounds constraining all n parameters to (0, +Inf).
func Positive(n int) Bounds {
	lo := make([]float64, n)
	hi := make([]float64, n)
	for i := 0; i < n; i++ {
		hi[i] = math.Inf(1)
	}
	return Bounds{Lo: lo, Hi: hi}
}

// Len returns the number of parameters the bounds cover.
func (b Bounds) Len() int { return len(b.Lo) }

// Decode maps an unbounded internal vector into the box:
//   - both bounds finite: logistic map onto (lo, hi)
//   - only lo finite:     lo + e^z
//   - only hi finite:     hi - e^z
//   - neither finite:     identity
func (b Bounds) Decode(z []float64) []float64 {
	x := make([]float64, len(z))
	b.DecodeInto(x, z)
	return x
}

// DecodeInto is Decode writing into a caller-provided destination, so the
// optimizer hot path can map internal points into the box without a
// per-evaluation allocation. dst and z must have the bounds' length; dst
// may alias z.
func (b Bounds) DecodeInto(dst, z []float64) {
	for i, zi := range z {
		lo, hi := b.Lo[i], b.Hi[i]
		loFin, hiFin := !math.IsInf(lo, -1), !math.IsInf(hi, 1)
		switch {
		case loFin && hiFin:
			// Clamp the logistic away from 0 and 1 so that extreme
			// internal values cannot saturate onto the boundary in
			// floating point.
			p := math.Min(math.Max(logistic(zi), 1e-12), 1-1e-12)
			dst[i] = lo + (hi-lo)*p
		case loFin:
			dst[i] = lo + expFloor(zi, lo)
		case hiFin:
			dst[i] = hi - expFloor(zi, hi)
		default:
			dst[i] = zi
		}
	}
}

// expFloor is exp(z) bounded below so that anchor ± exp(z) stays strictly
// off the anchor even when exp(z) underflows relative to |anchor|.
func expFloor(z, anchor float64) float64 {
	e := math.Exp(z)
	floor := 1e-12 * math.Max(1, math.Abs(anchor))
	if e < floor {
		return floor
	}
	return e
}

// DecodeDerivInto fills dst with the elementwise derivative d decode/dz
// at z. Gradient solvers that run in the internal coordinates use it to
// re-express a Jacobian computed in original coordinates: by the chain
// rule, column j of the internal-coordinate Jacobian is column j of the
// original one scaled by dst[j]. Where Decode's saturation clamps are
// active the true derivative is zero; the smooth (unclamped) derivative
// is returned instead, which is vanishingly small there and freezes the
// coordinate without zeroing the whole column exactly.
func (b Bounds) DecodeDerivInto(dst, z []float64) {
	for i, zi := range z {
		lo, hi := b.Lo[i], b.Hi[i]
		loFin, hiFin := !math.IsInf(lo, -1), !math.IsInf(hi, 1)
		switch {
		case loFin && hiFin:
			p := logistic(zi)
			dst[i] = (hi - lo) * p * (1 - p)
		case loFin:
			dst[i] = math.Exp(zi)
		case hiFin:
			dst[i] = -math.Exp(zi)
		default:
			dst[i] = 1
		}
	}
}

// Encode maps an interior point of the box to internal coordinates; it is
// the inverse of Decode. Points on or outside the box are nudged inside
// first so that starting points on a boundary remain usable.
func (b Bounds) Encode(x []float64) []float64 {
	z := make([]float64, len(x))
	b.EncodeInto(z, x)
	return z
}

// EncodeInto is Encode writing into a caller-provided destination (see
// DecodeInto). dst and x must have the bounds' length; dst may alias x.
func (b Bounds) EncodeInto(dst, x []float64) {
	for i, xi := range x {
		lo, hi := b.Lo[i], b.Hi[i]
		loFin, hiFin := !math.IsInf(lo, -1), !math.IsInf(hi, 1)
		switch {
		case loFin && hiFin:
			width := hi - lo
			p := (nudge(xi, lo, hi) - lo) / width
			dst[i] = math.Log(p / (1 - p))
		case loFin:
			d := xi - lo
			if d <= 0 {
				d = 1e-8 * math.Max(1, math.Abs(lo))
			}
			dst[i] = math.Log(d)
		case hiFin:
			d := hi - xi
			if d <= 0 {
				d = 1e-8 * math.Max(1, math.Abs(hi))
			}
			dst[i] = math.Log(d)
		default:
			dst[i] = xi
		}
	}
}

// Contains reports whether x lies strictly inside the box.
func (b Bounds) Contains(x []float64) bool {
	if len(x) != b.Len() {
		return false
	}
	for i, xi := range x {
		if xi <= b.Lo[i] && !math.IsInf(b.Lo[i], -1) {
			return false
		}
		if xi >= b.Hi[i] && !math.IsInf(b.Hi[i], 1) {
			return false
		}
		if !math.IsInf(b.Lo[i], -1) && xi < b.Lo[i] {
			return false
		}
		if !math.IsInf(b.Hi[i], 1) && xi > b.Hi[i] {
			return false
		}
	}
	return true
}

func logistic(z float64) float64 {
	if z >= 0 {
		return 1 / (1 + math.Exp(-z))
	}
	e := math.Exp(z)
	return e / (1 + e)
}

// nudge moves x strictly inside (lo, hi) by a relative margin.
func nudge(x, lo, hi float64) float64 {
	margin := 1e-10 * (hi - lo)
	if x <= lo {
		return lo + margin
	}
	if x >= hi {
		return hi - margin
	}
	return x
}
