package optimize

import (
	"context"
	"errors"
	"math"
	"testing"
)

// expDecayJacobian is the closed-form Jacobian of expDecayResidual:
// ∂r_i/∂a = e^{-bt}, ∂r_i/∂b = -a·t·e^{-bt}.
func expDecayJacobian(x []float64, jac [][]float64) error {
	for i := range jac {
		t := float64(i)
		e := math.Exp(-x[1] * t)
		jac[i][0] = e
		jac[i][1] = -x[0] * t * e
	}
	return nil
}

func TestLeastSquaresJacConvergesLikeNumeric(t *testing.T) {
	numRes, err := LeastSquares(expDecayResidual, []float64{1, 0.1}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	jacRes, err := LeastSquaresJacCtx(context.Background(), expDecayResidual, expDecayJacobian,
		[]float64{1, 0.1}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(jacRes.X[0]-2) > 1e-5 || math.Abs(jacRes.X[1]-0.5) > 1e-5 {
		t.Errorf("X = %v, want (2, 0.5)", jacRes.X)
	}
	if jacRes.JacEvals == 0 {
		t.Error("analytic path recorded no Jacobian fills")
	}
	if numRes.JacEvals != 0 {
		t.Errorf("numeric path recorded %d Jacobian fills, want 0", numRes.JacEvals)
	}
	// Each analytic iteration pays O(1) residual evaluations (trial +
	// geodesic probe) instead of n forward-difference columns, so the
	// analytic solve must be strictly cheaper in objective calls.
	if jacRes.FuncEvals >= numRes.FuncEvals {
		t.Errorf("analytic FuncEvals = %d, numeric = %d; want strictly fewer",
			jacRes.FuncEvals, numRes.FuncEvals)
	}
}

func TestLeastSquaresJacErrorStalls(t *testing.T) {
	// A Jacobian that errors marks the point infeasible for
	// differentiation; the solver must return the current iterate as
	// Stalled rather than fail the whole solve.
	failJac := func(x []float64, jac [][]float64) error {
		return errors.New("no gradient here")
	}
	r, err := LeastSquaresJacCtx(context.Background(), expDecayResidual, failJac,
		[]float64{1, 0.1}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != Stalled {
		t.Errorf("status = %v, want Stalled", r.Status)
	}
}

func TestLeastSquaresJacNonFiniteStalls(t *testing.T) {
	nanJac := func(x []float64, jac [][]float64) error {
		for i := range jac {
			for j := range jac[i] {
				jac[i][j] = math.NaN()
			}
		}
		return nil
	}
	r, err := LeastSquaresJacCtx(context.Background(), expDecayResidual, nanJac,
		[]float64{1, 0.1}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != Stalled {
		t.Errorf("status = %v, want Stalled", r.Status)
	}
}

// TestDecodeDerivMatchesDecode checks the chain-rule scale factor
// against a finite difference of Decode itself, for all four bound
// shapes.
func TestDecodeDerivMatchesDecode(t *testing.T) {
	b := Bounds{
		Lo: []float64{0, 2, math.Inf(-1), math.Inf(-1)},
		Hi: []float64{1, math.Inf(1), 5, math.Inf(1)},
	}
	z := []float64{0.3, -1.2, 0.7, 2.5}
	d := make([]float64, len(z))
	b.DecodeDerivInto(d, z)
	const h = 1e-6
	for i := range z {
		zp := append([]float64(nil), z...)
		zm := append([]float64(nil), z...)
		zp[i] += h
		zm[i] -= h
		fd := (b.Decode(zp)[i] - b.Decode(zm)[i]) / (2 * h)
		if math.Abs(fd-d[i]) > 1e-5*math.Max(1, math.Abs(fd)) {
			t.Errorf("coord %d: DecodeDeriv %g vs finite difference %g", i, d[i], fd)
		}
	}
}

// TestMultiStartLMFirstStaysInBounds pins the z-space LM-first contract:
// whatever the start point, an accepted gradient solve must come back
// inside the box.
func TestMultiStartLMFirstStaysInBounds(t *testing.T) {
	bounds, err := NewBounds([]float64{1e-9, 1e-9}, []float64{10, 10})
	if err != nil {
		t.Fatal(err)
	}
	obj := func(x []float64) float64 {
		r, _ := expDecayResidual(x)
		var s float64
		for _, v := range r {
			s += v * v
		}
		return s
	}
	res, err := MultiStart(obj, expDecayResidual, []float64{1, 0.1}, MultiStartConfig{
		Bounds:          bounds,
		Jacobian:        expDecayJacobian,
		ResidualFactory: func() Residual { return expDecayResidual },
		Polish:          true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bounds.Contains(res.X) {
		t.Errorf("winner %v left the bounds box", res.X)
	}
	if math.Abs(res.X[0]-2) > 1e-4 || math.Abs(res.X[1]-0.5) > 1e-4 {
		t.Errorf("X = %v, want (2, 0.5)", res.X)
	}
	if res.JacEvals == 0 {
		t.Error("LM-first multistart recorded no Jacobian fills")
	}
}
