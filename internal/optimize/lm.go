package optimize

import (
	"context"
	"errors"
	"fmt"
	"math"

	"resilience/internal/numeric"
)

// LeastSquares minimizes ½‖r(x)‖² with the Levenberg–Marquardt algorithm
// using a forward-difference Jacobian. It is used to polish Nelder–Mead
// solutions of the paper's least-squares objective (Eq. 8): LM converges
// quadratically near a minimum where the simplex crawls.
//
// The residual function may return an error to signal an infeasible point;
// the solver treats trial points that error as rejected steps, but returns
// the error if the starting point itself is infeasible.
func LeastSquares(res Residual, x0 []float64, opts Options) (Result, error) {
	return LeastSquaresCtx(context.Background(), res, x0, opts)
}

// LeastSquaresCtx is LeastSquares under a context, checked before the
// starting residual evaluation, once per major iteration, and inside the
// damping search (which can otherwise spin through many rejected steps).
// On cancellation the current iterate is returned with the wrapped
// context error. Panics escaping the residual are contained and returned
// as a *PanicError.
func LeastSquaresCtx(ctx context.Context, res Residual, x0 []float64, opts Options) (_ Result, err error) {
	defer recoverToError("levenberg-marquardt", &err)
	if res == nil || len(x0) == 0 {
		return Result{}, fmt.Errorf("%w: nil residual or empty start", ErrBadInput)
	}
	if cErr := cancelled(ctx); cErr != nil {
		return Result{}, cErr
	}
	opts = opts.withDefaults()
	n := len(x0)

	evals := 0
	x := append([]float64(nil), x0...)
	rStart, err := res(x)
	evals++
	if err != nil {
		return Result{}, fmt.Errorf("optimize: residual at start: %w", err)
	}
	if len(rStart) == 0 {
		return Result{}, fmt.Errorf("%w: residual returned no components", ErrBadInput)
	}
	m := len(rStart)
	// The Residual contract lets implementations reuse their output
	// buffer between calls, so every residual the solver retains is
	// copied into solver-owned storage immediately.
	r0 := append([]float64(nil), rStart...)
	cost := halfSq(r0)

	jac := make([][]float64, m)
	for i := range jac {
		jac[i] = make([]float64, n)
	}
	// Scratch reused across iterations and damping attempts: the normal
	// matrix JᵀJ, gradient Jᵀr, the augmented system [JᵀJ+λD | −Jᵀr],
	// the solved step, the trial point, and its residual. Nothing inside
	// the damping search allocates.
	jtj := make([][]float64, n)
	aug := make([][]float64, n)
	for i := 0; i < n; i++ {
		jtj[i] = make([]float64, n)
		aug[i] = make([]float64, n+1)
	}
	jtr := make([]float64, n)
	delta := make([]float64, n)
	trial := make([]float64, n)
	rTrial := make([]float64, m)

	lambda := 1e-3
	const (
		lambdaUp   = 10
		lambdaDown = 10
		lambdaMax  = 1e12
		lambdaMin  = 1e-14
	)

	iter := 0
	for ; iter < opts.MaxIterations; iter++ {
		if cErr := cancelled(ctx); cErr != nil {
			return Result{X: x, F: cost, Status: Stalled, Iterations: iter, FuncEvals: evals}, cErr
		}
		// Numerical Jacobian at the current point (forward differences;
		// each column costs one residual evaluation).
		if err := numeric.Jacobian(wrapResidual(res, &evals), x, r0, jac); err != nil {
			return Result{
				X: x, F: cost, Status: Stalled, Iterations: iter, FuncEvals: evals,
			}, nil
		}
		numeric.MatTMulInto(jtj, jac)
		numeric.MatTVecInto(jtr, jac, r0)

		gradNorm := numeric.Norm2(jtr)
		if gradNorm <= opts.TolF*(1+cost) {
			return Result{X: x, F: cost, Status: Converged, Iterations: iter, FuncEvals: evals}, nil
		}

		stepped := false
		for lambda <= lambdaMax {
			if cErr := cancelled(ctx); cErr != nil {
				return Result{X: x, F: cost, Status: Stalled, Iterations: iter, FuncEvals: evals}, cErr
			}
			// Solve (JᵀJ + λ·diag(JᵀJ)) δ = -Jᵀr as the augmented system.
			for i := 0; i < n; i++ {
				copy(aug[i][:n], jtj[i])
				damping := jtj[i][i]
				if damping <= 0 {
					damping = 1
				}
				aug[i][i] += lambda * damping
				aug[i][n] = -jtr[i]
			}
			if solveErr := numeric.SolveAugmented(aug, delta); solveErr != nil {
				lambda *= lambdaUp
				continue
			}
			for i := range x {
				trial[i] = x[i] + delta[i]
			}
			rt, rErr := res(trial)
			evals++
			if rErr != nil || len(rt) != m || !numeric.AllFinite(rt) {
				lambda *= lambdaUp
				continue
			}
			copy(rTrial, rt)
			trialCost := halfSq(rTrial)
			if trialCost < cost {
				// Accept.
				stepNorm := numeric.Norm2(delta)
				improvement := cost - trialCost
				copy(x, trial)
				copy(r0, rTrial)
				cost = trialCost
				lambda = math.Max(lambda/lambdaDown, lambdaMin)
				if stepNorm <= opts.TolX*(1+numeric.Norm2(x)) ||
					improvement <= opts.TolF*(1+cost) {
					return Result{X: x, F: cost, Status: Converged, Iterations: iter + 1, FuncEvals: evals}, nil
				}
				stepped = true
				break
			}
			lambda *= lambdaUp
		}
		if !stepped {
			return Result{X: x, F: cost, Status: Stalled, Iterations: iter, FuncEvals: evals}, nil
		}
	}
	return Result{X: x, F: cost, Status: MaxIterations, Iterations: iter, FuncEvals: evals}, nil
}

// wrapResidual adapts a Residual to the signature numeric.Jacobian expects
// while counting evaluations and converting errors into NaN rows (the
// Jacobian step then fails cleanly instead of panicking).
func wrapResidual(res Residual, evals *int) func([]float64) ([]float64, error) {
	return func(x []float64) ([]float64, error) {
		*evals++
		r, err := res(x)
		if err != nil {
			return nil, err
		}
		if !numeric.AllFinite(r) {
			return nil, errors.New("optimize: non-finite residual")
		}
		return r, nil
	}
}

func halfSq(r []float64) float64 {
	var s float64
	for _, v := range r {
		s += v * v
	}
	return s / 2
}
