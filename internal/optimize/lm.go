package optimize

import (
	"context"
	"errors"
	"fmt"
	"math"

	"resilience/internal/numeric"
)

// LeastSquares minimizes ½‖r(x)‖² with the Levenberg–Marquardt algorithm
// using a forward-difference Jacobian. It is used to polish Nelder–Mead
// solutions of the paper's least-squares objective (Eq. 8): LM converges
// quadratically near a minimum where the simplex crawls.
//
// The residual function may return an error to signal an infeasible point;
// the solver treats trial points that error as rejected steps, but returns
// the error if the starting point itself is infeasible.
func LeastSquares(res Residual, x0 []float64, opts Options) (Result, error) {
	return LeastSquaresCtx(context.Background(), res, x0, opts)
}

// LeastSquaresCtx is LeastSquares under a context, checked before the
// starting residual evaluation, once per major iteration, and inside the
// damping search (which can otherwise spin through many rejected steps).
// On cancellation the current iterate is returned with the wrapped
// context error. Panics escaping the residual are contained and returned
// as a *PanicError.
func LeastSquaresCtx(ctx context.Context, res Residual, x0 []float64, opts Options) (_ Result, err error) {
	defer recoverToError("levenberg-marquardt", &err)
	if res == nil || len(x0) == 0 {
		return Result{}, fmt.Errorf("%w: nil residual or empty start", ErrBadInput)
	}
	if cErr := cancelled(ctx); cErr != nil {
		return Result{}, cErr
	}
	opts = opts.withDefaults()
	n := len(x0)

	evals := 0
	x := append([]float64(nil), x0...)
	r0, err := res(x)
	evals++
	if err != nil {
		return Result{}, fmt.Errorf("optimize: residual at start: %w", err)
	}
	if len(r0) == 0 {
		return Result{}, fmt.Errorf("%w: residual returned no components", ErrBadInput)
	}
	m := len(r0)
	cost := halfSq(r0)

	jac := make([][]float64, m)
	for i := range jac {
		jac[i] = make([]float64, n)
	}

	lambda := 1e-3
	const (
		lambdaUp   = 10
		lambdaDown = 10
		lambdaMax  = 1e12
		lambdaMin  = 1e-14
	)

	iter := 0
	for ; iter < opts.MaxIterations; iter++ {
		if cErr := cancelled(ctx); cErr != nil {
			return Result{X: x, F: cost, Status: Stalled, Iterations: iter, FuncEvals: evals}, cErr
		}
		// Numerical Jacobian at the current point (forward differences;
		// each column costs one residual evaluation).
		if err := numeric.Jacobian(wrapResidual(res, &evals), x, r0, jac); err != nil {
			return Result{
				X: x, F: cost, Status: Stalled, Iterations: iter, FuncEvals: evals,
			}, nil
		}
		jtj := numeric.MatTMul(jac)
		jtr := numeric.MatTVec(jac, r0)

		gradNorm := numeric.Norm2(jtr)
		if gradNorm <= opts.TolF*(1+cost) {
			return Result{X: x, F: cost, Status: Converged, Iterations: iter, FuncEvals: evals}, nil
		}

		stepped := false
		for lambda <= lambdaMax {
			if cErr := cancelled(ctx); cErr != nil {
				return Result{X: x, F: cost, Status: Stalled, Iterations: iter, FuncEvals: evals}, cErr
			}
			// Solve (JᵀJ + λ·diag(JᵀJ)) δ = -Jᵀr.
			a := make([][]float64, n)
			for i := 0; i < n; i++ {
				a[i] = append([]float64(nil), jtj[i]...)
				damping := jtj[i][i]
				if damping <= 0 {
					damping = 1
				}
				a[i][i] += lambda * damping
			}
			negJtr := make([]float64, n)
			for i := range jtr {
				negJtr[i] = -jtr[i]
			}
			delta, solveErr := numeric.SolveLinear(a, negJtr)
			if solveErr != nil {
				lambda *= lambdaUp
				continue
			}
			trial := make([]float64, n)
			for i := range x {
				trial[i] = x[i] + delta[i]
			}
			rTrial, rErr := res(trial)
			evals++
			if rErr != nil || len(rTrial) != m || !numeric.AllFinite(rTrial) {
				lambda *= lambdaUp
				continue
			}
			trialCost := halfSq(rTrial)
			if trialCost < cost {
				// Accept.
				stepNorm := numeric.Norm2(delta)
				improvement := cost - trialCost
				x = trial
				r0 = rTrial
				cost = trialCost
				lambda = math.Max(lambda/lambdaDown, lambdaMin)
				if stepNorm <= opts.TolX*(1+numeric.Norm2(x)) ||
					improvement <= opts.TolF*(1+cost) {
					return Result{X: x, F: cost, Status: Converged, Iterations: iter + 1, FuncEvals: evals}, nil
				}
				stepped = true
				break
			}
			lambda *= lambdaUp
		}
		if !stepped {
			return Result{X: x, F: cost, Status: Stalled, Iterations: iter, FuncEvals: evals}, nil
		}
	}
	return Result{X: x, F: cost, Status: MaxIterations, Iterations: iter, FuncEvals: evals}, nil
}

// wrapResidual adapts a Residual to the signature numeric.Jacobian expects
// while counting evaluations and converting errors into NaN rows (the
// Jacobian step then fails cleanly instead of panicking).
func wrapResidual(res Residual, evals *int) func([]float64) ([]float64, error) {
	return func(x []float64) ([]float64, error) {
		*evals++
		r, err := res(x)
		if err != nil {
			return nil, err
		}
		if !numeric.AllFinite(r) {
			return nil, errors.New("optimize: non-finite residual")
		}
		return r, nil
	}
}

func halfSq(r []float64) float64 {
	var s float64
	for _, v := range r {
		s += v * v
	}
	return s / 2
}
