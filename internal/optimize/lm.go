package optimize

import (
	"context"
	"errors"
	"fmt"
	"math"

	"resilience/internal/numeric"
)

// JacobianFunc fills jac (one row per residual component, one column per
// parameter) with ∂rᵢ/∂xⱼ at x. Implementations may assume jac has the
// same shape on every call and must not retain it. Returning an error
// marks x infeasible for differentiation; the solver treats it like a
// failed numerical Jacobian (the current iterate is returned as Stalled).
type JacobianFunc func(x []float64, jac [][]float64) error

// LeastSquares minimizes ½‖r(x)‖² with the Levenberg–Marquardt algorithm
// using a forward-difference Jacobian. It is used to polish Nelder–Mead
// solutions of the paper's least-squares objective (Eq. 8): LM converges
// quadratically near a minimum where the simplex crawls.
//
// The residual function may return an error to signal an infeasible point;
// the solver treats trial points that error as rejected steps, but returns
// the error if the starting point itself is infeasible.
func LeastSquares(res Residual, x0 []float64, opts Options) (Result, error) {
	return LeastSquaresCtx(context.Background(), res, x0, opts)
}

// LeastSquaresCtx is LeastSquares under a context, checked before the
// starting residual evaluation, once per major iteration, and inside the
// damping search (which can otherwise spin through many rejected steps).
// On cancellation the current iterate is returned with the wrapped
// context error. Panics escaping the residual are contained and returned
// as a *PanicError.
func LeastSquaresCtx(ctx context.Context, res Residual, x0 []float64, opts Options) (Result, error) {
	return LeastSquaresJacCtx(ctx, res, nil, x0, opts)
}

// LeastSquaresJacCtx is LeastSquaresCtx with an analytic Jacobian. When
// jacFn is non-nil each major iteration costs one Jacobian fill instead
// of n forward-difference residual evaluations — the n+1× per-iteration
// saving that makes warm-started streaming refits cheap — and steps are
// corrected with geodesic acceleration, which collapses the long zigzag
// crawls plain LM suffers in the ill-conditioned valleys of the mixture
// models. A nil jacFn falls back to numeric.Jacobian exactly as before.
func LeastSquaresJacCtx(ctx context.Context, res Residual, jacFn JacobianFunc, x0 []float64, opts Options) (_ Result, err error) {
	defer recoverToError("levenberg-marquardt", &err)
	if res == nil || len(x0) == 0 {
		return Result{}, fmt.Errorf("%w: nil residual or empty start", ErrBadInput)
	}
	if cErr := cancelled(ctx); cErr != nil {
		return Result{}, cErr
	}
	opts = opts.withDefaults()
	n := len(x0)

	evals, jacEvals := 0, 0
	x := append([]float64(nil), x0...)
	rStart, err := res(x)
	evals++
	if err != nil {
		return Result{}, fmt.Errorf("optimize: residual at start: %w", err)
	}
	if len(rStart) == 0 {
		return Result{}, fmt.Errorf("%w: residual returned no components", ErrBadInput)
	}
	m := len(rStart)
	// The Residual contract lets implementations reuse their output
	// buffer between calls, so every residual the solver retains is
	// copied into solver-owned storage immediately.
	r0 := append([]float64(nil), rStart...)
	cost := halfSq(r0)

	// Scratch reused across iterations and damping attempts: the Jacobian
	// rows, the normal matrix JᵀJ, gradient Jᵀr, the augmented system
	// [JᵀJ+λD | −Jᵀr], the solved step, the trial point, and its residual.
	// All matrices share one flat backing array, so the whole solve costs
	// a fixed handful of allocations and nothing inside the iteration or
	// damping search allocates.
	back := make([]float64, m*n+n*n+n*(n+1))
	jac := make([][]float64, m)
	for i := range jac {
		jac[i], back = back[:n:n], back[n:]
	}
	jtj := make([][]float64, n)
	aug := make([][]float64, n)
	for i := 0; i < n; i++ {
		jtj[i], back = back[:n:n], back[n:]
		aug[i], back = back[:n+1:n+1], back[n+1:]
	}
	flat := make([]float64, 4*n+2*m)
	jtr := flat[0*n : 1*n]
	delta := flat[1*n : 2*n]
	trial := flat[2*n : 3*n]
	acc := flat[3*n : 4*n]
	rTrial := flat[4*n : 4*n+m]
	kvec := flat[4*n+m:]

	lambda := 1e-3
	const (
		lambdaUp   = 10
		lambdaDown = 3
		lambdaMax  = 1e12
		lambdaMin  = 1e-14
	)
	// Relative-decrease termination: sloppy-model valleys produce long
	// tails of accepted steps that each improve the cost by parts per
	// million — far below anything the downstream fit-quality comparisons
	// can distinguish — while the absolute tolerances (sized for the
	// final converged cost) never fire. Three consecutive accepted steps
	// with relative improvement under relFTol end the solve as converged.
	const (
		relFTol    = 1e-5
		relFStreak = 3
	)
	smallSteps := 0

	iter := 0
	for ; iter < opts.MaxIterations; iter++ {
		if cErr := cancelled(ctx); cErr != nil {
			return Result{X: x, F: cost, Status: Stalled, Iterations: iter, FuncEvals: evals, JacEvals: jacEvals}, cErr
		}
		// Jacobian at the current point: one analytic fill when available,
		// otherwise forward differences at one residual evaluation per
		// column.
		if jacFn != nil {
			jacEvals++
			if jErr := jacFn(x, jac); jErr != nil || !allRowsFinite(jac) {
				return Result{
					X: x, F: cost, Status: Stalled, Iterations: iter, FuncEvals: evals, JacEvals: jacEvals,
				}, nil
			}
		} else if jErr := numeric.Jacobian(wrapResidual(res, &evals), x, r0, jac); jErr != nil {
			return Result{
				X: x, F: cost, Status: Stalled, Iterations: iter, FuncEvals: evals,
			}, nil
		}
		numeric.MatTMulInto(jtj, jac)
		numeric.MatTVecInto(jtr, jac, r0)

		gradNorm := numeric.Norm2(jtr)
		if gradNorm <= opts.TolF*(1+cost) {
			return Result{X: x, F: cost, Status: Converged, Iterations: iter, FuncEvals: evals, JacEvals: jacEvals}, nil
		}

		stepped := false
		for lambda <= lambdaMax {
			if cErr := cancelled(ctx); cErr != nil {
				return Result{X: x, F: cost, Status: Stalled, Iterations: iter, FuncEvals: evals, JacEvals: jacEvals}, cErr
			}
			// Solve (JᵀJ + λ·diag(JᵀJ)) δ = -Jᵀr as the augmented system.
			for i := 0; i < n; i++ {
				copy(aug[i][:n], jtj[i])
				damping := jtj[i][i]
				if damping <= 0 {
					damping = 1
				}
				aug[i][i] += lambda * damping
				aug[i][n] = -jtr[i]
			}
			if solveErr := numeric.SolveAugmented(aug, delta); solveErr != nil {
				lambda *= lambdaUp
				continue
			}
			// Geodesic acceleration (Transtrum & Sethna): plain
			// Gauss–Newton steps zigzag down the narrow curved valleys of
			// sloppy models like the mixtures, taking thousands of tiny
			// accepted steps. One extra residual evaluation along δ gives
			// the directional second derivative of r, and the already
			// damped system yields a second-order correction a; the step
			// δ + ½a follows the valley floor instead of bouncing between
			// its walls. The correction is trusted only while it stays
			// small relative to δ (|a| ≤ 0.75|δ|).
			useAcc := false
			if jacFn != nil {
				const h = 0.1
				for i := range x {
					trial[i] = x[i] + h*delta[i]
				}
				rh, rhErr := res(trial)
				evals++
				if rhErr == nil && len(rh) == m && numeric.AllFinite(rh) {
					for i := 0; i < m; i++ {
						jd := 0.0
						row := jac[i]
						for j := 0; j < n; j++ {
							jd += row[j] * delta[j]
						}
						kvec[i] = (2 / (h * h)) * (rh[i] - r0[i] - h*jd)
					}
					// Same damped normal matrix, new right-hand side
					// −½Jᵀk; elimination destroyed aug, so rebuild it.
					for i := 0; i < n; i++ {
						copy(aug[i][:n], jtj[i])
						damping := jtj[i][i]
						if damping <= 0 {
							damping = 1
						}
						aug[i][i] += lambda * damping
						s := 0.0
						for r := 0; r < m; r++ {
							s += jac[r][i] * kvec[r]
						}
						aug[i][n] = -0.5 * s
					}
					if numeric.SolveAugmented(aug, acc) == nil &&
						numeric.AllFinite(acc) &&
						numeric.Norm2(acc) <= 0.75*numeric.Norm2(delta) {
						useAcc = true
					}
				}
			}
			for i := range x {
				trial[i] = x[i] + delta[i]
				if useAcc {
					trial[i] += 0.5 * acc[i]
				}
			}
			rt, rErr := res(trial)
			evals++
			if rErr != nil || len(rt) != m || !numeric.AllFinite(rt) {
				lambda *= lambdaUp
				continue
			}
			copy(rTrial, rt)
			trialCost := halfSq(rTrial)
			if trialCost < cost {
				// Accept.
				var sn float64
				for i := range x {
					d := trial[i] - x[i]
					sn += d * d
				}
				stepNorm := math.Sqrt(sn)
				improvement := cost - trialCost
				copy(x, trial)
				copy(r0, rTrial)
				cost = trialCost
				lambda = math.Max(lambda/lambdaDown, lambdaMin)
				if improvement <= relFTol*cost {
					smallSteps++
				} else {
					smallSteps = 0
				}
				if stepNorm <= opts.TolX*(1+numeric.Norm2(x)) ||
					improvement <= opts.TolF*(1+cost) ||
					smallSteps >= relFStreak {
					return Result{X: x, F: cost, Status: Converged, Iterations: iter + 1, FuncEvals: evals, JacEvals: jacEvals}, nil
				}
				stepped = true
				break
			}
			lambda *= lambdaUp
		}
		if !stepped {
			return Result{X: x, F: cost, Status: Stalled, Iterations: iter, FuncEvals: evals, JacEvals: jacEvals}, nil
		}
	}
	return Result{X: x, F: cost, Status: MaxIterations, Iterations: iter, FuncEvals: evals, JacEvals: jacEvals}, nil
}

// wrapResidual adapts a Residual to the signature numeric.Jacobian expects
// while counting evaluations and converting errors into NaN rows (the
// Jacobian step then fails cleanly instead of panicking).
func wrapResidual(res Residual, evals *int) func([]float64) ([]float64, error) {
	return func(x []float64) ([]float64, error) {
		*evals++
		r, err := res(x)
		if err != nil {
			return nil, err
		}
		if !numeric.AllFinite(r) {
			return nil, errors.New("optimize: non-finite residual")
		}
		return r, nil
	}
}

// allRowsFinite reports whether every entry of a row-major matrix is
// finite; an analytic Jacobian producing NaN/Inf (overflowing parameters)
// must fail the iteration the same way a numerical one does.
func allRowsFinite(rows [][]float64) bool {
	for _, row := range rows {
		if !numeric.AllFinite(row) {
			return false
		}
	}
	return true
}

func halfSq(r []float64) float64 {
	var s float64
	for _, v := range r {
		s += v * v
	}
	return s / 2
}
