package optimize

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestHaltonProperties(t *testing.T) {
	// All values in (0,1), and the base-2 prefix is the van der Corput
	// sequence 1/2, 1/4, 3/4, 1/8, ...
	want := []float64{0.5, 0.25, 0.75, 0.125, 0.625, 0.375, 0.875}
	for i, w := range want {
		if got := Halton(i+1, 2); math.Abs(got-w) > 1e-15 {
			t.Errorf("Halton(%d, 2) = %g, want %g", i+1, got, w)
		}
	}
	f := func(n uint16, baseIdx uint8) bool {
		bases := []int{2, 3, 5, 7}
		h := Halton(int(n)+1, bases[int(baseIdx)%len(bases)])
		return h > 0 && h < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStartPointsInsideBox(t *testing.T) {
	b, err := NewBounds([]float64{-1, 0, 5}, []float64{1, 10, 6})
	if err != nil {
		t.Fatal(err)
	}
	pts, err := StartPoints(b, 25)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 25 {
		t.Fatalf("got %d points", len(pts))
	}
	for _, p := range pts {
		for j := range p {
			if p[j] < b.Lo[j] || p[j] > b.Hi[j] {
				t.Fatalf("point %v outside box", p)
			}
		}
	}
}

func TestStartPointsInfiniteBounds(t *testing.T) {
	pts, err := StartPoints(Unbounded(2), 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		for _, v := range p {
			if math.IsInf(v, 0) || math.IsNaN(v) {
				t.Fatalf("non-finite start %v", p)
			}
		}
	}
}

func TestStartPointsErrors(t *testing.T) {
	if _, err := StartPoints(Bounds{}, 3); !errors.Is(err, ErrBadInput) {
		t.Errorf("empty bounds: %v", err)
	}
	if _, err := StartPoints(Unbounded(2), 0); !errors.Is(err, ErrBadInput) {
		t.Errorf("zero count: %v", err)
	}
	if _, err := StartPoints(Unbounded(13), 1); !errors.Is(err, ErrBadInput) {
		t.Errorf("too many dims: %v", err)
	}
}

func TestBoundsDecodeEncodeRoundTrip(t *testing.T) {
	b, err := NewBounds(
		[]float64{0, math.Inf(-1), -5, math.Inf(-1)},
		[]float64{1, math.Inf(1), math.Inf(1), 3},
	)
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{0.3, -7, 2, -1}
	z := b.Encode(x)
	back := b.Decode(z)
	for i := range x {
		if math.Abs(back[i]-x[i]) > 1e-8 {
			t.Errorf("round trip [%d]: %g -> %g", i, x[i], back[i])
		}
	}
}

func TestBoundsDecodeAlwaysInside(t *testing.T) {
	b, err := NewBounds([]float64{2, 0}, []float64{5, math.Inf(1)})
	if err != nil {
		t.Fatal(err)
	}
	f := func(z1, z2 int16) bool {
		z := []float64{float64(z1) / 100, float64(z2) / 100}
		x := b.Decode(z)
		return x[0] > 2 && x[0] < 5 && x[1] > 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBoundsEncodeNudgesBoundaryPoints(t *testing.T) {
	b, err := NewBounds([]float64{0}, []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{0, 1, -0.5, 2} {
		z := b.Encode([]float64{x})
		if !numericFinite(z[0]) {
			t.Errorf("Encode(%g) produced %g", x, z[0])
		}
	}
	lower, err := NewBounds([]float64{1}, []float64{math.Inf(1)})
	if err != nil {
		t.Fatal(err)
	}
	if z := lower.Encode([]float64{0.5}); !numericFinite(z[0]) {
		t.Errorf("Encode below lower bound produced %g", z[0])
	}
	upper, err := NewBounds([]float64{math.Inf(-1)}, []float64{2})
	if err != nil {
		t.Fatal(err)
	}
	if z := upper.Encode([]float64{3}); !numericFinite(z[0]) {
		t.Errorf("Encode above upper bound produced %g", z[0])
	}
}

func numericFinite(x float64) bool {
	return !math.IsNaN(x) && !math.IsInf(x, 0)
}

func TestNewBoundsValidation(t *testing.T) {
	if _, err := NewBounds([]float64{0}, []float64{0, 1}); !errors.Is(err, ErrBadInput) {
		t.Errorf("length mismatch: %v", err)
	}
	if _, err := NewBounds([]float64{1}, []float64{0}); !errors.Is(err, ErrBadInput) {
		t.Errorf("inverted: %v", err)
	}
	if _, err := NewBounds([]float64{math.NaN()}, []float64{1}); !errors.Is(err, ErrBadInput) {
		t.Errorf("NaN: %v", err)
	}
}

func TestBoundsContains(t *testing.T) {
	b, _ := NewBounds([]float64{0, math.Inf(-1)}, []float64{1, math.Inf(1)})
	if !b.Contains([]float64{0.5, 100}) {
		t.Error("interior point reported outside")
	}
	if b.Contains([]float64{-0.1, 0}) || b.Contains([]float64{1.5, 0}) {
		t.Error("exterior point reported inside")
	}
	if b.Contains([]float64{0.5}) {
		t.Error("wrong length should be outside")
	}
}

func TestPositiveAndUnbounded(t *testing.T) {
	p := Positive(3)
	if p.Len() != 3 || p.Lo[0] != 0 || !math.IsInf(p.Hi[2], 1) {
		t.Errorf("Positive(3) = %+v", p)
	}
	u := Unbounded(2)
	if !math.IsInf(u.Lo[0], -1) || !math.IsInf(u.Hi[1], 1) {
		t.Errorf("Unbounded(2) = %+v", u)
	}
}

func TestMultiStartFindsGlobalMinimum(t *testing.T) {
	// A two-well function: local min near x=4 (f=0.5), global at x=-3
	// (f=0). Single NM from x0=4 finds the local well; multistart must
	// find the global one.
	obj := func(x []float64) float64 {
		a := (x[0] - 4) * (x[0] - 4) / 10
		b := (x[0] + 3) * (x[0] + 3) / 10
		return math.Min(a+0.5, b)
	}
	b, _ := NewBounds([]float64{-10}, []float64{10})
	r, err := MultiStart(obj, nil, []float64{4}, MultiStartConfig{Starts: 12, Bounds: b})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.X[0]+3) > 1e-3 {
		t.Errorf("X = %v, want -3 (global); F = %g", r.X, r.F)
	}
}

func TestMultiStartWithPolish(t *testing.T) {
	res := func(x []float64) ([]float64, error) {
		r := make([]float64, 10)
		for i := range r {
			ti := float64(i)
			r[i] = x[0]*math.Exp(-x[1]*ti) - 2*math.Exp(-0.5*ti)
		}
		return r, nil
	}
	obj := func(x []float64) float64 {
		rv, _ := res(x)
		var s float64
		for _, v := range rv {
			s += v * v
		}
		return s
	}
	b, _ := NewBounds([]float64{0, 0}, []float64{10, 5})
	r, err := MultiStart(obj, res, nil, MultiStartConfig{Starts: 6, Bounds: b, Polish: true})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.X[0]-2) > 1e-4 || math.Abs(r.X[1]-0.5) > 1e-4 {
		t.Errorf("X = %v, want (2, 0.5)", r.X)
	}
}

func TestMultiStartBadInput(t *testing.T) {
	b, _ := NewBounds([]float64{0}, []float64{1})
	if _, err := MultiStart(nil, nil, nil, MultiStartConfig{Bounds: b}); !errors.Is(err, ErrBadInput) {
		t.Errorf("nil objective: %v", err)
	}
	if _, err := MultiStart(sphere, nil, nil, MultiStartConfig{}); !errors.Is(err, ErrBadInput) {
		t.Errorf("no bounds: %v", err)
	}
}
