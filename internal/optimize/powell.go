package optimize

import (
	"context"
	"fmt"
	"math"
)

// Powell minimizes obj starting from x0 using Powell's direction-set
// method: successive line minimizations (Brent) along an evolving basis
// of conjugate directions. Like Nelder–Mead it needs no derivatives, but
// it exploits smoothness through its exact line searches, which makes it
// a useful cross-check on curve-fitting problems — two different
// derivative-free algorithms agreeing on a minimum is strong evidence it
// is real.
func Powell(obj Objective, x0 []float64, opts Options) (Result, error) {
	return PowellCtx(context.Background(), obj, x0, opts)
}

// PowellCtx is Powell under a context, checked once per outer iteration
// (one full pass of line minimizations). An already-expired context
// returns before any objective evaluation; cancellation mid-run returns
// the best point seen with the wrapped context error. Panics escaping
// the objective are contained and returned as a *PanicError.
func PowellCtx(ctx context.Context, obj Objective, x0 []float64, opts Options) (_ Result, err error) {
	defer recoverToError("powell", &err)
	if obj == nil || len(x0) == 0 {
		return Result{}, fmt.Errorf("%w: nil objective or empty start", ErrBadInput)
	}
	if cErr := cancelled(ctx); cErr != nil {
		return Result{}, cErr
	}
	opts = opts.withDefaults()
	n := len(x0)

	evals := 0
	eval := func(x []float64) float64 {
		evals++
		return sanitize(obj(x))
	}

	// Direction set starts as the coordinate basis, scaled to each
	// coordinate's magnitude.
	dirs := make([][]float64, n)
	for i := range dirs {
		dirs[i] = make([]float64, n)
		dirs[i][i] = opts.SimplexScale * math.Max(1, math.Abs(x0[i]))
	}

	x := append([]float64(nil), x0...)
	fx := eval(x)

	// lineMin minimizes along x + t·dir for t in a bracketed window,
	// updating x in place and returning the new value.
	lineMin := func(dir []float64) float64 {
		g := func(t float64) float64 {
			trial := make([]float64, n)
			for i := range trial {
				trial[i] = x[i] + t*dir[i]
			}
			return eval(trial)
		}
		// Fixed symmetric window in step units: the direction vectors
		// carry the scale.
		tBest, fBest, err := BrentMin(g, -4, 4, opts.TolX)
		if err != nil || fBest >= fx {
			return fx
		}
		for i := range x {
			x[i] += tBest * dir[i]
		}
		return fBest
	}

	iter := 0
	for ; iter < opts.MaxIterations; iter++ {
		if cErr := cancelled(ctx); cErr != nil {
			return Result{X: x, F: fx, Status: Stalled, Iterations: iter, FuncEvals: evals}, cErr
		}
		// A start deep in infeasible territory (objective +Inf) gives the
		// line searches nothing to bracket; stop instead of spinning the
		// iteration budget.
		if math.IsInf(fx, 1) {
			return Result{X: x, F: fx, Status: Stalled, Iterations: iter, FuncEvals: evals}, nil
		}
		fStart := fx
		xStart := append([]float64(nil), x...)

		// One pass of line minimizations; remember the biggest drop.
		biggestDrop := 0.0
		biggestIdx := 0
		for i := 0; i < n; i++ {
			fPrev := fx
			fx = lineMin(dirs[i])
			if drop := fPrev - fx; drop > biggestDrop {
				biggestDrop, biggestIdx = drop, i
			}
		}

		// Convergence on function decrease.
		scale := math.Max(1, math.Abs(fx))
		if fStart-fx <= opts.TolF*scale {
			return Result{
				X: x, F: fx, Status: Converged,
				Iterations: iter + 1, FuncEvals: evals,
			}, nil
		}

		// Powell's update: try the average direction of the pass; if the
		// extrapolated point keeps improving, replace the direction of
		// biggest decrease with it (maintains approximate conjugacy).
		avg := make([]float64, n)
		extrap := make([]float64, n)
		for i := range avg {
			avg[i] = x[i] - xStart[i]
			extrap[i] = 2*x[i] - xStart[i]
		}
		fExtrap := eval(extrap)
		if fExtrap < fStart {
			t1 := fStart - fx - biggestDrop
			t2 := fStart - fExtrap
			if 2*(fStart-2*fx+fExtrap)*t1*t1 < t2*t2*biggestDrop {
				fx = lineMin(avg)
				dirs[biggestIdx] = avg
			}
		}
	}
	return Result{
		X: x, F: fx, Status: MaxIterations,
		Iterations: iter, FuncEvals: evals,
	}, nil
}
