package timeseries

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func mustSeries(t *testing.T, times, values []float64) *Series {
	t.Helper()
	s, err := NewSeries(times, values)
	if err != nil {
		t.Fatalf("NewSeries: %v", err)
	}
	return s
}

func TestNewSeriesValidation(t *testing.T) {
	tests := []struct {
		name    string
		times   []float64
		values  []float64
		wantErr error
	}{
		{name: "empty", wantErr: ErrEmpty},
		{name: "length mismatch", times: []float64{1, 2}, values: []float64{1}, wantErr: ErrLengthMismatch},
		{name: "non-increasing", times: []float64{1, 1}, values: []float64{1, 2}, wantErr: ErrNotIncreasing},
		{name: "decreasing", times: []float64{2, 1}, values: []float64{1, 2}, wantErr: ErrNotIncreasing},
		{name: "NaN value", times: []float64{1, 2}, values: []float64{1, math.NaN()}, wantErr: ErrNotFinite},
		{name: "Inf time", times: []float64{1, math.Inf(1)}, values: []float64{1, 2}, wantErr: ErrNotFinite},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := NewSeries(tt.times, tt.values); !errors.Is(err, tt.wantErr) {
				t.Errorf("want %v, got %v", tt.wantErr, err)
			}
		})
	}
}

func TestNewSeriesCopiesInput(t *testing.T) {
	times := []float64{0, 1}
	values := []float64{10, 20}
	s := mustSeries(t, times, values)
	times[0] = 99
	values[0] = 99
	if s.Time(0) != 0 || s.Value(0) != 10 {
		t.Error("series aliased caller slices")
	}
	got := s.Values()
	got[0] = 42
	if s.Value(0) != 10 {
		t.Error("Values() exposed internal storage")
	}
}

func TestFromValues(t *testing.T) {
	s, err := FromValues([]float64{5, 6, 7})
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 3 || s.Time(2) != 2 || s.Value(2) != 7 {
		t.Errorf("FromValues: %v %v", s.Times(), s.Values())
	}
	start, end := s.Span()
	if start != 0 || end != 2 {
		t.Errorf("Span = %g, %g", start, end)
	}
}

func TestMinMax(t *testing.T) {
	s := mustSeries(t, []float64{0, 1, 2, 3, 4}, []float64{1.0, 0.95, 0.9, 0.9, 1.02})
	idx, tm, v := s.Min()
	if idx != 2 || tm != 2 || v != 0.9 {
		t.Errorf("Min = %d, %g, %g (earliest tie should win)", idx, tm, v)
	}
	idx, tm, v = s.Max()
	if idx != 4 || tm != 4 || v != 1.02 {
		t.Errorf("Max = %d, %g, %g", idx, tm, v)
	}
}

func TestNormalizeToFirst(t *testing.T) {
	s := mustSeries(t, []float64{0, 1, 2}, []float64{200, 190, 210})
	n, err := s.NormalizeToFirst()
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 0.95, 1.05}
	for i, w := range want {
		if math.Abs(n.Value(i)-w) > 1e-12 {
			t.Errorf("normalized[%d] = %g, want %g", i, n.Value(i), w)
		}
	}
	zero := mustSeries(t, []float64{0, 1}, []float64{0, 1})
	if _, err := zero.NormalizeToFirst(); err == nil {
		t.Error("zero first value: want error")
	}
}

func TestScale(t *testing.T) {
	s := mustSeries(t, []float64{0, 1}, []float64{2, 4})
	sc, err := s.Scale(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Value(0) != 1 || sc.Value(1) != 2 {
		t.Errorf("Scale: %v", sc.Values())
	}
	if _, err := s.Scale(math.NaN()); !errors.Is(err, ErrNotFinite) {
		t.Errorf("NaN scale: %v", err)
	}
}

func TestSliceAndSplit(t *testing.T) {
	s := mustSeries(t, []float64{0, 1, 2, 3, 4}, []float64{10, 11, 12, 13, 14})
	sub, err := s.Slice(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if sub.Len() != 2 || sub.Value(0) != 11 || sub.Value(1) != 12 {
		t.Errorf("Slice: %v", sub.Values())
	}
	for _, bad := range [][2]int{{-1, 2}, {0, 6}, {3, 3}, {4, 2}} {
		if _, err := s.Slice(bad[0], bad[1]); !errors.Is(err, ErrBadSplit) {
			t.Errorf("Slice(%v): want ErrBadSplit, got %v", bad, err)
		}
	}

	train, test, err := s.SplitAt(3)
	if err != nil {
		t.Fatal(err)
	}
	if train.Len() != 3 || test.Len() != 2 || test.Time(0) != 3 {
		t.Errorf("SplitAt: train %d, test %d", train.Len(), test.Len())
	}
	if _, _, err := s.SplitAt(0); !errors.Is(err, ErrBadSplit) {
		t.Errorf("SplitAt(0): %v", err)
	}
	if _, _, err := s.SplitAt(5); !errors.Is(err, ErrBadSplit) {
		t.Errorf("SplitAt(len): %v", err)
	}
}

func TestSplitFraction(t *testing.T) {
	vals := make([]float64, 48)
	for i := range vals {
		vals[i] = float64(i)
	}
	s, err := FromValues(vals)
	if err != nil {
		t.Fatal(err)
	}
	train, test, err := s.SplitFraction(0.9)
	if err != nil {
		t.Fatal(err)
	}
	if train.Len() != 43 || test.Len() != 5 {
		t.Errorf("90%% of 48: train %d, test %d; want 43/5", train.Len(), test.Len())
	}
	// Tiny series still split into non-empty halves.
	small := mustSeries(t, []float64{0, 1}, []float64{1, 2})
	tr, te, err := small.SplitFraction(0.99)
	if err != nil || tr.Len() != 1 || te.Len() != 1 {
		t.Errorf("tiny split: %v, %d/%d", err, tr.Len(), te.Len())
	}
	if _, _, err := s.SplitFraction(0); !errors.Is(err, ErrBadSplit) {
		t.Errorf("frac 0: %v", err)
	}
	if _, _, err := s.SplitFraction(1); !errors.Is(err, ErrBadSplit) {
		t.Errorf("frac 1: %v", err)
	}
}

func TestInterpolate(t *testing.T) {
	s := mustSeries(t, []float64{0, 2, 4}, []float64{10, 20, 10})
	tests := []struct {
		t, want float64
	}{
		{0, 10}, {2, 20}, {4, 10}, {1, 15}, {3, 15}, {0.5, 12.5},
	}
	for _, tt := range tests {
		got, err := s.Interpolate(tt.t)
		if err != nil {
			t.Fatalf("Interpolate(%g): %v", tt.t, err)
		}
		if math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("Interpolate(%g) = %g, want %g", tt.t, got, tt.want)
		}
	}
	if _, err := s.Interpolate(-1); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("below range: %v", err)
	}
	if _, err := s.Interpolate(5); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("above range: %v", err)
	}
}

func TestMovingAverage(t *testing.T) {
	s := mustSeries(t, []float64{0, 1, 2, 3, 4}, []float64{0, 10, 20, 10, 0})
	sm, err := s.MovingAverage(3)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{5, 10, 40.0 / 3, 10, 5}
	for i, w := range want {
		if math.Abs(sm.Value(i)-w) > 1e-12 {
			t.Errorf("smoothed[%d] = %g, want %g", i, sm.Value(i), w)
		}
	}
	copySeries, err := s.MovingAverage(1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < s.Len(); i++ {
		if copySeries.Value(i) != s.Value(i) {
			t.Error("window 1 should copy")
		}
	}
	if _, err := s.MovingAverage(2); err == nil {
		t.Error("even window: want error")
	}
	if _, err := s.MovingAverage(0); err == nil {
		t.Error("zero window: want error")
	}
}

func TestDiff(t *testing.T) {
	s := mustSeries(t, []float64{0, 1, 2}, []float64{5, 7, 4})
	d, err := s.Diff()
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 2 || d.Value(0) != 2 || d.Value(1) != -3 || d.Time(0) != 1 {
		t.Errorf("Diff: times %v values %v", d.Times(), d.Values())
	}
	one := mustSeries(t, []float64{0}, []float64{1})
	if _, err := one.Diff(); err == nil {
		t.Error("Diff on 1 point: want error")
	}
}

func TestSplitRoundTripProperty(t *testing.T) {
	// Property: SplitAt(n) preserves every observation in order.
	f := func(raw []float64, nRaw uint8) bool {
		if len(raw) < 2 {
			return true
		}
		vals := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				vals = append(vals, v)
			}
		}
		if len(vals) < 2 {
			return true
		}
		s, err := FromValues(vals)
		if err != nil {
			return false
		}
		n := 1 + int(nRaw)%(s.Len()-1)
		train, test, err := s.SplitAt(n)
		if err != nil {
			return false
		}
		if train.Len()+test.Len() != s.Len() {
			return false
		}
		for i := 0; i < train.Len(); i++ {
			if train.Value(i) != s.Value(i) {
				return false
			}
		}
		for i := 0; i < test.Len(); i++ {
			if test.Value(i) != s.Value(n+i) || test.Time(i) != s.Time(n+i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDetrend(t *testing.T) {
	// Pure line detrends to zero.
	line := mustSeries(t, []float64{0, 1, 2, 3}, []float64{2, 4, 6, 8})
	d, intercept, slope, err := line.Detrend()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(intercept-2) > 1e-12 || math.Abs(slope-2) > 1e-12 {
		t.Errorf("fit = %g + %g t", intercept, slope)
	}
	for i := 0; i < d.Len(); i++ {
		if math.Abs(d.Value(i)) > 1e-12 {
			t.Errorf("residual[%d] = %g", i, d.Value(i))
		}
	}
	// Line plus dip: detrending preserves the dip shape.
	vals := []float64{1, 1.02, 0.99, 1.01, 1.08, 1.10}
	s := mustSeries(t, []float64{0, 1, 2, 3, 4, 5}, vals)
	d2, _, _, err := s.Detrend()
	if err != nil {
		t.Fatal(err)
	}
	// Residuals sum to ~0 (property of least squares with intercept).
	var sum float64
	for i := 0; i < d2.Len(); i++ {
		sum += d2.Value(i)
	}
	if math.Abs(sum) > 1e-10 {
		t.Errorf("residual sum = %g", sum)
	}
	one := mustSeries(t, []float64{0}, []float64{1})
	if _, _, _, err := one.Detrend(); err == nil {
		t.Error("single point: want error")
	}
}

func TestRebase(t *testing.T) {
	s := mustSeries(t, []float64{10, 11, 13}, []float64{1, 2, 3})
	r, err := s.Rebase()
	if err != nil {
		t.Fatal(err)
	}
	if r.Time(0) != 0 || r.Time(2) != 3 {
		t.Errorf("rebased times: %v", r.Times())
	}
	if r.Value(1) != 2 {
		t.Error("values changed")
	}
}

func TestResample(t *testing.T) {
	s := mustSeries(t, []float64{0, 2, 4}, []float64{0, 20, 0})
	r, err := s.Resample(5)
	if err != nil {
		t.Fatal(err)
	}
	wantTimes := []float64{0, 1, 2, 3, 4}
	wantVals := []float64{0, 10, 20, 10, 0}
	for i := range wantTimes {
		if r.Time(i) != wantTimes[i] || math.Abs(r.Value(i)-wantVals[i]) > 1e-12 {
			t.Errorf("resampled[%d] = (%g, %g), want (%g, %g)",
				i, r.Time(i), r.Value(i), wantTimes[i], wantVals[i])
		}
	}
	if _, err := s.Resample(1); err == nil {
		t.Error("n < 2: want error")
	}
}
