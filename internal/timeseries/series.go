// Package timeseries provides the Series type that carries empirical
// resilience data — (time, performance) pairs such as the monthly payroll
// employment indexes in Fig. 2 of the paper — together with the
// transformations the modeling pipeline needs: peak normalization,
// train/test splitting, minimum location, interpolation, and smoothing.
package timeseries

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Series is an ordered sequence of (time, value) observations. Times must
// be strictly increasing and all fields finite; NewSeries enforces this.
type Series struct {
	times  []float64
	values []float64
}

// Sentinel errors returned by Series constructors and methods.
var (
	// ErrEmpty indicates a series with no observations.
	ErrEmpty = errors.New("timeseries: empty series")
	// ErrLengthMismatch indicates times and values differ in length.
	ErrLengthMismatch = errors.New("timeseries: times and values length mismatch")
	// ErrNotIncreasing indicates times are not strictly increasing.
	ErrNotIncreasing = errors.New("timeseries: times must be strictly increasing")
	// ErrNotFinite indicates a NaN or infinite time or value.
	ErrNotFinite = errors.New("timeseries: non-finite observation")
	// ErrBadSplit indicates an invalid train/test split request.
	ErrBadSplit = errors.New("timeseries: invalid split")
	// ErrOutOfRange indicates a query time outside the observed span.
	ErrOutOfRange = errors.New("timeseries: time outside observed range")
)

// NewSeries builds a Series from parallel time and value slices, copying
// both so later caller mutations cannot corrupt the series.
func NewSeries(times, values []float64) (*Series, error) {
	if len(times) == 0 {
		return nil, ErrEmpty
	}
	if len(times) != len(values) {
		return nil, fmt.Errorf("%w: %d times, %d values", ErrLengthMismatch, len(times), len(values))
	}
	for i := range times {
		if math.IsNaN(times[i]) || math.IsInf(times[i], 0) ||
			math.IsNaN(values[i]) || math.IsInf(values[i], 0) {
			return nil, fmt.Errorf("%w: index %d", ErrNotFinite, i)
		}
		if i > 0 && times[i] <= times[i-1] {
			return nil, fmt.Errorf("%w: t[%d]=%g <= t[%d]=%g", ErrNotIncreasing, i, times[i], i-1, times[i-1])
		}
	}
	s := &Series{
		times:  make([]float64, len(times)),
		values: make([]float64, len(values)),
	}
	copy(s.times, times)
	copy(s.values, values)
	return s, nil
}

// FromValues builds a Series whose times are 0, 1, 2, … — the natural
// representation for "months after employment peak" data.
func FromValues(values []float64) (*Series, error) {
	times := make([]float64, len(values))
	for i := range times {
		times[i] = float64(i)
	}
	return NewSeries(times, values)
}

// Len returns the number of observations.
func (s *Series) Len() int { return len(s.times) }

// Time returns the i-th observation time.
func (s *Series) Time(i int) float64 { return s.times[i] }

// Value returns the i-th observation value.
func (s *Series) Value(i int) float64 { return s.values[i] }

// Times returns a copy of the observation times.
func (s *Series) Times() []float64 {
	return append([]float64(nil), s.times...)
}

// Values returns a copy of the observation values.
func (s *Series) Values() []float64 {
	return append([]float64(nil), s.values...)
}

// Span returns the first and last observation times.
func (s *Series) Span() (start, end float64) {
	return s.times[0], s.times[len(s.times)-1]
}

// Min returns the index, time, and value of the smallest observation; the
// earliest index wins ties. This locates t_d, the time of minimum
// performance in the paper's Fig. 1.
func (s *Series) Min() (idx int, t, v float64) {
	idx = 0
	for i := 1; i < len(s.values); i++ {
		if s.values[i] < s.values[idx] {
			idx = i
		}
	}
	return idx, s.times[idx], s.values[idx]
}

// Max returns the index, time, and value of the largest observation; the
// earliest index wins ties.
func (s *Series) Max() (idx int, t, v float64) {
	idx = 0
	for i := 1; i < len(s.values); i++ {
		if s.values[i] > s.values[idx] {
			idx = i
		}
	}
	return idx, s.times[idx], s.values[idx]
}

// NormalizeToFirst returns a new Series with every value divided by the
// first value, the normalization used in Fig. 2 (index relative to the
// employment peak at t = 0). It fails if the first value is zero.
func (s *Series) NormalizeToFirst() (*Series, error) {
	base := s.values[0]
	if base == 0 {
		return nil, errors.New("timeseries: first value is zero, cannot normalize")
	}
	vals := make([]float64, len(s.values))
	for i, v := range s.values {
		vals[i] = v / base
	}
	return NewSeries(s.times, vals)
}

// Scale returns a new Series with every value multiplied by factor.
func (s *Series) Scale(factor float64) (*Series, error) {
	if math.IsNaN(factor) || math.IsInf(factor, 0) {
		return nil, fmt.Errorf("%w: scale factor %g", ErrNotFinite, factor)
	}
	vals := make([]float64, len(s.values))
	for i, v := range s.values {
		vals[i] = v * factor
	}
	return NewSeries(s.times, vals)
}

// Slice returns the subseries with indexes in [lo, hi).
func (s *Series) Slice(lo, hi int) (*Series, error) {
	if lo < 0 || hi > s.Len() || lo >= hi {
		return nil, fmt.Errorf("%w: [%d, %d) of %d", ErrBadSplit, lo, hi, s.Len())
	}
	return NewSeries(s.times[lo:hi], s.values[lo:hi])
}

// SplitAt returns the first n observations as train and the remainder as
// test. The paper fits on the first n−ℓ points and scores predictions on
// the final ℓ (Eq. 10); SplitAt(n-ℓ) produces exactly that split.
func (s *Series) SplitAt(n int) (train, test *Series, err error) {
	if n <= 0 || n >= s.Len() {
		return nil, nil, fmt.Errorf("%w: n=%d of %d", ErrBadSplit, n, s.Len())
	}
	train, err = s.Slice(0, n)
	if err != nil {
		return nil, nil, err
	}
	test, err = s.Slice(n, s.Len())
	if err != nil {
		return nil, nil, err
	}
	return train, test, nil
}

// SplitFraction splits so that the train set holds frac of the
// observations (rounded to nearest, at least 1, at most Len-1). The
// paper's mixture experiments use frac = 0.9.
func (s *Series) SplitFraction(frac float64) (train, test *Series, err error) {
	if !(frac > 0 && frac < 1) {
		return nil, nil, fmt.Errorf("%w: fraction %g", ErrBadSplit, frac)
	}
	n := int(math.Round(frac * float64(s.Len())))
	if n < 1 {
		n = 1
	}
	if n >= s.Len() {
		n = s.Len() - 1
	}
	return s.SplitAt(n)
}

// Interpolate returns the linearly interpolated value at time t, which
// must lie within the observed span.
func (s *Series) Interpolate(t float64) (float64, error) {
	start, end := s.Span()
	if t < start || t > end || math.IsNaN(t) {
		return math.NaN(), fmt.Errorf("%w: t=%g not in [%g, %g]", ErrOutOfRange, t, start, end)
	}
	// Find the first index with time >= t.
	i := sort.SearchFloat64s(s.times, t)
	if i < s.Len() && s.times[i] == t {
		return s.values[i], nil
	}
	lo, hi := i-1, i
	frac := (t - s.times[lo]) / (s.times[hi] - s.times[lo])
	return s.values[lo] + frac*(s.values[hi]-s.values[lo]), nil
}

// MovingAverage returns a new Series smoothed with a centered window of
// the given odd width (window = 1 returns a copy). Endpoints use the
// available portion of the window.
func (s *Series) MovingAverage(window int) (*Series, error) {
	if window < 1 || window%2 == 0 {
		return nil, fmt.Errorf("%w: window %d must be odd and >= 1", ErrBadSplit, window)
	}
	half := window / 2
	vals := make([]float64, s.Len())
	for i := range vals {
		lo := i - half
		if lo < 0 {
			lo = 0
		}
		hi := i + half + 1
		if hi > s.Len() {
			hi = s.Len()
		}
		var sum float64
		for j := lo; j < hi; j++ {
			sum += s.values[j]
		}
		vals[i] = sum / float64(hi-lo)
	}
	return NewSeries(s.times, vals)
}

// Diff returns the first differences ΔP(tᵢ) = P(tᵢ) − P(tᵢ₋₁) as a Series
// indexed at the later time of each pair. The paper's confidence intervals
// (Eq. 13) are built around these changes in performance.
func (s *Series) Diff() (*Series, error) {
	if s.Len() < 2 {
		return nil, fmt.Errorf("%w: need at least 2 observations", ErrBadSplit)
	}
	times := make([]float64, s.Len()-1)
	vals := make([]float64, s.Len()-1)
	for i := 1; i < s.Len(); i++ {
		times[i-1] = s.times[i]
		vals[i-1] = s.values[i] - s.values[i-1]
	}
	return NewSeries(times, vals)
}

// Detrend removes the least-squares straight line through the series,
// returning the detrended series plus the fitted intercept and slope.
// Payroll series carry secular growth; removing it before shape
// classification sharpens the letter-shape signal.
func (s *Series) Detrend() (detrended *Series, intercept, slope float64, err error) {
	if s.Len() < 2 {
		return nil, 0, 0, fmt.Errorf("%w: need at least 2 observations to detrend", ErrBadSplit)
	}
	// Closed-form simple linear regression.
	var sumT, sumV, sumTT, sumTV float64
	n := float64(s.Len())
	for i := 0; i < s.Len(); i++ {
		t, v := s.times[i], s.values[i]
		sumT += t
		sumV += v
		sumTT += t * t
		sumTV += t * v
	}
	denom := n*sumTT - sumT*sumT
	if denom == 0 {
		return nil, 0, 0, fmt.Errorf("%w: degenerate time axis", ErrBadSplit)
	}
	slope = (n*sumTV - sumT*sumV) / denom
	intercept = (sumV - slope*sumT) / n
	vals := make([]float64, s.Len())
	for i := 0; i < s.Len(); i++ {
		vals[i] = s.values[i] - (intercept + slope*s.times[i])
	}
	out, err := NewSeries(s.times, vals)
	if err != nil {
		return nil, 0, 0, err
	}
	return out, intercept, slope, nil
}

// Rebase returns a new Series whose time axis starts at zero, preserving
// spacing — useful after slicing a disruption window out of a longer
// history.
func (s *Series) Rebase() (*Series, error) {
	t0 := s.times[0]
	times := make([]float64, s.Len())
	for i := range times {
		times[i] = s.times[i] - t0
	}
	return NewSeries(times, s.values)
}

// Resample returns the series linearly interpolated onto n equally
// spaced times across its span. n must be at least 2.
func (s *Series) Resample(n int) (*Series, error) {
	if n < 2 {
		return nil, fmt.Errorf("%w: resample needs n >= 2", ErrBadSplit)
	}
	start, end := s.Span()
	times := make([]float64, n)
	vals := make([]float64, n)
	for i := 0; i < n; i++ {
		t := start + (end-start)*float64(i)/float64(n-1)
		v, err := s.Interpolate(t)
		if err != nil {
			return nil, err
		}
		times[i] = t
		vals[i] = v
	}
	return NewSeries(times, vals)
}
