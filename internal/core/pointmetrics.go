package core

import (
	"fmt"
	"math"
)

// PointMetrics are the point-based resilience measures of the taxonomy
// the paper cites (Cheng et al.): where the interval metrics of Sec. IV
// integrate performance over a window, these characterize single points
// and slopes of the curve — the "4R" quantities emergency managers ask
// for first.
type PointMetrics struct {
	// Robustness is the fraction of nominal performance retained at the
	// worst point: P(t_d) / P(t_h).
	Robustness float64
	// Rapidity is the average recovery slope from the minimum to
	// recovery: (P(t_r) − P(t_d)) / (t_r − t_d). Zero when t_r == t_d.
	Rapidity float64
	// TimeToMinimum is t_d − t_h, how long degradation lasts.
	TimeToMinimum float64
	// TimeToRecovery is t_r − t_h, the total disruption duration.
	TimeToRecovery float64
	// ResilienceLoss is the Bruneau "resilience triangle":
	// ∫ (P(t_h) − P(t)) dt over [t_h, t_r].
	ResilienceLoss float64
}

// ComputePointMetrics evaluates the point-based metrics for an arbitrary
// performance curve over a window. The curve is integrated continuously
// for the resilience-loss term.
func ComputePointMetrics(curve func(float64) float64, w Window) (PointMetrics, error) {
	if curve == nil {
		return PointMetrics{}, fmt.Errorf("%w: nil curve", ErrBadData)
	}
	if !(w.TR > w.TH) {
		return PointMetrics{}, fmt.Errorf("%w: window needs t_r > t_h", ErrBadData)
	}
	if w.Nominal == 0 {
		return PointMetrics{}, fmt.Errorf("%w: zero nominal performance", ErrBadData)
	}
	td := math.Min(math.Max(w.TD, w.TH), w.TR)
	pMin := curve(td)
	pEnd := curve(w.TR)

	rapidity := 0.0
	if w.TR > td {
		rapidity = (pEnd - pMin) / (w.TR - td)
	}

	set, err := Compute(curve, Window{
		TH: w.TH, TR: w.TR, TD: td, T0: w.T0,
		Nominal: w.Nominal, PMin: pMin,
	}, MetricsConfig{Mode: Continuous})
	if err != nil {
		return PointMetrics{}, err
	}

	return PointMetrics{
		Robustness:     pMin / w.Nominal,
		Rapidity:       rapidity,
		TimeToMinimum:  td - w.TH,
		TimeToRecovery: w.TR - w.TH,
		ResilienceLoss: set[PerformanceLost],
	}, nil
}

// FitPointMetrics evaluates the point-based metrics on a fitted curve,
// locating the minimum from the model and the recovery time from the
// curve's return to the nominal level (falling back to the window end if
// the curve never recovers within it).
func FitPointMetrics(f *FitResult, th, horizon, nominal float64) (PointMetrics, error) {
	if f == nil {
		return PointMetrics{}, fmt.Errorf("%w: nil fit", ErrBadData)
	}
	if !(horizon > th) {
		return PointMetrics{}, fmt.Errorf("%w: horizon must exceed t_h", ErrBadData)
	}
	td, err := ModelMinimum(f, horizon)
	if err != nil {
		return PointMetrics{}, err
	}
	tr, err := RecoveryTime(f, nominal, horizon)
	if err != nil || tr > horizon || tr <= td {
		// The curve does not regain nominal inside the horizon; use the
		// horizon end as the assessment boundary, as Sec. IV does when
		// replacing t_r with the final observation time.
		tr = horizon
	}
	return ComputePointMetrics(f.Eval, Window{
		TH: th, TR: tr, TD: td, T0: th, Nominal: nominal, PMin: f.Eval(td),
	})
}
