package core

import (
	"context"
	"fmt"
	"math"

	"resilience/internal/timeseries"
)

// Validation is the full fit-and-validate pipeline result for one model
// on one dataset: exactly the quantities in a row block of Table I or
// Table III.
type Validation struct {
	// Fit is the model fit to the training prefix.
	Fit *FitResult
	// Train and Test are the split halves of the input series.
	Train *timeseries.Series
	Test  *timeseries.Series
	// GoF holds SSE (train), PMSE (test), and R²adj (train).
	GoF GoF
	// Band is the 95% (or caller-chosen) confidence band over the full
	// series.
	Band *Band
	// EC is the empirical coverage of the band over the full series.
	EC float64
}

// ValidateConfig configures the pipeline.
type ValidateConfig struct {
	// TrainFraction is the share of observations used for fitting
	// (default 0.9, the paper's split).
	TrainFraction float64
	// Alpha is the CI significance level (default 0.05 for 95% bands).
	Alpha float64
	// Fit configures the optimizer.
	Fit FitConfig
}

func (c ValidateConfig) withDefaults() ValidateConfig {
	if !(c.TrainFraction > 0 && c.TrainFraction < 1) {
		c.TrainFraction = 0.9
	}
	if !(c.Alpha > 0 && c.Alpha < 1) {
		c.Alpha = 0.05
	}
	return c
}

// Validate runs the paper's validation pipeline on one model and one
// dataset: split the series, fit the training prefix by least squares,
// compute SSE/PMSE/R²adj, build the confidence band over the whole
// series, and measure its empirical coverage.
func Validate(m Model, data *timeseries.Series, cfg ValidateConfig) (*Validation, error) {
	return ValidateCtx(context.Background(), m, data, cfg)
}

// ValidateCtx is Validate under a context; the deadline flows into the
// training fit's optimizer iterations (see FitCtx).
func ValidateCtx(ctx context.Context, m Model, data *timeseries.Series, cfg ValidateConfig) (*Validation, error) {
	if data == nil || data.Len() < 4 {
		return nil, fmt.Errorf("%w: need at least 4 observations", ErrBadData)
	}
	cfg = cfg.withDefaults()

	train, test, err := data.SplitFraction(cfg.TrainFraction)
	if err != nil {
		return nil, fmt.Errorf("core: validate split: %w", err)
	}
	fit, err := FitCtx(ctx, m, train, cfg.Fit)
	if err != nil {
		return nil, err
	}
	gof, err := Evaluate(fit, test)
	if err != nil {
		return nil, err
	}
	band, err := ConfidenceBand(fit, data, cfg.Alpha)
	if err != nil {
		return nil, err
	}
	ec, err := EmpiricalCoverage(band, data)
	if err != nil {
		return nil, err
	}
	return &Validation{
		Fit:   fit,
		Train: train,
		Test:  test,
		GoF:   gof,
		Band:  band,
		EC:    ec,
	}, nil
}

// MetricComparison is one row of Table II / Table IV: a metric's actual
// value from the data, the model's prediction, and the Eq. (22) relative
// error.
type MetricComparison struct {
	Kind      MetricKind
	Actual    float64
	Predicted float64
	RelErr    float64
}

// CompareMetrics computes the predictive interval-based metrics for a
// validation run: the window follows the Sec. IV rules (t_h at the first
// held-out point, t_r at the last, t_d from data or model), actual values
// come from the observed series, and predictions from the fitted model.
func CompareMetrics(v *Validation, data *timeseries.Series, cfg MetricsConfig) ([]MetricComparison, error) {
	if v == nil || v.Fit == nil {
		return nil, fmt.Errorf("%w: nil validation", ErrBadData)
	}
	w, err := PredictiveWindow(data, v.Train.Len(), v.Fit)
	if err != nil {
		return nil, err
	}
	actual, err := ActualMetrics(data, w, cfg)
	if err != nil {
		return nil, err
	}
	predicted, err := PredictedMetrics(v.Fit, w, cfg)
	if err != nil {
		return nil, err
	}
	rows := make([]MetricComparison, 0, len(MetricKinds()))
	for _, k := range MetricKinds() {
		a, p := actual[k], predicted[k]
		row := MetricComparison{Kind: k, Actual: a, Predicted: p, RelErr: RelativeError(a, p)}
		if math.IsNaN(a) || math.IsNaN(p) {
			row.RelErr = math.NaN()
		}
		rows = append(rows, row)
	}
	return rows, nil
}
