package core

import (
	"context"
	"fmt"
	"math"
	"sort"

	"resilience/internal/timeseries"
)

// RobustConfig tunes FitRobust.
type RobustConfig struct {
	// Delta is the Huber threshold in units of the robust residual scale
	// (default 1.345, the classical 95%-efficiency choice).
	Delta float64
	// MaxRounds bounds the IRLS reweighting iterations (default 10).
	MaxRounds int
	// Fit configures the inner weighted least-squares solves.
	Fit FitConfig
}

func (c RobustConfig) withDefaults() RobustConfig {
	if c.Delta <= 0 {
		c.Delta = 1.345
	}
	if c.MaxRounds <= 0 {
		c.MaxRounds = 10
	}
	return c
}

// FitRobust estimates model parameters with a Huber M-estimator via
// iteratively reweighted least squares. Where the paper's plain LSE
// (Eq. 8) lets one aberrant month — a strike, a data revision, a
// reporting artifact — drag the whole resilience curve, the Huber loss
// grows linearly beyond Delta robust standard deviations, capping each
// point's influence.
//
// The returned FitResult's SSE field holds the ordinary (unweighted) SSE
// at the robust estimate, so goodness-of-fit comparisons against Fit
// remain apples-to-apples.
func FitRobust(m Model, data *timeseries.Series, cfg RobustConfig) (*FitResult, error) {
	return FitRobustCtx(context.Background(), m, data, cfg)
}

// FitRobustCtx is FitRobust under a context. The initial least-squares
// fit honors the context fully; if cancellation arrives during the IRLS
// reweighting rounds the last completed estimate is returned (it is a
// valid, if less polished, robust fit) rather than an error.
func FitRobustCtx(ctx context.Context, m Model, data *timeseries.Series, cfg RobustConfig) (*FitResult, error) {
	if m == nil {
		return nil, fmt.Errorf("%w: nil model", ErrBadData)
	}
	if data == nil || data.Len() < m.NumParams()+1 {
		return nil, fmt.Errorf("%w: need more observations than parameters", ErrBadData)
	}
	cfg = cfg.withDefaults()

	// Round 0: ordinary least squares for a starting point.
	fit, err := FitCtx(ctx, m, data, cfg.Fit)
	if err != nil {
		return nil, err
	}

	times := data.Times()
	values := data.Values()
	weights := make([]float64, data.Len())
	prevParams := append([]float64(nil), fit.Params...)

	for round := 0; round < cfg.MaxRounds; round++ {
		if ctx.Err() != nil {
			break // keep the last good estimate
		}
		residuals := fit.Residuals(data)
		scale := madScale(residuals)
		if scale <= 0 {
			break // perfect fit: nothing to reweight
		}
		for i, r := range residuals {
			a := math.Abs(r) / scale
			if a <= cfg.Delta {
				weights[i] = 1
			} else {
				weights[i] = cfg.Delta / a
			}
		}

		wcfg := cfg.Fit
		wcfg.InitialParams = fit.Params
		next, err := fitWeighted(ctx, m, times, values, weights, wcfg)
		if err != nil {
			break // keep the last good estimate
		}
		fit = next

		// Converged when parameters stop moving.
		var move float64
		for i := range fit.Params {
			move += math.Abs(fit.Params[i] - prevParams[i])
		}
		copy(prevParams, fit.Params)
		if move < 1e-10 {
			break
		}
	}

	// Report the ordinary SSE at the robust estimate.
	var sse float64
	for _, r := range fit.Residuals(data) {
		sse += r * r
	}
	fit.SSE = sse
	return fit, nil
}

// fitWeighted solves the weighted least-squares problem
// min Σ wᵢ(R(tᵢ) − P(tᵢ))² with the standard fitting driver by folding
// √wᵢ into the residuals.
func fitWeighted(ctx context.Context, m Model, times, values, weights []float64, cfg FitConfig) (*FitResult, error) {
	// Scale values so the weighted problem reuses the unweighted driver:
	// the driver minimizes Σ (yᵢ − P(tᵢ))²; we need Σ wᵢ(yᵢ − P(tᵢ))².
	// Fit cannot express per-point weights directly, so run the optimizer
	// here with a custom objective mirroring Fit's internals.
	series, err := timeseries.NewSeries(times, values)
	if err != nil {
		return nil, err
	}
	// Weighted SSE objective via the shared driver: reuse Fit with a
	// wrapper model whose Eval scales both prediction and data is not
	// possible (data is fixed), so optimize directly.
	return fitWithObjectiveCtx(ctx, m, series, cfg, func(params []float64) float64 {
		var sse float64
		for i, t := range times {
			d := values[i] - m.Eval(params, t)
			sse += weights[i] * d * d
		}
		return sse
	})
}

// madScale is the normalized median absolute deviation, a robust
// residual scale estimate: MAD/0.6745 matches the standard deviation for
// Gaussian residuals.
func madScale(residuals []float64) float64 {
	abs := make([]float64, len(residuals))
	for i, r := range residuals {
		abs[i] = math.Abs(r)
	}
	sort.Float64s(abs)
	var med float64
	n := len(abs)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		med = abs[n/2]
	} else {
		med = (abs[n/2-1] + abs[n/2]) / 2
	}
	return med / 0.6745
}
