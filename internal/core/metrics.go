package core

import (
	"fmt"
	"math"

	"resilience/internal/quadrature"
	"resilience/internal/timeseries"
)

// MetricKind identifies one of the eight interval-based resilience
// metrics of Sec. IV.
type MetricKind int

// The eight interval-based metrics, in the row order of Tables II and IV.
const (
	// PerformancePreserved is the area under the curve (Eq. 14,
	// Bruneau & Reinhorn).
	PerformancePreserved MetricKind = iota + 1
	// PerformanceLost is the area above the curve relative to nominal
	// (Eq. 16, Yang & Frangopol).
	PerformanceLost
	// NormalizedAvgPreserved is the ratio of actual to nominal area
	// (Eq. 15, Ouyang & Dueñas-Osorio).
	NormalizedAvgPreserved
	// NormalizedAvgLost is the normalized area above the curve (Eq. 17,
	// Zhou et al.).
	NormalizedAvgLost
	// PreservedFromMinimum is the post-minimum area above the minimum
	// level (Eq. 18, Zobel).
	PreservedFromMinimum
	// AvgPreserved is the time-averaged performance (Eq. 19, Reed et
	// al.).
	AvgPreserved
	// AvgLost is the time-averaged performance deficit (Eq. 20, Reed et
	// al.).
	AvgLost
	// WeightedAvgPreserved is the weighted average of performance before
	// and after the minimum (Eq. 21, Cimellaro et al.).
	WeightedAvgPreserved
)

// MetricKinds lists all metrics in table order.
func MetricKinds() []MetricKind {
	return []MetricKind{
		PerformancePreserved, PerformanceLost,
		NormalizedAvgPreserved, NormalizedAvgLost,
		PreservedFromMinimum, AvgPreserved, AvgLost,
		WeightedAvgPreserved,
	}
}

// String returns the metric's table label.
func (k MetricKind) String() string {
	switch k {
	case PerformancePreserved:
		return "performance preserved"
	case PerformanceLost:
		return "performance lost"
	case NormalizedAvgPreserved:
		return "normalized average performance preserved"
	case NormalizedAvgLost:
		return "normalized average performance lost"
	case PreservedFromMinimum:
		return "performance preserved from the minimum"
	case AvgPreserved:
		return "average performance preserved"
	case AvgLost:
		return "average performance lost"
	case WeightedAvgPreserved:
		return "average performance preserved before/after minimum"
	default:
		return fmt.Sprintf("metric(%d)", int(k))
	}
}

// IntegrationMode selects how ∫ P dt is computed by the metrics engine.
type IntegrationMode int

// Integration modes.
const (
	// DiscreteSum replicates the paper's tables: the "integral" is the
	// sum of P over the unit-spaced sample points in the window
	// (inclusive of both endpoints), matching the monthly data.
	DiscreteSum IntegrationMode = iota + 1
	// Continuous uses adaptive quadrature for a true ∫ P dt.
	Continuous
)

// Window fixes the time points and levels that parameterize the metrics:
// the hazard time t_h, recovery time t_r, time of minimum t_d, the
// nominal performance P(t_h), the minimum performance P(t_d), and the
// series start t_0 used by the whole-interval weighted metric (Eq. 21).
type Window struct {
	TH, TR, TD float64
	T0         float64
	Nominal    float64
	PMin       float64
}

// PredictiveWindow builds the Sec. IV predictive-mode window from a data
// series and the index of the first held-out observation: t_h becomes
// t_{n−ℓ+1}, t_r becomes t_n, and t_d (with P(t_d)) comes from the
// observed minimum when it lies inside the data, otherwise from the
// fitted model's minimum (pass fit == nil to force the data minimum).
func PredictiveWindow(data *timeseries.Series, testStart int, fit *FitResult) (Window, error) {
	if data == nil || data.Len() < 2 {
		return Window{}, fmt.Errorf("%w: need at least 2 observations", ErrBadData)
	}
	if testStart <= 0 || testStart >= data.Len() {
		return Window{}, fmt.Errorf("%w: test start %d outside (0, %d)", ErrBadData, testStart, data.Len())
	}
	t0, tEnd := data.Span()
	w := Window{
		TH:      data.Time(testStart),
		TR:      tEnd,
		T0:      t0,
		Nominal: data.Value(testStart),
	}
	minIdx, td, pmin := data.Min()
	interiorMin := minIdx > 0 && minIdx < data.Len()-1
	if interiorMin || fit == nil {
		w.TD, w.PMin = td, pmin
		return w, nil
	}
	// Minimum not observed in the interior: use the model's prediction.
	mt, err := ModelMinimum(fit, tEnd)
	if err != nil {
		w.TD, w.PMin = td, pmin
		return w, nil
	}
	w.TD = mt
	w.PMin = fit.Eval(mt)
	return w, nil
}

// MetricsConfig tunes the metrics engine.
type MetricsConfig struct {
	// Mode selects discrete-sum (default) or continuous integration.
	Mode IntegrationMode
	// Alpha is the Eq. (21) weight in (0, 1); default 0.5 as in the
	// paper's tables.
	Alpha float64
	// Step is the discrete-sum spacing; default 1 (monthly data).
	Step float64
}

func (c MetricsConfig) withDefaults() MetricsConfig {
	if c.Mode == 0 {
		c.Mode = DiscreteSum
	}
	if !(c.Alpha > 0 && c.Alpha < 1) {
		c.Alpha = 0.5
	}
	if c.Step <= 0 {
		c.Step = 1
	}
	return c
}

// MetricSet holds all eight metric values keyed by MetricKind.
type MetricSet map[MetricKind]float64

// Compute evaluates all eight interval-based metrics for an arbitrary
// performance curve over the window.
func Compute(curve func(float64) float64, w Window, cfg MetricsConfig) (MetricSet, error) {
	if curve == nil {
		return nil, fmt.Errorf("%w: nil curve", ErrBadData)
	}
	if !(w.TR > w.TH) {
		return nil, fmt.Errorf("%w: window needs t_r > t_h (got %g <= %g)", ErrBadData, w.TR, w.TH)
	}
	cfg = cfg.withDefaults()

	integ := func(a, b float64) (float64, error) {
		return integrate(curve, a, b, cfg)
	}

	span := w.TR - w.TH
	area, err := integ(w.TH, w.TR)
	if err != nil {
		return nil, err
	}
	nominalArea := w.Nominal * span

	set := MetricSet{
		PerformancePreserved:   area,
		PerformanceLost:        nominalArea - area,
		NormalizedAvgPreserved: area / nominalArea,
		NormalizedAvgLost:      (nominalArea - area) / nominalArea,
		AvgPreserved:           area / span,
		AvgLost:                (nominalArea - area) / span,
	}

	// Eq. (18): post-minimum area above the rectangle at the minimum.
	tdClamped := math.Min(math.Max(w.TD, w.TH), w.TR)
	postArea, err := integ(tdClamped, w.TR)
	if err != nil {
		return nil, err
	}
	set[PreservedFromMinimum] = postArea - w.PMin*(w.TR-tdClamped)

	// Eq. (21): weighted average before/after the minimum over the whole
	// interval [t_0, t_r].
	tdW := math.Min(math.Max(w.TD, w.T0), w.TR)
	before, err := segmentAverage(curve, w.T0, tdW, cfg)
	if err != nil {
		return nil, err
	}
	after, err := segmentAverage(curve, tdW, w.TR, cfg)
	if err != nil {
		return nil, err
	}
	set[WeightedAvgPreserved] = cfg.Alpha*before + (1-cfg.Alpha)*after

	return set, nil
}

// ActualMetrics computes the metrics from the observed data itself, the
// "Actual" rows of Tables II and IV. The curve is the linear
// interpolation of the series.
func ActualMetrics(data *timeseries.Series, w Window, cfg MetricsConfig) (MetricSet, error) {
	if data == nil || data.Len() < 2 {
		return nil, fmt.Errorf("%w: need at least 2 observations", ErrBadData)
	}
	curve := func(t float64) float64 {
		v, err := data.Interpolate(t)
		if err != nil {
			// Outside the observed span: hold the nearest endpoint, which
			// only matters if the window extends past the data.
			if t < data.Time(0) {
				return data.Value(0)
			}
			return data.Value(data.Len() - 1)
		}
		return v
	}
	return Compute(curve, w, cfg)
}

// PredictedMetrics computes the metrics from a fitted model, the
// "Predicted" rows of Tables II and IV.
func PredictedMetrics(f *FitResult, w Window, cfg MetricsConfig) (MetricSet, error) {
	if f == nil {
		return nil, fmt.Errorf("%w: nil fit", ErrBadData)
	}
	return Compute(f.Eval, w, cfg)
}

// RelativeError computes Eq. (22): |actual − predicted| / |actual|.
func RelativeError(actual, predicted float64) float64 {
	if actual == 0 {
		if predicted == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(actual-predicted) / math.Abs(actual)
}

// RelativeErrors applies Eq. (22) metric-by-metric.
func RelativeErrors(actual, predicted MetricSet) MetricSet {
	out := make(MetricSet, len(actual))
	for k, a := range actual {
		if p, ok := predicted[k]; ok {
			out[k] = RelativeError(a, p)
		}
	}
	return out
}

// integrate computes the windowed "integral" of the curve under the
// configured mode. In DiscreteSum mode the value is Σ curve(t) over
// t = a, a+step, …, b (inclusive), mirroring how the paper's tables sum
// monthly observations; in Continuous mode it is adaptive-quadrature
// ∫ curve dt.
func integrate(curve func(float64) float64, a, b float64, cfg MetricsConfig) (float64, error) {
	if b < a {
		return math.NaN(), fmt.Errorf("%w: inverted integration window [%g, %g]", ErrBadData, a, b)
	}
	if cfg.Mode == Continuous {
		v, err := quadrature.Adaptive(curve, a, b, 1e-10)
		if err != nil {
			return math.NaN(), fmt.Errorf("core: metric integration: %w", err)
		}
		return v, nil
	}
	var sum float64
	// Tolerate float accumulation so the final endpoint is included.
	eps := cfg.Step * 1e-9
	for t := a; t <= b+eps; t += cfg.Step {
		sum += curve(math.Min(t, b))
	}
	return sum, nil
}

// segmentAverage returns the average performance over [a, b] under the
// configured mode; for an empty segment it returns the curve value at the
// point, the natural limit.
func segmentAverage(curve func(float64) float64, a, b float64, cfg MetricsConfig) (float64, error) {
	if b <= a {
		return curve(a), nil
	}
	// In both modes the divisor is the elapsed time b−a: in discrete mode
	// this reproduces the paper's mixed convention (sum of points divided
	// by the span).
	v, err := integrate(curve, a, b, cfg)
	if err != nil {
		return math.NaN(), err
	}
	return v / (b - a), nil
}
