package core

import (
	"errors"
	"math"
	"testing"
)

func TestForecastAt(t *testing.T) {
	data, truth := noisyQuadratic(t, 30)
	fit, err := Fit(QuadraticModel{}, data, FitConfig{})
	if err != nil {
		t.Fatal(err)
	}
	times := []float64{30, 35, 40}
	fc, err := ForecastAt(fit, times, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if len(fc.Mean) != 3 || len(fc.Lower) != 3 || len(fc.Upper) != 3 {
		t.Fatalf("forecast lengths: %+v", fc)
	}
	m := QuadraticModel{}
	for i, tt := range times {
		wantMean := fit.Eval(tt)
		if fc.Mean[i] != wantMean {
			t.Errorf("mean[%d] = %g, want %g", i, fc.Mean[i], wantMean)
		}
		if fc.Lower[i] >= fc.Mean[i] || fc.Upper[i] <= fc.Mean[i] {
			t.Errorf("band does not bracket mean at %d", i)
		}
		// On lightly noisy data, the truth curve stays inside the band.
		truthVal := m.Eval(truth, tt)
		if truthVal < fc.Lower[i]-0.01 || truthVal > fc.Upper[i]+0.01 {
			t.Errorf("truth %g outside [%g, %g] at t=%g",
				truthVal, fc.Lower[i], fc.Upper[i], tt)
		}
	}
	if fc.Sigma <= 0 {
		t.Errorf("sigma = %g", fc.Sigma)
	}
}

func TestForecastHorizonContinuesSpacing(t *testing.T) {
	data, _ := noisyQuadratic(t, 20) // times 0..19 spaced 1
	fit, err := Fit(QuadraticModel{}, data, FitConfig{})
	if err != nil {
		t.Fatal(err)
	}
	fc, err := ForecastHorizon(fit, 5, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{20, 21, 22, 23, 24}
	for i, w := range want {
		if math.Abs(fc.Times[i]-w) > 1e-12 {
			t.Errorf("time[%d] = %g, want %g", i, fc.Times[i], w)
		}
	}
}

func TestForecastValidation(t *testing.T) {
	data, _ := noisyQuadratic(t, 20)
	fit, err := Fit(QuadraticModel{}, data, FitConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ForecastAt(nil, []float64{1}, 0.05); !errors.Is(err, ErrBadData) {
		t.Errorf("nil fit: %v", err)
	}
	if _, err := ForecastAt(fit, nil, 0.05); !errors.Is(err, ErrBadData) {
		t.Errorf("no times: %v", err)
	}
	if _, err := ForecastAt(fit, []float64{1}, 0); !errors.Is(err, ErrBadData) {
		t.Errorf("alpha 0: %v", err)
	}
	if _, err := ForecastAt(fit, []float64{math.NaN()}, 0.05); !errors.Is(err, ErrBadData) {
		t.Errorf("NaN time: %v", err)
	}
	if _, err := ForecastHorizon(fit, 0, 0.05); !errors.Is(err, ErrBadData) {
		t.Errorf("zero steps: %v", err)
	}
	if _, err := ForecastHorizon(nil, 3, 0.05); !errors.Is(err, ErrBadData) {
		t.Errorf("nil fit horizon: %v", err)
	}
}

func TestForecastWiderAtHigherConfidence(t *testing.T) {
	data, _ := noisyQuadratic(t, 25)
	fit, err := Fit(QuadraticModel{}, data, FitConfig{})
	if err != nil {
		t.Fatal(err)
	}
	f95, err := ForecastAt(fit, []float64{30}, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	f99, err := ForecastAt(fit, []float64{30}, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if !(f99.Upper[0]-f99.Lower[0] > f95.Upper[0]-f95.Lower[0]) {
		t.Error("99% forecast band should be wider than 95%")
	}
}
