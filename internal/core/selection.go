package core

import (
	"context"
	"fmt"
	"math"
	"sort"

	"resilience/internal/stat"
	"resilience/internal/timeseries"
)

// SelectionCriterion chooses which score ranks candidate models.
type SelectionCriterion int

// Ranking criteria.
const (
	// ByPMSE ranks by held-out predictive mean squared error (Eq. 10),
	// the paper's primary predictive measure.
	ByPMSE SelectionCriterion = iota + 1
	// ByAIC ranks by Akaike's information criterion on the training fit.
	ByAIC
	// ByBIC ranks by the Bayesian information criterion.
	ByBIC
	// ByCV ranks by rolling-origin cross-validated one-step error, the
	// most expensive and most honest predictive score.
	ByCV
)

// String returns the criterion name.
func (c SelectionCriterion) String() string {
	switch c {
	case ByPMSE:
		return "pmse"
	case ByAIC:
		return "aic"
	case ByBIC:
		return "bic"
	case ByCV:
		return "cv"
	default:
		return fmt.Sprintf("criterion(%d)", int(c))
	}
}

// ModelScore is one candidate's full scorecard.
type ModelScore struct {
	// Model is the scored candidate.
	Model Model
	// Validation holds the single-split pipeline output.
	Validation *Validation
	// CV is the rolling-origin one-step mean squared error; NaN unless
	// requested.
	CV float64
}

// SelectConfig tunes SelectModel.
type SelectConfig struct {
	// Criterion picks the ranking score (default ByPMSE).
	Criterion SelectionCriterion
	// Validate configures the single-split pipeline.
	Validate ValidateConfig
	// CVMinTrain is the smallest training prefix for rolling-origin CV
	// (default max(8, 2·(params+1))). Only used with ByCV or when
	// AlwaysCV is set.
	CVMinTrain int
	// AlwaysCV computes the CV score even when another criterion ranks.
	AlwaysCV bool
}

// SelectionResult ranks candidate models on one dataset.
type SelectionResult struct {
	// Scores is sorted best-first under the configured criterion.
	Scores []ModelScore
	// Criterion echoes the ranking score used.
	Criterion SelectionCriterion
}

// Best returns the winning model.
func (r *SelectionResult) Best() ModelScore { return r.Scores[0] }

// SelectModel fits every candidate to the dataset, scores each with the
// full validation pipeline (plus rolling-origin cross-validation when
// requested), and ranks them. Candidates that fail to fit are dropped;
// an error is returned only if none survive.
func SelectModel(candidates []Model, data *timeseries.Series, cfg SelectConfig) (*SelectionResult, error) {
	return SelectModelCtx(context.Background(), candidates, data, cfg)
}

// SelectModelCtx is SelectModel under a context. Cancellation mid-sweep
// stops scoring further candidates: if at least one candidate already
// scored, the partial ranking is returned (degraded but usable);
// otherwise the context error is returned.
func SelectModelCtx(ctx context.Context, candidates []Model, data *timeseries.Series, cfg SelectConfig) (*SelectionResult, error) {
	if len(candidates) == 0 {
		return nil, fmt.Errorf("%w: no candidate models", ErrBadData)
	}
	if data == nil || data.Len() < 4 {
		return nil, fmt.Errorf("%w: need at least 4 observations", ErrBadData)
	}
	if cfg.Criterion == 0 {
		cfg.Criterion = ByPMSE
	}
	needCV := cfg.Criterion == ByCV || cfg.AlwaysCV

	var scores []ModelScore
	var firstErr error
	for _, m := range candidates {
		if cErr := ctx.Err(); cErr != nil {
			if len(scores) > 0 {
				break // partial ranking beats no ranking
			}
			return nil, fmt.Errorf("core: select: %w", cErr)
		}
		v, err := ValidateCtx(ctx, m, data, cfg.Validate)
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("%s: %w", m.Name(), err)
			}
			continue
		}
		score := ModelScore{Model: m, Validation: v, CV: math.NaN()}
		if needCV {
			cv, err := RollingOriginCVCtx(ctx, m, data, cfg.CVMinTrain, cfg.Validate.Fit)
			if err == nil {
				score.CV = cv
			}
		}
		scores = append(scores, score)
	}
	if len(scores) == 0 {
		return nil, fmt.Errorf("core: every candidate failed: %w", firstErr)
	}

	key := func(s ModelScore) float64 {
		switch cfg.Criterion {
		case ByAIC:
			return s.Validation.GoF.AIC
		case ByBIC:
			return s.Validation.GoF.BIC
		case ByCV:
			return s.CV
		default:
			return s.Validation.GoF.PMSE
		}
	}
	sort.SliceStable(scores, func(i, j int) bool {
		a, b := key(scores[i]), key(scores[j])
		// NaN scores sort last.
		if math.IsNaN(a) {
			return false
		}
		if math.IsNaN(b) {
			return true
		}
		return a < b
	})
	return &SelectionResult{Scores: scores, Criterion: cfg.Criterion}, nil
}

// RollingOriginCV computes the rolling-origin (expanding-window)
// one-step-ahead mean squared prediction error: for each origin k from
// minTrain to n−1, fit the model on observations [0, k) and score the
// squared error predicting observation k. Successive refits warm-start
// from the previous origin's parameters, which keeps the n−minTrain
// refits affordable.
func RollingOriginCV(m Model, data *timeseries.Series, minTrain int, fitCfg FitConfig) (float64, error) {
	return RollingOriginCVCtx(context.Background(), m, data, minTrain, fitCfg)
}

// RollingOriginCVCtx is RollingOriginCV under a context. Cancellation
// stops advancing the origin; the error ignores origins already scored
// only when none succeeded.
func RollingOriginCVCtx(ctx context.Context, m Model, data *timeseries.Series, minTrain int, fitCfg FitConfig) (float64, error) {
	if m == nil || data == nil {
		return math.NaN(), fmt.Errorf("%w: nil model or data", ErrBadData)
	}
	if minTrain <= 0 {
		minTrain = m.NumParams() + 1
		if minTrain < 8 {
			minTrain = 8
		}
	}
	if minTrain <= m.NumParams() {
		minTrain = m.NumParams() + 1
	}
	n := data.Len()
	if minTrain >= n {
		return math.NaN(), fmt.Errorf("%w: minTrain %d >= n %d", ErrBadData, minTrain, n)
	}
	// Cheap per-origin fits: the warm start carries most of the work.
	cfg := fitCfg
	if cfg.Starts <= 0 {
		cfg.Starts = 2
	}

	var (
		sum    float64
		count  int
		warmed []float64
	)
	for k := minTrain; k < n; k++ {
		if ctx.Err() != nil {
			break // score whatever origins completed
		}
		train, err := data.Slice(0, k)
		if err != nil {
			return math.NaN(), err
		}
		cfg.InitialParams = warmed
		fit, err := FitCtx(ctx, m, train, cfg)
		if err != nil {
			continue // origin skipped; CV averages the rest
		}
		warmed = fit.Params
		pred := fit.Eval(data.Time(k))
		d := data.Value(k) - pred
		sum += d * d
		count++
	}
	if count == 0 {
		if cErr := ctx.Err(); cErr != nil {
			return math.NaN(), fmt.Errorf("core: rolling-origin cv: %w", cErr)
		}
		return math.NaN(), fmt.Errorf("%w: every CV origin failed to fit", ErrBadData)
	}
	return sum / float64(count), nil
}

// ComparePredictive runs a Diebold–Mariano test of equal predictive
// accuracy between two fitted models on the same held-out series. A
// negative statistic with a small p-value means the first model's
// forecasts are significantly more accurate — statistical backing for
// Table I-style "who wins PMSE" comparisons.
func ComparePredictive(a, b *FitResult, test *timeseries.Series) (stat.DMResult, error) {
	if a == nil || b == nil || test == nil || test.Len() < 3 {
		return stat.DMResult{}, fmt.Errorf("%w: need two fits and >= 3 test points", ErrBadData)
	}
	return stat.DieboldMariano(a.Residuals(test), b.Residuals(test), 1)
}
