package core

import (
	"math"
	"testing"
)

// FuzzClassifyShape asserts the shape classifier is total: any slice of
// floats yields one of the known labels without panicking.
func FuzzClassifyShape(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4})
	f.Add([]byte{})
	f.Add([]byte{255, 0, 255, 0, 255})
	f.Fuzz(func(t *testing.T, raw []byte) {
		vals := make([]float64, len(raw))
		for i, b := range raw {
			vals[i] = 0.5 + float64(b)/255 // (0.5, 1.5]
		}
		got := ClassifyShape(vals)
		switch got {
		case ShapeV, ShapeU, ShapeW, ShapeL, ShapeJ, ShapeFlat:
		default:
			t.Fatalf("unknown shape %q", got)
		}
	})
}

// FuzzModelEval asserts Eval never panics on validated parameters over
// arbitrary times, and that valid parameters always produce finite
// values at finite nonnegative times for the bathtub models.
func FuzzModelEval(f *testing.F) {
	f.Add(1.0, -0.1, 0.01, 5.0)
	f.Add(0.5, -0.001, 0.0001, 47.0)
	f.Fuzz(func(t *testing.T, alpha, beta, gamma, x float64) {
		params := []float64{alpha, beta, gamma}
		quad := QuadraticModel{}
		if quad.Validate(params) == nil && x >= 0 && x < 1e6 &&
			!math.IsNaN(x) && !math.IsInf(x, 0) {
			if v := quad.Eval(params, x); math.IsNaN(v) {
				t.Fatalf("quadratic Eval(%v, %g) = NaN", params, x)
			}
		}
		// Competing risks needs positive parameters; reuse magnitudes.
		crParams := []float64{math.Abs(alpha), math.Abs(beta), math.Abs(gamma)}
		cr := CompetingRisksModel{}
		if cr.Validate(crParams) == nil && x >= 0 && x < 1e6 &&
			!math.IsNaN(x) && !math.IsInf(x, 0) {
			if v := cr.Eval(crParams, x); math.IsNaN(v) {
				t.Fatalf("competing risks Eval(%v, %g) = NaN", crParams, x)
			}
		}
	})
}

// FuzzRelativeError asserts Eq. (22) is total and nonnegative.
func FuzzRelativeError(f *testing.F) {
	f.Add(1.0, 2.0)
	f.Add(0.0, 0.0)
	f.Add(-5.0, 5.0)
	f.Fuzz(func(t *testing.T, actual, predicted float64) {
		if math.IsNaN(actual) || math.IsNaN(predicted) {
			return
		}
		got := RelativeError(actual, predicted)
		if got < 0 {
			t.Fatalf("RelativeError(%g, %g) = %g < 0", actual, predicted, got)
		}
	})
}
