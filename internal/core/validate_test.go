package core

import (
	"errors"
	"math"
	"testing"

	"resilience/internal/timeseries"
)

// vShapedSeries builds a clean 48-month V-shaped recession curve.
func vShapedSeries(t *testing.T) *timeseries.Series {
	t.Helper()
	vals := make([]float64, 48)
	for i := range vals {
		x := float64(i)
		vals[i] = 1 - 0.028*math.Sin(math.Pi*math.Min(x/34, 1)) + 0.0007*math.Max(0, x-34)
	}
	s, err := timeseries.FromValues(vals)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestValidatePipeline(t *testing.T) {
	data := vShapedSeries(t)
	v, err := Validate(CompetingRisksModel{}, data, ValidateConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if v.Train.Len() != 43 || v.Test.Len() != 5 {
		t.Errorf("split = %d/%d, want 43/5", v.Train.Len(), v.Test.Len())
	}
	if v.GoF.SSE < 0 || math.IsNaN(v.GoF.SSE) {
		t.Errorf("SSE = %g", v.GoF.SSE)
	}
	if math.IsNaN(v.GoF.PMSE) {
		t.Error("PMSE should be computed when a test set exists")
	}
	if v.GoF.R2Adj < 0.9 {
		t.Errorf("R2Adj = %g on clean V data, want > 0.9", v.GoF.R2Adj)
	}
	if v.EC < 0.8 || v.EC > 1 {
		t.Errorf("EC = %g", v.EC)
	}
	if len(v.Band.Times) != data.Len() {
		t.Errorf("band over %d points, want %d", len(v.Band.Times), data.Len())
	}
}

func TestValidateCustomSplit(t *testing.T) {
	data := vShapedSeries(t)
	v, err := Validate(QuadraticModel{}, data, ValidateConfig{TrainFraction: 0.75})
	if err != nil {
		t.Fatal(err)
	}
	if v.Train.Len() != 36 {
		t.Errorf("train = %d, want 36", v.Train.Len())
	}
}

func TestValidateRejectsBadInput(t *testing.T) {
	if _, err := Validate(QuadraticModel{}, nil, ValidateConfig{}); !errors.Is(err, ErrBadData) {
		t.Errorf("nil data: %v", err)
	}
	tiny, err := timeseries.FromValues([]float64{1, 0.9, 1.1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Validate(QuadraticModel{}, tiny, ValidateConfig{}); !errors.Is(err, ErrBadData) {
		t.Errorf("tiny data: %v", err)
	}
}

func TestCompareMetricsEndToEnd(t *testing.T) {
	data := vShapedSeries(t)
	v, err := Validate(CompetingRisksModel{}, data, ValidateConfig{})
	if err != nil {
		t.Fatal(err)
	}
	rows, err := CompareMetrics(v, data, MetricsConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("got %d metric rows, want 8", len(rows))
	}
	seen := map[MetricKind]bool{}
	for _, row := range rows {
		if seen[row.Kind] {
			t.Errorf("duplicate metric %v", row.Kind)
		}
		seen[row.Kind] = true
		if math.IsNaN(row.Actual) || math.IsNaN(row.Predicted) {
			t.Errorf("%v: NaN entries", row.Kind)
		}
	}
	// On clean data with a good fit, the headline metrics should predict
	// within a few percent.
	for _, row := range rows {
		switch row.Kind {
		case PerformancePreserved, AvgPreserved, NormalizedAvgPreserved:
			if row.RelErr > 0.05 {
				t.Errorf("%v: relative error %g too large", row.Kind, row.RelErr)
			}
		}
	}
	if _, err := CompareMetrics(nil, data, MetricsConfig{}); !errors.Is(err, ErrBadData) {
		t.Errorf("nil validation: %v", err)
	}
}

func TestValidateMixtureOnRecessionShape(t *testing.T) {
	data := vShapedSeries(t)
	mix, err := NewMixture(WeibullFamily{}, ExpFamily{}, LogTrend{})
	if err != nil {
		t.Fatal(err)
	}
	v, err := Validate(mix, data, ValidateConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if v.GoF.R2Adj < 0.8 {
		t.Errorf("wei-exp R2Adj = %g on V data, want > 0.8", v.GoF.R2Adj)
	}
}
