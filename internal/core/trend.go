package core

import "math"

// Trend is a deterministic time trend used by the mixture model's
// transition functions a₁(t) and a₂(t) (Eq. 7). The paper holds
// a₁(t) = 1 and considers a₂(t) ∈ {β, βt, e^{βt}, β·ln t}, all
// single-parameter increasing trends characteristic of economic data.
type Trend interface {
	// Name returns a short identifier such as "log" or "linear".
	Name() string
	// NumParams returns the number of trend parameters (0 or 1 for the
	// built-in trends).
	NumParams() int
	// Eval returns a(t; θ).
	Eval(params []float64, t float64) float64
	// GuessParam returns a starting value for the trend parameter given
	// the series horizon and terminal performance level.
	GuessParam(horizon, terminal float64) []float64
	// ParamBounds returns the feasible (lo, hi) box for the parameters.
	ParamBounds() (lo, hi []float64)
}

// GradTrend is implemented by trends with closed-form parameter
// gradients ∂a/∂θ, which mixture models compose into a full analytic
// Jacobian. All built-in trends implement it.
type GradTrend interface {
	Trend
	// DEval fills grad (length NumParams) with ∂a(t; θ)/∂θ.
	DEval(params []float64, t float64, grad []float64)
}

// UnitTrend is the fixed a(t) = 1 used for the degradation transition
// a₁(t) in the paper's experiments.
type UnitTrend struct{}

var _ GradTrend = UnitTrend{}

// Name returns "unit".
func (UnitTrend) Name() string { return "unit" }

// NumParams returns 0.
func (UnitTrend) NumParams() int { return 0 }

// Eval returns 1 for every t.
func (UnitTrend) Eval([]float64, float64) float64 { return 1 }

// DEval is a no-op: the unit trend has no parameters.
func (UnitTrend) DEval([]float64, float64, []float64) {}

// GuessParam returns nil: the unit trend has no parameters.
func (UnitTrend) GuessParam(_, _ float64) []float64 { return nil }

// ParamBounds returns empty bounds.
func (UnitTrend) ParamBounds() (lo, hi []float64) { return nil, nil }

// ConstTrend is a(t) = β.
type ConstTrend struct{}

var _ GradTrend = ConstTrend{}

// Name returns "const".
func (ConstTrend) Name() string { return "const" }

// NumParams returns 1.
func (ConstTrend) NumParams() int { return 1 }

// Eval returns β.
func (ConstTrend) Eval(params []float64, _ float64) float64 { return params[0] }

// DEval fills ∂β/∂β = 1.
func (ConstTrend) DEval(_ []float64, _ float64, grad []float64) { grad[0] = 1 }

// GuessParam starts at the terminal performance level: if recovery has
// completed by the horizon, a₂ ≈ P(t_end).
func (ConstTrend) GuessParam(_, terminal float64) []float64 {
	if terminal > 0 {
		return []float64{terminal}
	}
	return []float64{1}
}

// ParamBounds allows β ∈ (0, 100].
func (ConstTrend) ParamBounds() (lo, hi []float64) {
	return []float64{1e-9}, []float64{100}
}

// LinearTrend is a(t) = βt.
type LinearTrend struct{}

var _ GradTrend = LinearTrend{}

// Name returns "linear".
func (LinearTrend) Name() string { return "linear" }

// NumParams returns 1.
func (LinearTrend) NumParams() int { return 1 }

// Eval returns βt.
func (LinearTrend) Eval(params []float64, t float64) float64 { return params[0] * t }

// DEval fills ∂(βt)/∂β = t.
func (LinearTrend) DEval(_ []float64, t float64, grad []float64) { grad[0] = t }

// GuessParam starts at terminal/horizon so a₂(horizon) ≈ P(t_end).
func (LinearTrend) GuessParam(horizon, terminal float64) []float64 {
	if horizon > 0 && terminal > 0 {
		return []float64{terminal / horizon}
	}
	return []float64{0.05}
}

// ParamBounds allows β ∈ (0, 100].
func (LinearTrend) ParamBounds() (lo, hi []float64) {
	return []float64{1e-9}, []float64{100}
}

// ExpTrend is a(t) = e^{βt}.
type ExpTrend struct{}

var _ GradTrend = ExpTrend{}

// Name returns "exp-trend".
func (ExpTrend) Name() string { return "exp-trend" }

// NumParams returns 1.
func (ExpTrend) NumParams() int { return 1 }

// Eval returns e^{βt}.
func (ExpTrend) Eval(params []float64, t float64) float64 { return math.Exp(params[0] * t) }

// DEval fills ∂e^{βt}/∂β = t·e^{βt}.
func (ExpTrend) DEval(params []float64, t float64, grad []float64) {
	grad[0] = t * math.Exp(params[0]*t)
}

// GuessParam starts at ln(terminal)/horizon so a₂(horizon) ≈ P(t_end).
func (ExpTrend) GuessParam(horizon, terminal float64) []float64 {
	if horizon > 0 && terminal > 0 {
		return []float64{math.Log(math.Max(terminal, 1.0001)) / horizon}
	}
	return []float64{0.001}
}

// ParamBounds allows β ∈ (0, 1]: growth faster than e^t explodes on
// monthly horizons.
func (ExpTrend) ParamBounds() (lo, hi []float64) {
	return []float64{1e-12}, []float64{1}
}

// LogTrend is a(t) = β·ln(t), the transition the paper reports Table III
// results for (a₂(t) = β·ln t "performed well for each data set").
// Because ln t is undefined at t <= 0, Eval clamps t below at a small
// positive value; mixture evaluation additionally zeroes the recovery
// term wherever F₂(t) = 0, which covers t = 0 exactly.
type LogTrend struct{}

var _ GradTrend = LogTrend{}

// Name returns "log".
func (LogTrend) Name() string { return "log" }

// NumParams returns 1.
func (LogTrend) NumParams() int { return 1 }

// Eval returns β·ln(max(t, ε)).
func (LogTrend) Eval(params []float64, t float64) float64 {
	const eps = 1e-12
	return params[0] * math.Log(math.Max(t, eps))
}

// DEval fills ∂(β·ln t)/∂β = ln(max(t, ε)), matching Eval's clamp.
func (LogTrend) DEval(_ []float64, t float64, grad []float64) {
	const eps = 1e-12
	grad[0] = math.Log(math.Max(t, eps))
}

// GuessParam starts at terminal/ln(horizon) so a₂(horizon) ≈ P(t_end).
func (LogTrend) GuessParam(horizon, terminal float64) []float64 {
	if horizon > 1 && terminal > 0 {
		return []float64{terminal / math.Log(horizon)}
	}
	return []float64{0.3}
}

// ParamBounds allows β ∈ (0, 100].
func (LogTrend) ParamBounds() (lo, hi []float64) {
	return []float64{1e-9}, []float64{100}
}
