package core

import (
	"context"
	"fmt"
	"math"
	"sort"

	"resilience/internal/rng"
	"resilience/internal/timeseries"
)

// BootstrapConfig tunes the residual bootstrap.
type BootstrapConfig struct {
	// Replicates is the number of bootstrap refits (default 200).
	Replicates int
	// Alpha is the two-sided significance level for the percentile
	// intervals (default 0.05 for 95% intervals).
	Alpha float64
	// Seed drives the deterministic resampler (default 1).
	Seed uint64
	// Fit configures each replicate refit. Replicates warm-start from
	// the original estimate, so a small multistart budget suffices; zero
	// selects Starts = 2.
	Fit FitConfig
}

func (c BootstrapConfig) withDefaults() BootstrapConfig {
	if c.Replicates <= 0 {
		c.Replicates = 200
	}
	if !(c.Alpha > 0 && c.Alpha < 1) {
		c.Alpha = 0.05
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Fit.Starts <= 0 {
		c.Fit.Starts = 2
	}
	return c
}

// BootstrapResult summarizes the residual-bootstrap distribution of a
// fit: percentile confidence intervals for each parameter and a
// pointwise percentile band for the fitted curve. It extends the paper's
// normal-approximation intervals (Eqs. 12–13) with a
// distribution-free alternative, one of the Sec. VI future directions.
type BootstrapResult struct {
	// ParamLower and ParamUpper bound each parameter at the requested
	// confidence.
	ParamLower []float64
	ParamUpper []float64
	// ParamMedian is the per-parameter bootstrap median.
	ParamMedian []float64
	// Band is the pointwise percentile band of the refitted curves over
	// the training times.
	Band *Band
	// Succeeded counts replicates whose refit converged; the intervals
	// are computed from these.
	Succeeded int
	// Requested echoes the configured replicate count.
	Requested int
}

// Bootstrap runs a residual bootstrap around a fitted model: residuals
// are resampled with replacement, added back to the fitted curve to form
// synthetic series, and the model is refit to each. At least half the
// replicates must converge or an error is returned.
func Bootstrap(f *FitResult, cfg BootstrapConfig) (*BootstrapResult, error) {
	return BootstrapCtx(context.Background(), f, cfg)
}

// BootstrapCtx is Bootstrap under a context, checked before every
// replicate refit (and inside each refit's optimizer iterations).
// Cancellation mid-bootstrap returns the context error: percentile
// intervals from a truncated replicate set would be silently narrower
// than requested.
func BootstrapCtx(ctx context.Context, f *FitResult, cfg BootstrapConfig) (*BootstrapResult, error) {
	if f == nil || f.Train == nil {
		return nil, fmt.Errorf("%w: nil fit", ErrBadData)
	}
	cfg = cfg.withDefaults()
	n := f.Train.Len()
	if n < f.Model.NumParams()+2 {
		return nil, fmt.Errorf("%w: too few observations for bootstrap", ErrBadData)
	}

	times := f.Train.Times()
	fitted := f.Predict(times)
	residuals := f.Residuals(f.Train)

	gen := rng.New(cfg.Seed)
	resampled := make([]float64, n)
	synthetic := make([]float64, n)

	warmCfg := cfg.Fit
	warmCfg.InitialParams = f.Params

	paramDraws := make([][]float64, f.Model.NumParams())
	curveDraws := make([][]float64, n)
	for i := range curveDraws {
		curveDraws[i] = make([]float64, 0, cfg.Replicates)
	}

	succeeded := 0
	for rep := 0; rep < cfg.Replicates; rep++ {
		if cErr := ctx.Err(); cErr != nil {
			return nil, fmt.Errorf("core: bootstrap: %w", cErr)
		}
		if err := gen.Resample(resampled, residuals); err != nil {
			return nil, fmt.Errorf("core: bootstrap resample: %w", err)
		}
		for i := range synthetic {
			synthetic[i] = fitted[i] + resampled[i]
		}
		series, err := timeseries.NewSeries(times, synthetic)
		if err != nil {
			continue // non-finite synthetic values; skip the replicate
		}
		refit, err := FitCtx(ctx, f.Model, series, warmCfg)
		if err != nil {
			continue
		}
		succeeded++
		for j, p := range refit.Params {
			paramDraws[j] = append(paramDraws[j], p)
		}
		for i, t := range times {
			curveDraws[i] = append(curveDraws[i], refit.Eval(t))
		}
	}
	if succeeded < cfg.Replicates/2 {
		return nil, fmt.Errorf("%w: only %d/%d bootstrap replicates converged",
			ErrBadData, succeeded, cfg.Replicates)
	}

	out := &BootstrapResult{
		ParamLower:  make([]float64, f.Model.NumParams()),
		ParamUpper:  make([]float64, f.Model.NumParams()),
		ParamMedian: make([]float64, f.Model.NumParams()),
		Succeeded:   succeeded,
		Requested:   cfg.Replicates,
	}
	for j, draws := range paramDraws {
		lo, mid, hi := percentiles(draws, cfg.Alpha)
		out.ParamLower[j], out.ParamMedian[j], out.ParamUpper[j] = lo, mid, hi
	}
	band := &Band{
		Times:  times,
		Center: fitted,
		Lower:  make([]float64, n),
		Upper:  make([]float64, n),
		Sigma:  math.NaN(), // percentile band: no single sigma
		Z:      math.NaN(),
	}
	for i, draws := range curveDraws {
		lo, _, hi := percentiles(draws, cfg.Alpha)
		band.Lower[i], band.Upper[i] = lo, hi
	}
	out.Band = band
	return out, nil
}

// percentiles returns the α/2, 0.5, and 1−α/2 empirical quantiles of xs.
func percentiles(xs []float64, alpha float64) (lo, mid, hi float64) {
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	at := func(p float64) float64 {
		if len(sorted) == 1 {
			return sorted[0]
		}
		h := p * float64(len(sorted)-1)
		i := int(math.Floor(h))
		if i >= len(sorted)-1 {
			return sorted[len(sorted)-1]
		}
		frac := h - float64(i)
		return sorted[i] + frac*(sorted[i+1]-sorted[i])
	}
	return at(alpha / 2), at(0.5), at(1 - alpha/2)
}
