package core

import (
	"context"
	"fmt"
	"math"

	"resilience/internal/faultinject"
	"resilience/internal/numeric"
	"resilience/internal/optimize"
	"resilience/internal/telemetry"
	"resilience/internal/timeseries"
)

// FitConfig configures the least-squares fitting driver. The zero value
// selects the defaults used throughout the paper reproduction.
type FitConfig struct {
	// Starts is the number of multistart launches (default 12).
	Starts int
	// Workers bounds how many multistart launches run concurrently.
	// 0 selects min(Starts, GOMAXPROCS); 1 forces the sequential path.
	// The winner is deterministic at any worker count (see
	// optimize.MultiStartConfig.Workers).
	Workers int
	// SkipPolish disables the Levenberg–Marquardt refinement that runs
	// after multistart Nelder–Mead by default.
	SkipPolish bool
	// InitialParams, when non-nil, replaces the model's data-derived
	// guess as the first multistart point. Bootstrap replicates and
	// rolling-origin cross-validation warm-start from a previous fit this
	// way.
	InitialParams []float64
	// Local configures each local solve.
	Local optimize.Options
}

func (c FitConfig) withDefaults() FitConfig {
	if c.Starts <= 0 {
		c.Starts = 12
	}
	return c
}

// FitResult is a fitted resilience model bound to its training data.
type FitResult struct {
	// Model is the fitted family.
	Model Model
	// Params is the least-squares parameter estimate.
	Params []float64
	// Train is the series the model was fit to.
	Train *timeseries.Series
	// SSE is Eq. (9) evaluated over the training series.
	SSE float64
	// Evals counts objective evaluations spent by the optimizer.
	Evals int
	// JacEvals counts analytic Jacobian fills spent by the optimizer
	// (zero on the derivative-free and numerical-difference paths, whose
	// cost shows up in Evals instead).
	JacEvals int
	// Iterations counts major optimizer iterations across all starts.
	Iterations int
}

// Fit estimates the model's parameters from data by least squares
// (Eq. 8), minimizing Σᵢ (R(tᵢ) − P(tᵢ; θ))² with multistart Nelder–Mead
// followed by Levenberg–Marquardt polish.
func Fit(m Model, data *timeseries.Series, cfg FitConfig) (*FitResult, error) {
	return FitCtx(context.Background(), m, data, cfg)
}

// FitCtx is Fit under a context: the deadline is threaded through the
// multistart driver into every optimizer iteration, so an expired
// context returns (wrapped) context.DeadlineExceeded before a single
// objective evaluation and a cancellation mid-fit stops within one
// optimizer iteration. Panics escaping model code are contained and
// returned as errors matching optimize.ErrOptimizerPanic.
func FitCtx(ctx context.Context, m Model, data *timeseries.Series, cfg FitConfig) (result *FitResult, err error) {
	defer func() {
		if r := recover(); r != nil {
			result = nil
			err = fmt.Errorf("fit %s: %w", nameOf(m), &optimize.PanicError{Site: "core.fit", Value: r})
		}
	}()
	if m == nil {
		return nil, fmt.Errorf("%w: nil model", ErrBadData)
	}
	if data == nil || data.Len() < m.NumParams()+1 {
		return nil, fmt.Errorf("%w: need more observations than parameters (%d) to fit %s",
			ErrBadData, m.NumParams(), nameOf(m))
	}
	if cErr := ctx.Err(); cErr != nil {
		return nil, fmt.Errorf("fit %s: %w", nameOf(m), cErr)
	}
	if faultinject.Enabled() {
		faultinject.Fire("core.fit." + m.Name())
		faultinject.Sleep(ctx, "core.fit.delay."+m.Name())
	}
	cfg = cfg.withDefaults()

	// One span and one duration observation per fit, attempted or not;
	// iteration/eval histograms record only completed fits (the numbers
	// are meaningless for aborted ones). The deferred observer runs
	// before the recover guard above, so even a panicking fit leaves a
	// duration sample behind.
	fm := fitMetricsFor(m.Name())
	traceID := telemetry.TraceID(ctx)
	ctx, span := telemetry.StartSpanCtx(ctx, "fit."+m.Name())
	defer func() {
		if result != nil {
			d := span.End(telemetry.Int("iterations", result.Iterations),
				telemetry.Int("evals", result.Evals))
			fm.duration.ObserveWithExemplar(d.Seconds(), traceID)
			fm.iterations.Observe(float64(result.Iterations))
			fm.evals.Observe(float64(result.Evals))
		} else {
			fm.duration.ObserveWithExemplar(span.EndStatus("no result").Seconds(), traceID)
		}
	}()

	times := data.Times()
	values := data.Values()

	objective := func(params []float64) float64 {
		if m.Validate(params) != nil {
			return math.Inf(1)
		}
		var sse float64
		for i, t := range times {
			d := values[i] - m.Eval(params, t)
			sse += d * d
		}
		if faultinject.Enabled() {
			sse = faultinject.Float("core.fit.objective."+m.Name(), sse)
		}
		if math.IsNaN(sse) {
			return math.Inf(1)
		}
		return sse
	}
	// The optimize.Residual contract allows reusing the output buffer
	// between calls (the solvers copy what they retain), so one scratch
	// slice serves a whole solve's residual evaluations. The factory
	// hands each concurrent LM-first worker its own scratch; the winner
	// polish reuses the top-level instance on the calling goroutine.
	makeResidual := func() optimize.Residual {
		rScratch := make([]float64, len(times))
		return func(params []float64) ([]float64, error) {
			if err := m.Validate(params); err != nil {
				return nil, err
			}
			for i, t := range times {
				rScratch[i] = m.Eval(params, t) - values[i]
			}
			if !numeric.AllFinite(rScratch) {
				return nil, fmt.Errorf("%w: non-finite residual", ErrBadParams)
			}
			return rScratch, nil
		}
	}
	residual := makeResidual()

	guess := cfg.InitialParams
	if len(guess) != m.NumParams() {
		guess = m.Guess(data)
	}
	res, err := optimize.MultiStartCtx(ctx, objective, residual, guess, optimize.MultiStartConfig{
		Starts:          cfg.Starts,
		Bounds:          m.Bounds(),
		Local:           cfg.Local,
		Polish:          !cfg.SkipPolish,
		Workers:         cfg.Workers,
		Jacobian:        analyticJacobian(m, times),
		ResidualFactory: makeResidual,
	})
	if err != nil {
		return nil, fmt.Errorf("fit %s: %w", nameOf(m), err)
	}
	if err := m.Validate(res.X); err != nil {
		return nil, fmt.Errorf("fit %s: optimizer left feasible region: %w", nameOf(m), err)
	}
	if math.IsNaN(res.F) || math.IsInf(res.F, 0) {
		return nil, fmt.Errorf("fit %s: %w: objective non-finite at optimum", nameOf(m), ErrNoConvergence)
	}
	return &FitResult{
		Model:  m,
		Params: res.X,
		Train:  data,
		// res.F is exactly the Eq. (9) objective at res.X (the multistart
		// driver re-evaluates it after polish), so recomputing it here
		// would spend one full SSE pass per fit and skew the eval count.
		SSE:        res.F,
		Evals:      res.FuncEvals,
		JacEvals:   res.JacEvals,
		Iterations: res.Iterations,
	}, nil
}

// analyticJacobian builds the least-squares Jacobian filler for a model
// with closed-form gradients: row i is ∂rᵢ/∂θ = ∂P(tᵢ; θ)/∂θ, since the
// residual is P(tᵢ) − R(tᵢ) and the data term is constant. It returns
// nil when the model (or any mixture component) lacks exact gradients,
// which keeps the optimizer on its numerical-difference fallback. The
// returned function is pure over the captured times and per-call scratch,
// so concurrent multistart workers may share it.
func analyticJacobian(m Model, times []float64) optimize.JacobianFunc {
	jm, ok := m.(JacobianModel)
	if !ok || !jm.HasAnalyticJacobian() {
		return nil
	}
	return func(x []float64, jac [][]float64) error {
		if err := jm.Validate(x); err != nil {
			return err
		}
		for i, t := range times {
			jm.EvalGrad(x, t, jac[i])
		}
		return nil
	}
}

// PolishFailure reports a polish whose optimizer ran but produced no
// acceptable fit (stalled, left the feasible region, or a non-finite
// objective). Evals records the objective evaluations spent before the
// failure, so callers escalating to a full fit can account for the
// wasted work instead of silently dropping it from their cost metrics.
type PolishFailure struct {
	Err   error
	Evals int
}

func (e *PolishFailure) Error() string { return e.Err.Error() }

// Unwrap exposes the underlying cause (always ErrNoConvergence) to
// errors.Is/As.
func (e *PolishFailure) Unwrap() error { return e.Err }

// Polish runs PolishCtx without a context.
func Polish(m Model, data *timeseries.Series, start []float64, local optimize.Options) (*FitResult, error) {
	return PolishCtx(context.Background(), m, data, start, local)
}

// PolishCtx runs a single warm-started Levenberg–Marquardt solve from
// start — no multistart, no simplex — using the model's analytic
// Jacobian when it has one. It is the cheap path for incremental refits:
// when one new observation arrives, the previous optimum is a
// near-perfect seed and a handful of gradient steps re-converge where a
// full multistart would spend thousands of evaluations rediscovering the
// same basin.
//
// The solve must end Converged, inside the model's bounds, with a finite
// objective; anything else returns an error wrapping ErrNoConvergence so
// callers (monitor.Tracker) know to escalate to the full multistart
// chain. Panics are contained exactly as in FitCtx.
func PolishCtx(ctx context.Context, m Model, data *timeseries.Series, start []float64, local optimize.Options) (result *FitResult, err error) {
	defer func() {
		if r := recover(); r != nil {
			result = nil
			err = fmt.Errorf("polish %s: %w", nameOf(m), &optimize.PanicError{Site: "core.polish", Value: r})
		}
	}()
	if m == nil {
		return nil, fmt.Errorf("%w: nil model", ErrBadData)
	}
	if data == nil || data.Len() < m.NumParams()+1 {
		return nil, fmt.Errorf("%w: need more observations than parameters (%d) to fit %s",
			ErrBadData, m.NumParams(), nameOf(m))
	}
	if err := m.Validate(start); err != nil {
		return nil, fmt.Errorf("polish %s: bad start: %w", nameOf(m), err)
	}
	if cErr := ctx.Err(); cErr != nil {
		return nil, fmt.Errorf("polish %s: %w", nameOf(m), cErr)
	}

	// Polishes record into the same per-family fit histograms as full
	// fits: they are fits, just cheap ones, and the evals histogram is
	// exactly where the warm-path saving should be visible.
	fm := fitMetricsFor(m.Name())
	traceID := telemetry.TraceID(ctx)
	ctx, span := telemetry.StartSpanCtx(ctx, "polish."+m.Name())
	defer func() {
		if result != nil {
			d := span.End(telemetry.Int("iterations", result.Iterations),
				telemetry.Int("evals", result.Evals))
			fm.duration.ObserveWithExemplar(d.Seconds(), traceID)
			fm.iterations.Observe(float64(result.Iterations))
			fm.evals.Observe(float64(result.Evals))
		} else {
			fm.duration.ObserveWithExemplar(span.EndStatus("no result").Seconds(), traceID)
		}
	}()

	times := data.Times()
	values := data.Values()
	rScratch := make([]float64, len(times))
	residual := func(params []float64) ([]float64, error) {
		if err := m.Validate(params); err != nil {
			return nil, err
		}
		for i, t := range times {
			rScratch[i] = m.Eval(params, t) - values[i]
		}
		if !numeric.AllFinite(rScratch) {
			return nil, fmt.Errorf("%w: non-finite residual", ErrBadParams)
		}
		return rScratch, nil
	}

	// The solve runs in the bounds-transform z-space, exactly like the
	// multistart chain: iterates stay inside the search box by
	// construction, so a warm start resting near a bound cannot stall by
	// stepping outside the feasible region. The analytic Jacobian is
	// chain-ruled through the transform with DecodeDerivInto.
	bounds := m.Bounds()
	xJac := analyticJacobian(m, times)
	xbuf := make([]float64, bounds.Len())
	dbuf := make([]float64, bounds.Len())
	zres := func(z []float64) ([]float64, error) {
		bounds.DecodeInto(xbuf, z)
		return residual(xbuf)
	}
	var zjac optimize.JacobianFunc
	if xJac != nil {
		zjac = func(z []float64, jac [][]float64) error {
			bounds.DecodeInto(xbuf, z)
			if err := xJac(xbuf, jac); err != nil {
				return err
			}
			bounds.DecodeDerivInto(dbuf, z)
			for i := range jac {
				row := jac[i]
				for j := range row {
					row[j] *= dbuf[j]
				}
			}
			return nil
		}
	}
	z0 := make([]float64, bounds.Len())
	bounds.EncodeInto(z0, start)
	res, err := optimize.LeastSquaresJacCtx(ctx, zres, zjac, z0, local)
	if err != nil {
		return nil, fmt.Errorf("polish %s: %w", nameOf(m), err)
	}
	res.X = bounds.Decode(res.X)
	if res.Status != optimize.Converged {
		return nil, &PolishFailure{Evals: res.FuncEvals,
			Err: fmt.Errorf("polish %s: %w: %s", nameOf(m), ErrNoConvergence, res.Status)}
	}
	if err := m.Validate(res.X); err != nil {
		return nil, &PolishFailure{Evals: res.FuncEvals,
			Err: fmt.Errorf("polish %s: %w: left feasible region: %v", nameOf(m), ErrNoConvergence, err)}
	}
	if !m.Bounds().Contains(res.X) {
		return nil, &PolishFailure{Evals: res.FuncEvals,
			Err: fmt.Errorf("polish %s: %w: left search box", nameOf(m), ErrNoConvergence)}
	}
	// LM minimizes ½‖r‖²; doubling recovers the Eq. (9) SSE exactly
	// (division and multiplication by two are lossless in binary floating
	// point), keeping polished SSEs bit-comparable with FitCtx's.
	sse := 2 * res.F
	if math.IsNaN(sse) || math.IsInf(sse, 0) {
		return nil, &PolishFailure{Evals: res.FuncEvals,
			Err: fmt.Errorf("polish %s: %w: objective non-finite at optimum", nameOf(m), ErrNoConvergence)}
	}
	return &FitResult{
		Model:      m,
		Params:     res.X,
		Train:      data,
		SSE:        sse,
		Evals:      res.FuncEvals,
		JacEvals:   res.JacEvals,
		Iterations: res.Iterations,
	}, nil
}

// Eval returns the fitted curve value P̂(t).
func (f *FitResult) Eval(t float64) float64 {
	return f.Model.Eval(f.Params, t)
}

// Predict evaluates the fitted curve at each time in ts.
func (f *FitResult) Predict(ts []float64) []float64 {
	out := make([]float64, len(ts))
	for i, t := range ts {
		out[i] = f.Eval(t)
	}
	return out
}

// Residuals returns R(tᵢ) − P̂(tᵢ) over an arbitrary series.
func (f *FitResult) Residuals(data *timeseries.Series) []float64 {
	out := make([]float64, data.Len())
	for i := 0; i < data.Len(); i++ {
		out[i] = data.Value(i) - f.Eval(data.Time(i))
	}
	return out
}

// nameOf guards against Name() on a nil interface implementation.
func nameOf(m Model) string {
	if m == nil {
		return "<nil>"
	}
	return m.Name()
}

// fitWithObjective runs the multistart driver against a custom scalar
// objective (e.g. a weighted SSE) instead of the standard Eq. (8) sum.
// No Levenberg–Marquardt polish is applied, since the objective need not
// decompose into residuals.
func fitWithObjective(m Model, data *timeseries.Series, cfg FitConfig, objective func([]float64) float64) (*FitResult, error) {
	return fitWithObjectiveCtx(context.Background(), m, data, cfg, objective)
}

// fitWithObjectiveCtx is fitWithObjective under a context (see FitCtx
// for the cancellation and panic-isolation contract).
func fitWithObjectiveCtx(ctx context.Context, m Model, data *timeseries.Series, cfg FitConfig, objective func([]float64) float64) (result *FitResult, err error) {
	defer func() {
		if r := recover(); r != nil {
			result = nil
			err = fmt.Errorf("fit %s: %w", nameOf(m), &optimize.PanicError{Site: "core.fit-objective", Value: r})
		}
	}()
	if m == nil || objective == nil {
		return nil, fmt.Errorf("%w: nil model or objective", ErrBadData)
	}
	if data == nil || data.Len() < m.NumParams()+1 {
		return nil, fmt.Errorf("%w: need more observations than parameters", ErrBadData)
	}
	if cErr := ctx.Err(); cErr != nil {
		return nil, fmt.Errorf("fit %s: %w", nameOf(m), cErr)
	}
	cfg = cfg.withDefaults()

	guarded := func(params []float64) float64 {
		if m.Validate(params) != nil {
			return math.Inf(1)
		}
		v := objective(params)
		if math.IsNaN(v) {
			return math.Inf(1)
		}
		return v
	}
	guess := cfg.InitialParams
	if len(guess) != m.NumParams() {
		guess = m.Guess(data)
	}
	res, err := optimize.MultiStartCtx(ctx, guarded, nil, guess, optimize.MultiStartConfig{
		Starts:  cfg.Starts,
		Bounds:  m.Bounds(),
		Local:   cfg.Local,
		Workers: cfg.Workers,
	})
	if err != nil {
		return nil, fmt.Errorf("fit %s: %w", nameOf(m), err)
	}
	if err := m.Validate(res.X); err != nil {
		return nil, fmt.Errorf("fit %s: optimizer left feasible region: %w", nameOf(m), err)
	}
	if math.IsNaN(res.F) || math.IsInf(res.F, 0) {
		return nil, fmt.Errorf("fit %s: %w: objective non-finite at optimum", nameOf(m), ErrNoConvergence)
	}
	return &FitResult{
		Model:  m,
		Params: res.X,
		Train:  data,
		// res.F equals the guarded objective at res.X; see FitCtx.
		SSE:        res.F,
		Evals:      res.FuncEvals,
		Iterations: res.Iterations,
	}, nil
}
