package core

import (
	"fmt"
	"math"

	"resilience/internal/stat"
	"resilience/internal/timeseries"
)

// GoF bundles the goodness-of-fit measures of Sec. III-B.1 plus the AIC
// and BIC extensions.
type GoF struct {
	// SSE is the sum of squared errors over the training data (Eq. 9).
	SSE float64
	// PMSE is the predictive mean squared error over the held-out data
	// (Eq. 10); NaN when no test data was supplied.
	PMSE float64
	// R2Adj is the adjusted coefficient of determination over the
	// training data (Eq. 11).
	R2Adj float64
	// R2 is the unadjusted coefficient of determination.
	R2 float64
	// AIC is Akaike's information criterion under a Gaussian error model,
	// an extension beyond the paper's measures.
	AIC float64
	// BIC is the Bayesian information criterion under the same model.
	BIC float64
}

// SSE computes Eq. (9): Σ (R(tᵢ) − P(tᵢ))² over the series.
func SSE(f *FitResult, data *timeseries.Series) (float64, error) {
	if f == nil || data == nil || data.Len() == 0 {
		return math.NaN(), fmt.Errorf("%w: SSE needs a fit and data", ErrBadData)
	}
	var sse float64
	for _, r := range f.Residuals(data) {
		sse += r * r
	}
	return sse, nil
}

// PMSE computes Eq. (10): the mean squared prediction residual over the
// ℓ held-out observations, (1/ℓ) Σ (R(tᵢ) − P(tᵢ))².
func PMSE(f *FitResult, test *timeseries.Series) (float64, error) {
	sse, err := SSE(f, test)
	if err != nil {
		return math.NaN(), err
	}
	return sse / float64(test.Len()), nil
}

// R2Adjusted computes Eq. (11):
//
//	r²adj = 1 − (SSE/SSY)·(n−1)/(n−m−1)
//
// where SSY is the total sum of squares about the sample mean (the error
// of the naive mean predictor) and m is the number of model parameters.
// It can be negative when the model fits worse than the mean, which is
// exactly what the paper reports for the quadratic model on the W-shaped
// 1980 recession.
func R2Adjusted(f *FitResult, data *timeseries.Series) (float64, error) {
	r2, err := R2(f, data)
	if err != nil {
		return math.NaN(), err
	}
	n := float64(data.Len())
	m := float64(f.Model.NumParams())
	denom := n - m - 1
	if denom <= 0 {
		return math.NaN(), fmt.Errorf("%w: need n > m+1 for adjusted R²", ErrBadData)
	}
	return 1 - (1-r2)*(n-1)/denom, nil
}

// R2 computes the unadjusted coefficient of determination 1 − SSE/SSY.
func R2(f *FitResult, data *timeseries.Series) (float64, error) {
	sse, err := SSE(f, data)
	if err != nil {
		return math.NaN(), err
	}
	mean, err := stat.Mean(data.Values())
	if err != nil {
		return math.NaN(), err
	}
	ssy := stat.SumSquares(data.Values(), mean)
	if ssy == 0 {
		return math.NaN(), fmt.Errorf("%w: zero variance data", ErrBadData)
	}
	return 1 - sse/ssy, nil
}

// InformationCriteria returns (AIC, BIC) under a Gaussian error model:
// AIC = n·ln(SSE/n) + 2k, BIC = n·ln(SSE/n) + k·ln n, with k counting the
// model parameters plus the error variance.
func InformationCriteria(f *FitResult, data *timeseries.Series) (aic, bic float64, err error) {
	sse, err := SSE(f, data)
	if err != nil {
		return math.NaN(), math.NaN(), err
	}
	n := float64(data.Len())
	if sse <= 0 {
		// A perfect fit: the criteria diverge to −∞; report that rather
		// than erroring so model-selection loops can still rank.
		return math.Inf(-1), math.Inf(-1), nil
	}
	k := float64(f.Model.NumParams() + 1)
	base := n * math.Log(sse/n)
	return base + 2*k, base + k*math.Log(n), nil
}

// Evaluate computes the full goodness-of-fit bundle for a fit over its
// training data plus an optional held-out test set (pass nil to skip
// PMSE).
func Evaluate(f *FitResult, test *timeseries.Series) (GoF, error) {
	if f == nil {
		return GoF{}, fmt.Errorf("%w: nil fit", ErrBadData)
	}
	sse, err := SSE(f, f.Train)
	if err != nil {
		return GoF{}, err
	}
	r2, err := R2(f, f.Train)
	if err != nil {
		return GoF{}, err
	}
	r2adj, err := R2Adjusted(f, f.Train)
	if err != nil {
		return GoF{}, err
	}
	aic, bic, err := InformationCriteria(f, f.Train)
	if err != nil {
		return GoF{}, err
	}
	g := GoF{SSE: sse, R2: r2, R2Adj: r2adj, AIC: aic, BIC: bic, PMSE: math.NaN()}
	if test != nil && test.Len() > 0 {
		pmse, err := PMSE(f, test)
		if err != nil {
			return GoF{}, err
		}
		g.PMSE = pmse
	}
	return g, nil
}
