package core

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"resilience/internal/timeseries"
)

// flatWindow is a simple window over [0, 4] with nominal 1.
func flatWindow() Window {
	return Window{TH: 0, TR: 4, TD: 0, T0: 0, Nominal: 1, PMin: 1}
}

func TestComputeOnConstantCurve(t *testing.T) {
	// P(t) = 1 everywhere, window [0, 4], nominal 1, minimum at 0 level 1.
	curve := func(float64) float64 { return 1 }

	t.Run("continuous", func(t *testing.T) {
		set, err := Compute(curve, flatWindow(), MetricsConfig{Mode: Continuous})
		if err != nil {
			t.Fatal(err)
		}
		want := map[MetricKind]float64{
			PerformancePreserved:   4,
			PerformanceLost:        0,
			NormalizedAvgPreserved: 1,
			NormalizedAvgLost:      0,
			PreservedFromMinimum:   0,
			AvgPreserved:           1,
			AvgLost:                0,
			WeightedAvgPreserved:   1,
		}
		for k, w := range want {
			if got := set[k]; math.Abs(got-w) > 1e-9 {
				t.Errorf("%v = %g, want %g", k, got, w)
			}
		}
	})

	t.Run("discrete", func(t *testing.T) {
		set, err := Compute(curve, flatWindow(), MetricsConfig{Mode: DiscreteSum})
		if err != nil {
			t.Fatal(err)
		}
		// Discrete sum over t = 0..4 is 5 points: "area" = 5, lost = 4−5.
		if set[PerformancePreserved] != 5 {
			t.Errorf("preserved = %g, want 5", set[PerformancePreserved])
		}
		if set[PerformanceLost] != -1 {
			t.Errorf("lost = %g, want -1", set[PerformanceLost])
		}
		if math.Abs(set[AvgPreserved]-1.25) > 1e-12 {
			t.Errorf("avg preserved = %g, want 1.25", set[AvgPreserved])
		}
	})
}

func TestComputeOnLinearRecovery(t *testing.T) {
	// P(t) = t/10 over window [0, 10], nominal 1, minimum at t = 0 with
	// P = 0. Continuous integrals are exact.
	curve := func(t float64) float64 { return t / 10 }
	w := Window{TH: 0, TR: 10, TD: 0, T0: 0, Nominal: 1, PMin: 0}
	set, err := Compute(curve, w, MetricsConfig{Mode: Continuous, Alpha: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	// ∫ = 5; lost = 10−5 = 5; normalized averages 0.5; from-minimum:
	// ∫_0^10 − 0·10 = 5; avg = 0.5; weighted: td == t0 so the "before"
	// segment is the point value 0 → 0.5·0 + 0.5·0.5 = 0.25.
	checks := map[MetricKind]float64{
		PerformancePreserved:   5,
		PerformanceLost:        5,
		NormalizedAvgPreserved: 0.5,
		NormalizedAvgLost:      0.5,
		PreservedFromMinimum:   5,
		AvgPreserved:           0.5,
		AvgLost:                0.5,
		WeightedAvgPreserved:   0.25,
	}
	for k, want := range checks {
		if got := set[k]; math.Abs(got-want) > 1e-9 {
			t.Errorf("%v = %g, want %g", k, got, want)
		}
	}
}

func TestComputeWeightedMetricRespectsAlpha(t *testing.T) {
	// V-curve: down to 0 at t=5, back to 1 at t=10.
	curve := func(t float64) float64 {
		if t <= 5 {
			return 1 - t/5
		}
		return (t - 5) / 5
	}
	w := Window{TH: 0, TR: 10, TD: 5, T0: 0, Nominal: 1, PMin: 0}
	// Both halves average 0.5 by symmetry, so every alpha yields 0.5; use
	// an asymmetric curve to see alpha.
	set, err := Compute(curve, w, MetricsConfig{Mode: Continuous, Alpha: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(set[WeightedAvgPreserved]-0.5) > 1e-9 {
		t.Errorf("symmetric V: weighted = %g, want 0.5", set[WeightedAvgPreserved])
	}
	asym := func(t float64) float64 {
		if t <= 5 {
			return 1 - t/5 // average 0.5 before
		}
		return 1 // average 1 after
	}
	wa := Window{TH: 0, TR: 10, TD: 5, T0: 0, Nominal: 1, PMin: 0}
	set1, err := Compute(asym, wa, MetricsConfig{Mode: Continuous, Alpha: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	set2, err := Compute(asym, wa, MetricsConfig{Mode: Continuous, Alpha: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	want1 := 0.9*0.5 + 0.1*1.0
	want2 := 0.1*0.5 + 0.9*1.0
	if math.Abs(set1[WeightedAvgPreserved]-want1) > 1e-9 {
		t.Errorf("alpha 0.9: %g, want %g", set1[WeightedAvgPreserved], want1)
	}
	if math.Abs(set2[WeightedAvgPreserved]-want2) > 1e-9 {
		t.Errorf("alpha 0.1: %g, want %g", set2[WeightedAvgPreserved], want2)
	}
}

func TestComputeValidation(t *testing.T) {
	if _, err := Compute(nil, flatWindow(), MetricsConfig{}); !errors.Is(err, ErrBadData) {
		t.Errorf("nil curve: %v", err)
	}
	curve := func(float64) float64 { return 1 }
	bad := Window{TH: 4, TR: 4}
	if _, err := Compute(curve, bad, MetricsConfig{}); !errors.Is(err, ErrBadData) {
		t.Errorf("empty window: %v", err)
	}
}

func TestPredictiveWindowRules(t *testing.T) {
	// 10 points, dip at index 3, test split at index 8: t_h = 8, t_r = 9,
	// t_d from the data (interior minimum).
	vals := []float64{1, 0.95, 0.9, 0.88, 0.9, 0.94, 0.98, 1.0, 1.02, 1.04}
	data, err := timeseries.FromValues(vals)
	if err != nil {
		t.Fatal(err)
	}
	w, err := PredictiveWindow(data, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	if w.TH != 8 || w.TR != 9 || w.T0 != 0 {
		t.Errorf("window times = %+v", w)
	}
	if w.TD != 3 || w.PMin != 0.88 {
		t.Errorf("minimum = (%g, %g), want (3, 0.88)", w.TD, w.PMin)
	}
	if w.Nominal != 1.02 {
		t.Errorf("nominal = %g, want value at t_h", w.Nominal)
	}
}

func TestPredictiveWindowUsesModelWhenMinimumNotObserved(t *testing.T) {
	// Strictly decreasing data: the observed minimum is the last point, so
	// the window should consult the fitted model's vertex instead.
	vals := make([]float64, 12)
	for i := range vals {
		x := float64(i)
		vals[i] = 1 - 0.05*x + 0.001*x*x
	}
	data, err := timeseries.FromValues(vals)
	if err != nil {
		t.Fatal(err)
	}
	fit := &FitResult{
		Model:  QuadraticModel{},
		Params: []float64{1, -0.05, 0.001}, // vertex at t = 25
		Train:  data,
	}
	w, err := PredictiveWindow(data, 10, fit)
	if err != nil {
		t.Fatal(err)
	}
	// Vertex at 25 clamps to the horizon 11.
	if w.TD != 11 {
		t.Errorf("TD = %g, want 11 (clamped model vertex)", w.TD)
	}
}

func TestPredictiveWindowValidation(t *testing.T) {
	data, err := timeseries.FromValues([]float64{1, 0.9, 1, 1.1})
	if err != nil {
		t.Fatal(err)
	}
	for _, idx := range []int{0, -1, 4, 9} {
		if _, err := PredictiveWindow(data, idx, nil); !errors.Is(err, ErrBadData) {
			t.Errorf("testStart %d: want ErrBadData, got %v", idx, err)
		}
	}
	if _, err := PredictiveWindow(nil, 1, nil); !errors.Is(err, ErrBadData) {
		t.Errorf("nil data: %v", err)
	}
}

func TestActualVsPredictedMetricsAgreeOnExactFit(t *testing.T) {
	// When the model reproduces the data exactly, actual and predicted
	// metrics must agree and all relative errors vanish.
	m := QuadraticModel{}
	truth := []float64{1, -0.04, 0.002}
	vals := make([]float64, 20)
	for i := range vals {
		vals[i] = m.Eval(truth, float64(i))
	}
	data, err := timeseries.FromValues(vals)
	if err != nil {
		t.Fatal(err)
	}
	fit := &FitResult{Model: m, Params: truth, Train: data}
	w, err := PredictiveWindow(data, 15, fit)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []IntegrationMode{DiscreteSum, Continuous} {
		cfg := MetricsConfig{Mode: mode}
		actual, err := ActualMetrics(data, w, cfg)
		if err != nil {
			t.Fatal(err)
		}
		predicted, err := PredictedMetrics(fit, w, cfg)
		if err != nil {
			t.Fatal(err)
		}
		rel := RelativeErrors(actual, predicted)
		for k, r := range rel {
			// Continuous mode interpolates the data linearly between
			// samples while the model is quadratic, so allow a small gap.
			tol := 1e-9
			if mode == Continuous {
				tol = 5e-3
			}
			if r > tol {
				t.Errorf("mode %v, %v: relative error %g (actual %g vs predicted %g)",
					mode, k, r, actual[k], predicted[k])
			}
		}
	}
}

func TestRelativeError(t *testing.T) {
	tests := []struct {
		actual, predicted, want float64
	}{
		{2, 1.5, 0.25},
		{-2, -1.5, 0.25},
		{1, 1, 0},
		{0, 0, 0},
	}
	for _, tt := range tests {
		if got := RelativeError(tt.actual, tt.predicted); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("RelativeError(%g, %g) = %g, want %g", tt.actual, tt.predicted, got, tt.want)
		}
	}
	if !math.IsInf(RelativeError(0, 1), 1) {
		t.Error("zero actual with nonzero prediction should be +Inf")
	}
}

func TestMetricKindStrings(t *testing.T) {
	for _, k := range MetricKinds() {
		if s := k.String(); s == "" || s[:6] == "metric" {
			t.Errorf("kind %d has placeholder name %q", k, s)
		}
	}
	if MetricKind(99).String() != "metric(99)" {
		t.Error("unknown kind should render as metric(n)")
	}
	if len(MetricKinds()) != 8 {
		t.Errorf("expected 8 metrics, got %d", len(MetricKinds()))
	}
}

func TestMetricsPropertyNormalizationConsistency(t *testing.T) {
	// Property: normalized-average-preserved + normalized-average-lost = 1
	// and avg-preserved = preserved/span for arbitrary positive curves.
	f := func(a, b, c uint16) bool {
		curve := func(t float64) float64 {
			return 1 + 0.001*float64(a%100) + 0.01*float64(b%10)*math.Sin(t/3+float64(c%7))
		}
		w := Window{TH: 0, TR: 12, TD: 4, T0: 0, Nominal: curve(0), PMin: curve(4)}
		set, err := Compute(curve, w, MetricsConfig{Mode: Continuous})
		if err != nil {
			return false
		}
		sumTo1 := math.Abs(set[NormalizedAvgPreserved]+set[NormalizedAvgLost]-1) < 1e-9
		avgOK := math.Abs(set[AvgPreserved]-set[PerformancePreserved]/12) < 1e-9
		lostOK := math.Abs(set[AvgLost]*12-set[PerformanceLost]) < 1e-9
		return sumTo1 && avgOK && lostOK
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
