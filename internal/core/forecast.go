package core

import (
	"fmt"
	"math"

	"resilience/internal/stat"
)

// Forecast is a set of future-time predictions from a fitted model with
// an approximate uncertainty band.
type Forecast struct {
	// Times are the forecast horizons requested.
	Times []float64
	// Mean is the fitted-curve prediction P̂(t).
	Mean []float64
	// Lower and Upper bound each prediction at the requested confidence,
	// using the Eq. (12) residual dispersion scaled by the normal
	// critical value — the same machinery as the paper's in-sample bands,
	// extrapolated forward.
	Lower []float64
	Upper []float64
	// Sigma is the residual standard deviation the band is built from.
	Sigma float64
}

// ForecastAt predicts the fitted curve at the given future times with a
// (1−alpha) normal-approximation band. Times may be any nonnegative
// values, including far beyond the training window; the band width is
// constant in time, so treat long extrapolations with the usual caution.
func ForecastAt(f *FitResult, times []float64, alpha float64) (*Forecast, error) {
	if f == nil {
		return nil, fmt.Errorf("%w: nil fit", ErrBadData)
	}
	if len(times) == 0 {
		return nil, fmt.Errorf("%w: no forecast times", ErrBadData)
	}
	if !(alpha > 0 && alpha < 1) {
		return nil, fmt.Errorf("%w: alpha %g outside (0, 1)", ErrBadData, alpha)
	}
	for _, t := range times {
		if math.IsNaN(t) || math.IsInf(t, 0) {
			return nil, fmt.Errorf("%w: non-finite forecast time", ErrBadData)
		}
	}
	sigma, err := ResidualSigma(f)
	if err != nil {
		return nil, err
	}
	z := stat.ZCritical(alpha)
	out := &Forecast{
		Times: append([]float64(nil), times...),
		Mean:  make([]float64, len(times)),
		Lower: make([]float64, len(times)),
		Upper: make([]float64, len(times)),
		Sigma: sigma,
	}
	for i, t := range times {
		m := f.Eval(t)
		out.Mean[i] = m
		out.Lower[i] = m - z*sigma
		out.Upper[i] = m + z*sigma
	}
	return out, nil
}

// ForecastHorizon predicts the next `steps` equally spaced points after
// the training window, continuing its sampling interval — the "what
// happens over the next h months" call emergency planners need.
func ForecastHorizon(f *FitResult, steps int, alpha float64) (*Forecast, error) {
	if f == nil || f.Train == nil {
		return nil, fmt.Errorf("%w: nil fit", ErrBadData)
	}
	if steps <= 0 {
		return nil, fmt.Errorf("%w: non-positive steps", ErrBadData)
	}
	n := f.Train.Len()
	if n < 2 {
		return nil, fmt.Errorf("%w: need at least 2 training points", ErrBadData)
	}
	last := f.Train.Time(n - 1)
	dt := (last - f.Train.Time(0)) / float64(n-1)
	times := make([]float64, steps)
	for i := range times {
		times[i] = last + dt*float64(i+1)
	}
	return ForecastAt(f, times, alpha)
}
