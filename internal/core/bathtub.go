package core

import (
	"fmt"
	"math"

	"resilience/internal/optimize"
	"resilience/internal/timeseries"
)

// QuadraticModel is the bathtub-shaped quadratic hazard of Sec. II-A.1:
//
//	P(t) = α + βt + γt²     (Eq. 1, with the normalizing constant folded
//	                         into the parameters)
//
// The curve is bathtub-shaped (a single dip followed by recovery) when
// α, γ > 0 and −2√(αγ) < β < 0. The fitting bounds enforce α, γ > 0 and
// β < 0; the square-root condition is data-dependent and left to the
// optimizer.
type QuadraticModel struct{}

var (
	_ AreaModel     = QuadraticModel{}
	_ RecoveryModel = QuadraticModel{}
	_ MinimumModel  = QuadraticModel{}
	_ JacobianModel = QuadraticModel{}
)

// Name returns "quadratic".
func (QuadraticModel) Name() string { return "quadratic" }

// NumParams returns 3.
func (QuadraticModel) NumParams() int { return 3 }

// ParamNames returns the parameter names α, β, γ.
func (QuadraticModel) ParamNames() []string { return []string{"alpha", "beta", "gamma"} }

// Bounds constrains α ∈ (0, 5], β ∈ [−1, 0), γ ∈ (0, 1], generous boxes
// for performance data normalized near 1 on monthly time steps.
func (QuadraticModel) Bounds() optimize.Bounds {
	b, err := optimize.NewBounds(
		[]float64{1e-9, -1, 1e-12},
		[]float64{5, -1e-12, 1},
	)
	if err != nil {
		panic("core: quadratic bounds: " + err.Error()) // static bounds cannot fail
	}
	return b
}

// Guess derives a starting vector from the data: α from P(0), the vertex
// from the observed minimum, and γ from the post-minimum curvature.
func (QuadraticModel) Guess(data *timeseries.Series) []float64 {
	if data == nil || data.Len() < 3 {
		return []float64{1, -0.01, 0.001}
	}
	_, td, pd := data.Min()
	_, tEnd := data.Span()
	p0 := data.Value(0)
	pEnd := data.Value(data.Len() - 1)

	gamma := 1e-4
	if tEnd > td {
		gamma = (pEnd - pd) / ((tEnd - td) * (tEnd - td))
	}
	if !(gamma > 0) || math.IsInf(gamma, 0) {
		gamma = 1e-4
	}
	beta := -2 * gamma * math.Max(td, 1)
	alpha := p0
	if !(alpha > 0) {
		alpha = 1
	}
	return []float64{alpha, beta, gamma}
}

// Validate checks the vector length and the sign constraints α, γ > 0,
// β < 0.
func (m QuadraticModel) Validate(params []float64) error {
	if err := checkParams(m, params); err != nil {
		return err
	}
	alpha, beta, gamma := params[0], params[1], params[2]
	if !(alpha > 0) || !(gamma > 0) || !(beta < 0) {
		return fmt.Errorf("%w: quadratic needs alpha, gamma > 0 and beta < 0 (got %g, %g, %g)",
			ErrBadParams, alpha, beta, gamma)
	}
	return nil
}

// Eval returns α + βt + γt².
func (QuadraticModel) Eval(params []float64, t float64) float64 {
	return params[0] + params[1]*t + params[2]*t*t
}

// HasAnalyticJacobian reports true: the gradient is exact.
func (QuadraticModel) HasAnalyticJacobian() bool { return true }

// EvalGrad fills ∂P/∂(α, β, γ) = (1, t, t²): the model is linear in its
// parameters, so one LM iteration solves it exactly.
func (QuadraticModel) EvalGrad(_ []float64, t float64, grad []float64) {
	grad[0] = 1
	grad[1] = t
	grad[2] = t * t
}

// Area returns the closed-form Eq. (3): ∫ P dt = αt + βt²/2 + γt³/3
// evaluated over [t0, t1].
func (m QuadraticModel) Area(params []float64, t0, t1 float64) (float64, error) {
	if err := checkParams(m, params); err != nil {
		return math.NaN(), err
	}
	anti := func(t float64) float64 {
		return params[0]*t + params[1]*t*t/2 + params[2]*t*t*t/3
	}
	return anti(t1) - anti(t0), nil
}

// MinimumTime returns the vertex t_d = −β/(2γ).
func (m QuadraticModel) MinimumTime(params []float64) (float64, error) {
	if err := m.Validate(params); err != nil {
		return math.NaN(), err
	}
	return -params[1] / (2 * params[2]), nil
}

// RecoveryTime solves α + βt + γt² = level for the post-minimum root,
// Eq. (2):
//
//	t_r = [−β + √(β² − 4αγ + 4γ·level)] / (2γ)
func (m QuadraticModel) RecoveryTime(params []float64, level float64) (float64, error) {
	if err := m.Validate(params); err != nil {
		return math.NaN(), err
	}
	alpha, beta, gamma := params[0], params[1], params[2]
	disc := beta*beta - 4*gamma*alpha + 4*gamma*level
	if disc < 0 {
		return math.NaN(), fmt.Errorf("%w: level %g below curve minimum", ErrNoRecovery, level)
	}
	return (-beta + math.Sqrt(disc)) / (2 * gamma), nil
}

// CompetingRisksModel is the competing-risks bathtub hazard of
// Sec. II-A.2 (Hjorth's distribution, the paper's reference [20]):
//
//	P(t) = 2γt + α/(1 + βt)     (Eq. 4, normalizing constant folded in)
//
// The decreasing risk α/(1+βt) and the increasing risk 2γt compete; for
// α, β, γ > 0 the curve is bathtub-shaped when the decreasing term
// initially dominates (αβ > 2γ).
type CompetingRisksModel struct{}

var (
	_ AreaModel     = CompetingRisksModel{}
	_ RecoveryModel = CompetingRisksModel{}
	_ MinimumModel  = CompetingRisksModel{}
	_ JacobianModel = CompetingRisksModel{}
)

// Name returns "competing-risks".
func (CompetingRisksModel) Name() string { return "competing-risks" }

// NumParams returns 3.
func (CompetingRisksModel) NumParams() int { return 3 }

// ParamNames returns the parameter names α, β, γ.
func (CompetingRisksModel) ParamNames() []string { return []string{"alpha", "beta", "gamma"} }

// Bounds constrains all three parameters to be positive with generous
// upper limits for normalized monthly data.
func (CompetingRisksModel) Bounds() optimize.Bounds {
	b, err := optimize.NewBounds(
		[]float64{1e-9, 1e-9, 1e-12},
		[]float64{5, 10, 1},
	)
	if err != nil {
		panic("core: competing-risks bounds: " + err.Error()) // static bounds cannot fail
	}
	return b
}

// Guess derives a starting vector: α from P(0), γ from the post-minimum
// slope, and β from the observed time of minimum.
func (CompetingRisksModel) Guess(data *timeseries.Series) []float64 {
	if data == nil || data.Len() < 3 {
		return []float64{1, 0.1, 0.001}
	}
	_, td, pd := data.Min()
	_, tEnd := data.Span()
	p0 := data.Value(0)
	pEnd := data.Value(data.Len() - 1)

	alpha := p0
	if !(alpha > 0) {
		alpha = 1
	}
	gamma := 5e-4
	if tEnd > td {
		gamma = (pEnd - pd) / (2 * (tEnd - td))
	}
	if !(gamma > 0) || math.IsInf(gamma, 0) {
		gamma = 5e-4
	}
	// At the minimum, (1+βt_d)² = αβ/(2γ); for small βt_d this gives
	// β ≈ 2γ/α·(1+βt_d)² — start from the simplest consistent value.
	beta := 2 * gamma / alpha * 4
	if td > 0 {
		beta = math.Max(beta, 1/(2*td))
	}
	return []float64{alpha, beta, gamma}
}

// Validate checks the vector length and positivity of all parameters.
func (m CompetingRisksModel) Validate(params []float64) error {
	if err := checkParams(m, params); err != nil {
		return err
	}
	if !(params[0] > 0) || !(params[1] > 0) || !(params[2] > 0) {
		return fmt.Errorf("%w: competing risks needs alpha, beta, gamma > 0 (got %g, %g, %g)",
			ErrBadParams, params[0], params[1], params[2])
	}
	return nil
}

// Eval returns 2γt + α/(1+βt).
func (CompetingRisksModel) Eval(params []float64, t float64) float64 {
	return 2*params[2]*t + params[0]/(1+params[1]*t)
}

// HasAnalyticJacobian reports true: the gradient is exact.
func (CompetingRisksModel) HasAnalyticJacobian() bool { return true }

// EvalGrad fills ∂P/∂(α, β, γ) = (1/(1+βt), −αt/(1+βt)², 2t).
func (CompetingRisksModel) EvalGrad(params []float64, t float64, grad []float64) {
	d := 1 + params[1]*t
	grad[0] = 1 / d
	grad[1] = -params[0] * t / (d * d)
	grad[2] = 2 * t
}

// Area returns the closed-form Eq. (6): ∫ P dt = γt² + α·ln(1+βt)/β
// evaluated over [t0, t1].
func (m CompetingRisksModel) Area(params []float64, t0, t1 float64) (float64, error) {
	if err := m.Validate(params); err != nil {
		return math.NaN(), err
	}
	alpha, beta, gamma := params[0], params[1], params[2]
	anti := func(t float64) float64 {
		return gamma*t*t + alpha*math.Log1p(beta*t)/beta
	}
	return anti(t1) - anti(t0), nil
}

// MinimumTime solves P'(t) = 2γ − αβ/(1+βt)² = 0 for
// t_d = (√(αβ/(2γ)) − 1)/β. If the curve is monotonically increasing
// (αβ <= 2γ) the minimum is at t = 0.
func (m CompetingRisksModel) MinimumTime(params []float64) (float64, error) {
	if err := m.Validate(params); err != nil {
		return math.NaN(), err
	}
	alpha, beta, gamma := params[0], params[1], params[2]
	if alpha*beta <= 2*gamma {
		return 0, nil
	}
	return (math.Sqrt(alpha*beta/(2*gamma)) - 1) / beta, nil
}

// RecoveryTime solves 2γt + α/(1+βt) = level for the post-minimum root,
// Eq. (5):
//
//	t_r = [β·level − 2γ + √(β²·level² + 4βγ·level − 8αβγ + 4γ²)] / (4βγ)
func (m CompetingRisksModel) RecoveryTime(params []float64, level float64) (float64, error) {
	if err := m.Validate(params); err != nil {
		return math.NaN(), err
	}
	alpha, beta, gamma := params[0], params[1], params[2]
	disc := beta*beta*level*level + 4*beta*gamma*level - 8*alpha*beta*gamma + 4*gamma*gamma
	if disc < 0 {
		return math.NaN(), fmt.Errorf("%w: level %g below curve minimum", ErrNoRecovery, level)
	}
	return (beta*level - 2*gamma + math.Sqrt(disc)) / (4 * beta * gamma), nil
}
