package core

import (
	"fmt"
	"math"

	"resilience/internal/stat"
	"resilience/internal/timeseries"
)

// Band is a per-observation confidence band around a fitted curve.
type Band struct {
	// Times are the observation times the band is evaluated at.
	Times []float64
	// Center is the fitted curve P̂(tᵢ).
	Center []float64
	// Lower and Upper are the band edges at each time.
	Lower []float64
	// Upper is the upper band edge.
	Upper []float64
	// Sigma is the residual standard deviation √(SSE/(n−2)) of Eq. (12).
	Sigma float64
	// Z is the critical value z_{1−α/2} used to scale the band.
	Z float64
}

// ResidualSigma computes Eq. (12): σ = √(SSE/(n−2)), the dispersion of
// the fit residuals over the training data.
func ResidualSigma(f *FitResult) (float64, error) {
	if f == nil || f.Train == nil {
		return math.NaN(), fmt.Errorf("%w: nil fit", ErrBadData)
	}
	n := f.Train.Len()
	if n <= 2 {
		return math.NaN(), fmt.Errorf("%w: need n > 2 for residual variance", ErrBadData)
	}
	sse, err := SSE(f, f.Train)
	if err != nil {
		return math.NaN(), err
	}
	return math.Sqrt(sse / float64(n-2)), nil
}

// ConfidenceBand builds the level band P̂(tᵢ) ± z_{1−α/2}·σ over the
// given series (typically the full series including the held-out tail, as
// in Figs. 3–6). σ comes from the training residuals via Eq. (12) and z
// from the standard normal quantile.
func ConfidenceBand(f *FitResult, data *timeseries.Series, alpha float64) (*Band, error) {
	if data == nil || data.Len() == 0 {
		return nil, fmt.Errorf("%w: empty series", ErrBadData)
	}
	if !(alpha > 0 && alpha < 1) {
		return nil, fmt.Errorf("%w: alpha %g outside (0, 1)", ErrBadData, alpha)
	}
	sigma, err := ResidualSigma(f)
	if err != nil {
		return nil, err
	}
	z := stat.ZCritical(alpha)
	b := &Band{
		Times:  data.Times(),
		Center: make([]float64, data.Len()),
		Lower:  make([]float64, data.Len()),
		Upper:  make([]float64, data.Len()),
		Sigma:  sigma,
		Z:      z,
	}
	for i := range b.Times {
		c := f.Eval(b.Times[i])
		b.Center[i] = c
		b.Lower[i] = c - z*sigma
		b.Upper[i] = c + z*sigma
	}
	return b, nil
}

// DeltaCI computes Eq. (13) literally: confidence limits for the change
// in performance between consecutive intervals, ΔP̂(tᵢ) ± z_{1−α/2}·σ.
// The returned band is indexed at the later time of each consecutive
// pair, so it has Len−1 entries.
func DeltaCI(f *FitResult, data *timeseries.Series, alpha float64) (*Band, error) {
	if data == nil || data.Len() < 2 {
		return nil, fmt.Errorf("%w: need at least 2 observations for delta CI", ErrBadData)
	}
	if !(alpha > 0 && alpha < 1) {
		return nil, fmt.Errorf("%w: alpha %g outside (0, 1)", ErrBadData, alpha)
	}
	sigma, err := ResidualSigma(f)
	if err != nil {
		return nil, err
	}
	z := stat.ZCritical(alpha)
	n := data.Len() - 1
	b := &Band{
		Times:  make([]float64, n),
		Center: make([]float64, n),
		Lower:  make([]float64, n),
		Upper:  make([]float64, n),
		Sigma:  sigma,
		Z:      z,
	}
	for i := 1; i <= n; i++ {
		delta := f.Eval(data.Time(i)) - f.Eval(data.Time(i-1))
		b.Times[i-1] = data.Time(i)
		b.Center[i-1] = delta
		b.Lower[i-1] = delta - z*sigma
		b.Upper[i-1] = delta + z*sigma
	}
	return b, nil
}

// EmpiricalCoverage returns the fraction of observed values contained by
// the band: the EC measure the paper reports alongside each fit. The band
// must have been built over the same series.
func EmpiricalCoverage(b *Band, data *timeseries.Series) (float64, error) {
	if b == nil || data == nil {
		return math.NaN(), fmt.Errorf("%w: nil band or data", ErrBadData)
	}
	if len(b.Times) != data.Len() {
		return math.NaN(), fmt.Errorf("%w: band covers %d points, data has %d",
			ErrBadData, len(b.Times), data.Len())
	}
	inside := 0
	for i := 0; i < data.Len(); i++ {
		v := data.Value(i)
		if v >= b.Lower[i] && v <= b.Upper[i] {
			inside++
		}
	}
	return float64(inside) / float64(data.Len()), nil
}

// DeltaCoverage returns the fraction of observed performance *changes*
// ΔR(tᵢ) covered by a DeltaCI band, the literal Eq. (13) reading of
// empirical coverage.
func DeltaCoverage(b *Band, data *timeseries.Series) (float64, error) {
	if b == nil || data == nil || data.Len() < 2 {
		return math.NaN(), fmt.Errorf("%w: nil band or too-short data", ErrBadData)
	}
	if len(b.Times) != data.Len()-1 {
		return math.NaN(), fmt.Errorf("%w: band covers %d deltas, data yields %d",
			ErrBadData, len(b.Times), data.Len()-1)
	}
	inside := 0
	for i := 1; i < data.Len(); i++ {
		d := data.Value(i) - data.Value(i-1)
		if d >= b.Lower[i-1] && d <= b.Upper[i-1] {
			inside++
		}
	}
	return float64(inside) / float64(data.Len()-1), nil
}
