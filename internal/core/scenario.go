package core

import (
	"fmt"
	"math"
)

// Intervention models a restoration activity applied to a fitted
// resilience curve — the paper's Sec. VI future work asks how predicted
// performance moves "as a function of disruptive events and activities
// to restore performance". An intervention starting at time Start
// accelerates the post-Start clock by Accel: the system traverses the
// remaining recovery path Accel times faster (surge staffing, mutual-aid
// crews, autoscaling). Accel < 1 models a slowdown (resource
// exhaustion).
type Intervention struct {
	// Start is the absolute time the intervention takes effect.
	Start float64
	// Accel is the clock multiplier for t > Start; must be positive.
	Accel float64
}

// Validate checks the intervention's fields.
func (iv Intervention) Validate() error {
	if math.IsNaN(iv.Start) || math.IsInf(iv.Start, 0) || iv.Start < 0 {
		return fmt.Errorf("%w: intervention start %g", ErrBadData, iv.Start)
	}
	if !(iv.Accel > 0) || math.IsInf(iv.Accel, 0) {
		return fmt.Errorf("%w: intervention acceleration %g must be positive", ErrBadData, iv.Accel)
	}
	return nil
}

// Apply returns the intervened curve: identical to the fit before Start,
// then time-dilated so recovery proceeds Accel× faster. The curve stays
// continuous at Start by construction.
func (iv Intervention) Apply(f *FitResult) (func(float64) float64, error) {
	if f == nil {
		return nil, fmt.Errorf("%w: nil fit", ErrBadData)
	}
	if err := iv.Validate(); err != nil {
		return nil, err
	}
	return func(t float64) float64 {
		if t <= iv.Start {
			return f.Eval(t)
		}
		return f.Eval(iv.Start + iv.Accel*(t-iv.Start))
	}, nil
}

// ScenarioImpact quantifies an intervention: recovery times and metric
// sets with and without it.
type ScenarioImpact struct {
	// BaselineRecovery and IntervenedRecovery are the times performance
	// regains the target level under each curve; NaN when unreachable
	// within the horizon.
	BaselineRecovery   float64
	IntervenedRecovery float64
	// RecoverySaved is Baseline − Intervened (positive = faster).
	RecoverySaved float64
	// Baseline and Intervened are the interval metrics for each curve
	// over the same window.
	Baseline   MetricSet
	Intervened MetricSet
}

// EvaluateIntervention compares the fitted curve against the intervened
// one: when does each regain `level`, and how do the interval metrics
// move over [0, horizon]?
func EvaluateIntervention(f *FitResult, iv Intervention, level, horizon float64) (*ScenarioImpact, error) {
	if f == nil {
		return nil, fmt.Errorf("%w: nil fit", ErrBadData)
	}
	if !(horizon > 0) {
		return nil, fmt.Errorf("%w: non-positive horizon", ErrBadData)
	}
	curve, err := iv.Apply(f)
	if err != nil {
		return nil, err
	}

	impact := &ScenarioImpact{
		BaselineRecovery:   math.NaN(),
		IntervenedRecovery: math.NaN(),
		RecoverySaved:      math.NaN(),
	}
	// Both recovery times come from the same horizon-bounded search so
	// the comparison is apples-to-apples (the closed forms ignore the
	// horizon).
	if tr, err := curveRecovery(f.Eval, level, horizon); err == nil {
		impact.BaselineRecovery = tr
	}
	if tr, err := curveRecovery(curve, level, horizon); err == nil {
		impact.IntervenedRecovery = tr
	}
	if !math.IsNaN(impact.BaselineRecovery) && !math.IsNaN(impact.IntervenedRecovery) {
		impact.RecoverySaved = impact.BaselineRecovery - impact.IntervenedRecovery
	}

	td, err := ModelMinimum(f, horizon)
	if err != nil {
		return nil, err
	}
	w := Window{
		TH: 0, TR: horizon, TD: td, T0: 0,
		Nominal: f.Eval(0), PMin: f.Eval(td),
	}
	cfg := MetricsConfig{Mode: Continuous}
	impact.Baseline, err = Compute(f.Eval, w, cfg)
	if err != nil {
		return nil, err
	}
	// The intervened curve shares the window anatomy (t_d can only move
	// earlier; reuse the clamped value at the same level for
	// comparability).
	impact.Intervened, err = Compute(curve, w, cfg)
	if err != nil {
		return nil, err
	}
	return impact, nil
}

// curveRecovery locates the time an arbitrary curve *recovers* to the
// level: the first upward crossing after the curve has dropped below it.
// A curve that starts at or above the level and never drops below it is
// already recovered at t = 0.
func curveRecovery(curve func(float64) float64, level, horizon float64) (float64, error) {
	const gridN = 1024
	below := curve(0) < level
	prevT := 0.0
	for i := 1; i <= gridN; i++ {
		t := horizon * float64(i) / gridN
		v := curve(t)
		if !below {
			if v < level {
				below = true // degradation has begun
			}
			prevT = t
			continue
		}
		if v >= level {
			// Upward crossing: bisect within [prevT, t].
			lo, hi := prevT, t
			for iter := 0; iter < 60; iter++ {
				mid := lo + (hi-lo)/2
				if curve(mid) >= level {
					hi = mid
				} else {
					lo = mid
				}
			}
			return hi, nil
		}
		prevT = t
	}
	if !below {
		// Never dropped below the level: recovered throughout.
		return 0, nil
	}
	return math.NaN(), fmt.Errorf("%w: level %g not reached within %g", ErrNoRecovery, level, horizon)
}
