package core

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"resilience/internal/quadrature"
	"resilience/internal/timeseries"
)

func TestQuadraticEval(t *testing.T) {
	m := QuadraticModel{}
	params := []float64{1, -0.2, 0.01}
	tests := []struct {
		t, want float64
	}{
		{0, 1},
		{1, 1 - 0.2 + 0.01},
		{10, 1 - 2 + 1},
		{20, 1 - 4 + 4},
	}
	for _, tt := range tests {
		if got := m.Eval(params, tt.t); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("Eval(%g) = %g, want %g", tt.t, got, tt.want)
		}
	}
}

func TestQuadraticValidate(t *testing.T) {
	m := QuadraticModel{}
	if err := m.Validate([]float64{1, -0.1, 0.01}); err != nil {
		t.Errorf("valid params rejected: %v", err)
	}
	bad := [][]float64{
		{1, -0.1},            // wrong length
		{-1, -0.1, 0.01},     // alpha <= 0
		{1, 0.1, 0.01},       // beta >= 0
		{1, -0.1, -0.01},     // gamma <= 0
		{1, -0.1, 0.01, 0.5}, // too long
	}
	for _, p := range bad {
		if err := m.Validate(p); !errors.Is(err, ErrBadParams) {
			t.Errorf("Validate(%v): want ErrBadParams, got %v", p, err)
		}
	}
}

func TestQuadraticAreaMatchesQuadrature(t *testing.T) {
	m := QuadraticModel{}
	params := []float64{1, -0.15, 0.004}
	analytic, err := m.Area(params, 0, 40)
	if err != nil {
		t.Fatal(err)
	}
	numeric, err := quadrature.Adaptive(func(x float64) float64 {
		return m.Eval(params, x)
	}, 0, 40, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(analytic-numeric) > 1e-8 {
		t.Errorf("Area analytic %g vs quadrature %g", analytic, numeric)
	}
}

func TestQuadraticMinimumAndRecovery(t *testing.T) {
	m := QuadraticModel{}
	params := []float64{1, -0.2, 0.01} // vertex at t = 10, min value 0
	td, err := m.MinimumTime(params)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(td-10) > 1e-12 {
		t.Errorf("MinimumTime = %g, want 10", td)
	}
	// Recovery to the starting level 1 happens at t = 20 by symmetry.
	tr, err := m.RecoveryTime(params, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tr-20) > 1e-9 {
		t.Errorf("RecoveryTime(1) = %g, want 20", tr)
	}
	if got := m.Eval(params, tr); math.Abs(got-1) > 1e-9 {
		t.Errorf("Eval at recovery = %g, want 1", got)
	}
	// A level below the minimum is unreachable.
	if _, err := m.RecoveryTime(params, -0.5); !errors.Is(err, ErrNoRecovery) {
		t.Errorf("below-minimum level: want ErrNoRecovery, got %v", err)
	}
}

func TestCompetingRisksEval(t *testing.T) {
	m := CompetingRisksModel{}
	params := []float64{1, 0.5, 0.01}
	if got := m.Eval(params, 0); math.Abs(got-1) > 1e-12 {
		t.Errorf("Eval(0) = %g, want alpha", got)
	}
	// Hand-computed: 2·0.01·10 + 1/(1+5) = 0.2 + 1/6.
	if got := m.Eval(params, 10); math.Abs(got-(0.2+1.0/6)) > 1e-12 {
		t.Errorf("Eval(10) = %g", got)
	}
}

func TestCompetingRisksValidate(t *testing.T) {
	m := CompetingRisksModel{}
	if err := m.Validate([]float64{1, 0.5, 0.01}); err != nil {
		t.Errorf("valid params rejected: %v", err)
	}
	for _, p := range [][]float64{{1, 0.5}, {0, 0.5, 0.01}, {1, -0.5, 0.01}, {1, 0.5, 0}} {
		if err := m.Validate(p); !errors.Is(err, ErrBadParams) {
			t.Errorf("Validate(%v): want ErrBadParams, got %v", p, err)
		}
	}
}

func TestCompetingRisksAreaMatchesQuadrature(t *testing.T) {
	m := CompetingRisksModel{}
	params := []float64{1, 0.4, 0.002}
	analytic, err := m.Area(params, 0, 45)
	if err != nil {
		t.Fatal(err)
	}
	numeric, err := quadrature.Adaptive(func(x float64) float64 {
		return m.Eval(params, x)
	}, 0, 45, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(analytic-numeric) > 1e-8 {
		t.Errorf("Area analytic %g vs quadrature %g", analytic, numeric)
	}
}

func TestCompetingRisksMinimum(t *testing.T) {
	m := CompetingRisksModel{}
	params := []float64{1, 0.5, 0.01} // alpha*beta = 0.5 > 2*gamma = 0.02: bathtub
	td, err := m.MinimumTime(params)
	if err != nil {
		t.Fatal(err)
	}
	// Verify stationarity: derivative 2γ − αβ/(1+βt)² vanishes at td.
	deriv := 2*params[2] - params[0]*params[1]/math.Pow(1+params[1]*td, 2)
	if math.Abs(deriv) > 1e-10 {
		t.Errorf("derivative at minimum = %g", deriv)
	}
	// The value at td must not exceed neighbours.
	p := m.Eval(params, td)
	if m.Eval(params, td-0.1) < p || m.Eval(params, td+0.1) < p {
		t.Error("MinimumTime is not a local minimum")
	}
	// Monotone case: alpha*beta <= 2*gamma means minimum at 0.
	mono := []float64{0.1, 0.1, 0.5}
	td, err = m.MinimumTime(mono)
	if err != nil || td != 0 {
		t.Errorf("monotone case: td = %g, err %v; want 0", td, err)
	}
}

func TestCompetingRisksRecoveryConsistency(t *testing.T) {
	// Property: for valid bathtub parameters, Eval(RecoveryTime(level))
	// equals level and the recovery is after the minimum.
	m := CompetingRisksModel{}
	f := func(aSeed, bSeed, gSeed uint16) bool {
		alpha := 0.5 + float64(aSeed%100)/100  // [0.5, 1.5)
		beta := 0.1 + float64(bSeed%200)/100   // [0.1, 2.1)
		gamma := 1e-4 + float64(gSeed%100)/2e4 // small
		params := []float64{alpha, beta, gamma}
		if alpha*beta <= 2*gamma {
			return true // not a bathtub; skip
		}
		td, err := m.MinimumTime(params)
		if err != nil {
			return false
		}
		level := alpha // the initial level is always recoverable
		tr, err := m.RecoveryTime(params, level)
		if err != nil {
			return false
		}
		return tr >= td-1e-9 && math.Abs(m.Eval(params, tr)-level) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuadraticRecoveryConsistencyProperty(t *testing.T) {
	m := QuadraticModel{}
	f := func(aSeed, bSeed, gSeed uint16) bool {
		alpha := 0.5 + float64(aSeed%100)/100
		gamma := 1e-4 + float64(gSeed%100)/1e4
		// Keep beta in the bathtub range (−2√(αγ), 0).
		maxB := 2 * math.Sqrt(alpha*gamma)
		beta := -maxB * (0.1 + 0.8*float64(bSeed%100)/100)
		params := []float64{alpha, beta, gamma}
		tr, err := m.RecoveryTime(params, alpha)
		if err != nil {
			return false
		}
		td, err := m.MinimumTime(params)
		if err != nil {
			return false
		}
		return tr >= td && math.Abs(m.Eval(params, tr)-alpha) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGuessesAreFeasible(t *testing.T) {
	// Guesses must validate and lie inside the fitting bounds for
	// realistic data and for degenerate inputs.
	series, err := timeseries.FromValues([]float64{1, 0.98, 0.96, 0.97, 0.99, 1.01, 1.03})
	if err != nil {
		t.Fatal(err)
	}
	rising, err := timeseries.FromValues([]float64{1, 1.01, 1.02, 1.03})
	if err != nil {
		t.Fatal(err)
	}
	models := []Model{QuadraticModel{}, CompetingRisksModel{}}
	for _, m := range StandardMixtures() {
		models = append(models, m)
	}
	for _, m := range models {
		for _, data := range []*timeseries.Series{series, rising, nil} {
			g := m.Guess(data)
			if len(g) != m.NumParams() {
				t.Errorf("%s: guess length %d, want %d", m.Name(), len(g), m.NumParams())
				continue
			}
			if err := m.Validate(g); err != nil {
				t.Errorf("%s: guess %v invalid: %v", m.Name(), g, err)
			}
		}
	}
}

func TestParamNamesMatchCount(t *testing.T) {
	models := []Model{QuadraticModel{}, CompetingRisksModel{}}
	for _, m := range StandardMixtures() {
		models = append(models, m)
	}
	for _, m := range models {
		if got := len(m.ParamNames()); got != m.NumParams() {
			t.Errorf("%s: %d names for %d params", m.Name(), got, m.NumParams())
		}
		if m.Bounds().Len() != m.NumParams() {
			t.Errorf("%s: bounds dimension mismatch", m.Name())
		}
	}
}
