package core

import (
	"errors"
	"math"
	"testing"

	"resilience/internal/timeseries"
)

// crShapedSeries samples a competing-risks curve plus small noise, so
// that model truly is the best candidate.
func crShapedSeries(t *testing.T) *timeseries.Series {
	t.Helper()
	m := CompetingRisksModel{}
	truth := []float64{1, 0.35, 0.001}
	vals := make([]float64, 48)
	for i := range vals {
		x := float64(i)
		vals[i] = m.Eval(truth, x) + 0.0008*math.Sin(3*x)
	}
	s, err := timeseries.FromValues(vals)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSelectModelRanksByPMSE(t *testing.T) {
	data := crShapedSeries(t)
	candidates := []Model{
		QuadraticModel{},
		CompetingRisksModel{},
		StandardMixtures()[0], // exp-exp: should rank poorly
	}
	res, err := SelectModel(candidates, data, SelectConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Scores) != 3 {
		t.Fatalf("%d scores", len(res.Scores))
	}
	if res.Criterion != ByPMSE {
		t.Errorf("criterion = %v", res.Criterion)
	}
	// Sorted best-first by PMSE.
	for i := 1; i < len(res.Scores); i++ {
		if res.Scores[i-1].Validation.GoF.PMSE > res.Scores[i].Validation.GoF.PMSE {
			t.Errorf("scores not sorted at %d", i)
		}
	}
	if best := res.Best().Model.Name(); best != "competing-risks" {
		t.Errorf("best = %s, want competing-risks on its own data", best)
	}
}

func TestSelectModelByInformationCriteria(t *testing.T) {
	data := crShapedSeries(t)
	candidates := []Model{QuadraticModel{}, CompetingRisksModel{}}
	for _, crit := range []SelectionCriterion{ByAIC, ByBIC} {
		res, err := SelectModel(candidates, data, SelectConfig{Criterion: crit})
		if err != nil {
			t.Fatalf("%v: %v", crit, err)
		}
		if res.Best().Model.Name() != "competing-risks" {
			t.Errorf("%v: best = %s", crit, res.Best().Model.Name())
		}
	}
}

func TestSelectModelByCV(t *testing.T) {
	data := crShapedSeries(t)
	candidates := []Model{QuadraticModel{}, CompetingRisksModel{}}
	res, err := SelectModel(candidates, data, SelectConfig{Criterion: ByCV, CVMinTrain: 30})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Scores {
		if math.IsNaN(s.CV) {
			t.Errorf("%s: CV not computed", s.Model.Name())
		}
	}
	if res.Best().Model.Name() != "competing-risks" {
		t.Errorf("CV best = %s", res.Best().Model.Name())
	}
}

func TestSelectModelValidation(t *testing.T) {
	data := crShapedSeries(t)
	if _, err := SelectModel(nil, data, SelectConfig{}); !errors.Is(err, ErrBadData) {
		t.Errorf("no candidates: %v", err)
	}
	if _, err := SelectModel([]Model{QuadraticModel{}}, nil, SelectConfig{}); !errors.Is(err, ErrBadData) {
		t.Errorf("nil data: %v", err)
	}
}

func TestSelectionCriterionString(t *testing.T) {
	tests := []struct {
		c    SelectionCriterion
		want string
	}{
		{ByPMSE, "pmse"}, {ByAIC, "aic"}, {ByBIC, "bic"}, {ByCV, "cv"},
		{SelectionCriterion(42), "criterion(42)"},
	}
	for _, tt := range tests {
		if got := tt.c.String(); got != tt.want {
			t.Errorf("String(%d) = %q", tt.c, got)
		}
	}
}

func TestRollingOriginCV(t *testing.T) {
	data := crShapedSeries(t)
	cv, err := RollingOriginCV(CompetingRisksModel{}, data, 36, FitConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if cv <= 0 || cv > 0.001 {
		t.Errorf("CV = %g, want small positive (noise-level)", cv)
	}
	// The wrong model family scores worse.
	cvBad, err := RollingOriginCV(StandardMixtures()[0], data, 36, FitConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if cvBad <= cv {
		t.Errorf("exp-exp CV %g should exceed competing-risks CV %g", cvBad, cv)
	}
}

func TestRollingOriginCVValidation(t *testing.T) {
	data := crShapedSeries(t)
	if _, err := RollingOriginCV(nil, data, 10, FitConfig{}); !errors.Is(err, ErrBadData) {
		t.Errorf("nil model: %v", err)
	}
	if _, err := RollingOriginCV(QuadraticModel{}, data, 48, FitConfig{}); !errors.Is(err, ErrBadData) {
		t.Errorf("minTrain >= n: %v", err)
	}
	// Default minTrain applies when non-positive.
	if _, err := RollingOriginCV(QuadraticModel{}, data, 0, FitConfig{}); err != nil {
		t.Errorf("default minTrain: %v", err)
	}
}

func TestPointMetricsOnKnownCurve(t *testing.T) {
	// V: down from 1 to 0.8 at t=5, back to 1.1 at t=15.
	curve := func(t float64) float64 {
		if t <= 5 {
			return 1 - 0.04*t
		}
		return 0.8 + 0.03*(t-5)
	}
	w := Window{TH: 0, TR: 15, TD: 5, T0: 0, Nominal: 1, PMin: 0.8}
	pm, err := ComputePointMetrics(curve, w)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pm.Robustness-0.8) > 1e-9 {
		t.Errorf("robustness = %g", pm.Robustness)
	}
	if math.Abs(pm.Rapidity-0.03) > 1e-9 {
		t.Errorf("rapidity = %g", pm.Rapidity)
	}
	if pm.TimeToMinimum != 5 || pm.TimeToRecovery != 15 {
		t.Errorf("times = %g, %g", pm.TimeToMinimum, pm.TimeToRecovery)
	}
	// Resilience loss: triangle area ∫(1−P). Down phase: ½·5·0.2 = 0.5;
	// up phase: ∫(1 − (0.8+0.03u))du over [0,10] = 2−1.5+... compute:
	// ∫0..10 (0.2 − 0.03u) du = 2 − 1.5 = 0.5. Total 1.0.
	if math.Abs(pm.ResilienceLoss-1.0) > 1e-6 {
		t.Errorf("resilience loss = %g, want 1.0", pm.ResilienceLoss)
	}
}

func TestPointMetricsValidation(t *testing.T) {
	if _, err := ComputePointMetrics(nil, Window{TH: 0, TR: 1, Nominal: 1}); !errors.Is(err, ErrBadData) {
		t.Errorf("nil curve: %v", err)
	}
	c := func(float64) float64 { return 1 }
	if _, err := ComputePointMetrics(c, Window{TH: 1, TR: 1, Nominal: 1}); !errors.Is(err, ErrBadData) {
		t.Errorf("empty window: %v", err)
	}
	if _, err := ComputePointMetrics(c, Window{TH: 0, TR: 1, Nominal: 0}); !errors.Is(err, ErrBadData) {
		t.Errorf("zero nominal: %v", err)
	}
}

func TestFitPointMetrics(t *testing.T) {
	data := crShapedSeries(t)
	fit, err := Fit(CompetingRisksModel{}, data, FitConfig{})
	if err != nil {
		t.Fatal(err)
	}
	pm, err := FitPointMetrics(fit, 0, 47, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if pm.Robustness <= 0 || pm.Robustness >= 1 {
		t.Errorf("robustness = %g, want in (0,1) for a dipping curve", pm.Robustness)
	}
	if pm.Rapidity <= 0 {
		t.Errorf("rapidity = %g, want positive", pm.Rapidity)
	}
	if pm.TimeToMinimum <= 0 || pm.TimeToRecovery <= pm.TimeToMinimum {
		t.Errorf("times: min %g, recovery %g", pm.TimeToMinimum, pm.TimeToRecovery)
	}
	if _, err := FitPointMetrics(nil, 0, 10, 1); !errors.Is(err, ErrBadData) {
		t.Errorf("nil fit: %v", err)
	}
	if _, err := FitPointMetrics(fit, 10, 10, 1); !errors.Is(err, ErrBadData) {
		t.Errorf("bad horizon: %v", err)
	}
}

func TestComparePredictive(t *testing.T) {
	data := crShapedSeries(t)
	train, test, err := data.SplitFraction(0.7)
	if err != nil {
		t.Fatal(err)
	}
	good, err := Fit(CompetingRisksModel{}, train, FitConfig{})
	if err != nil {
		t.Fatal(err)
	}
	bad, err := Fit(StandardMixtures()[0], train, FitConfig{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := ComparePredictive(good, bad, test)
	if err != nil {
		t.Fatal(err)
	}
	// The true-family model forecasts better: negative statistic.
	if res.Statistic >= 0 {
		t.Errorf("DM statistic = %g, want negative", res.Statistic)
	}
	if _, err := ComparePredictive(nil, bad, test); !errors.Is(err, ErrBadData) {
		t.Errorf("nil fit: %v", err)
	}
	tiny, err := seriesFrom([]float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ComparePredictive(good, bad, tiny); !errors.Is(err, ErrBadData) {
		t.Errorf("tiny test set: %v", err)
	}
}
