package core

import (
	"fmt"
	"strings"

	"resilience/internal/stat"
)

// ResidualDiagnostics checks the assumptions behind the paper's
// confidence intervals (Eqs. 12–13): uncorrelated, roughly Gaussian
// residuals. Each warning names the violated assumption and what it
// means for the reported bands.
type ResidualDiagnostics struct {
	// LjungBox tests residual autocorrelation (iid assumption).
	LjungBox stat.LjungBoxResult
	// JarqueBera tests residual normality (z critical-value assumption).
	JarqueBera stat.JarqueBeraResult
	// DurbinWatson is the lag-1 serial correlation statistic (≈2 = none).
	DurbinWatson float64
	// Warnings lists human-readable assumption violations at the 5%
	// level; empty means the Eq. (13) bands rest on solid ground.
	Warnings []string
}

// DiagnoseResiduals runs the assumption checks on a fit's training
// residuals. Curve-fit residuals are usually autocorrelated when the
// model misses structure (a W shape fit by a single dip, for example),
// which is exactly when the paper's bands overstate their confidence —
// these diagnostics surface that.
func DiagnoseResiduals(f *FitResult) (*ResidualDiagnostics, error) {
	if f == nil || f.Train == nil {
		return nil, fmt.Errorf("%w: nil fit", ErrBadData)
	}
	residuals := f.Residuals(f.Train)
	if len(residuals) < 8 {
		return nil, fmt.Errorf("%w: need at least 8 residuals to diagnose", ErrBadData)
	}

	out := &ResidualDiagnostics{}
	lb, err := stat.LjungBox(residuals, 0)
	if err != nil {
		return nil, fmt.Errorf("core: ljung-box: %w", err)
	}
	out.LjungBox = lb
	jb, err := stat.JarqueBera(residuals)
	if err != nil {
		return nil, fmt.Errorf("core: jarque-bera: %w", err)
	}
	out.JarqueBera = jb
	dw, err := stat.DurbinWatson(residuals)
	if err != nil {
		return nil, fmt.Errorf("core: durbin-watson: %w", err)
	}
	out.DurbinWatson = dw

	const alpha = 0.05
	if lb.PValue < alpha {
		out.Warnings = append(out.Warnings, fmt.Sprintf(
			"residuals are autocorrelated (Ljung-Box p=%.4f): the Eq. 13 "+
				"confidence bands assume independent errors and will be "+
				"narrower than honest; consider the bootstrap band instead",
			lb.PValue))
	}
	if jb.PValue < alpha {
		out.Warnings = append(out.Warnings, fmt.Sprintf(
			"residuals are non-Gaussian (Jarque-Bera p=%.4f, skew %.2f, "+
				"kurtosis %.2f): the z critical values in Eq. 13 may miss "+
				"the nominal coverage",
			jb.PValue, jb.Skewness, jb.Kurtosis))
	}
	if dw < 1 || dw > 3 {
		out.Warnings = append(out.Warnings, fmt.Sprintf(
			"strong lag-1 serial correlation (Durbin-Watson %.2f, expect ~2)", dw))
	}
	return out, nil
}

// Healthy reports whether no assumption violations were flagged.
func (d *ResidualDiagnostics) Healthy() bool { return len(d.Warnings) == 0 }

// String summarizes the diagnostics in one block.
func (d *ResidualDiagnostics) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ljung-Box Q=%.3f (p=%.4f, %d lags); ", d.LjungBox.Statistic, d.LjungBox.PValue, d.LjungBox.Lags)
	fmt.Fprintf(&b, "Jarque-Bera JB=%.3f (p=%.4f); ", d.JarqueBera.Statistic, d.JarqueBera.PValue)
	fmt.Fprintf(&b, "Durbin-Watson %.3f", d.DurbinWatson)
	for _, w := range d.Warnings {
		b.WriteString("\nwarning: " + w)
	}
	return b.String()
}
