package core

import (
	"errors"
	"math"
	"testing"

	"resilience/internal/optimize"
	"resilience/internal/timeseries"
)

// fixedModel is a one-parameter constant test model P(t) = c used to make
// goodness-of-fit arithmetic hand-checkable.
type fixedModel struct{}

func (fixedModel) Name() string                             { return "fixed" }
func (fixedModel) NumParams() int                           { return 1 }
func (fixedModel) ParamNames() []string                     { return []string{"c"} }
func (fixedModel) Eval(params []float64, _ float64) float64 { return params[0] }
func (fixedModel) Guess(*timeseries.Series) []float64       { return []float64{1} }
func (fixedModel) Bounds() optimize.Bounds                  { return optimize.Unbounded(1) }
func (fixedModel) Validate(params []float64) error {
	if len(params) != 1 {
		return ErrBadParams
	}
	return nil
}

func constFit(t *testing.T, c float64, data *timeseries.Series) *FitResult {
	t.Helper()
	return &FitResult{Model: fixedModel{}, Params: []float64{c}, Train: data}
}

func seriesOf(t *testing.T, vals ...float64) *timeseries.Series {
	t.Helper()
	s, err := timeseries.FromValues(vals)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSSEHandComputed(t *testing.T) {
	data := seriesOf(t, 1, 2, 3, 4)
	fit := constFit(t, 2, data)
	// Residuals: -1, 0, 1, 2 → SSE = 6.
	got, err := SSE(fit, data)
	if err != nil {
		t.Fatal(err)
	}
	if got != 6 {
		t.Errorf("SSE = %g, want 6", got)
	}
}

func TestPMSEHandComputed(t *testing.T) {
	train := seriesOf(t, 2, 2)
	fit := constFit(t, 2, train)
	test, err := timeseries.NewSeries([]float64{5, 6}, []float64{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	// Prediction residuals 1, 2 → PMSE = (1+4)/2 = 2.5.
	got, err := PMSE(fit, test)
	if err != nil {
		t.Fatal(err)
	}
	if got != 2.5 {
		t.Errorf("PMSE = %g, want 2.5", got)
	}
}

func TestR2AdjustedHandComputed(t *testing.T) {
	// Data 1,2,3,4,5 with mean 3; SSY = 10. Constant model c = 3 gives
	// SSE = 10, so R² = 0 and r²adj = 1 − (1)(4)/(5−1−1) = −1/3.
	data := seriesOf(t, 1, 2, 3, 4, 5)
	fit := constFit(t, 3, data)
	r2, err := R2(fit, data)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r2) > 1e-12 {
		t.Errorf("R2 = %g, want 0", r2)
	}
	adj, err := R2Adjusted(fit, data)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(adj-(-1.0/3)) > 1e-12 {
		t.Errorf("R2Adjusted = %g, want -1/3", adj)
	}
}

func TestR2AdjustedPenalizesParameters(t *testing.T) {
	// Two models with the same SSE: the one with more parameters must
	// score a lower adjusted R². Compare the 3-parameter quadratic vs the
	// 5-parameter wei-wei mixture on a shared residual pattern by faking
	// fits with identical predictions.
	vals := make([]float64, 20)
	for i := range vals {
		vals[i] = 1 + 0.01*math.Sin(float64(i))
	}
	data := seriesOf(t, vals...)

	quadFit := &FitResult{Model: QuadraticModel{}, Params: []float64{1, -1e-9, 1e-12}, Train: data}
	mixFit := &FitResult{Model: StandardMixtures()[3], Params: StandardMixtures()[3].Guess(data), Train: data}
	// Force identical predictions by comparing through the formula
	// directly: compute adjusted values for SSE = S with m = 3 vs m = 5.
	sseQuad, err := SSE(quadFit, data)
	if err != nil {
		t.Fatal(err)
	}
	_ = sseQuad
	adjQuad, err := R2Adjusted(quadFit, data)
	if err != nil {
		t.Fatal(err)
	}
	adjMix, err := R2Adjusted(mixFit, data)
	if err != nil {
		t.Fatal(err)
	}
	// The quadratic's predictions here are ~constant 1, same as the naive
	// mean; the mixture's guess curve differs. We only assert both are
	// finite and the formula ran; the direct penalty check follows.
	if math.IsNaN(adjQuad) || math.IsNaN(adjMix) {
		t.Error("adjusted R² is NaN")
	}

	// Direct formula check: same R², more params → smaller adjusted R².
	n := float64(20)
	adj := func(r2, m float64) float64 { return 1 - (1-r2)*(n-1)/(n-m-1) }
	if !(adj(0.9, 5) < adj(0.9, 3)) {
		t.Error("more parameters should reduce adjusted R²")
	}
}

func TestR2ErrorsOnDegenerateData(t *testing.T) {
	flat := seriesOf(t, 2, 2, 2, 2)
	fit := constFit(t, 2, flat)
	if _, err := R2(fit, flat); !errors.Is(err, ErrBadData) {
		t.Errorf("zero-variance data: %v", err)
	}
	tiny := seriesOf(t, 1, 2)
	fitTiny := constFit(t, 1, tiny)
	if _, err := R2Adjusted(fitTiny, tiny); !errors.Is(err, ErrBadData) {
		t.Errorf("n <= m+1: %v", err)
	}
}

func TestInformationCriteria(t *testing.T) {
	data := seriesOf(t, 1, 2, 3, 4, 5, 6)
	fit := constFit(t, 3.5, data)
	aic, bic, err := InformationCriteria(fit, data)
	if err != nil {
		t.Fatal(err)
	}
	// SSE = 2*(2.5² + 1.5² + 0.5²) = 17.5; n = 6; k = 2.
	wantBase := 6 * math.Log(17.5/6)
	if math.Abs(aic-(wantBase+4)) > 1e-12 {
		t.Errorf("AIC = %g, want %g", aic, wantBase+4)
	}
	if math.Abs(bic-(wantBase+2*math.Log(6))) > 1e-12 {
		t.Errorf("BIC = %g, want %g", bic, wantBase+2*math.Log(6))
	}
	// Perfect fit → −∞ criteria, not an error.
	perfect := seriesOf(t, 3, 3, 3)
	fitP := constFit(t, 3, perfect)
	aic, bic, err = InformationCriteria(fitP, perfect)
	if err != nil || !math.IsInf(aic, -1) || !math.IsInf(bic, -1) {
		t.Errorf("perfect fit: aic=%g bic=%g err=%v", aic, bic, err)
	}
}

func TestEvaluateBundle(t *testing.T) {
	data := seriesOf(t, 1, 2, 3, 4, 5)
	fit := constFit(t, 3, data)
	test, err := timeseries.NewSeries([]float64{10}, []float64{4})
	if err != nil {
		t.Fatal(err)
	}
	g, err := Evaluate(fit, test)
	if err != nil {
		t.Fatal(err)
	}
	if g.SSE != 10 || g.PMSE != 1 {
		t.Errorf("GoF = %+v", g)
	}
	// Without test data, PMSE is NaN.
	g2, err := Evaluate(fit, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(g2.PMSE) {
		t.Errorf("PMSE without test = %g, want NaN", g2.PMSE)
	}
	if _, err := Evaluate(nil, nil); !errors.Is(err, ErrBadData) {
		t.Errorf("nil fit: %v", err)
	}
}

func TestSSEInputValidation(t *testing.T) {
	if _, err := SSE(nil, nil); !errors.Is(err, ErrBadData) {
		t.Errorf("nil everything: %v", err)
	}
	data := seriesOf(t, 1, 2)
	if _, err := SSE(constFit(t, 1, data), nil); !errors.Is(err, ErrBadData) {
		t.Errorf("nil data: %v", err)
	}
}
