package core

import (
	"errors"
	"math"
	"strings"
	"testing"

	"resilience/internal/timeseries"
)

func TestDiagnoseResidualsHealthyFit(t *testing.T) {
	// A correct model with pseudo-random noise: diagnostics should pass
	// (the paper's CI assumptions hold).
	m := CompetingRisksModel{}
	truth := []float64{1, 0.3, 0.002}
	state := uint64(7)
	next := func() float64 {
		var s float64
		for j := 0; j < 12; j++ {
			state = state*6364136223846793005 + 1442695040888963407
			s += float64(state>>11) / (1 << 53)
		}
		return s - 6
	}
	// Noise large enough that the fitted curve's smooth approximation
	// error is negligible next to it; otherwise the test would probe the
	// optimizer, not the diagnostics.
	vals := make([]float64, 80)
	for i := range vals {
		vals[i] = m.Eval(truth, float64(i)) + 0.006*next()
	}
	data, err := timeseries.FromValues(vals)
	if err != nil {
		t.Fatal(err)
	}
	fit, err := Fit(m, data, FitConfig{})
	if err != nil {
		t.Fatal(err)
	}
	diag, err := DiagnoseResiduals(fit)
	if err != nil {
		t.Fatal(err)
	}
	if !diag.Healthy() {
		t.Errorf("healthy fit flagged: %v", diag.Warnings)
	}
	if diag.DurbinWatson < 1.4 || diag.DurbinWatson > 2.6 {
		t.Errorf("DW = %g on white residuals", diag.DurbinWatson)
	}
	if s := diag.String(); !strings.Contains(s, "Ljung-Box") || !strings.Contains(s, "Durbin-Watson") {
		t.Errorf("String() = %q", s)
	}
}

func TestDiagnoseResidualsFlagsMisfit(t *testing.T) {
	// Fit a single-dip model to a W shape: the structured residuals must
	// trip the autocorrelation warning — exactly the situation where the
	// paper's bands overstate confidence.
	data := wShapedSeries(t)
	fit, err := Fit(CompetingRisksModel{}, data, FitConfig{})
	if err != nil {
		t.Fatal(err)
	}
	diag, err := DiagnoseResiduals(fit)
	if err != nil {
		t.Fatal(err)
	}
	if diag.Healthy() {
		t.Error("misfit residuals passed diagnostics")
	}
	if diag.LjungBox.PValue > 0.05 {
		t.Errorf("Ljung-Box p = %g, want < 0.05 on structured residuals", diag.LjungBox.PValue)
	}
	if !strings.Contains(diag.String(), "warning:") {
		t.Error("String() missing warnings")
	}
}

func TestDiagnoseResidualsValidation(t *testing.T) {
	if _, err := DiagnoseResiduals(nil); !errors.Is(err, ErrBadData) {
		t.Errorf("nil fit: %v", err)
	}
	tiny, err := timeseries.FromValues([]float64{1, 0.9, 0.95, 1})
	if err != nil {
		t.Fatal(err)
	}
	fit := &FitResult{Model: QuadraticModel{}, Params: []float64{1, -0.05, 0.01}, Train: tiny}
	if _, err := DiagnoseResiduals(fit); !errors.Is(err, ErrBadData) {
		t.Errorf("too few residuals: %v", err)
	}
}

func TestDiagnosticsAgreeWithCoverage(t *testing.T) {
	// Sanity link: when diagnostics flag a misfit, the model's band EC on
	// the misfit dataset should also be imperfect (not a hard law, but on
	// our W data it holds).
	data := wShapedSeries(t)
	v, err := Validate(CompetingRisksModel{}, data, ValidateConfig{})
	if err != nil {
		t.Fatal(err)
	}
	diag, err := DiagnoseResiduals(v.Fit)
	if err != nil {
		t.Fatal(err)
	}
	if diag.Healthy() && v.EC < 0.9 {
		t.Errorf("diagnostics healthy but EC only %.2f", v.EC)
	}
	if math.IsNaN(diag.DurbinWatson) {
		t.Error("DW NaN")
	}
}
