package core

import (
	"errors"
	"math"
	"testing"

	"resilience/internal/timeseries"
)

func TestModelMinimumUsesClosedForm(t *testing.T) {
	data := seriesOf(t, 1, 0.9, 0.85, 0.9, 1)
	fit := &FitResult{Model: QuadraticModel{}, Params: []float64{1, -0.2, 0.01}, Train: data}
	td, err := ModelMinimum(fit, 100)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(td-10) > 1e-12 {
		t.Errorf("td = %g, want 10 (vertex)", td)
	}
	// Horizon clamps.
	td, err = ModelMinimum(fit, 5)
	if err != nil || td != 5 {
		t.Errorf("clamped td = %g, err %v; want 5", td, err)
	}
	if _, err := ModelMinimum(nil, 10); !errors.Is(err, ErrBadData) {
		t.Errorf("nil fit: %v", err)
	}
}

func TestModelMinimumNumericFallbackForMixture(t *testing.T) {
	mix, err := NewMixture(ExpFamily{}, ExpFamily{}, LogTrend{})
	if err != nil {
		t.Fatal(err)
	}
	params := []float64{0.3, 0.05, 0.4}
	fit := &FitResult{Model: mix, Params: params}
	td, err := ModelMinimum(fit, 48)
	if err != nil {
		t.Fatal(err)
	}
	// Check local minimality numerically.
	p := mix.Eval(params, td)
	for _, dt := range []float64{-0.5, 0.5} {
		tt := td + dt
		if tt >= 0 && tt <= 48 && mix.Eval(params, tt) < p-1e-9 {
			t.Errorf("numeric minimum %g not minimal: P(%g)=%g < P(td)=%g",
				td, tt, mix.Eval(params, tt), p)
		}
	}
}

func TestRecoveryTimeClosedForm(t *testing.T) {
	data := seriesOf(t, 1, 0.9, 0.85)
	fit := &FitResult{Model: QuadraticModel{}, Params: []float64{1, -0.2, 0.01}, Train: data}
	tr, err := RecoveryTime(fit, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tr-20) > 1e-9 {
		t.Errorf("tr = %g, want 20", tr)
	}
}

func TestRecoveryTimeNumericFallback(t *testing.T) {
	mix, err := NewMixture(ExpFamily{}, ExpFamily{}, LogTrend{})
	if err != nil {
		t.Fatal(err)
	}
	params := []float64{0.3, 0.05, 0.4}
	fit := &FitResult{Model: mix, Params: params}
	level := 0.95
	tr, err := RecoveryTime(fit, level, 48)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mix.Eval(params, tr)-level) > 1e-6 {
		t.Errorf("P(tr) = %g, want %g", mix.Eval(params, tr), level)
	}
	// Unreachable level errors with ErrNoRecovery.
	if _, err := RecoveryTime(fit, 100, 48); !errors.Is(err, ErrNoRecovery) {
		t.Errorf("unreachable level: %v", err)
	}
	// Level already met at the minimum returns the minimum time.
	trLow, err := RecoveryTime(fit, -10, 48)
	if err != nil {
		t.Fatal(err)
	}
	if trLow < 0 || trLow > 48 {
		t.Errorf("already-recovered time = %g", trLow)
	}
	if _, err := RecoveryTime(fit, 1, 0); !errors.Is(err, ErrBadData) {
		t.Errorf("zero horizon on numeric path: %v", err)
	}
	if _, err := RecoveryTime(nil, 1, 10); !errors.Is(err, ErrBadData) {
		t.Errorf("nil fit: %v", err)
	}
}

func TestAreaUnderCurveClosedFormVsNumeric(t *testing.T) {
	// The quadratic uses Eq. (3); a mixture integrates numerically. Both
	// must agree with direct quadrature.
	data := seriesOf(t, 1, 0.95, 0.92)
	quadFit := &FitResult{Model: QuadraticModel{}, Params: []float64{1, -0.1, 0.003}, Train: data}
	a1, err := AreaUnderCurve(quadFit, 0, 30)
	if err != nil {
		t.Fatal(err)
	}
	want := 30 - 0.1*450 + 0.003*9000 // αt + βt²/2 + γt³/3
	if math.Abs(a1-want) > 1e-9 {
		t.Errorf("quadratic AUC = %g, want %g", a1, want)
	}

	mix, err := NewMixture(ExpFamily{}, ExpFamily{}, LogTrend{})
	if err != nil {
		t.Fatal(err)
	}
	mixFit := &FitResult{Model: mix, Params: []float64{0.3, 0.05, 0.4}}
	a2, err := AreaUnderCurve(mixFit, 1, 30)
	if err != nil {
		t.Fatal(err)
	}
	// Rough check via midpoint samples.
	var sum float64
	const n = 20000.0
	for i := 0; i < n; i++ {
		tt := 1 + (30-1)*(float64(i)+0.5)/n
		sum += mix.Eval(mixFit.Params, tt)
	}
	sum *= (30 - 1) / n
	if math.Abs(a2-sum) > 1e-3 {
		t.Errorf("mixture AUC = %g, midpoint estimate %g", a2, sum)
	}
	if _, err := AreaUnderCurve(nil, 0, 1); !errors.Is(err, ErrBadData) {
		t.Errorf("nil fit: %v", err)
	}
}

func TestClassifyShape(t *testing.T) {
	mk := func(f func(i int) float64, n int) []float64 {
		out := make([]float64, n)
		for i := range out {
			out[i] = f(i)
		}
		return out
	}
	tests := []struct {
		name string
		vals []float64
		want CurveShape
	}{
		{
			name: "flat",
			vals: mk(func(int) float64 { return 1 }, 20),
			want: ShapeFlat,
		},
		{
			name: "V: quick drop quick recovery",
			vals: mk(func(i int) float64 {
				x := float64(i)
				if x <= 4 {
					return 1 - 0.03*x/4
				}
				return math.Min(1.02, 0.97+0.03*(x-4)/6)
			}, 48),
			want: ShapeV,
		},
		{
			name: "U: long trough",
			vals: mk(func(i int) float64 {
				x := float64(i)
				return 1 - 0.03*math.Sin(math.Pi*math.Min(x/40, 1))
			}, 48),
			want: ShapeU,
		},
		{
			name: "W: two dips",
			vals: mk(func(i int) float64 {
				x := float64(i)
				return 1 - 0.02*math.Abs(math.Sin(x/7))
			}, 44),
			want: ShapeW,
		},
		{
			name: "L: collapse without recovery",
			vals: mk(func(i int) float64 {
				if i < 3 {
					return 1 - 0.05*float64(i)
				}
				return 0.86 + 0.001*float64(i)
			}, 30),
			want: ShapeL,
		},
		{
			name: "too short",
			vals: []float64{1, 0.9},
			want: ShapeFlat,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := ClassifyShape(tt.vals); got != tt.want {
				t.Errorf("ClassifyShape = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestPiecewiseCurve(t *testing.T) {
	// Model section: a V shape dropping to 0.5 at t=5, back to 1.2 at 10.
	during := func(t float64) float64 {
		if t <= 5 {
			return 1 - 0.1*t
		}
		return 0.5 + 0.14*(t-5)
	}
	pc, err := NewPiecewise(100, 110, 2, during)
	if err != nil {
		t.Fatal(err)
	}
	if pc.Scale != 2 {
		t.Errorf("scale = %g, want 2 (continuity at hazard)", pc.Scale)
	}
	if got := pc.Eval(50); got != 2 {
		t.Errorf("pre-hazard = %g, want 2", got)
	}
	if got := pc.Eval(100); math.Abs(got-2) > 1e-12 {
		t.Errorf("at hazard = %g, want 2 (continuous)", got)
	}
	if got := pc.Eval(105); math.Abs(got-1) > 1e-12 {
		t.Errorf("at trough = %g, want 1", got)
	}
	wantAfter := 2 * during(10)
	if got := pc.Eval(200); math.Abs(got-wantAfter) > 1e-12 {
		t.Errorf("post-recovery = %g, want %g", got, wantAfter)
	}
}

func TestNewPiecewiseValidation(t *testing.T) {
	during := func(t float64) float64 { return 1 }
	if _, err := NewPiecewise(10, 5, 1, during); !errors.Is(err, ErrBadPiecewise) {
		t.Errorf("tr <= th: %v", err)
	}
	if _, err := NewPiecewise(0, 10, 1, nil); !errors.Is(err, ErrBadPiecewise) {
		t.Errorf("nil section: %v", err)
	}
	zero := func(float64) float64 { return 0 }
	if _, err := NewPiecewise(0, 10, 1, zero); !errors.Is(err, ErrBadData) {
		t.Errorf("zero at hazard: %v", err)
	}
}

func TestRecoveryTimePredictionOnFittedRecession(t *testing.T) {
	// End-to-end: fit the competing-risks model to a clean U-shaped
	// series, then predict when performance regains the starting level.
	m := CompetingRisksModel{}
	truth := []float64{1, 0.4, 0.0012}
	vals := make([]float64, 40)
	for i := range vals {
		vals[i] = m.Eval(truth, float64(i))
	}
	data, err := timeseries.FromValues(vals)
	if err != nil {
		t.Fatal(err)
	}
	fit, err := Fit(m, data, FitConfig{})
	if err != nil {
		t.Fatal(err)
	}
	wantTr, err := m.RecoveryTime(truth, 1)
	if err != nil {
		t.Fatal(err)
	}
	gotTr, err := RecoveryTime(fit, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(gotTr-wantTr) > 0.5 {
		t.Errorf("predicted recovery %g, truth %g", gotTr, wantTr)
	}
}

func TestClassifyShapePair(t *testing.T) {
	n := 24
	mk := func(drop, end float64) []float64 {
		out := make([]float64, n)
		for i := range out {
			x := float64(i)
			switch {
			case x <= 2:
				out[i] = 1 - drop*x/2
			default:
				out[i] = (1 - drop) + (end-(1-drop))*(x-2)/float64(n-3)
			}
		}
		return out
	}
	recovering := mk(0.10, 1.03)
	depressed := mk(0.25, 0.90)
	if got := ClassifyShapePair(recovering, depressed); got != ShapeK {
		t.Errorf("divergent pair = %v, want K", got)
	}
	// Two parallel recoveries are not K; they classify as the aggregate.
	twin := mk(0.10, 1.02)
	if got := ClassifyShapePair(recovering, twin); got == ShapeK {
		t.Error("parallel recoveries misclassified as K")
	}
	// Mismatched lengths are flat.
	if got := ClassifyShapePair(recovering[:5], depressed); got != ShapeFlat {
		t.Errorf("mismatched lengths = %v", got)
	}
	if got := ClassifyShapePair(nil, nil); got != ShapeFlat {
		t.Errorf("empty = %v", got)
	}
}
