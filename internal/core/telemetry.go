package core

import (
	"sync"

	"resilience/internal/telemetry"
)

// Telemetry for the fitting pipeline. Histograms are labeled by model
// family; handles are cached per family so the per-fit cost is the
// observations themselves, not name formatting or registry lookups.

func init() {
	telemetry.RegisterFamily("resil_fit_duration_seconds", "histogram",
		"Wall time of one model fit, by model family.")
	telemetry.RegisterFamily("resil_fit_iterations", "histogram",
		"Optimizer iterations spent per fit, by model family.")
	telemetry.RegisterFamily("resil_fit_evals", "histogram",
		"Objective/residual evaluations spent per fit, by model family.")
	telemetry.RegisterFamily("resil_fallback_depth", "histogram",
		"Degradation-chain links tried before a fit succeeded (1 = first try).")
	telemetry.RegisterFamily("resil_chain_panics_total", "counter",
		"Degradation-chain attempts that failed via a recovered optimizer panic.")
	telemetry.RegisterFamily("resil_chain_cancellations_total", "counter",
		"Degradation chains aborted by context cancellation or deadline.")
	telemetry.RegisterFamily("resil_chain_exhausted_total", "counter",
		"Degradation chains that ran out of links without a result.")
}

// fitMetrics bundles the per-family histograms.
type fitMetrics struct {
	duration   *telemetry.Histogram
	iterations *telemetry.Histogram
	evals      *telemetry.Histogram
}

var fitMetricsCache sync.Map // model name -> *fitMetrics

// fitMetricsFor returns the cached histogram handles for one model
// family.
func fitMetricsFor(model string) *fitMetrics {
	if m, ok := fitMetricsCache.Load(model); ok {
		return m.(*fitMetrics)
	}
	labels := telemetry.Labels("model", model)
	m := &fitMetrics{
		duration:   telemetry.GetOrCreateHistogram("resil_fit_duration_seconds{"+labels+"}", telemetry.DurationBuckets()),
		iterations: telemetry.GetOrCreateHistogram("resil_fit_iterations{"+labels+"}", telemetry.CountBuckets()),
		evals:      telemetry.GetOrCreateHistogram("resil_fit_evals{"+labels+"}", telemetry.CountBuckets()),
	}
	actual, _ := fitMetricsCache.LoadOrStore(model, m)
	return actual.(*fitMetrics)
}

// Chain-level series, resolved once.
var (
	chainDepth         = telemetry.GetOrCreateHistogram("resil_fallback_depth", telemetry.DepthBuckets())
	chainPanics        = telemetry.GetOrCreateCounter("resil_chain_panics_total")
	chainCancellations = telemetry.GetOrCreateCounter("resil_chain_cancellations_total")
	chainExhausted     = telemetry.GetOrCreateCounter("resil_chain_exhausted_total")
)
