package core

import (
	"errors"
	"math"
	"strings"
	"testing"

	"resilience/internal/timeseries"
)

// wShapedSeries builds a clean double-dip curve: dip to 0.98 around t=5,
// recovery to ~1.0 by t=14, second deeper dip to 0.965 around t=30,
// recovery above 1.0 by t=47.
func wShapedSeries(t *testing.T) *timeseries.Series {
	t.Helper()
	vals := make([]float64, 48)
	for i := range vals {
		x := float64(i)
		var v float64
		switch {
		case x <= 14:
			v = 1 - 0.02*math.Sin(math.Pi*x/14)
		case x <= 46:
			v = 1 - 0.035*math.Sin(math.Pi*(x-14)/32)
		default:
			v = 1 + 0.002*(x-46)
		}
		vals[i] = v
	}
	s, err := timeseries.FromValues(vals)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func mustComposite(t *testing.T) *CompositeModel {
	t.Helper()
	c, err := NewComposite(CompetingRisksModel{}, CompetingRisksModel{}, 8, 24)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewCompositeValidation(t *testing.T) {
	if _, err := NewComposite(nil, QuadraticModel{}, 0, 10); !errors.Is(err, ErrBadParams) {
		t.Errorf("nil first: %v", err)
	}
	if _, err := NewComposite(QuadraticModel{}, nil, 0, 10); !errors.Is(err, ErrBadParams) {
		t.Errorf("nil second: %v", err)
	}
	if _, err := NewComposite(QuadraticModel{}, QuadraticModel{}, 10, 10); !errors.Is(err, ErrBadParams) {
		t.Errorf("empty window: %v", err)
	}
	if _, err := NewComposite(QuadraticModel{}, QuadraticModel{}, -1, 10); !errors.Is(err, ErrBadParams) {
		t.Errorf("negative lower: %v", err)
	}
}

func TestCompositeStructure(t *testing.T) {
	c := mustComposite(t)
	if c.NumParams() != 7 {
		t.Errorf("NumParams = %d, want 1+3+3", c.NumParams())
	}
	names := c.ParamNames()
	if names[0] != "tau" || !strings.HasPrefix(names[1], "phase1.") || !strings.HasPrefix(names[4], "phase2.") {
		t.Errorf("ParamNames = %v", names)
	}
	if c.Bounds().Len() != 7 {
		t.Error("bounds dimension mismatch")
	}
	if !strings.Contains(c.Name(), "composite(") {
		t.Errorf("Name = %q", c.Name())
	}
	f, s := c.Phases()
	if f.Name() != "competing-risks" || s.Name() != "competing-risks" {
		t.Error("Phases accessor")
	}
}

func TestCompositeContinuityAtChangepoint(t *testing.T) {
	c := mustComposite(t)
	params := []float64{15, 1, 0.5, 0.002, 0.9, 0.3, 0.001}
	if err := c.Validate(params); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	left := c.Eval(params, 15)
	right := c.Eval(params, 15+1e-9)
	if math.Abs(left-right) > 1e-6 {
		t.Errorf("discontinuity at changepoint: %g vs %g", left, right)
	}
	// Before the changepoint, the curve is exactly phase 1.
	m := CompetingRisksModel{}
	if got, want := c.Eval(params, 7), m.Eval(params[1:4], 7); got != want {
		t.Errorf("phase 1 value %g, want %g", got, want)
	}
}

func TestCompositeValidateRejects(t *testing.T) {
	c := mustComposite(t)
	cases := [][]float64{
		{15, 1, 0.5, 0.002},                   // wrong length
		{5, 1, 0.5, 0.002, 0.9, 0.3, 0.001},   // tau below window
		{30, 1, 0.5, 0.002, 0.9, 0.3, 0.001},  // tau above window
		{15, -1, 0.5, 0.002, 0.9, 0.3, 0.001}, // phase 1 invalid
		{15, 1, 0.5, 0.002, 0.9, -0.3, 0.001}, // phase 2 invalid
	}
	for _, p := range cases {
		if err := c.Validate(p); !errors.Is(err, ErrBadParams) {
			t.Errorf("Validate(%v): want ErrBadParams, got %v", p, err)
		}
	}
}

func TestCompositeGuessFeasible(t *testing.T) {
	c := mustComposite(t)
	data := wShapedSeries(t)
	g := c.Guess(data)
	if len(g) != c.NumParams() {
		t.Fatalf("guess length %d", len(g))
	}
	if err := c.Validate(g); err != nil {
		t.Errorf("guess invalid: %v", err)
	}
	// The changepoint guess should land near the inter-dip peak (t≈14).
	if g[0] < 9 || g[0] > 20 {
		t.Errorf("changepoint guess %g, want near 14", g[0])
	}
	// Degenerate data still yields a feasible guess.
	if err := c.Validate(c.Guess(nil)); err != nil {
		t.Errorf("nil-data guess invalid: %v", err)
	}
}

func TestCompositeFitsWShape(t *testing.T) {
	// The headline extension claim: a two-phase composite fits the
	// W-shaped data that defeats every single-dip model.
	data := wShapedSeries(t)
	single, err := Validate(CompetingRisksModel{}, data, ValidateConfig{})
	if err != nil {
		t.Fatal(err)
	}
	composite := mustComposite(t)
	multi, err := Validate(composite, data, ValidateConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if multi.GoF.R2Adj < 0.9 {
		t.Errorf("composite r2adj = %.4f, want > 0.9 on a clean W", multi.GoF.R2Adj)
	}
	if multi.GoF.R2Adj <= single.GoF.R2Adj {
		t.Errorf("composite (%.4f) should beat single-dip (%.4f) on W data",
			multi.GoF.R2Adj, single.GoF.R2Adj)
	}
}

func TestExpBathtubBasics(t *testing.T) {
	m := ExpBathtubModel{}
	params := []float64{1, 0.3, 0.01, 0.08}
	if got := m.Eval(params, 0); got != 1 {
		t.Errorf("Eval(0) = %g, want alpha", got)
	}
	// Hand check at t = 10: e^{-3} + 0.01(e^{0.8} − 1).
	want := math.Exp(-3) + 0.01*math.Expm1(0.8)
	if got := m.Eval(params, 10); math.Abs(got-want) > 1e-12 {
		t.Errorf("Eval(10) = %g, want %g", got, want)
	}
	if err := m.Validate(params); err != nil {
		t.Errorf("valid params: %v", err)
	}
	for _, bad := range [][]float64{
		{1, 0.3, 0.01}, {0, 0.3, 0.01, 0.08}, {1, -0.3, 0.01, 0.08},
		{1, 0.3, 0, 0.08}, {1, 0.3, 0.01, -0.08},
	} {
		if err := m.Validate(bad); !errors.Is(err, ErrBadParams) {
			t.Errorf("Validate(%v): %v", bad, err)
		}
	}
}

func TestExpBathtubAreaAndMinimum(t *testing.T) {
	m := ExpBathtubModel{}
	params := []float64{1, 0.3, 0.01, 0.08}
	// Area against midpoint sampling.
	analytic, err := m.Area(params, 0, 40)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	const steps = 40000
	for i := 0; i < steps; i++ {
		x := 40 * (float64(i) + 0.5) / steps
		sum += m.Eval(params, x)
	}
	sum *= 40.0 / steps
	if math.Abs(analytic-sum) > 1e-4 {
		t.Errorf("Area = %g, sampling %g", analytic, sum)
	}
	// Minimum is stationary.
	td, err := m.MinimumTime(params)
	if err != nil {
		t.Fatal(err)
	}
	p := m.Eval(params, td)
	if m.Eval(params, td-0.01) < p || m.Eval(params, td+0.01) < p {
		t.Errorf("t_d = %g is not a minimum", td)
	}
	// Increasing-from-start parameters give t_d = 0.
	inc := []float64{0.01, 0.1, 1, 0.5}
	td, err = m.MinimumTime(inc)
	if err != nil || td != 0 {
		t.Errorf("increasing case: td = %g, %v", td, err)
	}
}

func TestExpBathtubFitsAsymmetricDip(t *testing.T) {
	// Fast drop, slow recovery: the 4-parameter exp-bathtub should match
	// or beat the 3-parameter forms.
	vals := make([]float64, 48)
	truth := []float64{1, 0.5, 0.004, 0.06}
	m := ExpBathtubModel{}
	for i := range vals {
		vals[i] = m.Eval(truth, float64(i))
	}
	data, err := timeseries.FromValues(vals)
	if err != nil {
		t.Fatal(err)
	}
	fit, err := Fit(m, data, FitConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if fit.SSE > 1e-8 {
		t.Errorf("SSE on exact data = %g", fit.SSE)
	}
	g := m.Guess(data)
	if err := m.Validate(g); err != nil {
		t.Errorf("guess invalid: %v", err)
	}
	if err := m.Validate(m.Guess(nil)); err != nil {
		t.Errorf("nil-data guess invalid: %v", err)
	}
}
