package core

import (
	"errors"
	"math"
	"testing"

	"resilience/internal/timeseries"
)

// fittedV returns a competing-risks fit to a mild recession-like curve:
// a 3% dip around t = 7 recovering past the baseline by t ≈ 17.
func fittedV(t *testing.T) *FitResult {
	t.Helper()
	m := CompetingRisksModel{}
	truth := []float64{1, 0.03, 0.01}
	vals := make([]float64, 48)
	for i := range vals {
		vals[i] = m.Eval(truth, float64(i))
	}
	data, err := seriesFrom(vals)
	if err != nil {
		t.Fatal(err)
	}
	fit, err := Fit(m, data, FitConfig{})
	if err != nil {
		t.Fatal(err)
	}
	return fit
}

func TestInterventionValidate(t *testing.T) {
	cases := []struct {
		iv Intervention
		ok bool
	}{
		{Intervention{Start: 5, Accel: 2}, true},
		{Intervention{Start: 0, Accel: 0.5}, true},
		{Intervention{Start: -1, Accel: 2}, false},
		{Intervention{Start: 5, Accel: 0}, false},
		{Intervention{Start: 5, Accel: -1}, false},
		{Intervention{Start: math.NaN(), Accel: 1}, false},
	}
	for _, tc := range cases {
		err := tc.iv.Validate()
		if tc.ok && err != nil {
			t.Errorf("%+v: unexpected error %v", tc.iv, err)
		}
		if !tc.ok && !errors.Is(err, ErrBadData) {
			t.Errorf("%+v: want ErrBadData, got %v", tc.iv, err)
		}
	}
}

func TestInterventionApplyContinuity(t *testing.T) {
	fit := fittedV(t)
	iv := Intervention{Start: 10, Accel: 3}
	curve, err := iv.Apply(fit)
	if err != nil {
		t.Fatal(err)
	}
	// Identical before the start, continuous at it.
	for _, tt := range []float64{0, 3, 9.99} {
		if curve(tt) != fit.Eval(tt) {
			t.Errorf("pre-intervention value differs at %g", tt)
		}
	}
	if math.Abs(curve(10)-curve(10+1e-9)) > 1e-6 {
		t.Error("discontinuity at intervention start")
	}
	// After the start, the curve at t matches the baseline at the dilated
	// clock.
	if got, want := curve(15), fit.Eval(10+3*5.0); got != want {
		t.Errorf("dilated value = %g, want %g", got, want)
	}
	if _, err := iv.Apply(nil); !errors.Is(err, ErrBadData) {
		t.Errorf("nil fit: %v", err)
	}
}

func TestEvaluateInterventionSpeedsRecovery(t *testing.T) {
	fit := fittedV(t)
	iv := Intervention{Start: 5, Accel: 2}
	impact, err := EvaluateIntervention(fit, iv, 1.0, 60)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(impact.BaselineRecovery) || math.IsNaN(impact.IntervenedRecovery) {
		t.Fatalf("recovery times: %+v", impact)
	}
	if impact.IntervenedRecovery >= impact.BaselineRecovery {
		t.Errorf("acceleration did not speed recovery: %g vs %g",
			impact.IntervenedRecovery, impact.BaselineRecovery)
	}
	if impact.RecoverySaved <= 0 {
		t.Errorf("RecoverySaved = %g", impact.RecoverySaved)
	}
	// More performance preserved under the intervention.
	if impact.Intervened[PerformancePreserved] <= impact.Baseline[PerformancePreserved] {
		t.Errorf("intervention did not raise preserved performance: %g vs %g",
			impact.Intervened[PerformancePreserved], impact.Baseline[PerformancePreserved])
	}
}

func TestEvaluateInterventionSlowdown(t *testing.T) {
	fit := fittedV(t)
	iv := Intervention{Start: 5, Accel: 0.5}
	impact, err := EvaluateIntervention(fit, iv, 1.0, 120)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(impact.IntervenedRecovery) && !math.IsNaN(impact.BaselineRecovery) &&
		impact.IntervenedRecovery <= impact.BaselineRecovery {
		t.Errorf("slowdown should delay recovery: %g vs %g",
			impact.IntervenedRecovery, impact.BaselineRecovery)
	}
}

func TestEvaluateInterventionValidation(t *testing.T) {
	fit := fittedV(t)
	if _, err := EvaluateIntervention(nil, Intervention{Start: 1, Accel: 2}, 1, 10); !errors.Is(err, ErrBadData) {
		t.Errorf("nil fit: %v", err)
	}
	if _, err := EvaluateIntervention(fit, Intervention{Start: 1, Accel: 2}, 1, 0); !errors.Is(err, ErrBadData) {
		t.Errorf("zero horizon: %v", err)
	}
	if _, err := EvaluateIntervention(fit, Intervention{Start: 1, Accel: 0}, 1, 10); !errors.Is(err, ErrBadData) {
		t.Errorf("bad intervention: %v", err)
	}
}

func TestFitRobustMatchesLSEOnCleanData(t *testing.T) {
	data := crShapedSeries(t)
	plain, err := Fit(CompetingRisksModel{}, data, FitConfig{})
	if err != nil {
		t.Fatal(err)
	}
	robust, err := FitRobust(CompetingRisksModel{}, data, RobustConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// Without outliers the two estimators agree closely.
	for i := range plain.Params {
		if math.Abs(plain.Params[i]-robust.Params[i]) > 0.05*math.Max(1, math.Abs(plain.Params[i])) {
			t.Errorf("param %d: LSE %g vs robust %g", i, plain.Params[i], robust.Params[i])
		}
	}
}

func TestFitRobustResistsOutliers(t *testing.T) {
	// Clean competing-risks curve with two gross outliers injected; the
	// robust fit should track the clean curve far better than plain LSE.
	m := CompetingRisksModel{}
	truth := []float64{1, 0.35, 0.001}
	vals := make([]float64, 48)
	for i := range vals {
		vals[i] = m.Eval(truth, float64(i))
	}
	vals[12] += 0.20 // data-revision spike
	vals[30] -= 0.15 // reporting artifact
	data, err := seriesFrom(vals)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Fit(m, data, FitConfig{})
	if err != nil {
		t.Fatal(err)
	}
	robust, err := FitRobust(m, data, RobustConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// Compare curve recovery against the truth on the clean points.
	cleanErr := func(f *FitResult) float64 {
		var sum float64
		for i := range vals {
			if i == 12 || i == 30 {
				continue
			}
			d := f.Eval(float64(i)) - m.Eval(truth, float64(i))
			sum += d * d
		}
		return sum
	}
	pe, re := cleanErr(plain), cleanErr(robust)
	if re >= pe {
		t.Errorf("robust clean-error %g not better than LSE %g", re, pe)
	}
	if re > pe/4 {
		t.Errorf("robust improvement too small: %g vs %g", re, pe)
	}
}

func TestFitRobustValidation(t *testing.T) {
	if _, err := FitRobust(nil, nil, RobustConfig{}); !errors.Is(err, ErrBadData) {
		t.Errorf("nil model: %v", err)
	}
	tiny, err := seriesFrom([]float64{1, 0.9, 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FitRobust(QuadraticModel{}, tiny, RobustConfig{}); !errors.Is(err, ErrBadData) {
		t.Errorf("tiny data: %v", err)
	}
}

func TestMadScale(t *testing.T) {
	// Residuals ±1 have MAD 1 → scale 1/0.6745.
	rs := []float64{1, -1, 1, -1, 1}
	if got := madScale(rs); math.Abs(got-1/0.6745) > 1e-12 {
		t.Errorf("madScale = %g", got)
	}
	if got := madScale(nil); got != 0 {
		t.Errorf("empty madScale = %g", got)
	}
	// Even count takes the midpoint.
	if got := madScale([]float64{1, 3}); math.Abs(got-2/0.6745) > 1e-12 {
		t.Errorf("even madScale = %g", got)
	}
}

// seriesFrom is a test helper building a Series from values.
func seriesFrom(vals []float64) (*timeseries.Series, error) {
	return timeseries.FromValues(vals)
}
