package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"resilience/internal/faultinject"
	"resilience/internal/optimize"
	"resilience/internal/timeseries"
)

// vSeries samples a gentle V-shape every model family can fit.
func vSeries(t *testing.T, n int) *timeseries.Series {
	t.Helper()
	return quadraticSeries(t, 1, -0.02, 0.0005, n)
}

func TestFitWithFallbackHappyPath(t *testing.T) {
	data := vSeries(t, 40)
	fit, info, err := FitWithFallback(context.Background(), QuadraticModel{}, data, FitConfig{}, FallbackPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if fit == nil || fit.Model.Name() != "quadratic" {
		t.Fatalf("fit = %+v", fit)
	}
	if info.Degraded || info.FallbackUsed {
		t.Errorf("clean fit reported degradation: %+v", info)
	}
	if info.UsedModel != "quadratic" || info.RequestedModel != "quadratic" {
		t.Errorf("info models = %q/%q", info.RequestedModel, info.UsedModel)
	}
	if len(info.Attempts) != 1 || !info.Attempts[0].OK {
		t.Errorf("attempts = %+v", info.Attempts)
	}
}

func TestFitWithFallbackForcedNonConvergence(t *testing.T) {
	// Poison only the requested model's objective; the chain must retry,
	// give up on competing-risks, and land on a fallback family.
	t.Cleanup(faultinject.Clear)
	if err := faultinject.Arm("core.fit.objective.competing-risks", "nan"); err != nil {
		t.Fatal(err)
	}
	data := vSeries(t, 40)
	fit, info, err := FitWithFallback(context.Background(), CompetingRisksModel{}, data, FitConfig{}, FallbackPolicy{})
	if err != nil {
		t.Fatalf("chain failed outright: %v (info %+v)", err, info)
	}
	if !info.Degraded || !info.FallbackUsed {
		t.Errorf("degradation not reported: %+v", info)
	}
	if info.UsedModel == "competing-risks" || fit.Model.Name() != info.UsedModel {
		t.Errorf("used model %q (fit %q)", info.UsedModel, fit.Model.Name())
	}
	if info.Reason == "" {
		t.Error("degradation reason missing")
	}
	// First attempt plus both escalating retries must be recorded failures.
	fails := 0
	for _, a := range info.Attempts {
		if a.Model == "competing-risks" && !a.OK {
			fails++
		}
	}
	if fails != 3 {
		t.Errorf("%d failed competing-risks attempts, want 3 (%+v)", fails, info.Attempts)
	}
}

func TestFitWithFallbackPanicRecovered(t *testing.T) {
	t.Cleanup(faultinject.Clear)
	if err := faultinject.Arm("core.fit.competing-risks", "panic"); err != nil {
		t.Fatal(err)
	}
	data := vSeries(t, 40)
	fit, info, err := FitWithFallback(context.Background(), CompetingRisksModel{}, data, FitConfig{}, FallbackPolicy{})
	if err != nil {
		t.Fatalf("chain failed outright: %v", err)
	}
	if !info.PanicRecovered {
		t.Errorf("panic not recorded: %+v", info)
	}
	if !info.FallbackUsed || fit.Model.Name() == "competing-risks" {
		t.Errorf("fallback not taken: used %q", fit.Model.Name())
	}
}

func TestFitWithFallbackDisabled(t *testing.T) {
	t.Cleanup(faultinject.Clear)
	if err := faultinject.Arm("core.fit.objective.quadratic", "nan"); err != nil {
		t.Fatal(err)
	}
	data := vSeries(t, 40)
	_, info, err := FitWithFallback(context.Background(), QuadraticModel{}, data, FitConfig{}, FallbackPolicy{Disable: true})
	if err == nil {
		t.Fatal("disabled chain still produced a result")
	}
	if !errors.Is(err, ErrNoConvergence) {
		t.Errorf("err = %v, want ErrNoConvergence", err)
	}
	if len(info.Attempts) != 1 {
		t.Errorf("disabled chain ran %d attempts", len(info.Attempts))
	}
}

func TestFitWithFallbackExpiredContext(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	data := vSeries(t, 40)
	_, _, err := FitWithFallback(ctx, QuadraticModel{}, data, FitConfig{}, FallbackPolicy{})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
}

func TestFitWithFallbackCancellationAbortsChain(t *testing.T) {
	// A deadline that expires mid-chain must abort instead of burning the
	// remaining links; the NaN site keeps every attempt from succeeding.
	t.Cleanup(faultinject.Clear)
	if err := faultinject.Arm("core.fit.objective.quadratic", "nan"); err != nil {
		t.Fatal(err)
	}
	if err := faultinject.Arm("core.fit.delay.quadratic", "delay:100ms"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	data := vSeries(t, 40)
	start := time.Now()
	_, info, err := FitWithFallback(ctx, QuadraticModel{}, data, FitConfig{}, FallbackPolicy{})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Errorf("chain ran %v after the deadline", elapsed)
	}
	if len(info.Attempts) > 2 {
		t.Errorf("chain kept going after cancellation: %+v", info.Attempts)
	}
}

func TestFitWithFallbackBadDataSkipsRetries(t *testing.T) {
	// Two points cannot fit a three-parameter model; retrying with more
	// starts is pointless, so the chain must not re-attempt the same model.
	s, err := timeseries.FromValues([]float64{1, 0.9})
	if err != nil {
		t.Fatal(err)
	}
	_, info, err := FitWithFallback(context.Background(), QuadraticModel{}, s, FitConfig{}, FallbackPolicy{})
	if err == nil {
		t.Fatal("fit of 2 points succeeded")
	}
	for _, a := range info.Attempts[1:] {
		if a.Model == "quadratic" {
			t.Errorf("quadratic retried after ErrBadData: %+v", info.Attempts)
		}
	}
}

func TestResolveChainSkipsRequestedInFallbacks(t *testing.T) {
	links := resolveChain(QuadraticModel{}, 0, FallbackPolicy{}.withDefaults())
	// 1 base + 2 retries + (weibull-exp, exp-exp) fallbacks; the quadratic
	// fallback entry is skipped because it matches the requested model.
	if len(links) != 5 {
		t.Fatalf("chain has %d links", len(links))
	}
	for _, l := range links[3:] {
		if l.model.Name() == "quadratic" {
			t.Error("requested model duplicated in fallback tail")
		}
	}
}

func TestValidateWithFallbackForcedNonConvergence(t *testing.T) {
	t.Cleanup(faultinject.Clear)
	if err := faultinject.Arm("core.fit.objective.competing-risks", "nan"); err != nil {
		t.Fatal(err)
	}
	data := vSeries(t, 40)
	v, info, err := ValidateWithFallback(context.Background(), CompetingRisksModel{}, data, ValidateConfig{}, FallbackPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if !info.FallbackUsed || v.Fit.Model.Name() != info.UsedModel {
		t.Errorf("info %+v, fit model %q", info, v.Fit.Model.Name())
	}
	if v.GoF.R2Adj < 0.5 {
		t.Errorf("fallback scorecard r2adj = %g", v.GoF.R2Adj)
	}
}

func TestFitWithFallbackNilModel(t *testing.T) {
	data := vSeries(t, 40)
	_, _, err := FitWithFallback(context.Background(), nil, data, FitConfig{}, FallbackPolicy{})
	if !errors.Is(err, ErrBadData) {
		t.Fatalf("err = %v, want ErrBadData", err)
	}
}

// Optimizer panics surfaced through the chain keep their typed identity
// when every link fails.
func TestChainExhaustedKeepsPanicIdentity(t *testing.T) {
	t.Cleanup(faultinject.Clear)
	for _, site := range []string{"core.fit.quadratic", "core.fit.weibull-exp", "core.fit.exp-exp"} {
		if err := faultinject.Arm(site, "panic"); err != nil {
			t.Fatal(err)
		}
	}
	data := vSeries(t, 40)
	_, info, err := FitWithFallback(context.Background(), QuadraticModel{}, data, FitConfig{}, FallbackPolicy{})
	if err == nil {
		t.Fatal("all-panic chain succeeded")
	}
	if !errors.Is(err, optimize.ErrOptimizerPanic) {
		t.Errorf("err = %v, want ErrOptimizerPanic", err)
	}
	if !info.PanicRecovered {
		t.Errorf("info = %+v", info)
	}
}
