package core

import (
	"context"
	"errors"
	"fmt"

	"resilience/internal/optimize"
	"resilience/internal/telemetry"
	"resilience/internal/timeseries"
)

// FallbackPolicy configures the degradation chain wrapped around a fit:
// when the requested model fails (non-convergence, singular Jacobian,
// exhausted iteration budget, optimizer panic, too little data), the
// chain retries the same model with escalating multistart budgets and
// then falls back to progressively simpler model families, returning the
// best available result annotated with machine-readable degradation
// metadata instead of an error.
type FallbackPolicy struct {
	// RetryStarts are the escalating multistart budgets tried on the
	// requested model after its first failure (default {24, 48}).
	RetryStarts []int
	// Fallbacks are the simpler models tried in order once retries are
	// exhausted (default DefaultFallbacks()). Entries whose name matches
	// the requested model are skipped.
	Fallbacks []Model
	// Disable turns the chain off: the first failure is returned as-is.
	Disable bool
}

func (p FallbackPolicy) withDefaults() FallbackPolicy {
	if len(p.RetryStarts) == 0 {
		p.RetryStarts = []int{24, 48}
	}
	if len(p.Fallbacks) == 0 {
		p.Fallbacks = DefaultFallbacks()
	}
	return p
}

// DefaultFallbacks returns the standard degradation chain, ordered from
// most to least expressive: the Weibull–exponential mixture, the
// exponential–exponential mixture, and finally the three-parameter
// quadratic bathtub, which fits almost any V-shaped series.
func DefaultFallbacks() []Model {
	out := make([]Model, 0, 3)
	for _, name := range []string{"weibull-exp", "exp-exp"} {
		for _, m := range StandardMixtures() {
			if m.Name() == name {
				out = append(out, m)
			}
		}
	}
	return append(out, QuadraticModel{})
}

// FitAttempt records one link of the degradation chain.
type FitAttempt struct {
	// Model is the model family attempted.
	Model string `json:"model"`
	// Starts is the multistart budget used.
	Starts int `json:"starts"`
	// OK reports whether the attempt produced the returned result.
	OK bool `json:"ok"`
	// Err is the failure message for unsuccessful attempts.
	Err string `json:"error,omitempty"`
	// Panic marks attempts that failed because a recovered panic escaped
	// the optimizer.
	Panic bool `json:"panic,omitempty"`
}

// DegradeInfo is the machine-readable annotation attached to a chain
// outcome. The HTTP layer surfaces it in fit responses and feeds the
// monitor counters from it.
type DegradeInfo struct {
	// RequestedModel is what the caller asked for.
	RequestedModel string `json:"requested_model"`
	// UsedModel is the family that produced the returned result.
	UsedModel string `json:"used_model"`
	// Degraded is true when the first attempt did not produce the result
	// (a retry or fallback was needed).
	Degraded bool `json:"degraded"`
	// FallbackUsed is true when the result comes from a different model
	// family than requested.
	FallbackUsed bool `json:"fallback_used"`
	// Reason is the first failure that triggered degradation.
	Reason string `json:"reason,omitempty"`
	// PanicRecovered is true when any attempt failed via a recovered
	// optimizer panic.
	PanicRecovered bool `json:"panic_recovered,omitempty"`
	// Attempts lists every link tried, in order.
	Attempts []FitAttempt `json:"attempts,omitempty"`
}

// chainLink is one (model, budget) attempt in the resolved chain.
type chainLink struct {
	model  Model
	starts int
}

// resolveChain expands a policy into the ordered attempt list for one
// requested model. starts0 is the caller's configured budget (0 means
// the FitConfig default).
func resolveChain(requested Model, starts0 int, pol FallbackPolicy) []chainLink {
	links := []chainLink{{model: requested, starts: starts0}}
	if pol.Disable {
		return links
	}
	for _, s := range pol.RetryStarts {
		if s > 0 {
			links = append(links, chainLink{model: requested, starts: s})
		}
	}
	for _, fb := range pol.Fallbacks {
		if fb == nil || fb.Name() == requested.Name() {
			continue
		}
		links = append(links, chainLink{model: fb, starts: starts0})
	}
	return links
}

// runChain drives the degradation chain: try every link in order until
// one succeeds, recording each attempt. Context errors abort the chain
// immediately (there is no budget left to degrade into); every other
// failure advances to the next link. ErrBadData failures on the
// requested model skip its remaining retries, since more multistart
// budget cannot conjure up more observations.
func runChain[T any](ctx context.Context, requested Model, starts0 int, pol FallbackPolicy,
	try func(context.Context, Model, int) (T, error)) (T, *DegradeInfo, error) {

	var zero T
	info := &DegradeInfo{RequestedModel: requested.Name()}
	links := resolveChain(requested, starts0, pol)
	ctx, chain := telemetry.StartSpanCtx(ctx, "chain."+requested.Name())

	var firstErr error
	skipModel := ""
	for i, link := range links {
		if link.model.Name() == skipModel {
			continue
		}
		if cErr := ctx.Err(); cErr != nil {
			chainCancellations.Inc()
			chain.End(telemetry.Int("attempts", len(info.Attempts)))
			return zero, info, fmt.Errorf("core: fit %s: %w", requested.Name(), cErr)
		}
		actx, attempt := telemetry.StartSpanCtx(ctx, "attempt."+link.model.Name())
		out, err := try(actx, link.model, link.starts)
		attempt.EndErr(err, telemetry.Int("link", i+1), telemetry.Int("starts", link.starts))
		att := FitAttempt{Model: link.model.Name(), Starts: link.starts}
		if err == nil {
			att.OK = true
			info.Attempts = append(info.Attempts, att)
			info.UsedModel = link.model.Name()
			info.Degraded = i > 0
			info.FallbackUsed = link.model.Name() != requested.Name()
			if firstErr != nil {
				info.Reason = firstErr.Error()
			}
			chainDepth.Observe(float64(len(info.Attempts)))
			chain.End(telemetry.Int("attempts", len(info.Attempts)))
			return out, info, nil
		}
		att.Err = err.Error()
		att.Panic = errors.Is(err, optimize.ErrOptimizerPanic)
		info.Attempts = append(info.Attempts, att)
		if att.Panic {
			info.PanicRecovered = true
			chainPanics.Inc()
		}
		if firstErr == nil {
			firstErr = err
		}
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			chainCancellations.Inc()
			chain.End(telemetry.Int("attempts", len(info.Attempts)))
			return zero, info, err
		}
		if errors.Is(err, ErrBadData) {
			skipModel = link.model.Name()
		}
	}
	if firstErr != nil {
		info.Reason = firstErr.Error()
	}
	chainExhausted.Inc()
	chain.End(telemetry.Int("attempts", len(info.Attempts)))
	return zero, info, fmt.Errorf("core: fit %s: degradation chain exhausted (%d attempts): %w",
		requested.Name(), len(info.Attempts), firstErr)
}

// FitWithFallback runs FitCtx through the degradation chain. On success
// the DegradeInfo reports which link produced the result; on failure the
// info still lists every attempt (for logging and counters) alongside
// the error.
func FitWithFallback(ctx context.Context, m Model, data *timeseries.Series, cfg FitConfig, pol FallbackPolicy) (*FitResult, *DegradeInfo, error) {
	if m == nil {
		return nil, nil, fmt.Errorf("%w: nil model", ErrBadData)
	}
	pol = pol.withDefaults()
	return runChain(ctx, m, cfg.Starts, pol, func(ctx context.Context, link Model, starts int) (*FitResult, error) {
		c := cfg
		c.Starts = starts
		return FitCtx(ctx, link, data, c)
	})
}

// ValidateWithFallback runs the full validation pipeline (split, fit,
// GoF, confidence band, coverage) through the degradation chain, so the
// /v1/fit endpoint can return a usable scorecard from a simpler model
// when the requested one will not converge.
func ValidateWithFallback(ctx context.Context, m Model, data *timeseries.Series, cfg ValidateConfig, pol FallbackPolicy) (*Validation, *DegradeInfo, error) {
	if m == nil {
		return nil, nil, fmt.Errorf("%w: nil model", ErrBadData)
	}
	pol = pol.withDefaults()
	return runChain(ctx, m, cfg.Fit.Starts, pol, func(ctx context.Context, link Model, starts int) (*Validation, error) {
		c := cfg
		c.Fit.Starts = starts
		return ValidateCtx(ctx, link, data, c)
	})
}
