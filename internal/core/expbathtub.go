package core

import (
	"fmt"
	"math"

	"resilience/internal/optimize"
	"resilience/internal/timeseries"
)

// ExpBathtubModel is a four-parameter bathtub extension beyond the
// paper's two forms: a decreasing exponential risk competing with an
// increasing exponential one,
//
//	P(t) = α·e^{−βt} + γ·(e^{δt} − 1),   α, β, γ, δ > 0.
//
// Unlike the classic additive-Weibull bathtub, the hazard is finite at
// t = 0 (P(0) = α), which suits performance curves normalized to 1 at
// the disruption. The extra parameter lets the descent and recovery
// speeds decouple, addressing the paper's observation that the
// three-parameter forms lack flexibility for asymmetric dips.
type ExpBathtubModel struct{}

var (
	_ AreaModel     = ExpBathtubModel{}
	_ MinimumModel  = ExpBathtubModel{}
	_ JacobianModel = ExpBathtubModel{}
)

// Name returns "exp-bathtub".
func (ExpBathtubModel) Name() string { return "exp-bathtub" }

// NumParams returns 4.
func (ExpBathtubModel) NumParams() int { return 4 }

// ParamNames returns α, β, γ, δ.
func (ExpBathtubModel) ParamNames() []string {
	return []string{"alpha", "beta", "gamma", "delta"}
}

// Bounds constrains all four parameters to positive boxes sized for
// normalized monthly data.
func (ExpBathtubModel) Bounds() optimize.Bounds {
	b, err := optimize.NewBounds(
		[]float64{1e-9, 1e-9, 1e-12, 1e-9},
		[]float64{5, 2, 2, 0.5},
	)
	if err != nil {
		panic("core: exp-bathtub bounds: " + err.Error()) // static bounds cannot fail
	}
	return b
}

// Guess derives starting values from the observed minimum and terminal
// slope.
func (ExpBathtubModel) Guess(data *timeseries.Series) []float64 {
	if data == nil || data.Len() < 4 {
		return []float64{1, 0.1, 0.01, 0.05}
	}
	_, td, pd := data.Min()
	_, tEnd := data.Span()
	p0 := data.Value(0)
	pEnd := data.Value(data.Len() - 1)
	alpha := math.Max(p0, 1e-6)
	// Decay rate so that the decreasing term is mostly gone by the
	// observed minimum.
	beta := 0.1
	if td > 0 {
		beta = 2 / td
	}
	// Recovery: γ(e^{δ·tEnd} − 1) ≈ recovered amount. Start δ small and
	// size γ accordingly.
	delta := 0.05
	recovered := math.Max(pEnd-pd, 1e-4)
	gamma := recovered / math.Max(math.Expm1(delta*(tEnd-td)), 1e-6)
	gamma = math.Min(math.Max(gamma, 1e-10), 1)
	return []float64{alpha, beta, gamma, delta}
}

// Validate requires all parameters strictly positive.
func (m ExpBathtubModel) Validate(params []float64) error {
	if err := checkParams(m, params); err != nil {
		return err
	}
	for i, p := range params {
		if !(p > 0) {
			return fmt.Errorf("%w: exp-bathtub %s must be positive, got %g",
				ErrBadParams, m.ParamNames()[i], p)
		}
	}
	return nil
}

// Eval returns α·e^{−βt} + γ·(e^{δt} − 1).
func (ExpBathtubModel) Eval(params []float64, t float64) float64 {
	return params[0]*math.Exp(-params[1]*t) + params[2]*math.Expm1(params[3]*t)
}

// HasAnalyticJacobian reports true: the gradient is exact.
func (ExpBathtubModel) HasAnalyticJacobian() bool { return true }

// EvalGrad fills ∂P/∂(α, β, γ, δ) =
// (e^{−βt}, −αt·e^{−βt}, e^{δt} − 1, γt·e^{δt}).
func (ExpBathtubModel) EvalGrad(params []float64, t float64, grad []float64) {
	decay := math.Exp(-params[1] * t)
	grad[0] = decay
	grad[1] = -params[0] * t * decay
	grad[2] = math.Expm1(params[3] * t)
	grad[3] = params[2] * t * math.Exp(params[3]*t)
}

// Area integrates the curve in closed form:
// ∫ P dt = −(α/β)e^{−βt} + γ(e^{δt}/δ − t).
func (m ExpBathtubModel) Area(params []float64, t0, t1 float64) (float64, error) {
	if err := m.Validate(params); err != nil {
		return math.NaN(), err
	}
	alpha, beta, gamma, delta := params[0], params[1], params[2], params[3]
	anti := func(t float64) float64 {
		return -alpha/beta*math.Exp(-beta*t) + gamma*(math.Exp(delta*t)/delta-t)
	}
	return anti(t1) - anti(t0), nil
}

// MinimumTime solves P'(t) = −αβe^{−βt} + γδe^{δt} = 0 in closed form:
// t_d = ln(αβ/(γδ))/(β+δ), clamped at 0 when the curve is increasing
// from the start.
func (m ExpBathtubModel) MinimumTime(params []float64) (float64, error) {
	if err := m.Validate(params); err != nil {
		return math.NaN(), err
	}
	alpha, beta, gamma, delta := params[0], params[1], params[2], params[3]
	ratio := alpha * beta / (gamma * delta)
	if ratio <= 1 {
		return 0, nil
	}
	return math.Log(ratio) / (beta + delta), nil
}
