package core

import (
	"fmt"
	"math"

	"resilience/internal/optimize"
	"resilience/internal/timeseries"
)

// CompositeModel chains two single-dip resilience models at a fitted
// changepoint τ, implementing the extension the paper's conclusions call
// for: W-shaped events ("two successive periods of degradation and
// recovery in sequence") that no single bathtub or mixture curve can
// express.
//
//	P(t) = M₁(t)                      for t <= τ
//	P(t) = s·M₂(t−τ), s = M₁(τ)/M₂(0) for t >  τ
//
// The scale s keeps the curve continuous at the changepoint. The
// parameter vector is [τ, M₁ params..., M₂ params...].
type CompositeModel struct {
	first  Model
	second Model
	tauLo  float64
	tauHi  float64
}

var _ Model = (*CompositeModel)(nil)

// NewComposite builds a two-phase model whose changepoint is constrained
// to (tauLo, tauHi) — typically a window around the inter-dip peak.
func NewComposite(first, second Model, tauLo, tauHi float64) (*CompositeModel, error) {
	if first == nil || second == nil {
		return nil, fmt.Errorf("%w: composite phases must be non-nil", ErrBadParams)
	}
	if !(tauLo >= 0 && tauHi > tauLo) {
		return nil, fmt.Errorf("%w: changepoint window [%g, %g] invalid", ErrBadParams, tauLo, tauHi)
	}
	return &CompositeModel{first: first, second: second, tauLo: tauLo, tauHi: tauHi}, nil
}

// Phases returns the two component models.
func (c *CompositeModel) Phases() (first, second Model) { return c.first, c.second }

// Name returns e.g. "composite(competing-risks,competing-risks)".
func (c *CompositeModel) Name() string {
	return "composite(" + c.first.Name() + "," + c.second.Name() + ")"
}

// NumParams returns 1 (the changepoint) plus both phases' counts.
func (c *CompositeModel) NumParams() int {
	return 1 + c.first.NumParams() + c.second.NumParams()
}

// ParamNames returns "tau" followed by phase-qualified names.
func (c *CompositeModel) ParamNames() []string {
	names := make([]string, 0, c.NumParams())
	names = append(names, "tau")
	for _, n := range c.first.ParamNames() {
		names = append(names, "phase1."+n)
	}
	for _, n := range c.second.ParamNames() {
		names = append(names, "phase2."+n)
	}
	return names
}

// split partitions the parameter vector.
func (c *CompositeModel) split(params []float64) (tau float64, p1, p2 []float64) {
	tau = params[0]
	p1 = params[1 : 1+c.first.NumParams()]
	p2 = params[1+c.first.NumParams():]
	return tau, p1, p2
}

// Bounds prepends the changepoint window to the phase bounds.
func (c *CompositeModel) Bounds() optimize.Bounds {
	b1 := c.first.Bounds()
	b2 := c.second.Bounds()
	lo := append([]float64{c.tauLo}, b1.Lo...)
	lo = append(lo, b2.Lo...)
	hi := append([]float64{c.tauHi}, b1.Hi...)
	hi = append(hi, b2.Hi...)
	b, err := optimize.NewBounds(lo, hi)
	if err != nil {
		panic("core: composite bounds: " + err.Error()) // component bounds are static
	}
	return b
}

// Guess places the changepoint at the highest interior point of the data
// within the allowed window (the inter-dip peak) and lets each phase
// guess from its own segment.
func (c *CompositeModel) Guess(data *timeseries.Series) []float64 {
	tau := (c.tauLo + c.tauHi) / 2
	var seg1, seg2 *timeseries.Series
	if data != nil && data.Len() >= 4 {
		bestIdx, bestVal := -1, math.Inf(-1)
		for i := 1; i < data.Len()-1; i++ {
			t := data.Time(i)
			if t <= c.tauLo || t >= c.tauHi {
				continue
			}
			if v := data.Value(i); v > bestVal {
				bestIdx, bestVal = i, v
			}
		}
		if bestIdx > 1 && bestIdx < data.Len()-2 {
			tau = data.Time(bestIdx)
			if s, err := data.Slice(0, bestIdx+1); err == nil {
				seg1 = s
			}
			if s, err := data.Slice(bestIdx, data.Len()); err == nil {
				// Re-zero the second segment's clock for the phase guess.
				times := s.Times()
				vals := s.Values()
				for j := range times {
					times[j] -= times[0]
				}
				if rs, err := timeseries.NewSeries(times, vals); err == nil {
					seg2 = rs
				}
			}
		}
	}
	params := []float64{tau}
	params = append(params, c.first.Guess(seg1)...)
	params = append(params, c.second.Guess(seg2)...)
	return params
}

// Validate checks the changepoint window and both phase vectors.
func (c *CompositeModel) Validate(params []float64) error {
	if err := checkParams(c, params); err != nil {
		return err
	}
	tau, p1, p2 := c.split(params)
	if !(tau > c.tauLo && tau < c.tauHi) {
		return fmt.Errorf("%w: changepoint %g outside (%g, %g)", ErrBadParams, tau, c.tauLo, c.tauHi)
	}
	if err := c.first.Validate(p1); err != nil {
		return fmt.Errorf("phase 1: %w", err)
	}
	if err := c.second.Validate(p2); err != nil {
		return fmt.Errorf("phase 2: %w", err)
	}
	return nil
}

// Eval returns the continuous two-phase curve value.
func (c *CompositeModel) Eval(params []float64, t float64) float64 {
	tau, p1, p2 := c.split(params)
	if t <= tau {
		return c.first.Eval(p1, t)
	}
	base := c.second.Eval(p2, 0)
	if base == 0 || math.IsNaN(base) {
		return math.NaN()
	}
	scale := c.first.Eval(p1, tau) / base
	return scale * c.second.Eval(p2, t-tau)
}
