package core

import (
	"errors"
	"math"
	"testing"
)

func TestStandardMixtures(t *testing.T) {
	mixtures := StandardMixtures()
	if len(mixtures) != 4 {
		t.Fatalf("got %d standard mixtures, want 4", len(mixtures))
	}
	wantNames := []string{"exp-exp", "weibull-exp", "exp-weibull", "weibull-weibull"}
	wantParams := []int{3, 4, 4, 5}
	for i, m := range mixtures {
		if m.Name() != wantNames[i] {
			t.Errorf("mixture %d name = %q, want %q", i, m.Name(), wantNames[i])
		}
		if m.NumParams() != wantParams[i] {
			t.Errorf("%s: NumParams = %d, want %d", m.Name(), m.NumParams(), wantParams[i])
		}
	}
}

func TestMixtureEvalAtZeroIsOne(t *testing.T) {
	// With a1(t) = 1 and both CDFs zero at t = 0, P(0) must be exactly 1
	// for every combination, including the log trend (no NaN from ln 0).
	for _, m := range StandardMixtures() {
		params := m.Guess(nil)
		got := m.Eval(params, 0)
		if got != 1 {
			t.Errorf("%s: Eval(0) = %g, want 1", m.Name(), got)
		}
		if math.IsNaN(m.Eval(params, 0.5)) {
			t.Errorf("%s: Eval(0.5) is NaN", m.Name())
		}
	}
}

func TestMixtureEvalHandComputed(t *testing.T) {
	// exp-exp with log trend: P(t) = e^{-r1 t} + β ln(t)(1 - e^{-r2 t}).
	mix, err := NewMixture(ExpFamily{}, ExpFamily{}, LogTrend{})
	if err != nil {
		t.Fatal(err)
	}
	params := []float64{0.2, 0.1, 0.5} // r1, r2, beta
	tt := 5.0
	want := math.Exp(-0.2*tt) + 0.5*math.Log(tt)*(1-math.Exp(-0.1*tt))
	if got := mix.Eval(params, tt); math.Abs(got-want) > 1e-12 {
		t.Errorf("Eval(5) = %.12g, want %.12g", got, want)
	}
}

func TestMixtureParamLayout(t *testing.T) {
	// weibull-exp: [F1.shape, F1.scale, F2.rate, a2.beta].
	mix, err := NewMixture(WeibullFamily{}, ExpFamily{}, LogTrend{})
	if err != nil {
		t.Fatal(err)
	}
	names := mix.ParamNames()
	want := []string{"F1.shape", "F1.scale", "F2.rate", "a2.beta"}
	if len(names) != len(want) {
		t.Fatalf("ParamNames = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Errorf("ParamNames[%d] = %q, want %q", i, names[i], want[i])
		}
	}
	// The parameter order must drive Eval correctly:
	// P(t) = e^{-(t/scale)^shape} + β ln(t)(1 - e^{-rate·t}).
	params := []float64{2, 10, 0.3, 0.4}
	tt := 8.0
	want2 := math.Exp(-math.Pow(tt/10, 2)) + 0.4*math.Log(tt)*(1-math.Exp(-0.3*tt))
	if got := mix.Eval(params, tt); math.Abs(got-want2) > 1e-12 {
		t.Errorf("Eval = %.12g, want %.12g", got, want2)
	}
}

func TestMixtureValidate(t *testing.T) {
	mix, err := NewMixture(ExpFamily{}, WeibullFamily{}, LogTrend{})
	if err != nil {
		t.Fatal(err)
	}
	if err := mix.Validate([]float64{0.1, 1.5, 20, 0.3}); err != nil {
		t.Errorf("valid params rejected: %v", err)
	}
	cases := [][]float64{
		{0.1, 1.5, 20},       // wrong length
		{-0.1, 1.5, 20, 0.3}, // bad F1 rate
		{0.1, -1.5, 20, 0.3}, // bad F2 shape
		{0.1, 1.5, -20, 0.3}, // bad F2 scale
	}
	for _, p := range cases {
		if err := mix.Validate(p); !errors.Is(err, ErrBadParams) {
			t.Errorf("Validate(%v): want ErrBadParams, got %v", p, err)
		}
	}
}

func TestNewMixtureNilComponents(t *testing.T) {
	if _, err := NewMixture(nil, ExpFamily{}, LogTrend{}); !errors.Is(err, ErrBadParams) {
		t.Errorf("nil F1: %v", err)
	}
	if _, err := NewMixture(ExpFamily{}, nil, LogTrend{}); !errors.Is(err, ErrBadParams) {
		t.Errorf("nil F2: %v", err)
	}
	if _, err := NewMixture(ExpFamily{}, ExpFamily{}, nil); !errors.Is(err, ErrBadParams) {
		t.Errorf("nil trend: %v", err)
	}
}

func TestMixtureWithTrendNames(t *testing.T) {
	for _, trend := range []Trend{ConstTrend{}, LinearTrend{}, ExpTrend{}} {
		mixtures, err := MixtureWithTrend(trend)
		if err != nil {
			t.Fatalf("MixtureWithTrend(%s): %v", trend.Name(), err)
		}
		if len(mixtures) != 4 {
			t.Fatalf("got %d mixtures", len(mixtures))
		}
		// Non-default trends must be visible in the name.
		for _, m := range mixtures {
			wantSuffix := "+" + trend.Name()
			if got := m.Name(); len(got) < len(wantSuffix) ||
				got[len(got)-len(wantSuffix):] != wantSuffix {
				t.Errorf("name %q missing trend suffix %q", got, wantSuffix)
			}
		}
	}
	// The default log trend is not suffixed.
	logMixtures, err := MixtureWithTrend(LogTrend{})
	if err != nil {
		t.Fatal(err)
	}
	if logMixtures[0].Name() != "exp-exp" {
		t.Errorf("log-trend name = %q", logMixtures[0].Name())
	}
}

func TestTrendEval(t *testing.T) {
	tests := []struct {
		trend  Trend
		params []float64
		t      float64
		want   float64
	}{
		{UnitTrend{}, nil, 5, 1},
		{ConstTrend{}, []float64{2.5}, 99, 2.5},
		{LinearTrend{}, []float64{0.5}, 6, 3},
		{ExpTrend{}, []float64{0.1}, 10, math.E},
		{LogTrend{}, []float64{2}, math.E, 2},
	}
	for _, tt := range tests {
		if got := tt.trend.Eval(tt.params, tt.t); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("%s.Eval(%v, %g) = %g, want %g", tt.trend.Name(), tt.params, tt.t, got, tt.want)
		}
	}
}

func TestTrendGuessesInsideBounds(t *testing.T) {
	trends := []Trend{ConstTrend{}, LinearTrend{}, ExpTrend{}, LogTrend{}}
	horizons := []float64{0, 1, 24, 48}
	terminals := []float64{0, 0.9, 1.0, 1.1}
	for _, tr := range trends {
		lo, hi := tr.ParamBounds()
		for _, h := range horizons {
			for _, term := range terminals {
				g := tr.GuessParam(h, term)
				if len(g) != tr.NumParams() {
					t.Fatalf("%s: guess length %d", tr.Name(), len(g))
				}
				for i := range g {
					if g[i] < lo[i] || g[i] > hi[i] {
						t.Errorf("%s: guess %g outside [%g, %g] at h=%g term=%g",
							tr.Name(), g[i], lo[i], hi[i], h, term)
					}
				}
			}
		}
	}
}

func TestCDFFamiliesMatchStatDistributions(t *testing.T) {
	// Family CDF evaluations must agree with the stat package.
	expF := ExpFamily{}
	weiF := WeibullFamily{}
	for x := 0.0; x < 20; x += 0.7 {
		d1, err := expF.Dist([]float64{0.3})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(expF.CDF([]float64{0.3}, x)-d1.CDF(x)) > 1e-14 {
			t.Fatalf("exp family CDF mismatch at %g", x)
		}
		d2, err := weiF.Dist([]float64{1.7, 9})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(weiF.CDF([]float64{1.7, 9}, x)-d2.CDF(x)) > 1e-14 {
			t.Fatalf("weibull family CDF mismatch at %g", x)
		}
	}
}

func TestExtensionFamiliesValidateAndEval(t *testing.T) {
	gamma := GammaFamily{}
	logn := LogNormalFamily{}
	if err := gamma.Validate([]float64{2, 0.5}); err != nil {
		t.Errorf("gamma valid params: %v", err)
	}
	if err := gamma.Validate([]float64{-2, 0.5}); !errors.Is(err, ErrBadParams) {
		t.Errorf("gamma bad shape: %v", err)
	}
	if err := logn.Validate([]float64{0, 1}); err != nil {
		t.Errorf("lognormal valid params: %v", err)
	}
	if err := logn.Validate([]float64{0, -1}); !errors.Is(err, ErrBadParams) {
		t.Errorf("lognormal bad sigma: %v", err)
	}
	// CDFs rise from 0 toward 1.
	for _, f := range []CDFFamily{gamma, logn} {
		params := f.Guess(48)
		if got := f.CDF(params, 0); got != 0 {
			t.Errorf("%s: CDF(0) = %g", f.Name(), got)
		}
		prev := 0.0
		for x := 0.5; x < 200; x += 2 {
			c := f.CDF(params, x)
			if c < prev-1e-12 || c > 1 {
				t.Fatalf("%s: CDF not monotone in [0,1] at %g", f.Name(), x)
			}
			prev = c
		}
	}
	// Mixtures built from extension families behave.
	mix, err := NewMixture(GammaFamily{}, LogNormalFamily{}, LogTrend{})
	if err != nil {
		t.Fatal(err)
	}
	params := mix.Guess(nil)
	if err := mix.Validate(params); err != nil {
		t.Errorf("extension mixture guess invalid: %v", err)
	}
	if mix.Eval(params, 0) != 1 {
		t.Errorf("extension mixture Eval(0) = %g", mix.Eval(params, 0))
	}
}

func TestMixtureComponentsAccessor(t *testing.T) {
	mix, err := NewMixture(ExpFamily{}, WeibullFamily{}, LogTrend{})
	if err != nil {
		t.Fatal(err)
	}
	f1, f2, a1, a2 := mix.Components()
	if f1.Name() != "exp" || f2.Name() != "weibull" || a1.Name() != "unit" || a2.Name() != "log" {
		t.Errorf("Components = %s, %s, %s, %s", f1.Name(), f2.Name(), a1.Name(), a2.Name())
	}
}

func TestNewCDFFamiliesInMixtures(t *testing.T) {
	// The LogLogistic and Gompertz extensions slot into mixtures like the
	// paper's families: P(0) = 1, finite everywhere, guesses feasible.
	for _, f := range []CDFFamily{LogLogisticFamily{}, GompertzFamily{}} {
		t.Run(f.Name(), func(t *testing.T) {
			if len(f.ParamNames()) != f.NumParams() {
				t.Error("param name count")
			}
			g := f.Guess(48)
			if err := f.Validate(g); err != nil {
				t.Errorf("guess invalid: %v", err)
			}
			if err := f.Validate(g[:1]); !errors.Is(err, ErrBadParams) {
				t.Errorf("short params: %v", err)
			}
			if err := f.Validate([]float64{-1, 1}); !errors.Is(err, ErrBadParams) {
				t.Errorf("negative params: %v", err)
			}
			if f.CDF(g, 0) != 0 {
				t.Error("CDF(0) != 0")
			}
			prev := 0.0
			for x := 0.25; x < 100; x += 0.5 {
				c := f.CDF(g, x)
				if c < prev-1e-12 || c > 1 || math.IsNaN(c) {
					t.Fatalf("CDF not monotone in [0,1] at %g: %g", x, c)
				}
				prev = c
			}
			mix, err := NewMixture(WeibullFamily{}, f, LogTrend{})
			if err != nil {
				t.Fatal(err)
			}
			params := mix.Guess(nil)
			if mix.Eval(params, 0) != 1 {
				t.Errorf("mixture Eval(0) = %g", mix.Eval(params, 0))
			}
		})
	}
}

func TestNewFamiliesMatchStatDistributions(t *testing.T) {
	ll := LogLogisticFamily{}
	llDist, err := ll.Dist([]float64{2.5, 8})
	if err != nil {
		t.Fatal(err)
	}
	gz := GompertzFamily{}
	gzDist, err := gz.Dist([]float64{0.4, 0.2})
	if err != nil {
		t.Fatal(err)
	}
	for x := 0.0; x < 30; x += 1.3 {
		if math.Abs(ll.CDF([]float64{2.5, 8}, x)-llDist.CDF(x)) > 1e-14 {
			t.Fatalf("loglogistic mismatch at %g", x)
		}
		if math.Abs(gz.CDF([]float64{0.4, 0.2}, x)-gzDist.CDF(x)) > 1e-14 {
			t.Fatalf("gompertz mismatch at %g", x)
		}
	}
	if _, err := ll.Dist([]float64{-1, 1}); !errors.Is(err, ErrBadParams) {
		t.Errorf("bad loglogistic dist: %v", err)
	}
	if _, err := gz.Dist([]float64{-1, 1}); !errors.Is(err, ErrBadParams) {
		t.Errorf("bad gompertz dist: %v", err)
	}
}
