package core

import (
	"errors"
	"fmt"
	"math"

	"resilience/internal/numeric"
)

// ModelMinimum returns the time t_d at which the fitted curve attains its
// minimum, using the model's closed form when available (quadratic vertex
// or the competing-risks stationary point) and a grid-plus-golden-section
// search on [0, horizon] otherwise.
func ModelMinimum(f *FitResult, horizon float64) (float64, error) {
	if f == nil {
		return math.NaN(), fmt.Errorf("%w: nil fit", ErrBadData)
	}
	if mm, ok := f.Model.(MinimumModel); ok {
		td, err := mm.MinimumTime(f.Params)
		if err != nil {
			return math.NaN(), err
		}
		if td < 0 {
			td = 0
		}
		if horizon > 0 && td > horizon {
			td = horizon
		}
		return td, nil
	}
	return mixtureMinimum(f.Model, f.Params, horizon)
}

// RecoveryTime returns the earliest post-minimum time at which the fitted
// curve returns to the given performance level — the restoration-time
// prediction the paper motivates in its introduction. Closed forms
// (Eqs. 2 and 5) are used when the model provides them; otherwise the
// curve is bracketed beyond its minimum and solved with Brent's method.
// searchHorizon bounds the numeric search (use a few multiples of the
// observed span).
func RecoveryTime(f *FitResult, level, searchHorizon float64) (float64, error) {
	if f == nil {
		return math.NaN(), fmt.Errorf("%w: nil fit", ErrBadData)
	}
	if rm, ok := f.Model.(RecoveryModel); ok {
		return rm.RecoveryTime(f.Params, level)
	}
	if searchHorizon <= 0 {
		return math.NaN(), fmt.Errorf("%w: non-positive search horizon", ErrBadData)
	}
	td, err := ModelMinimum(f, searchHorizon)
	if err != nil {
		return math.NaN(), err
	}
	g := func(t float64) float64 { return f.Eval(t) - level }
	if g(td) >= 0 {
		// Already at or above the level at the minimum: recovery is
		// immediate.
		return td, nil
	}
	// March outward from the minimum until the curve crosses the level.
	// The step scales with the full horizon, not the span left after the
	// minimum: when td sits at (or near) searchHorizon the latter
	// collapses to the 1e-6 floor and the march over [td, 4·horizon]
	// becomes hundreds of millions of model evaluations.
	lo := td
	step := math.Max(searchHorizon/64, 1e-6)
	for hi := td + step; hi <= searchHorizon*4; hi += step {
		if g(hi) >= 0 {
			root, err := numeric.BrentRoot(g, lo, hi, 1e-10)
			if err != nil {
				return math.NaN(), fmt.Errorf("core: recovery root: %w", err)
			}
			return root, nil
		}
		lo = hi
	}
	return math.NaN(), fmt.Errorf("%w: level %g not reached within horizon %g",
		ErrNoRecovery, level, searchHorizon*4)
}

// AreaUnderCurve returns ∫ P̂ dt over [t0, t1], using the model's closed
// form (Eqs. 3 and 6) when available and adaptive quadrature otherwise.
func AreaUnderCurve(f *FitResult, t0, t1 float64) (float64, error) {
	if f == nil {
		return math.NaN(), fmt.Errorf("%w: nil fit", ErrBadData)
	}
	if am, ok := f.Model.(AreaModel); ok {
		return am.Area(f.Params, t0, t1)
	}
	set, err := Compute(f.Eval, Window{TH: t0, TR: t1, TD: t0, T0: t0, Nominal: 1, PMin: 0},
		MetricsConfig{Mode: Continuous})
	if err != nil {
		return math.NaN(), err
	}
	return set[PerformancePreserved], nil
}

// CurveShape classifies the letter shape economists use for resilience
// curves (Sec. V): V, U, W, L, or J. Classification is heuristic, based
// on the drop depth, the time spent near the minimum, the number of
// distinct dips, and the terminal recovery level. It implements the
// shape-awareness the paper's conclusions call for: W- and L-shaped data
// cannot be captured by single-dip models.
type CurveShape string

// Recognized curve shapes.
const (
	// ShapeV is a sharp drop with a similarly fast recovery.
	ShapeV CurveShape = "V"
	// ShapeU is a slower decline with an extended trough.
	ShapeU CurveShape = "U"
	// ShapeW contains two successive degradation/recovery cycles.
	ShapeW CurveShape = "W"
	// ShapeL is a sharp drop followed by sustained underperformance.
	ShapeL CurveShape = "L"
	// ShapeJ recovers slowly but eventually exceeds the pre-hazard trend.
	ShapeJ CurveShape = "J"
	// ShapeFlat means no meaningful degradation was detected.
	ShapeFlat CurveShape = "flat"
)

// ClassifyShape labels a normalized resilience series (values ≈ 1 at the
// hazard onset) with its letter shape.
func ClassifyShape(values []float64) CurveShape {
	if len(values) < 3 {
		return ShapeFlat
	}
	base := values[0]
	minV, minIdx := values[0], 0
	for i, v := range values {
		if v < minV {
			minV, minIdx = v, i
		}
	}
	depth := (base - minV) / math.Max(base, 1e-12)
	if depth < 0.002 {
		return ShapeFlat
	}

	// Count distinct dips: descents below the midpoint between base and
	// minimum separated by a recovery above it.
	mid := minV + (base-minV)*0.5
	dips := 0
	below := false
	for _, v := range values {
		if !below && v < mid {
			dips++
			below = true
		} else if below && v > mid {
			below = false
		}
	}
	if dips >= 2 {
		return ShapeW
	}

	terminal := values[len(values)-1]
	recovered := (terminal - minV) / math.Max(base-minV, 1e-12)
	dropSpeed := float64(minIdx) / float64(len(values))

	// L: a deep, near-instant collapse that never regains the starting
	// level within the horizon (the paper's 2020-21 COVID shape).
	fastDrop := float64(minIdx) <= math.Max(3, 0.15*float64(len(values)))
	if fastDrop && depth >= 0.04 && terminal < base {
		return ShapeL
	}

	// J: eventually exceeds the pre-hazard level, but the climb back takes
	// much longer than the fall.
	if terminal > base*1.01 {
		recoverIdx := -1
		for i := minIdx + 1; i < len(values); i++ {
			if values[i] >= base {
				recoverIdx = i
				break
			}
		}
		if recoverIdx > 0 && minIdx > 0 && float64(recoverIdx-minIdx) > 2*float64(minIdx) {
			return ShapeJ
		}
	}

	if dropSpeed < 0.25 && recovered >= 0.9 {
		return ShapeV
	}
	return ShapeU
}

// ErrBadPiecewise indicates invalid piecewise-curve breakpoints.
var ErrBadPiecewise = errors.New("core: piecewise curve needs th < tr")

// PiecewiseCurve is the Sec. II piecewise resilience curve: nominal
// performance before the hazard at t_h, the model curve during disruption
// and recovery, and a (possibly different) steady level after t_r. It
// renders the conceptual Fig. 1.
type PiecewiseCurve struct {
	// TH and TR are the hazard and new-steady-state times.
	TH, TR float64
	// Before is the nominal performance P(t_h) for t < t_h.
	Before float64
	// After is the steady performance P(t_r) for t > t_r.
	After float64
	// During evaluates the model section on [t_h, t_r]; times are passed
	// relative to t_h (the model's own clock starts at the hazard).
	During func(t float64) float64
	// Scale is the normalizing constant c of Eq. (1) that keeps the curve
	// continuous at t_h: c = Before / During(0).
	Scale float64
}

// NewPiecewise builds a continuous piecewise resilience curve around a
// fitted (or raw) model section, computing the normalizing constant c so
// that c·P(0) equals the pre-hazard level.
func NewPiecewise(th, tr, before float64, during func(float64) float64) (*PiecewiseCurve, error) {
	if during == nil || !(tr > th) {
		return nil, ErrBadPiecewise
	}
	p0 := during(0)
	if p0 == 0 || math.IsNaN(p0) || math.IsInf(p0, 0) {
		return nil, fmt.Errorf("%w: model section value at hazard is %g", ErrBadData, p0)
	}
	scale := before / p0
	return &PiecewiseCurve{
		TH: th, TR: tr,
		Before: before,
		After:  scale * during(tr-th),
		During: during,
		Scale:  scale,
	}, nil
}

// Eval returns the piecewise curve value at absolute time t.
func (p *PiecewiseCurve) Eval(t float64) float64 {
	switch {
	case t < p.TH:
		return p.Before
	case t > p.TR:
		return p.After
	default:
		return p.Scale * p.During(t-p.TH)
	}
}

// ShapeK is the K-shaped classification for a pair of sector series with
// divergent recoveries (one recovers, one stays depressed) — the one
// letter shape that needs two curves to define (Sec. V: "divergent
// recovery paths").
const ShapeK CurveShape = "K"

// ClassifyShapePair labels two sector series observed over the same
// disruption. It returns ShapeK when both sectors drop together but
// their recoveries diverge: one ends at or above its starting level
// while the other remains well below. Otherwise it returns the
// classification of the aggregate (mean) curve.
func ClassifyShapePair(a, b []float64) CurveShape {
	if len(a) != len(b) || len(a) < 3 {
		return ShapeFlat
	}
	dropA, endA := dropAndEnd(a)
	dropB, endB := dropAndEnd(b)
	bothDropped := dropA > 0.01 && dropB > 0.01
	oneRecovered := endA >= 0.995 || endB >= 0.995
	oneDepressed := endA < 0.97 || endB < 0.97
	diverged := math.Abs(endA-endB) > 0.03
	if bothDropped && oneRecovered && oneDepressed && diverged {
		return ShapeK
	}
	mean := make([]float64, len(a))
	for i := range a {
		mean[i] = (a[i] + b[i]) / 2
	}
	return ClassifyShape(mean)
}

// dropAndEnd returns the normalized maximum drawdown and terminal level
// of a series relative to its first value.
func dropAndEnd(values []float64) (drop, end float64) {
	base := values[0]
	if base == 0 {
		return 0, 0
	}
	min := values[0]
	for _, v := range values {
		if v < min {
			min = v
		}
	}
	return (base - min) / base, values[len(values)-1] / base
}
