package core

import (
	"context"
	"errors"
	"math"
	"sync"
	"testing"
	"time"

	"resilience/internal/timeseries"
)

// parallelTestSeries is a 36-point V-shaped curve every standard family
// can fit, mirroring the benchmark series.
func parallelTestSeries(t *testing.T) *timeseries.Series {
	t.Helper()
	vals := make([]float64, 36)
	for i := range vals {
		x := float64(i)
		vals[i] = 1 - 0.03*math.Sin(math.Pi*math.Min(x/28, 1)) + 0.0008*math.Max(0, x-28)
	}
	s, err := timeseries.FromValues(vals)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// standardFamilies is every model the API serves.
func standardFamilies() []Model {
	models := []Model{QuadraticModel{}, CompetingRisksModel{}, ExpBathtubModel{}}
	for _, m := range StandardMixtures() {
		models = append(models, m)
	}
	return models
}

// TestFitParallelDeterminism fits every standard model family with
// Workers: 1 and Workers: 8 and asserts bit-identical Params, SSE, and
// counters — the acceptance contract for the parallel multistart.
func TestFitParallelDeterminism(t *testing.T) {
	series := parallelTestSeries(t)
	for _, m := range standardFamilies() {
		m := m
		t.Run(m.Name(), func(t *testing.T) {
			t.Parallel()
			seq, err := Fit(m, series, FitConfig{Workers: 1})
			if err != nil {
				t.Fatalf("sequential fit: %v", err)
			}
			par, err := Fit(m, series, FitConfig{Workers: 8})
			if err != nil {
				t.Fatalf("parallel fit: %v", err)
			}
			if seq.SSE != par.SSE {
				t.Errorf("SSE: sequential %v, parallel %v (must be bit-identical)", seq.SSE, par.SSE)
			}
			if len(seq.Params) != len(par.Params) {
				t.Fatalf("param count: %d vs %d", len(seq.Params), len(par.Params))
			}
			for i := range seq.Params {
				if seq.Params[i] != par.Params[i] {
					t.Errorf("Params[%d]: sequential %v, parallel %v (must be bit-identical)",
						i, seq.Params[i], par.Params[i])
				}
			}
			if seq.Evals != par.Evals || seq.Iterations != par.Iterations {
				t.Errorf("counters: sequential (%d evals, %d iters), parallel (%d, %d)",
					seq.Evals, seq.Iterations, par.Evals, par.Iterations)
			}
		})
	}
}

// TestFitParallelCancellation hammers FitCtx with mid-flight
// cancellations at Workers: 8; under -race this exercises the pool
// teardown path through the whole fitting stack.
func TestFitParallelCancellation(t *testing.T) {
	series := parallelTestSeries(t)
	mixtures := StandardMixtures()
	var wg sync.WaitGroup
	for round := 0; round < 8; round++ {
		wg.Add(1)
		go func(round int) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(),
				time.Duration(1+round)*time.Millisecond)
			defer cancel()
			m := mixtures[round%len(mixtures)]
			_, err := FitCtx(ctx, m, series, FitConfig{Workers: 8})
			if err != nil && !errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, context.Canceled) {
				t.Errorf("round %d (%s): unexpected error: %v", round, m.Name(), err)
			}
		}(round)
	}
	wg.Wait()
}

// TestFitSSEMatchesObjective guards the satellite fix that reuses the
// optimizer's F for FitResult.SSE: the recorded SSE must equal Eq. (9)
// recomputed from the returned parameters.
func TestFitSSEMatchesObjective(t *testing.T) {
	series := parallelTestSeries(t)
	for _, m := range standardFamilies() {
		fit, err := Fit(m, series, FitConfig{})
		if err != nil {
			t.Fatalf("fit %s: %v", m.Name(), err)
		}
		var sse float64
		for i := 0; i < series.Len(); i++ {
			d := series.Value(i) - fit.Eval(series.Time(i))
			sse += d * d
		}
		if math.Abs(fit.SSE-sse) > 1e-12*math.Max(1, sse) {
			t.Errorf("%s: recorded SSE %v, recomputed %v", m.Name(), fit.SSE, sse)
		}
	}
}
