package core

import (
	"math"
	"testing"

	"resilience/internal/timeseries"
)

// benchSeries is a 36-point V-shaped recession curve, the same shape the
// server benchmarks against — deterministic so BENCH_fit.json runs are
// comparable across commits.
func benchSeries(b *testing.B) *timeseries.Series {
	b.Helper()
	vals := make([]float64, 36)
	for i := range vals {
		x := float64(i)
		vals[i] = 1 - 0.03*math.Sin(math.Pi*math.Min(x/28, 1)) + 0.0008*math.Max(0, x-28)
	}
	s, err := timeseries.FromValues(vals)
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// BenchmarkFit measures the full fitting pipeline per model family:
// multistart Nelder–Mead plus Levenberg–Marquardt polish on the canned
// V-shaped series. Alongside ns/op it reports evals/op and iters/op (the
// paper's per-fit cost accounting), which `make bench` collects into
// BENCH_fit.json to seed the perf trajectory.
func BenchmarkFit(b *testing.B) {
	series := benchSeries(b)
	models := []Model{QuadraticModel{}, CompetingRisksModel{}, ExpBathtubModel{}}
	for _, m := range StandardMixtures() {
		models = append(models, m)
	}
	for _, m := range models {
		b.Run(m.Name(), func(b *testing.B) {
			var evals, iters float64
			for i := 0; i < b.N; i++ {
				fit, err := Fit(m, series, FitConfig{})
				if err != nil {
					b.Fatalf("fit %s: %v", m.Name(), err)
				}
				evals += float64(fit.Evals)
				iters += float64(fit.Iterations)
			}
			b.ReportMetric(evals/float64(b.N), "evals/op")
			b.ReportMetric(iters/float64(b.N), "iters/op")
		})
	}
}
