package core

import (
	"math"
	"testing"

	"resilience/internal/numeric"
	"resilience/internal/rng"
)

// gradCheckModels is every registered-family model shape that claims an
// analytic Jacobian, plus trend and transition variants that exercise
// each GradTrend and GradCDFFamily implementation at least once.
func gradCheckModels(t *testing.T) []Model {
	t.Helper()
	models := []Model{QuadraticModel{}, CompetingRisksModel{}, ExpBathtubModel{}}
	for _, m := range StandardMixtures() {
		models = append(models, m)
	}
	extra := []struct {
		f1, f2 CDFFamily
		a2     Trend
	}{
		{LogNormalFamily{}, LogLogisticFamily{}, ConstTrend{}},
		{GompertzFamily{}, LogNormalFamily{}, LinearTrend{}},
		{LogLogisticFamily{}, GompertzFamily{}, ExpTrend{}},
	}
	for _, e := range extra {
		mix, err := NewMixture(e.f1, e.f2, e.a2)
		if err != nil {
			t.Fatal(err)
		}
		models = append(models, mix)
	}
	return models
}

// randParams draws an in-bounds parameter vector, shrinking the box to
// a moderate interior region so finite differences stay well
// conditioned (the analytic path must agree with the numeric one where
// the numeric one is trustworthy).
func randParams(r *rng.RNG, m Model) []float64 {
	b := m.Bounds()
	p := make([]float64, b.Len())
	for i := range p {
		lo, hi := b.Lo[i], b.Hi[i]
		if math.IsInf(lo, -1) {
			lo = -3
		}
		if math.IsInf(hi, 1) {
			hi = 3
		}
		// Sample the central region on a log-ish scale: parameter boxes
		// here span many decades (1e-9..100) and uniform draws would
		// almost always land at the top decade.
		span := hi - lo
		lo += 0.05 * span
		hi -= 0.05 * span
		u := r.Float64()
		p[i] = lo + u*u*(hi-lo)
	}
	return p
}

// TestAnalyticJacobianMatchesNumeric is the table-driven gradient check
// the analytic-Jacobian contract hangs on: for every model family
// claiming HasAnalyticJacobian, EvalGrad must agree with a
// forward-difference Jacobian of Eval to 1e-5 (absolute or relative) at
// randomized in-bounds parameter vectors across the observation grid.
func TestAnalyticJacobianMatchesNumeric(t *testing.T) {
	times := make([]float64, 30)
	for i := range times {
		times[i] = float64(i) // includes the t=0 onset edge case
	}
	r := rng.New(0x6a61636f62)
	for _, m := range gradCheckModels(t) {
		jm, ok := m.(JacobianModel)
		if !ok || !jm.HasAnalyticJacobian() {
			t.Errorf("%s: expected an analytic Jacobian", m.Name())
			continue
		}
		n := m.NumParams()
		for trial := 0; trial < 25; trial++ {
			params := randParams(r, m)
			if m.Validate(params) != nil {
				continue
			}
			// Residual over the grid (value part only; subtracting data
			// does not change the Jacobian).
			res := func(p []float64) ([]float64, error) {
				if err := m.Validate(p); err != nil {
					return nil, err
				}
				out := make([]float64, len(times))
				for i, tt := range times {
					out[i] = m.Eval(p, tt)
				}
				return out, nil
			}
			r0, err := res(params)
			if err != nil {
				continue
			}
			numJac := make([][]float64, len(times))
			for i := range numJac {
				numJac[i] = make([]float64, n)
			}
			if err := numeric.Jacobian(res, params, r0, numJac); err != nil {
				continue
			}
			grad := make([]float64, n)
			for i, tt := range times {
				jm.EvalGrad(params, tt, grad)
				for j := 0; j < n; j++ {
					a, nd := grad[j], numJac[i][j]
					diff := math.Abs(a - nd)
					// The error scale includes |r_i|: a forward difference
					// of a function of magnitude |f| carries round-off
					// noise ~ ε|f|/h no matter how exact the analytic side
					// is, so agreement is only meaningful relative to the
					// larger of the derivative and the function value.
					scale := math.Max(1, math.Max(math.Abs(a), math.Abs(nd)))
					scale = math.Max(scale, math.Abs(r0[i]))
					if diff/scale > 1e-5 {
						t.Fatalf("%s trial %d: ∂P/∂θ[%d] at t=%g: analytic %g vs numeric %g (params %v)",
							m.Name(), trial, j, tt, a, nd, params)
					}
				}
			}
		}
	}
}

// TestAnalyticJacobianZeroOnOverflow pins the saturation contract: where
// a CDF's internal power/exponential overflows (the curve is flat at 1),
// DCDF must report exactly zero gradients rather than NaN/Inf, so the
// optimizer sees a stalled direction instead of a poisoned matrix.
func TestAnalyticJacobianZeroOnOverflow(t *testing.T) {
	cases := []struct {
		fam    GradCDFFamily
		params []float64
	}{
		{WeibullFamily{}, []float64{1e-6, 20}}, // (t/λ)^k overflows for t ≫ λ
		{LogLogisticFamily{}, []float64{1e-6, 30}},
		{GompertzFamily{}, []float64{5, 10}}, // expm1(bt) overflows
	}
	for _, c := range cases {
		grad := make([]float64, c.fam.NumParams())
		c.fam.DCDF(c.params, 1e6, grad)
		for j, g := range grad {
			if math.IsNaN(g) || math.IsInf(g, 0) {
				t.Errorf("%s: grad[%d] = %g at saturated tail, want finite", c.fam.Name(), j, g)
			}
		}
	}
}
