// Package core implements the paper's contribution: parametric models
// that predict a system's resilience curve — performance degradation and
// recovery after a disruptive event — together with least-squares fitting
// (Eq. 8), goodness-of-fit measures (Eqs. 9–11), confidence intervals and
// empirical coverage (Eqs. 12–13), the eight interval-based resilience
// metrics (Eqs. 14–21), and recovery-time prediction (Eqs. 2 and 5).
//
// Two model families are provided, following Sec. II of the paper:
//
//   - bathtub-shaped hazard functions from reliability engineering: the
//     quadratic hazard λ(t) = α + βt + γt² and the competing-risks
//     (Hjorth-style) hazard λ(t) = 2γt + α/(1+βt), and
//   - mixture distributions P(t) = a₁(t)(1−F₁(t)) + a₂(t)F₂(t) with
//     pluggable degradation/recovery CDFs and transition trends.
package core

import (
	"errors"
	"fmt"

	"resilience/internal/optimize"
	"resilience/internal/timeseries"
)

// Model is a parametric resilience-curve family P(t; θ). Implementations
// are stateless: parameters are always passed explicitly, so one Model
// value can be shared freely across goroutines and fits.
type Model interface {
	// Name returns a short identifier such as "quadratic" or "wei-exp".
	Name() string
	// NumParams returns the dimension of the parameter vector θ.
	NumParams() int
	// ParamNames returns human-readable names for each parameter, in the
	// order Eval expects them.
	ParamNames() []string
	// Bounds returns the feasible box for θ used by the fitting driver.
	Bounds() optimize.Bounds
	// Guess produces a data-informed starting vector for the fit.
	Guess(data *timeseries.Series) []float64
	// Validate reports whether θ is usable (correct length, inside the
	// feasible region).
	Validate(params []float64) error
	// Eval returns P(t; θ). Behaviour is undefined if Validate fails;
	// fitting code always validates first.
	Eval(params []float64, t float64) float64
}

// AreaModel is implemented by models with a closed-form area under the
// curve, such as the bathtub models (Eqs. 3 and 6). Models without it are
// integrated numerically.
type AreaModel interface {
	Model
	// Area returns ∫ P(t; θ) dt over [t0, t1].
	Area(params []float64, t0, t1 float64) (float64, error)
}

// RecoveryModel is implemented by models with a closed-form solution for
// the time at which performance returns to a target level, as in Eqs. (2)
// and (5). Models without it fall back to root finding.
type RecoveryModel interface {
	Model
	// RecoveryTime returns the time t > time-of-minimum at which
	// P(t; θ) = level.
	RecoveryTime(params []float64, level float64) (float64, error)
}

// MinimumModel is implemented by models that can locate their performance
// minimum t_d analytically.
type MinimumModel interface {
	Model
	// MinimumTime returns the time t_d at which P(t; θ) is smallest.
	MinimumTime(params []float64) (float64, error)
}

// JacobianModel is implemented by models with closed-form parameter
// gradients ∂P/∂θ. The fitting driver uses them to run analytic-Jacobian
// Levenberg–Marquardt instead of derivative-free search — the difference
// between tens and tens of thousands of evaluations per fit.
type JacobianModel interface {
	Model
	// HasAnalyticJacobian reports whether EvalGrad is exact for this
	// instance. Composite models (mixtures) answer per instance, since
	// exactness depends on whether every component provides gradients.
	HasAnalyticJacobian() bool
	// EvalGrad fills grad (length NumParams) with ∂P(t; θ)/∂θ. Like
	// Eval, behaviour is undefined when Validate fails; fitting code
	// always validates first.
	EvalGrad(params []float64, t float64, grad []float64)
}

// HasAnalyticJacobian reports whether m exposes exact closed-form
// parameter gradients, unwrapping the per-instance answer composite
// models give.
func HasAnalyticJacobian(m Model) bool {
	jm, ok := m.(JacobianModel)
	return ok && jm.HasAnalyticJacobian()
}

// Sentinel errors shared across the core package.
var (
	// ErrBadParams indicates a parameter vector of the wrong length or
	// outside the model's feasible region.
	ErrBadParams = errors.New("core: invalid model parameters")
	// ErrNoRecovery indicates the model curve never returns to the
	// requested performance level.
	ErrNoRecovery = errors.New("core: model does not recover to the requested level")
	// ErrBadData indicates input data unusable for the requested
	// operation.
	ErrBadData = errors.New("core: invalid input data")
	// ErrNoConvergence indicates the optimizer finished without finding a
	// finite-objective parameter estimate; the degradation chain treats it
	// as a retryable failure.
	ErrNoConvergence = errors.New("core: fit did not converge")
)

// checkParams verifies the length of a parameter vector against a model.
func checkParams(m Model, params []float64) error {
	if len(params) != m.NumParams() {
		return fmt.Errorf("%w: %s expects %d parameters, got %d",
			ErrBadParams, m.Name(), m.NumParams(), len(params))
	}
	return nil
}
