package core

import (
	"fmt"
	"math"

	"resilience/internal/stat"
)

// CDFFamily is a parametric family of cumulative distribution functions
// usable as a mixture component F₁ (degradation) or F₂ (recovery). The
// paper's experiments combine the Exponential and Weibull families
// (Eq. 23); Gamma and LogNormal are provided as the extensions its
// conclusions call for.
type CDFFamily interface {
	// Name returns a short identifier such as "exp" or "weibull".
	Name() string
	// NumParams returns the number of family parameters.
	NumParams() int
	// ParamNames returns names for each parameter.
	ParamNames() []string
	// CDF returns F(t; θ). It must return 0 for t <= 0 (all built-in
	// families are supported on the positive half-line).
	CDF(params []float64, t float64) float64
	// Validate checks a parameter vector.
	Validate(params []float64) error
	// Guess returns a starting vector given the series horizon: rates are
	// started so that the distribution's mass spreads over the horizon.
	Guess(horizon float64) []float64
	// ParamBounds returns the feasible (lo, hi) box.
	ParamBounds() (lo, hi []float64)
}

// GradCDFFamily is implemented by CDF families with closed-form
// parameter gradients ∂F/∂θ, which mixture models compose into a full
// analytic Jacobian. GammaFamily stays on the numerical fallback (its
// gradient needs the digamma-weighted incomplete-gamma derivative); every
// other built-in family implements it.
type GradCDFFamily interface {
	CDFFamily
	// DCDF fills grad (length NumParams) with ∂F(t; θ)/∂θ. Like CDF, it
	// treats t <= 0 as the pre-disruption region: F ≡ 0 there, so the
	// gradient is identically zero.
	DCDF(params []float64, t float64, grad []float64)
}

// ExpFamily is the exponential CDF family F(t) = 1 − e^{−λt}.
type ExpFamily struct{}

var _ GradCDFFamily = ExpFamily{}

// Name returns "exp".
func (ExpFamily) Name() string { return "exp" }

// NumParams returns 1.
func (ExpFamily) NumParams() int { return 1 }

// ParamNames returns the rate parameter name.
func (ExpFamily) ParamNames() []string { return []string{"rate"} }

// CDF returns 1 − e^{−λt}.
func (ExpFamily) CDF(params []float64, t float64) float64 {
	if t <= 0 {
		return 0
	}
	return -math.Expm1(-params[0] * t)
}

// DCDF fills ∂F/∂λ = t·e^{−λt}.
func (ExpFamily) DCDF(params []float64, t float64, grad []float64) {
	if t <= 0 {
		grad[0] = 0
		return
	}
	grad[0] = t * math.Exp(-params[0]*t)
}

// Validate requires λ > 0.
func (f ExpFamily) Validate(params []float64) error {
	if len(params) != 1 {
		return fmt.Errorf("%w: exp family expects 1 parameter, got %d", ErrBadParams, len(params))
	}
	if !(params[0] > 0) {
		return fmt.Errorf("%w: exp rate must be positive, got %g", ErrBadParams, params[0])
	}
	return nil
}

// Guess places the mean at a quarter of the horizon.
func (ExpFamily) Guess(horizon float64) []float64 {
	if horizon > 0 {
		return []float64{4 / horizon}
	}
	return []float64{0.1}
}

// ParamBounds allows λ ∈ (0, 50].
func (ExpFamily) ParamBounds() (lo, hi []float64) {
	return []float64{1e-9}, []float64{50}
}

// Dist materializes the stat.Exponential for a parameter vector, mainly
// for diagnostics such as Kolmogorov–Smirnov checks.
func (f ExpFamily) Dist(params []float64) (stat.Distribution, error) {
	if err := f.Validate(params); err != nil {
		return nil, err
	}
	return stat.NewExponential(params[0])
}

// WeibullFamily is the Weibull CDF family F(t) = 1 − e^{−(t/λ)^k} of
// Eq. (23), parameterized as [shape k, scale λ].
type WeibullFamily struct{}

var _ GradCDFFamily = WeibullFamily{}

// Name returns "weibull".
func (WeibullFamily) Name() string { return "weibull" }

// NumParams returns 2.
func (WeibullFamily) NumParams() int { return 2 }

// ParamNames returns the shape and scale parameter names.
func (WeibullFamily) ParamNames() []string { return []string{"shape", "scale"} }

// CDF returns 1 − e^{−(t/λ)^k}.
func (WeibullFamily) CDF(params []float64, t float64) float64 {
	if t <= 0 {
		return 0
	}
	return -math.Expm1(-math.Pow(t/params[1], params[0]))
}

// DCDF fills the gradient of 1 − e^{−u} with u = (t/λ)^k:
//
//	∂F/∂k = e^{−u}·u·ln(t/λ),   ∂F/∂λ = −e^{−u}·u·k/λ.
//
// When u overflows (deep in the saturated F ≈ 1 tail), e^{−u} underflows
// to zero faster than u grows, so both components are exactly zero.
func (WeibullFamily) DCDF(params []float64, t float64, grad []float64) {
	grad[0], grad[1] = 0, 0
	if t <= 0 {
		return
	}
	k, lambda := params[0], params[1]
	u := math.Pow(t/lambda, k)
	if math.IsInf(u, 1) {
		return
	}
	s := u * math.Exp(-u)
	grad[0] = s * math.Log(t/lambda)
	grad[1] = -s * k / lambda
}

// Validate requires k, λ > 0.
func (f WeibullFamily) Validate(params []float64) error {
	if len(params) != 2 {
		return fmt.Errorf("%w: weibull family expects 2 parameters, got %d", ErrBadParams, len(params))
	}
	if !(params[0] > 0) || !(params[1] > 0) {
		return fmt.Errorf("%w: weibull shape and scale must be positive, got %g, %g",
			ErrBadParams, params[0], params[1])
	}
	return nil
}

// Guess starts with shape 1.5 and scale at a quarter of the horizon.
func (WeibullFamily) Guess(horizon float64) []float64 {
	scale := 10.0
	if horizon > 0 {
		scale = horizon / 4
	}
	return []float64{1.5, scale}
}

// ParamBounds allows k ∈ (0.05, 20], λ ∈ (0.01, 1000].
func (WeibullFamily) ParamBounds() (lo, hi []float64) {
	return []float64{0.05, 0.01}, []float64{20, 1000}
}

// Dist materializes the stat.Weibull for a parameter vector.
func (f WeibullFamily) Dist(params []float64) (stat.Distribution, error) {
	if err := f.Validate(params); err != nil {
		return nil, err
	}
	return stat.NewWeibull(params[0], params[1])
}

// GammaFamily is the gamma CDF family, an extension beyond the paper's
// Exponential/Weibull menu, parameterized as [shape k, rate β].
type GammaFamily struct{}

var _ CDFFamily = GammaFamily{}

// Name returns "gamma".
func (GammaFamily) Name() string { return "gamma" }

// NumParams returns 2.
func (GammaFamily) NumParams() int { return 2 }

// ParamNames returns the shape and rate parameter names.
func (GammaFamily) ParamNames() []string { return []string{"shape", "rate"} }

// CDF returns the regularized incomplete gamma P(k, βt).
func (GammaFamily) CDF(params []float64, t float64) float64 {
	if t <= 0 {
		return 0
	}
	d, err := stat.NewGamma(params[0], params[1])
	if err != nil {
		return math.NaN()
	}
	return d.CDF(t)
}

// Validate requires k, β > 0.
func (f GammaFamily) Validate(params []float64) error {
	if len(params) != 2 {
		return fmt.Errorf("%w: gamma family expects 2 parameters, got %d", ErrBadParams, len(params))
	}
	if !(params[0] > 0) || !(params[1] > 0) {
		return fmt.Errorf("%w: gamma shape and rate must be positive, got %g, %g",
			ErrBadParams, params[0], params[1])
	}
	return nil
}

// Guess starts with shape 2 and mean at a quarter of the horizon.
func (GammaFamily) Guess(horizon float64) []float64 {
	rate := 0.1
	if horizon > 0 {
		rate = 8 / horizon
	}
	return []float64{2, rate}
}

// ParamBounds allows k ∈ (0.05, 50], β ∈ (0, 50].
func (GammaFamily) ParamBounds() (lo, hi []float64) {
	return []float64{0.05, 1e-9}, []float64{50, 50}
}

// LogNormalFamily is the log-normal CDF family, an extension beyond the
// paper's menu, parameterized as [μ, σ].
type LogNormalFamily struct{}

var _ GradCDFFamily = LogNormalFamily{}

// Name returns "lognormal".
func (LogNormalFamily) Name() string { return "lognormal" }

// NumParams returns 2.
func (LogNormalFamily) NumParams() int { return 2 }

// ParamNames returns the log-mean and log-sigma parameter names.
func (LogNormalFamily) ParamNames() []string { return []string{"mu", "sigma"} }

// CDF returns Φ((ln t − μ)/σ).
func (LogNormalFamily) CDF(params []float64, t float64) float64 {
	if t <= 0 {
		return 0
	}
	d, err := stat.NewLogNormal(params[0], params[1])
	if err != nil {
		return math.NaN()
	}
	return d.CDF(t)
}

// DCDF fills the gradient of Φ(z) with z = (ln t − μ)/σ:
//
//	∂F/∂μ = −φ(z)/σ,   ∂F/∂σ = −φ(z)·z/σ,
//
// where φ is the standard normal density.
func (LogNormalFamily) DCDF(params []float64, t float64, grad []float64) {
	grad[0], grad[1] = 0, 0
	if t <= 0 {
		return
	}
	mu, sigma := params[0], params[1]
	z := (math.Log(t) - mu) / sigma
	phi := math.Exp(-z*z/2) / math.Sqrt(2*math.Pi)
	grad[0] = -phi / sigma
	grad[1] = -phi * z / sigma
}

// Validate requires finite μ and σ > 0.
func (f LogNormalFamily) Validate(params []float64) error {
	if len(params) != 2 {
		return fmt.Errorf("%w: lognormal family expects 2 parameters, got %d", ErrBadParams, len(params))
	}
	if math.IsNaN(params[0]) || math.IsInf(params[0], 0) || !(params[1] > 0) {
		return fmt.Errorf("%w: lognormal needs finite mu and sigma > 0, got %g, %g",
			ErrBadParams, params[0], params[1])
	}
	return nil
}

// Guess centers the distribution at a quarter of the horizon.
func (LogNormalFamily) Guess(horizon float64) []float64 {
	mu := 1.0
	if horizon > 4 {
		mu = math.Log(horizon / 4)
	}
	return []float64{mu, 0.8}
}

// ParamBounds allows μ ∈ [−10, 10], σ ∈ (0.01, 5].
func (LogNormalFamily) ParamBounds() (lo, hi []float64) {
	return []float64{-10, 0.01}, []float64{10, 5}
}

// LogLogisticFamily is the log-logistic CDF family
// F(t) = (t/α)^β / (1 + (t/α)^β), parameterized as [shape β, scale α] —
// an extension whose S-curve rises faster around its midpoint than the
// Weibull's, suiting recovery processes with a sharp adoption phase.
type LogLogisticFamily struct{}

var _ GradCDFFamily = LogLogisticFamily{}

// Name returns "loglogistic".
func (LogLogisticFamily) Name() string { return "loglogistic" }

// NumParams returns 2.
func (LogLogisticFamily) NumParams() int { return 2 }

// ParamNames returns the shape and scale parameter names.
func (LogLogisticFamily) ParamNames() []string { return []string{"shape", "scale"} }

// CDF returns the log-logistic CDF at t.
func (LogLogisticFamily) CDF(params []float64, t float64) float64 {
	if t <= 0 {
		return 0
	}
	r := math.Pow(t/params[1], params[0])
	return r / (1 + r)
}

// DCDF fills the gradient of r/(1+r) with r = (t/α)^β:
//
//	∂F/∂β = r·ln(t/α)/(1+r)²,   ∂F/∂α = −β·r/(α·(1+r)²).
//
// When r overflows, 1/(1+r)² decays faster than r grows and both
// components are zero (the saturated tail again).
func (LogLogisticFamily) DCDF(params []float64, t float64, grad []float64) {
	grad[0], grad[1] = 0, 0
	if t <= 0 {
		return
	}
	beta, alpha := params[0], params[1]
	r := math.Pow(t/alpha, beta)
	if math.IsInf(r, 1) {
		return
	}
	d := 1 + r
	s := r / (d * d)
	grad[0] = s * math.Log(t/alpha)
	grad[1] = -s * beta / alpha
}

// Validate requires β, α > 0.
func (f LogLogisticFamily) Validate(params []float64) error {
	if len(params) != 2 {
		return fmt.Errorf("%w: loglogistic family expects 2 parameters, got %d", ErrBadParams, len(params))
	}
	if !(params[0] > 0) || !(params[1] > 0) {
		return fmt.Errorf("%w: loglogistic shape and scale must be positive, got %g, %g",
			ErrBadParams, params[0], params[1])
	}
	return nil
}

// Guess starts with shape 2 and the median at a quarter of the horizon.
func (LogLogisticFamily) Guess(horizon float64) []float64 {
	scale := 10.0
	if horizon > 0 {
		scale = horizon / 4
	}
	return []float64{2, scale}
}

// ParamBounds allows β ∈ (0.05, 20], α ∈ (0.01, 1000].
func (LogLogisticFamily) ParamBounds() (lo, hi []float64) {
	return []float64{0.05, 0.01}, []float64{20, 1000}
}

// Dist materializes the stat.LogLogistic for diagnostics.
func (f LogLogisticFamily) Dist(params []float64) (stat.Distribution, error) {
	if err := f.Validate(params); err != nil {
		return nil, err
	}
	return stat.NewLogLogistic(params[0], params[1])
}

// GompertzFamily is the Gompertz CDF family
// F(t) = 1 − exp(−η(e^{bt} − 1)), parameterized as [shape η, rate b] —
// an extension with an exponentially accelerating hazard.
type GompertzFamily struct{}

var _ GradCDFFamily = GompertzFamily{}

// Name returns "gompertz".
func (GompertzFamily) Name() string { return "gompertz" }

// NumParams returns 2.
func (GompertzFamily) NumParams() int { return 2 }

// ParamNames returns the shape and rate parameter names.
func (GompertzFamily) ParamNames() []string { return []string{"shape", "rate"} }

// CDF returns the Gompertz CDF at t.
func (GompertzFamily) CDF(params []float64, t float64) float64 {
	if t <= 0 {
		return 0
	}
	return -math.Expm1(-params[0] * math.Expm1(params[1]*t))
}

// DCDF fills the gradient of 1 − e^{−η·g} with g = e^{bt} − 1:
//
//	∂F/∂η = g·e^{−η·g},   ∂F/∂b = η·t·e^{bt − η·g}.
//
// ∂F/∂b is computed with the exponents combined so the saturated tail
// (η·g ≫ bt) underflows cleanly to zero instead of producing 0·∞.
func (GompertzFamily) DCDF(params []float64, t float64, grad []float64) {
	grad[0], grad[1] = 0, 0
	if t <= 0 {
		return
	}
	eta, b := params[0], params[1]
	g := math.Expm1(b * t)
	if math.IsInf(g, 1) {
		return
	}
	grad[0] = g * math.Exp(-eta*g)
	grad[1] = eta * t * math.Exp(b*t-eta*g)
}

// Validate requires η, b > 0.
func (f GompertzFamily) Validate(params []float64) error {
	if len(params) != 2 {
		return fmt.Errorf("%w: gompertz family expects 2 parameters, got %d", ErrBadParams, len(params))
	}
	if !(params[0] > 0) || !(params[1] > 0) {
		return fmt.Errorf("%w: gompertz shape and rate must be positive, got %g, %g",
			ErrBadParams, params[0], params[1])
	}
	return nil
}

// Guess places the distribution's bulk within the horizon.
func (GompertzFamily) Guess(horizon float64) []float64 {
	rate := 0.1
	if horizon > 0 {
		rate = 4 / horizon
	}
	return []float64{0.3, rate}
}

// ParamBounds allows η ∈ (0, 20], b ∈ (0, 5].
func (GompertzFamily) ParamBounds() (lo, hi []float64) {
	return []float64{1e-9, 1e-9}, []float64{20, 5}
}

// Dist materializes the stat.Gompertz for diagnostics.
func (f GompertzFamily) Dist(params []float64) (stat.Distribution, error) {
	if err := f.Validate(params); err != nil {
		return nil, err
	}
	return stat.NewGompertz(params[0], params[1])
}
