package core

import (
	"errors"
	"math"
	"testing"

	"resilience/internal/timeseries"
)

// quadraticSeries samples a known quadratic curve on 0..n-1.
func quadraticSeries(t *testing.T, alpha, beta, gamma float64, n int) *timeseries.Series {
	t.Helper()
	vals := make([]float64, n)
	for i := range vals {
		x := float64(i)
		vals[i] = alpha + beta*x + gamma*x*x
	}
	s, err := timeseries.FromValues(vals)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestFitRecoversQuadraticParams(t *testing.T) {
	want := []float64{1, -0.02, 0.0005}
	data := quadraticSeries(t, want[0], want[1], want[2], 40)
	fit, err := Fit(QuadraticModel{}, data, FitConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if fit.SSE > 1e-10 {
		t.Errorf("SSE on exact data = %g", fit.SSE)
	}
	for i := range want {
		if math.Abs(fit.Params[i]-want[i]) > 1e-4*math.Max(1, math.Abs(want[i])) {
			t.Errorf("param %d = %g, want %g", i, fit.Params[i], want[i])
		}
	}
}

func TestFitRecoversCompetingRisksParams(t *testing.T) {
	m := CompetingRisksModel{}
	want := []float64{1, 0.3, 0.0008}
	vals := make([]float64, 48)
	for i := range vals {
		vals[i] = m.Eval(want, float64(i))
	}
	data, err := timeseries.FromValues(vals)
	if err != nil {
		t.Fatal(err)
	}
	fit, err := Fit(m, data, FitConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if fit.SSE > 1e-9 {
		t.Errorf("SSE on exact data = %g (params %v)", fit.SSE, fit.Params)
	}
}

func TestFitRecoversMixtureCurve(t *testing.T) {
	mix, err := NewMixture(ExpFamily{}, ExpFamily{}, LogTrend{})
	if err != nil {
		t.Fatal(err)
	}
	truth := []float64{0.15, 0.08, 0.35}
	vals := make([]float64, 48)
	for i := range vals {
		vals[i] = mix.Eval(truth, float64(i))
	}
	data, err := timeseries.FromValues(vals)
	if err != nil {
		t.Fatal(err)
	}
	fit, err := Fit(mix, data, FitConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// Parameter identifiability is weak for mixtures; require curve
	// agreement rather than parameter agreement.
	if fit.SSE > 1e-7 {
		t.Errorf("SSE on exact mixture data = %g (params %v)", fit.SSE, fit.Params)
	}
}

func TestFitValidatesInput(t *testing.T) {
	data := quadraticSeries(t, 1, -0.02, 0.0005, 10)
	if _, err := Fit(nil, data, FitConfig{}); !errors.Is(err, ErrBadData) {
		t.Errorf("nil model: %v", err)
	}
	if _, err := Fit(QuadraticModel{}, nil, FitConfig{}); !errors.Is(err, ErrBadData) {
		t.Errorf("nil data: %v", err)
	}
	tiny, err := timeseries.FromValues([]float64{1, 0.9, 1.1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Fit(QuadraticModel{}, tiny, FitConfig{}); !errors.Is(err, ErrBadData) {
		t.Errorf("too few points: %v", err)
	}
}

func TestFitResultHelpers(t *testing.T) {
	data := quadraticSeries(t, 1, -0.02, 0.0005, 30)
	fit, err := Fit(QuadraticModel{}, data, FitConfig{})
	if err != nil {
		t.Fatal(err)
	}
	preds := fit.Predict([]float64{0, 10, 29})
	if len(preds) != 3 {
		t.Fatalf("Predict returned %d values", len(preds))
	}
	for i, tt := range []float64{0, 10, 29} {
		if math.Abs(preds[i]-fit.Eval(tt)) > 1e-15 {
			t.Errorf("Predict[%d] != Eval", i)
		}
	}
	res := fit.Residuals(data)
	if len(res) != data.Len() {
		t.Fatalf("Residuals length %d", len(res))
	}
	for i, r := range res {
		if math.Abs(r) > 1e-4 {
			t.Errorf("residual[%d] = %g on exact data", i, r)
		}
	}
}

func TestFitSkipPolishStillConverges(t *testing.T) {
	data := quadraticSeries(t, 1, -0.02, 0.0005, 30)
	fit, err := Fit(QuadraticModel{}, data, FitConfig{SkipPolish: true})
	if err != nil {
		t.Fatal(err)
	}
	if fit.SSE > 1e-6 {
		t.Errorf("SSE without polish = %g", fit.SSE)
	}
}

func TestFitWithNoise(t *testing.T) {
	// Deterministic noise around a quadratic: the fit must land near the
	// truth, with SSE on the order of the injected noise energy.
	truth := []float64{1, -0.015, 0.0004}
	vals := make([]float64, 48)
	var noiseEnergy float64
	for i := range vals {
		x := float64(i)
		noise := 0.001 * math.Sin(3*x)
		vals[i] = truth[0] + truth[1]*x + truth[2]*x*x + noise
		noiseEnergy += noise * noise
	}
	data, err := timeseries.FromValues(vals)
	if err != nil {
		t.Fatal(err)
	}
	fit, err := Fit(QuadraticModel{}, data, FitConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if fit.SSE > 2*noiseEnergy {
		t.Errorf("SSE = %g, noise energy %g", fit.SSE, noiseEnergy)
	}
}
