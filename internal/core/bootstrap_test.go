package core

import (
	"errors"
	"math"
	"testing"

	"resilience/internal/timeseries"
)

// noisyQuadratic builds data from a known quadratic plus deterministic
// noise.
func noisyQuadratic(t *testing.T, n int) (*timeseries.Series, []float64) {
	t.Helper()
	truth := []float64{1, -0.03, 0.0008}
	vals := make([]float64, n)
	for i := range vals {
		x := float64(i)
		vals[i] = truth[0] + truth[1]*x + truth[2]*x*x + 0.002*math.Sin(5*x)
	}
	s, err := timeseries.FromValues(vals)
	if err != nil {
		t.Fatal(err)
	}
	return s, truth
}

func TestBootstrapCoversTruth(t *testing.T) {
	data, truth := noisyQuadratic(t, 40)
	fit, err := Fit(QuadraticModel{}, data, FitConfig{})
	if err != nil {
		t.Fatal(err)
	}
	bs, err := Bootstrap(fit, BootstrapConfig{Replicates: 60, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if bs.Succeeded < 30 {
		t.Fatalf("only %d replicates succeeded", bs.Succeeded)
	}
	for j := range truth {
		if bs.ParamLower[j] > bs.ParamUpper[j] {
			t.Errorf("param %d: interval inverted [%g, %g]", j, bs.ParamLower[j], bs.ParamUpper[j])
		}
		if truth[j] < bs.ParamLower[j]-0.02 || truth[j] > bs.ParamUpper[j]+0.02 {
			t.Errorf("param %d: truth %g outside [%g, %g]",
				j, truth[j], bs.ParamLower[j], bs.ParamUpper[j])
		}
		if bs.ParamMedian[j] < bs.ParamLower[j] || bs.ParamMedian[j] > bs.ParamUpper[j] {
			t.Errorf("param %d: median outside interval", j)
		}
	}
}

func TestBootstrapBandBracketsFit(t *testing.T) {
	data, _ := noisyQuadratic(t, 30)
	fit, err := Fit(QuadraticModel{}, data, FitConfig{})
	if err != nil {
		t.Fatal(err)
	}
	bs, err := Bootstrap(fit, BootstrapConfig{Replicates: 40, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(bs.Band.Times) != data.Len() {
		t.Fatalf("band over %d points", len(bs.Band.Times))
	}
	for i := range bs.Band.Times {
		if bs.Band.Lower[i] > bs.Band.Center[i]+1e-9 || bs.Band.Upper[i] < bs.Band.Center[i]-1e-9 {
			// The percentile band is built from refits around the
			// original curve; it should bracket it closely.
			if bs.Band.Upper[i] < bs.Band.Lower[i] {
				t.Errorf("band inverted at %d", i)
			}
		}
		if bs.Band.Upper[i]-bs.Band.Lower[i] < 0 {
			t.Errorf("band width negative at %d", i)
		}
	}
}

func TestBootstrapDeterminism(t *testing.T) {
	data, _ := noisyQuadratic(t, 25)
	fit, err := Fit(QuadraticModel{}, data, FitConfig{})
	if err != nil {
		t.Fatal(err)
	}
	a, err := Bootstrap(fit, BootstrapConfig{Replicates: 20, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Bootstrap(fit, BootstrapConfig{Replicates: 20, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for j := range a.ParamLower {
		if a.ParamLower[j] != b.ParamLower[j] || a.ParamUpper[j] != b.ParamUpper[j] {
			t.Fatalf("bootstrap not deterministic at param %d", j)
		}
	}
}

func TestBootstrapValidation(t *testing.T) {
	if _, err := Bootstrap(nil, BootstrapConfig{}); !errors.Is(err, ErrBadData) {
		t.Errorf("nil fit: %v", err)
	}
	tiny, err := timeseries.FromValues([]float64{1, 0.9, 1, 1.05})
	if err != nil {
		t.Fatal(err)
	}
	fit := &FitResult{Model: QuadraticModel{}, Params: []float64{1, -0.05, 0.01}, Train: tiny}
	if _, err := Bootstrap(fit, BootstrapConfig{Replicates: 5}); !errors.Is(err, ErrBadData) {
		t.Errorf("too few observations: %v", err)
	}
}

func TestPercentiles(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	lo, mid, hi := percentiles(xs, 0.5) // 25th, 50th, 75th
	if mid != 3 {
		t.Errorf("median = %g", mid)
	}
	if lo != 2 || hi != 4 {
		t.Errorf("quartiles = %g, %g", lo, hi)
	}
	lo, mid, hi = percentiles([]float64{7}, 0.05)
	if lo != 7 || mid != 7 || hi != 7 {
		t.Errorf("single-element percentiles = %g, %g, %g", lo, mid, hi)
	}
	// Input must not be mutated.
	if xs[0] != 5 {
		t.Error("percentiles mutated input")
	}
}
