package core

import (
	"errors"
	"math"
	"testing"
)

func TestResidualSigmaHandComputed(t *testing.T) {
	data := seriesOf(t, 1, 2, 3, 4)
	fit := constFit(t, 2, data)
	// Residuals -1, 0, 1, 2 → SSE = 6, σ = √(6/2) = √3.
	sigma, err := ResidualSigma(fit)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sigma-math.Sqrt(3)) > 1e-12 {
		t.Errorf("sigma = %g, want √3", sigma)
	}
}

func TestResidualSigmaNeedsEnoughData(t *testing.T) {
	data := seriesOf(t, 1, 2)
	if _, err := ResidualSigma(constFit(t, 1, data)); !errors.Is(err, ErrBadData) {
		t.Errorf("n <= 2: %v", err)
	}
	if _, err := ResidualSigma(nil); !errors.Is(err, ErrBadData) {
		t.Errorf("nil fit: %v", err)
	}
}

func TestConfidenceBandStructure(t *testing.T) {
	data := seriesOf(t, 1, 2, 3, 4, 5)
	fit := constFit(t, 3, data)
	band, err := ConfidenceBand(fit, data, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if len(band.Times) != 5 || len(band.Lower) != 5 || len(band.Upper) != 5 {
		t.Fatalf("band lengths wrong: %+v", band)
	}
	if math.Abs(band.Z-1.959963984540054) > 1e-9 {
		t.Errorf("Z = %g, want 1.96", band.Z)
	}
	for i := range band.Times {
		if band.Center[i] != 3 {
			t.Errorf("center[%d] = %g, want 3 (constant model)", i, band.Center[i])
		}
		if band.Upper[i]-band.Lower[i] <= 0 {
			t.Errorf("band width at %d non-positive", i)
		}
		want := 2 * band.Z * band.Sigma
		if math.Abs((band.Upper[i]-band.Lower[i])-want) > 1e-12 {
			t.Errorf("band width = %g, want %g", band.Upper[i]-band.Lower[i], want)
		}
	}
}

func TestConfidenceBandAlphaValidation(t *testing.T) {
	data := seriesOf(t, 1, 2, 3, 4)
	fit := constFit(t, 2, data)
	for _, alpha := range []float64{0, 1, -0.1, 2} {
		if _, err := ConfidenceBand(fit, data, alpha); !errors.Is(err, ErrBadData) {
			t.Errorf("alpha %g: want ErrBadData, got %v", alpha, err)
		}
	}
	if _, err := ConfidenceBand(fit, nil, 0.05); !errors.Is(err, ErrBadData) {
		t.Errorf("nil series: %v", err)
	}
}

func TestConfidenceBandWiderAtLowerAlpha(t *testing.T) {
	data := seriesOf(t, 1, 2, 3, 4, 5, 6)
	fit := constFit(t, 3.5, data)
	b95, err := ConfidenceBand(fit, data, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	b99, err := ConfidenceBand(fit, data, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if !(b99.Upper[0]-b99.Lower[0] > b95.Upper[0]-b95.Lower[0]) {
		t.Error("99% band should be wider than 95% band")
	}
}

func TestEmpiricalCoverage(t *testing.T) {
	data := seriesOf(t, 1, 2, 3, 4, 5)
	band := &Band{
		Times: data.Times(),
		Lower: []float64{0, 0, 0, 0, 10}, // last point excluded
		Upper: []float64{10, 10, 10, 10, 11},
	}
	ec, err := EmpiricalCoverage(band, data)
	if err != nil {
		t.Fatal(err)
	}
	if ec != 0.8 {
		t.Errorf("EC = %g, want 0.8", ec)
	}
	// Mismatched lengths error.
	short := seriesOf(t, 1, 2)
	if _, err := EmpiricalCoverage(band, short); !errors.Is(err, ErrBadData) {
		t.Errorf("length mismatch: %v", err)
	}
	if _, err := EmpiricalCoverage(nil, data); !errors.Is(err, ErrBadData) {
		t.Errorf("nil band: %v", err)
	}
}

func TestCoverageOnWellFitModelIsHigh(t *testing.T) {
	// A good fit's 95% band should cover most observations.
	vals := make([]float64, 40)
	for i := range vals {
		x := float64(i)
		vals[i] = 1 - 0.01*x + 0.0003*x*x + 0.0005*math.Sin(2*x)
	}
	data := seriesOf(t, vals...)
	fit, err := Fit(QuadraticModel{}, data, FitConfig{})
	if err != nil {
		t.Fatal(err)
	}
	band, err := ConfidenceBand(fit, data, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	ec, err := EmpiricalCoverage(band, data)
	if err != nil {
		t.Fatal(err)
	}
	if ec < 0.85 {
		t.Errorf("EC = %g, want >= 0.85 for a good fit", ec)
	}
}

func TestDeltaCI(t *testing.T) {
	data := seriesOf(t, 1, 2, 3, 4, 5)
	fit := constFit(t, 3, data)
	band, err := DeltaCI(fit, data, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if len(band.Times) != 4 {
		t.Fatalf("delta band has %d entries, want 4", len(band.Times))
	}
	for i, c := range band.Center {
		if c != 0 { // constant model: all deltas are zero
			t.Errorf("delta center[%d] = %g, want 0", i, c)
		}
	}
	cov, err := DeltaCoverage(band, data)
	if err != nil {
		t.Fatal(err)
	}
	// Observed deltas are all 1; band is 0 ± 1.96·√3 ≈ ±3.39, so all in.
	if cov != 1 {
		t.Errorf("delta coverage = %g, want 1", cov)
	}
}

func TestDeltaCIValidation(t *testing.T) {
	one := seriesOf(t, 1)
	fit := constFit(t, 1, seriesOf(t, 1, 2, 3, 4))
	if _, err := DeltaCI(fit, one, 0.05); !errors.Is(err, ErrBadData) {
		t.Errorf("single point: %v", err)
	}
	data := seriesOf(t, 1, 2, 3)
	if _, err := DeltaCI(fit, data, 0); !errors.Is(err, ErrBadData) {
		t.Errorf("alpha 0: %v", err)
	}
	band, err := DeltaCI(fit, data, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DeltaCoverage(band, seriesOf(t, 1, 2, 3, 4, 5)); !errors.Is(err, ErrBadData) {
		t.Errorf("mismatched delta coverage: %v", err)
	}
	if _, err := DeltaCoverage(nil, data); !errors.Is(err, ErrBadData) {
		t.Errorf("nil band: %v", err)
	}
}
