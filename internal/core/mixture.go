package core

import (
	"fmt"
	"math"

	"resilience/internal/optimize"
	"resilience/internal/timeseries"
)

// MixtureModel is the mixture-distribution resilience model of Sec. II-B:
//
//	P(t) = a₁(t)·(1 − F₁(t)) + a₂(t)·F₂(t)     (Eq. 7)
//
// where (1 − F₁) characterizes degradation, F₂ characterizes recovery,
// a₁ is the transition from degradation, and a₂ the transition to
// recovery. Following the paper's experiments, NewMixture fixes
// a₁(t) = 1; NewMixtureFull exposes the fully general form.
//
// The parameter vector is the concatenation
// [F₁ params..., F₂ params..., a₂ params..., a₁ params...], with the
// trailing groups absent when the corresponding component has no
// parameters.
type MixtureModel struct {
	f1 CDFFamily
	f2 CDFFamily
	a1 Trend
	a2 Trend
}

var (
	_ Model         = (*MixtureModel)(nil)
	_ JacobianModel = (*MixtureModel)(nil)
)

// NewMixture builds the paper's mixture: a₁(t) = 1, with the given
// degradation CDF F₁, recovery CDF F₂, and recovery transition a₂.
func NewMixture(f1, f2 CDFFamily, a2 Trend) (*MixtureModel, error) {
	return NewMixtureFull(f1, f2, UnitTrend{}, a2)
}

// NewMixtureFull builds a mixture with both transitions free.
func NewMixtureFull(f1, f2 CDFFamily, a1, a2 Trend) (*MixtureModel, error) {
	if f1 == nil || f2 == nil || a1 == nil || a2 == nil {
		return nil, fmt.Errorf("%w: mixture components must be non-nil", ErrBadParams)
	}
	return &MixtureModel{f1: f1, f2: f2, a1: a1, a2: a2}, nil
}

// Components returns the mixture's degradation CDF, recovery CDF, and
// transitions (a₁, a₂).
func (m *MixtureModel) Components() (f1, f2 CDFFamily, a1, a2 Trend) {
	return m.f1, m.f2, m.a1, m.a2
}

// Name returns e.g. "exp-weibull" (degradation-recovery), with a trend
// suffix when a₂ is not the paper's default β·ln t.
func (m *MixtureModel) Name() string {
	name := m.f1.Name() + "-" + m.f2.Name()
	if m.a2.Name() != (LogTrend{}).Name() {
		name += "+" + m.a2.Name()
	}
	return name
}

// NumParams returns the total parameter count across all components.
func (m *MixtureModel) NumParams() int {
	return m.f1.NumParams() + m.f2.NumParams() + m.a2.NumParams() + m.a1.NumParams()
}

// ParamNames returns component-qualified parameter names such as
// "F1.rate" or "a2.beta".
func (m *MixtureModel) ParamNames() []string {
	names := make([]string, 0, m.NumParams())
	for _, n := range m.f1.ParamNames() {
		names = append(names, "F1."+n)
	}
	for _, n := range m.f2.ParamNames() {
		names = append(names, "F2."+n)
	}
	for i := 0; i < m.a2.NumParams(); i++ {
		names = append(names, "a2.beta")
	}
	for i := 0; i < m.a1.NumParams(); i++ {
		names = append(names, "a1.beta")
	}
	return names
}

// split partitions a full parameter vector into component vectors.
func (m *MixtureModel) split(params []float64) (f1p, f2p, a2p, a1p []float64) {
	i := 0
	f1p = params[i : i+m.f1.NumParams()]
	i += m.f1.NumParams()
	f2p = params[i : i+m.f2.NumParams()]
	i += m.f2.NumParams()
	a2p = params[i : i+m.a2.NumParams()]
	i += m.a2.NumParams()
	a1p = params[i : i+m.a1.NumParams()]
	return f1p, f2p, a2p, a1p
}

// Bounds concatenates the component boxes.
func (m *MixtureModel) Bounds() optimize.Bounds {
	var lo, hi []float64
	appendBounds := func(l, h []float64) {
		lo = append(lo, l...)
		hi = append(hi, h...)
	}
	l, h := m.f1.ParamBounds()
	appendBounds(l, h)
	l, h = m.f2.ParamBounds()
	appendBounds(l, h)
	l, h = m.a2.ParamBounds()
	appendBounds(l, h)
	l, h = m.a1.ParamBounds()
	appendBounds(l, h)
	b, err := optimize.NewBounds(lo, hi)
	if err != nil {
		panic("core: mixture bounds: " + err.Error()) // component bounds are static
	}
	return b
}

// Guess concatenates component guesses informed by the data horizon and
// terminal performance.
func (m *MixtureModel) Guess(data *timeseries.Series) []float64 {
	horizon, terminal := 40.0, 1.0
	if data != nil && data.Len() > 0 {
		_, horizon = data.Span()
		terminal = data.Value(data.Len() - 1)
	}
	var params []float64
	params = append(params, m.f1.Guess(horizon)...)
	params = append(params, m.f2.Guess(horizon)...)
	params = append(params, m.a2.GuessParam(horizon, terminal)...)
	params = append(params, m.a1.GuessParam(horizon, terminal)...)
	return params
}

// Validate checks length and delegates to the component families.
func (m *MixtureModel) Validate(params []float64) error {
	if err := checkParams(m, params); err != nil {
		return err
	}
	f1p, f2p, _, _ := m.split(params)
	if err := m.f1.Validate(f1p); err != nil {
		return fmt.Errorf("degradation component: %w", err)
	}
	if err := m.f2.Validate(f2p); err != nil {
		return fmt.Errorf("recovery component: %w", err)
	}
	return nil
}

// Eval returns a₁(t)(1−F₁(t)) + a₂(t)F₂(t). The recovery term is defined
// as exactly zero wherever F₂(t) = 0, which keeps trends like β·ln t
// (undefined at t = 0) well-behaved at the hazard onset.
func (m *MixtureModel) Eval(params []float64, t float64) float64 {
	f1p, f2p, a2p, a1p := m.split(params)
	p := m.a1.Eval(a1p, t) * (1 - m.f1.CDF(f1p, t))
	if f2 := m.f2.CDF(f2p, t); f2 > 0 {
		p += m.a2.Eval(a2p, t) * f2
	}
	return p
}

// HasAnalyticJacobian reports whether every component — both CDF
// families and both transition trends — provides closed-form gradients.
// A mixture over, say, the gamma family answers false and the fitting
// driver keeps it on the derivative-free path.
func (m *MixtureModel) HasAnalyticJacobian() bool {
	_, ok1 := m.f1.(GradCDFFamily)
	_, ok2 := m.f2.(GradCDFFamily)
	_, okA1 := m.a1.(GradTrend)
	_, okA2 := m.a2.(GradTrend)
	return ok1 && ok2 && okA1 && okA2
}

// EvalGrad fills the gradient of Eq. (7) by the product rule over the
// component groups, mirroring Eval's zeroing of the recovery term where
// F₂(t) = 0 so the Jacobian is exactly the derivative of the evaluated
// curve (including at the onset point t = 0):
//
//	∂P/∂θ_{F₁} = −a₁(t)·∂F₁/∂θ,   ∂P/∂θ_{a₁} = (1 − F₁(t))·∂a₁/∂θ,
//	∂P/∂θ_{F₂} =  a₂(t)·∂F₂/∂θ,   ∂P/∂θ_{a₂} = F₂(t)·∂a₂/∂θ.
//
// It panics unless HasAnalyticJacobian is true; the fitting driver
// checks the capability before wiring the Jacobian.
func (m *MixtureModel) EvalGrad(params []float64, t float64, grad []float64) {
	f1p, f2p, a2p, a1p := m.split(params)
	g1, g2, ga2, ga1 := m.split(grad)

	a1v := m.a1.Eval(a1p, t)
	m.f1.(GradCDFFamily).DCDF(f1p, t, g1)
	for j := range g1 {
		g1[j] *= -a1v
	}
	oneMinusF1 := 1 - m.f1.CDF(f1p, t)
	m.a1.(GradTrend).DEval(a1p, t, ga1)
	for j := range ga1 {
		ga1[j] *= oneMinusF1
	}

	f2 := m.f2.CDF(f2p, t)
	if f2 > 0 {
		a2v := m.a2.Eval(a2p, t)
		m.f2.(GradCDFFamily).DCDF(f2p, t, g2)
		for j := range g2 {
			g2[j] *= a2v
		}
		m.a2.(GradTrend).DEval(a2p, t, ga2)
		for j := range ga2 {
			ga2[j] *= f2
		}
	} else {
		for j := range g2 {
			g2[j] = 0
		}
		for j := range ga2 {
			ga2[j] = 0
		}
	}
}

// standardTrend is the a₂ transition used throughout the paper's Table
// III and IV experiments.
func standardTrend() Trend { return LogTrend{} }

// StandardMixtures returns the paper's four mixture combinations
// (Exp-Exp, Wei-Exp, Exp-Wei, Wei-Wei) with a₂(t) = β·ln t, in the
// column order of Table III.
func StandardMixtures() []*MixtureModel {
	combos := []struct{ f1, f2 CDFFamily }{
		{ExpFamily{}, ExpFamily{}},
		{WeibullFamily{}, ExpFamily{}},
		{ExpFamily{}, WeibullFamily{}},
		{WeibullFamily{}, WeibullFamily{}},
	}
	out := make([]*MixtureModel, 0, len(combos))
	for _, c := range combos {
		mix, err := NewMixture(c.f1, c.f2, standardTrend())
		if err != nil {
			panic("core: standard mixture construction: " + err.Error()) // static components
		}
		out = append(out, mix)
	}
	return out
}

// MixtureWithTrend returns the four standard component combinations with
// an alternative a₂ transition, used by the trend ablation bench.
func MixtureWithTrend(a2 Trend) ([]*MixtureModel, error) {
	combos := []struct{ f1, f2 CDFFamily }{
		{ExpFamily{}, ExpFamily{}},
		{WeibullFamily{}, ExpFamily{}},
		{ExpFamily{}, WeibullFamily{}},
		{WeibullFamily{}, WeibullFamily{}},
	}
	out := make([]*MixtureModel, 0, len(combos))
	for _, c := range combos {
		mix, err := NewMixture(c.f1, c.f2, a2)
		if err != nil {
			return nil, err
		}
		out = append(out, mix)
	}
	return out, nil
}

// mixtureMinimum locates the minimum of a mixture curve numerically on
// [0, horizon] by golden-section refinement of a coarse grid scan.
func mixtureMinimum(m Model, params []float64, horizon float64) (float64, error) {
	if horizon <= 0 {
		return math.NaN(), fmt.Errorf("%w: non-positive horizon", ErrBadData)
	}
	const gridN = 256
	bestT, bestP := 0.0, math.Inf(1)
	for i := 0; i <= gridN; i++ {
		t := horizon * float64(i) / gridN
		if p := m.Eval(params, t); p < bestP {
			bestT, bestP = t, p
		}
	}
	lo := math.Max(0, bestT-horizon/gridN)
	hi := math.Min(horizon, bestT+horizon/gridN)
	if lo >= hi {
		return bestT, nil
	}
	t, _, err := optimize.GoldenSection(func(t float64) float64 {
		return m.Eval(params, t)
	}, lo, hi, 1e-10)
	if err != nil {
		return bestT, nil
	}
	return t, nil
}
